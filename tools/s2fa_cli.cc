// s2fa — command-line driver for the framework.
//
//   s2fa list
//       The bundled evaluation kernels.
//   s2fa compile <app>
//       Bytecode-to-C only: print the generated HLS C, the interface, the
//       generated Scala glue, and the design-space inventory.
//   s2fa explore <app> [--minutes N] [--cores N] [--seed N]
//                      [--vanilla] [--no-seeds] [--no-partition]
//                      [--techniques LIST]
//                      [--eval-timeout M] [--eval-retries N]
//                      [--resume-journal FILE] [--fault-rate P]
//                      [--eval-cache on|off|N]
//       Run the DSE and report partitions, the trace, and the best design.
//       --techniques picks the search-arm roster by name (comma-separated:
//       "bandit" is the default four, plus greedy/de/pso/sa/bottleneck —
//       e.g. --techniques bandit,bottleneck adds the bottleneck-guided
//       arm). --eval-timeout/--eval-retries tune the fault-tolerant
//       evaluation layer, --resume-journal checkpoints every evaluation
//       (and resumes a killed run without re-paying them), --fault-rate
//       injects deterministic evaluator failures to exercise that
//       machinery, and --eval-cache controls the shared memoizing
//       evaluation cache (on by default; N bounds it to an N-entry LRU).
//       All of these apply to --vanilla runs too.
//   s2fa run <app> [--records N] [--seed N] [--accel-fault-rate P]
//       Build the accelerator (short DSE), execute a workload through the
//       Blaze runtime, cross-check against the JVM baseline, and report
//       the speedup. --accel-fault-rate injects accelerator faults; failed
//       batches retry once and then degrade to the host path.
//   s2fa serve <app> [--replicas N] [--requests N] [--records N] [--seed N]
//                    [--serve-queue N] [--hedge-quantile Q]
//                    [--quarantine-window N] [--fault-burst START:LEN[,..]]
//                    [--exec-threads N] [--shards N]
//                    [--tenants NAME:WEIGHT[:QUOTA],..] [--chaos-plan PLAN]
//       Build the accelerator, register N replicas behind the BlazeService
//       serving layer, and replay a request stream against the simulated
//       clock: bounded admission queue, per-replica health tracking with
//       quarantine + probe re-enlistment, and hedged dispatch.
//       --fault-burst fails every accelerator attempt whose per-replica
//       invocation counter falls in [START, START+LEN); outputs are
//       cross-checked against the native reference.
//       --shards N serves through BlazeCluster instead: replicas spread
//       round-robin over N fault domains, with micro-batching, failover,
//       and weighted-fair tenancy. --tenants declares tenants (relative
//       weight, optional queued quota) and assigns requests round-robin;
//       --chaos-plan runs a scripted fault schedule (see blaze/chaos.h
//       for the grammar); --routing health|depth picks the shard-selection
//       policy (depth scores true outstanding backlog, so it routes around
//       shards that owe invisible host work). Cluster runs print a
//       per-tenant fairness table — sheds split by reason, completions by
//       serving path — and keep the per-request reference cross-check.
//       --stream replays the workload through the streaming serving mode
//       (StreamSession): rate-programmed continuous arrivals
//       (--arrival-rate, a multiple of modeled capacity), SLO-bound
//       micro-batching (--slo, microseconds), per-tenant retry budgets
//       (--retry-budget REFILL_PER_SEC:BURST), and the brownout segment of
//       the overload ladder (--brownout ONSET_US:SHED_US[:MAX_FRACTION]).
//       Streaming runs print the overload-ladder ledger (shed reasons,
//       close triggers, CoDel engagements, watermark) and exit non-zero on
//       lost records, watermark regression, or reference mismatches.
//   s2fa report <metrics.json>
//       Render a metrics summary (written by --metrics-out) as tables.
//   s2fa profile <app> [--minutes N] [--seed N] [--records N] [--top N]
//                      [--profile-out FILE]
//       Run the pipeline (compile, a short single-core DSE slice, a Blaze
//       workload) with the tracer on and print the hot-path table: per-span
//       call counts, total/self time, and ns/op + ns/record rates. The self
//       times are disjoint, so their sum is bounded by the wall time.
//       --profile-out dumps the raw spans as a Chrome trace-event file
//       (load in chrome://tracing or Perfetto).
//   s2fa perf-diff <old.json> <new.json> [--threshold P]
//       Compare two perf ledgers (written by bench_micro_components /
//       bench_serving) and classify each benchmark improved/flat/regressed
//       at the given threshold (fraction, default 0.10). Exits 1 when any
//       benchmark regressed by at least the threshold — the CI perf gate.
//
// Global flags: --trace-out FILE --metrics-out FILE (enable the obs layer
// and dump the span trace / aggregated summary), --log-level LEVEL.
// Environment: S2FA_EVAL_TIMEOUT, S2FA_EVAL_RETRIES, S2FA_RESUME_JOURNAL,
// S2FA_FAULT_RATE, S2FA_EVAL_CACHE and S2FA_TECHNIQUES mirror the
// evaluation-stack flags;
// S2FA_SERVE_QUEUE, S2FA_HEDGE_QUANTILE, S2FA_QUARANTINE_WINDOW,
// S2FA_FAULT_BURST, S2FA_SHARDS, S2FA_TENANTS, S2FA_CHAOS_PLAN,
// S2FA_ROUTING, S2FA_STREAM, S2FA_ARRIVAL_RATE, S2FA_SLO,
// S2FA_RETRY_BUDGET and S2FA_BROWNOUT mirror the serving knobs;
// S2FA_PROFILE_OUT and S2FA_PERF_THRESHOLD mirror the profiler knobs
// (flags win).
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "apps/app.h"
#include "apps/jvm_baseline.h"
#include "cache/eval_cache.h"
#include "blaze/cluster.h"
#include "blaze/runtime.h"
#include "blaze/service.h"
#include "blaze/stream.h"
#include "kir/printer.h"
#include "obs/export.h"
#include "obs/ledger.h"
#include "obs/obs.h"
#include "obs/profile.h"
#include "resilience/evaluator.h"
#include "tuner/technique.h"
#include "s2fa/framework.h"
#include "support/error.h"
#include "support/logging.h"
#include "support/strings.h"
#include "support/table.h"

using namespace s2fa;

namespace {

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  bool Has(const std::string& flag) const { return flags.count(flag) != 0; }
  double Num(const std::string& flag, double fallback) const {
    auto it = flags.find(flag);
    return it == flags.end() ? fallback : std::stod(it->second);
  }
  std::string Str(const std::string& flag) const {
    auto it = flags.find(flag);
    return it == flags.end() ? std::string() : it->second;
  }
};

Args Parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string name = arg.substr(2);
      // Either --name=value, a bare boolean flag, or --name value.
      std::size_t eq = name.find('=');
      if (eq != std::string::npos) {
        args.flags[name.substr(0, eq)] = name.substr(eq + 1);
      } else if (name == "vanilla" || name == "no-seeds" ||
                 name == "no-partition" || name == "stream") {
        args.flags[name] = "1";
      } else if (i + 1 < argc) {
        args.flags[name] = argv[++i];
      }
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

int Usage() {
  std::fprintf(stderr,
               "usage: s2fa <list|compile|explore|run|serve|report|profile|"
               "perf-diff> [arg] [flags]\n"
               "  explore flags: --minutes N --cores N --seed N --vanilla "
               "--no-seeds --no-partition\n"
               "                 --eval-timeout MIN --eval-retries N "
               "--resume-journal FILE --fault-rate P\n"
               "                 --eval-cache on|off|N "
               "--scheduler adaptive|fcfs\n"
               "  run flags:     --records N --seed N --minutes N "
               "--accel-fault-rate P\n"
               "  serve flags:   --replicas N --requests N --records N "
               "--seed N --minutes N\n"
               "                 --serve-queue N --hedge-quantile Q "
               "--quarantine-window N\n"
               "                 --fault-burst START:LEN[,..] "
               "--exec-threads N\n"
               "                 --shards N --tenants NAME:WEIGHT[:QUOTA],.. "
               "--chaos-plan PLAN\n"
               "                 --routing health|depth --stream "
               "--arrival-rate R --slo US\n"
               "                 --retry-budget REFILL:BURST "
               "--brownout ONSET:SHED[:FRAC]\n"
               "  report:        s2fa report <metrics.json>\n"
               "  profile flags: --minutes N --seed N --records N --top N "
               "--profile-out FILE\n"
               "  perf-diff:     s2fa perf-diff <old.json> <new.json> "
               "--threshold P\n"
               "  global flags:  --trace-out FILE --metrics-out FILE "
               "--log-level off|error|warn|info|debug\n"
               "  env:           S2FA_EVAL_TIMEOUT S2FA_EVAL_RETRIES "
               "S2FA_RESUME_JOURNAL S2FA_FAULT_RATE S2FA_EVAL_CACHE\n"
               "                 S2FA_SCHEDULER S2FA_SERVE_QUEUE "
               "S2FA_HEDGE_QUANTILE S2FA_QUARANTINE_WINDOW\n"
               "                 S2FA_FAULT_BURST S2FA_SHARDS S2FA_TENANTS "
               "S2FA_CHAOS_PLAN\n"
               "                 S2FA_ROUTING S2FA_STREAM S2FA_ARRIVAL_RATE "
               "S2FA_SLO S2FA_RETRY_BUDGET S2FA_BROWNOUT\n"
               "                 S2FA_PROFILE_OUT S2FA_PERF_THRESHOLD\n");
  return 2;
}

// Fails fast when an export path can't be written, instead of silently
// losing the trace/metrics at exit after a long run. The append-mode probe
// leaves an existing file untouched.
bool CheckWritable(const char* what, const std::string& path) {
  if (path.empty()) return true;
  std::ofstream probe(path, std::ios::app);
  if (!probe) {
    std::fprintf(stderr, "error: %s path '%s' is not writable\n", what,
                 path.c_str());
    return false;
  }
  return true;
}

int CmdReport(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  obs::Summary summary = obs::ParseSummaryJson(text.str());
  std::printf("%s", obs::RenderSummaryTable(summary).c_str());
  return 0;
}

int CmdList() {
  TextTable table({"App", "Type", "Pattern", "Batch", "Loops", "Space"});
  for (apps::App& app : apps::AllApps()) {
    kir::Kernel k = b2c::CompileKernel(*app.pool, app.spec);
    tuner::DesignSpace space = tuner::BuildDesignSpace(k);
    table.AddRow({app.name, app.type_label,
                  kir::PatternName(app.spec.pattern),
                  std::to_string(app.spec.batch),
                  std::to_string(k.Loops().size()),
                  "10^" + FormatDouble(space.Log10Cardinality(), 1)});
  }
  std::printf("%s", table.Render().c_str());
  return 0;
}

int CmdCompile(const apps::App& app) {
  const jvm::Method& method =
      app.pool->Get(app.spec.klass).GetMethod(app.spec.method);
  std::printf("=== kernel bytecode (%s.%s) ===\n%s\n",
              app.spec.klass.c_str(), app.spec.method.c_str(),
              jvm::Disassemble(method.code).c_str());
  kir::Kernel k = b2c::CompileKernel(*app.pool, app.spec);
  std::printf("=== generated HLS C ===\n%s\n", kir::EmitC(k).c_str());
  blaze::SerializationPlan plan = blaze::MakeSerializationPlan(k);
  std::printf("=== accelerator interface ===\n");
  for (const auto& e : plan.entries) {
    std::printf("  %-6s %-7s %s x %lld/task%s\n", e.buffer.c_str(),
                e.is_input ? "input" : "output",
                e.element.ToString().c_str(),
                static_cast<long long>(e.per_task),
                e.broadcast ? "  (broadcast)" : "");
  }
  std::printf("\n=== generated Scala glue ===\n%s\n",
              blaze::RenderScalaHelper(plan).c_str());
  tuner::DesignSpace space = tuner::BuildDesignSpace(k);
  std::printf("=== design space: %zu factors, 10^%.1f points ===\n",
              space.num_factors(), space.Log10Cardinality());
  return 0;
}

int CmdExplore(const apps::App& app, const Args& args) {
  kir::Kernel k = b2c::CompileKernel(*app.pool, app.spec);
  tuner::DesignSpace space = tuner::BuildDesignSpace(k);
  tuner::EvalFn eval = MakeHlsEvaluator(k);
  const double minutes = args.Num("minutes", 240);
  const int cores = static_cast<int>(args.Num("cores", 8));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.Num("seed", 2018));

  // Evaluation-stack knobs (resilience, journal, faults, cache) apply to
  // the vanilla baseline and the S2FA pipeline alike: environment first,
  // explicit flags win.
  dse::ExplorerOptions options;
  options.time_limit_minutes = minutes;
  options.num_cores = cores;
  options.seed = seed;
  options.enable_seeds = !args.Has("no-seeds");
  options.enable_partitioning = !args.Has("no-partition");

  const resilience::EnvKnobs env = resilience::ReadEnvKnobs();
  if (env.eval_timeout_minutes) {
    options.resilience.deadline_minutes = *env.eval_timeout_minutes;
  }
  if (env.eval_retries) options.resilience.max_retries = *env.eval_retries;
  if (env.resume_journal) options.journal_path = *env.resume_journal;
  double fault_rate = env.fault_rate.value_or(0.0);
  if (args.Has("eval-timeout")) {
    options.resilience.deadline_minutes = args.Num("eval-timeout", 60);
  }
  if (args.Has("eval-retries")) {
    options.resilience.max_retries =
        static_cast<int>(args.Num("eval-retries", 2));
  }
  if (args.Has("resume-journal")) {
    options.journal_path = args.Str("resume-journal");
  }
  if (args.Has("fault-rate")) fault_rate = args.Num("fault-rate", 0);
  if (fault_rate < 0 || fault_rate > 1) {
    std::fprintf(stderr, "error: --fault-rate must be in [0, 1]\n");
    return 2;
  }
  if (fault_rate > 0) {
    // Split the requested failure probability evenly across the taxonomy
    // so every failure mode gets exercised.
    options.faults.crash_rate = fault_rate / 3;
    options.faults.timeout_rate = fault_rate / 3;
    options.faults.garbage_rate = fault_rate / 3;
    options.faults.seed = seed ^ 0xFA17ULL;
  }
  // Partition scheduler: S2FA_SCHEDULER env, --scheduler flag wins.
  if (const char* env_sched = std::getenv("S2FA_SCHEDULER")) {
    auto parsed = dse::ParseSchedulerKind(env_sched);
    if (!parsed) {
      std::fprintf(stderr,
                   "error: S2FA_SCHEDULER expects adaptive|fcfs, got '%s'\n",
                   env_sched);
      return 2;
    }
    options.scheduler = *parsed;
  }
  if (args.Has("scheduler")) {
    auto parsed = dse::ParseSchedulerKind(args.Str("scheduler"));
    if (!parsed) {
      std::fprintf(stderr,
                   "error: --scheduler expects adaptive|fcfs, got '%s'\n",
                   args.Str("scheduler").c_str());
      return 2;
    }
    options.scheduler = *parsed;
  }
  // Technique roster: S2FA_TECHNIQUES env, --techniques flag wins. The
  // roster is validated up front (against this app's design space) so a
  // typo dies with the list of valid names instead of deep in the DSE.
  std::string technique_spec;
  if (const char* env_techniques = std::getenv("S2FA_TECHNIQUES")) {
    technique_spec = env_techniques;
  }
  if (args.Has("techniques")) technique_spec = args.Str("techniques");
  if (!technique_spec.empty()) {
    options.techniques = tuner::ParseTechniqueList(technique_spec);
    try {
      tuner::MakeTechniques(&space, seed, options.techniques);
    } catch (const InvalidArgument& e) {
      std::fprintf(stderr, "error: --techniques: %s\n", e.what());
      return 2;
    }
  }
  if (auto env_cache = cache::ReadEnvCacheOptions()) options.cache = *env_cache;
  if (args.Has("eval-cache")) {
    auto parsed = cache::ParseCacheSpec(args.Str("eval-cache"));
    if (!parsed) {
      std::fprintf(stderr,
                   "error: --eval-cache expects on|off|N, got '%s'\n",
                   args.Str("eval-cache").c_str());
      return 2;
    }
    options.cache = *parsed;
  }
  // Fail fast before the (simulated) hours of exploration, exactly like
  // the --trace-out/--metrics-out probes.
  if (!CheckWritable("--resume-journal", options.journal_path)) return 2;

  dse::DseResult result;
  if (args.Has("vanilla")) {
    result = dse::RunVanillaOpenTuner(space, eval, options);
  } else {
    result = dse::RunS2faDse(space, k, eval, options);
  }

  const resilience::ResilienceStats& rs = result.resilience;
  if (rs.retries > 0 || rs.exhausted > 0 || rs.short_circuits > 0) {
    std::printf("resilience: %zu retries (%zu crash, %zu timeout, "
                "%zu garbage), %zu points degraded, %zu breaker trips, "
                "%zu short-circuited\n",
                rs.retries, rs.crashes, rs.timeouts, rs.garbage,
                rs.exhausted, rs.breaker_trips, rs.short_circuits);
  }
  if (!options.journal_path.empty()) {
    std::printf("journal: %zu entries (%zu resumed, %zu re-used this "
                "run)\n",
                result.journal_entries, result.journal_resumed,
                result.journal_hits);
  }
  const cache::EvalCacheStats& cs = result.cache_stats;
  if (cs.lookups > 0) {
    std::printf("cache: %zu/%zu duplicate lookups answered (%.0f%% of the "
                "proposal stream), %zu joined in flight, %.0f simulated "
                "minutes not re-paid\n",
                cs.hits + cs.inflight_joins, cs.lookups,
                100.0 * cs.DuplicateRate(), cs.inflight_joins,
                cs.minutes_saved);
  }

  if (!args.Has("vanilla")) {
    std::printf("scheduler: %s\n",
                dse::SchedulerKindName(result.scheduler));
    if (result.scheduler == dse::SchedulerKind::kAdaptive &&
        result.schedule.reclaimed_minutes > 0) {
      std::printf("  budget ledger: %.0f min reclaimed, %.0f re-granted in "
                  "%zu slices (%zu preemptions), %zu extra evaluations, "
                  "%.0f min idle\n",
                  result.schedule.reclaimed_minutes,
                  result.schedule.regranted_minutes,
                  result.schedule.grants, result.schedule.preemptions,
                  result.schedule.reclaim_evaluations,
                  result.schedule.idle_minutes);
    }
  }
  std::printf("partitions:\n");
  for (const auto& p : result.partitions) {
    std::printf("  [%s] %s: %.0f-%.0f min, %zu evals, best %.2f us (%s)\n",
                p.description.c_str(), p.scheduled ? "ran" : "skipped",
                p.start_minutes, p.end_minutes, p.result.evaluations,
                p.clipped_best_cost, p.result.stop_reason.c_str());
    if (p.reclaim_grants > 0) {
      std::printf("      + %.0f reclaimed min in %zu grants, %zu evals, "
                  "best %.2f us\n",
                  p.reclaim_minutes, p.reclaim_grants,
                  p.reclaim_evaluations, p.reclaim_best_cost);
    }
  }
  std::printf("\ntrace (best-so-far):\n");
  for (const auto& tp : result.trace) {
    std::printf("  %7.1f min  %12.2f us\n", tp.time_minutes, tp.best_cost);
  }
  if (!result.found_feasible) {
    std::printf("\nno feasible design found\n");
    return 1;
  }
  std::printf("\nbest: %.2f us with %s\nfinished at %.0f simulated minutes, "
              "%zu evaluations\n",
              result.best_cost, result.best_config.ToString().c_str(),
              result.elapsed_minutes, result.evaluations);
  return 0;
}

int CmdRun(apps::App& app, const Args& args) {
  const std::size_t records =
      static_cast<std::size_t>(args.Num("records", 2048));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.Num("seed", 1));

  FrameworkOptions options;
  options.dse.time_limit_minutes = args.Num("minutes", 120);
  options.dse.seed = seed;
  Artifact artifact = BuildAccelerator(*app.pool, app.spec, options);
  std::printf("built %s: %.0f cycles @ %.0f MHz (%zu points explored)\n",
              app.name.c_str(), artifact.best_hls.cycles,
              artifact.best_hls.freq_mhz, artifact.exploration.evaluations);

  blaze::BlazeRuntime runtime;
  RegisterWithBlaze(runtime, app.name, artifact);
  const double accel_fault_rate = args.Num("accel-fault-rate", 0);
  if (accel_fault_rate < 0 || accel_fault_rate > 1) {
    std::fprintf(stderr, "error: --accel-fault-rate must be in [0, 1]\n");
    return 2;
  }
  if (accel_fault_rate > 0) {
    runtime.SetFaultInjector(
        blaze::MakeRandomFaultInjector(accel_fault_rate, seed ^ 0xB1A2ULL));
  }

  Rng rng(seed);
  blaze::Dataset input = app.make_input(records, rng);
  blaze::Dataset broadcast;
  const blaze::Dataset* bc = nullptr;
  if (app.make_broadcast) {
    Rng brng(seed ^ 0xBCA57ULL);
    broadcast = app.make_broadcast(brng);
    bc = &broadcast;
  }

  blaze::ExecutionStats stats;
  blaze::Dataset out =
      app.spec.pattern == kir::ParallelPattern::kReduce
          ? runtime.Reduce(app.name, input, bc, &stats)
          : runtime.Map(app.name, input, bc, &stats);
  apps::JvmRunResult jvm = apps::RunOnJvm(app, input, bc);

  // Functional cross-check against the JVM path.
  std::size_t mismatches = 0;
  for (std::size_t c = 0; c < out.num_columns(); ++c) {
    const blaze::Column& got = out.column(c);
    const blaze::Column& want = jvm.output.ColumnByField(got.field);
    for (std::size_t n = 0; n < got.data.size(); ++n) {
      double g = got.data[n].is_float() ? got.data[n].AsFloat()
                 : got.data[n].is_double()
                     ? got.data[n].AsDouble()
                     : static_cast<double>(got.data[n].AsInt());
      double w = want.data[n].is_float() ? want.data[n].AsFloat()
                 : want.data[n].is_double()
                     ? want.data[n].AsDouble()
                     : static_cast<double>(want.data[n].AsInt());
      double tol = 1e-4 * std::max(1.0, std::fabs(w));
      if (std::fabs(g - w) > tol) ++mismatches;
    }
  }

  std::printf("records: %zu  invocations: %zu  mismatches vs JVM: %zu\n",
              records, stats.invocations, mismatches);
  if (stats.accel_failures > 0) {
    std::printf("degradation: %zu failed attempts, %zu retries, %zu host "
                "fallbacks (%.3f ms on the host path)\n",
                stats.accel_failures, stats.accel_retries,
                stats.host_fallbacks, stats.host_us / 1e3);
  }
  std::printf("JVM:  %10.2f ms (modeled single thread)\n",
              jvm.total_ns / 1e6);
  std::printf("FPGA: %10.3f ms  -> speedup %.1fx\n", stats.total_us / 1e3,
              jvm.total_ns / 1000.0 / stats.total_us);
  return mismatches == 0 ? 0 : 1;
}

// Strict numeric parsers for the serving knobs: the whole string must be
// the number (no trailing junk), so a typo'd knob fails fast instead of
// silently truncating.
std::optional<std::size_t> ParseSizeStrict(const std::string& text) {
  std::size_t value = 0;
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc() || ptr != end || text.empty()) return std::nullopt;
  return value;
}

std::optional<double> ParseDoubleStrict(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return std::nullopt;
  return value;
}

// Serving knobs resolved environment-first (flags win), each validated
// fail-fast in the same style as the evaluation-stack knobs. Returns
// false after printing the offending knob.
struct TenantSpec {
  std::string name;
  double weight = 1.0;
  std::size_t quota = 0;
};

struct ServeKnobs {
  blaze::ServiceOptions options;
  std::vector<blaze::FaultBurst> bursts;
  std::size_t shards = 0;  // 0 = single-service mode
  std::vector<TenantSpec> tenants;
  blaze::ChaosPlan chaos;
  bool has_chaos = false;
  blaze::Routing routing = blaze::Routing::kHealth;

  // Streaming mode (--stream): open-ended arrivals through StreamSession
  // instead of the pre-staged replay.
  bool stream = false;
  double arrival_rate = 1.0;  // multiple of modeled cluster capacity
  double slo_us = 0;          // 0 = derived (30x the per-request cost)
  bool has_retry_budget = false;
  resilience::RetryBudgetOptions retry_budget;
  bool has_brownout = false;
  double brownout_onset_us = 0;
  double brownout_shed_us = 0;
  double brownout_fraction = 0.5;
};

// NAME:WEIGHT[:QUOTA], comma-separated; rejects duplicates and weight <= 0.
bool ParseTenantSpecs(const std::string& text,
                      std::vector<TenantSpec>& tenants) {
  std::stringstream stream(text);
  std::string piece;
  while (std::getline(stream, piece, ',')) {
    const std::string entry(Trim(piece));
    if (entry.empty()) return false;
    const std::size_t first = entry.find(':');
    if (first == std::string::npos) return false;
    TenantSpec spec;
    spec.name = entry.substr(0, first);
    if (spec.name.empty()) return false;
    const std::size_t second = entry.find(':', first + 1);
    const std::string weight_text =
        entry.substr(first + 1, second == std::string::npos
                                    ? std::string::npos
                                    : second - first - 1);
    auto weight = ParseDoubleStrict(weight_text);
    if (!weight || *weight <= 0) return false;
    spec.weight = *weight;
    if (second != std::string::npos) {
      auto quota = ParseSizeStrict(entry.substr(second + 1));
      if (!quota) return false;
      spec.quota = *quota;
    }
    for (const TenantSpec& existing : tenants) {
      if (existing.name == spec.name) return false;
    }
    tenants.push_back(std::move(spec));
  }
  return !tenants.empty();
}

bool ResolveServeKnobs(const Args& args, ServeKnobs& knobs) {
  auto resolve = [&](const char* env_name, const char* flag,
                     std::string& out) {
    if (const char* env = std::getenv(env_name)) out = env;
    if (args.Has(flag)) out = args.Str(flag);
    return !out.empty();
  };
  std::string text;
  if (resolve("S2FA_SERVE_QUEUE", "serve-queue", text)) {
    auto queue = ParseSizeStrict(text);
    if (!queue || *queue == 0) {
      std::fprintf(stderr,
                   "error: --serve-queue/S2FA_SERVE_QUEUE expects an "
                   "integer >= 1, got '%s'\n",
                   text.c_str());
      return false;
    }
    knobs.options.queue_capacity = *queue;
  }
  text.clear();
  if (resolve("S2FA_HEDGE_QUANTILE", "hedge-quantile", text)) {
    auto quantile = ParseDoubleStrict(text);
    if (!quantile || *quantile < 0 || *quantile > 1) {
      std::fprintf(stderr,
                   "error: --hedge-quantile/S2FA_HEDGE_QUANTILE expects a "
                   "value in [0, 1] (0 disables hedging), got '%s'\n",
                   text.c_str());
      return false;
    }
    knobs.options.hedge_quantile = *quantile;
  }
  text.clear();
  if (resolve("S2FA_QUARANTINE_WINDOW", "quarantine-window", text)) {
    auto window = ParseSizeStrict(text);
    if (!window || *window < 2) {
      std::fprintf(stderr,
                   "error: --quarantine-window/S2FA_QUARANTINE_WINDOW "
                   "expects an integer >= 2, got '%s'\n",
                   text.c_str());
      return false;
    }
    knobs.options.health_window = *window;
  }
  text.clear();
  if (resolve("S2FA_FAULT_BURST", "fault-burst", text)) {
    try {
      knobs.bursts = blaze::ParseFaultBursts(text);
    } catch (const MalformedInput& e) {
      std::fprintf(stderr,
                   "error: --fault-burst/S2FA_FAULT_BURST expects "
                   "non-overlapping START:LEN windows (e.g. 4:3,10:2): %s\n",
                   e.what());
      return false;
    }
  }
  text.clear();
  if (resolve("S2FA_SHARDS", "shards", text)) {
    auto shards = ParseSizeStrict(text);
    if (!shards || *shards == 0) {
      std::fprintf(stderr,
                   "error: --shards/S2FA_SHARDS expects an integer >= 1, "
                   "got '%s'\n",
                   text.c_str());
      return false;
    }
    knobs.shards = *shards;
  }
  text.clear();
  if (resolve("S2FA_TENANTS", "tenants", text)) {
    if (!ParseTenantSpecs(text, knobs.tenants)) {
      std::fprintf(stderr,
                   "error: --tenants/S2FA_TENANTS expects unique "
                   "NAME:WEIGHT[:QUOTA] entries with weight > 0, got '%s'\n",
                   text.c_str());
      return false;
    }
  }
  text.clear();
  if (resolve("S2FA_CHAOS_PLAN", "chaos-plan", text)) {
    try {
      knobs.chaos = blaze::ParseChaosPlan(text);
      knobs.has_chaos = true;
    } catch (const MalformedInput& e) {
      std::fprintf(stderr, "error: --chaos-plan/S2FA_CHAOS_PLAN: %s\n",
                   e.what());
      return false;
    }
  }
  text.clear();
  if (resolve("S2FA_ROUTING", "routing", text)) {
    try {
      knobs.routing = blaze::ParseRouting(text);
    } catch (const MalformedInput& e) {
      std::fprintf(stderr, "error: --routing/S2FA_ROUTING: %s\n", e.what());
      return false;
    }
  }
  {
    std::string stream_text;
    if (const char* env = std::getenv("S2FA_STREAM")) stream_text = env;
    if (args.Has("stream")) stream_text = "1";
    knobs.stream = !stream_text.empty() && stream_text != "0";
  }
  text.clear();
  if (resolve("S2FA_ARRIVAL_RATE", "arrival-rate", text)) {
    auto rate = ParseDoubleStrict(text);
    if (!rate || !(*rate > 0) || !std::isfinite(*rate)) {
      std::fprintf(stderr,
                   "error: --arrival-rate/S2FA_ARRIVAL_RATE expects a "
                   "finite multiple of capacity > 0, got '%s'\n",
                   text.c_str());
      return false;
    }
    knobs.arrival_rate = *rate;
  }
  text.clear();
  if (resolve("S2FA_SLO", "slo", text)) {
    auto slo = ParseDoubleStrict(text);
    if (!slo || !(*slo > 0) || !std::isfinite(*slo)) {
      std::fprintf(stderr,
                   "error: --slo/S2FA_SLO expects a deadline in "
                   "microseconds > 0, got '%s'\n",
                   text.c_str());
      return false;
    }
    knobs.slo_us = *slo;
  }
  text.clear();
  if (resolve("S2FA_RETRY_BUDGET", "retry-budget", text)) {
    const std::size_t colon = text.find(':');
    auto refill = ParseDoubleStrict(text.substr(0, colon));
    std::optional<double> burst;
    if (colon != std::string::npos) {
      burst = ParseDoubleStrict(text.substr(colon + 1));
    }
    if (!refill || *refill < 0 || !burst || *burst < 1) {
      std::fprintf(stderr,
                   "error: --retry-budget/S2FA_RETRY_BUDGET expects "
                   "REFILL_PER_SEC:BURST with refill >= 0 and burst >= 1, "
                   "got '%s'\n",
                   text.c_str());
      return false;
    }
    knobs.retry_budget.refill_per_sec = *refill;
    knobs.retry_budget.burst = *burst;
    knobs.has_retry_budget = true;
  }
  text.clear();
  if (resolve("S2FA_BROWNOUT", "brownout", text)) {
    const std::size_t first = text.find(':');
    const std::size_t second =
        first == std::string::npos ? std::string::npos
                                   : text.find(':', first + 1);
    auto onset = ParseDoubleStrict(text.substr(0, first));
    std::optional<double> shed;
    if (first != std::string::npos) {
      shed = ParseDoubleStrict(text.substr(
          first + 1, second == std::string::npos ? std::string::npos
                                                 : second - first - 1));
    }
    std::optional<double> fraction = 0.5;
    if (second != std::string::npos) {
      fraction = ParseDoubleStrict(text.substr(second + 1));
    }
    if (!onset || !(*onset > 0) || !shed || !(*shed > *onset) || !fraction ||
        !(*fraction > 0) || *fraction > 1.0) {
      std::fprintf(stderr,
                   "error: --brownout/S2FA_BROWNOUT expects "
                   "ONSET_US:SHED_US[:MAX_FRACTION] with 0 < onset < shed "
                   "and fraction in (0, 1], got '%s'\n",
                   text.c_str());
      return false;
    }
    knobs.brownout_onset_us = *onset;
    knobs.brownout_shed_us = *shed;
    knobs.brownout_fraction = *fraction;
    knobs.has_brownout = true;
  }
  if ((knobs.has_chaos || !knobs.tenants.empty() || knobs.stream) &&
      knobs.shards == 0) {
    // Chaos schedules, tenancy, and streaming are cluster features;
    // default to one fault domain rather than silently ignoring them.
    knobs.shards = 1;
  }
  const int exec_threads = static_cast<int>(args.Num("exec-threads", 1));
  if (exec_threads < 1) {
    std::fprintf(stderr, "error: --exec-threads must be >= 1\n");
    return false;
  }
  knobs.options.exec_threads = exec_threads;
  return true;
}

// Fuzzy reference comparison shared by the replay and streaming paths.
std::size_t CountMismatches(const blaze::Dataset& want,
                            const blaze::Dataset& got) {
  std::size_t mismatches = 0;
  for (std::size_t c = 0; c < want.num_columns(); ++c) {
    const blaze::Column& w = want.column(c);
    const blaze::Column& g = got.ColumnByField(w.field);
    for (std::size_t n = 0; n < w.data.size(); ++n) {
      double wv = w.data[n].is_float() ? w.data[n].AsFloat()
                  : w.data[n].is_double()
                      ? w.data[n].AsDouble()
                      : static_cast<double>(w.data[n].AsInt());
      double gv = g.data[n].is_float() ? g.data[n].AsFloat()
                  : g.data[n].is_double()
                      ? g.data[n].AsDouble()
                      : static_cast<double>(g.data[n].AsInt());
      if (std::fabs(gv - wv) > 1e-4 * std::max(1.0, std::fabs(wv))) {
        ++mismatches;
      }
    }
  }
  return mismatches;
}

// Streaming serve (--stream): records arrive continuously per a
// rate-programmed schedule and flow through StreamSession's SLO-bound
// micro-batching and overload ladder on top of the cluster. The ladder
// thresholds scale off the modeled per-request cost unless overridden, so
// the same flags behave sensibly across kernels. Exit 0 only when every
// record reached exactly one terminal state, the external watermark never
// regressed, and every committed output matches the native reference.
int RunStreamServe(apps::App& app, const ServeKnobs& knobs,
                   blaze::BlazeCluster& cluster, blaze::BlazeRuntime& runtime,
                   const std::vector<std::string>& ids, int requests,
                   std::size_t records, std::uint64_t seed,
                   const blaze::Dataset* bc) {
  const blaze::ExecutionStats per = runtime.PerInvocationCost(ids.front());
  const auto batch = static_cast<std::size_t>(
      runtime.manager().Get(ids.front()).plan.batch);
  const double record_us =
      static_cast<double>(
          std::max<std::size_t>(1, (records + batch - 1) / batch)) *
      per.total_us;

  blaze::StreamOptions sopts;
  sopts.slo_us = knobs.slo_us > 0 ? knobs.slo_us : 30.0 * record_us;
  sopts.batch_age_us = record_us;
  sopts.deadline_headroom_us = std::min(2.0 * record_us, sopts.slo_us / 4);
  sopts.codel_target_us = 2.0 * record_us;
  sopts.codel_interval_us = 4.0 * record_us;
  if (knobs.has_brownout) {
    sopts.brownout_onset_us = knobs.brownout_onset_us;
    sopts.shed_onset_us = knobs.brownout_shed_us;
    sopts.brownout_max_fraction = knobs.brownout_fraction;
  } else {
    sopts.brownout_onset_us = 3.0 * record_us;
    sopts.shed_onset_us = 8.0 * record_us;
  }
  if (knobs.has_retry_budget) sopts.retry_budget = knobs.retry_budget;

  // One arrival phase per declared tenant, all spanning the same window;
  // the aggregate rate is `arrival_rate` times the modeled capacity of
  // `shards` lanes.
  std::vector<std::string> tenant_names;
  for (const TenantSpec& spec : knobs.tenants) {
    tenant_names.push_back(spec.name);
  }
  if (tenant_names.empty()) tenant_names.push_back("default");
  const double duration_us =
      static_cast<double>(requests) * record_us /
      (static_cast<double>(knobs.shards) * knobs.arrival_rate);
  blaze::ArrivalSchedule schedule;
  for (std::size_t t = 0; t < tenant_names.size(); ++t) {
    blaze::ArrivalPhase phase;
    phase.tenant = tenant_names[t];
    phase.start_us = 0;
    phase.duration_us = duration_us;
    phase.count = static_cast<std::size_t>(requests) / tenant_names.size() +
                  (t < static_cast<std::size_t>(requests) %
                           tenant_names.size()
                       ? 1
                       : 0);
    if (phase.count > 0) schedule.phases.push_back(std::move(phase));
  }

  // Inputs pre-generated by ordinal so the reference cross-check sees the
  // same data the generator hands the session.
  Rng rng(seed);
  std::vector<blaze::Dataset> inputs;
  std::vector<blaze::Dataset> expected;
  inputs.reserve(static_cast<std::size_t>(requests));
  expected.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    inputs.push_back(app.make_input(records, rng));
    expected.push_back(app.reference(inputs.back(), bc));
  }

  blaze::StreamSession session(cluster, sopts);
  std::vector<blaze::StreamRecordOutcome> outcomes = session.Run(
      schedule, [&app, &inputs, bc](std::size_t ordinal) {
        blaze::StreamRecord record;
        record.kernel = app.name;
        record.input = inputs[ordinal];
        record.broadcast = bc;
        return record;
      });

  std::size_t mismatches = 0;
  for (const blaze::StreamRecordOutcome& o : outcomes) {
    if (blaze::IsStreamShed(o.outcome)) continue;
    mismatches += CountMismatches(expected[o.seq], o.output);
  }
  const blaze::StreamStats& s = session.stats();
  const std::size_t lost = s.arrivals - s.committed - s.committed_host -
                           s.shed_total();
  bool watermark_monotone = true;
  for (std::size_t i = 1; i < s.watermark_trace.size(); ++i) {
    if (s.watermark_trace[i].second < s.watermark_trace[i - 1].second) {
      watermark_monotone = false;
    }
  }

  std::printf("stream serving %d records x %zu input records on %zu "
              "shard%s (%.2fx capacity, slo %.0f us, %s routing)\n",
              requests, records, knobs.shards, knobs.shards == 1 ? "" : "s",
              knobs.arrival_rate, sopts.slo_us,
              blaze::RoutingName(knobs.routing));
  std::printf("arrivals:  %zu; committed %zu cluster + %zu host; shed %zu "
              "(%zu unmeetable, %zu brownout, %zu retry-budget, %zu "
              "queue-full); %zu lost\n",
              s.arrivals, s.committed, s.committed_host, s.shed_total(),
              s.shed_unmeetable, s.shed_brownout, s.shed_retry_budget,
              s.shed_queue_full, lost);
  std::printf("batching:  %zu closed (%zu count / %zu age / %zu deadline), "
              "%zu dispatched, %zu host-routed, %zu shed\n",
              s.batches_closed, s.close_count, s.close_age, s.close_deadline,
              s.batches_dispatched, s.batches_host, s.batches_shed);
  std::printf("overload:  %zu codel engagements, retries %zu granted / %zu "
              "denied, max queue delay %.0f us\n",
              s.codel_engagements, s.retries_granted, s.retries_denied,
              s.max_queue_delay_us);
  std::printf("watermark: %.0f us (%s)\n", s.watermark_us,
              watermark_monotone ? "monotone" : "REGRESSED");
  std::printf("latency:   p50 %.0f / p95 %.0f / p99 %.0f us\n",
              s.LatencyQuantile(0.5), s.LatencyQuantile(0.95),
              s.LatencyQuantile(0.99));
  TextTable table({"Tenant", "Arrivals", "Committed", "Host", "Unmeetable",
                   "Brownout", "RetryBudget", "QueueFull", "Retries"});
  for (const auto& [name, ts] : s.tenants) {
    table.AddRow({name, std::to_string(ts.arrivals),
                  std::to_string(ts.committed),
                  std::to_string(ts.committed_host),
                  std::to_string(ts.shed_unmeetable),
                  std::to_string(ts.shed_brownout),
                  std::to_string(ts.shed_retry_budget),
                  std::to_string(ts.shed_queue_full),
                  std::to_string(ts.retries)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("mismatches vs reference: %zu\n", mismatches);
  return (lost == 0 && mismatches == 0 && watermark_monotone) ? 0 : 1;
}

// Serves the request stream through BlazeCluster: replicas spread
// round-robin over `knobs.shards` fault domains, requests assigned to the
// declared tenants round-robin, optional scripted chaos. Prints the
// cluster ledger plus a per-tenant fairness table; exit 0 only when
// nothing was lost and every served output matches the native reference.
int ServeThroughCluster(apps::App& app, ServeKnobs& knobs,
                        blaze::BlazeRuntime& runtime,
                        const std::vector<std::string>& ids, int requests,
                        std::size_t records, std::uint64_t seed) {
  blaze::ClusterOptions coptions;
  coptions.shard_options = knobs.options;
  coptions.exec_threads = knobs.options.exec_threads;
  coptions.seed = knobs.options.seed;
  coptions.queue_capacity = knobs.options.queue_capacity;
  coptions.routing = knobs.routing;
  blaze::BlazeCluster cluster(runtime, coptions);
  for (std::size_t s = 0; s < knobs.shards; ++s) cluster.AddShard();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    cluster.AddReplica(i % knobs.shards, app.name, ids[i]);
  }
  std::vector<std::string> tenant_names;
  for (const TenantSpec& spec : knobs.tenants) {
    cluster.AddTenant(spec.name, spec.weight, spec.quota);
    tenant_names.push_back(spec.name);
  }
  if (tenant_names.empty()) tenant_names.push_back("default");

  Rng rng(seed);
  blaze::Dataset broadcast;
  const blaze::Dataset* bc = nullptr;
  if (app.make_broadcast) {
    Rng brng(seed ^ 0xBCA57ULL);
    broadcast = app.make_broadcast(brng);
    bc = &broadcast;
  }
  // --fault-burst windows become unscoped chaos bursts (every shard).
  for (const blaze::FaultBurst& burst : knobs.bursts) {
    blaze::ChaosBurst chaos_burst;
    chaos_burst.window = burst;
    knobs.chaos.bursts.push_back(chaos_burst);
    knobs.has_chaos = true;
  }
  if (knobs.has_chaos) {
    try {
      cluster.SetChaosPlan(knobs.chaos);
    } catch (const Error& e) {
      std::fprintf(stderr, "error: --chaos-plan/S2FA_CHAOS_PLAN: %s\n",
                   e.what());
      return 2;
    }
    // Floods draw from the same workload generator on a disjoint stream.
    auto flood_rng = std::make_shared<Rng>(seed ^ 0xF100DULL);
    cluster.SetFloodGenerator(
        [&app, bc, records, flood_rng](std::size_t) {
          blaze::ClusterRequest rq;
          rq.kernel = app.name;
          rq.input = app.make_input(records, *flood_rng);
          rq.broadcast = bc;
          return rq;
        });
  }

  if (knobs.stream) {
    return RunStreamServe(app, knobs, cluster, runtime, ids, requests,
                          records, seed, bc);
  }

  // Open-loop arrivals near the full cluster's service rate.
  const blaze::ExecutionStats per = runtime.PerInvocationCost(ids.front());
  const auto batch = static_cast<std::size_t>(
      runtime.manager().Get(ids.front()).plan.batch);
  const double request_us =
      static_cast<double>(std::max<std::size_t>(
          1, (records + batch - 1) / batch)) *
      per.total_us;
  const double spacing_us =
      0.8 * request_us / static_cast<double>(ids.size());
  std::vector<blaze::ClusterRequest> stream;
  std::vector<blaze::Dataset> expected;
  double arrival = 0;
  for (int i = 0; i < requests; ++i) {
    blaze::ClusterRequest rq;
    rq.kernel = app.name;
    rq.input = app.make_input(records, rng);
    rq.broadcast = bc;
    rq.arrival_us = arrival;
    rq.tenant = tenant_names[static_cast<std::size_t>(i) %
                             tenant_names.size()];
    arrival += spacing_us * rng.NextDouble(0.5, 1.5);
    expected.push_back(app.reference(rq.input, bc));
    stream.push_back(std::move(rq));
  }
  std::vector<blaze::ClusterRequestOutcome> outcomes =
      cluster.Run(std::move(stream));

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const blaze::ClusterRequestOutcome& o = outcomes[i];
    if (o.outcome == blaze::ClusterServe::kRejectedFull ||
        o.outcome == blaze::ClusterServe::kTenantThrottled) {
      continue;
    }
    mismatches += CountMismatches(expected[i], o.output);
  }

  const blaze::ClusterStats& s = cluster.stats();
  const std::size_t lost =
      s.submitted - s.completed - s.rejected_full - s.tenant_throttled;
  std::printf("cluster serving %d requests x %zu records on %zu shard%s "
              "(%zu replicas, queue %zu, batch <= %zu, %d exec threads, "
              "%s routing)\n",
              requests, records, knobs.shards, knobs.shards == 1 ? "" : "s",
              ids.size(), coptions.queue_capacity,
              coptions.batch_max_requests, coptions.exec_threads,
              blaze::RoutingName(coptions.routing));
  std::printf("admitted:  %zu/%zu (%zu rejected at the gate, %zu tenant "
              "throttled), max queue depth %zu\n",
              s.admitted, s.submitted, s.rejected_full, s.tenant_throttled,
              s.max_queue_depth);
  std::printf("completed: %zu (%zu accelerator, %zu host, %zu hedged "
              "host), %zu lost\n",
              s.completed, s.completed_accel, s.completed_host,
              s.completed_hedge, lost);
  std::printf("batching:  %zu batches, %zu members, max batch %zu\n",
              s.batches, s.batched_requests, s.max_batch);
  std::printf("latency:   p50 %.0f / p95 %.0f / p99 %.0f us\n",
              s.LatencyQuantile(0.5), s.LatencyQuantile(0.95),
              s.LatencyQuantile(0.99));
  if (s.failovers > 0 || s.bisect_attempts > 0 || s.flood_injected > 0) {
    std::printf("chaos:     %zu failovers, %zu redirects (%zu exhausted), "
                "%zu bisect attempts, %zu poison isolated, %zu flood "
                "requests, %zu commit conflicts\n",
                s.failovers, s.redirects, s.redirect_exhausted,
                s.bisect_attempts, s.poison_isolated, s.flood_injected,
                s.commit_conflicts);
  }
  for (std::size_t i = 0; i < s.shards.size(); ++i) {
    const blaze::ShardStats& shard = s.shards[i];
    std::printf("shard %zu:   %zu batches, %zu requests, %zu kills, %zu "
                "restarts, %.1f ms busy (%.1f ms wasted)\n",
                i, shard.batches, shard.requests, shard.kills,
                shard.restarts, shard.busy_us / 1e3, shard.wasted_us / 1e3);
  }
  // Shed columns split by reason (queue-full vs quota throttle) and
  // completions by serving path, so fairness regressions show *why* a
  // tenant lost traffic and *how* the surviving traffic was served.
  TextTable table({"Tenant", "Weight", "Quota", "Submitted", "Admitted",
                   "ShedFull", "Throttled", "Completed", "Accel", "Host",
                   "Hedge", "Records", "p50 us", "p99 us"});
  for (const auto& [name, ts] : s.tenants) {
    table.AddRow({name, FormatDouble(ts.weight, 1),
                  ts.quota == 0 ? "-" : std::to_string(ts.quota),
                  std::to_string(ts.submitted), std::to_string(ts.admitted),
                  std::to_string(ts.rejected_full),
                  std::to_string(ts.throttled), std::to_string(ts.completed),
                  std::to_string(ts.completed_accel),
                  std::to_string(ts.completed_host),
                  std::to_string(ts.completed_hedge),
                  std::to_string(ts.records_completed),
                  FormatDouble(ts.LatencyQuantile(0.5), 0),
                  FormatDouble(ts.LatencyQuantile(0.99), 0)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("mismatches vs reference: %zu\n", mismatches);
  return (lost == 0 && mismatches == 0) ? 0 : 1;
}

int CmdServe(apps::App& app, const Args& args) {
  ServeKnobs knobs;
  if (!ResolveServeKnobs(args, knobs)) return 2;
  const int replicas = static_cast<int>(args.Num("replicas", 2));
  const int requests = static_cast<int>(args.Num("requests", 32));
  const std::size_t records =
      static_cast<std::size_t>(args.Num("records", 256));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.Num("seed", 1));
  if (replicas < 1 || requests < 1 || records < 1) {
    std::fprintf(stderr,
                 "error: --replicas, --requests and --records must be >= 1\n");
    return 2;
  }
  knobs.options.seed = seed;

  FrameworkOptions options;
  options.dse.time_limit_minutes = args.Num("minutes", 120);
  options.dse.seed = seed;
  Artifact artifact = BuildAccelerator(*app.pool, app.spec, options);
  std::printf("built %s: %.0f cycles @ %.0f MHz (%zu points explored)\n",
              app.name.c_str(), artifact.best_hls.cycles,
              artifact.best_hls.freq_mhz, artifact.exploration.evaluations);

  blaze::BlazeRuntime runtime;
  std::vector<std::string> ids;
  for (int i = 0; i < replicas; ++i) {
    ids.push_back(app.name + "#" + std::to_string(i));
    RegisterWithBlaze(runtime, ids.back(), artifact);
  }
  if (knobs.shards > 0) {
    return ServeThroughCluster(app, knobs, runtime, ids, requests, records,
                               seed);
  }
  blaze::BlazeService service(runtime, knobs.options);
  for (const std::string& id : ids) service.AddReplica(app.name, id);
  if (!knobs.bursts.empty()) {
    service.SetFaultInjector(blaze::MakeBurstFaultInjector(knobs.bursts));
    for (const blaze::FaultBurst& burst : knobs.bursts) {
      std::printf("fault burst: per-replica invocations [%zu, %zu) fail\n",
                  burst.start, burst.start + burst.length);
    }
  }

  Rng rng(seed);
  blaze::Dataset broadcast;
  const blaze::Dataset* bc = nullptr;
  if (app.make_broadcast) {
    Rng brng(seed ^ 0xBCA57ULL);
    broadcast = app.make_broadcast(brng);
    bc = &broadcast;
  }

  // Open-loop arrivals near the group's service rate, with deterministic
  // jitter: enough pressure to queue without drowning the admission gate.
  const blaze::ExecutionStats per = runtime.PerInvocationCost(ids.front());
  const auto batch = static_cast<std::size_t>(
      runtime.manager().Get(ids.front()).plan.batch);
  const double request_us =
      static_cast<double>(std::max<std::size_t>(
          1, (records + batch - 1) / batch)) *
      per.total_us;
  const double spacing_us = 0.8 * request_us / replicas;
  std::vector<blaze::ServiceRequest> stream;
  std::vector<blaze::Dataset> expected;
  double arrival = 0;
  for (int i = 0; i < requests; ++i) {
    blaze::ServiceRequest rq;
    rq.kernel = app.name;
    rq.input = app.make_input(records, rng);
    rq.broadcast = bc;
    rq.arrival_us = arrival;
    arrival += spacing_us * rng.NextDouble(0.5, 1.5);
    expected.push_back(app.reference(rq.input, bc));
    stream.push_back(std::move(rq));
  }
  std::vector<blaze::RequestOutcome> outcomes =
      service.Run(std::move(stream));

  // Functional cross-check of every completed request against the native
  // reference (same tolerance as `run`).
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const blaze::RequestOutcome& o = outcomes[i];
    if (o.outcome == blaze::ServeOutcome::kRejectedFull ||
        o.outcome == blaze::ServeOutcome::kShedExpired) {
      continue;
    }
    for (std::size_t c = 0; c < expected[i].num_columns(); ++c) {
      const blaze::Column& want = expected[i].column(c);
      const blaze::Column& got = o.output.ColumnByField(want.field);
      for (std::size_t n = 0; n < want.data.size(); ++n) {
        double w = want.data[n].is_float() ? want.data[n].AsFloat()
                   : want.data[n].is_double()
                       ? want.data[n].AsDouble()
                       : static_cast<double>(want.data[n].AsInt());
        double g = got.data[n].is_float() ? got.data[n].AsFloat()
                   : got.data[n].is_double()
                       ? got.data[n].AsDouble()
                       : static_cast<double>(got.data[n].AsInt());
        if (std::fabs(g - w) > 1e-4 * std::max(1.0, std::fabs(w))) {
          ++mismatches;
        }
      }
    }
  }

  const blaze::ServiceStats& s = service.stats();
  const std::size_t lost = s.admitted - (s.completed + s.shed_expired);
  std::printf("serving %d requests x %zu records on %d replica%s "
              "(queue %zu, hedge q=%.2f, window %zu, %d exec threads)\n",
              requests, records, replicas, replicas == 1 ? "" : "s",
              knobs.options.queue_capacity, knobs.options.hedge_quantile,
              knobs.options.health_window, knobs.options.exec_threads);
  std::printf("admitted:  %zu/%zu (%zu rejected at the gate, %zu shed "
              "expired), max queue depth %zu\n",
              s.admitted, s.submitted, s.rejected_full, s.shed_expired,
              s.max_queue_depth);
  std::printf("completed: %zu (%zu accelerator, %zu host, %zu hedged host), "
              "%zu lost, %zu deadline misses\n",
              s.completed, s.completed_accel, s.completed_host,
              s.completed_hedge, lost, s.deadline_misses);
  std::printf("latency:   p50 %.0f / p95 %.0f / p99 %.0f us\n",
              s.LatencyQuantile(0.5), s.LatencyQuantile(0.95),
              s.LatencyQuantile(0.99));
  if (s.accel_failures > 0 || s.probes > 0) {
    std::printf("health:    %zu failed attempts (%zu crash, %zu timeout), "
                "%zu degradations, %zu quarantines, %zu probes "
                "(%zu ok / %zu failed), %zu re-enlistments\n",
                s.accel_failures, s.crashes, s.timeouts, s.degradations,
                s.quarantines, s.probes, s.probe_successes, s.probe_failures,
                s.reenlistments);
  }
  if (s.hedges_launched > 0) {
    std::printf("hedging:   %zu launched, %zu won (%.3f ms saved), %zu "
                "cancelled, %.3f ms of losers' charges not billed\n",
                s.hedges_launched, s.hedges_won, s.hedge_saved_us / 1e3,
                s.hedges_cancelled, s.cancelled_charge_us / 1e3);
  }
  std::printf("replicas:  ");
  for (std::size_t i = 0; i < ids.size(); ++i) {
    std::printf("%s%s=%s", i == 0 ? "" : ", ", ids[i].c_str(),
                blaze::HealthName(service.health(ids[i])));
  }
  std::printf("\nmismatches vs reference: %zu\n", mismatches);
  return (lost == 0 && mismatches == 0) ? 0 : 1;
}

int CmdProfile(apps::App& app, const Args& args) {
  // Chrome-trace destination: S2FA_PROFILE_OUT env, --profile-out wins.
  std::string profile_out;
  if (const char* env = std::getenv("S2FA_PROFILE_OUT")) profile_out = env;
  if (args.Has("profile-out")) profile_out = args.Str("profile-out");
  if (!CheckWritable("--profile-out", profile_out)) return 2;
  const std::size_t records =
      static_cast<std::size_t>(args.Num("records", 2048));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.Num("seed", 1));
  const std::size_t top = static_cast<std::size_t>(args.Num("top", 20));

  // Single-core DSE keeps the whole run on one thread, so the hot-path
  // self times are disjoint and their sum is bounded by the wall clock.
  const bool was_enabled = obs::Enabled();
  obs::SetEnabled(true);
  obs::Tracer::Global().Reset();
  const std::uint64_t t0 = MonotonicMicros();
  {
    S2FA_SPAN("cli.profile");
    FrameworkOptions options;
    options.dse.time_limit_minutes = args.Num("minutes", 30);
    options.dse.num_cores = 1;
    options.dse.seed = seed;
    Artifact artifact = BuildAccelerator(*app.pool, app.spec, options);

    blaze::BlazeRuntime runtime;
    RegisterWithBlaze(runtime, app.name, artifact);
    Rng rng(seed);
    blaze::Dataset input = app.make_input(records, rng);
    blaze::Dataset broadcast;
    const blaze::Dataset* bc = nullptr;
    if (app.make_broadcast) {
      Rng brng(seed ^ 0xBCA57ULL);
      broadcast = app.make_broadcast(brng);
      bc = &broadcast;
    }
    if (app.spec.pattern == kir::ParallelPattern::kReduce) {
      runtime.Reduce(app.name, input, bc);
    } else {
      runtime.Map(app.name, input, bc);
    }
  }
  const double wall_us = static_cast<double>(MonotonicMicros() - t0);
  std::vector<obs::SpanEvent> events = obs::Tracer::Global().Drain();
  obs::SetEnabled(was_enabled);

  if (events.empty()) {
    std::fprintf(stderr,
                 "error: no spans recorded (obs compiled out?); nothing to "
                 "profile\n");
    return 1;
  }
  obs::Profile profile = obs::BuildProfile(events);
  std::printf("=== hot paths: %s, %zu records (top %zu) ===\n%s",
              app.name.c_str(), records, top,
              obs::RenderHotPathTable(profile, top,
                                      static_cast<double>(records))
                  .c_str());
  double self_sum_us = 0;
  for (const obs::HotPathRow& row : profile.flat) self_sum_us += row.self_us;
  std::printf("wall clock %.1f ms, span self-time total %.1f ms (%.0f%% "
              "attributed)\n",
              wall_us / 1e3, self_sum_us / 1e3,
              wall_us > 0 ? 100.0 * self_sum_us / wall_us : 0.0);
  if (!profile_out.empty()) {
    obs::WriteChromeTraceFile(profile_out, events);
    std::fprintf(stderr, "chrome trace written to %s\n", profile_out.c_str());
  }
  return 0;
}

int CmdPerfDiff(const Args& args) {
  if (args.positional.size() < 3) {
    std::fprintf(
        stderr,
        "usage: s2fa perf-diff <old.json> <new.json> [--threshold P]\n");
    return 2;
  }
  // Regression threshold (fraction): S2FA_PERF_THRESHOLD env, flag wins.
  double threshold = obs::kDefaultPerfThreshold;
  std::string text;
  if (const char* env = std::getenv("S2FA_PERF_THRESHOLD")) text = env;
  if (args.Has("threshold")) text = args.Str("threshold");
  if (!text.empty()) {
    auto parsed = ParseDoubleStrict(text);
    if (!parsed || *parsed < 0) {
      std::fprintf(stderr,
                   "error: --threshold/S2FA_PERF_THRESHOLD expects a "
                   "fraction >= 0 (0.1 = 10%%), got '%s'\n",
                   text.c_str());
      return 2;
    }
    threshold = *parsed;
  }
  obs::PerfLedger prev = obs::LoadLedgerFile(args.positional[1]);
  obs::PerfLedger next = obs::LoadLedgerFile(args.positional[2]);
  std::printf("comparing %s (rev %s) -> %s (rev %s)\n",
              args.positional[1].c_str(), prev.git_rev.c_str(),
              args.positional[2].c_str(), next.git_rev.c_str());
  obs::LedgerDiff diff = obs::ComparePerfLedgers(prev, next, threshold);
  std::printf("%s", obs::RenderLedgerDiffTable(diff).c_str());
  if (diff.HasRegression()) {
    std::fprintf(stderr, "perf-diff: FAIL — regression past the %.0f%% "
                 "threshold\n", threshold * 100);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = Parse(argc, argv);
  if (args.positional.empty()) return Usage();
  const std::string& cmd = args.positional[0];

  if (args.Has("log-level")) {
    auto level = ParseLogLevel(args.Str("log-level"));
    if (!level) {
      std::fprintf(stderr,
                   "error: bad --log-level '%s' (expected 0-4 or "
                   "off/error/warn/info/debug)\n",
                   args.Str("log-level").c_str());
      return 2;
    }
    Logger::SetLevel(*level);
  }
  const std::string trace_out = args.Str("trace-out");
  const std::string metrics_out = args.Str("metrics-out");
  if (!CheckWritable("--trace-out", trace_out) ||
      !CheckWritable("--metrics-out", metrics_out)) {
    return 2;
  }
  if (!trace_out.empty() || !metrics_out.empty()) obs::SetEnabled(true);

  try {
    int rc;
    if (cmd == "list") {
      rc = CmdList();
    } else if (args.positional.size() < 2) {
      return Usage();
    } else if (cmd == "report") {
      return CmdReport(args.positional[1]);
    } else if (cmd == "perf-diff") {
      return CmdPerfDiff(args);
    } else {
      apps::App app = apps::FindApp(args.positional[1]);
      if (cmd == "compile") rc = CmdCompile(app);
      else if (cmd == "explore") rc = CmdExplore(app, args);
      else if (cmd == "run") rc = CmdRun(app, args);
      else if (cmd == "serve") rc = CmdServe(app, args);
      else if (cmd == "profile") rc = CmdProfile(app, args);
      else return Usage();
    }
    if (!trace_out.empty()) {
      obs::WriteTraceFile(trace_out, obs::Tracer::Global().Events());
      std::fprintf(stderr, "trace written to %s\n", trace_out.c_str());
    }
    if (!metrics_out.empty()) {
      obs::WriteSummaryFile(metrics_out, obs::CaptureSummary());
      std::fprintf(stderr, "metrics written to %s\n", metrics_out.c_str());
    }
    return rc;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
