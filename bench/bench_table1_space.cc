// Table 1 reproduction: the target design space per kernel.
//
// For every application the harness prints its factor inventory (buffer
// bit-widths, loop tiling, loop parallel, loop pipeline — with value
// ranges derived from the kernel analysis) and the resulting cross-product
// cardinality. The paper: "the design space of the S-W example contains
// more than a thousand trillion design points" (> 10^15).
#include <cstdio>

#include "bench_util.h"
#include "support/strings.h"
#include "support/table.h"

using namespace s2fa;
using namespace s2fa::bench;

namespace {

const char* KindName(tuner::FactorKind kind) {
  switch (kind) {
    case tuner::FactorKind::kLoopTile: return "loop tiling";
    case tuner::FactorKind::kLoopParallel: return "loop parallel";
    case tuner::FactorKind::kLoopPipeline: return "loop pipeline";
    case tuner::FactorKind::kBufferBits: return "buffer bit-width";
  }
  return "?";
}

}  // namespace

int main() {
  MetricsScope metrics("table1");
  std::printf("=== Table 1: the target design space per kernel ===\n\n");
  TextTable summary({"Kernel", "Loops", "Factors", "log10(|space|)"});

  for (apps::App& app : apps::AllApps()) {
    PreparedApp prepared = Prepare(std::move(app));
    const tuner::DesignSpace& space = prepared.space;

    int loops = static_cast<int>(prepared.generated.Loops().size());
    summary.AddRow({prepared.app.name, std::to_string(loops),
                    std::to_string(space.num_factors()),
                    FormatDouble(space.Log10Cardinality(), 1)});

    std::printf("--- %s ---\n", prepared.app.name.c_str());
    TextTable detail({"Factor", "Kind", "Values"});
    for (const auto& f : space.factors) {
      std::string values;
      if (f.values.size() <= 8) {
        values = "{" + Join(f.values, ", ") + "}";
      } else {
        values = "{" + std::to_string(f.values.front()) + " .. " +
                 std::to_string(f.values.back()) + "} (" +
                 std::to_string(f.values.size()) + " values)";
      }
      detail.AddRow({f.name, KindName(f.kind), values});
    }
    std::printf("%s\n", detail.Render().c_str());
  }

  std::printf("=== Summary ===\n%s\n", summary.Render().c_str());
  std::printf("(the paper quotes > 10^15 points for S-W; exhaustive "
              "exploration is impractical)\n");
  return 0;
}
