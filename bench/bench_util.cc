#include "bench_util.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "b2c/compiler.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "support/strings.h"

namespace s2fa::bench {

PreparedApp Prepare(apps::App app) {
  PreparedApp prepared;
  prepared.generated = b2c::CompileKernel(*app.pool, app.spec);
  prepared.space = tuner::BuildDesignSpace(prepared.generated);
  prepared.evaluate = MakeHlsEvaluator(prepared.generated);

  kir::Kernel manual_base = app.manual_kernel
                                ? app.manual_kernel(prepared.generated)
                                : prepared.generated.Clone();
  merlin::TransformResult t =
      merlin::ApplyDesign(manual_base, app.manual_config);
  prepared.manual_design = std::move(t.kernel);
  prepared.manual_hls = hls::EstimateHls(prepared.manual_design);
  prepared.app = std::move(app);
  return prepared;
}

DseComparison RunComparison(const PreparedApp& prepared,
                            const EvalSetup& setup, dse::StopKind stop) {
  DseComparison cmp;
  dse::ExplorerOptions options;
  options.time_limit_minutes = setup.time_limit_minutes;
  options.num_cores = setup.num_cores;
  options.seed = setup.seed;
  options.stop = stop;
  // The baseline gets the identical evaluation stack (cache included) so
  // the Fig. 3 comparison is tuner-vs-tuner, not stack-vs-stack.
  cmp.vanilla =
      dse::RunVanillaOpenTuner(prepared.space, prepared.evaluate, options);
  cmp.s2fa = dse::RunS2faDse(prepared.space, prepared.generated,
                             prepared.evaluate, options);
  cmp.normalization_cost = cmp.vanilla.trace.empty()
                               ? 1.0
                               : cmp.vanilla.trace.front().best_cost;
  return cmp;
}

namespace {

bool SameTrajectory(const dse::DseResult& a, const dse::DseResult& b) {
  if (a.best_cost != b.best_cost || a.found_feasible != b.found_feasible ||
      a.trace.size() != b.trace.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    if (a.trace[i].time_minutes != b.trace[i].time_minutes ||
        a.trace[i].best_cost != b.trace[i].best_cost) {
      return false;
    }
  }
  return true;
}

}  // namespace

CacheAblation RunCacheAblation(const PreparedApp& prepared,
                               const EvalSetup& setup) {
  dse::ExplorerOptions options;
  options.time_limit_minutes = setup.time_limit_minutes;
  // One core so every raw evaluation sits on the critical path: with the
  // parallel partition schedule a skipped duplicate usually hides behind a
  // concurrently-running partition and the wall-clock delta drowns in
  // scheduling noise. Both arms of the ablation use the same setting, so
  // the trajectory comparison is unaffected.
  options.num_cores = 1;
  options.seed = setup.seed;

  // The bundled HLS estimator answers in microseconds, so the real cost a
  // deployed cache avoids — submitting a synthesis job to an external
  // toolchain — would vanish into lock noise. Model it with a small fixed
  // per-raw-evaluation delay; every cache hit skips it, exactly as a hit
  // skips the real job submission.
  tuner::EvalFn delayed = [&prepared](const merlin::DesignConfig& config) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return prepared.evaluate(config);
  };

  CacheAblation ablation;
  options.cache.enabled = false;
  const auto t0 = std::chrono::steady_clock::now();
  dse::DseResult off = dse::RunS2faDse(prepared.space, prepared.generated,
                                       delayed, options);
  const auto t1 = std::chrono::steady_clock::now();
  options.cache.enabled = true;
  dse::DseResult on = dse::RunS2faDse(prepared.space, prepared.generated,
                                      delayed, options);
  const auto t2 = std::chrono::steady_clock::now();

  ablation.wall_ms_cache_off =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  ablation.wall_ms_cache_on =
      std::chrono::duration<double, std::milli>(t2 - t1).count();
  ablation.identical_trajectory = SameTrajectory(on, off);
  ablation.stats = on.cache_stats;
  return ablation;
}

SchedulerAblation RunSchedulerAblation(const PreparedApp& prepared,
                                       const EvalSetup& setup) {
  dse::ExplorerOptions options;
  options.time_limit_minutes = setup.time_limit_minutes;
  options.num_cores = setup.num_cores;
  options.seed = setup.seed;

  SchedulerAblation ablation;
  options.stop = dse::StopKind::kEntropy;
  options.scheduler = dse::SchedulerKind::kAdaptive;
  ablation.adaptive = dse::RunS2faDse(prepared.space, prepared.generated,
                                      prepared.evaluate, options);
  options.scheduler = dse::SchedulerKind::kFcfs;
  ablation.fcfs = dse::RunS2faDse(prepared.space, prepared.generated,
                                  prepared.evaluate, options);
  // (inf <= inf counts as not-worse: neither run found a feasible point.)
  ablation.adaptive_not_worse =
      !(ablation.adaptive.best_cost > ablation.fcfs.best_cost);

  options.stop = dse::StopKind::kTimeOnly;
  options.scheduler = dse::SchedulerKind::kAdaptive;
  dse::DseResult adaptive_full = dse::RunS2faDse(
      prepared.space, prepared.generated, prepared.evaluate, options);
  options.scheduler = dse::SchedulerKind::kFcfs;
  dse::DseResult fcfs_full = dse::RunS2faDse(
      prepared.space, prepared.generated, prepared.evaluate, options);
  ablation.identical_without_stopping =
      SameTrajectory(adaptive_full, fcfs_full) &&
      adaptive_full.evaluations == fcfs_full.evaluations &&
      adaptive_full.schedule.grants == 0;
  return ablation;
}

TechniqueAblation RunTechniqueAblation(const PreparedApp& prepared,
                                       const EvalSetup& setup,
                                       bool check_threads) {
  dse::ExplorerOptions options;
  options.time_limit_minutes = setup.time_limit_minutes;
  options.num_cores = setup.num_cores;
  options.seed = setup.seed;

  TechniqueAblation ablation;
  ablation.baseline = dse::RunS2faDse(prepared.space, prepared.generated,
                                      prepared.evaluate, options);
  options.techniques = {"bandit", "bottleneck"};
  ablation.bottleneck = dse::RunS2faDse(prepared.space, prepared.generated,
                                        prepared.evaluate, options);
  // (inf <= inf counts as not-worse: neither run found a feasible point.)
  ablation.not_worse = !(ablation.bottleneck.best_cost >
                         ablation.baseline.best_cost * (1 + kQorNoiseBand));
  ablation.strictly_better = ablation.bottleneck.best_cost <
                             ablation.baseline.best_cost * (1 - kQorNoiseBand);
  if (check_threads) {
    // exec_threads only changes wall clock, never results — the commit
    // order is the proposal order regardless of which worker finishes
    // first. Pin the bandit+bottleneck roster across 1/2/8 workers.
    for (int threads : {1, 2, 8}) {
      options.exec_threads = threads;
      dse::DseResult rerun = dse::RunS2faDse(
          prepared.space, prepared.generated, prepared.evaluate, options);
      if (!SameTrajectory(rerun, ablation.bottleneck) ||
          rerun.evaluations != ablation.bottleneck.evaluations) {
        ablation.thread_invariant = false;
      }
    }
  }
  return ablation;
}

double CostAt(const std::vector<tuner::TracePoint>& trace, double minutes,
              double norm) {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& tp : trace) {
    if (tp.time_minutes > minutes) break;
    best = tp.best_cost;
  }
  if (norm > 0 && std::isfinite(best)) return best / norm;
  return best;
}

double AcceleratorMicros(const kir::Kernel& design,
                         const hls::HlsResult& hls_result,
                         std::size_t records) {
  blaze::OffloadCostModel model;
  double bytes = 0;
  std::int64_t batch = 1;
  for (const auto& buf : design.buffers) {
    if (buf.kind == kir::BufferKind::kLocal) continue;
    bytes += static_cast<double>(buf.byte_size());
  }
  const kir::Stmt* task = kir::FindLoop(design.body, design.task_loop_id);
  if (task != nullptr) batch = task->trip_count();
  const double invocations =
      std::ceil(static_cast<double>(records) / static_cast<double>(batch));
  const double per_invocation =
      bytes * model.jvm_pack_ns_per_byte / 1000.0 +   // (de)serialization
      bytes / (model.pcie_gbps * 1e3) +               // PCIe
      hls_result.exec_us +                            // accelerator
      model.invoke_overhead_us;                       // driver
  return invocations * per_invocation;
}

double JvmMicros(const apps::App& app, std::size_t records,
                 std::uint64_t seed) {
  // Interpret a sample and scale: workloads are i.i.d. records.
  const std::size_t sample = std::min<std::size_t>(records, 128);
  Rng rng(seed);
  blaze::Dataset input = app.make_input(sample, rng);
  blaze::Dataset broadcast;
  const blaze::Dataset* bc = nullptr;
  if (app.make_broadcast) {
    Rng brng(seed ^ 0xBCA57ULL);
    broadcast = app.make_broadcast(brng);
    bc = &broadcast;
  }
  apps::JvmRunResult run = apps::RunOnJvm(app, input, bc);
  const double scale =
      static_cast<double>(records) / static_cast<double>(sample);
  return run.total_ns * scale / 1000.0;
}

std::string RenderTraceRow(const std::string& label,
                           const std::vector<tuner::TracePoint>& trace,
                           const std::vector<double>& sample_minutes,
                           double norm) {
  std::string row = PadRight(label, 18) + " |";
  for (double m : sample_minutes) {
    double v = CostAt(trace, m, norm);
    row += " " + PadLeft(std::isfinite(v) ? FormatDouble(v, 4) : "--", 9);
  }
  return row;
}

std::string OutPath(const std::string& filename) {
  std::filesystem::path dir = "bench_out";
  if (const char* env = std::getenv("S2FA_BENCH_OUT")) {
    if (*env != '\0') dir = env;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best-effort; write errors
                                                 // surface at the caller
  return (dir / filename).string();
}

std::string PerfLedgerPath() {
  if (const char* env = std::getenv("S2FA_PERF_LEDGER")) return env;
  return "BENCH_micro.json";
}

std::string ServingLedgerPath() {
  if (const char* env = std::getenv("S2FA_PERF_LEDGER")) return env;
  return "BENCH_serving.json";
}

std::string UpdatePerfLedger(
    const std::map<std::string, obs::LedgerEntry>& benchmarks,
    const std::string& path) {
  const std::string resolved = path.empty() ? PerfLedgerPath() : path;
  obs::PerfLedger update;
  update.benchmarks = benchmarks;
  obs::MetricsSnapshot snapshot = obs::Registry::Global().Snapshot();
  update.counters = snapshot.counters;
  update.histograms = snapshot.histograms;
  obs::StampLedgerFromEnv(update);
  // A corrupt existing ledger throws (loudly) rather than being clobbered.
  obs::PerfLedger merged = update;
  if (std::optional<obs::PerfLedger> previous =
          obs::TryLoadLedgerFile(resolved)) {
    merged = obs::MergeLedgers(std::move(*previous), update);
  }
  obs::WriteLedgerFile(resolved, merged);
  return resolved;
}

MetricsScope::MetricsScope(std::string name)
    : name_(std::move(name)), was_enabled_(obs::Enabled()) {
  obs::SetEnabled(true);
  obs::Registry::Global().Reset();
  obs::Tracer::Global().Reset();
}

MetricsScope::~MetricsScope() {
  const std::string path = OutPath(name_ + "_metrics.json");
  try {
    obs::WriteSummaryFile(path, obs::CaptureSummary());
    std::fprintf(stderr, "metrics snapshot: %s\n", path.c_str());
  } catch (...) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
  }
  obs::SetEnabled(was_enabled_);
}

}  // namespace s2fa::bench
