// Shared plumbing for the reproduction harness binaries: standard DSE
// settings (the paper's 4-hour / 8-core setup), per-app artifact builders,
// and table/trace rendering.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "apps/app.h"
#include "apps/jvm_baseline.h"
#include "dse/explorer.h"
#include "obs/ledger.h"
#include "s2fa/framework.h"

namespace s2fa::bench {

// The paper's evaluation setup (§5.1-5.2).
struct EvalSetup {
  double time_limit_minutes = 240;  // fixed 4-hour budget
  int num_cores = 8;                // f1.2xlarge host CPU
  std::uint64_t seed = 2018;        // DAC'18 vintage
};

// One app fully prepared for experiments.
struct PreparedApp {
  apps::App app;
  kir::Kernel generated;           // b2c output
  tuner::DesignSpace space;
  tuner::EvalFn evaluate;          // Merlin+HLS black box
  // Manual design (expert config, possibly on a hand-written kernel).
  kir::Kernel manual_design;       // transformed
  hls::HlsResult manual_hls;
};

PreparedApp Prepare(apps::App app);

// Runs the two explorations of Fig. 3 for one app.
struct DseComparison {
  dse::DseResult s2fa;
  dse::DseResult vanilla;
  double normalization_cost = 0;  // vanilla's first feasible (random seed)
};

DseComparison RunComparison(const PreparedApp& prepared,
                            const EvalSetup& setup,
                            dse::StopKind stop = dse::StopKind::kEntropy);

// Same-seed S2FA run with the memoizing evaluation cache on vs off: the
// determinism contract says the best-cost trajectories must be identical
// while the cache-on run re-pays no duplicate synthesis jobs (so its real
// wall-clock drops with the duplicate-point rate).
struct CacheAblation {
  double wall_ms_cache_on = 0;
  double wall_ms_cache_off = 0;
  bool identical_trajectory = false;  // trace + best cost bit-identical
  cache::EvalCacheStats stats;        // from the cache-on run
};

CacheAblation RunCacheAblation(const PreparedApp& prepared,
                               const EvalSetup& setup);

// Same-seed S2FA run under the adaptive vs the FCFS partition scheduler.
// The contract (dse/scheduler.h): with the entropy stop the adaptive
// run's best at the budget is never worse — its FCFS phase is unchanged
// and reclaim grants only add exploration — and with early stopping
// disabled no budget frees, so the two schedules produce bit-identical
// trajectories.
struct SchedulerAblation {
  dse::DseResult adaptive;  // entropy stop, adaptive scheduler
  dse::DseResult fcfs;      // entropy stop, FCFS scheduler
  bool adaptive_not_worse = false;
  bool identical_without_stopping = false;  // kTimeOnly runs bit-identical
};

SchedulerAblation RunSchedulerAblation(const PreparedApp& prepared,
                                       const EvalSetup& setup);

// Same-seed S2FA run with the default four-arm bandit vs the same bandit
// plus the bottleneck-guided arm. The extra arm perturbs the shared RNG
// stream, so not-worse is an empirical gate (checked per app by
// bench_fig3), not a structural guarantee like the scheduler ablation's.
//
// Both rosters routinely land on the same design plateau with best costs
// a few 1e-5 apart (different tie-break points, same QoR): comparisons use
// a relative noise band — losing within the band is a tie, and "strictly
// better" has to clear the band too.
inline constexpr double kQorNoiseBand = 1e-3;

struct TechniqueAblation {
  dse::DseResult baseline;    // default roster
  dse::DseResult bottleneck;  // bandit + bottleneck-guided arm
  bool not_worse = false;       // bottleneck best <= baseline best + band
  bool strictly_better = false;
  // Bandit+bottleneck trajectories bit-identical across exec_threads
  // 1/2/8 (only checked when requested; stays true otherwise).
  bool thread_invariant = true;
};

TechniqueAblation RunTechniqueAblation(const PreparedApp& prepared,
                                       const EvalSetup& setup,
                                       bool check_threads = false);

// Best-so-far cost at simulated `minutes` (normalized when norm > 0).
double CostAt(const std::vector<tuner::TracePoint>& trace, double minutes,
              double norm);

// Accelerator wall time for `records` records under a design, through the
// Blaze offload cost model.
double AcceleratorMicros(const kir::Kernel& design,
                         const hls::HlsResult& hls_result,
                         std::size_t records);

// JVM baseline microseconds for `records` records of the app's workload.
double JvmMicros(const apps::App& app, std::size_t records,
                 std::uint64_t seed);

// Renders an ASCII sparkline-ish trace row sampled at `sample_minutes`.
std::string RenderTraceRow(const std::string& label,
                           const std::vector<tuner::TracePoint>& trace,
                           const std::vector<double>& sample_minutes,
                           double norm);

// Resolves an output-file path for harness artifacts (metrics snapshots,
// trace CSVs): `filename` under the S2FA_BENCH_OUT directory when that is
// set, else under bench_out/ in the working directory. The directory is
// created on first use. Keeps bench runs from scattering artifacts into
// whatever CWD the harness was launched from (which is how stray
// *_metrics.json files ended up committed at the repo root).
std::string OutPath(const std::string& filename);

// Resolved perf-ledger path: the S2FA_PERF_LEDGER environment variable,
// or BENCH_micro.json in the working directory.
std::string PerfLedgerPath();

// Ledger path for the serving-layer harnesses (bench_serving /
// bench_cluster): the S2FA_PERF_LEDGER environment variable, or
// BENCH_serving.json in the working directory — so serving and micro
// trajectories live in separate repo-root snapshots by default.
std::string ServingLedgerPath();

// Merges `benchmarks` plus the current obs registry counters/histograms
// into the perf ledger at `path` (PerfLedgerPath() when empty), stamping
// git_rev/timestamp from S2FA_GIT_REV / S2FA_BENCH_TIMESTAMP. Existing
// entries under other names survive, so the micro and serving harnesses
// can share one ledger file. Returns the path written.
std::string UpdatePerfLedger(
    const std::map<std::string, obs::LedgerEntry>& benchmarks,
    const std::string& path = "");

// Enables the obs layer for the lifetime of a harness main() and writes
// OutPath("<name>_metrics.json") on destruction — next to the harness's
// other outputs, never bare CWD — so every reproduction figure ships with
// its pipeline metrics snapshot.
class MetricsScope {
 public:
  explicit MetricsScope(std::string name);
  ~MetricsScope();

  MetricsScope(const MetricsScope&) = delete;
  MetricsScope& operator=(const MetricsScope&) = delete;

 private:
  std::string name_;
  bool was_enabled_ = false;
};

}  // namespace s2fa::bench
