// Component microbenchmarks (google-benchmark): throughput of the pieces
// every DSE iteration exercises — bytecode interpretation, kernel-IR
// evaluation, the Merlin transform, the HLS estimator, design-space
// operations, serialization, and one full tuner evaluation round trip.
//
// Every run also updates the persistent perf ledger (obs/ledger.h): each
// benchmark's ns/op lands in BENCH_micro.json (or $S2FA_PERF_LEDGER), where
// `s2fa perf-diff` gates regressions against a previous snapshot.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>

#include "apps/app.h"
#include "apps/jvm_baseline.h"
#include "b2c/compiler.h"
#include "bench_util.h"
#include "blaze/runtime.h"
#include "blaze/serialization.h"
#include "dse/partition.h"
#include "dse/stopping.h"
#include "hls/estimator.h"
#include "kir/eval.h"
#include "merlin/transform.h"
#include "obs/ledger.h"
#include "s2fa/framework.h"
#include "tuner/space.h"

namespace {

using namespace s2fa;

struct Fixture {
  apps::App app;
  kir::Kernel kernel;
  tuner::DesignSpace space;
  tuner::EvalFn evaluate;
  merlin::DesignConfig mid_config;

  explicit Fixture(const std::string& name) : app(apps::FindApp(name)) {
    kernel = b2c::CompileKernel(*app.pool, app.spec);
    space = tuner::BuildDesignSpace(kernel);
    evaluate = MakeHlsEvaluator(kernel);
    // A representative mid-weight configuration.
    for (const kir::Stmt* loop : kernel.Loops()) {
      mid_config.loops[loop->loop_id()] = {1, 2, merlin::PipelineMode::kOn};
    }
  }
};

Fixture& Svm() {
  static Fixture fixture("SVM");
  return fixture;
}

Fixture& Aes() {
  static Fixture fixture("AES");
  return fixture;
}

void BM_BytecodeCompile(benchmark::State& state) {
  Fixture& f = Svm();
  for (auto _ : state) {
    benchmark::DoNotOptimize(b2c::CompileKernel(*f.app.pool, f.app.spec));
  }
}
BENCHMARK(BM_BytecodeCompile);

void BM_InterpreterPerRecord(benchmark::State& state) {
  Fixture& f = Svm();
  Rng rng(1);
  blaze::Dataset input = f.app.make_input(64, rng);
  Rng brng(2);
  blaze::Dataset broadcast = f.app.make_broadcast(brng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::RunOnJvm(f.app, input, &broadcast));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_InterpreterPerRecord);

void BM_KirEvalPerRecord(benchmark::State& state) {
  // The accelerator-side half of a Blaze invocation: evaluate the kernel
  // IR over one already-serialized batch (what RunBatch does per attempt,
  // minus the packing measured by BM_SerializationRoundTrip).
  Fixture& f = Svm();
  blaze::SerializationPlan plan = blaze::MakeSerializationPlan(f.kernel);
  const std::size_t records = static_cast<std::size_t>(plan.batch);
  Rng rng(9);
  blaze::Dataset input = f.app.make_input(records, rng);
  Rng brng(10);
  blaze::Dataset broadcast = f.app.make_broadcast(brng);
  kir::BufferMap buffers;
  blaze::SerializeBatch(plan, input, 0, records, buffers, &broadcast);
  kir::Evaluator evaluator(f.kernel);
  const std::map<std::string, jvm::Value> scalars = {
      {"N", jvm::Value::OfInt(static_cast<std::int32_t>(records))}};
  for (auto _ : state) {
    kir::BufferMap batch = buffers;
    evaluator.Run(scalars, batch);
    benchmark::DoNotOptimize(batch);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records));
}
BENCHMARK(BM_KirEvalPerRecord);

void BM_SerializationRoundTrip(benchmark::State& state) {
  // Pack one batch into kernel buffers and unpack the results — the JVM
  // boundary cost the paper's method generator (§3.2) automates away.
  Fixture& f = Svm();
  blaze::SerializationPlan plan = blaze::MakeSerializationPlan(f.kernel);
  const std::size_t records = static_cast<std::size_t>(plan.batch);
  Rng rng(11);
  blaze::Dataset input = f.app.make_input(records, rng);
  Rng brng(12);
  blaze::Dataset broadcast = f.app.make_broadcast(brng);
  // Output buffers come from one evaluator run; the loop then measures
  // pure (de)serialization against them.
  kir::BufferMap outputs;
  blaze::SerializeBatch(plan, input, 0, records, outputs, &broadcast);
  kir::Evaluator(f.kernel).Run(
      {{"N", jvm::Value::OfInt(static_cast<std::int32_t>(records))}},
      outputs);
  blaze::Dataset out = blaze::MakeOutputShell(plan, records);
  for (auto _ : state) {
    kir::BufferMap buffers;
    blaze::SerializeBatch(plan, input, 0, records, buffers, &broadcast);
    for (const auto& [name, values] : outputs) {
      buffers.emplace(name, values);
    }
    blaze::DeserializeBatch(plan, buffers, 0, records, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records));
}
BENCHMARK(BM_SerializationRoundTrip);

void BM_MerlinTransform(benchmark::State& state) {
  Fixture& f = Svm();
  for (auto _ : state) {
    benchmark::DoNotOptimize(merlin::ApplyDesign(f.kernel, f.mid_config));
  }
}
BENCHMARK(BM_MerlinTransform);

void BM_HlsEstimateSmallKernel(benchmark::State& state) {
  Fixture& f = Svm();
  kir::Kernel transformed =
      merlin::ApplyDesign(f.kernel, f.mid_config).kernel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hls::EstimateHls(transformed));
  }
}
BENCHMARK(BM_HlsEstimateSmallKernel);

void BM_HlsEstimateLargeKernel(benchmark::State& state) {
  Fixture& f = Aes();
  kir::Kernel transformed =
      merlin::ApplyDesign(f.kernel, f.app.manual_config).kernel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hls::EstimateHls(transformed));
  }
}
BENCHMARK(BM_HlsEstimateLargeKernel);

void BM_FullDesignPointEvaluation(benchmark::State& state) {
  Fixture& f = Svm();
  Rng rng(3);
  for (auto _ : state) {
    tuner::Point p = f.space.RandomPoint(rng);
    benchmark::DoNotOptimize(f.evaluate(f.space.ToConfig(p)));
  }
}
BENCHMARK(BM_FullDesignPointEvaluation);

void BM_DesignSpaceMutation(benchmark::State& state) {
  Fixture& f = Aes();
  Rng rng(4);
  tuner::Point p = f.space.RandomPoint(rng);
  for (auto _ : state) {
    p = f.space.Mutate(p, rng, 2);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_DesignSpaceMutation);

void BM_PartitionTraining(benchmark::State& state) {
  Fixture& f = Svm();
  std::function<double(const tuner::Point&)> log_cost =
      [&](const tuner::Point& p) {
        tuner::EvalOutcome out = f.evaluate(f.space.ToConfig(p));
        return out.feasible ? std::log(out.cost) : 30.0;
      };
  for (auto _ : state) {
    Rng rng(5);
    auto samples = dse::DrawTrainingSamples(f.space, 160, log_cost, rng);
    auto candidates = dse::RuleCandidateFactors(f.space, f.kernel);
    benchmark::DoNotOptimize(
        dse::BuildPartitions(f.space, candidates, samples, {}));
  }
}
BENCHMARK(BM_PartitionTraining);

void BM_EntropyComputation(benchmark::State& state) {
  tuner::ResultDatabase db;
  Rng rng(6);
  Fixture& f = Svm();
  for (int i = 0; i < 500; ++i) {
    db.Add(f.space.RandomPoint(rng), rng.NextDouble(1, 100), true,
           static_cast<double>(i), 0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dse::UphillEntropy(db, f.space.num_factors()));
  }
}
BENCHMARK(BM_EntropyComputation);

void BM_BlazeMapBatch(benchmark::State& state) {
  Fixture& f = Svm();
  Artifact artifact =
      BuildWithConfig(*f.app.pool, f.app.spec, merlin::DesignConfig{});
  blaze::BlazeRuntime runtime;
  RegisterWithBlaze(runtime, "svm", artifact);
  Rng rng(7);
  blaze::Dataset input = f.app.make_input(1024, rng);
  Rng brng(8);
  blaze::Dataset broadcast = f.app.make_broadcast(brng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime.Map("svm", input, &broadcast));
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_BlazeMapBatch);

// Console reporting plus ledger capture: every finished (non-aggregate,
// non-errored) run contributes its real-time ns/op to the perf ledger.
class LedgerReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double iterations =
          std::max<double>(1.0, static_cast<double>(run.iterations));
      obs::LedgerEntry entry;
      entry.ns_per_op = run.real_accumulated_time * 1e9 / iterations;
      entry.ops = iterations;
      entry.wall_ms = run.real_accumulated_time * 1e3;
      entries_[run.benchmark_name()] = entry;
    }
    ConsoleReporter::ReportRuns(report);
  }

  const std::map<std::string, obs::LedgerEntry>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, obs::LedgerEntry> entries_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  LedgerReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  const std::string path = s2fa::bench::UpdatePerfLedger(reporter.entries());
  std::fprintf(stderr, "perf ledger: %s (%zu benchmarks)\n", path.c_str(),
               reporter.entries().size());
  return 0;
}
