// Component microbenchmarks (google-benchmark): throughput of the pieces
// every DSE iteration exercises — bytecode interpretation, kernel-IR
// evaluation, the Merlin transform, the HLS estimator, design-space
// operations, and one full tuner evaluation round trip.
#include <benchmark/benchmark.h>

#include <cmath>

#include "apps/app.h"
#include "apps/jvm_baseline.h"
#include "b2c/compiler.h"
#include "blaze/runtime.h"
#include "dse/partition.h"
#include "dse/stopping.h"
#include "hls/estimator.h"
#include "merlin/transform.h"
#include "s2fa/framework.h"
#include "tuner/space.h"

namespace {

using namespace s2fa;

struct Fixture {
  apps::App app;
  kir::Kernel kernel;
  tuner::DesignSpace space;
  tuner::EvalFn evaluate;
  merlin::DesignConfig mid_config;

  explicit Fixture(const std::string& name) : app(apps::FindApp(name)) {
    kernel = b2c::CompileKernel(*app.pool, app.spec);
    space = tuner::BuildDesignSpace(kernel);
    evaluate = MakeHlsEvaluator(kernel);
    // A representative mid-weight configuration.
    for (const kir::Stmt* loop : kernel.Loops()) {
      mid_config.loops[loop->loop_id()] = {1, 2, merlin::PipelineMode::kOn};
    }
  }
};

Fixture& Svm() {
  static Fixture fixture("SVM");
  return fixture;
}

Fixture& Aes() {
  static Fixture fixture("AES");
  return fixture;
}

void BM_BytecodeCompile(benchmark::State& state) {
  Fixture& f = Svm();
  for (auto _ : state) {
    benchmark::DoNotOptimize(b2c::CompileKernel(*f.app.pool, f.app.spec));
  }
}
BENCHMARK(BM_BytecodeCompile);

void BM_InterpreterPerRecord(benchmark::State& state) {
  Fixture& f = Svm();
  Rng rng(1);
  blaze::Dataset input = f.app.make_input(64, rng);
  Rng brng(2);
  blaze::Dataset broadcast = f.app.make_broadcast(brng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::RunOnJvm(f.app, input, &broadcast));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_InterpreterPerRecord);

void BM_MerlinTransform(benchmark::State& state) {
  Fixture& f = Svm();
  for (auto _ : state) {
    benchmark::DoNotOptimize(merlin::ApplyDesign(f.kernel, f.mid_config));
  }
}
BENCHMARK(BM_MerlinTransform);

void BM_HlsEstimateSmallKernel(benchmark::State& state) {
  Fixture& f = Svm();
  kir::Kernel transformed =
      merlin::ApplyDesign(f.kernel, f.mid_config).kernel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hls::EstimateHls(transformed));
  }
}
BENCHMARK(BM_HlsEstimateSmallKernel);

void BM_HlsEstimateLargeKernel(benchmark::State& state) {
  Fixture& f = Aes();
  kir::Kernel transformed =
      merlin::ApplyDesign(f.kernel, f.app.manual_config).kernel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hls::EstimateHls(transformed));
  }
}
BENCHMARK(BM_HlsEstimateLargeKernel);

void BM_FullDesignPointEvaluation(benchmark::State& state) {
  Fixture& f = Svm();
  Rng rng(3);
  for (auto _ : state) {
    tuner::Point p = f.space.RandomPoint(rng);
    benchmark::DoNotOptimize(f.evaluate(f.space.ToConfig(p)));
  }
}
BENCHMARK(BM_FullDesignPointEvaluation);

void BM_DesignSpaceMutation(benchmark::State& state) {
  Fixture& f = Aes();
  Rng rng(4);
  tuner::Point p = f.space.RandomPoint(rng);
  for (auto _ : state) {
    p = f.space.Mutate(p, rng, 2);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_DesignSpaceMutation);

void BM_PartitionTraining(benchmark::State& state) {
  Fixture& f = Svm();
  std::function<double(const tuner::Point&)> log_cost =
      [&](const tuner::Point& p) {
        tuner::EvalOutcome out = f.evaluate(f.space.ToConfig(p));
        return out.feasible ? std::log(out.cost) : 30.0;
      };
  for (auto _ : state) {
    Rng rng(5);
    auto samples = dse::DrawTrainingSamples(f.space, 160, log_cost, rng);
    auto candidates = dse::RuleCandidateFactors(f.space, f.kernel);
    benchmark::DoNotOptimize(
        dse::BuildPartitions(f.space, candidates, samples, {}));
  }
}
BENCHMARK(BM_PartitionTraining);

void BM_EntropyComputation(benchmark::State& state) {
  tuner::ResultDatabase db;
  Rng rng(6);
  Fixture& f = Svm();
  for (int i = 0; i < 500; ++i) {
    db.Add(f.space.RandomPoint(rng), rng.NextDouble(1, 100), true,
           static_cast<double>(i), 0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dse::UphillEntropy(db, f.space.num_factors()));
  }
}
BENCHMARK(BM_EntropyComputation);

void BM_BlazeMapBatch(benchmark::State& state) {
  Fixture& f = Svm();
  Artifact artifact =
      BuildWithConfig(*f.app.pool, f.app.spec, merlin::DesignConfig{});
  blaze::BlazeRuntime runtime;
  RegisterWithBlaze(runtime, "svm", artifact);
  Rng rng(7);
  blaze::Dataset input = f.app.make_input(1024, rng);
  Rng brng(8);
  blaze::Dataset broadcast = f.app.make_broadcast(brng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime.Map("svm", input, &broadcast));
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_BlazeMapBatch);

}  // namespace

BENCHMARK_MAIN();
