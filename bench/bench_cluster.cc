// Sharded-serving replay (BlazeCluster): ~1M simulated requests through the
// fault-domain-aware cluster, gating the robustness contract via the exit
// code:
//
//   1. scaling    — saturating waves on 1/2/4 shards; simulated throughput
//                   must scale near-linearly (>= 1.7x at 2, >= 3.0x at 4);
//   2. chaos      — a scripted kill/restart, a replica fault burst, a
//                   latency spike, and hash-sampled poison requests over a
//                   paced stream: zero lost, zero reference mismatches,
//                   p99 bounded vs the clean baseline, and the killed
//                   shard takes traffic again after its restart (nothing
//                   commits on it while dead);
//   3. flood      — a quota'd noisy tenant floods a weighted-fair queue:
//                   the paying tenant is never throttled and its p99 stays
//                   bounded while the flooder eats the throttling;
//   4. routing    — a skewed tenant flood over a shard whose fault-burst
//                   host fallbacks hide expensive backlog behind an idle
//                   dispatch lane: depth routing loses nothing and its tail
//                   beats health routing's, which keeps feeding the shard
//                   that owes invisible host work;
//   5. determinism— the same chaotic workload on 1/2/8 exec threads renders
//                   bit-identical outcome streams (plan-order commit).
//
// Quick mode (S2FA_BENCH_QUICK=1, used by the cluster_smoke ctest) scales
// the request counts down ~50x but exercises every gate. Phase latencies
// land in the serving perf ledger (BENCH_serving.json at the repo root, or
// S2FA_PERF_LEDGER) for the perf-diff trajectory gate.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "b2c/compiler.h"
#include "bench_util.h"
#include "blaze/cluster.h"
#include "jvm/assembler.h"
#include "merlin/transform.h"
#include "obs/obs.h"
#include "s2fa/framework.h"

using namespace s2fa;
using namespace s2fa::bench;

namespace {

constexpr std::size_t kRecordsPerRequest = 4;

bool QuickMode() {
  const char* env = std::getenv("S2FA_BENCH_QUICK");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

// Doubler: double -> 2 * double, batch 8 — the cheapest functional kernel,
// so a million requests stay interpreter-bound, not harness-bound.
jvm::ClassPool MakePool() {
  jvm::ClassPool pool;
  jvm::Assembler a;
  a.Load(jvm::Type::Double(), 0).DConst(2.0).DMul().Ret(jvm::Type::Double());
  jvm::MethodSignature sig;
  sig.params = {jvm::Type::Double()};
  sig.ret = jvm::Type::Double();
  pool.Define("Doubler").AddMethod(
      jvm::MakeMethod("call", sig, true, 2, a.Finish()));
  return pool;
}

b2c::KernelSpec MakeSpec() {
  b2c::KernelSpec spec;
  spec.kernel_name = "doubler";
  spec.klass = "Doubler";
  spec.input.type = jvm::Type::Double();
  spec.input.fields = {{"x", jvm::Type::Double(), 1, false}};
  spec.output.type = jvm::Type::Double();
  spec.output.fields = {{"y", jvm::Type::Double(), 1, false}};
  spec.batch = 8;
  return spec;
}

blaze::Dataset DoublerInput(std::size_t records, double base) {
  blaze::Dataset input;
  blaze::Column x;
  x.field = "x";
  x.element = jvm::Type::Double();
  for (std::size_t i = 0; i < records; ++i) {
    x.data.push_back(jvm::Value::OfDouble(base + static_cast<double>(i)));
  }
  input.AddColumn(x);
  return input;
}

struct Harness {
  blaze::BlazeRuntime runtime;
  double request_us = 0;  // accelerator time for one request's invocation

  Harness() {
    jvm::ClassPool pool = MakePool();
    Artifact artifact =
        BuildWithConfig(pool, MakeSpec(), merlin::DesignConfig{});
    for (int i = 0; i < 4; ++i) {
      RegisterWithBlaze(runtime, "r" + std::to_string(i), artifact);
    }
    request_us = runtime.PerInvocationCost("r0").total_us;
  }

  // One replica per shard: each shard is one fault domain with one lane.
  blaze::BlazeCluster MakeCluster(blaze::ClusterOptions options,
                                  std::size_t shards) {
    blaze::BlazeCluster cluster(runtime, options);
    for (std::size_t s = 0; s < shards; ++s) {
      cluster.AddShard();
      cluster.AddReplica(s, "doubler", "r" + std::to_string(s));
    }
    return cluster;
  }
};

struct WaveResult {
  std::size_t mismatches = 0;
  std::vector<double> latencies_us;  // non-shed, submission order
  std::vector<blaze::ClusterRequestOutcome> outcomes;
};

// Submits `count` requests (base = their global ordinal offset) and checks
// every served output against the doubled reference. `spacing_us` == 0
// means all-at-once (the saturating capacity probe).
WaveResult RunWave(blaze::BlazeCluster& cluster, std::size_t count,
                   double first_ordinal, double start_us, double spacing_us,
                   const std::string& tenant, bool keep_outcomes = false) {
  std::vector<blaze::ClusterRequest> requests;
  requests.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    blaze::ClusterRequest rq;
    rq.kernel = "doubler";
    rq.input = DoublerInput(kRecordsPerRequest,
                            (first_ordinal + static_cast<double>(i)) *
                                static_cast<double>(kRecordsPerRequest));
    rq.arrival_us = start_us + spacing_us * static_cast<double>(i);
    rq.tenant = tenant;
    requests.push_back(std::move(rq));
  }
  std::vector<blaze::ClusterRequestOutcome> outcomes =
      cluster.Run(std::move(requests));

  WaveResult result;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const blaze::ClusterRequestOutcome& o = outcomes[i];
    if (o.outcome == blaze::ClusterServe::kRejectedFull ||
        o.outcome == blaze::ClusterServe::kTenantThrottled) {
      continue;
    }
    result.latencies_us.push_back(o.latency_us);
    const double base = (first_ordinal + static_cast<double>(i)) *
                        static_cast<double>(kRecordsPerRequest);
    if (o.output.num_records() != kRecordsPerRequest) {
      ++result.mismatches;
      continue;
    }
    const blaze::Column& y = o.output.ColumnByField("y");
    for (std::size_t n = 0; n < kRecordsPerRequest; ++n) {
      if (y.data[n].AsDouble() != 2.0 * (base + static_cast<double>(n))) {
        ++result.mismatches;
      }
    }
  }
  if (keep_outcomes) result.outcomes = std::move(outcomes);
  return result;
}

double Quantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  double rank =
      std::ceil(q * static_cast<double>(samples.size())) - 1;
  auto index = static_cast<std::size_t>(std::max(0.0, rank));
  return samples[std::min(index, samples.size() - 1)];
}

// FNV-1a over the canonical outcome stream: bit-identity without holding
// megabytes of rendered text.
struct CanonHash {
  std::uint64_t state = 1469598103934665603ULL;
  void Mix(const std::string& text) {
    for (unsigned char c : text) {
      state ^= c;
      state *= 1099511628211ULL;
    }
  }
  void Mix(const blaze::ClusterRequestOutcome& o) {
    std::ostringstream os;
    os << std::hexfloat;
    os << o.id << '|' << blaze::ClusterServeName(o.outcome) << '|' << o.shard
       << '|' << o.replica << '|' << o.tenant << '|' << o.batch_size << '|'
       << o.redirects << '|' << o.hedged << o.poisoned << '|' << o.dispatch_us
       << '|' << o.complete_us << '|' << o.latency_us << '|';
    for (std::size_t c = 0; c < o.output.num_columns(); ++c) {
      for (const auto& v : o.output.column(c).data) os << v.AsDouble() << ',';
    }
    os << '\n';
    Mix(os.str());
  }
};

}  // namespace

int main() {
  MetricsScope metrics("cluster");
  const bool quick = QuickMode();
  const std::size_t scale_div = quick ? 50 : 1;
  std::printf("=== sharded serving replay (BlazeCluster chaos harness)%s ===\n",
              quick ? " [quick]" : "");

  Harness hx;
  std::map<std::string, obs::LedgerEntry> entries;
  auto ledger_entry = [&entries](const std::string& name, double ns_per_op,
                                 double ops) {
    obs::LedgerEntry entry;
    entry.ns_per_op = ns_per_op;
    entry.ops = ops;
    entry.wall_ms = ns_per_op * ops / 1e6;
    entries[name] = entry;
  };

  // ---- phase 1: capacity scaling, saturating waves -----------------------
  const std::size_t scale_reqs = 120000 / scale_div;
  const std::size_t wave = 10000 / scale_div;
  std::map<std::size_t, double> tput;  // shards -> records per sim second
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    blaze::ClusterOptions options;
    options.queue_capacity = wave;
    options.batch_max_requests = 16;
    blaze::BlazeCluster cluster = hx.MakeCluster(options, shards);
    std::size_t mismatches = 0;
    for (std::size_t done = 0; done < scale_reqs; done += wave) {
      // Whole wave at the current clock: every shard saturates.
      WaveResult r = RunWave(cluster, std::min(wave, scale_reqs - done),
                             static_cast<double>(done), cluster.clock_us(),
                             /*spacing_us=*/0, "default");
      mismatches += r.mismatches;
    }
    const double makespan_us = cluster.clock_us();
    tput[shards] = static_cast<double>(scale_reqs * kRecordsPerRequest) /
                   (makespan_us / 1e6);
    std::printf("scale %zu shard%s: %zu reqs, makespan %.1f ms, "
                "%.0f records/s, %zu mismatches\n",
                shards, shards == 1 ? " " : "s", scale_reqs,
                makespan_us / 1e3, tput[shards], mismatches);
    ledger_entry("cluster.scale.shard" + std::to_string(shards) + ".request",
                 makespan_us * 1e3 / static_cast<double>(scale_reqs),
                 static_cast<double>(scale_reqs));
    if (mismatches > 0) {
      std::printf("GATE scale-reference-match: FAIL\n");
      return 1;
    }
  }
  const double scale2 = tput[2] / tput[1];
  const double scale4 = tput[4] / tput[1];
  const bool scales = scale2 >= 1.7 && scale4 >= 3.0;

  // ---- clean paced baseline on 4 shards ---------------------------------
  // Arrivals at ~90% of aggregate capacity: queues form but stay bounded.
  const double spacing4_us = hx.request_us / 4.0 / 0.9;
  const std::size_t base_reqs = 100000 / scale_div;
  double clean_p50 = 0, clean_p99 = 0;
  {
    blaze::ClusterOptions options;
    options.queue_capacity = 4096;
    options.batch_max_requests = 16;
    blaze::BlazeCluster cluster = hx.MakeCluster(options, 4);
    std::vector<double> latencies;
    std::size_t mismatches = 0;
    for (std::size_t done = 0; done < base_reqs; done += wave) {
      const std::size_t n = std::min(wave, base_reqs - done);
      WaveResult r = RunWave(cluster, n, static_cast<double>(done),
                             spacing4_us * static_cast<double>(done),
                             spacing4_us, "default");
      mismatches += r.mismatches;
      latencies.insert(latencies.end(), r.latencies_us.begin(),
                       r.latencies_us.end());
    }
    clean_p50 = Quantile(latencies, 0.5);
    clean_p99 = Quantile(latencies, 0.99);
    std::printf("clean baseline: %zu reqs, p50 %.0f / p99 %.0f us, "
                "%zu mismatches\n",
                base_reqs, clean_p50, clean_p99, mismatches);
    ledger_entry("cluster.clean.request", clean_p50 * 1e3,
                 static_cast<double>(base_reqs));
    if (mismatches > 0) {
      std::printf("GATE clean-reference-match: FAIL\n");
      return 1;
    }
  }

  // ---- phase 2: scripted chaos on 4 shards ------------------------------
  const std::size_t chaos_reqs = 240000 / scale_div;
  bool chaos_ok = false, rebalance_ok = false, chaos_p99_ok = false;
  {
    const double span_us = spacing4_us * static_cast<double>(chaos_reqs);
    const double kill_at = 0.10 * span_us;
    const double restart_at = 0.30 * span_us;
    std::ostringstream plan;
    plan << "kill 0 @ " << kill_at << "; restart 0 @ " << restart_at
         << "; burst 100:400 @ 1"
         << "; spike 2.5 @ " << 0.5 * span_us << " + " << 0.1 * span_us
         << "; poison-rate 0.001 / 11";
    blaze::ClusterOptions options;
    options.queue_capacity = 4096;
    options.batch_max_requests = 16;
    // Hedge requests stuck ~10x past the clean tail: the burst-quarantined
    // shard parks its queue behind probe backoffs, and the host hedge is
    // what bounds that tail (and keeps the hedge-vs-failover race live).
    options.queue_hedge_us = 10 * clean_p99;
    blaze::BlazeCluster cluster = hx.MakeCluster(options, 4);
    cluster.SetChaosPlan(blaze::ParseChaosPlan(plan.str()));
    std::size_t mismatches = 0;
    std::size_t shard0_before_kill = 0, shard0_while_dead = 0,
                shard0_after_restart = 0;
    std::vector<double> latencies;
    for (std::size_t done = 0; done < chaos_reqs; done += wave) {
      const std::size_t n = std::min(wave, chaos_reqs - done);
      WaveResult r = RunWave(cluster, n, static_cast<double>(done),
                             spacing4_us * static_cast<double>(done),
                             spacing4_us, "default", /*keep_outcomes=*/true);
      mismatches += r.mismatches;
      latencies.insert(latencies.end(), r.latencies_us.begin(),
                       r.latencies_us.end());
      for (const auto& o : r.outcomes) {
        if (o.shard != 0) continue;
        if (o.dispatch_us < kill_at) ++shard0_before_kill;
        else if (o.dispatch_us < restart_at) ++shard0_while_dead;
        else ++shard0_after_restart;
      }
    }
    const blaze::ClusterStats& s = cluster.stats();
    const std::size_t lost =
        s.submitted - s.completed - s.rejected_full - s.tenant_throttled;
    const double chaos_p99 = Quantile(latencies, 0.99);
    chaos_ok = lost == 0 && mismatches == 0;
    // Dead means dead; revived means traffic comes back.
    rebalance_ok = shard0_while_dead == 0 && shard0_after_restart > 0 &&
                   s.shards[0].kills == 1 && s.shards[0].restarts == 1;
    chaos_p99_ok = chaos_p99 <= 30.0 * clean_p99;
    std::printf("chaos: %zu reqs, %zu lost, %zu mismatches, p99 %.0f us "
                "(clean %.0f), failovers %zu, redirects %zu, bisects %zu, "
                "poison %zu, shard0 %zu/%zu/%zu "
                "(pre-kill/dead/post-restart)\n",
                chaos_reqs, lost, mismatches, chaos_p99, clean_p99,
                s.failovers, s.redirects, s.bisect_attempts,
                s.poison_isolated, shard0_before_kill, shard0_while_dead,
                shard0_after_restart);
    ledger_entry("cluster.chaos.request", Quantile(latencies, 0.5) * 1e3,
                 static_cast<double>(chaos_reqs));
  }

  // ---- phase 3: tenant flood under weighted-fair admission --------------
  const std::size_t flood_reqs = 160000 / scale_div;
  const std::size_t flood_extra = 40000 / scale_div;
  bool flood_ok = false, flood_p99_ok = false;
  {
    const double span_us = spacing4_us * static_cast<double>(flood_reqs);
    // Compressed into 5% of the span: the flood arrival rate is far above
    // aggregate capacity, so the noisy tenant's queued quota must trip.
    std::ostringstream plan;
    plan << "flood noisy @ " << 0.2 * span_us << " + " << 0.05 * span_us
         << " x " << flood_extra;
    blaze::ClusterOptions options;
    options.queue_capacity = 4096;
    options.batch_max_requests = 16;
    blaze::BlazeCluster cluster = hx.MakeCluster(options, 4);
    cluster.AddTenant("payer", 4.0, 0);
    cluster.AddTenant("noisy", 1.0, 32);
    cluster.SetChaosPlan(blaze::ParseChaosPlan(plan.str()));
    cluster.SetFloodGenerator([](std::size_t ordinal) {
      blaze::ClusterRequest rq;
      rq.kernel = "doubler";
      rq.input = DoublerInput(kRecordsPerRequest,
                              1e9 + static_cast<double>(ordinal));
      return rq;
    });
    std::size_t mismatches = 0;
    std::vector<double> payer_latencies;
    for (std::size_t done = 0; done < flood_reqs; done += wave) {
      const std::size_t n = std::min(wave, flood_reqs - done);
      WaveResult r = RunWave(cluster, n, static_cast<double>(done),
                             spacing4_us * static_cast<double>(done),
                             spacing4_us, "payer");
      mismatches += r.mismatches;
      payer_latencies.insert(payer_latencies.end(), r.latencies_us.begin(),
                             r.latencies_us.end());
    }
    const blaze::ClusterStats& s = cluster.stats();
    const blaze::TenantStats& payer = s.tenants.at("payer");
    const blaze::TenantStats& noisy = s.tenants.at("noisy");
    const std::size_t lost =
        s.submitted - s.completed - s.rejected_full - s.tenant_throttled;
    const double payer_p99 = Quantile(payer_latencies, 0.99);
    flood_ok = lost == 0 && mismatches == 0 && payer.throttled == 0 &&
               payer.rejected_full == 0 && noisy.throttled > 0 &&
               s.flood_injected == flood_extra;
    flood_p99_ok = payer_p99 <= 30.0 * clean_p99;
    std::printf("flood: %zu payer + %zu flood reqs, %zu lost, %zu "
                "mismatches, payer p99 %.0f us, noisy throttled %zu of "
                "%zu\n",
                flood_reqs, s.flood_injected, lost, mismatches, payer_p99,
                noisy.throttled, noisy.submitted);
    ledger_entry("cluster.flood.payer.request",
                 Quantile(payer_latencies, 0.5) * 1e3,
                 static_cast<double>(flood_reqs));
  }

  // ---- phase 4: routing under hidden host backlog -----------------------
  // A host fallback frees the shard's dispatch lane at failure detection,
  // but the shard's service clock runs ahead to the host completion. With
  // the host path made genuinely painful, health routing keeps feeding the
  // shard that looks idle and under-occupied while it owes invisible host
  // work; depth routing scores that backlog directly. Episodes replay a
  // skewed tenant flood with a scripted fault burst per fresh cluster so
  // every episode exercises the pre-quarantine divergence window.
  const std::size_t routing_episodes = 1000 / scale_div;
  bool routing_ok = false, routing_tail_ok = false;
  double routing_p99_health = 0, routing_p99_depth = 0;
  {
    blaze::OffloadCostModel pain;
    pain.host_slowdown = 2000.0;
    blaze::BlazeRuntime host_pain(pain);
    {
      jvm::ClassPool pool = MakePool();
      Artifact artifact =
          BuildWithConfig(pool, MakeSpec(), merlin::DesignConfig{});
      RegisterWithBlaze(host_pain, "r0", artifact);
      RegisterWithBlaze(host_pain, "r1", artifact);
    }
    auto run_policy = [&](blaze::Routing routing, std::size_t& lost,
                          std::size_t& mismatches) {
      std::vector<double> latencies;
      for (std::size_t e = 0; e < routing_episodes; ++e) {
        blaze::ClusterOptions options;
        options.queue_capacity = 4096;
        options.batch_max_requests = 1;  // one routing decision per request
        options.routing = routing;
        blaze::BlazeCluster cluster(host_pain, options);
        cluster.AddShard();
        cluster.AddShard();
        cluster.AddReplica(0, "doubler", "r0");  // single replica: faults
        cluster.AddReplica(1, "doubler", "r1");  // fall back to the host
        cluster.SetChaosPlan(blaze::ParseChaosPlan("burst 0:3 @ 0"));
        std::vector<blaze::ClusterRequest> requests;
        const double base0 =
            static_cast<double>(e) * 25.0 * kRecordsPerRequest;
        double base = base0;
        // Noisy tenant floods at ~5x the per-invocation cost; the light
        // tenant trickles in between. No simultaneous arrivals: the
        // routing score, not the one-batch-per-shard gate, decides.
        for (int i = 0; i < 20; ++i) {
          blaze::ClusterRequest rq;
          rq.kernel = "doubler";
          rq.input = DoublerInput(kRecordsPerRequest, base);
          rq.arrival_us = 150.0 * i;
          rq.tenant = "noisy";
          requests.push_back(std::move(rq));
          base += kRecordsPerRequest;
        }
        for (int i = 0; i < 5; ++i) {
          blaze::ClusterRequest rq;
          rq.kernel = "doubler";
          rq.input = DoublerInput(kRecordsPerRequest, base);
          rq.arrival_us = 675.0 + 600.0 * i;
          rq.tenant = "light";
          requests.push_back(std::move(rq));
          base += kRecordsPerRequest;
        }
        auto outcomes = cluster.Run(std::move(requests));
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
          const blaze::ClusterRequestOutcome& o = outcomes[i];
          if (o.outcome == blaze::ClusterServe::kRejectedFull ||
              o.outcome == blaze::ClusterServe::kTenantThrottled) {
            ++lost;
            continue;
          }
          latencies.push_back(o.latency_us);
          const double want = base0 + static_cast<double>(i) *
                                          static_cast<double>(
                                              kRecordsPerRequest);
          if (o.output.num_records() != kRecordsPerRequest) {
            ++mismatches;
            continue;
          }
          const blaze::Column& y = o.output.ColumnByField("y");
          for (std::size_t n = 0; n < kRecordsPerRequest; ++n) {
            if (y.data[n].AsDouble() !=
                2.0 * (want + static_cast<double>(n))) {
              ++mismatches;
            }
          }
        }
      }
      return latencies;
    };
    std::size_t lost_health = 0, mism_health = 0;
    std::size_t lost_depth = 0, mism_depth = 0;
    std::vector<double> health_lat =
        run_policy(blaze::Routing::kHealth, lost_health, mism_health);
    std::vector<double> depth_lat =
        run_policy(blaze::Routing::kDepth, lost_depth, mism_depth);
    routing_p99_health = Quantile(health_lat, 0.99);
    routing_p99_depth = Quantile(depth_lat, 0.99);
    routing_ok = lost_health == 0 && lost_depth == 0 && mism_health == 0 &&
                 mism_depth == 0;
    routing_tail_ok = routing_p99_depth < routing_p99_health;
    std::printf("routing: %zu episodes x 25 reqs, health p99 %.0f us, "
                "depth p99 %.0f us, lost %zu/%zu, mismatches %zu/%zu "
                "(health/depth)\n",
                routing_episodes, routing_p99_health, routing_p99_depth,
                lost_health, lost_depth, mism_health, mism_depth);
    ledger_entry("cluster.routing.depth.request",
                 Quantile(depth_lat, 0.5) * 1e3,
                 static_cast<double>(routing_episodes * 25));
  }

  // ---- phase 5: exec-thread bit-identity --------------------------------
  const std::size_t det_reqs = 40000 / scale_div;
  bool deterministic = false;
  {
    const double spacing2_us = hx.request_us / 2.0 / 0.9;
    const double span_us = spacing2_us * static_cast<double>(det_reqs);
    std::ostringstream plan;
    plan << "kill 0 @ " << 0.2 * span_us << "; restart 0 @ " << 0.4 * span_us
         << "; burst 50:100 @ 1; spike 2 @ " << 0.6 * span_us << " + "
         << 0.1 * span_us << "; poison-rate 0.002 / 3";
    std::vector<std::uint64_t> hashes;
    for (int threads : {1, 2, 8}) {
      blaze::ClusterOptions options;
      options.queue_capacity = 4096;
      options.batch_max_requests = 8;
      options.exec_threads = threads;
      options.queue_hedge_us = 20 * clean_p99;
      blaze::BlazeCluster cluster = hx.MakeCluster(options, 2);
      cluster.SetChaosPlan(blaze::ParseChaosPlan(plan.str()));
      CanonHash hash;
      for (std::size_t done = 0; done < det_reqs; done += wave) {
        const std::size_t n = std::min(wave, det_reqs - done);
        WaveResult r =
            RunWave(cluster, n, static_cast<double>(done),
                    spacing2_us * static_cast<double>(done), spacing2_us,
                    "default", /*keep_outcomes=*/true);
        for (const auto& o : r.outcomes) hash.Mix(o);
      }
      hashes.push_back(hash.state);
    }
    deterministic = hashes[0] == hashes[1] && hashes[0] == hashes[2];
    std::printf("determinism: %zu reqs x {1,2,8} exec threads, canonical "
                "hash %016llx %s\n",
                det_reqs, static_cast<unsigned long long>(hashes[0]),
                deterministic ? "(all equal)" : "(MISMATCH)");
  }

  std::printf("\nGATE shard-scaling: %s (2 shards %.2fx, 4 shards %.2fx)\n",
              scales ? "PASS" : "FAIL", scale2, scale4);
  std::printf("GATE chaos-zero-lost-and-match: %s\n",
              chaos_ok ? "PASS" : "FAIL");
  std::printf("GATE chaos-p99-bounded: %s\n", chaos_p99_ok ? "PASS" : "FAIL");
  std::printf("GATE failover-rebalance: %s\n",
              rebalance_ok ? "PASS" : "FAIL");
  std::printf("GATE flood-fairness: %s\n", flood_ok ? "PASS" : "FAIL");
  std::printf("GATE flood-p99-bounded: %s\n", flood_p99_ok ? "PASS" : "FAIL");
  std::printf("GATE routing-zero-lost-and-match: %s\n",
              routing_ok ? "PASS" : "FAIL");
  std::printf("GATE routing-depth-tail-improves: %s (health %.0f us, "
              "depth %.0f us)\n",
              routing_tail_ok ? "PASS" : "FAIL", routing_p99_health,
              routing_p99_depth);
  std::printf("GATE exec-thread-determinism: %s\n",
              deterministic ? "PASS" : "FAIL");

  const std::string ledger_path =
      UpdatePerfLedger(entries, ServingLedgerPath());
  std::printf("perf ledger: %s\n", ledger_path.c_str());

  return (scales && chaos_ok && chaos_p99_ok && rebalance_ok && flood_ok &&
          flood_p99_ok && routing_ok && routing_tail_ok && deterministic)
             ? 0
             : 1;
}
