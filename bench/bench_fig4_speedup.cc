// Fig. 4 reproduction: speedup of the manual HLS design and the
// S2FA-generated design over the original Spark transformation running on
// a single-threaded JVM executor.
//
// Paper headlines: S2FA designs reach ~85% of the manual designs on
// average and beat the JVM by 181.5x on average (up to 49.9x for machine
// learning, up to 1225.2x for string processing); LR lags its manual
// design (the II-13 chain), and PR is modest even manually (bandwidth
// bound).
#include <cmath>
#include <cstdio>
#include <fstream>

#include "bench_util.h"
#include "merlin/transform.h"
#include "support/strings.h"
#include "support/table.h"

using namespace s2fa;
using namespace s2fa::bench;

int main() {
  MetricsScope metrics("fig4");
  EvalSetup setup;
  TextTable table({"Kernel", "Type", "JVM (ms)", "Manual (ms)", "S2FA (ms)",
                   "Manual x", "S2FA x", "S2FA/Manual"});
  std::ofstream csv(OutPath("fig4_speedup.csv"));
  csv << "kernel,type,jvm_ms,manual_ms,s2fa_ms,manual_x,s2fa_x\n";

  double sum_log_speedup = 0;
  double sum_speedup = 0;
  double sum_ratio = 0;
  double best_ml = 0, best_string = 0;
  int n = 0;

  for (apps::App& app : apps::AllApps()) {
    PreparedApp prepared = Prepare(std::move(app));

    // S2FA: full automated flow.
    dse::ExplorerOptions options;
    options.time_limit_minutes = setup.time_limit_minutes;
    options.num_cores = setup.num_cores;
    options.seed = setup.seed;
    dse::DseResult dse_result = dse::RunS2faDse(
        prepared.space, prepared.generated, prepared.evaluate, options);
    if (!dse_result.found_feasible) {
      std::fprintf(stderr, "%s: DSE found no feasible design\n",
                   prepared.app.name.c_str());
      return 1;
    }
    merlin::TransformResult best =
        merlin::ApplyDesign(prepared.generated, dse_result.best_config);
    hls::HlsResult best_hls = hls::EstimateHls(best.kernel);

    const std::size_t records = prepared.app.bench_records;
    const double jvm_us = JvmMicros(prepared.app, records, 4242);
    const double manual_us =
        AcceleratorMicros(prepared.manual_design, prepared.manual_hls,
                          records);
    const double s2fa_us =
        AcceleratorMicros(best.kernel, best_hls, records);

    const double manual_x = jvm_us / manual_us;
    const double s2fa_x = jvm_us / s2fa_us;
    const double ratio = s2fa_x / manual_x;

    table.AddRow({prepared.app.name, prepared.app.type_label,
                  FormatDouble(jvm_us / 1000.0, 2),
                  FormatDouble(manual_us / 1000.0, 3),
                  FormatDouble(s2fa_us / 1000.0, 3),
                  FormatSpeedup(manual_x, 1), FormatSpeedup(s2fa_x, 1),
                  FormatPercent(ratio, 1)});
    csv << prepared.app.name << "," << prepared.app.type_label << ","
        << jvm_us / 1000.0 << "," << manual_us / 1000.0 << ","
        << s2fa_us / 1000.0 << "," << manual_x << "," << s2fa_x << "\n";

    sum_log_speedup += std::log(s2fa_x);
    sum_speedup += s2fa_x;
    sum_ratio += std::min(ratio, 1.5);  // cap wins over manual at 150%
    if (prepared.app.type_label == "string proc.") {
      best_string = std::max(best_string, s2fa_x);
    } else {
      best_ml = std::max(best_ml, s2fa_x);
    }
    ++n;
  }

  std::printf("=== Fig. 4: speedup over a single-threaded JVM executor ===\n");
  std::printf("%s\n", table.Render().c_str());
  std::printf("mean S2FA speedup over JVM: %.1fx, geomean %.1fx "
              "(paper: 181.5x mean)\n",
              sum_speedup / n, std::exp(sum_log_speedup / n));
  std::printf("S2FA reaches %.0f%% of the manual designs on average "
              "(paper: ~85%%)\n",
              100.0 * sum_ratio / n);
  std::printf("best ML/graph speedup: %.1fx (paper: up to 49.9x)\n", best_ml);
  std::printf("best string-processing speedup: %.1fx (paper: up to "
              "1225.2x)\n",
              best_string);
  return 0;
}
