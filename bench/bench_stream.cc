// Streaming-serving replay (StreamSession): ~1M simulated records streamed
// through the SLO-bound micro-batching session over BlazeCluster, gating
// the overload-control contract via the exit code:
//
//   1. sub-capacity — a 0.5x-capacity stream must commit everything with
//                     zero shed, match the doubled reference, and keep
//                     p99 external latency within the SLO;
//   2. chaos        — an at-capacity stream with a kill/restart and a
//                     latency spike mid-stream: every record lands in
//                     exactly one terminal state (zero lost), served
//                     outputs match, and the watermark never regresses;
//   3. overload     — the same 2x-overload stream through the ladder
//                     (CoDel unmeetable shed -> retry budgets -> bounded
//                     brownout -> full shed) and the FIFO tail-drop
//                     strawman: the ladder's goodput (records visibly
//                     committed within SLO) must strictly beat FIFO's,
//                     and the ladder never FIFO-drops;
//   4. determinism  — the chaotic at-capacity stream on 1/2/8 exec
//                     threads renders bit-identical outcome streams.
//
// Quick mode (S2FA_BENCH_QUICK=1, used by the stream_smoke ctest) scales
// the record counts down ~50x but exercises every gate. Phase latencies
// land in the serving perf ledger (BENCH_serving.json at the repo root, or
// S2FA_PERF_LEDGER) for the perf-diff trajectory gate.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "b2c/compiler.h"
#include "bench_util.h"
#include "blaze/stream.h"
#include "jvm/assembler.h"
#include "merlin/transform.h"
#include "obs/obs.h"
#include "s2fa/framework.h"

using namespace s2fa;
using namespace s2fa::bench;

namespace {

bool QuickMode() {
  const char* env = std::getenv("S2FA_BENCH_QUICK");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

// Doubler: double -> 2 * double, batch 8 — record `seq` carries the value
// `seq`, so every committed output is checkable as exactly 2 * seq.
jvm::ClassPool MakePool() {
  jvm::ClassPool pool;
  jvm::Assembler a;
  a.Load(jvm::Type::Double(), 0).DConst(2.0).DMul().Ret(jvm::Type::Double());
  jvm::MethodSignature sig;
  sig.params = {jvm::Type::Double()};
  sig.ret = jvm::Type::Double();
  pool.Define("Doubler").AddMethod(
      jvm::MakeMethod("call", sig, true, 2, a.Finish()));
  return pool;
}

b2c::KernelSpec MakeSpec() {
  b2c::KernelSpec spec;
  spec.kernel_name = "doubler";
  spec.klass = "Doubler";
  spec.input.type = jvm::Type::Double();
  spec.input.fields = {{"x", jvm::Type::Double(), 1, false}};
  spec.output.type = jvm::Type::Double();
  spec.output.fields = {{"y", jvm::Type::Double(), 1, false}};
  spec.batch = 8;
  return spec;
}

blaze::StreamRecord Gen(std::size_t ordinal) {
  blaze::StreamRecord record;
  record.kernel = "doubler";
  blaze::Column x;
  x.field = "x";
  x.element = jvm::Type::Double();
  x.data.push_back(jvm::Value::OfDouble(static_cast<double>(ordinal)));
  record.input.AddColumn(x);
  return record;
}

// Doubler replicas r0..r(n-1) spread one per shard over min(lanes, 2)
// shards (the stream_test topology); `inv_us` is the accelerator charge
// for one 8-record invocation.
struct Harness {
  blaze::BlazeRuntime runtime;
  double inv_us = 0;
  int lanes = 0;

  explicit Harness(int replicas) : lanes(replicas) {
    jvm::ClassPool pool = MakePool();
    Artifact artifact =
        BuildWithConfig(pool, MakeSpec(), merlin::DesignConfig{});
    for (int i = 0; i < replicas; ++i) {
      RegisterWithBlaze(runtime, "r" + std::to_string(i), artifact);
    }
    inv_us = runtime.PerInvocationCost("r0").total_us;
  }

  blaze::BlazeCluster MakeCluster(blaze::ClusterOptions options = {}) {
    const int shards = lanes < 2 ? lanes : 2;
    options.queue_capacity = std::size_t{1} << 20;
    blaze::BlazeCluster cluster(runtime, options);
    for (int s = 0; s < shards; ++s) cluster.AddShard();
    for (int i = 0; i < lanes; ++i) {
      cluster.AddReplica(static_cast<std::size_t>(i % shards), "doubler",
                         "r" + std::to_string(i));
    }
    return cluster;
  }

  // `count` records at `fraction` of the modeled capacity (lanes * 8
  // records per invocation charge).
  blaze::ArrivalSchedule At(double fraction, std::size_t count) const {
    const double inter_us =
        inv_us / 8.0 / static_cast<double>(lanes) / fraction;
    blaze::ArrivalSchedule schedule;
    schedule.phases.push_back(
        {"default", 0, inter_us * static_cast<double>(count), count});
    return schedule;
  }

  // Thresholds scaled off the invocation charge so the gates track the
  // cost model instead of hard-coded microseconds (the stream_test Opts).
  blaze::StreamOptions Opts() const {
    blaze::StreamOptions options;
    options.batch_max_records = 8;
    options.batch_age_us = 2 * inv_us;
    options.slo_us = 50 * inv_us;
    options.deadline_headroom_us = inv_us;
    options.codel_target_us = 5 * inv_us;
    options.codel_interval_us = 5 * inv_us;
    options.brownout_onset_us = 10 * inv_us;
    options.shed_onset_us = 20 * inv_us;
    return options;
  }
};

struct PhaseResult {
  std::size_t mismatches = 0;  // served outputs that are not 2 * seq
  bool accounted = false;      // every record in exactly one terminal state
  bool watermark_monotone = false;
  std::size_t goodput = 0;  // committed within SLO (external latency)
};

PhaseResult Check(const std::vector<blaze::StreamRecordOutcome>& outs,
                  const blaze::StreamStats& stats, std::size_t count,
                  double slo_us) {
  PhaseResult result;
  for (const auto& out : outs) {
    if (blaze::IsStreamShed(out.outcome)) continue;
    if (out.output.num_records() != 1 ||
        out.output.ColumnByField("y").data[0].AsDouble() !=
            2.0 * static_cast<double>(out.seq)) {
      ++result.mismatches;
      continue;
    }
    if (out.latency_us <= slo_us) ++result.goodput;
  }
  result.accounted =
      stats.arrivals == count &&
      stats.committed + stats.committed_host + stats.shed_total() == count &&
      stats.watermark_trace.size() == count;
  result.watermark_monotone = true;
  double last = 0;
  for (const auto& [seq, at] : stats.watermark_trace) {
    (void)seq;
    if (at < last) result.watermark_monotone = false;
    last = at;
  }
  if (stats.watermark_us != last) result.watermark_monotone = false;
  return result;
}

// FNV-1a over the canonical stream-outcome rendering: bit-identity across
// exec threads without holding megabytes of text.
std::uint64_t CanonHash(const std::vector<blaze::StreamRecordOutcome>& outs) {
  std::uint64_t state = 1469598103934665603ULL;
  std::ostringstream os;
  os << std::hexfloat;
  for (const auto& o : outs) {
    os << o.seq << '|' << o.tenant << '|' << blaze::StreamOutcomeName(o.outcome)
       << '|' << o.retries << '|' << o.arrival_us << '|' << o.terminal_us
       << '|' << o.external_commit_us << '|' << o.latency_us << '|';
    for (std::size_t c = 0; c < o.output.num_columns(); ++c) {
      for (const auto& v : o.output.column(c).data) os << v.AsDouble() << ',';
    }
    os << '\n';
  }
  for (unsigned char c : os.str()) {
    state ^= c;
    state *= 1099511628211ULL;
  }
  return state;
}

}  // namespace

int main() {
  MetricsScope metrics("stream");
  const bool quick = QuickMode();
  const std::size_t scale_div = quick ? 50 : 1;
  std::printf("=== streaming serving replay (StreamSession overload ladder)"
              "%s ===\n",
              quick ? " [quick]" : "");

  std::map<std::string, obs::LedgerEntry> entries;
  auto ledger_entry = [&entries](const std::string& name, double ns_per_op,
                                 double ops) {
    obs::LedgerEntry entry;
    entry.ns_per_op = ns_per_op;
    entry.ops = ops;
    entry.wall_ms = ns_per_op * ops / 1e6;
    entries[name] = entry;
  };

  // ---- phase 1: sub-capacity stream, everything within SLO ---------------
  const std::size_t sub_records = 200000 / scale_div;
  bool sub_ok = false, sub_slo_ok = false;
  {
    Harness hx(2);
    blaze::BlazeCluster cluster = hx.MakeCluster();
    const blaze::StreamOptions options = hx.Opts();
    blaze::StreamSession session(cluster, options);
    auto outs = session.Run(hx.At(0.5, sub_records), Gen);
    const blaze::StreamStats& stats = session.stats();
    PhaseResult r = Check(outs, stats, sub_records, options.slo_us);
    const double p50 = stats.LatencyQuantile(0.5);
    const double p99 = stats.LatencyQuantile(0.99);
    sub_ok = r.accounted && r.watermark_monotone && r.mismatches == 0 &&
             stats.shed_total() == 0 && stats.committed == sub_records;
    sub_slo_ok = p99 <= options.slo_us;
    std::printf("sub-capacity: %zu records @ 0.5x, committed %zu, shed %zu, "
                "%zu mismatches, p50 %.0f / p99 %.0f us (slo %.0f)\n",
                sub_records, stats.committed, stats.shed_total(),
                r.mismatches, p50, p99, options.slo_us);
    ledger_entry("stream.sub.record", p50 * 1e3,
                 static_cast<double>(sub_records));
  }

  // ---- phase 2: chaos mid-stream at capacity -----------------------------
  const std::size_t chaos_records = 200000 / scale_div;
  bool chaos_ok = false;
  {
    Harness hx(4);
    blaze::BlazeCluster cluster = hx.MakeCluster();
    // Kill one fault domain a third in, restart it later, and stretch a
    // 2.5x latency spike across the middle of the stream.
    const double horizon = static_cast<double>(chaos_records) * hx.inv_us /
                           8.0 / static_cast<double>(hx.lanes);
    std::ostringstream plan;
    plan << "kill 1 @ " << horizon / 3 << "; restart 1 @ " << horizon * 2 / 3
         << "; spike 2.5 @ " << horizon / 2 << " + " << horizon / 4;
    cluster.SetChaosPlan(blaze::ParseChaosPlan(plan.str()));
    const blaze::StreamOptions options = hx.Opts();
    blaze::StreamSession session(cluster, options);
    auto outs = session.Run(hx.At(1.0, chaos_records), Gen);
    const blaze::StreamStats& stats = session.stats();
    PhaseResult r = Check(outs, stats, chaos_records, options.slo_us);
    chaos_ok = r.accounted && r.watermark_monotone && r.mismatches == 0 &&
               stats.committed > 0;
    std::printf("chaos: %zu records @ 1.0x with kill/restart/spike, "
                "committed %zu (+%zu host), shed %zu, %zu mismatches, "
                "max delay %.0f us, watermark %s\n",
                chaos_records, stats.committed, stats.committed_host,
                stats.shed_total(), r.mismatches, stats.max_queue_delay_us,
                r.watermark_monotone ? "monotone" : "REGRESSED");
    ledger_entry("stream.chaos.record", stats.LatencyQuantile(0.5) * 1e3,
                 static_cast<double>(chaos_records));
  }

  // ---- phase 3: 2x overload, ladder vs FIFO tail-drop --------------------
  const std::size_t over_records = 120000 / scale_div;
  bool over_ok = false, goodput_ok = false;
  std::size_t good_ladder = 0, good_fifo = 0;
  {
    Harness hx(2);
    struct Arm {
      PhaseResult result;
      blaze::StreamStats stats;
    };
    auto run_arm = [&](blaze::OverloadPolicy policy) {
      blaze::BlazeCluster cluster = hx.MakeCluster();
      blaze::StreamOptions options = hx.Opts();
      options.policy = policy;
      blaze::StreamSession session(cluster, options);
      auto outs = session.Run(hx.At(2.0, over_records), Gen);
      return Arm{Check(outs, session.stats(), over_records, options.slo_us),
                 session.stats()};
    };
    const Arm ladder = run_arm(blaze::OverloadPolicy::kLadder);
    const Arm fifo = run_arm(blaze::OverloadPolicy::kFifoShed);
    good_ladder = ladder.result.goodput;
    good_fifo = fifo.result.goodput;
    over_ok = ladder.result.accounted && ladder.result.watermark_monotone &&
              ladder.result.mismatches == 0 && fifo.result.accounted &&
              fifo.result.watermark_monotone && fifo.result.mismatches == 0 &&
              ladder.stats.shed_queue_full == 0;
    goodput_ok = good_ladder > good_fifo;
    std::printf("overload: %zu records @ 2.0x, ladder goodput %zu "
                "(committed %zu+%zu host, shed %zu, codel %zu, retries "
                "%zu), fifo goodput %zu (tail-dropped %zu)\n",
                over_records, good_ladder, ladder.stats.committed,
                ladder.stats.committed_host, ladder.stats.shed_total(),
                ladder.stats.codel_engagements, ladder.stats.retries_granted,
                good_fifo, fifo.stats.shed_queue_full);
    ledger_entry("stream.overload.ladder.record",
                 ladder.stats.LatencyQuantile(0.5) * 1e3,
                 static_cast<double>(over_records));
  }

  // ---- phase 4: exec-thread bit-identity ---------------------------------
  const std::size_t det_records = 60000 / scale_div;
  bool deterministic = false;
  {
    std::vector<std::uint64_t> hashes;
    for (int threads : {1, 2, 8}) {
      Harness hx(4);
      blaze::ClusterOptions coptions;
      coptions.exec_threads = threads;
      blaze::BlazeCluster cluster = hx.MakeCluster(coptions);
      const double horizon = static_cast<double>(det_records) * hx.inv_us /
                             8.0 / static_cast<double>(hx.lanes) / 1.5;
      std::ostringstream plan;
      plan << "kill 0 @ " << horizon / 4 << "; restart 0 @ " << horizon / 2;
      cluster.SetChaosPlan(blaze::ParseChaosPlan(plan.str()));
      blaze::StreamSession session(cluster, hx.Opts());
      hashes.push_back(CanonHash(session.Run(hx.At(1.5, det_records), Gen)));
    }
    deterministic = hashes[0] == hashes[1] && hashes[0] == hashes[2];
    std::printf("determinism: %zu records x {1,2,8} exec threads, canonical "
                "hash %016llx %s\n",
                det_records, static_cast<unsigned long long>(hashes[0]),
                deterministic ? "(all equal)" : "(MISMATCH)");
  }

  std::printf("\nGATE stream-sub-capacity-clean: %s\n",
              sub_ok ? "PASS" : "FAIL");
  std::printf("GATE stream-sub-capacity-slo: %s\n",
              sub_slo_ok ? "PASS" : "FAIL");
  std::printf("GATE stream-chaos-zero-lost-and-match: %s\n",
              chaos_ok ? "PASS" : "FAIL");
  std::printf("GATE stream-overload-accounted: %s\n",
              over_ok ? "PASS" : "FAIL");
  std::printf("GATE stream-ladder-beats-fifo: %s (ladder %zu, fifo %zu)\n",
              goodput_ok ? "PASS" : "FAIL", good_ladder, good_fifo);
  std::printf("GATE stream-determinism: %s\n",
              deterministic ? "PASS" : "FAIL");

  const std::string ledger_path =
      UpdatePerfLedger(entries, ServingLedgerPath());
  std::printf("perf ledger: %s\n", ledger_path.c_str());

  return (sub_ok && sub_slo_ok && chaos_ok && over_ok && goodput_ok &&
          deterministic)
             ? 0
             : 1;
}
