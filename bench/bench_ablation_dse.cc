// DSE ablations (§4.3 / §5.2): how much each S2FA strategy contributes.
//
//   1. stopping criteria: entropy vs trivial no-improvement-for-10 vs the
//      fixed time limit (paper: the trivial criterion runs ~1 hour longer
//      — 2.8 h vs 1.9 h — for only ~4% better results);
//   2. seed generation on/off (paper: the QoR of the first explored point);
//   3. design-space partitioning on/off.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "merlin/transform.h"
#include "support/strings.h"
#include "support/table.h"

using namespace s2fa;
using namespace s2fa::bench;

namespace {

struct Aggregate {
  double sum_stop_h = 0;
  double sum_log_cost = 0;
  double sum_first_cost = 0;
  double sum_reclaimed_min = 0;
  int n = 0;

  void Add(const dse::DseResult& r) {
    sum_stop_h += r.elapsed_minutes / 60.0;
    sum_log_cost += std::log(r.best_cost);
    sum_first_cost += r.trace.empty() ? 0.0 : r.trace.front().best_cost;
    sum_reclaimed_min += r.schedule.reclaimed_minutes;
    ++n;
  }
  double MeanStopHours() const { return sum_stop_h / n; }
  double GeoCost() const { return std::exp(sum_log_cost / n); }
  double MeanFirst() const { return sum_first_cost / n; }
  double MeanReclaimed() const { return sum_reclaimed_min / n; }
};

}  // namespace

int main() {
  MetricsScope metrics("ablation");
  EvalSetup setup;

  Aggregate entropy, fcfs_sched, trivial, time_only, no_seeds, no_partition;
  // Future-work ablation: DSE objective assumes the target clock (the
  // published flow) vs using the estimated post-P&R frequency (this
  // repository's default). Scored on the *achieved* execution time.
  double freq_naive_sum = 0, freq_aware_sum = 0;
  int freq_n = 0;

  for (apps::App& app : apps::AllApps()) {
    PreparedApp prepared = Prepare(std::move(app));
    auto run = [&](dse::StopKind stop, bool seeds, bool partition,
                   dse::SchedulerKind sched = dse::SchedulerKind::kAdaptive) {
      dse::ExplorerOptions options;
      options.time_limit_minutes = setup.time_limit_minutes;
      options.num_cores = setup.num_cores;
      options.seed = setup.seed;
      options.stop = stop;
      options.enable_seeds = seeds;
      options.enable_partitioning = partition;
      options.scheduler = sched;
      return dse::RunS2faDse(prepared.space, prepared.generated,
                             prepared.evaluate, options);
    };
    entropy.Add(run(dse::StopKind::kEntropy, true, true));
    fcfs_sched.Add(run(dse::StopKind::kEntropy, true, true,
                       dse::SchedulerKind::kFcfs));
    trivial.Add(run(dse::StopKind::kNoImprovement, true, true));
    time_only.Add(run(dse::StopKind::kTimeOnly, true, true));
    no_seeds.Add(run(dse::StopKind::kEntropy, false, true));
    no_partition.Add(run(dse::StopKind::kEntropy, true, false));

    // Frequency-model ablation: same DSE, different objective; judge both
    // winners by their achieved (estimated-frequency) execution time.
    tuner::EvalFn naive_eval =
        MakeHlsEvaluator(prepared.generated, {}, FrequencyModel::kAssumeTarget);
    dse::ExplorerOptions fopt;
    fopt.time_limit_minutes = setup.time_limit_minutes;
    fopt.num_cores = setup.num_cores;
    fopt.seed = setup.seed;
    dse::DseResult naive = dse::RunS2faDse(prepared.space, prepared.generated,
                                           naive_eval, fopt);
    dse::DseResult aware = dse::RunS2faDse(prepared.space, prepared.generated,
                                           prepared.evaluate, fopt);
    if (naive.found_feasible && aware.found_feasible) {
      auto achieved = [&](const merlin::DesignConfig& cfg) {
        merlin::TransformResult t =
            merlin::ApplyDesign(prepared.generated, cfg);
        return hls::EstimateHls(t.kernel).exec_us;
      };
      freq_naive_sum += std::log(achieved(naive.best_config));
      freq_aware_sum += std::log(achieved(aware.best_config));
      ++freq_n;
    }
  }

  std::printf("=== DSE strategy ablations (8 apps, geometric means) ===\n\n");
  TextTable table({"Configuration", "Mean stop (h)", "Geomean best (us)",
                   "Mean first point (us)", "Mean reclaimed (min)"});
  auto row = [&](const char* label, const Aggregate& agg) {
    table.AddRow({label, FormatDouble(agg.MeanStopHours(), 2),
                  FormatDouble(agg.GeoCost(), 2),
                  FormatDouble(agg.MeanFirst(), 1),
                  FormatDouble(agg.MeanReclaimed(), 0)});
  };
  row("S2FA (entropy stop)", entropy);
  row("fcfs scheduler (no reclaim)", fcfs_sched);
  row("trivial stop (10 stale iters)", trivial);
  row("time limit only (4 h)", time_only);
  row("no seed generation", no_seeds);
  row("no partitioning", no_partition);
  std::printf("%s\n", table.Render().c_str());
  std::printf("frequency model (paper future work): achieved-time ratio "
              "assume-target-clock / frequency-aware = %.2fx "
              "(geomean over %d apps; >1 means the frequency-aware "
              "objective found faster silicon)\n\n",
              std::exp((freq_naive_sum - freq_aware_sum) / freq_n), freq_n);
  std::printf("paper: trivial criterion stops ~1 h later (2.8 h vs 1.9 h) "
              "for ~4%% better results;\n"
              "seeds determine the QoR of the first explored point; "
              "partitioning drives the faster descent.\n");
  return 0;
}
