// Table 2 reproduction: resource utilization and clock frequency of the
// best DSE-generated design for every kernel.
//
// Paper rows (VU9P, 75% usable): PR 25% BRAM / 250 MHz (bandwidth bound),
// KMeans 73% BRAM, KNN/LR/SVM/LLS resource-saturated in FF/LUT/BRAM, AES
// 36%/0% DSP (bandwidth bound), S-W 100 MHz (deep unrolled wavefront).
#include <cstdio>
#include <fstream>

#include "bench_util.h"
#include "merlin/transform.h"
#include "support/strings.h"
#include "support/table.h"

using namespace s2fa;
using namespace s2fa::bench;

int main() {
  MetricsScope metrics("table2");
  EvalSetup setup;
  TextTable table({"Kernel", "Type", "BRAM", "DSP", "FF", "LUT", "Freq."});
  std::ofstream csv(OutPath("table2_resources.csv"));
  csv << "kernel,type,bram,dsp,ff,lut,freq_mhz\n";

  for (apps::App& app : apps::AllApps()) {
    PreparedApp prepared = Prepare(std::move(app));
    dse::ExplorerOptions options;
    options.time_limit_minutes = setup.time_limit_minutes;
    options.num_cores = setup.num_cores;
    options.seed = setup.seed;
    dse::DseResult dse_result = dse::RunS2faDse(
        prepared.space, prepared.generated, prepared.evaluate, options);
    if (!dse_result.found_feasible) {
      std::fprintf(stderr, "%s: DSE found no feasible design\n",
                   prepared.app.name.c_str());
      return 1;
    }
    merlin::TransformResult best =
        merlin::ApplyDesign(prepared.generated, dse_result.best_config);
    hls::HlsResult r = hls::EstimateHls(best.kernel);

    table.AddRow({prepared.app.name, prepared.app.type_label,
                  FormatPercent(r.util.bram_frac, 0),
                  FormatPercent(r.util.dsp_frac, 0),
                  FormatPercent(r.util.ff_frac, 0),
                  FormatPercent(r.util.lut_frac, 0),
                  FormatDouble(r.freq_mhz, 0)});
    csv << prepared.app.name << "," << prepared.app.type_label << ","
        << r.util.bram_frac << "," << r.util.dsp_frac << ","
        << r.util.ff_frac << "," << r.util.lut_frac << "," << r.freq_mhz
        << "\n";
  }

  std::printf("=== Table 2: resource utilization and clock frequency "
              "(MHz) of the best DSE designs ===\n");
  std::printf("device: VU9P, cap %.0f%% (vendor shell uses the rest); "
              "target 250 MHz\n\n",
              75.0);
  std::printf("%s\n", table.Render().c_str());
  return 0;
}
