// Fig. 3 reproduction: the design space exploration process of S2FA
// (solid) vs vanilla OpenTuner (dashed) for each application.
//
// Per app it prints the best-so-far execution time over simulated
// exploration wall time — normalized to the vanilla tuner's first random
// point, exactly as the paper's y-axis — plus a summary reproducing the
// §5.2 claims: average exploration-time saving, final-QoR ratio, and mean
// termination time (paper: 52.5% time saved, ~35x QoR, S2FA stops at
// ~1.9h vs the fixed 4h). Results are averaged over several RNG seeds
// (the traces shown come from the first seed).
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "bench_util.h"
#include "support/strings.h"

using namespace s2fa;
using namespace s2fa::bench;

int main() {
  MetricsScope metrics("fig3");
  const std::vector<std::uint64_t> seeds{2018, 2019, 2020};
  // Plot-ready dump of the first-seed traces.
  std::ofstream csv("fig3_trace.csv");
  csv << "app,tuner,minutes,normalized_best\n";
  std::vector<double> samples{10, 30, 60, 90, 120, 150, 180, 210, 240};

  std::printf("=== Fig. 3: DSE process, S2FA vs vanilla OpenTuner ===\n");
  std::printf("normalized best-so-far execution time; x = minutes; "
              "summaries averaged over %zu seeds\n\n",
              seeds.size());
  std::string header = PadRight("trace", 18) + " |";
  for (double m : samples) {
    header += " " + PadLeft(FormatDouble(m, 0) + "m", 9);
  }

  double sum_time_saving = 0;
  double sum_log_qor = 0;
  double sum_s2fa_stop = 0;
  double sum_vanilla_stop = 0;
  double sum_dup_rate = 0;
  double sum_wall_saved_ms = 0;
  bool all_trajectories_identical = true;
  double total_reclaimed_minutes = 0;
  int apps_with_reclaim = 0;
  bool all_adaptive_not_worse = true;
  bool all_sched_identical_without_stop = true;
  int n = 0;

  for (apps::App& app : apps::AllApps()) {
    PreparedApp prepared = Prepare(std::move(app));

    double app_log_qor = 0;
    double app_saving = 0;
    double app_s2fa_stop = 0;
    double app_vanilla_stop = 0;
    std::size_t app_s2fa_evals = 0;
    std::size_t app_vanilla_evals = 0;
    bool first_seed = true;

    for (std::uint64_t seed : seeds) {
      EvalSetup setup;
      setup.seed = seed;
      DseComparison cmp = RunComparison(prepared, setup);

      if (first_seed) {
        std::printf("--- %s (space: 10^%.1f points; seed %llu trace) ---\n",
                    prepared.app.name.c_str(),
                    prepared.space.Log10Cardinality(),
                    static_cast<unsigned long long>(seed));
        std::printf("%s\n", header.c_str());
        std::printf("%s\n",
                    RenderTraceRow("S2FA", cmp.s2fa.trace, samples,
                                   cmp.normalization_cost)
                        .c_str());
        std::printf("%s\n",
                    RenderTraceRow("OpenTuner", cmp.vanilla.trace, samples,
                                   cmp.normalization_cost)
                        .c_str());
        for (const auto& tp : cmp.s2fa.trace) {
          csv << prepared.app.name << ",s2fa," << tp.time_minutes << ","
              << tp.best_cost / cmp.normalization_cost << "\n";
        }
        for (const auto& tp : cmp.vanilla.trace) {
          csv << prepared.app.name << ",opentuner," << tp.time_minutes << ","
              << tp.best_cost / cmp.normalization_cost << "\n";
        }
        first_seed = false;
      }

      const double s2fa_final =
          CostAt(cmp.s2fa.trace, setup.time_limit_minutes, 0);
      const double vanilla_final =
          CostAt(cmp.vanilla.trace, setup.time_limit_minutes, 0);
      app_log_qor += std::log(std::max(vanilla_final / s2fa_final, 1e-6));
      app_saving += 1.0 - cmp.s2fa.elapsed_minutes /
                              cmp.vanilla.elapsed_minutes;
      app_s2fa_stop += cmp.s2fa.elapsed_minutes;
      app_vanilla_stop += cmp.vanilla.elapsed_minutes;
      app_s2fa_evals += cmp.s2fa.evaluations;
      app_vanilla_evals += cmp.vanilla.evaluations;
    }

    const double k = static_cast<double>(seeds.size());
    std::printf(
        "mean over seeds: S2FA stops %.0f min (%.0f evals), OpenTuner "
        "%.0f min (%.0f evals); QoR ratio %.2fx; time saved %.1f%%\n",
        app_s2fa_stop / k, static_cast<double>(app_s2fa_evals) / k,
        app_vanilla_stop / k, static_cast<double>(app_vanilla_evals) / k,
        std::exp(app_log_qor / k), 100.0 * app_saving / k);

    // Memoizing-cache ablation on the first seed: same trajectory, fewer
    // synthesis jobs paid, lower real wall-clock.
    EvalSetup ablation_setup;
    ablation_setup.seed = seeds.front();
    CacheAblation ablation = RunCacheAblation(prepared, ablation_setup);
    std::printf(
        "cache ablation (seed %llu): duplicate-point rate %.1f%% "
        "(%zu of %zu lookups), %.0f simulated min not re-paid, wall-clock "
        "%.0f ms -> %.0f ms, trajectories %s\n",
        static_cast<unsigned long long>(seeds.front()),
        100.0 * ablation.stats.DuplicateRate(),
        ablation.stats.hits + ablation.stats.inflight_joins,
        ablation.stats.lookups, ablation.stats.minutes_saved,
        ablation.wall_ms_cache_off, ablation.wall_ms_cache_on,
        ablation.identical_trajectory ? "identical" : "DIVERGED (bug!)");
    sum_dup_rate += ablation.stats.DuplicateRate();
    sum_wall_saved_ms +=
        ablation.wall_ms_cache_off - ablation.wall_ms_cache_on;
    all_trajectories_identical &= ablation.identical_trajectory;

    // Scheduler ablation on the first seed: with the entropy stop the
    // adaptive scheduler reinvests freed budget and must never end up
    // worse; with stopping disabled it must match FCFS bit-for-bit.
    SchedulerAblation sched = RunSchedulerAblation(prepared, ablation_setup);
    std::printf(
        "scheduler ablation (seed %llu): best@%.0fm adaptive %.4g us vs "
        "fcfs %.4g us (%s), %.0f min reclaimed / %.0f re-granted in %zu "
        "slices (%zu preemptions, %zu extra evals); no-early-stop "
        "trajectories %s\n\n",
        static_cast<unsigned long long>(seeds.front()),
        ablation_setup.time_limit_minutes, sched.adaptive.best_cost,
        sched.fcfs.best_cost,
        sched.adaptive_not_worse ? "not worse" : "WORSE (bug!)",
        sched.adaptive.schedule.reclaimed_minutes,
        sched.adaptive.schedule.regranted_minutes,
        sched.adaptive.schedule.grants, sched.adaptive.schedule.preemptions,
        sched.adaptive.schedule.reclaim_evaluations,
        sched.identical_without_stopping ? "identical" : "DIVERGED (bug!)");
    total_reclaimed_minutes += sched.adaptive.schedule.reclaimed_minutes;
    if (sched.adaptive.schedule.reclaimed_minutes > 0) ++apps_with_reclaim;
    all_adaptive_not_worse &= sched.adaptive_not_worse;
    all_sched_identical_without_stop &= sched.identical_without_stopping;

    sum_time_saving += app_saving / k;
    sum_log_qor += app_log_qor / k;
    sum_s2fa_stop += app_s2fa_stop / k;
    sum_vanilla_stop += app_vanilla_stop / k;
    ++n;
  }

  std::printf("=== Summary (paper: 52.5%% avg time saved, ~35x QoR, stop "
              "~1.9h vs 4h) ===\n");
  std::printf("average exploration-time saving: %.1f%%\n",
              100.0 * sum_time_saving / n);
  std::printf("geomean QoR improvement over OpenTuner: %.1fx\n",
              std::exp(sum_log_qor / n));
  std::printf("mean termination: S2FA %.2f h, OpenTuner %.2f h\n",
              sum_s2fa_stop / n / 60.0, sum_vanilla_stop / n / 60.0);
  std::printf("eval cache: mean duplicate-point rate %.1f%%, total "
              "wall-clock saved %.0f ms, trajectories cache-on vs cache-off "
              "%s\n",
              100.0 * sum_dup_rate / n, sum_wall_saved_ms,
              all_trajectories_identical ? "identical everywhere"
                                         : "DIVERGED (bug!)");
  std::printf("adaptive scheduler: %s vs fcfs on every app; %.0f min of "
              "early-stop budget reclaimed across apps (%d of %d apps "
              "reclaimed > 0); no-early-stop trajectories %s\n",
              all_adaptive_not_worse ? "never worse" : "WORSE somewhere (bug!)",
              total_reclaimed_minutes, apps_with_reclaim, n,
              all_sched_identical_without_stop ? "identical everywhere"
                                               : "DIVERGED (bug!)");
  std::printf("(first-seed traces written to fig3_trace.csv)\n");
  const bool scheduler_ok = all_adaptive_not_worse &&
                            all_sched_identical_without_stop &&
                            apps_with_reclaim > 0;
  return (all_trajectories_identical && scheduler_ok) ? 0 : 1;
}
