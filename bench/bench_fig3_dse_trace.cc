// Fig. 3 reproduction: the design space exploration process of S2FA
// (solid) vs vanilla OpenTuner (dashed) for each application.
//
// Per app it prints the best-so-far execution time over simulated
// exploration wall time — normalized to the vanilla tuner's first random
// point, exactly as the paper's y-axis — plus a summary reproducing the
// §5.2 claims: average exploration-time saving, final-QoR ratio, and mean
// termination time (paper: 52.5% time saved, ~35x QoR, S2FA stops at
// ~1.9h vs the fixed 4h). Results are averaged over several RNG seeds
// (the traces shown come from the first seed).
// The technique ablation (the bottleneck-guided bandit arm vs the default
// roster) gates the exit code: per app, the bandit+bottleneck arm set must
// be not-worse than the default set (min over the seeds), strictly better
// on at least two apps, and bit-identical across exec_threads 1/2/8.
//
// Quick mode (S2FA_BENCH_QUICK=1, used by the fig3_smoke ctest) runs one
// seed on a shortened budget and keeps only the technique-ablation gate,
// so the smoke test finishes in CI time.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>

#include "bench_util.h"
#include "support/strings.h"

using namespace s2fa;
using namespace s2fa::bench;

namespace {

bool QuickMode() {
  const char* env = std::getenv("S2FA_BENCH_QUICK");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

}  // namespace

int main() {
  MetricsScope metrics("fig3");
  const bool quick = QuickMode();
  // Quick mode keeps the full 240-minute budget and picks two of the full
  // roster's ten seeds, so its technique-gate verdict matches the full
  // run's on the seeds it shares: everything is deterministic, making the
  // smoke a regression pin rather than a noisy subsample.
  const std::vector<std::uint64_t> seeds =
      quick ? std::vector<std::uint64_t>{2018, 2027}
            : std::vector<std::uint64_t>{2018, 2019, 2020, 2021, 2022,
                                         2023, 2024, 2025, 2026, 2027};
  const double budget_minutes = 240;
  // Plot-ready dump of the first-seed traces.
  const std::string csv_path = OutPath("fig3_trace.csv");
  std::ofstream csv(csv_path);
  csv << "app,tuner,minutes,normalized_best\n";
  std::vector<double> samples{10, 30, 60, 90, 120, 150, 180, 210, 240};

  std::printf("=== Fig. 3: DSE process, S2FA vs vanilla OpenTuner ===\n");
  std::printf("normalized best-so-far execution time; x = minutes; "
              "summaries averaged over %zu seeds\n\n",
              seeds.size());
  std::string header = PadRight("trace", 18) + " |";
  for (double m : samples) {
    header += " " + PadLeft(FormatDouble(m, 0) + "m", 9);
  }

  double sum_time_saving = 0;
  double sum_log_qor = 0;
  double sum_s2fa_stop = 0;
  double sum_vanilla_stop = 0;
  double sum_dup_rate = 0;
  double sum_wall_saved_ms = 0;
  bool all_trajectories_identical = true;
  double total_reclaimed_minutes = 0;
  int apps_with_reclaim = 0;
  bool all_adaptive_not_worse = true;
  bool all_sched_identical_without_stop = true;
  bool all_bneck_not_worse = true;
  bool all_bneck_thread_invariant = true;
  int apps_bneck_strictly_better = 0;
  int n = 0;

  for (apps::App& app : apps::AllApps()) {
    PreparedApp prepared = Prepare(std::move(app));

    double app_log_qor = 0;
    double app_saving = 0;
    double app_s2fa_stop = 0;
    double app_vanilla_stop = 0;
    std::size_t app_s2fa_evals = 0;
    std::size_t app_vanilla_evals = 0;
    bool first_seed = true;

    for (std::uint64_t seed : seeds) {
      EvalSetup setup;
      setup.seed = seed;
      setup.time_limit_minutes = budget_minutes;
      DseComparison cmp = RunComparison(prepared, setup);

      if (first_seed) {
        std::printf("--- %s (space: 10^%.1f points; seed %llu trace) ---\n",
                    prepared.app.name.c_str(),
                    prepared.space.Log10Cardinality(),
                    static_cast<unsigned long long>(seed));
        std::printf("%s\n", header.c_str());
        std::printf("%s\n",
                    RenderTraceRow("S2FA", cmp.s2fa.trace, samples,
                                   cmp.normalization_cost)
                        .c_str());
        std::printf("%s\n",
                    RenderTraceRow("OpenTuner", cmp.vanilla.trace, samples,
                                   cmp.normalization_cost)
                        .c_str());
        for (const auto& tp : cmp.s2fa.trace) {
          csv << prepared.app.name << ",s2fa," << tp.time_minutes << ","
              << tp.best_cost / cmp.normalization_cost << "\n";
        }
        for (const auto& tp : cmp.vanilla.trace) {
          csv << prepared.app.name << ",opentuner," << tp.time_minutes << ","
              << tp.best_cost / cmp.normalization_cost << "\n";
        }
        first_seed = false;
      }

      const double s2fa_final =
          CostAt(cmp.s2fa.trace, setup.time_limit_minutes, 0);
      const double vanilla_final =
          CostAt(cmp.vanilla.trace, setup.time_limit_minutes, 0);
      app_log_qor += std::log(std::max(vanilla_final / s2fa_final, 1e-6));
      app_saving += 1.0 - cmp.s2fa.elapsed_minutes /
                              cmp.vanilla.elapsed_minutes;
      app_s2fa_stop += cmp.s2fa.elapsed_minutes;
      app_vanilla_stop += cmp.vanilla.elapsed_minutes;
      app_s2fa_evals += cmp.s2fa.evaluations;
      app_vanilla_evals += cmp.vanilla.evaluations;
    }

    const double k = static_cast<double>(seeds.size());
    std::printf(
        "mean over seeds: S2FA stops %.0f min (%.0f evals), OpenTuner "
        "%.0f min (%.0f evals); QoR ratio %.2fx; time saved %.1f%%\n",
        app_s2fa_stop / k, static_cast<double>(app_s2fa_evals) / k,
        app_vanilla_stop / k, static_cast<double>(app_vanilla_evals) / k,
        std::exp(app_log_qor / k), 100.0 * app_saving / k);

    // Technique ablation: the bottleneck-guided arm joins the bandit and
    // must pay its way. Per app the gate compares the best either arm set
    // reached over the seeds (min-over-seeds smooths the RNG-stream
    // perturbation the extra arm causes); thread invariance is checked on
    // the first seed only — one bit-identity certificate per app.
    double bneck_base_best = std::numeric_limits<double>::infinity();
    double bneck_guided_best = std::numeric_limits<double>::infinity();
    bool bneck_thread_invariant = true;
    for (std::size_t si = 0; si < seeds.size(); ++si) {
      EvalSetup setup;
      setup.seed = seeds[si];
      setup.time_limit_minutes = budget_minutes;
      TechniqueAblation tech =
          RunTechniqueAblation(prepared, setup, /*check_threads=*/si == 0);
      bneck_base_best = std::min(bneck_base_best, tech.baseline.best_cost);
      bneck_guided_best =
          std::min(bneck_guided_best, tech.bottleneck.best_cost);
      bneck_thread_invariant &= tech.thread_invariant;
      if (std::getenv("S2FA_BENCH_PER_SEED") != nullptr) {
        std::printf("    seed %llu: %.10g us (bandit) vs %.10g us (+bneck)\n",
                    static_cast<unsigned long long>(seeds[si]),
                    tech.baseline.best_cost, tech.bottleneck.best_cost);
      }
    }
    // Min-over-seeds with the kQorNoiseBand tie band: both rosters settle
    // on the same plateau on several apps and differ only in which
    // tie-break point they report, a few 1e-5 of cost apart.
    const bool bneck_not_worse =
        !(bneck_guided_best > bneck_base_best * (1 + kQorNoiseBand));
    const bool bneck_strictly =
        bneck_guided_best < bneck_base_best * (1 - kQorNoiseBand);
    std::printf(
        "technique ablation: best over seeds %.4g us (bandit) vs %.4g us "
        "(bandit+bottleneck) — %s; exec-thread trajectories %s\n",
        bneck_base_best, bneck_guided_best,
        bneck_strictly ? "strictly better"
                       : (bneck_not_worse ? "not worse" : "WORSE (gate!)"),
        bneck_thread_invariant ? "identical" : "DIVERGED (bug!)");
    all_bneck_not_worse &= bneck_not_worse;
    all_bneck_thread_invariant &= bneck_thread_invariant;
    if (bneck_strictly) ++apps_bneck_strictly_better;

    if (quick) {
      // Quick mode keeps the smoke test inside CI time: the cache and
      // scheduler ablations (5 ms-per-eval delays, four extra full DSE
      // runs) are full-mode only, as are their exit-code gates.
      std::printf("\n");
      sum_time_saving += app_saving / k;
      sum_log_qor += app_log_qor / k;
      sum_s2fa_stop += app_s2fa_stop / k;
      sum_vanilla_stop += app_vanilla_stop / k;
      ++n;
      continue;
    }

    // Memoizing-cache ablation on the first seed: same trajectory, fewer
    // synthesis jobs paid, lower real wall-clock.
    EvalSetup ablation_setup;
    ablation_setup.seed = seeds.front();
    ablation_setup.time_limit_minutes = budget_minutes;
    CacheAblation ablation = RunCacheAblation(prepared, ablation_setup);
    std::printf(
        "cache ablation (seed %llu): duplicate-point rate %.1f%% "
        "(%zu of %zu lookups), %.0f simulated min not re-paid, wall-clock "
        "%.0f ms -> %.0f ms, trajectories %s\n",
        static_cast<unsigned long long>(seeds.front()),
        100.0 * ablation.stats.DuplicateRate(),
        ablation.stats.hits + ablation.stats.inflight_joins,
        ablation.stats.lookups, ablation.stats.minutes_saved,
        ablation.wall_ms_cache_off, ablation.wall_ms_cache_on,
        ablation.identical_trajectory ? "identical" : "DIVERGED (bug!)");
    sum_dup_rate += ablation.stats.DuplicateRate();
    sum_wall_saved_ms +=
        ablation.wall_ms_cache_off - ablation.wall_ms_cache_on;
    all_trajectories_identical &= ablation.identical_trajectory;

    // Scheduler ablation on the first seed: with the entropy stop the
    // adaptive scheduler reinvests freed budget and must never end up
    // worse; with stopping disabled it must match FCFS bit-for-bit.
    SchedulerAblation sched = RunSchedulerAblation(prepared, ablation_setup);
    std::printf(
        "scheduler ablation (seed %llu): best@%.0fm adaptive %.4g us vs "
        "fcfs %.4g us (%s), %.0f min reclaimed / %.0f re-granted in %zu "
        "slices (%zu preemptions, %zu extra evals); no-early-stop "
        "trajectories %s\n\n",
        static_cast<unsigned long long>(seeds.front()),
        ablation_setup.time_limit_minutes, sched.adaptive.best_cost,
        sched.fcfs.best_cost,
        sched.adaptive_not_worse ? "not worse" : "WORSE (bug!)",
        sched.adaptive.schedule.reclaimed_minutes,
        sched.adaptive.schedule.regranted_minutes,
        sched.adaptive.schedule.grants, sched.adaptive.schedule.preemptions,
        sched.adaptive.schedule.reclaim_evaluations,
        sched.identical_without_stopping ? "identical" : "DIVERGED (bug!)");
    total_reclaimed_minutes += sched.adaptive.schedule.reclaimed_minutes;
    if (sched.adaptive.schedule.reclaimed_minutes > 0) ++apps_with_reclaim;
    all_adaptive_not_worse &= sched.adaptive_not_worse;
    all_sched_identical_without_stop &= sched.identical_without_stopping;

    sum_time_saving += app_saving / k;
    sum_log_qor += app_log_qor / k;
    sum_s2fa_stop += app_s2fa_stop / k;
    sum_vanilla_stop += app_vanilla_stop / k;
    ++n;
  }

  std::printf("=== Summary (paper: 52.5%% avg time saved, ~35x QoR, stop "
              "~1.9h vs 4h) ===\n");
  std::printf("average exploration-time saving: %.1f%%\n",
              100.0 * sum_time_saving / n);
  std::printf("geomean QoR improvement over OpenTuner: %.1fx\n",
              std::exp(sum_log_qor / n));
  std::printf("mean termination: S2FA %.2f h, OpenTuner %.2f h\n",
              sum_s2fa_stop / n / 60.0, sum_vanilla_stop / n / 60.0);
  if (!quick) {
    std::printf("eval cache: mean duplicate-point rate %.1f%%, total "
                "wall-clock saved %.0f ms, trajectories cache-on vs "
                "cache-off %s\n",
                100.0 * sum_dup_rate / n, sum_wall_saved_ms,
                all_trajectories_identical ? "identical everywhere"
                                           : "DIVERGED (bug!)");
    std::printf("adaptive scheduler: %s vs fcfs on every app; %.0f min of "
                "early-stop budget reclaimed across apps (%d of %d apps "
                "reclaimed > 0); no-early-stop trajectories %s\n",
                all_adaptive_not_worse ? "never worse"
                                       : "WORSE somewhere (bug!)",
                total_reclaimed_minutes, apps_with_reclaim, n,
                all_sched_identical_without_stop ? "identical everywhere"
                                                 : "DIVERGED (bug!)");
  }
  std::printf("bottleneck arm: %s on every app, strictly better on %d of "
              "%d; exec-thread trajectories %s\n",
              all_bneck_not_worse ? "not worse" : "WORSE somewhere (gate!)",
              apps_bneck_strictly_better, n,
              all_bneck_thread_invariant ? "identical everywhere"
                                         : "DIVERGED (bug!)");
  std::printf("(first-seed traces written to %s)\n", csv_path.c_str());
  const bool technique_ok = all_bneck_not_worse &&
                            apps_bneck_strictly_better >= 2 &&
                            all_bneck_thread_invariant;
  if (quick) return technique_ok ? 0 : 1;
  const bool scheduler_ok = all_adaptive_not_worse &&
                            all_sched_identical_without_stop &&
                            apps_with_reclaim > 0;
  return (all_trajectories_identical && scheduler_ok && technique_ok) ? 0
                                                                      : 1;
}
