// Serving-layer workload replay (paper §2: the accelerator as a shared
// datacenter service behind Blaze): drives a bursty request stream through
// `BlazeService` with an injected accelerator fault burst and gates the
// robustness contract via the exit code:
//
//   1. zero requests lost — every admitted request completes, on an
//      accelerator replica or on the host path, and every completed output
//      matches the native reference;
//   2. the health state machine engages — the fault burst quarantines
//      replicas and probe dispatches re-enlist them once the burst clears;
//   3. hedged dispatch pays off — p99 latency on the burst workload is
//      strictly lower with hedging than without it;
//   4. determinism — per-request outcomes (timing, billing, and payloads)
//      are bit-identical across exec-thread counts (plan-order commit).
//
// Prints the replay summary per configuration plus one GATE line each.
#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "blaze/service.h"
#include "merlin/transform.h"
#include "obs/obs.h"

using namespace s2fa;
using namespace s2fa::bench;

namespace {

constexpr int kReplicas = 2;
constexpr int kWarm = 10;      // clean phase: arms the hedge window
constexpr int kBurstReqs = 16; // arrivals during the fault burst
constexpr int kRecovery = 8;   // spaced arrivals: probes re-enlist here
constexpr std::size_t kRecordsPerRequest = 64;

// Bit-exact canonical rendering of a replay (the determinism gate).
std::string Canon(const std::vector<blaze::RequestOutcome>& outcomes) {
  std::ostringstream os;
  os << std::hexfloat;
  for (const auto& o : outcomes) {
    os << o.id << '|' << blaze::ServeOutcomeName(o.outcome) << '|'
       << o.replica << '|' << o.attempts << '|' << o.probe << o.hedged
       << '|' << o.dispatch_us << '|' << o.complete_us << '|' << o.latency_us
       << '|' << o.charged_us << '|';
    for (std::size_t c = 0; c < o.output.num_columns(); ++c) {
      for (const auto& v : o.output.column(c).data) {
        os << (v.is_double() ? v.AsDouble()
               : v.is_float() ? v.AsFloat()
                              : static_cast<double>(v.AsInt()))
           << ',';
      }
    }
    os << '\n';
  }
  return os.str();
}

bool Matches(const blaze::Dataset& got, const blaze::Dataset& want) {
  if (got.num_records() != want.num_records()) return false;
  for (std::size_t c = 0; c < want.num_columns(); ++c) {
    const blaze::Column& w = want.column(c);
    if (!got.HasField(w.field)) return false;
    const blaze::Column& g = got.ColumnByField(w.field);
    if (g.data.size() != w.data.size()) return false;
    for (std::size_t n = 0; n < w.data.size(); ++n) {
      if (g.data[n].AsInt() != w.data[n].AsInt()) return false;
    }
  }
  return true;
}

struct Replay {
  blaze::ServiceStats stats;
  std::vector<blaze::RequestOutcome> outcomes;
  std::string canon;
  std::size_t lost = 0;        // admitted but never completed or shed
  std::size_t mismatches = 0;  // completed outputs vs native reference
  bool all_recovered = false;  // no replica still quarantined at the end
};

Replay Run(const apps::App& app, const Artifact& artifact,
           double hedge_quantile, int exec_threads) {
  blaze::BlazeRuntime runtime;
  std::vector<std::string> ids;
  for (int i = 0; i < kReplicas; ++i) {
    ids.push_back(app.name + "#" + std::to_string(i));
    RegisterWithBlaze(runtime, ids.back(), artifact);
  }
  const blaze::ExecutionStats per = runtime.PerInvocationCost(ids.front());
  const double req_us = per.total_us;  // one batch per request

  blaze::ServiceOptions options;
  options.hedge_quantile = hedge_quantile;
  options.exec_threads = exec_threads;
  options.queue_capacity = 64;  // admit the whole replay
  options.probe_backoff_us = req_us;
  options.probe_backoff_max_us = 8 * req_us;
  // Classification seed picked so the burst manifests both failure modes
  // (crashes detected at the driver round trip, timeouts only after 4x
  // the expected latency) — the tail the hedge is there to cut.
  options.seed = 3;
  blaze::BlazeService service(runtime, options);
  for (const std::string& id : ids) service.AddReplica(app.name, id);
  // Per-replica invocations 4-6 fail every attempt: with the warm phase
  // ending near invocation 5 on each replica, the burst-phase dispatches
  // fail until the quarantine trips, and the first probe past the window
  // re-enlists.
  service.SetFaultInjector(blaze::MakeBurstFaultInjector({4, 3}));

  Rng rng(2018);
  blaze::Dataset broadcast;
  const blaze::Dataset* bc = nullptr;
  if (app.make_broadcast) {
    Rng brng(2018 ^ 0xBCA57ULL);
    broadcast = app.make_broadcast(brng);
    bc = &broadcast;
  }

  // Arrival trace: warm + burst phases near the group's service rate (so
  // the tail reflects failure burn, not a saturated queue), then recovery
  // arrivals in simultaneous pairs — the first of a pair lands on a
  // re-enlisted lane, which forces the second to probe the replica still
  // in quarantine, so both replicas get their re-enlistment traffic.
  std::vector<double> arrivals;
  const double spacing = 1.1 * req_us / kReplicas;
  for (int i = 0; i < kWarm + kBurstReqs; ++i) arrivals.push_back(i * spacing);
  const double recovery_start = arrivals.back() + 8 * req_us;
  for (int i = 0; i < kRecovery; ++i) {
    arrivals.push_back(recovery_start + (i / 2) * 2.5 * req_us);
  }

  std::vector<blaze::ServiceRequest> requests;
  std::vector<blaze::Dataset> expected;
  for (double arrival : arrivals) {
    blaze::ServiceRequest rq;
    rq.kernel = app.name;
    rq.input = app.make_input(kRecordsPerRequest, rng);
    rq.broadcast = bc;
    rq.arrival_us = arrival;
    expected.push_back(app.reference(rq.input, bc));
    requests.push_back(std::move(rq));
  }

  Replay replay;
  replay.outcomes = service.Run(std::move(requests));
  replay.stats = service.stats();
  replay.canon = Canon(replay.outcomes);
  replay.lost = replay.stats.admitted -
                (replay.stats.completed + replay.stats.shed_expired);
  for (std::size_t i = 0; i < replay.outcomes.size(); ++i) {
    const blaze::RequestOutcome& o = replay.outcomes[i];
    if (o.outcome == blaze::ServeOutcome::kRejectedFull ||
        o.outcome == blaze::ServeOutcome::kShedExpired) {
      continue;
    }
    if (!Matches(o.output, expected[i])) ++replay.mismatches;
  }
  replay.all_recovered = true;
  for (const std::string& id : ids) {
    if (service.health(id) == blaze::AcceleratorHealth::kQuarantined) {
      replay.all_recovered = false;
    }
  }
  return replay;
}

void Print(const char* label, const Replay& r) {
  const blaze::ServiceStats& s = r.stats;
  std::printf(
      "%-10s admitted %zu/%zu, completed %zu (accel %zu, host %zu, hedged "
      "%zu), lost %zu, mismatches %zu\n",
      label, s.admitted, s.submitted, s.completed, s.completed_accel,
      s.completed_host, s.completed_hedge, r.lost, r.mismatches);
  std::printf(
      "           p50/p95/p99 %.0f/%.0f/%.0f us; failures %zu (%zu crash, "
      "%zu timeout); quarantines %zu, probes %zu, re-enlistments %zu; "
      "hedges %zu launched, %zu won, %.0f us saved\n",
      s.LatencyQuantile(0.5), s.LatencyQuantile(0.95), s.LatencyQuantile(0.99),
      s.accel_failures, s.crashes, s.timeouts, s.quarantines, s.probes,
      s.reenlistments, s.hedges_launched, s.hedges_won, s.hedge_saved_us);
}

}  // namespace

int main() {
  MetricsScope metrics("serving");
  std::printf("=== serving-layer workload replay (fault burst) ===\n");

  apps::App app = apps::FindApp("AES");
  Artifact artifact =
      BuildWithConfig(*app.pool, app.spec, merlin::DesignConfig{});

  Replay unhedged = Run(app, artifact, /*hedge_quantile=*/0.0, 1);
  Replay hedged = Run(app, artifact, /*hedge_quantile=*/0.95, 1);
  Replay hedged2 = Run(app, artifact, /*hedge_quantile=*/0.95, 2);
  Replay hedged8 = Run(app, artifact, /*hedge_quantile=*/0.95, 8);
  Print("no-hedge", unhedged);
  Print("hedge", hedged);

  const bool none_lost = unhedged.lost == 0 && hedged.lost == 0 &&
                         unhedged.mismatches == 0 && hedged.mismatches == 0;
  const bool quarantine_cycled =
      hedged.stats.quarantines >= kReplicas &&
      hedged.stats.reenlistments >= kReplicas && hedged.all_recovered &&
      unhedged.stats.quarantines >= kReplicas &&
      unhedged.stats.reenlistments >= kReplicas && unhedged.all_recovered;
  const double p99_unhedged = unhedged.stats.LatencyQuantile(0.99);
  const double p99_hedged = hedged.stats.LatencyQuantile(0.99);
  const bool hedging_pays = hedged.stats.hedges_launched > 0 &&
                            hedged.stats.hedges_won > 0 &&
                            p99_hedged < p99_unhedged;
  const bool deterministic =
      hedged.canon == hedged2.canon && hedged.canon == hedged8.canon;

  std::printf("\nGATE no-request-lost: %s\n", none_lost ? "PASS" : "FAIL");
  std::printf("GATE quarantine-fires-and-recovers: %s (%zu quarantines, %zu "
              "re-enlistments)\n",
              quarantine_cycled ? "PASS" : "FAIL", hedged.stats.quarantines,
              hedged.stats.reenlistments);
  std::printf("GATE hedging-reduces-p99: %s (%.0f us -> %.0f us)\n",
              hedging_pays ? "PASS" : "FAIL", p99_unhedged, p99_hedged);
  std::printf("GATE exec-thread-determinism: %s (1 vs 2 vs 8 threads)\n",
              deterministic ? "PASS" : "FAIL");

  // Phase-attributed latencies from the hedged (production-config) replay:
  // warm/burst/recovery histograms give the ledger p50/p95/p99 per phase,
  // and the phase means land as ns-per-request entries for `perf-diff`.
  std::map<std::string, obs::LedgerEntry> serving_entries;
  const struct {
    const char* name;
    std::size_t first, count;
  } phases[] = {
      {"warm", 0, kWarm},
      {"burst", kWarm, kBurstReqs},
      {"recovery", kWarm + kBurstReqs, kRecovery},
  };
  for (const auto& phase : phases) {
    double sum_us = 0;
    std::size_t completed = 0;
    for (std::size_t i = phase.first; i < phase.first + phase.count; ++i) {
      const blaze::RequestOutcome& o = hedged.outcomes[i];
      if (o.outcome == blaze::ServeOutcome::kRejectedFull ||
          o.outcome == blaze::ServeOutcome::kShedExpired) {
        continue;
      }
      S2FA_OBSERVE("serving." + std::string(phase.name) + ".latency_us",
                   o.latency_us);
      sum_us += o.latency_us;
      ++completed;
    }
    if (completed == 0) continue;
    obs::LedgerEntry entry;
    entry.ns_per_op = sum_us * 1000.0 / static_cast<double>(completed);
    entry.ops = static_cast<double>(completed);
    entry.wall_ms = sum_us / 1000.0;
    serving_entries["serving." + std::string(phase.name) + ".request"] =
        entry;
  }
  const std::string ledger_path =
      UpdatePerfLedger(serving_entries, ServingLedgerPath());
  std::printf("perf ledger: %s\n", ledger_path.c_str());

  return (none_lost && quarantine_cycled && hedging_pays && deterministic)
             ? 0
             : 1;
}
