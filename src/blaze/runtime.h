// The Blaze runtime simulation (paper §2, [14]).
//
// Accelerators are registered as a service by id; Spark-side code wraps a
// dataset and runs transformations by id (Code 1). Execution is
// functionally real — every batch is serialized, evaluated through the
// kernel IR evaluator, and deserialized — while timing comes from the HLS
// result plus an offload cost model (JVM-side repacking, PCIe transfer,
// invocation overhead). PR/AES-style kernels whose compute is cheap
// relative to their bytes become transfer-bound here, reproducing the
// paper's "bounded by external memory bandwidth" behaviour.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "blaze/serialization.h"
#include "hls/estimator.h"
#include "kir/eval.h"

namespace s2fa::blaze {

struct OffloadCostModel {
  double pcie_gbps = 8.0;            // effective host->FPGA bandwidth
  double invoke_overhead_us = 30.0;  // DMA setup + driver per invocation
  double jvm_pack_ns_per_byte = 0.30;  // reflection-based (de)serialization
  // Host-path penalty when a batch falls back to JVM execution after the
  // accelerator failed twice (SparkCL-style degradation): the batch costs
  // `host_slowdown` times the accelerator's compute time, with no PCIe
  // transfer or invocation overhead.
  double host_slowdown = 25.0;
};

// Test/simulation hook: returns true when accelerator attempt `attempt`
// (0 = first try, 1 = the retry) of invocation `invocation` should fail.
using AccelFaultInjector = std::function<bool(
    const std::string& accel_id, std::size_t invocation, int attempt)>;

// A deterministic injector failing each (invocation, attempt) independently
// with probability `rate` — hashed, not stateful, so replays are identical.
AccelFaultInjector MakeRandomFaultInjector(double rate, std::uint64_t seed);

struct RegisteredAccelerator {
  kir::Kernel design;        // Merlin-transformed kernel (best config)
  hls::HlsResult hls;        // its synthesis result
  SerializationPlan plan;    // interface layout
};

struct ExecutionStats {
  std::size_t invocations = 0;
  double serialize_us = 0;  // JVM-side pack/unpack
  double transfer_us = 0;   // PCIe both directions
  double compute_us = 0;    // accelerator execution
  double overhead_us = 0;   // per-invocation driver overhead
  double host_us = 0;       // host-path compute for fallen-back batches
  double total_us = 0;
  // Degradation ledger: failed accelerator attempts, successful retries,
  // and batches that ended up on the host path.
  std::size_t accel_failures = 0;
  std::size_t accel_retries = 0;
  std::size_t host_fallbacks = 0;
  bool degraded = false;  // at least one batch ran on the host

  // Folds `other` into this: counters and charges add up, `degraded` ORs.
  // Multi-stage pipelines use this so the degradation ledger aggregates
  // across stages instead of being overwritten per call.
  void Merge(const ExecutionStats& other);
};

class AcceleratorManager {
 public:
  // Registers an accelerator under `id`; rejects duplicates.
  void Register(const std::string& id, RegisteredAccelerator accelerator);
  bool Has(const std::string& id) const;
  const RegisteredAccelerator& Get(const std::string& id) const;
  std::size_t size() const { return accelerators_.size(); }

 private:
  std::map<std::string, RegisteredAccelerator> accelerators_;
};

class BlazeRuntime {
 public:
  explicit BlazeRuntime(OffloadCostModel model = {});

  AcceleratorManager& manager() { return manager_; }
  const AcceleratorManager& manager() const { return manager_; }
  const OffloadCostModel& cost_model() const { return model_; }

  // The cost-model charge for one invocation (one batch) of a registered
  // accelerator: serialize/transfer/compute/overhead and their total, with
  // invocations = 1. The serving layer plans dispatch timing from this.
  ExecutionStats PerInvocationCost(const std::string& accel_id) const;

  // Installs (or clears, with nullptr) the accelerator fault injector.
  // Each batch gets one retry after a failed attempt; a second failure
  // sends that batch to the host path, recorded in ExecutionStats.
  void SetFaultInjector(AccelFaultInjector injector);

  // Runs a map accelerator over every record. `broadcast` supplies the
  // one-record shared data if the kernel declares broadcast fields.
  // Returns the output dataset; fills `stats` when non-null.
  Dataset Map(const std::string& accel_id, const Dataset& input,
              const Dataset* broadcast = nullptr,
              ExecutionStats* stats = nullptr);

  // Runs a reduce accelerator: per-invocation partial results are combined
  // additively on the host (the reduce template assumes a zero-identity
  // additive reduction; see b2c). Returns a single-record dataset.
  Dataset Reduce(const std::string& accel_id, const Dataset& input,
                 const Dataset* broadcast = nullptr,
                 ExecutionStats* stats = nullptr);

 private:
  ExecutionStats InvocationCost(const RegisteredAccelerator& accel) const;

  // Serializes and executes one batch, retrying the accelerator once and
  // then degrading to the host path; charges all costs to `total`.
  void RunBatch(const std::string& accel_id, const SerializationPlan& plan,
                const Dataset& input, const Dataset* broadcast,
                std::size_t first, std::size_t count,
                const ExecutionStats& per_invocation,
                kir::Evaluator& evaluator, kir::BufferMap& buffers,
                ExecutionStats& total);

  OffloadCostModel model_;
  AcceleratorManager manager_;
  AccelFaultInjector injector_;
};

}  // namespace s2fa::blaze
