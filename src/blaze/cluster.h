// BlazeCluster: fault-domain-aware sharded serving over N BlazeService
// instances on the shared deterministic simulated clock.
//
// Each shard is one BlazeService (its own replicas, health state machine,
// hedging, and fault injector — one fault domain). The cluster layers on
// top, planning at micro-batch granularity:
//
//   * failover with exactly-once commit — a scripted kill (ChaosPlan) or a
//     fully-quarantined shard re-routes in-flight and queued requests to
//     sibling shards. Redirects are bounded (`max_redirects`), then the
//     host path finishes the job. Every request has an idempotent id and a
//     single commit slot: the first completion (accelerator, failover
//     retry, or hedge) wins; later ones are suppressed and counted as
//     commit conflicts, so an outcome is committed exactly once even when
//     a hedge and a failover race;
//   * dynamic micro-batching with poison isolation — queued requests with
//     the same (kernel, broadcast) coalesce into one accelerator
//     invocation, up to `batch_max_requests` (Reduce kernels never batch
//     across requests) and an optional `batch_window_us` deadline. A batch
//     containing a poison request (ChaosPlan) crashes; the cluster bisects
//     it deterministically — each failing half burns the crash-detect
//     round trip — until the poison request is alone, degrades only it to
//     the host path, and serves the clean sub-batches normally;
//   * multi-tenant weighted-fair admission — stride scheduling over
//     per-tenant FIFO queues (virtual-time pass, weight = share), with
//     per-tenant queued quotas and a cluster-wide queue capacity, so a
//     flooding tenant is throttled instead of starving the others — under
//     degraded capacity too, because the stride pick runs at every
//     dispatch regardless of how many shards survive;
//   * scripted chaos — kills/restarts (a restart is a fresh process:
//     replica health resets), per-shard fault bursts forwarded to the
//     service injectors, latency spikes (dispatch-time dilation, modeling
//     interconnect congestion), and tenant floods materialized through a
//     caller-provided generator.
//
// Determinism: the cluster is a sequential discrete-event simulator (an
// event heap ordered by (time, seq)); services plan sequentially too. Only
// functional kernel execution fans out on thread pools, and outputs are
// committed into per-request slots — so outcomes are bit-identical across
// `exec_threads`, like the service's plan-order commit.
//
// Conservative timing approximations (documented, deterministic): the
// kill-interruption pre-check uses a single-lane fault-free estimate of
// the batch (a kill inside that window requeues the whole batch — results
// are acked at batch granularity, so a shard death before the ack loses
// the ack, never the request); bisect retry burns occupy a virtual probe
// lane while clean sub-batches flow through the replica lanes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "blaze/chaos.h"
#include "blaze/service.h"

namespace s2fa::blaze {

// How one cluster request ended.
enum class ClusterServe {
  kRejectedFull,     // shed at admission: cluster queue was full
  kTenantThrottled,  // shed at admission: tenant over its queued quota
  kAccelerator,      // completed on some shard's accelerator replica
  kHost,             // host path (direct, redirect-exhausted, or poison)
  kHedgedHost,       // a host hedge beat the accelerator path
};
const char* ClusterServeName(ClusterServe outcome);

// Shard-selection policy. kHealth (default, the original behaviour) picks
// the free live shard with the least cumulative busy time — blind to work
// the shard still owes that never occupied its dispatch lane (host
// fallbacks free the lane early while the shard's service clock runs
// ahead to the host completion). kDepth scores free live shards by that
// true outstanding backlog — how far the service clock is ahead of now —
// with capacity-normalized busy time (cumulative busy divided by live
// replica lanes) as the tie-break, so a shard that looks idle but owes
// host work, or whose replicas a fault burst degraded, stops attracting
// traffic it can no longer absorb promptly.
enum class Routing { kHealth, kDepth };
// Parses "health" / "depth"; throws MalformedInput otherwise.
Routing ParseRouting(const std::string& text);
const char* RoutingName(Routing routing);

struct ClusterOptions {
  std::size_t queue_capacity = 1024;    // cluster-wide waiting cap
  std::size_t batch_max_requests = 16;  // micro-batch coalescing bound
  double batch_window_us = 0;   // wait this long to fill a batch; 0 = none
  std::size_t max_redirects = 2;  // failovers per request before host
  double queue_hedge_us = 0;    // host hedge for requests older than this
  Routing routing = Routing::kHealth;  // shard-selection policy
  double default_tenant_weight = 1.0;
  std::size_t default_tenant_quota = 0;  // queued requests per tenant; 0 = off
  int exec_threads = 1;         // functional fan-out (cluster + shards)
  std::uint64_t seed = 1;
  // Template for each shard's service; exec_threads/seed are overridden
  // per shard (seed is offset by the shard index so failure classification
  // streams differ across fault domains).
  ServiceOptions shard_options;
};

struct ClusterRequest {
  std::string kernel;
  Dataset input;
  // One-record shared data; must outlive the drain. Requests batch only
  // with requests sharing the same broadcast pointer.
  const Dataset* broadcast = nullptr;
  double arrival_us = 0;
  std::string tenant = "default";
};

struct ClusterRequestOutcome {
  std::size_t id = 0;  // submission order, idempotent commit key
  ClusterServe outcome = ClusterServe::kRejectedFull;
  std::size_t shard = kNoShard;  // shard that committed it
  std::string replica;           // service replica ("" = host path)
  std::string tenant;
  std::size_t batch_size = 1;    // members of its final dispatch batch
  int redirects = 0;             // failover re-dispatches
  bool hedged = false;
  bool poisoned = false;         // isolated by bisection
  double dispatch_us = 0;
  double complete_us = 0;
  double latency_us = 0;         // complete - arrival (0 for shed)
  Dataset output;                // empty for shed requests

  static constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);
};

struct TenantStats {
  double weight = 1.0;
  std::size_t quota = 0;
  std::size_t submitted = 0;
  std::size_t admitted = 0;
  std::size_t throttled = 0;      // shed: over quota
  std::size_t rejected_full = 0;  // shed: cluster queue full
  std::size_t completed = 0;
  // Per-path completion breakdown (accelerator / host / winning hedge) so
  // fairness diagnostics can see *how* a tenant's traffic was served, not
  // just how much.
  std::size_t completed_accel = 0;
  std::size_t completed_host = 0;
  std::size_t completed_hedge = 0;
  std::size_t records_completed = 0;
  std::vector<double> latencies_us;  // commit order
  double LatencyQuantile(double q) const;
};

struct ShardStats {
  std::size_t batches = 0;
  std::size_t requests = 0;  // committed members served on this shard
  std::size_t kills = 0;
  std::size_t restarts = 0;
  double busy_us = 0;        // cumulative lane occupancy
  double wasted_us = 0;      // occupancy lost to kill-interrupted batches
};

struct ClusterStats {
  std::size_t submitted = 0;
  std::size_t admitted = 0;
  std::size_t rejected_full = 0;
  std::size_t tenant_throttled = 0;
  std::size_t completed = 0;
  std::size_t completed_accel = 0;
  std::size_t completed_host = 0;
  std::size_t completed_hedge = 0;

  std::size_t batches = 0;           // accelerator dispatches (incl. bisect)
  std::size_t batched_requests = 0;  // members across those dispatches
  std::size_t max_batch = 0;

  std::size_t failovers = 0;           // kill-interrupted batch dispatches
  std::size_t redirects = 0;           // member re-dispatches after failover
  std::size_t redirect_exhausted = 0;  // members that fell back to host
  std::size_t bisect_attempts = 0;     // failing (sub-)batch attempts burned
  std::size_t poison_isolated = 0;     // poison requests degraded alone

  std::size_t hedges_launched = 0;
  std::size_t hedges_won = 0;
  std::size_t hedges_cancelled = 0;
  std::size_t commit_conflicts = 0;  // duplicate completions suppressed

  std::size_t flood_injected = 0;  // synthetic chaos-flood requests
  std::size_t max_queue_depth = 0;

  std::vector<double> latencies_us;  // completed requests, commit order
  std::map<std::string, TenantStats> tenants;
  std::vector<ShardStats> shards;

  double LatencyQuantile(double q) const;
};

class BlazeCluster {
 public:
  // The runtime supplies registered accelerators and the cost model; it
  // must outlive the cluster.
  explicit BlazeCluster(BlazeRuntime& runtime, ClusterOptions options = {});
  // Out of line: members hold vectors of nested types declared below.
  ~BlazeCluster();
  BlazeCluster(BlazeCluster&&) noexcept;
  BlazeCluster& operator=(BlazeCluster&&) = delete;

  // Topology. AddShard returns the new shard's index; AddReplica enlists
  // an accelerator (registered with the runtime) on one shard. Replica ids
  // are cluster-unique (each serves exactly one shard).
  std::size_t AddShard();
  std::size_t num_shards() const { return shards_.size(); }
  void AddReplica(std::size_t shard, const std::string& kernel,
                  const std::string& accel_id);

  // Registers a tenant with an explicit weight (relative share; > 0) and
  // queued-request quota (0 = unlimited). Unknown tenants named by a
  // request are auto-registered with the option defaults. Rejects
  // duplicates.
  void AddTenant(const std::string& name, double weight, std::size_t quota);

  // Installs the scripted fault schedule. Validates shard indices, flood
  // tenants, and (at Drain) that floods have a generator. Shard fault
  // bursts are forwarded to the per-shard service injectors.
  void SetChaosPlan(ChaosPlan plan);
  // Supplies synthetic requests for chaos floods: called with the global
  // flood-request ordinal; the returned request's tenant/arrival are
  // overridden by the flood directive.
  void SetFloodGenerator(std::function<ClusterRequest(std::size_t)> generator);

  // Enqueues a request for the next Drain. Arrival times before the
  // cluster clock are clamped to it.
  void Submit(ClusterRequest request);

  // Serves every pending request to completion (nothing is lost: shed
  // requests get terminal outcomes, everything else commits exactly once)
  // and returns outcomes in submission order. Synthetic flood requests are
  // served and counted but not returned.
  std::vector<ClusterRequestOutcome> Drain();
  std::vector<ClusterRequestOutcome> Run(std::vector<ClusterRequest> requests);

  const ClusterStats& stats() const { return stats_; }
  double clock_us() const { return clock_us_; }
  // Whether `shard` is alive (not inside a kill..restart window) at `t_us`.
  bool ShardAliveAt(std::size_t shard, double t_us) const;
  const BlazeService& shard_service(std::size_t shard) const;

  // Capacity/cost introspection for layers planning above the cluster
  // (the streaming session's backlog model). All are derived from the
  // registered replicas and the runtime cost model — deterministic.
  //
  // Accelerator service time for `records` records of `kernel` on one
  // lane (whole-invocation granularity, like dispatch planning uses).
  double AccelUsFor(const std::string& kernel, std::size_t records) const;
  // Host-path time for the same work.
  double HostUsFor(const std::string& kernel, std::size_t records) const;
  // True when `kernel` is a reduce pattern (never batches across requests).
  bool IsReduceKernel(const std::string& kernel) const;
  // The design used for functional execution of `kernel` (first replica).
  const std::string& ExecAccelFor(const std::string& kernel) const;
  // Replica lanes on shards alive at `t_us` (chaos kills shrink this).
  std::size_t LiveLanesAt(double t_us) const;
  BlazeRuntime& runtime() { return runtime_; }

 private:
  struct KernelInfo {
    std::string exec_accel;  // functional-execution design (first replica)
    kir::ParallelPattern pattern = kir::ParallelPattern::kMap;
    std::size_t batch = 1;   // serialization batch per invocation
    double accel_us_per_invocation = 0;
    double detect_us_per_invocation = 0;  // serialize+transfer+overhead
    double host_us_per_invocation = 0;
  };

  struct Shard {
    std::unique_ptr<BlazeService> service;
    // (kernel, accel_id) registrations, replayed on restart (a restart is
    // a fresh process: replica health and latency windows reset).
    std::vector<std::pair<std::string, std::string>> replicas;
    double busy_until_us = 0;
  };

  struct Tenant {
    std::string name;
    double weight = 1.0;
    std::size_t quota = 0;
    double pass_us = 0;              // stride virtual time
    std::deque<std::size_t> queue;   // slot indices, FIFO
    std::size_t queued = 0;          // uncommitted members of `queue`
  };

  // One request in the current drain.
  struct Slot;
  struct Event;
  struct CommitRec;
  struct RequeueRec;
  struct LifecycleEvent;
  struct DrainState;

  const KernelInfo& KernelFor(const std::string& kernel) const;
  Tenant& TenantFor(const std::string& name);
  std::unique_ptr<BlazeService> MakeService(std::size_t shard) const;
  std::size_t InvocationsFor(const KernelInfo& info,
                             std::size_t records) const;
  double HostUs(const KernelInfo& info, std::size_t records) const;
  double DetectUs(const KernelInfo& info, std::size_t records) const;
  double NextKillAfter(std::size_t shard, double t_us) const;

  BlazeRuntime& runtime_;
  ClusterOptions options_;
  std::vector<Shard> shards_;
  std::map<std::string, KernelInfo> kernels_;
  std::map<std::string, Tenant> tenants_;
  std::set<std::string> replica_ids_;  // cluster-wide uniqueness

  ChaosPlan plan_;
  std::function<ClusterRequest(std::size_t)> flood_generator_;
  // Per-shard sorted [kill, restart-or-inf) windows from the plan.
  std::vector<std::vector<std::pair<double, double>>> dead_windows_;
  std::vector<LifecycleEvent> lifecycle_;  // merged kills+restarts, sorted
  std::size_t lifecycle_done_ = 0;         // fired in earlier drains
  // Flood requests not yet materialized: each drain injects the ones whose
  // arrival falls inside its real-traffic horizon.
  struct PendingFlood {
    double at_us = 0;
    std::size_t ordinal = 0;  // global flood-request counter (generator arg)
    std::size_t flood = 0;    // index into plan_.floods
  };
  std::vector<PendingFlood> floods_pending_;
  double stride_vtime_ = 0;  // pass of the last scheduled tenant

  std::vector<ClusterRequest> backlog_;
  std::size_t next_id_ = 0;
  double clock_us_ = 0;
  ClusterStats stats_;
};

}  // namespace s2fa::blaze
