#include "blaze/dataset.h"

#include "support/error.h"

namespace s2fa::blaze {

void Dataset::AddColumn(Column column) {
  S2FA_REQUIRE(!column.field.empty(), "column needs a field name");
  S2FA_REQUIRE(column.per_record >= 1, "per_record must be >= 1");
  S2FA_REQUIRE(column.data.size() % static_cast<std::size_t>(
                                        column.per_record) ==
                   0,
               "column " << column.field << " data size "
                         << column.data.size()
                         << " is not a multiple of per_record "
                         << column.per_record);
  std::size_t records =
      column.data.size() / static_cast<std::size_t>(column.per_record);
  if (has_columns_) {
    S2FA_REQUIRE(records == num_records_,
                 "column " << column.field << " has " << records
                           << " records, dataset has " << num_records_);
  } else {
    num_records_ = records;
    has_columns_ = true;
  }
  for (const auto& existing : columns_) {
    S2FA_REQUIRE(existing.field != column.field,
                 "duplicate column field " << column.field);
  }
  columns_.push_back(std::move(column));
}

const Column& Dataset::column(std::size_t index) const {
  S2FA_REQUIRE(index < columns_.size(), "column index out of range");
  return columns_[index];
}

const Column& Dataset::ColumnByField(const std::string& field) const {
  for (const auto& c : columns_) {
    if (c.field == field) return c;
  }
  throw InvalidArgument("no column for field " + field);
}

Column& Dataset::MutableColumnByField(const std::string& field) {
  for (auto& c : columns_) {
    if (c.field == field) return c;
  }
  throw InvalidArgument("no column for field " + field);
}

bool Dataset::HasField(const std::string& field) const {
  for (const auto& c : columns_) {
    if (c.field == field) return true;
  }
  return false;
}

double Dataset::TotalBytes() const {
  double bytes = 0;
  for (const auto& c : columns_) {
    bytes += static_cast<double>(c.data.size()) *
             (c.element.bit_width() / 8.0);
  }
  return bytes;
}

Dataset ConcatDatasets(const std::vector<const Dataset*>& inputs) {
  S2FA_CHECK(!inputs.empty(), "empty batch");
  if (inputs.size() == 1) return *inputs.front();
  const Dataset& first = *inputs.front();
  Dataset out;
  for (std::size_t c = 0; c < first.num_columns(); ++c) {
    Column column = first.column(c);
    for (std::size_t i = 1; i < inputs.size(); ++i) {
      S2FA_CHECK(inputs[i]->num_columns() == first.num_columns(),
                 "batched requests disagree on column count");
      const Column& other = inputs[i]->column(c);
      S2FA_CHECK(other.field == column.field &&
                     other.per_record == column.per_record,
                 "batched requests disagree on schema");
      column.data.insert(column.data.end(), other.data.begin(),
                         other.data.end());
    }
    out.AddColumn(std::move(column));
  }
  return out;
}

Dataset SliceRecords(const Dataset& data, std::size_t begin,
                     std::size_t count) {
  Dataset out;
  for (std::size_t c = 0; c < data.num_columns(); ++c) {
    const Column& column = data.column(c);
    Column piece;
    piece.field = column.field;
    piece.element = column.element;
    piece.per_record = column.per_record;
    const auto per = static_cast<std::size_t>(column.per_record);
    piece.data.assign(
        column.data.begin() + static_cast<std::ptrdiff_t>(begin * per),
        column.data.begin() +
            static_cast<std::ptrdiff_t>((begin + count) * per));
    out.AddColumn(std::move(piece));
  }
  return out;
}

}  // namespace s2fa::blaze
