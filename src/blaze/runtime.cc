#include "blaze/runtime.h"

#include <cmath>

#include "obs/obs.h"
#include "support/error.h"

namespace s2fa::blaze {

namespace {

// Bytes crossing the accelerator interface in one invocation (local
// buffers stay on-chip and are excluded).
double InterfaceBytes(const RegisteredAccelerator& accel) {
  double bytes = 0;
  for (const auto& buf : accel.design.buffers) {
    if (buf.kind == kir::BufferKind::kLocal) continue;
    bytes += static_cast<double>(buf.byte_size());
  }
  return bytes;
}

}  // namespace

void AcceleratorManager::Register(const std::string& id,
                                  RegisteredAccelerator accelerator) {
  S2FA_REQUIRE(!id.empty(), "accelerator id must be non-empty");
  S2FA_REQUIRE(accelerators_.count(id) == 0,
               "accelerator " << id << " already registered");
  S2FA_REQUIRE(accelerator.hls.feasible,
               "cannot register an infeasible design for " << id);
  accelerators_.emplace(id, std::move(accelerator));
}

bool AcceleratorManager::Has(const std::string& id) const {
  return accelerators_.count(id) != 0;
}

const RegisteredAccelerator& AcceleratorManager::Get(
    const std::string& id) const {
  auto it = accelerators_.find(id);
  if (it == accelerators_.end()) {
    throw InvalidArgument("no accelerator registered as " + id);
  }
  return it->second;
}

BlazeRuntime::BlazeRuntime(OffloadCostModel model) : model_(model) {}

ExecutionStats BlazeRuntime::InvocationCost(
    const RegisteredAccelerator& accel) const {
  ExecutionStats stats;
  const double bytes = InterfaceBytes(accel);
  stats.serialize_us = bytes * model_.jvm_pack_ns_per_byte / 1000.0;
  stats.transfer_us = bytes / (model_.pcie_gbps * 1e3);  // GB/s -> B/us
  stats.compute_us = accel.hls.exec_us;
  stats.overhead_us = model_.invoke_overhead_us;
  stats.total_us = stats.serialize_us + stats.transfer_us +
                   stats.compute_us + stats.overhead_us;
  stats.invocations = 1;
  return stats;
}

Dataset BlazeRuntime::Map(const std::string& accel_id, const Dataset& input,
                          const Dataset* broadcast, ExecutionStats* stats) {
  S2FA_SPAN("blaze.map");
  const RegisteredAccelerator& accel = manager_.Get(accel_id);
  const SerializationPlan& plan = accel.plan;
  S2FA_REQUIRE(plan.batch > 0, "bad serialization plan");

  Dataset out = MakeOutputShell(plan, input.num_records());
  kir::Evaluator evaluator(accel.design);
  ExecutionStats total;
  const ExecutionStats per_invocation = InvocationCost(accel);

  const std::size_t batch = static_cast<std::size_t>(plan.batch);
  for (std::size_t first = 0; first < input.num_records(); first += batch) {
    const std::size_t count =
        std::min(batch, input.num_records() - first);
    kir::BufferMap buffers;
    SerializeBatch(plan, input, first, count, buffers, broadcast);
    evaluator.Run(
        {{"N", jvm::Value::OfInt(static_cast<std::int32_t>(count))}},
        buffers);
    DeserializeBatch(plan, buffers, first, count, out);
    ++total.invocations;
    total.serialize_us += per_invocation.serialize_us;
    total.transfer_us += per_invocation.transfer_us;
    total.compute_us += per_invocation.compute_us;
    total.overhead_us += per_invocation.overhead_us;
  }
  total.total_us = total.serialize_us + total.transfer_us +
                   total.compute_us + total.overhead_us;
  S2FA_COUNT("blaze.invocations",
             static_cast<std::int64_t>(total.invocations));
  S2FA_COUNT("blaze.serialized_bytes",
             static_cast<std::int64_t>(InterfaceBytes(accel) *
                                       static_cast<double>(total.invocations)));
  if (stats != nullptr) *stats = total;
  return out;
}

Dataset BlazeRuntime::Reduce(const std::string& accel_id,
                             const Dataset& input, const Dataset* broadcast,
                             ExecutionStats* stats) {
  S2FA_SPAN("blaze.reduce");
  const RegisteredAccelerator& accel = manager_.Get(accel_id);
  const SerializationPlan& plan = accel.plan;
  S2FA_REQUIRE(accel.design.pattern == kir::ParallelPattern::kReduce,
               accel_id << " is not a reduce accelerator");

  kir::Evaluator evaluator(accel.design);
  ExecutionStats total;
  const ExecutionStats per_invocation = InvocationCost(accel);
  const std::size_t batch = static_cast<std::size_t>(plan.batch);

  Dataset result = MakeOutputShell(plan, 1);
  std::vector<double> partials;  // additive accumulators, one per column elem
  bool first_invocation = true;

  for (std::size_t first = 0; first < input.num_records(); first += batch) {
    const std::size_t count = std::min(batch, input.num_records() - first);
    kir::BufferMap buffers;
    SerializeBatch(plan, input, first, count, buffers, broadcast);
    evaluator.Run(
        {{"N", jvm::Value::OfInt(static_cast<std::int32_t>(count))}},
        buffers);
    // Combine invocation partials additively on the host.
    std::size_t cursor = 0;
    for (const auto& entry : plan.entries) {
      if (entry.is_input) continue;
      const auto& buf = buffers.at(entry.buffer);
      for (std::size_t e = 0;
           e < static_cast<std::size_t>(entry.per_task); ++e, ++cursor) {
        double value = buf[e].is_double()
                           ? buf[e].AsDouble()
                           : buf[e].is_float()
                                 ? buf[e].AsFloat()
                                 : buf[e].is_long()
                                       ? static_cast<double>(buf[e].AsLong())
                                       : buf[e].AsInt();
        if (first_invocation) {
          partials.push_back(value);
        } else {
          partials[cursor] += value;
        }
      }
    }
    first_invocation = false;
    ++total.invocations;
    total.serialize_us += per_invocation.serialize_us;
    total.transfer_us += per_invocation.transfer_us;
    total.compute_us += per_invocation.compute_us;
    total.overhead_us += per_invocation.overhead_us;
  }

  std::size_t cursor = 0;
  for (const auto& entry : plan.entries) {
    if (entry.is_input) continue;
    Column& col = result.MutableColumnByField(entry.source_field);
    for (std::size_t e = 0;
         e < static_cast<std::size_t>(entry.per_task); ++e, ++cursor) {
      double v = cursor < partials.size() ? partials[cursor] : 0.0;
      switch (entry.element.kind()) {
        case jvm::TypeKind::kDouble:
          col.data[e] = jvm::Value::OfDouble(v);
          break;
        case jvm::TypeKind::kFloat:
          col.data[e] = jvm::Value::OfFloat(static_cast<float>(v));
          break;
        case jvm::TypeKind::kLong:
          col.data[e] = jvm::Value::OfLong(static_cast<std::int64_t>(v));
          break;
        default:
          col.data[e] = jvm::Value::OfInt(static_cast<std::int32_t>(v));
          break;
      }
    }
  }
  total.total_us = total.serialize_us + total.transfer_us +
                   total.compute_us + total.overhead_us;
  S2FA_COUNT("blaze.invocations",
             static_cast<std::int64_t>(total.invocations));
  S2FA_COUNT("blaze.serialized_bytes",
             static_cast<std::int64_t>(InterfaceBytes(accel) *
                                       static_cast<double>(total.invocations)));
  if (stats != nullptr) *stats = total;
  return result;
}

}  // namespace s2fa::blaze
