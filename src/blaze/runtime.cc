#include "blaze/runtime.h"

#include <cmath>
#include <cstdint>

#include "obs/obs.h"
#include "support/error.h"
#include "support/logging.h"
#include "support/strings.h"

namespace s2fa::blaze {

namespace {

// Bytes crossing the accelerator interface in one invocation (local
// buffers stay on-chip and are excluded).
double InterfaceBytes(const RegisteredAccelerator& accel) {
  double bytes = 0;
  for (const auto& buf : accel.design.buffers) {
    if (buf.kind == kir::BufferKind::kLocal) continue;
    bytes += static_cast<double>(buf.byte_size());
  }
  return bytes;
}

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

AccelFaultInjector MakeRandomFaultInjector(double rate, std::uint64_t seed) {
  S2FA_REQUIRE(rate >= 0 && rate <= 1.0, "fault rate must be in [0, 1]");
  if (rate == 0) return nullptr;
  return [rate, seed](const std::string& accel_id, std::size_t invocation,
                      int attempt) {
    std::uint64_t h = seed;
    for (unsigned char c : accel_id) h = SplitMix64(h ^ c);
    h = SplitMix64(h ^ (invocation * 0x9E3779B97F4A7C15ULL) ^
                   static_cast<std::uint64_t>(attempt + 1));
    return static_cast<double>(h >> 11) * 0x1.0p-53 < rate;
  };
}

void AcceleratorManager::Register(const std::string& id,
                                  RegisteredAccelerator accelerator) {
  S2FA_REQUIRE(!id.empty(), "accelerator id must be non-empty");
  S2FA_REQUIRE(accelerators_.count(id) == 0,
               "accelerator " << id << " already registered");
  S2FA_REQUIRE(accelerator.hls.feasible,
               "cannot register an infeasible design for " << id);
  accelerators_.emplace(id, std::move(accelerator));
}

bool AcceleratorManager::Has(const std::string& id) const {
  return accelerators_.count(id) != 0;
}

const RegisteredAccelerator& AcceleratorManager::Get(
    const std::string& id) const {
  auto it = accelerators_.find(id);
  if (it == accelerators_.end()) {
    std::vector<std::string> ids;
    ids.reserve(accelerators_.size());
    for (const auto& [registered_id, accel] : accelerators_) {
      (void)accel;
      ids.push_back(registered_id);
    }
    throw InvalidArgument(
        "no accelerator registered as " + id + "; registered: " +
        (ids.empty() ? "(none)" : Join(ids, ", ")));
  }
  return it->second;
}

void ExecutionStats::Merge(const ExecutionStats& other) {
  invocations += other.invocations;
  serialize_us += other.serialize_us;
  transfer_us += other.transfer_us;
  compute_us += other.compute_us;
  overhead_us += other.overhead_us;
  host_us += other.host_us;
  total_us += other.total_us;
  accel_failures += other.accel_failures;
  accel_retries += other.accel_retries;
  host_fallbacks += other.host_fallbacks;
  degraded = degraded || other.degraded;
}

BlazeRuntime::BlazeRuntime(OffloadCostModel model) : model_(model) {}

void BlazeRuntime::SetFaultInjector(AccelFaultInjector injector) {
  injector_ = std::move(injector);
}

void BlazeRuntime::RunBatch(const std::string& accel_id,
                            const SerializationPlan& plan,
                            const Dataset& input, const Dataset* broadcast,
                            std::size_t first, std::size_t count,
                            const ExecutionStats& per_invocation,
                            kir::Evaluator& evaluator,
                            kir::BufferMap& buffers, ExecutionStats& total) {
  const auto run = [&] {
    // Re-serialize before every attempt: a failed run may have partially
    // mutated the output/accumulator buffers, and the JVM side repacks
    // when it re-submits a batch.
    buffers.clear();
    SerializeBatch(plan, input, first, count, buffers, broadcast);
    total.serialize_us += per_invocation.serialize_us;
    evaluator.Run(
        {{"N", jvm::Value::OfInt(static_cast<std::int32_t>(count))}},
        buffers);
  };
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (attempt == 1) {
      ++total.accel_retries;
      S2FA_COUNT("blaze.retries", 1);
    }
    try {
      if (injector_ && injector_(accel_id, total.invocations, attempt)) {
        throw Error("injected accelerator fault");
      }
      run();
      total.transfer_us += per_invocation.transfer_us;
      total.compute_us += per_invocation.compute_us;
      total.overhead_us += per_invocation.overhead_us;
      return;
    } catch (const Error& e) {
      // The attempt still burned a driver round-trip and the transfer.
      ++total.accel_failures;
      total.transfer_us += per_invocation.transfer_us;
      total.overhead_us += per_invocation.overhead_us;
      S2FA_COUNT("blaze.accel_failures", 1);
      S2FA_LOG_WARN("accelerator " << accel_id << " failed invocation "
                                   << total.invocations << " attempt "
                                   << attempt << ": " << e.what());
    }
  }
  // Both attempts failed: degrade to host execution (SparkCL's fallback).
  // The host path runs the functionally identical kernel program on the
  // JVM — a genuine kernel bug would still throw here and propagate, so
  // degradation never masks wrong answers.
  run();
  ++total.host_fallbacks;
  total.degraded = true;
  total.host_us += per_invocation.compute_us * model_.host_slowdown;
  S2FA_COUNT("blaze.host_fallbacks", 1);
  S2FA_LOG_WARN("accelerator " << accel_id << " invocation "
                               << total.invocations
                               << " degraded to the host path");
}

ExecutionStats BlazeRuntime::InvocationCost(
    const RegisteredAccelerator& accel) const {
  ExecutionStats stats;
  const double bytes = InterfaceBytes(accel);
  stats.serialize_us = bytes * model_.jvm_pack_ns_per_byte / 1000.0;
  stats.transfer_us = bytes / (model_.pcie_gbps * 1e3);  // GB/s -> B/us
  stats.compute_us = accel.hls.exec_us;
  stats.overhead_us = model_.invoke_overhead_us;
  stats.total_us = stats.serialize_us + stats.transfer_us +
                   stats.compute_us + stats.overhead_us;
  stats.invocations = 1;
  return stats;
}

ExecutionStats BlazeRuntime::PerInvocationCost(
    const std::string& accel_id) const {
  return InvocationCost(manager_.Get(accel_id));
}

Dataset BlazeRuntime::Map(const std::string& accel_id, const Dataset& input,
                          const Dataset* broadcast, ExecutionStats* stats) {
  S2FA_SPAN("blaze.map");
  const RegisteredAccelerator& accel = manager_.Get(accel_id);
  const SerializationPlan& plan = accel.plan;
  S2FA_REQUIRE(plan.batch > 0, "bad serialization plan");

  Dataset out = MakeOutputShell(plan, input.num_records());
  kir::Evaluator evaluator(accel.design);
  ExecutionStats total;
  const ExecutionStats per_invocation = InvocationCost(accel);

  const std::size_t batch = static_cast<std::size_t>(plan.batch);
  for (std::size_t first = 0; first < input.num_records(); first += batch) {
    const std::size_t count =
        std::min(batch, input.num_records() - first);
    kir::BufferMap buffers;
    RunBatch(accel_id, plan, input, broadcast, first, count, per_invocation,
             evaluator, buffers, total);
    DeserializeBatch(plan, buffers, first, count, out);
    ++total.invocations;
  }
  total.total_us = total.serialize_us + total.transfer_us +
                   total.compute_us + total.overhead_us + total.host_us;
  S2FA_COUNT("blaze.invocations",
             static_cast<std::int64_t>(total.invocations));
  S2FA_COUNT("blaze.serialized_bytes",
             static_cast<std::int64_t>(InterfaceBytes(accel) *
                                       static_cast<double>(total.invocations)));
  if (stats != nullptr) *stats = total;
  return out;
}

Dataset BlazeRuntime::Reduce(const std::string& accel_id,
                             const Dataset& input, const Dataset* broadcast,
                             ExecutionStats* stats) {
  S2FA_SPAN("blaze.reduce");
  const RegisteredAccelerator& accel = manager_.Get(accel_id);
  const SerializationPlan& plan = accel.plan;
  S2FA_REQUIRE(accel.design.pattern == kir::ParallelPattern::kReduce,
               accel_id << " is not a reduce accelerator");

  kir::Evaluator evaluator(accel.design);
  ExecutionStats total;
  const ExecutionStats per_invocation = InvocationCost(accel);
  const std::size_t batch = static_cast<std::size_t>(plan.batch);

  Dataset result = MakeOutputShell(plan, 1);
  std::vector<double> partials;  // additive accumulators, one per column elem
  bool first_invocation = true;

  for (std::size_t first = 0; first < input.num_records(); first += batch) {
    const std::size_t count = std::min(batch, input.num_records() - first);
    kir::BufferMap buffers;
    RunBatch(accel_id, plan, input, broadcast, first, count, per_invocation,
             evaluator, buffers, total);
    // Combine invocation partials additively on the host.
    std::size_t cursor = 0;
    for (const auto& entry : plan.entries) {
      if (entry.is_input) continue;
      const auto& buf = buffers.at(entry.buffer);
      for (std::size_t e = 0;
           e < static_cast<std::size_t>(entry.per_task); ++e, ++cursor) {
        double value = buf[e].is_double()
                           ? buf[e].AsDouble()
                           : buf[e].is_float()
                                 ? buf[e].AsFloat()
                                 : buf[e].is_long()
                                       ? static_cast<double>(buf[e].AsLong())
                                       : buf[e].AsInt();
        if (first_invocation) {
          partials.push_back(value);
        } else {
          partials[cursor] += value;
        }
      }
    }
    first_invocation = false;
    ++total.invocations;
  }

  std::size_t cursor = 0;
  for (const auto& entry : plan.entries) {
    if (entry.is_input) continue;
    Column& col = result.MutableColumnByField(entry.source_field);
    for (std::size_t e = 0;
         e < static_cast<std::size_t>(entry.per_task); ++e, ++cursor) {
      double v = cursor < partials.size() ? partials[cursor] : 0.0;
      switch (entry.element.kind()) {
        case jvm::TypeKind::kDouble:
          col.data[e] = jvm::Value::OfDouble(v);
          break;
        case jvm::TypeKind::kFloat:
          col.data[e] = jvm::Value::OfFloat(static_cast<float>(v));
          break;
        case jvm::TypeKind::kLong:
          col.data[e] = jvm::Value::OfLong(static_cast<std::int64_t>(v));
          break;
        default:
          col.data[e] = jvm::Value::OfInt(static_cast<std::int32_t>(v));
          break;
      }
    }
  }
  total.total_us = total.serialize_us + total.transfer_us +
                   total.compute_us + total.overhead_us + total.host_us;
  S2FA_COUNT("blaze.invocations",
             static_cast<std::int64_t>(total.invocations));
  S2FA_COUNT("blaze.serialized_bytes",
             static_cast<std::int64_t>(InterfaceBytes(accel) *
                                       static_cast<double>(total.invocations)));
  if (stats != nullptr) *stats = total;
  return result;
}

}  // namespace s2fa::blaze
