// BlazeService: the serving front-end over BlazeRuntime (paper §2 — the
// accelerator as a shared datacenter service behind Blaze).
//
// Where BlazeRuntime executes one request at a time with a fixed
// retry-once-then-host policy, the service serves *streams* of requests
// against a deterministic simulated clock and adds everything a shared
// deployment needs between "works" and "falls over":
//
//   * a bounded admission queue with deadline-aware load shedding —
//     arrivals beyond the queue capacity are rejected, queued requests
//     whose deadline expires before dispatch are dropped, and both land in
//     a shed ledger (`ServiceStats`) instead of vanishing;
//   * a per-replica health state machine (healthy → degraded →
//     quarantined) driven by a rolling failure-rate / latency window.
//     Failures reuse the resilience taxonomy: an injected fault manifests
//     either as a kCrash (detected at the driver round-trip cost) or as a
//     kTimeout (detected only after a multiple of the expected latency).
//     Quarantined replicas take no traffic until a probe request —
//     dispatched after an exponentially backed-off eligibility delay —
//     succeeds and re-enlists them;
//   * hedged dispatch: once enough completions seed the rolling latency
//     window, a request whose accelerator path outlives the
//     `hedge_quantile` latency starts a host-path hedge at that delay and
//     takes whichever finishes first, cancelling the loser's charge;
//   * replica selection: several accelerators may be registered for one
//     kernel id; dispatch prefers free healthy replicas, spills to
//     degraded ones, then probes quarantine, and only then falls back to
//     the host path — which always succeeds, so no admitted request is
//     ever lost;
//   * graceful drain: Drain() stops the clock only after every admitted
//     request has completed and returns the per-request outcomes.
//
// Determinism: the service plans every admission, dispatch, failure,
// hedge, and health transition sequentially on the simulated clock (all
// costs come from the offload cost model and the stateless fault
// injector). Only the functional kernel execution fans out on a thread
// pool, and outcomes are committed in submission order — so results are
// bit-identical across `exec_threads` values, exactly like the DSE
// scheduler's plan-order commit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "blaze/runtime.h"
#include "resilience/failure.h"

namespace s2fa::blaze {

enum class AcceleratorHealth { kHealthy, kDegraded, kQuarantined };
const char* HealthName(AcceleratorHealth health);

// Read-only roll-up of one kernel group's replica health, so a router
// layered above the service (BlazeCluster) can pick shards without friend
// access to the per-replica state machine.
struct ReplicaHealthCounts {
  std::size_t healthy = 0;
  std::size_t degraded = 0;
  std::size_t quarantined = 0;
  // Quarantined replicas whose probe-eligibility delay has elapsed at the
  // query time (a dispatch would be accepted as a probe).
  std::size_t probe_ready = 0;
  // Earliest future probe-eligibility time among quarantined replicas;
  // +inf when none is pending.
  double next_probe_us = 0;

  // Replicas that take regular (non-probe) traffic.
  std::size_t live() const { return healthy + degraded; }
};

// How one submitted request ended.
enum class ServeOutcome {
  kRejectedFull,   // shed at admission: queue was full
  kShedExpired,    // shed in the queue: deadline passed before dispatch
  kAccelerator,    // completed on an accelerator replica
  kHost,           // completed on the host path (direct or after failures)
  kHedgedHost,     // completed on a host hedge that beat the accelerator
};
const char* ServeOutcomeName(ServeOutcome outcome);

struct ServiceOptions {
  std::size_t queue_capacity = 64;  // bounded admission queue (waiting)
  double default_deadline_us = 0;   // per-request deadline; 0 = none

  // Hedging. A hedge arms once `hedge_min_samples` accelerator completions
  // seed the per-kernel rolling latency window; the hedge delay is that
  // window's `hedge_quantile` latency. 0 disables hedging.
  double hedge_quantile = 0.95;
  std::size_t hedge_min_samples = 8;
  std::size_t latency_window = 64;

  // Health state machine (per replica, over the last `health_window`
  // finished attempts).
  std::size_t health_window = 16;
  std::size_t health_min_samples = 4;
  double degrade_threshold = 0.30;     // window failure rate
  double quarantine_threshold = 0.60;  // window failure rate
  int quarantine_consecutive = 3;      // consecutive failures trip at once
  double latency_degrade_factor = 2.5; // window mean vs cost-model latency
  double probe_backoff_us = 50e3;      // first probe after quarantine
  double probe_backoff_multiplier = 2.0;
  double probe_backoff_max_us = 1.6e6;

  // Failure manifestation (resilience taxonomy): a failed attempt is
  // classified kCrash or kTimeout by a deterministic hash. A crash is
  // detected after the serialize+transfer+driver round trip; a timeout
  // only after `timeout_detect_multiplier` times the expected latency.
  double timeout_detect_multiplier = 4.0;

  int exec_threads = 1;     // functional execution fan-out (plan-order commit)
  std::uint64_t seed = 1;   // failure-classification hash stream
};

struct ServiceRequest {
  std::string kernel;  // replica-group id (see BlazeService::AddReplica)
  Dataset input;
  // One-record shared data; must outlive the drain that serves the request.
  const Dataset* broadcast = nullptr;
  double arrival_us = 0;  // simulated arrival (clamped to the service clock)
  double deadline_us = 0; // relative to arrival; 0 = options default
};

struct RequestOutcome {
  std::size_t id = 0;  // submission order
  ServeOutcome outcome = ServeOutcome::kRejectedFull;
  std::string replica;      // accelerator that served it ("" = none)
  int attempts = 0;         // accelerator attempts planned
  bool probe = false;       // served as a quarantine probe
  bool hedged = false;      // a hedge was launched
  bool deadline_missed = false;  // completed after its deadline
  double dispatch_us = 0;   // simulated dispatch time
  double complete_us = 0;   // simulated completion time
  double latency_us = 0;    // complete - arrival (0 for shed requests)
  double charged_us = 0;    // billed work time (losers' charges cancelled)
  Dataset output;           // empty for shed requests
};

// The shed ledger plus everything else the serving layer counts.
struct ServiceStats {
  std::size_t submitted = 0;
  std::size_t admitted = 0;
  std::size_t rejected_full = 0;   // shed at admission
  std::size_t shed_expired = 0;    // shed from the queue
  std::size_t completed = 0;
  std::size_t completed_accel = 0;
  std::size_t completed_host = 0;      // host fallback or host-direct
  std::size_t completed_hedge = 0;     // host hedge beat the accelerator
  std::size_t deadline_misses = 0;     // completed, but late

  std::size_t accel_attempts = 0;
  std::size_t accel_failures = 0;
  std::size_t crashes = 0;   // failures manifesting as kCrash
  std::size_t timeouts = 0;  // failures manifesting as kTimeout
  std::size_t retries = 0;

  std::size_t hedges_launched = 0;
  std::size_t hedges_won = 0;        // hedge finished first
  std::size_t hedges_cancelled = 0;  // accelerator finished first
  double hedge_saved_us = 0;         // primary-minus-hedged completion time
  double cancelled_charge_us = 0;    // losers' charges not billed

  std::size_t probes = 0;
  std::size_t probe_successes = 0;
  std::size_t probe_failures = 0;
  std::size_t degradations = 0;    // healthy -> degraded transitions
  std::size_t quarantines = 0;     // -> quarantined transitions
  std::size_t reenlistments = 0;   // quarantined -> degraded via probe

  std::size_t max_queue_depth = 0;
  std::vector<double> latencies_us;  // completed requests, submission order

  // Nearest-rank quantile over the completed-request latencies (obs-style);
  // 0 when nothing completed. q in [0, 1].
  double LatencyQuantile(double q) const;
};

class BlazeService {
 public:
  // The runtime supplies registered accelerators and the offload cost
  // model; it must outlive the service. The service never mutates the
  // runtime (in particular it does not touch its fault injector).
  explicit BlazeService(BlazeRuntime& runtime, ServiceOptions options = {});
  // Out-of-line: HealthEvent is incomplete here (vector member).
  BlazeService(BlazeService&& other);
  ~BlazeService();

  // Adds accelerator `accel_id` (already registered with the runtime) as a
  // replica serving `kernel`. Replica order is the deterministic dispatch
  // tie-break. Rejects duplicates and unknown accelerators.
  void AddReplica(const std::string& kernel, const std::string& accel_id);
  std::size_t num_replicas(const std::string& kernel) const;

  // Installs (or clears) the plan-time fault injector. `invocation` is the
  // per-replica dispatch counter; `attempt` is 0 or 1, as in the runtime.
  void SetFaultInjector(AccelFaultInjector injector);

  // Enqueues a request for the next Drain(). Arrival times before the
  // current service clock are clamped to it.
  void Submit(ServiceRequest request);

  // Graceful drain: serves every pending request to completion (nothing is
  // abandoned), advances the clock, and returns outcomes in submission
  // order. The service stays usable; stats and health carry over.
  std::vector<RequestOutcome> Drain();

  // Submit all + Drain, as one call.
  std::vector<RequestOutcome> Run(std::vector<ServiceRequest> requests);

  const ServiceStats& stats() const { return stats_; }
  double clock_us() const { return clock_us_; }
  // Health of one replica by accelerator id; throws on unknown ids.
  AcceleratorHealth health(const std::string& accel_id) const;
  // Health roll-up for `kernel`'s replica group at simulated time `now_us`
  // (probe readiness is time-dependent); throws on unknown kernels.
  ReplicaHealthCounts CountHealth(const std::string& kernel,
                                  double now_us) const;
  // The armed hedge delay for `kernel`, or nullopt while unarmed/disabled.
  std::optional<double> HedgeDelayUs(const std::string& kernel) const;

 private:
  struct Replica {
    std::string accel_id;
    ExecutionStats per_invocation;   // cost model for one batch
    double host_us_per_invocation = 0;
    AcceleratorHealth health = AcceleratorHealth::kHealthy;
    std::deque<bool> window_failed;
    std::deque<double> window_latency_us;
    int consecutive_failures = 0;
    double free_us = 0;              // lane busy until this time
    double probe_eligible_us = 0;
    double probe_backoff_us = 0;
    bool probe_inflight = false;
    std::size_t invocations = 0;     // per-replica dispatch counter
  };

  struct KernelGroup {
    std::vector<std::size_t> replicas;     // indices into replicas_
    std::deque<double> latency_window_us;  // successful accel completions
  };

  // One queued (admitted) request while planning.
  struct Pending;
  // The fully planned fate of one request.
  struct Plan;
  // A health-window sample waiting for its simulated timestamp.
  struct HealthEvent;

  Replica& ReplicaFor(const std::string& accel_id);
  const Replica& ReplicaFor(const std::string& accel_id) const;

  // The replica-selection policy, extracted so the tier ordering (free
  // healthy -> free degraded -> probe-ready quarantined -> wait -> host)
  // is named and testable in one place. `replica` is an index into
  // `replicas_` when `found`; `any_live_lane` reports whether some
  // healthy/degraded lane exists at all (busy lanes included), which is
  // what separates "wait for a lane" from "host-direct".
  struct ReplicaChoice {
    bool found = false;
    std::size_t replica = 0;
    bool probe = false;
    bool any_live_lane = false;
  };
  ReplicaChoice SelectReplica(const KernelGroup& group, double t) const;

  // Deterministic sequential planner (the only place the clock advances).
  void PlanAll(std::vector<Pending>& pending, std::vector<Plan>& plans);
  // Plans the dispatch of one request starting at `t`; returns its plan.
  void PlanDispatch(Pending& request, Plan& plan, std::size_t replica_index,
                    double t, bool probe, KernelGroup& group);
  // Applies queued health-window samples with time <= t, in time order.
  void ApplyHealthEventsUpTo(double t);
  void ApplyHealthSample(Replica& replica, const HealthEvent& event);
  // Classifies a planned failure as kCrash or kTimeout (stateless hash).
  resilience::FailureKind ClassifyFailure(const std::string& accel_id,
                                          std::size_t invocation,
                                          int attempt) const;

  BlazeRuntime& runtime_;
  ServiceOptions options_;
  std::map<std::string, KernelGroup> kernels_;
  std::vector<Replica> replicas_;
  std::map<std::string, std::size_t> replica_index_;
  AccelFaultInjector injector_;

  std::vector<ServiceRequest> backlog_;  // submitted, not yet drained
  std::size_t next_id_ = 0;
  double clock_us_ = 0;
  ServiceStats stats_;
  std::vector<HealthEvent> health_events_;  // min-heap by (time, seq)
  std::size_t health_event_seq_ = 0;
  // Probe-eligibility timers raised while applying health samples; the
  // planner drains these into its event heap (quarantine can fire inside
  // ApplyHealthEventsUpTo, which cannot see the planner's heap directly).
  std::vector<std::pair<double, std::size_t>> probe_timers_pending_;
};

// ------------------------------------------------------------ CLI plumbing

// An injected fault burst: every accelerator attempt whose per-replica
// invocation counter falls in [start, start + length) fails. Parsed from
// the "START:LEN" syntax of --fault-burst / S2FA_FAULT_BURST.
struct FaultBurst {
  std::size_t start = 0;
  std::size_t length = 0;
};
std::optional<FaultBurst> ParseFaultBurst(const std::string& text);
AccelFaultInjector MakeBurstFaultInjector(FaultBurst burst);

// Comma-separated list of "START:LEN" windows. Rejects — fail-fast, with
// MalformedInput — malformed windows, zero-length windows, and duplicate
// or overlapping windows (silently merging them would hide a schedule
// typo and change the injected fault count). Returns windows sorted by
// start. An empty/whitespace-only string parses to an empty list.
std::vector<FaultBurst> ParseFaultBursts(const std::string& text);
AccelFaultInjector MakeBurstFaultInjector(std::vector<FaultBurst> bursts);

}  // namespace s2fa::blaze
