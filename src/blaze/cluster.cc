#include "blaze/cluster.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <limits>

#include "obs/obs.h"
#include "support/error.h"
#include "support/logging.h"
#include "support/thread_pool.h"

namespace s2fa::blaze {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::size_t kNoShard = ClusterRequestOutcome::kNoShard;

double QuantileNearestRank(std::vector<double> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  double rank = std::ceil(q * static_cast<double>(samples.size())) - 1;
  auto index = static_cast<std::size_t>(std::max(0.0, rank));
  return samples[std::min(index, samples.size() - 1)];
}

}  // namespace

const char* ClusterServeName(ClusterServe outcome) {
  switch (outcome) {
    case ClusterServe::kRejectedFull: return "rejected-full";
    case ClusterServe::kTenantThrottled: return "tenant-throttled";
    case ClusterServe::kAccelerator: return "accelerator";
    case ClusterServe::kHost: return "host";
    case ClusterServe::kHedgedHost: return "hedged-host";
  }
  S2FA_UNREACHABLE("bad cluster outcome");
}

Routing ParseRouting(const std::string& text) {
  if (text == "health") return Routing::kHealth;
  if (text == "depth") return Routing::kDepth;
  throw MalformedInput("routing policy must be 'health' or 'depth', got '" +
                       text + "'");
}

const char* RoutingName(Routing routing) {
  switch (routing) {
    case Routing::kHealth: return "health";
    case Routing::kDepth: return "depth";
  }
  S2FA_UNREACHABLE("bad routing policy");
}

double TenantStats::LatencyQuantile(double q) const {
  S2FA_REQUIRE(q >= 0 && q <= 1.0, "quantile must be in [0, 1]");
  return QuantileNearestRank(latencies_us, q);
}

double ClusterStats::LatencyQuantile(double q) const {
  S2FA_REQUIRE(q >= 0 && q <= 1.0, "quantile must be in [0, 1]");
  return QuantileNearestRank(latencies_us, q);
}

// -------------------------------------------------------- drain structures

struct BlazeCluster::LifecycleEvent {
  double time_us = 0;
  bool kill = false;
  std::size_t shard = 0;
};

struct BlazeCluster::Slot {
  ClusterRequest request;
  std::size_t id = 0;
  double arrival_us = 0;
  double enqueue_us = 0;
  bool synthetic = false;  // chaos-flood request: served, not returned
  bool poisoned = false;
  int redirects = 0;
  bool queued = false;
  bool committed = false;
  bool hedged = false;
  ClusterServe outcome = ClusterServe::kRejectedFull;
  std::size_t shard = kNoShard;
  std::string replica;
  std::size_t batch_size = 1;
  double dispatch_us = 0;
  double complete_us = 0;
  Dataset output;
};

struct BlazeCluster::CommitRec {
  std::size_t slot = 0;
  ClusterServe outcome = ClusterServe::kHost;
  std::size_t shard = kNoShard;
  std::string replica;
  std::size_t batch_size = 1;
  double dispatch_us = 0;
};

struct BlazeCluster::RequeueRec {
  std::vector<std::size_t> slots;
};

struct BlazeCluster::Event {
  double time_us = 0;
  std::size_t seq = 0;
  enum Kind {
    kLifecycle,
    kArrival,
    kRequeue,
    kCommit,
    kHedgeStart,
    kHedgeDone,
    kShardFree,
    kBatchTimer,
  } kind = kArrival;
  std::size_t index = 0;
};

// ----------------------------------------------------------------- cluster

BlazeCluster::BlazeCluster(BlazeRuntime& runtime, ClusterOptions options)
    : runtime_(runtime), options_(options) {
  S2FA_REQUIRE(options_.queue_capacity > 0, "queue capacity must be >= 1");
  S2FA_REQUIRE(options_.batch_max_requests > 0, "batch size must be >= 1");
  S2FA_REQUIRE(options_.exec_threads >= 1, "exec_threads must be >= 1");
  S2FA_REQUIRE(options_.default_tenant_weight > 0,
               "tenant weight must be > 0");
}

BlazeCluster::~BlazeCluster() = default;
BlazeCluster::BlazeCluster(BlazeCluster&&) noexcept = default;

std::unique_ptr<BlazeService> BlazeCluster::MakeService(
    std::size_t shard) const {
  ServiceOptions so = options_.shard_options;
  so.exec_threads = options_.exec_threads;
  // Distinct failure-classification streams per fault domain.
  so.seed = options_.shard_options.seed + 0x9E37 * (shard + 1);
  so.queue_capacity =
      std::max(so.queue_capacity, options_.batch_max_requests);
  auto service = std::make_unique<BlazeService>(runtime_, so);
  for (const auto& [kernel, accel_id] : shards_[shard].replicas) {
    service->AddReplica(kernel, accel_id);
  }
  if (!plan_.Empty()) {
    service->SetFaultInjector(MakeShardBurstInjector(plan_, shard));
  }
  return service;
}

std::size_t BlazeCluster::AddShard() {
  const std::size_t index = shards_.size();
  shards_.emplace_back();
  shards_.back().service = MakeService(index);
  stats_.shards.emplace_back();
  dead_windows_.emplace_back();
  return index;
}

void BlazeCluster::AddReplica(std::size_t shard, const std::string& kernel,
                              const std::string& accel_id) {
  S2FA_REQUIRE(shard < shards_.size(), "no such shard: " << shard);
  S2FA_REQUIRE(replica_ids_.insert(accel_id).second,
               "replica " << accel_id << " already enlisted on a shard");
  const RegisteredAccelerator& accel = runtime_.manager().Get(accel_id);
  if (kernels_.count(kernel) == 0) {
    const ExecutionStats per = runtime_.PerInvocationCost(accel_id);
    KernelInfo info;
    info.exec_accel = accel_id;
    info.pattern = accel.design.pattern;
    info.batch = static_cast<std::size_t>(accel.plan.batch);
    info.accel_us_per_invocation = per.total_us;
    info.detect_us_per_invocation =
        per.serialize_us + per.transfer_us + per.overhead_us;
    info.host_us_per_invocation =
        per.compute_us * runtime_.cost_model().host_slowdown;
    kernels_[kernel] = std::move(info);
  }
  shards_[shard].replicas.emplace_back(kernel, accel_id);
  shards_[shard].service->AddReplica(kernel, accel_id);
}

void BlazeCluster::AddTenant(const std::string& name, double weight,
                             std::size_t quota) {
  S2FA_REQUIRE(!name.empty(), "tenant name must be non-empty");
  S2FA_REQUIRE(weight > 0, "tenant weight must be > 0");
  S2FA_REQUIRE(tenants_.count(name) == 0,
               "tenant " << name << " already registered");
  Tenant tenant;
  tenant.name = name;
  tenant.weight = weight;
  tenant.quota = quota;
  tenant.pass_us = stride_vtime_;
  tenants_[name] = std::move(tenant);
  TenantStats& ts = stats_.tenants[name];
  ts.weight = weight;
  ts.quota = quota;
}

BlazeCluster::Tenant& BlazeCluster::TenantFor(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    AddTenant(name, options_.default_tenant_weight,
              options_.default_tenant_quota);
    it = tenants_.find(name);
  }
  return it->second;
}

const BlazeCluster::KernelInfo& BlazeCluster::KernelFor(
    const std::string& kernel) const {
  auto it = kernels_.find(kernel);
  S2FA_REQUIRE(it != kernels_.end(),
               "no replicas enlisted for kernel " << kernel);
  return it->second;
}

std::size_t BlazeCluster::InvocationsFor(const KernelInfo& info,
                                         std::size_t records) const {
  return std::max<std::size_t>(1, (records + info.batch - 1) / info.batch);
}

double BlazeCluster::HostUs(const KernelInfo& info,
                            std::size_t records) const {
  return static_cast<double>(InvocationsFor(info, records)) *
         info.host_us_per_invocation;
}

double BlazeCluster::DetectUs(const KernelInfo& info,
                              std::size_t records) const {
  return static_cast<double>(InvocationsFor(info, records)) *
         info.detect_us_per_invocation;
}

void BlazeCluster::SetChaosPlan(ChaosPlan plan) {
  // ChaosPlan is a public struct: re-validate instead of trusting that it
  // came from ParseChaosPlan (the dead-window pairing below relies on the
  // per-shard kill/restart alternation this enforces).
  ValidateChaosPlan(plan);
  for (const ChaosKill& kill : plan.kills) {
    S2FA_REQUIRE(kill.shard < shards_.size(),
                 "chaos plan kills unknown shard " << kill.shard);
  }
  for (const ChaosRestart& restart : plan.restarts) {
    S2FA_REQUIRE(restart.shard < shards_.size(),
                 "chaos plan restarts unknown shard " << restart.shard);
  }
  for (const ChaosBurst& burst : plan.bursts) {
    S2FA_REQUIRE(!burst.shard || *burst.shard < shards_.size(),
                 "chaos plan bursts unknown shard " << *burst.shard);
  }
  for (const ChaosFlood& flood : plan.floods) {
    S2FA_REQUIRE(tenants_.count(flood.tenant) != 0,
                 "chaos plan floods unknown tenant '"
                     << flood.tenant << "' (AddTenant it first)");
  }
  plan_ = std::move(plan);

  // Per-shard dead windows [kill, restart-or-inf), and the merged
  // lifecycle timeline that drives service recreation.
  dead_windows_.assign(shards_.size(), {});
  lifecycle_.clear();
  lifecycle_done_ = 0;
  std::vector<std::vector<std::pair<double, bool>>> per_shard(shards_.size());
  for (const ChaosKill& kill : plan_.kills) {
    per_shard[kill.shard].emplace_back(kill.at_us, true);
    lifecycle_.push_back({kill.at_us, true, kill.shard});
  }
  for (const ChaosRestart& restart : plan_.restarts) {
    per_shard[restart.shard].emplace_back(restart.at_us, false);
    lifecycle_.push_back({restart.at_us, false, restart.shard});
  }
  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    auto& timeline = per_shard[s];
    std::sort(timeline.begin(), timeline.end());
    // ValidateChaosPlan enforced alternation: kill, restart, kill, ...
    for (std::size_t i = 0; i < timeline.size(); i += 2) {
      const double kill_at = timeline[i].first;
      const double restart_at =
          i + 1 < timeline.size() ? timeline[i + 1].first : kInf;
      dead_windows_[s].emplace_back(kill_at, restart_at);
    }
  }
  std::sort(lifecycle_.begin(), lifecycle_.end(),
            [](const LifecycleEvent& a, const LifecycleEvent& b) {
              if (a.time_us != b.time_us) return a.time_us < b.time_us;
              if (a.shard != b.shard) return a.shard < b.shard;
              return a.kill < b.kill;  // restart before kill at a tie
            });

  floods_pending_.clear();
  std::size_t ordinal = 0;
  for (std::size_t f = 0; f < plan_.floods.size(); ++f) {
    const ChaosFlood& flood = plan_.floods[f];
    for (std::size_t i = 0; i < flood.requests; ++i) {
      const double at =
          flood.start_us + flood.duration_us * static_cast<double>(i) /
                               static_cast<double>(flood.requests);
      floods_pending_.push_back({at, ordinal++, f});
    }
  }
  std::stable_sort(floods_pending_.begin(), floods_pending_.end(),
                   [](const PendingFlood& a, const PendingFlood& b) {
                     return a.at_us < b.at_us;
                   });

  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].service->SetFaultInjector(MakeShardBurstInjector(plan_, s));
  }
}

void BlazeCluster::SetFloodGenerator(
    std::function<ClusterRequest(std::size_t)> generator) {
  flood_generator_ = std::move(generator);
}

bool BlazeCluster::ShardAliveAt(std::size_t shard, double t_us) const {
  S2FA_REQUIRE(shard < shards_.size(), "no such shard: " << shard);
  for (const auto& [kill_at, restart_at] : dead_windows_[shard]) {
    if (t_us >= kill_at && t_us < restart_at) return false;
  }
  return true;
}

double BlazeCluster::NextKillAfter(std::size_t shard, double t_us) const {
  for (const auto& [kill_at, restart_at] : dead_windows_[shard]) {
    (void)restart_at;
    if (kill_at > t_us) return kill_at;
  }
  return kInf;
}

double BlazeCluster::AccelUsFor(const std::string& kernel,
                                std::size_t records) const {
  const KernelInfo& info = KernelFor(kernel);
  return static_cast<double>(InvocationsFor(info, records)) *
         info.accel_us_per_invocation;
}

double BlazeCluster::HostUsFor(const std::string& kernel,
                               std::size_t records) const {
  return HostUs(KernelFor(kernel), records);
}

bool BlazeCluster::IsReduceKernel(const std::string& kernel) const {
  return KernelFor(kernel).pattern == kir::ParallelPattern::kReduce;
}

const std::string& BlazeCluster::ExecAccelFor(
    const std::string& kernel) const {
  return KernelFor(kernel).exec_accel;
}

std::size_t BlazeCluster::LiveLanesAt(double t_us) const {
  std::size_t lanes = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (ShardAliveAt(s, t_us)) lanes += shards_[s].replicas.size();
  }
  return lanes;
}

const BlazeService& BlazeCluster::shard_service(std::size_t shard) const {
  S2FA_REQUIRE(shard < shards_.size(), "no such shard: " << shard);
  return *shards_[shard].service;
}

void BlazeCluster::Submit(ClusterRequest request) {
  S2FA_REQUIRE(kernels_.count(request.kernel) != 0,
               "no replicas enlisted for kernel " << request.kernel);
  S2FA_REQUIRE(!request.tenant.empty(), "tenant name must be non-empty");
  backlog_.push_back(std::move(request));
}

std::vector<ClusterRequestOutcome> BlazeCluster::Run(
    std::vector<ClusterRequest> requests) {
  for (auto& request : requests) Submit(std::move(request));
  return Drain();
}

// ------------------------------------------------------------------- drain

std::vector<ClusterRequestOutcome> BlazeCluster::Drain() {
  S2FA_SPAN("blaze.cluster.drain");
  S2FA_REQUIRE(floods_pending_.empty() || flood_generator_,
               "chaos plan has floods but no flood generator is installed");

  // Tenant queues hold indices into this drain's slots vector. A slot
  // committed by a winning hedge while still queued is popped lazily
  // (clean_head), so entries can survive the drain — left in place they
  // would alias (or overrun) the next drain's slots. Reset them.
  for (auto& [name, tenant] : tenants_) {
    tenant.queue.clear();
    tenant.queued = 0;
  }

  // ---- materialize this drain's slots (real, then in-horizon floods)
  std::vector<Slot> slots;
  slots.reserve(backlog_.size());
  // Floods are due once the cluster clock (or any real arrival) passes
  // them, so an empty drain still materializes already-due floods.
  double horizon = clock_us_;
  for (auto& request : backlog_) {
    Slot slot;
    slot.id = next_id_++;
    slot.arrival_us = std::max(request.arrival_us, clock_us_);
    horizon = std::max(horizon, slot.arrival_us);
    slot.request = std::move(request);
    slots.push_back(std::move(slot));
  }
  const std::size_t real_count = slots.size();
  backlog_.clear();
  // Floods ride the real request stream: inject the pending synthetic
  // requests whose arrival falls inside this drain's traffic horizon.
  std::size_t injected = 0;
  while (injected < floods_pending_.size() &&
         floods_pending_[injected].at_us <= horizon) {
    const PendingFlood& pending = floods_pending_[injected];
    ClusterRequest request = flood_generator_(pending.ordinal);
    S2FA_REQUIRE(kernels_.count(request.kernel) != 0,
                 "flood generator returned unknown kernel " << request.kernel);
    request.tenant = plan_.floods[pending.flood].tenant;
    Slot slot;
    slot.id = next_id_++;
    slot.arrival_us = std::max(pending.at_us, clock_us_);
    slot.request = std::move(request);
    slot.synthetic = true;
    slots.push_back(std::move(slot));
    ++injected;
  }
  floods_pending_.erase(floods_pending_.begin(),
                        floods_pending_.begin() +
                            static_cast<std::ptrdiff_t>(injected));
  stats_.flood_injected += injected;
  if (injected > 0) {
    S2FA_COUNT("blaze.cluster.flood_injected",
               static_cast<std::int64_t>(injected));
  }
  if (!floods_pending_.empty()) {
    // Never silent: a flood gate that measured zero injected requests
    // should be visible in the log, not mistaken for surviving the flood.
    S2FA_LOG_WARN("cluster: " << floods_pending_.size()
                              << " scheduled flood request(s) fall past this "
                                 "drain's horizon; they stay pending until a "
                                 "later drain reaches t="
                              << floods_pending_.front().at_us << " us");
  }
  if (!plan_.Empty()) {
    for (Slot& slot : slots) slot.poisoned = IsPoisoned(plan_, slot.id);
  }

  // ---- event machinery
  std::vector<Event> events;
  std::size_t seq = 0;
  auto later = [](const Event& a, const Event& b) {
    if (a.time_us != b.time_us) return a.time_us > b.time_us;
    return a.seq > b.seq;
  };
  auto push_event = [&](double t, Event::Kind kind, std::size_t index) {
    events.push_back({t, seq++, kind, index});
    std::push_heap(events.begin(), events.end(), later);
  };
  std::vector<CommitRec> commits;
  std::vector<RequeueRec> requeues;
  using BatchKey = std::pair<std::string, const Dataset*>;
  auto key_of = [&](const Slot& slot) {
    return BatchKey{slot.request.kernel, slot.request.broadcast};
  };
  std::map<BatchKey, std::size_t> key_count;
  std::size_t queued_total = 0;
  std::set<double> armed_timers;

  for (std::size_t i = 0; i < slots.size(); ++i) {
    push_event(slots[i].arrival_us, Event::kArrival, i);
  }
  for (std::size_t i = lifecycle_done_; i < lifecycle_.size(); ++i) {
    push_event(lifecycle_[i].time_us, Event::kLifecycle, i);
  }
  lifecycle_done_ = lifecycle_.size();

  // ---- exactly-once commit
  auto try_commit = [&](const CommitRec& rec, double t) {
    Slot& slot = slots[rec.slot];
    if (slot.committed) {
      ++stats_.commit_conflicts;
      S2FA_COUNT("blaze.cluster.commit_conflicts", 1);
      return false;
    }
    slot.committed = true;
    if (slot.queued) {  // a hedge won while the request sat in the queue
      slot.queued = false;
      --queued_total;
      --key_count[key_of(slot)];
      --TenantFor(slot.request.tenant).queued;
    }
    slot.outcome = rec.outcome;
    slot.shard = rec.shard;
    slot.replica = rec.replica;
    slot.batch_size = rec.batch_size;
    slot.dispatch_us = rec.dispatch_us;
    slot.complete_us = t;
    clock_us_ = std::max(clock_us_, t);
    TenantStats& ts = stats_.tenants.at(slot.request.tenant);
    ++stats_.completed;
    ++ts.completed;
    ts.records_completed += slot.request.input.num_records();
    const double latency = t - slot.arrival_us;
    stats_.latencies_us.push_back(latency);
    ts.latencies_us.push_back(latency);
    switch (rec.outcome) {
      case ClusterServe::kAccelerator:
        ++stats_.completed_accel;
        ++ts.completed_accel;
        break;
      case ClusterServe::kHost:
        ++stats_.completed_host;
        ++ts.completed_host;
        break;
      case ClusterServe::kHedgedHost:
        ++stats_.completed_hedge;
        ++ts.completed_hedge;
        break;
      default: S2FA_UNREACHABLE("shed outcomes are committed at admission");
    }
    if (rec.shard != kNoShard) ++stats_.shards[rec.shard].requests;
    S2FA_COUNT("blaze.cluster.completed", 1);
    S2FA_OBSERVE("blaze.cluster.latency_us", latency);
    return true;
  };

  // ---- routing
  struct Route {
    bool wait = false;
    bool host = false;
    std::size_t shard = 0;
  };
  auto choose_shard = [&](const std::string& kernel, double t) {
    Route route;
    std::size_t best_live = kNoShard;
    double best_score = kInf;
    double best_tiebreak = kInf;
    std::size_t best_live_count = 0;
    std::size_t best_probe = kNoShard;
    bool busy_any = false;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard& shard = shards_[s];
      if (shard.service->num_replicas(kernel) == 0) continue;
      if (!ShardAliveAt(s, t)) continue;
      const ReplicaHealthCounts counts =
          shard.service->CountHealth(kernel, t);
      if (counts.live() > 0) {
        if (shard.busy_until_us <= t) {
          // kHealth: least cumulative occupancy, index tie-break —
          // deterministic least-loaded routing. It is blind to work the
          // shard still owes that never occupied the dispatch lane: on a
          // host fallback the lane frees as soon as the accel-side failure
          // is detected, but the shard's service clock runs ahead to the
          // host completion, so the next batch routed there silently
          // serializes behind invisible host work.
          //
          // kDepth: route by that true outstanding backlog — how far the
          // shard's service clock is ahead of now. A shard that looks idle
          // but owes host work stops winning. Ties fall back to occupancy
          // normalized by live lanes (so a burst-degraded shard whose
          // surviving replicas are drowning loses), then prefer more live
          // replicas, then the lower index.
          const double backlog =
              std::max(shard.service->clock_us() - t, 0.0);
          const double score = options_.routing == Routing::kDepth
                                   ? backlog
                                   : stats_.shards[s].busy_us;
          const double tiebreak =
              options_.routing == Routing::kDepth
                  ? stats_.shards[s].busy_us /
                        static_cast<double>(counts.live())
                  : 0.0;
          const bool better =
              score < best_score ||
              (options_.routing == Routing::kDepth && score == best_score &&
               (tiebreak < best_tiebreak ||
                (tiebreak == best_tiebreak &&
                 counts.live() > best_live_count)));
          if (better) {
            best_score = score;
            best_tiebreak = tiebreak;
            best_live = s;
            best_live_count = counts.live();
          }
        } else {
          busy_any = true;
        }
      } else if (counts.probe_ready > 0) {
        if (shard.busy_until_us <= t) {
          if (best_probe == kNoShard) best_probe = s;
        } else {
          busy_any = true;
        }
      }
      // Dark shards with no probe ready take no traffic; waiting on them
      // would wedge the queue, so they don't count as busy either.
    }
    if (best_live != kNoShard) {
      route.shard = best_live;
    } else if (best_probe != kNoShard) {
      route.shard = best_probe;  // recovery traffic for a dark shard
    } else if (busy_any) {
      route.wait = true;
    } else {
      route.host = true;  // no shard can take this kernel: host-direct
    }
    return route;
  };

  auto clean_head = [&](Tenant& tenant) {
    while (!tenant.queue.empty()) {
      const Slot& slot = slots[tenant.queue.front()];
      if (slot.queued && !slot.committed) break;
      tenant.queue.pop_front();  // popped by dispatch or committed by hedge
    }
  };

  // Weighted-fair pick: min (pass, name) over tenants whose head is not a
  // held batch key. Returns nullptr when nothing is dispatchable.
  auto pick_tenant = [&](const std::set<BatchKey>& held) -> Tenant* {
    Tenant* best = nullptr;
    for (auto& [name, tenant] : tenants_) {
      clean_head(tenant);
      if (tenant.queue.empty()) continue;
      if (held.count(key_of(slots[tenant.queue.front()])) != 0) continue;
      if (best == nullptr || tenant.pass_us < best->pass_us) best = &tenant;
    }
    return best;
  };

  // Pops up to the batch cap of key-matching requests, charging each
  // tenant's stride pass as its requests leave the queue.
  auto form_batch = [&](const BatchKey& key) {
    std::vector<std::size_t> members;
    const KernelInfo& info = KernelFor(key.first);
    const std::size_t cap = info.pattern == kir::ParallelPattern::kReduce
                                ? 1
                                : options_.batch_max_requests;
    while (members.size() < cap) {
      Tenant* best = nullptr;
      for (auto& [name, tenant] : tenants_) {
        clean_head(tenant);
        if (tenant.queue.empty()) continue;
        if (!(key_of(slots[tenant.queue.front()]) == key)) continue;
        if (best == nullptr || tenant.pass_us < best->pass_us) best = &tenant;
      }
      if (best == nullptr) break;
      const std::size_t index = best->queue.front();
      best->queue.pop_front();
      Slot& slot = slots[index];
      stride_vtime_ = best->pass_us;
      best->pass_us +=
          static_cast<double>(
              std::max<std::size_t>(1, slot.request.input.num_records())) /
          best->weight;
      slot.queued = false;
      --best->queued;
      --queued_total;
      --key_count[key];
      members.push_back(index);
    }
    return members;
  };

  auto host_commit_members = [&](const std::vector<std::size_t>& members,
                                 double t) {
    for (std::size_t index : members) {
      const Slot& slot = slots[index];
      const KernelInfo& info = KernelFor(slot.request.kernel);
      CommitRec rec;
      rec.slot = index;
      rec.outcome = ClusterServe::kHost;
      rec.batch_size = 1;
      rec.dispatch_us = t;
      commits.push_back(std::move(rec));
      push_event(t + HostUs(info, slot.request.input.num_records()),
                 Event::kCommit, commits.size() - 1);
    }
  };

  // ---- batch dispatch onto one shard, with bisect isolation and the
  // kill-interruption pre/post checks.
  auto dispatch_batch = [&](std::size_t shard_index, const BatchKey& key,
                            const std::vector<std::size_t>& members,
                            double t) {
    Shard& shard = shards_[shard_index];
    ShardStats& sstats = stats_.shards[shard_index];
    const KernelInfo& info = KernelFor(key.first);
    const double spike = SpikeFactorAt(plan_, t);
    const double kill_at = NextKillAfter(shard_index, t);
    auto records_of = [&](std::size_t index) {
      return slots[index].request.input.num_records();
    };

    // Bisect schedule: depth-first, left half first. Failing nodes burn
    // the crash-detect round trip on a virtual probe lane (cursor); clean
    // nodes dispatch to the service at the cursor where they were proven
    // clean. Poison singletons degrade to the host path after their final
    // failed attempt. The cursor runs on the raw (unspiked) timeline —
    // like the service completions below — so the spike factor is applied
    // exactly once, when raw offsets convert to absolute times.
    struct CleanNode {
      double arrival_us = 0;
      std::vector<std::size_t> members;
    };
    std::vector<CleanNode> clean;
    struct PoisonExit {
      std::size_t slot = 0;
      double burn_end_us = 0;
    };
    std::vector<PoisonExit> poison_exits;
    std::size_t burn_count = 0;
    double cursor = t;
    {
      std::vector<std::vector<std::size_t>> stack;
      stack.push_back(members);
      while (!stack.empty()) {
        std::vector<std::size_t> node = std::move(stack.back());
        stack.pop_back();
        const bool has_poison =
            std::any_of(node.begin(), node.end(), [&](std::size_t index) {
              return slots[index].poisoned;
            });
        if (!has_poison) {
          clean.push_back({cursor, std::move(node)});
          continue;
        }
        ++burn_count;
        std::size_t node_records = 0;
        for (std::size_t index : node) node_records += records_of(index);
        cursor += DetectUs(info, node_records);
        if (node.size() == 1) {
          poison_exits.push_back({node.front(), cursor});
        } else {
          const auto mid =
              node.begin() + static_cast<std::ptrdiff_t>(node.size() / 2);
          stack.emplace_back(mid, node.end());    // right half, later
          stack.emplace_back(node.begin(), mid);  // left half, next
        }
      }
    }

    // Kill pre-check: conservative single-lane fault-free estimate. A kill
    // inside the window means the shard dies before acking the batch — the
    // whole batch requeues at the kill, nothing is committed from it. The
    // estimate is raw; the spike scales the whole window once.
    double clean_accel_us = 0;
    for (const CleanNode& node : clean) {
      std::size_t node_records = 0;
      for (std::size_t index : node.members) node_records += records_of(index);
      clean_accel_us += static_cast<double>(InvocationsFor(
                            info, node_records)) *
                        info.accel_us_per_invocation;
    }
    if (kill_at < t + spike * (cursor - t + clean_accel_us)) {
      ++stats_.failovers;
      S2FA_COUNT("blaze.cluster.failovers", 1);
      sstats.wasted_us += kill_at - t;
      shard.busy_until_us = kill_at;
      requeues.push_back({members});
      push_event(kill_at, Event::kRequeue, requeues.size() - 1);
      return;
    }

    ++stats_.batches;
    stats_.batched_requests += members.size();
    stats_.max_batch = std::max(stats_.max_batch, members.size());
    S2FA_COUNT("blaze.cluster.batches", 1);
    S2FA_COUNT("blaze.cluster.batched_requests",
               static_cast<std::int64_t>(members.size()));
    stats_.bisect_attempts += burn_count;
    if (burn_count > 0) {
      S2FA_COUNT("blaze.cluster.bisect_attempts",
                 static_cast<std::int64_t>(burn_count));
    }

    for (const PoisonExit& exit : poison_exits) {
      ++stats_.poison_isolated;
      S2FA_COUNT("blaze.cluster.poison_isolated", 1);
      CommitRec rec;
      rec.slot = exit.slot;
      rec.outcome = ClusterServe::kHost;
      rec.batch_size = 1;
      rec.dispatch_us = t;
      commits.push_back(std::move(rec));
      // burn_end_us is a raw offset; the spike dilates the burn window
      // once. The host execution after the final failed attempt runs off
      // the congested interconnect, so it is not dilated.
      push_event(t + spike * (exit.burn_end_us - t) +
                     HostUs(info, records_of(exit.slot)),
                 Event::kCommit, commits.size() - 1);
    }

    double busy_raw = cursor;  // burns occupy the virtual probe lane
    double busy_cap_us = kInf;  // absolute-time cap (kill interruption)
    if (!clean.empty()) {
      std::vector<ServiceRequest> service_requests;
      service_requests.reserve(clean.size());
      for (const CleanNode& node : clean) {
        std::vector<const Dataset*> inputs;
        inputs.reserve(node.members.size());
        for (std::size_t index : node.members) {
          inputs.push_back(&slots[index].request.input);
        }
        ServiceRequest srq;
        srq.kernel = key.first;
        srq.input = ConcatDatasets(inputs);
        srq.broadcast = key.second;
        srq.arrival_us = node.arrival_us;
        service_requests.push_back(std::move(srq));
      }
      std::vector<RequestOutcome> outs =
          shard.service->Run(std::move(service_requests));

      std::vector<std::size_t> interrupted;
      for (std::size_t n = 0; n < clean.size(); ++n) {
        const CleanNode& node = clean[n];
        RequestOutcome& out = outs[n];
        const double complete =
            t + spike * (out.complete_us - t);  // interconnect congestion
        // Lane occupancy: an accelerator completion frees the lane at the
        // completion; a service host fallback frees it when the host takes
        // over; a winning service hedge frees it at the hedge completion.
        std::size_t node_records = 0;
        for (std::size_t index : node.members) {
          node_records += records_of(index);
        }
        double lane_free_raw = out.complete_us;
        if (out.outcome == ServeOutcome::kHost) {
          lane_free_raw = std::max(
              out.dispatch_us,
              out.complete_us - HostUs(info, node_records));
        }
        busy_raw = std::max(busy_raw, lane_free_raw);
        if (complete > kill_at) {
          // Post-check: service-injected faults stretched this sub-batch
          // past the kill; its result is never acked.
          interrupted.insert(interrupted.end(), node.members.begin(),
                             node.members.end());
          continue;
        }
        ClusterServe mapped = ClusterServe::kAccelerator;
        if (out.outcome == ServeOutcome::kHost) {
          mapped = ClusterServe::kHost;
        } else if (out.outcome == ServeOutcome::kHedgedHost) {
          mapped = ClusterServe::kHedgedHost;
        }
        std::size_t row = 0;
        for (std::size_t index : node.members) {
          Slot& slot = slots[index];
          if (info.pattern == kir::ParallelPattern::kReduce) {
            // A reduce collapses its whole batch to one output record;
            // slicing by the input record count would read past it. Reduce
            // batches are singletons (form_batch caps them at 1), so the
            // lone member owns the service output unsliced.
            S2FA_CHECK(node.members.size() == 1,
                       "reduce batches must be singletons");
            slot.output = std::move(out.output);
          } else {
            const std::size_t count = slot.request.input.num_records();
            slot.output = SliceRecords(out.output, row, count);
            row += count;
          }
          CommitRec rec;
          rec.slot = index;
          rec.outcome = mapped;
          rec.shard = mapped == ClusterServe::kAccelerator ? shard_index
                                                           : kNoShard;
          rec.replica = out.replica;
          rec.batch_size = node.members.size();
          rec.dispatch_us = t;
          commits.push_back(std::move(rec));
          push_event(complete, Event::kCommit, commits.size() - 1);
        }
      }
      if (!interrupted.empty()) {
        ++stats_.failovers;
        S2FA_COUNT("blaze.cluster.failovers", 1);
        sstats.wasted_us += std::max(0.0, kill_at - t);
        requeues.push_back({std::move(interrupted)});
        push_event(kill_at, Event::kRequeue, requeues.size() - 1);
        busy_cap_us = kill_at;  // the shard is dead past the kill
      }
    }

    const double busy_until =
        std::min(busy_cap_us, std::max(t, t + spike * (busy_raw - t)));
    shard.busy_until_us = busy_until;
    sstats.busy_us += busy_until - t;
    ++sstats.batches;
    push_event(busy_until, Event::kShardFree, shard_index);
  };

  // ---- the dispatch loop: stride-pick a tenant, coalesce a batch, route
  auto try_dispatch_all = [&](double t) {
    std::set<BatchKey> held;
    while (queued_total > 0) {
      Tenant* tenant = pick_tenant(held);
      if (tenant == nullptr) break;
      const BatchKey key = key_of(slots[tenant->queue.front()]);
      const KernelInfo& info = KernelFor(key.first);
      const std::size_t cap =
          info.pattern == kir::ParallelPattern::kReduce
              ? 1
              : options_.batch_max_requests;
      if (options_.batch_window_us > 0 && key_count[key] < cap) {
        // Hold a partial batch until its window expires.
        double oldest = kInf;
        for (const auto& [name, tn] : tenants_) {
          for (std::size_t index : tn.queue) {
            const Slot& slot = slots[index];
            if (!slot.queued || slot.committed) continue;
            if (!(key_of(slot) == key)) continue;
            oldest = std::min(oldest, slot.enqueue_us);
          }
        }
        const double fire_at = oldest + options_.batch_window_us;
        if (t < fire_at) {
          if (armed_timers.insert(fire_at).second) {
            push_event(fire_at, Event::kBatchTimer, 0);
          }
          held.insert(key);
          continue;
        }
      }
      const Route route = choose_shard(key.first, t);
      if (route.wait) {
        held.insert(key);
        continue;
      }
      const std::vector<std::size_t> members = form_batch(key);
      S2FA_CHECK(!members.empty(), "dispatch pick with empty batch");
      if (route.host) {
        host_commit_members(members, t);
      } else {
        dispatch_batch(route.shard, key, members, t);
      }
    }
  };

  // ---- admission
  auto admit = [&](std::size_t index, double t) {
    Slot& slot = slots[index];
    Tenant& tenant = TenantFor(slot.request.tenant);
    TenantStats& ts = stats_.tenants.at(tenant.name);
    ++stats_.submitted;
    ++ts.submitted;
    S2FA_COUNT("blaze.cluster.submitted", 1);
    if (tenant.quota > 0 && tenant.queued >= tenant.quota) {
      slot.committed = true;
      slot.outcome = ClusterServe::kTenantThrottled;
      slot.dispatch_us = t;
      slot.complete_us = t;
      ++stats_.tenant_throttled;
      ++ts.throttled;
      S2FA_COUNT("blaze.cluster.tenant_throttled", 1);
      return;
    }
    if (queued_total >= options_.queue_capacity) {
      slot.committed = true;
      slot.outcome = ClusterServe::kRejectedFull;
      slot.dispatch_us = t;
      slot.complete_us = t;
      ++stats_.rejected_full;
      ++ts.rejected_full;
      S2FA_COUNT("blaze.cluster.rejected_full", 1);
      return;
    }
    ++stats_.admitted;
    ++ts.admitted;
    S2FA_COUNT("blaze.cluster.admitted", 1);
    if (tenant.queued == 0) {
      // Virtual-time catch-up: an idle tenant must not bank credit.
      tenant.pass_us = std::max(tenant.pass_us, stride_vtime_);
    }
    slot.queued = true;
    slot.enqueue_us = t;
    tenant.queue.push_back(index);
    ++tenant.queued;
    ++queued_total;
    ++key_count[key_of(slot)];
    stats_.max_queue_depth = std::max(stats_.max_queue_depth, queued_total);
    S2FA_GAUGE_MAX("blaze.cluster.max_queue_depth",
                   static_cast<double>(queued_total));
    if (options_.queue_hedge_us > 0) {
      push_event(t + options_.queue_hedge_us, Event::kHedgeStart, index);
    }
    try_dispatch_all(t);
  };

  // ---- failover requeue
  auto process_requeue = [&](const RequeueRec& rec, double t) {
    for (std::size_t index : rec.slots) {
      Slot& slot = slots[index];
      if (slot.committed) continue;  // a hedge got there first
      slot.output = Dataset();       // the un-acked result is discarded
      ++slot.redirects;
      ++stats_.redirects;
      S2FA_COUNT("blaze.cluster.redirects", 1);
      if (slot.redirects > static_cast<int>(options_.max_redirects)) {
        ++stats_.redirect_exhausted;
        S2FA_COUNT("blaze.cluster.redirect_exhausted", 1);
        const KernelInfo& info = KernelFor(slot.request.kernel);
        CommitRec commit;
        commit.slot = index;
        commit.outcome = ClusterServe::kHost;
        commit.batch_size = 1;
        commit.dispatch_us = t;
        commits.push_back(std::move(commit));
        push_event(t + HostUs(info, slot.request.input.num_records()),
                   Event::kCommit, commits.size() - 1);
        continue;
      }
      Tenant& tenant = TenantFor(slot.request.tenant);
      if (tenant.queued == 0) {
        tenant.pass_us = std::max(tenant.pass_us, stride_vtime_);
      }
      slot.queued = true;
      slot.enqueue_us = t;
      tenant.queue.push_back(index);
      ++tenant.queued;
      ++queued_total;
      ++key_count[key_of(slot)];
    }
    try_dispatch_all(t);
  };

  // ---- main event loop
  while (!events.empty()) {
    std::pop_heap(events.begin(), events.end(), later);
    const Event event = events.back();
    events.pop_back();
    const double t = event.time_us;
    switch (event.kind) {
      case Event::kLifecycle: {
        const LifecycleEvent& life = lifecycle_[event.index];
        Shard& shard = shards_[life.shard];
        if (life.kill) {
          ++stats_.shards[life.shard].kills;
          S2FA_COUNT("blaze.cluster.kills", 1);
          S2FA_LOG_WARN("cluster: shard " << life.shard << " killed at "
                                          << t << " us");
        } else {
          // A restart is a fresh process: replica health, latency windows,
          // and the service clock all reset.
          shard.service = MakeService(life.shard);
          shard.busy_until_us = t;
          ++stats_.shards[life.shard].restarts;
          S2FA_COUNT("blaze.cluster.restarts", 1);
          S2FA_LOG_INFO("cluster: shard " << life.shard << " restarted at "
                                          << t << " us");
          try_dispatch_all(t);
        }
        break;
      }
      case Event::kArrival:
        admit(event.index, t);
        break;
      case Event::kRequeue:
        process_requeue(requeues[event.index], t);
        break;
      case Event::kCommit:
        try_commit(commits[event.index], t);
        break;
      case Event::kHedgeStart: {
        Slot& slot = slots[event.index];
        if (slot.committed) break;
        slot.hedged = true;
        ++stats_.hedges_launched;
        S2FA_COUNT("blaze.cluster.hedges", 1);
        const KernelInfo& info = KernelFor(slot.request.kernel);
        push_event(t + HostUs(info, slot.request.input.num_records()),
                   Event::kHedgeDone, event.index);
        break;
      }
      case Event::kHedgeDone: {
        CommitRec rec;
        rec.slot = event.index;
        rec.outcome = ClusterServe::kHedgedHost;
        rec.batch_size = 1;
        rec.dispatch_us = t;
        if (try_commit(rec, t)) {
          ++stats_.hedges_won;
          S2FA_COUNT("blaze.cluster.hedge_wins", 1);
        } else {
          ++stats_.hedges_cancelled;
          S2FA_COUNT("blaze.cluster.hedge_losses", 1);
        }
        break;
      }
      case Event::kShardFree:
        try_dispatch_all(t);
        break;
      case Event::kBatchTimer:
        armed_timers.erase(t);
        try_dispatch_all(t);
        break;
    }
  }

  for (const Slot& slot : slots) {
    S2FA_CHECK(slot.committed, "cluster drain lost request " << slot.id);
  }

  // ---- host-path functional execution (cluster-side commits have no
  // service output; accelerator paths were executed by the shards).
  {
    std::vector<std::size_t> need;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      Slot& slot = slots[i];
      if (slot.synthetic) continue;  // nobody reads flood outputs
      if (slot.outcome == ClusterServe::kRejectedFull ||
          slot.outcome == ClusterServe::kTenantThrottled) {
        continue;
      }
      if (slot.output.num_records() > 0 ||
          slot.request.input.num_records() == 0) {
        continue;
      }
      need.push_back(i);
    }
    auto execute = [&](Slot& slot) {
      S2FA_SPAN("blaze.cluster.host_exec");
      const KernelInfo& info = kernels_.at(slot.request.kernel);
      slot.output =
          info.pattern == kir::ParallelPattern::kReduce
              ? runtime_.Reduce(info.exec_accel, slot.request.input,
                                slot.request.broadcast)
              : runtime_.Map(info.exec_accel, slot.request.input,
                             slot.request.broadcast);
    };
    if (options_.exec_threads == 1) {
      for (std::size_t i : need) execute(slots[i]);
    } else {
      ThreadPool pool(static_cast<std::size_t>(options_.exec_threads));
      std::vector<std::future<void>> done;
      done.reserve(need.size());
      for (std::size_t i : need) {
        done.push_back(pool.Submit([&execute, &slots, i] {
          execute(slots[i]);
        }));
      }
      for (auto& future : done) future.get();
    }
  }

  // ---- assemble outcomes for the real requests, submission order
  std::vector<ClusterRequestOutcome> outcomes;
  outcomes.reserve(real_count);
  for (std::size_t i = 0; i < real_count; ++i) {
    Slot& slot = slots[i];
    ClusterRequestOutcome outcome;
    outcome.id = slot.id;
    outcome.outcome = slot.outcome;
    outcome.shard = slot.shard;
    outcome.replica = slot.replica;
    outcome.tenant = slot.request.tenant;
    outcome.batch_size = slot.batch_size;
    outcome.redirects = slot.redirects;
    outcome.hedged = slot.hedged;
    outcome.poisoned = slot.poisoned;
    outcome.dispatch_us = slot.dispatch_us;
    outcome.complete_us = slot.complete_us;
    outcome.latency_us =
        slot.committed && slot.outcome != ClusterServe::kRejectedFull &&
                slot.outcome != ClusterServe::kTenantThrottled
            ? slot.complete_us - slot.arrival_us
            : 0;
    outcome.output = std::move(slot.output);
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace s2fa::blaze
