#include "blaze/service.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <future>
#include <limits>

#include "obs/obs.h"
#include "resilience/fault.h"
#include "support/error.h"
#include "support/logging.h"
#include "support/strings.h"
#include "support/thread_pool.h"

namespace s2fa::blaze {

namespace {

constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

// Nearest-rank quantile (the obs histogram convention). q in [0, 1].
double QuantileNearestRank(std::vector<double> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  double rank = std::ceil(q * static_cast<double>(samples.size())) - 1;
  auto index = static_cast<std::size_t>(std::max(0.0, rank));
  return samples[std::min(index, samples.size() - 1)];
}

}  // namespace

const char* HealthName(AcceleratorHealth health) {
  switch (health) {
    case AcceleratorHealth::kHealthy: return "healthy";
    case AcceleratorHealth::kDegraded: return "degraded";
    case AcceleratorHealth::kQuarantined: return "quarantined";
  }
  S2FA_UNREACHABLE("bad health state");
}

const char* ServeOutcomeName(ServeOutcome outcome) {
  switch (outcome) {
    case ServeOutcome::kRejectedFull: return "rejected-full";
    case ServeOutcome::kShedExpired: return "shed-expired";
    case ServeOutcome::kAccelerator: return "accelerator";
    case ServeOutcome::kHost: return "host";
    case ServeOutcome::kHedgedHost: return "hedged-host";
  }
  S2FA_UNREACHABLE("bad serve outcome");
}

double ServiceStats::LatencyQuantile(double q) const {
  S2FA_REQUIRE(q >= 0 && q <= 1.0, "quantile must be in [0, 1]");
  return QuantileNearestRank(latencies_us, q);
}

// ------------------------------------------------------- planner structures

struct BlazeService::Pending {
  std::size_t id = 0;
  std::size_t request_index = 0;  // into the drained backlog
  double arrival_us = 0;
  double deadline_abs_us = kNoDeadline;
};

struct BlazeService::Plan {
  std::size_t id = 0;
  std::size_t request_index = 0;
  ServeOutcome outcome = ServeOutcome::kRejectedFull;
  std::string replica;     // replica that served the accelerator path
  std::string exec_accel;  // design used for functional execution
  int attempts = 0;
  bool probe = false;
  bool hedged = false;
  bool deadline_missed = false;
  double dispatch_us = 0;
  double complete_us = 0;
  double latency_us = 0;
  double charged_us = 0;
  bool needs_exec = false;
  Dataset output;  // filled by the execution phase
};

struct BlazeService::HealthEvent {
  double time_us = 0;
  std::size_t seq = 0;  // tie-break: creation order
  std::size_t replica = 0;
  bool failed = false;
  resilience::FailureKind kind = resilience::FailureKind::kNone;
  double latency_per_invocation_us = 0;
  bool is_probe = false;
  bool kernel_sample = false;  // success also feeds the hedge window
  std::string kernel;
};

// ----------------------------------------------------------------- service

BlazeService::BlazeService(BlazeRuntime& runtime, ServiceOptions options)
    : runtime_(runtime), options_(options) {
  S2FA_REQUIRE(options_.queue_capacity > 0, "queue capacity must be >= 1");
  S2FA_REQUIRE(options_.hedge_quantile >= 0 && options_.hedge_quantile <= 1.0,
               "hedge quantile must be in [0, 1]");
  S2FA_REQUIRE(options_.health_window >= 2,
               "health window must hold at least 2 samples");
  S2FA_REQUIRE(options_.exec_threads >= 1, "exec_threads must be >= 1");
  options_.health_min_samples =
      std::min(options_.health_min_samples, options_.health_window);
}

BlazeService::BlazeService(BlazeService&& other) = default;
BlazeService::~BlazeService() = default;

void BlazeService::AddReplica(const std::string& kernel,
                              const std::string& accel_id) {
  S2FA_REQUIRE(!kernel.empty(), "kernel id must be non-empty");
  S2FA_REQUIRE(replica_index_.count(accel_id) == 0,
               "replica " << accel_id << " already enlisted");
  const RegisteredAccelerator& accel = runtime_.manager().Get(accel_id);
  Replica replica;
  replica.accel_id = accel_id;
  replica.per_invocation = runtime_.PerInvocationCost(accel_id);
  replica.host_us_per_invocation =
      replica.per_invocation.compute_us * runtime_.cost_model().host_slowdown;
  replica.probe_backoff_us = options_.probe_backoff_us;
  S2FA_REQUIRE(accel.plan.batch > 0, "bad serialization plan");
  replica_index_[accel_id] = replicas_.size();
  kernels_[kernel].replicas.push_back(replicas_.size());
  replicas_.push_back(std::move(replica));
}

std::size_t BlazeService::num_replicas(const std::string& kernel) const {
  auto it = kernels_.find(kernel);
  return it == kernels_.end() ? 0 : it->second.replicas.size();
}

void BlazeService::SetFaultInjector(AccelFaultInjector injector) {
  injector_ = std::move(injector);
}

BlazeService::Replica& BlazeService::ReplicaFor(const std::string& accel_id) {
  auto it = replica_index_.find(accel_id);
  S2FA_REQUIRE(it != replica_index_.end(),
               "no replica enlisted as " << accel_id);
  return replicas_[it->second];
}

const BlazeService::Replica& BlazeService::ReplicaFor(
    const std::string& accel_id) const {
  return const_cast<BlazeService*>(this)->ReplicaFor(accel_id);
}

AcceleratorHealth BlazeService::health(const std::string& accel_id) const {
  return ReplicaFor(accel_id).health;
}

ReplicaHealthCounts BlazeService::CountHealth(const std::string& kernel,
                                              double now_us) const {
  auto it = kernels_.find(kernel);
  S2FA_REQUIRE(it != kernels_.end(),
               "no replicas enlisted for kernel " << kernel);
  ReplicaHealthCounts counts;
  counts.next_probe_us = kNoDeadline;
  for (std::size_t index : it->second.replicas) {
    const Replica& replica = replicas_[index];
    switch (replica.health) {
      case AcceleratorHealth::kHealthy: ++counts.healthy; break;
      case AcceleratorHealth::kDegraded: ++counts.degraded; break;
      case AcceleratorHealth::kQuarantined:
        ++counts.quarantined;
        if (!replica.probe_inflight && replica.probe_eligible_us <= now_us) {
          ++counts.probe_ready;
        } else if (!replica.probe_inflight) {
          counts.next_probe_us =
              std::min(counts.next_probe_us, replica.probe_eligible_us);
        }
        break;
    }
  }
  return counts;
}

std::optional<double> BlazeService::HedgeDelayUs(
    const std::string& kernel) const {
  auto it = kernels_.find(kernel);
  if (it == kernels_.end() || options_.hedge_quantile <= 0) return std::nullopt;
  const auto& window = it->second.latency_window_us;
  if (window.size() < options_.hedge_min_samples) return std::nullopt;
  return QuantileNearestRank({window.begin(), window.end()},
                             options_.hedge_quantile);
}

void BlazeService::Submit(ServiceRequest request) {
  S2FA_REQUIRE(kernels_.count(request.kernel) != 0,
               "no replicas enlisted for kernel " << request.kernel);
  backlog_.push_back(std::move(request));
}

std::vector<RequestOutcome> BlazeService::Run(
    std::vector<ServiceRequest> requests) {
  for (auto& request : requests) Submit(std::move(request));
  return Drain();
}

// ------------------------------------------------------ failure taxonomy

resilience::FailureKind BlazeService::ClassifyFailure(
    const std::string& accel_id, std::size_t invocation, int attempt) const {
  // Stateless, like the fault plans: the same dispatch always manifests the
  // same way regardless of thread count or drain batching.
  const double roll = resilience::detail::HashRoll(
      options_.seed ^ 0x5E61CEULL,
      accel_id + "#" + std::to_string(invocation), attempt);
  return roll < 0.5 ? resilience::FailureKind::kCrash
                    : resilience::FailureKind::kTimeout;
}

// ------------------------------------------------------ health application

void BlazeService::ApplyHealthEventsUpTo(double t) {
  // health_events_ is kept as a min-heap on (time, seq).
  auto later = [](const HealthEvent& a, const HealthEvent& b) {
    if (a.time_us != b.time_us) return a.time_us > b.time_us;
    return a.seq > b.seq;
  };
  while (!health_events_.empty() && health_events_.front().time_us <= t) {
    std::pop_heap(health_events_.begin(), health_events_.end(), later);
    HealthEvent event = std::move(health_events_.back());
    health_events_.pop_back();
    ApplyHealthSample(replicas_[event.replica], event);
  }
}

void BlazeService::ApplyHealthSample(Replica& replica,
                                     const HealthEvent& event) {
  const double t = event.time_us;
  if (event.kernel_sample && !event.failed) {
    auto& window = kernels_[event.kernel].latency_window_us;
    window.push_back(event.latency_per_invocation_us);
    while (window.size() > options_.latency_window) window.pop_front();
  }
  if (event.is_probe) {
    replica.probe_inflight = false;
    if (event.failed) {
      ++stats_.probe_failures;
      // Probe attempts land in accel_attempts (PlanDispatch), so their
      // failures must land in the failure ledger too or attempts and
      // crashes+timeouts diverge from accel_failures.
      ++stats_.accel_failures;
      if (event.kind == resilience::FailureKind::kCrash) ++stats_.crashes;
      if (event.kind == resilience::FailureKind::kTimeout) ++stats_.timeouts;
      S2FA_COUNT("blaze.svc.accel_failures", 1);
      replica.probe_backoff_us =
          std::min(replica.probe_backoff_us * options_.probe_backoff_multiplier,
                   options_.probe_backoff_max_us);
      replica.probe_eligible_us = t + replica.probe_backoff_us;
      S2FA_LOG_INFO("service: probe of " << replica.accel_id
                                         << " failed; next eligible at "
                                         << replica.probe_eligible_us
                                         << " us");
    } else {
      ++stats_.probe_successes;
      ++stats_.reenlistments;
      S2FA_COUNT("blaze.svc.reenlistments", 1);
      replica.health = AcceleratorHealth::kDegraded;
      replica.window_failed.clear();
      replica.window_latency_us.clear();
      replica.window_failed.push_back(false);
      replica.window_latency_us.push_back(event.latency_per_invocation_us);
      replica.consecutive_failures = 0;
      replica.probe_backoff_us = options_.probe_backoff_us;
      S2FA_LOG_INFO("service: probe re-enlisted " << replica.accel_id);
    }
    return;
  }
  // A sample from before the replica was quarantined is stale: the
  // quarantine decision already absorbed that evidence window.
  if (replica.health == AcceleratorHealth::kQuarantined) return;

  replica.window_failed.push_back(event.failed);
  replica.window_latency_us.push_back(event.latency_per_invocation_us);
  while (replica.window_failed.size() > options_.health_window) {
    replica.window_failed.pop_front();
    replica.window_latency_us.pop_front();
  }
  replica.consecutive_failures =
      event.failed ? replica.consecutive_failures + 1 : 0;
  if (event.failed) {
    ++stats_.accel_failures;
    if (event.kind == resilience::FailureKind::kCrash) ++stats_.crashes;
    if (event.kind == resilience::FailureKind::kTimeout) ++stats_.timeouts;
    S2FA_COUNT("blaze.svc.accel_failures", 1);
  }

  const std::size_t size = replica.window_failed.size();
  const std::size_t failures = static_cast<std::size_t>(
      std::count(replica.window_failed.begin(), replica.window_failed.end(),
                 true));
  const double rate =
      static_cast<double>(failures) / static_cast<double>(size);
  const bool enough = size >= options_.health_min_samples;
  double mean_latency = 0;
  for (double sample : replica.window_latency_us) mean_latency += sample;
  mean_latency /= static_cast<double>(size);
  const bool slow =
      enough && mean_latency > options_.latency_degrade_factor *
                                   replica.per_invocation.total_us;

  if (replica.consecutive_failures >= options_.quarantine_consecutive ||
      (enough && rate >= options_.quarantine_threshold)) {
    replica.health = AcceleratorHealth::kQuarantined;
    replica.window_failed.clear();
    replica.window_latency_us.clear();
    replica.consecutive_failures = 0;
    replica.probe_backoff_us = options_.probe_backoff_us;
    replica.probe_eligible_us = t + replica.probe_backoff_us;
    replica.probe_inflight = false;
    probe_timers_pending_.emplace_back(replica.probe_eligible_us,
                                       replica_index_[replica.accel_id]);
    ++stats_.quarantines;
    S2FA_COUNT("blaze.svc.quarantines", 1);
    S2FA_LOG_WARN("service: quarantined " << replica.accel_id
                                          << " (window failure rate "
                                          << rate << ")");
  } else if (enough && (rate >= options_.degrade_threshold || slow)) {
    if (replica.health == AcceleratorHealth::kHealthy) {
      replica.health = AcceleratorHealth::kDegraded;
      ++stats_.degradations;
      S2FA_COUNT("blaze.svc.degradations", 1);
      S2FA_LOG_INFO("service: degraded " << replica.accel_id);
    }
  } else if (replica.health == AcceleratorHealth::kDegraded && enough &&
             rate <= options_.degrade_threshold / 2 && !slow) {
    replica.health = AcceleratorHealth::kHealthy;
    S2FA_LOG_INFO("service: " << replica.accel_id << " recovered to healthy");
  }
}

// --------------------------------------------------------------- planning

BlazeService::ReplicaChoice BlazeService::SelectReplica(
    const KernelGroup& group, double t) const {
  // Selection: free healthy replicas first (registration order is the
  // deterministic tie-break), then free degraded ones, then a probe of an
  // eligible quarantined replica. The caller waits while `any_live_lane`
  // and nothing was found, and host-directs only when the whole group is
  // dark.
  ReplicaChoice choice;
  for (int tier = 0; tier < 2 && !choice.found; ++tier) {
    const auto want = tier == 0 ? AcceleratorHealth::kHealthy
                                : AcceleratorHealth::kDegraded;
    for (std::size_t index : group.replicas) {
      const Replica& replica = replicas_[index];
      if (replica.health != want) continue;
      choice.any_live_lane = true;
      if (replica.free_us > t) continue;
      choice.found = true;
      choice.replica = index;
      break;
    }
  }
  if (!choice.found) {
    for (std::size_t index : group.replicas) {
      const Replica& replica = replicas_[index];
      if (replica.health != AcceleratorHealth::kQuarantined) continue;
      if (replica.free_us > t || replica.probe_inflight) continue;
      if (replica.probe_eligible_us > t) continue;
      choice.found = true;
      choice.replica = index;
      choice.probe = true;
      break;
    }
  }
  return choice;
}

void BlazeService::PlanDispatch(Pending& request, Plan& plan,
                                std::size_t replica_index, double t,
                                bool probe, KernelGroup& group) {
  Replica& replica = replicas_[replica_index];
  const ServiceRequest& rq = backlog_[request.request_index];
  const RegisteredAccelerator& accel =
      runtime_.manager().Get(replica.accel_id);
  const auto batch = static_cast<std::size_t>(accel.plan.batch);
  const std::size_t invocations =
      std::max<std::size_t>(1, (rq.input.num_records() + batch - 1) / batch);
  const double scale = static_cast<double>(invocations);
  const double accel_us = scale * replica.per_invocation.total_us;
  const double crash_detect_us =
      scale * (replica.per_invocation.serialize_us +
               replica.per_invocation.transfer_us +
               replica.per_invocation.overhead_us);
  const double timeout_detect_us = options_.timeout_detect_multiplier * accel_us;
  const double host_us = scale * replica.host_us_per_invocation;
  const std::size_t invocation = replica.invocations++;

  plan.replica = replica.accel_id;
  plan.exec_accel = replica.accel_id;
  plan.probe = probe;
  plan.dispatch_us = t;

  // Attempt segments on the simulated clock. A probe gets one attempt; a
  // regular dispatch retries once, then falls back to the host (the
  // runtime's SparkCL policy, at service granularity).
  struct Segment {
    double start_us = 0, end_us = 0, cost_us = 0;
    bool failed = false;
    resilience::FailureKind kind = resilience::FailureKind::kNone;
  };
  std::vector<Segment> segments;
  const int max_attempts = probe ? 1 : 2;
  double cursor = t;
  bool succeeded = false;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    Segment segment;
    segment.start_us = cursor;
    const bool failed =
        injector_ && injector_(replica.accel_id, invocation, attempt);
    if (!failed) {
      segment.end_us = cursor + accel_us;
      segment.cost_us = accel_us;
      segments.push_back(segment);
      succeeded = true;
      break;
    }
    segment.failed = true;
    segment.kind = ClassifyFailure(replica.accel_id, invocation, attempt);
    const double burn = segment.kind == resilience::FailureKind::kCrash
                            ? crash_detect_us
                            : timeout_detect_us;
    segment.end_us = cursor + burn;
    segment.cost_us = burn;
    segments.push_back(segment);
    cursor = segment.end_us;
  }

  double primary_complete;
  ServeOutcome primary_outcome;
  double primary_charge = 0;
  for (const Segment& segment : segments) primary_charge += segment.cost_us;
  double lane_busy_until;
  if (succeeded) {
    primary_complete = segments.back().end_us;
    primary_outcome = ServeOutcome::kAccelerator;
    lane_busy_until = primary_complete;
  } else {
    // All accelerator attempts failed: host fallback, which frees the lane
    // the moment the host takes over.
    primary_complete = cursor + host_us;
    primary_outcome = ServeOutcome::kHost;
    primary_charge += host_us;
    lane_busy_until = cursor;
  }

  // Hedged dispatch. Probes are never hedged: a cancelled probe would
  // leave the quarantine decision without its outcome.
  double complete = primary_complete;
  ServeOutcome outcome = primary_outcome;
  double charged = primary_charge;
  double cancel_after = kNoDeadline;  // drop planned samples past this time
  const auto armed = [&]() -> std::optional<double> {
    if (options_.hedge_quantile <= 0 || probe) return std::nullopt;
    if (group.latency_window_us.size() < options_.hedge_min_samples) {
      return std::nullopt;
    }
    return scale * QuantileNearestRank({group.latency_window_us.begin(),
                                        group.latency_window_us.end()},
                                       options_.hedge_quantile);
  }();
  if (armed && primary_complete - t > *armed) {
    plan.hedged = true;
    ++stats_.hedges_launched;
    S2FA_COUNT("blaze.svc.hedges", 1);
    const double hedge_start = t + *armed;
    const double hedge_complete = hedge_start + host_us;
    if (hedge_complete < primary_complete) {
      // The hedge wins: cancel the in-flight accelerator work. Completed
      // segments stay billed; the cancelled remainder is not.
      ++stats_.hedges_won;
      S2FA_COUNT("blaze.svc.hedge_wins", 1);
      stats_.hedge_saved_us += primary_complete - hedge_complete;
      complete = hedge_complete;
      outcome = ServeOutcome::kHedgedHost;
      cancel_after = hedge_complete;
      charged = host_us;
      for (const Segment& segment : segments) {
        if (segment.end_us <= hedge_complete) {
          charged += segment.cost_us;
        } else {
          stats_.cancelled_charge_us += segment.cost_us;
        }
      }
      if (!succeeded) stats_.cancelled_charge_us += host_us;  // the fallback
      lane_busy_until = std::min(lane_busy_until, hedge_complete);
    } else {
      // The accelerator wins: the hedge is cancelled and never billed.
      ++stats_.hedges_cancelled;
      S2FA_COUNT("blaze.svc.hedge_losses", 1);
      stats_.cancelled_charge_us +=
          std::min(host_us, primary_complete - hedge_start);
    }
  }

  // Queue the health-window samples at their simulated observation times;
  // segments cancelled by a winning hedge are never observed.
  auto later = [](const HealthEvent& a, const HealthEvent& b) {
    if (a.time_us != b.time_us) return a.time_us > b.time_us;
    return a.seq > b.seq;
  };
  int attempts_started = 0;
  for (const Segment& segment : segments) {
    if (segment.start_us >= cancel_after) break;
    ++attempts_started;
    ++stats_.accel_attempts;
    if (attempts_started == 2) {
      ++stats_.retries;
      S2FA_COUNT("blaze.svc.retries", 1);
    }
    if (segment.end_us > cancel_after) break;  // in flight at cancellation
    HealthEvent event;
    event.time_us = segment.end_us;
    event.seq = health_event_seq_++;
    event.replica = replica_index;
    event.failed = segment.failed;
    event.kind = segment.kind;
    event.latency_per_invocation_us = segment.cost_us / scale;
    event.is_probe = probe;
    event.kernel_sample = !segment.failed;
    event.kernel = rq.kernel;
    health_events_.push_back(std::move(event));
    std::push_heap(health_events_.begin(), health_events_.end(), later);
  }
  if (probe) {
    ++stats_.probes;
    S2FA_COUNT("blaze.svc.probes", 1);
    replica.probe_inflight = true;
  }

  replica.free_us = lane_busy_until;
  plan.outcome = outcome;
  plan.attempts = attempts_started;
  plan.complete_us = complete;
  plan.latency_us = complete - request.arrival_us;
  plan.charged_us = charged;
  plan.deadline_missed = complete > request.deadline_abs_us;
  plan.needs_exec = true;
}

void BlazeService::PlanAll(std::vector<Pending>& pending,
                           std::vector<Plan>& plans) {
  struct SimEvent {
    double time_us = 0;
    std::size_t seq = 0;
    enum Kind { kArrival, kLaneFree, kProbeTimer } kind = kArrival;
    std::size_t index = 0;  // pending index or replica index
  };
  auto later = [](const SimEvent& a, const SimEvent& b) {
    if (a.time_us != b.time_us) return a.time_us > b.time_us;
    return a.seq > b.seq;
  };
  std::vector<SimEvent> events;
  std::size_t seq = 0;
  auto push_event = [&](double t, SimEvent::Kind kind, std::size_t index) {
    events.push_back({t, seq++, kind, index});
    std::push_heap(events.begin(), events.end(), later);
  };
  for (std::size_t i = 0; i < pending.size(); ++i) {
    push_event(pending[i].arrival_us, SimEvent::kArrival, i);
  }
  std::vector<std::size_t> waiting;  // admitted pending indices, FIFO

  // Dispatches every waiting request that can start at `t`. Skip-scans the
  // FIFO so one kernel's busy replicas never block another kernel's queue.
  auto try_dispatch = [&](double t) {
    bool progress = true;
    while (progress) {
      progress = false;
      ApplyHealthEventsUpTo(t);
      for (auto [probe_at, replica] : probe_timers_pending_) {
        push_event(probe_at, SimEvent::kProbeTimer, replica);
      }
      probe_timers_pending_.clear();
      for (std::size_t w = 0; w < waiting.size(); ++w) {
        Pending& request = pending[waiting[w]];
        Plan& plan = plans[waiting[w]];
        if (request.deadline_abs_us < t) {
          plan.outcome = ServeOutcome::kShedExpired;
          plan.complete_us = t;
          ++stats_.shed_expired;
          S2FA_COUNT("blaze.svc.shed_expired", 1);
          waiting.erase(waiting.begin() + static_cast<std::ptrdiff_t>(w));
          progress = true;
          break;
        }
        KernelGroup& group = kernels_[backlog_[request.request_index].kernel];
        const ReplicaChoice choice = SelectReplica(group, t);
        if (!choice.found && choice.any_live_lane) continue;  // wait
        if (!choice.found) {
          // Whole group quarantined with no probe ready: host-direct.
          const Replica& basis = replicas_[group.replicas.front()];
          const ServiceRequest& rq = backlog_[request.request_index];
          const auto batch = static_cast<std::size_t>(
              runtime_.manager().Get(basis.accel_id).plan.batch);
          const std::size_t invocations = std::max<std::size_t>(
              1, (rq.input.num_records() + batch - 1) / batch);
          plan.outcome = ServeOutcome::kHost;
          plan.exec_accel = basis.accel_id;
          plan.dispatch_us = t;
          plan.complete_us =
              t + static_cast<double>(invocations) *
                      basis.host_us_per_invocation;
          plan.latency_us = plan.complete_us - request.arrival_us;
          plan.charged_us = plan.complete_us - t;
          plan.deadline_missed = plan.complete_us > request.deadline_abs_us;
          plan.needs_exec = true;
        } else {
          PlanDispatch(request, plan, choice.replica, t, choice.probe, group);
          push_event(replicas_[choice.replica].free_us, SimEvent::kLaneFree,
                     choice.replica);
        }
        waiting.erase(waiting.begin() + static_cast<std::ptrdiff_t>(w));
        progress = true;
        break;
      }
    }
  };

  while (!events.empty()) {
    std::pop_heap(events.begin(), events.end(), later);
    SimEvent event = events.back();
    events.pop_back();
    clock_us_ = std::max(clock_us_, event.time_us);
    if (event.kind == SimEvent::kArrival) {
      ApplyHealthEventsUpTo(event.time_us);
      try_dispatch(event.time_us);
      Pending& request = pending[event.index];
      if (waiting.size() >= options_.queue_capacity) {
        plans[event.index].outcome = ServeOutcome::kRejectedFull;
        ++stats_.rejected_full;
        S2FA_COUNT("blaze.svc.rejected_full", 1);
      } else {
        ++stats_.admitted;
        S2FA_COUNT("blaze.svc.admitted", 1);
        waiting.push_back(event.index);
        stats_.max_queue_depth =
            std::max(stats_.max_queue_depth, waiting.size());
        S2FA_GAUGE_MAX("blaze.svc.max_queue_depth",
                       static_cast<double>(waiting.size()));
        try_dispatch(request.arrival_us);
      }
    } else {
      try_dispatch(event.time_us);
    }
  }
  ApplyHealthEventsUpTo(kNoDeadline);  // absorb trailing samples
  for (auto [probe_at, replica] : probe_timers_pending_) {
    (void)probe_at;
    (void)replica;  // no traffic left to probe with; timers expire inertly
  }
  probe_timers_pending_.clear();
  S2FA_CHECK(waiting.empty(), "drain left requests in the queue");
  // Host-direct and host-fallback completions emit no lane event, so the
  // event loop alone can leave the clock before the last completion; the
  // drain contract stops the clock only once every admitted request is done.
  for (const Plan& plan : plans) {
    clock_us_ = std::max(clock_us_, plan.complete_us);
  }
}

// ----------------------------------------------------------------- drain

std::vector<RequestOutcome> BlazeService::Drain() {
  S2FA_SPAN("blaze.svc.drain");
  std::vector<Pending> pending(backlog_.size());
  std::vector<Plan> plans(backlog_.size());
  for (std::size_t i = 0; i < backlog_.size(); ++i) {
    pending[i].id = next_id_++;
    pending[i].request_index = i;
    pending[i].arrival_us = std::max(backlog_[i].arrival_us, clock_us_);
    double deadline = backlog_[i].deadline_us > 0
                          ? backlog_[i].deadline_us
                          : options_.default_deadline_us;
    pending[i].deadline_abs_us =
        deadline > 0 ? pending[i].arrival_us + deadline : kNoDeadline;
    ++stats_.submitted;
    S2FA_COUNT("blaze.svc.submitted", 1);
  }
  std::stable_sort(pending.begin(), pending.end(),
                   [](const Pending& a, const Pending& b) {
                     return a.arrival_us < b.arrival_us;
                   });
  // The planner indexes pending and plans with the same index, so plans
  // must be aligned with the *sorted* order or every outcome (and the
  // design the execution phase runs) belongs to a different request.
  for (std::size_t i = 0; i < pending.size(); ++i) {
    plans[i].id = pending[i].id;
    plans[i].request_index = pending[i].request_index;
  }

  PlanAll(pending, plans);

  // Functional execution: embarrassingly parallel, one slot per request,
  // committed in submission order below (plan-order commit). A lone
  // worker drains the pool FIFO, so exec_threads == 1 can skip the pool —
  // same order, no thread spawn per drain (BlazeCluster drains per batch).
  {
    auto execute = [this](Plan& plan) {
      S2FA_SPAN("blaze.svc.request");
      const ServiceRequest& rq = backlog_[plan.request_index];
      const RegisteredAccelerator& accel =
          runtime_.manager().Get(plan.exec_accel);
      plan.output =
          accel.design.pattern == kir::ParallelPattern::kReduce
              ? runtime_.Reduce(plan.exec_accel, rq.input, rq.broadcast)
              : runtime_.Map(plan.exec_accel, rq.input, rq.broadcast);
    };
    if (options_.exec_threads == 1) {
      for (Plan& plan : plans) {
        if (plan.needs_exec) execute(plan);
      }
    } else {
      ThreadPool pool(static_cast<std::size_t>(options_.exec_threads));
      std::vector<std::future<void>> done;
      for (Plan& plan : plans) {
        if (!plan.needs_exec) continue;
        done.push_back(pool.Submit([&execute, &plan] { execute(plan); }));
      }
      for (auto& future : done) future.get();  // surface kernel exceptions
    }
  }

  std::vector<RequestOutcome> outcomes(plans.size());
  for (Plan& plan : plans) {
    RequestOutcome& outcome = outcomes[plan.request_index];
    outcome.id = plan.id;
    outcome.outcome = plan.outcome;
    outcome.replica = plan.replica;
    outcome.attempts = plan.attempts;
    outcome.probe = plan.probe;
    outcome.hedged = plan.hedged;
    outcome.deadline_missed = plan.deadline_missed;
    outcome.dispatch_us = plan.dispatch_us;
    outcome.complete_us = plan.complete_us;
    outcome.latency_us = plan.latency_us;
    outcome.charged_us = plan.charged_us;
    outcome.output = std::move(plan.output);
    switch (plan.outcome) {
      case ServeOutcome::kAccelerator: ++stats_.completed_accel; break;
      case ServeOutcome::kHost: ++stats_.completed_host; break;
      case ServeOutcome::kHedgedHost: ++stats_.completed_hedge; break;
      default: continue;  // shed: no completion bookkeeping
    }
    ++stats_.completed;
    if (plan.deadline_missed) {
      ++stats_.deadline_misses;
      S2FA_COUNT("blaze.svc.deadline_misses", 1);
    }
    stats_.latencies_us.push_back(plan.latency_us);
    S2FA_COUNT("blaze.svc.completed", 1);
    S2FA_OBSERVE("blaze.svc.latency_us", plan.latency_us);
    S2FA_OBSERVE("blaze.svc.charged_us", plan.charged_us);
  }
  backlog_.clear();
  for (const auto& [kernel, group] : kernels_) {
    if (auto delay = HedgeDelayUs(kernel)) {
      S2FA_GAUGE("blaze.svc.hedge_delay_us", *delay);
    }
    (void)group;
  }
  return outcomes;
}

// ------------------------------------------------------------ CLI plumbing

std::optional<FaultBurst> ParseFaultBurst(const std::string& text) {
  const std::size_t colon = text.find(':');
  if (colon == std::string::npos) return std::nullopt;
  const auto parse = [](std::string_view digits,
                        std::size_t& out) {
    const char* end = digits.data() + digits.size();
    auto [ptr, ec] = std::from_chars(digits.data(), end, out);
    return ec == std::errc() && ptr == end && !digits.empty();
  };
  FaultBurst burst;
  if (!parse(std::string_view(text).substr(0, colon), burst.start) ||
      !parse(std::string_view(text).substr(colon + 1), burst.length)) {
    return std::nullopt;
  }
  return burst;
}

AccelFaultInjector MakeBurstFaultInjector(FaultBurst burst) {
  if (burst.length == 0) return nullptr;
  return [burst](const std::string&, std::size_t invocation, int) {
    return invocation >= burst.start &&
           invocation < burst.start + burst.length;
  };
}

std::vector<FaultBurst> ParseFaultBursts(const std::string& text) {
  std::vector<FaultBurst> bursts;
  std::size_t begin = 0;
  const std::string trimmed(Trim(text));
  if (trimmed.empty()) return bursts;
  while (begin <= trimmed.size()) {
    std::size_t comma = trimmed.find(',', begin);
    if (comma == std::string::npos) comma = trimmed.size();
    const std::string piece = trimmed.substr(begin, comma - begin);
    const std::string window(Trim(piece));
    auto burst = ParseFaultBurst(window);
    if (!burst) {
      throw MalformedInput("fault burst '" + window +
                           "' is not START:LEN");
    }
    if (burst->length == 0) {
      throw MalformedInput("fault burst '" + window +
                           "' has zero length");
    }
    bursts.push_back(*burst);
    begin = comma + 1;
  }
  std::sort(bursts.begin(), bursts.end(),
            [](const FaultBurst& a, const FaultBurst& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.length < b.length;
            });
  for (std::size_t i = 1; i < bursts.size(); ++i) {
    const FaultBurst& prev = bursts[i - 1];
    const FaultBurst& cur = bursts[i];
    if (cur.start < prev.start + prev.length) {
      throw MalformedInput(
          "fault bursts overlap: [" + std::to_string(prev.start) + ":" +
          std::to_string(prev.length) + ") and [" +
          std::to_string(cur.start) + ":" + std::to_string(cur.length) +
          "); merge or separate the windows");
    }
  }
  return bursts;
}

AccelFaultInjector MakeBurstFaultInjector(std::vector<FaultBurst> bursts) {
  bursts.erase(std::remove_if(bursts.begin(), bursts.end(),
                              [](const FaultBurst& b) { return b.length == 0; }),
               bursts.end());
  if (bursts.empty()) return nullptr;
  return [bursts = std::move(bursts)](const std::string&,
                                      std::size_t invocation, int) {
    for (const FaultBurst& burst : bursts) {
      if (invocation >= burst.start && invocation < burst.start + burst.length) {
        return true;
      }
    }
    return false;
  };
}

}  // namespace s2fa::blaze
