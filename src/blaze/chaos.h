// Deterministic chaos harness for the sharded serving layer (BlazeCluster).
//
// A ChaosPlan is a scripted fault schedule on the shared simulated clock:
// whole-shard kills and restarts, per-replica fault bursts (reusing the
// service's invocation-window injector), interconnect latency spikes, tenant
// floods, and poison requests that crash any batch containing them. The plan
// is parsed fail-fast from a tiny text grammar so the CLI, benches, and
// tests can all drive the same schedules:
//
//   plan      := stmt ((';' | '\n') stmt)*
//   stmt      := (empty) | directive
//   directive :=
//     kill <shard> @ <time>            # shard dies; in-flight work is lost
//     restart <shard> @ <time>         # fresh process: health state resets
//     burst <start>:<len> [@ <shard>]  # replica-invocation fault window
//     spike <factor> @ <time> + <dur>  # latency multiplier on dispatches
//     flood <tenant> @ <time> + <dur> x <count>   # synthetic request burst
//     poison <id> [, <id>]*            # these request ids crash their batch
//     poison-rate <rate> [/ <seed>]    # hash-sampled poison population
//   time      := NUMBER ['us' | 'ms' | 's']      # default microseconds
//
// Whitespace is insignificant. Parsing rejects — with MalformedInput, never
// a silent merge — unknown directives, malformed numbers, zero-length
// windows, overlapping bursts on the same target, kill/restart sequences
// that do not alternate in time order, overlapping spikes, duplicate poison
// ids, and rates outside [0, 1]. Shard indices and tenant names are
// validated against the actual topology by BlazeCluster::SetChaosPlan.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "blaze/service.h"

namespace s2fa::blaze {

struct ChaosKill {
  std::size_t shard = 0;
  double at_us = 0;
};

struct ChaosRestart {
  std::size_t shard = 0;
  double at_us = 0;
};

// A replica-invocation fault window, optionally scoped to one shard
// (nullopt = every shard). Drives MakeBurstFaultInjector.
struct ChaosBurst {
  FaultBurst window;
  std::optional<std::size_t> shard;
};

// Dispatches started inside [start, start + duration) take factor times as
// long (models interconnect congestion; factor > 1).
struct ChaosSpike {
  double factor = 1.0;
  double start_us = 0;
  double duration_us = 0;
};

// `requests` synthetic requests from `tenant`, evenly spaced over
// [start, start + duration). The cluster materializes them through its
// flood generator.
struct ChaosFlood {
  std::string tenant;
  double start_us = 0;
  double duration_us = 0;
  std::size_t requests = 0;
};

struct ChaosPlan {
  std::vector<ChaosKill> kills;
  std::vector<ChaosRestart> restarts;
  std::vector<ChaosBurst> bursts;
  std::vector<ChaosSpike> spikes;
  std::vector<ChaosFlood> floods;
  std::vector<std::size_t> poison_ids;  // sorted, unique
  double poison_rate = 0;               // hash-sampled fraction in [0, 1]
  std::uint64_t poison_seed = 0xC4A05;

  bool Empty() const {
    return kills.empty() && restarts.empty() && bursts.empty() &&
           spikes.empty() && floods.empty() && poison_ids.empty() &&
           poison_rate <= 0;
  }
};

// Parses the grammar above; throws MalformedInput on any violation. An
// empty/whitespace-only string parses to an empty plan.
ChaosPlan ParseChaosPlan(const std::string& text);

// Structural validation shared by the parser and programmatically built
// plans: per-shard kill/restart alternation in time order, burst/spike
// window overlap, spike factor/duration sanity, sorted-unique poison ids,
// rate in [0, 1]. Throws MalformedInput. ChaosPlan is a public struct, so
// BlazeCluster::SetChaosPlan re-runs this rather than trusting that the
// plan came from ParseChaosPlan — a hand-built plan with, say, a restart
// before its kill fails fast instead of installing inverted dead windows.
void ValidateChaosPlan(const ChaosPlan& plan);

// Whether `request_id` is poisoned under `plan` (explicit id or hash roll).
// Stateless, so the verdict is identical across exec-thread counts.
bool IsPoisoned(const ChaosPlan& plan, std::size_t request_id);

// The latency multiplier for a dispatch starting at `t_us` (1.0 outside
// every spike window).
double SpikeFactorAt(const ChaosPlan& plan, double t_us);

// The fault-burst injector scoped to `shard` (its own windows plus the
// unscoped ones); nullptr when none apply.
AccelFaultInjector MakeShardBurstInjector(const ChaosPlan& plan,
                                          std::size_t shard);

}  // namespace s2fa::blaze
