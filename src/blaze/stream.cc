#include "blaze/stream.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <limits>
#include <queue>

#include "obs/obs.h"
#include "support/error.h"
#include "support/logging.h"

namespace s2fa::blaze {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double QuantileNearestRank(std::vector<double> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  double rank = std::ceil(q * static_cast<double>(samples.size())) - 1;
  auto index = static_cast<std::size_t>(std::max(0.0, rank));
  return samples[std::min(index, samples.size() - 1)];
}

// Cursor parser over one whitespace-stripped statement, the chaos-plan
// idiom: every helper throws MalformedInput with the offending statement
// attached.
class StmtParser {
 public:
  explicit StmtParser(std::string stmt) : stmt_(std::move(stmt)) {}

  bool ConsumePrefix(std::string_view prefix) {
    if (stmt_.compare(pos_, prefix.size(), prefix) != 0) return false;
    pos_ += prefix.size();
    return true;
  }

  void Expect(char c) {
    if (pos_ >= stmt_.size() || stmt_[pos_] != c) {
      Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  void ExpectEnd() {
    if (pos_ < stmt_.size()) Fail("trailing junk");
  }

  std::size_t ParseIndex() {
    const std::size_t begin = pos_;
    while (pos_ < stmt_.size() && std::isdigit(Char(pos_))) ++pos_;
    std::size_t value = 0;
    const char* first = stmt_.data() + begin;
    const char* last = stmt_.data() + pos_;
    auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last || begin == pos_) {
      Fail("expected a non-negative integer");
    }
    return value;
  }

  double ParseNumber() {
    const std::size_t begin = pos_;
    while (pos_ < stmt_.size() &&
           (std::isdigit(Char(pos_)) || stmt_[pos_] == '.' ||
            stmt_[pos_] == 'e' || stmt_[pos_] == 'E' ||
            ((stmt_[pos_] == '+' || stmt_[pos_] == '-') && pos_ > begin &&
             (stmt_[pos_ - 1] == 'e' || stmt_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    if (begin == pos_) Fail("expected a number");
    const std::string digits = stmt_.substr(begin, pos_ - begin);
    try {
      std::size_t used = 0;
      const double value = std::stod(digits, &used);
      if (used != digits.size()) Fail("bad number '" + digits + "'");
      return value;
    } catch (const std::exception&) {
      Fail("bad number '" + digits + "'");
    }
    return 0;  // unreachable
  }

  // NUMBER ['us' | 'ms' | 's'] -> microseconds.
  double ParseTimeUs() {
    double value = ParseNumber();
    if (ConsumePrefix("us")) {
      // microseconds: the default
    } else if (ConsumePrefix("ms")) {
      value *= 1e3;
    } else if (pos_ < stmt_.size() && stmt_[pos_] == 's') {
      ++pos_;
      value *= 1e6;
    }
    if (value < 0 || !std::isfinite(value)) Fail("time must be >= 0");
    return value;
  }

  std::string ParseName() {
    const std::size_t begin = pos_;
    while (pos_ < stmt_.size() &&
           (std::isalnum(Char(pos_)) || stmt_[pos_] == '_' ||
            stmt_[pos_] == '-')) {
      ++pos_;
    }
    if (begin == pos_) Fail("expected a name");
    return stmt_.substr(begin, pos_ - begin);
  }

  [[noreturn]] void Fail(const std::string& why) const {
    throw MalformedInput("arrival schedule: " + why + " in '" + stmt_ + "'");
  }

 private:
  unsigned char Char(std::size_t i) const {
    return static_cast<unsigned char>(stmt_[i]);
  }

  std::string stmt_;
  std::size_t pos_ = 0;
};

void ParseArrivalDirective(const std::string& stmt, ArrivalSchedule& out) {
  StmtParser p(stmt);
  if (!p.ConsumePrefix("arrive")) p.Fail("unknown directive");
  ArrivalPhase phase;
  phase.tenant = p.ParseName();
  p.Expect('@');
  phase.start_us = p.ParseTimeUs();
  p.Expect('+');
  phase.duration_us = p.ParseTimeUs();
  if (phase.duration_us <= 0) p.Fail("phase duration must be > 0");
  p.Expect('x');
  phase.count = p.ParseIndex();
  if (phase.count == 0) p.Fail("record count must be >= 1");
  p.ExpectEnd();
  out.phases.push_back(std::move(phase));
}

}  // namespace

const char* StreamOutcomeName(StreamOutcome outcome) {
  switch (outcome) {
    case StreamOutcome::kCommitted: return "committed";
    case StreamOutcome::kCommittedHost: return "committed-host";
    case StreamOutcome::kShedUnmeetable: return "shed-unmeetable";
    case StreamOutcome::kShedBrownout: return "shed-brownout";
    case StreamOutcome::kShedRetryBudget: return "shed-retry-budget";
    case StreamOutcome::kShedQueueFull: return "shed-queue-full";
  }
  S2FA_UNREACHABLE("bad stream outcome");
}

ArrivalSchedule ParseArrivalSchedule(const std::string& text) {
  ArrivalSchedule schedule;
  std::string stmt;
  auto flush = [&schedule, &stmt] {
    if (!stmt.empty()) {
      ParseArrivalDirective(stmt, schedule);
      stmt.clear();
    }
  };
  for (char c : text) {
    if (c == ';' || c == '\n') {
      flush();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      stmt.push_back(c);
    }
  }
  flush();
  ValidateArrivalSchedule(schedule);
  return schedule;
}

void ValidateArrivalSchedule(const ArrivalSchedule& schedule) {
  if (schedule.phases.empty()) {
    throw MalformedInput("arrival schedule: no phases");
  }
  for (const ArrivalPhase& phase : schedule.phases) {
    if (phase.tenant.empty()) {
      throw MalformedInput("arrival schedule: phase needs a tenant");
    }
    if (phase.start_us < 0 || !std::isfinite(phase.start_us)) {
      throw MalformedInput("arrival schedule: phase start must be >= 0");
    }
    if (phase.duration_us <= 0 || !std::isfinite(phase.duration_us)) {
      throw MalformedInput("arrival schedule: phase duration must be > 0");
    }
    if (phase.count == 0) {
      throw MalformedInput("arrival schedule: record count must be >= 1");
    }
  }
}

double StreamStats::LatencyQuantile(double q) const {
  S2FA_REQUIRE(q >= 0 && q <= 1.0, "quantile must be in [0, 1]");
  return QuantileNearestRank(latencies_us, q);
}

StreamSession::StreamSession(BlazeCluster& cluster, StreamOptions options)
    : cluster_(cluster),
      options_(std::move(options)),
      budget_(options_.retry_budget) {
  S2FA_REQUIRE(options_.batch_max_records >= 1,
               "batch_max_records must be >= 1");
  S2FA_REQUIRE(options_.batch_age_us > 0, "batch_age_us must be > 0");
  S2FA_REQUIRE(options_.slo_us > 0, "slo_us must be > 0");
  S2FA_REQUIRE(options_.deadline_headroom_us >= 0,
               "deadline_headroom_us must be >= 0");
  S2FA_REQUIRE(options_.codel_target_us > 0, "codel_target_us must be > 0");
  S2FA_REQUIRE(options_.codel_interval_us > 0,
               "codel_interval_us must be > 0");
  S2FA_REQUIRE(options_.brownout_onset_us > 0 &&
                   options_.brownout_onset_us <= options_.shed_onset_us,
               "brownout_onset_us must be in (0, shed_onset_us]");
  S2FA_REQUIRE(options_.brownout_max_fraction > 0 &&
                   options_.brownout_max_fraction <= 1.0,
               "brownout_max_fraction must be in (0, 1]");
  S2FA_REQUIRE(options_.retry_backoff_us > 0,
               "retry_backoff_us must be > 0");
  S2FA_REQUIRE(!options_.cluster_tenant.empty(),
               "cluster_tenant must be non-empty");
  S2FA_REQUIRE(options_.fifo_bound_us >= 0, "fifo_bound_us must be >= 0");
}

std::vector<StreamRecordOutcome> StreamSession::Run(
    const ArrivalSchedule& schedule, const StreamGenerator& generator) {
  S2FA_REQUIRE(!ran_, "StreamSession is single-shot: build a new one");
  ran_ = true;
  S2FA_REQUIRE(generator, "stream generator required");
  ValidateArrivalSchedule(schedule);
  S2FA_SPAN("blaze.stream.run");

  // ---- materialize the schedule: seq = global arrival order
  struct Rec {
    std::string tenant;
    double arrival_us = 0;
    StreamRecord content;      // filled at first arrival
    std::size_t retries = 0;
    bool arrived = false;
    bool terminal = false;
    StreamOutcome outcome = StreamOutcome::kShedQueueFull;
    double terminal_us = 0;
    Dataset output;
  };
  std::vector<Rec> recs;
  {
    struct Slot {
      double at_us;
      std::size_t phase;
      std::size_t index;
    };
    std::vector<Slot> slots;
    for (std::size_t p = 0; p < schedule.phases.size(); ++p) {
      const ArrivalPhase& phase = schedule.phases[p];
      for (std::size_t i = 0; i < phase.count; ++i) {
        const double at =
            phase.start_us + phase.duration_us * static_cast<double>(i) /
                                 static_cast<double>(phase.count);
        slots.push_back({at, p, i});
      }
    }
    std::stable_sort(slots.begin(), slots.end(),
                     [](const Slot& a, const Slot& b) {
                       return a.at_us < b.at_us;
                     });
    recs.resize(slots.size());
    for (std::size_t seq = 0; seq < slots.size(); ++seq) {
      recs[seq].tenant = schedule.phases[slots[seq].phase].tenant;
      recs[seq].arrival_us = slots[seq].at_us;
    }
  }

  // ---- session event loop
  enum EventKind { kArrival = 0, kTimer = 1 };
  struct Event {
    double time_us;
    int kind;
    std::size_t order;  // push order: the deterministic tie-break
    std::size_t payload;
  };
  auto later = [](const Event& a, const Event& b) {
    if (a.time_us != b.time_us) return a.time_us > b.time_us;
    if (a.kind != b.kind) return a.kind > b.kind;
    return a.order > b.order;
  };
  std::priority_queue<Event, std::vector<Event>, decltype(later)> events(
      later);
  std::size_t event_order = 0;
  auto push_event = [&](double at, int kind, std::size_t payload) {
    events.push({at, kind, event_order++, payload});
  };
  for (std::size_t seq = 0; seq < recs.size(); ++seq) {
    push_event(recs[seq].arrival_us, kArrival, seq);
  }

  enum class CloseTrigger { kCount, kAge, kDeadline };
  using Key = std::pair<std::string, const Dataset*>;
  struct Batch {
    std::vector<std::size_t> members;  // rec indices, arrival order
    std::size_t records = 0;
    std::size_t generation = 0;
    double earliest_close_us = kInf;  // earliest timer pushed so far
  };
  std::map<Key, Batch> open;
  struct Timer {
    Key key;
    std::size_t generation;
    CloseTrigger trigger;
  };
  std::vector<Timer> timers;
  std::size_t generation_counter = 0;

  // ---- capacity model: modeled accelerator backlog over live lanes.
  // Measured queue delay at t is how far the modeled accelerator horizon
  // is ahead of now; chaos kills shrink live lanes and so grow the cost
  // of each dispatched batch.
  double accel_finish_us = 0;
  auto lanes_at = [&](double t) {
    return std::max<std::size_t>(1, cluster_.LiveLanesAt(t));
  };
  auto delay_at = [&](double t) {
    return std::max(0.0, accel_finish_us - t);
  };

  // CoDel state: delay above target continuously since `above_since`.
  double codel_above_since = -1;
  bool codel_engaged = false;
  auto observe_delay = [&](double t) {
    const double delay = delay_at(t);
    stats_.max_queue_delay_us = std::max(stats_.max_queue_delay_us, delay);
    S2FA_OBSERVE("blaze.stream.queue_delay_us", delay);
    if (delay > options_.codel_target_us) {
      if (codel_above_since < 0) codel_above_since = t;
      const bool now_engaged =
          t - codel_above_since >= options_.codel_interval_us;
      if (now_engaged && !codel_engaged) {
        ++stats_.codel_engagements;
        S2FA_COUNT("blaze.stream.codel_engagements", 1);
      }
      codel_engaged = now_engaged;
    } else {
      codel_above_since = -1;
      codel_engaged = false;
    }
    return delay;
  };

  // Brownout host capacity is modeled as one host lane with its own
  // backlog horizon: the host is a pressure-relief valve, not a second
  // cluster, and it saturates (host_slowdown is ~25x) — once a
  // host-routed batch could no longer meet the SLO, brownout stops
  // absorbing and the ladder escalates to full shed.
  double host_finish_us = 0;
  double brownout_credit = 0;
  const double fifo_bound_us = options_.fifo_bound_us > 0
                                   ? options_.fifo_bound_us
                                   : options_.shed_onset_us;

  // Batches submitted to the cluster, in submission order.
  struct PendingBatch {
    std::vector<std::size_t> members;
    double close_us = 0;
  };
  std::vector<PendingBatch> pending;
  std::vector<ClusterRequest> requests;

  auto terminal = [&](std::size_t seq, StreamOutcome outcome, double t) {
    Rec& rec = recs[seq];
    S2FA_CHECK(!rec.terminal, "record " << seq << " terminated twice");
    rec.terminal = true;
    rec.outcome = outcome;
    rec.terminal_us = t;
  };

  auto slice_outputs = [&](const std::vector<std::size_t>& members,
                           const Dataset& output, bool reduce) {
    if (reduce) {
      S2FA_CHECK(members.size() == 1, "reduce batches never coalesce");
      recs[members.front()].output = output;
      return;
    }
    std::size_t row = 0;
    for (std::size_t seq : members) {
      const std::size_t count = recs[seq].content.input.num_records();
      recs[seq].output = SliceRecords(output, row, count);
      row += count;
    }
  };

  // Executes a batch on the host path (brownout level 3): functionally
  // real through the runtime, completing after the host-path charge. Host
  // work does not occupy modeled accelerator lanes.
  auto host_route = [&](const Key& key, Batch& batch, double t) {
    std::vector<const Dataset*> inputs;
    inputs.reserve(batch.members.size());
    for (std::size_t seq : batch.members) {
      inputs.push_back(&recs[seq].content.input);
    }
    const Dataset input = ConcatDatasets(inputs);
    const bool reduce = cluster_.IsReduceKernel(key.first);
    const std::string& accel = cluster_.ExecAccelFor(key.first);
    const Dataset out =
        reduce ? cluster_.runtime().Reduce(accel, input, key.second)
               : cluster_.runtime().Map(accel, input, key.second);
    const double done = std::max(host_finish_us, t) +
                        cluster_.HostUsFor(key.first, batch.records);
    host_finish_us = done;
    slice_outputs(batch.members, out, reduce);
    for (std::size_t seq : batch.members) {
      terminal(seq, StreamOutcome::kCommittedHost, done);
    }
    ++stats_.batches_host;
    S2FA_COUNT("blaze.stream.batches_host", 1);
  };

  auto dispatch_to_cluster = [&](const Key& key, Batch& batch, double t) {
    const double cost =
        cluster_.AccelUsFor(key.first, batch.records) /
        static_cast<double>(lanes_at(t));
    accel_finish_us = std::max(accel_finish_us, t) + cost;
    std::vector<const Dataset*> inputs;
    inputs.reserve(batch.members.size());
    for (std::size_t seq : batch.members) {
      inputs.push_back(&recs[seq].content.input);
    }
    ClusterRequest request;
    request.kernel = key.first;
    request.input = ConcatDatasets(inputs);
    request.broadcast = key.second;
    request.arrival_us = t;
    request.tenant = options_.cluster_tenant;
    requests.push_back(std::move(request));
    pending.push_back({batch.members, t});
    ++stats_.batches_dispatched;
    S2FA_COUNT("blaze.stream.batches_dispatched", 1);
  };

  // Full-shed (ladder level 4): each member either retries on a granted
  // token or lands in a terminal shed state.
  auto full_shed = [&](Batch& batch, double t) {
    for (std::size_t seq : batch.members) {
      Rec& rec = recs[seq];
      if (rec.retries >= options_.max_retries) {
        terminal(seq, StreamOutcome::kShedBrownout, t);
      } else if (budget_.TryAcquire(rec.tenant, t)) {
        ++rec.retries;
        ++stats_.retries_granted;
        S2FA_COUNT("blaze.stream.retries_granted", 1);
        push_event(t + options_.retry_backoff_us, kArrival, seq);
      } else {
        ++stats_.retries_denied;
        S2FA_COUNT("blaze.stream.retries_denied", 1);
        terminal(seq, StreamOutcome::kShedRetryBudget, t);
      }
    }
    ++stats_.batches_shed;
    S2FA_COUNT("blaze.stream.batches_shed", 1);
  };

  auto close_batch = [&](const Key& key, Batch batch, double t,
                         CloseTrigger trigger) {
    ++stats_.batches_closed;
    S2FA_COUNT("blaze.stream.batches_closed", 1);
    switch (trigger) {
      case CloseTrigger::kCount: ++stats_.close_count; break;
      case CloseTrigger::kAge: ++stats_.close_age; break;
      case CloseTrigger::kDeadline: ++stats_.close_deadline; break;
    }
    const double delay = observe_delay(t);

    if (options_.policy == OverloadPolicy::kFifoShed) {
      // The strawman never sheds at close (it tail-dropped at arrival).
      dispatch_to_cluster(key, batch, t);
      return;
    }

    if (delay >= options_.shed_onset_us) {
      full_shed(batch, t);
      return;
    }

    // CoDel (level 1): under sustained standing delay, shed exactly the
    // members whose SLO deadline can no longer be met — the modeled
    // completion t + delay + cost is already past arrival + slo.
    if (codel_engaged) {
      const double cost = cluster_.AccelUsFor(key.first, batch.records) /
                          static_cast<double>(lanes_at(t));
      std::vector<std::size_t> kept;
      for (std::size_t seq : batch.members) {
        Rec& rec = recs[seq];
        if (rec.arrival_us + options_.slo_us < t + delay + cost) {
          terminal(seq, StreamOutcome::kShedUnmeetable, t);
        } else {
          kept.push_back(seq);
        }
      }
      if (kept.size() != batch.members.size()) {
        batch.records = 0;
        for (std::size_t seq : kept) {
          batch.records += recs[seq].content.input.num_records();
        }
        batch.members = std::move(kept);
        if (batch.members.empty()) return;
      }
    }

    // Brownout (level 3): between onset and full shed, a linearly ramping
    // fraction of batches — never more than brownout_max_fraction, so the
    // degradation stays controlled — routes to the host path via a
    // deterministic credit accumulator, and only while the host lane
    // could still meet the oldest member's SLO. A saturated host (or an
    // exhausted cap) stops absorbing, so the ladder escalates to full
    // shed instead of hiding overload in an ever-growing host queue.
    if (delay >= options_.brownout_onset_us) {
      const double span =
          std::max(1e-9, options_.shed_onset_us - options_.brownout_onset_us);
      const double fraction = std::min(
          options_.brownout_max_fraction,
          (delay - options_.brownout_onset_us) / span);
      brownout_credit = std::min(4.0, brownout_credit + fraction);
      if (brownout_credit >= 1.0) {
        const double host_done =
            std::max(host_finish_us, t) +
            cluster_.HostUsFor(key.first, batch.records);
        double oldest_deadline = kInf;
        for (std::size_t seq : batch.members) {
          oldest_deadline = std::min(
              oldest_deadline, recs[seq].arrival_us + options_.slo_us);
        }
        if (host_done <= oldest_deadline) {
          brownout_credit -= 1.0;
          host_route(key, batch, t);
          return;
        }
      }
    }

    dispatch_to_cluster(key, batch, t);
  };

  // Closes via timer index; stale generations are no-ops.
  auto fire_timer = [&](std::size_t index, double t) {
    const Timer timer = timers[index];
    auto it = open.find(timer.key);
    if (it == open.end() || it->second.generation != timer.generation) {
      return;
    }
    Batch batch = std::move(it->second);
    open.erase(it);
    close_batch(timer.key, std::move(batch), t, timer.trigger);
  };

  auto arm_timer = [&](const Key& key, Batch& batch, double at,
                       CloseTrigger trigger, double now) {
    const double effective = std::max(now, at);
    if (effective >= batch.earliest_close_us) return;
    batch.earliest_close_us = effective;
    timers.push_back({key, batch.generation, trigger});
    push_event(effective, kTimer, timers.size() - 1);
  };

  auto on_arrival = [&](std::size_t seq, double t) {
    Rec& rec = recs[seq];
    if (!rec.arrived) {
      rec.arrived = true;
      rec.content = generator(seq);
      S2FA_REQUIRE(rec.content.input.num_records() > 0,
                   "stream record " << seq << " has no records");
      ++stats_.arrivals;
      S2FA_COUNT("blaze.stream.arrivals", 1);
    }
    const double delay = observe_delay(t);
    if (options_.policy == OverloadPolicy::kFifoShed &&
        delay > fifo_bound_us) {
      // Naive overload control: the queue is long, drop the newest.
      terminal(seq, StreamOutcome::kShedQueueFull, t);
      return;
    }
    const Key key{rec.content.kernel, rec.content.broadcast};
    const std::size_t cap = cluster_.IsReduceKernel(rec.content.kernel)
                                ? 1
                                : options_.batch_max_records;
    Batch& batch = open[key];
    if (batch.members.empty()) {
      batch.generation = ++generation_counter;
      batch.earliest_close_us = kInf;
      arm_timer(key, batch, t + options_.batch_age_us, CloseTrigger::kAge,
                t);
    }
    batch.members.push_back(seq);
    batch.records += rec.content.input.num_records();
    arm_timer(key, batch,
              rec.arrival_us + options_.slo_us - options_.deadline_headroom_us,
              CloseTrigger::kDeadline, t);
    if (batch.members.size() >= cap) {
      Batch closing = std::move(batch);
      open.erase(key);
      close_batch(key, std::move(closing), t, CloseTrigger::kCount);
    }
  };

  while (!events.empty()) {
    const Event event = events.top();
    events.pop();
    if (event.kind == kArrival) {
      on_arrival(event.payload, event.time_us);
    } else {
      fire_timer(event.payload, event.time_us);
    }
  }
  S2FA_CHECK(open.empty(), "open batches survived the event loop");

  // ---- one drain: the cluster serves every surviving batch to
  // completion on the shared simulated clock (chaos and all).
  for (ClusterRequest& request : requests) {
    cluster_.Submit(std::move(request));
  }
  requests.clear();
  const std::vector<ClusterRequestOutcome> outs = cluster_.Drain();
  S2FA_CHECK(outs.size() == pending.size(),
             "cluster drain returned " << outs.size() << " outcomes for "
                                       << pending.size() << " batches");
  for (std::size_t b = 0; b < pending.size(); ++b) {
    const ClusterRequestOutcome& out = outs[b];
    const std::vector<std::size_t>& members = pending[b].members;
    if (out.outcome == ClusterServe::kRejectedFull ||
        out.outcome == ClusterServe::kTenantThrottled) {
      // The session is supposed to own admission; a cluster-side shed
      // means its queue/quota knobs are too tight for this schedule.
      S2FA_LOG_WARN("stream batch shed at cluster admission ("
                    << ClusterServeName(out.outcome)
                    << "): raise queue capacity");
      for (std::size_t seq : members) {
        terminal(seq, StreamOutcome::kShedQueueFull, pending[b].close_us);
      }
      continue;
    }
    const bool reduce = cluster_.IsReduceKernel(recs[members.front()]
                                                    .content.kernel);
    slice_outputs(members, out.output, reduce);
    for (std::size_t seq : members) {
      terminal(seq, StreamOutcome::kCommitted, out.complete_us);
    }
  }

  // ---- watermark accounting: external commit order is arrival order.
  // A record's visible commit waits for every earlier record to reach a
  // terminal state (commit or accounted shed), so the watermark never
  // regresses and nothing is lost or double-counted.
  std::vector<StreamRecordOutcome> outcomes;
  outcomes.reserve(recs.size());
  stats_.watermark_trace.reserve(recs.size());
  double watermark = 0;
  for (std::size_t seq = 0; seq < recs.size(); ++seq) {
    Rec& rec = recs[seq];
    S2FA_CHECK(rec.terminal, "record " << seq << " never terminated");
    watermark = std::max(watermark, rec.terminal_us);
    stats_.watermark_trace.emplace_back(seq, watermark);

    StreamRecordOutcome out;
    out.seq = seq;
    out.tenant = rec.tenant;
    out.outcome = rec.outcome;
    out.retries = rec.retries;
    out.arrival_us = rec.arrival_us;
    out.terminal_us = rec.terminal_us;
    out.external_commit_us = watermark;

    StreamTenantStats& ts = stats_.tenants[rec.tenant];
    ++ts.arrivals;
    ts.retries += rec.retries;
    switch (rec.outcome) {
      case StreamOutcome::kCommitted:
        ++stats_.committed;
        ++ts.committed;
        break;
      case StreamOutcome::kCommittedHost:
        ++stats_.committed_host;
        ++ts.committed_host;
        break;
      case StreamOutcome::kShedUnmeetable:
        ++stats_.shed_unmeetable;
        ++ts.shed_unmeetable;
        break;
      case StreamOutcome::kShedBrownout:
        ++stats_.shed_brownout;
        ++ts.shed_brownout;
        break;
      case StreamOutcome::kShedRetryBudget:
        ++stats_.shed_retry_budget;
        ++ts.shed_retry_budget;
        break;
      case StreamOutcome::kShedQueueFull:
        ++stats_.shed_queue_full;
        ++ts.shed_queue_full;
        break;
    }
    if (!IsStreamShed(rec.outcome)) {
      out.latency_us = watermark - rec.arrival_us;
      stats_.latencies_us.push_back(out.latency_us);
      S2FA_OBSERVE("blaze.stream.latency_us", out.latency_us);
      out.output = std::move(rec.output);
    } else {
      S2FA_COUNT("blaze.stream.shed", 1);
    }
    outcomes.push_back(std::move(out));
  }
  stats_.watermark_us = watermark;
  S2FA_GAUGE_MAX("blaze.stream.watermark_us", watermark);
  S2FA_CHECK(stats_.committed + stats_.committed_host +
                     stats_.shed_total() ==
                 recs.size(),
             "stream accounting mismatch");
  return outcomes;
}

}  // namespace s2fa::blaze
