// StreamSession: SLO-bound micro-batching streaming mode over BlazeCluster.
//
// Batch replay pre-stages every request; streaming is the datacenter
// scenario S2FA actually targets — records arrive continuously per a
// rate-programmed schedule, and the system must stay correct and within
// SLO while saturated. The session layers three mechanisms over the
// cluster, all on the shared simulated clock:
//
//   * deterministic arrivals — an ArrivalSchedule (same statement grammar
//     as the chaos plan's flood: `arrive <tenant> @ <start> + <duration>
//     x <count>`) materializes records at evenly spaced simulated times, so
//     a run is a pure function of (schedule, generator, options) and
//     composes with a concurrent chaos plan on the cluster (kills, spikes,
//     floods mid-stream);
//
//   * SLO-bound micro-batches with watermark draining — records buffer by
//     (kernel, broadcast) and the batch closes on the first of three
//     triggers: record count (`batch_max_records`), age
//     (`batch_age_us`), or deadline (the oldest member is within
//     `deadline_headroom_us` of its SLO deadline). Reduce kernels never
//     batch across records. Draining is watermark-style: a record's
//     *external* commit time is held to max(own completion, every
//     earlier-arriving record's terminal time) — a batch only becomes
//     visible once everything before it has committed or been accountably
//     shed, so zero-lost accounting holds under kills mid-stream and the
//     watermark never regresses;
//
//   * a deterministic overload-control ladder, driven by measured queue
//     delay from a capacity model (modeled accelerator backlog over live
//     lanes — kills shrink capacity), engaging in threshold order:
//       (1) CoDel-style queue management — when delay has exceeded
//           `codel_target_us` continuously for `codel_interval_us`,
//           closing batches shed the members whose SLO deadline is
//           already unmeetable (kShedUnmeetable) instead of FIFO-shedding
//           the newest;
//       (2) per-tenant retry budgets — full-shed records may retry, but
//           retries draw from a refill-rate token bucket
//           (resilience::RetryBudget), so a retry storm cannot amplify
//           overload; a denied token is kShedRetryBudget;
//       (3) brownout degradation — between `brownout_onset_us` and
//           `shed_onset_us` a credit accumulator routes a controlled,
//           linearly ramping fraction of batches (capped at
//           `brownout_max_fraction`) to the host path, trading latency
//           for a bounded shed rate. The host is modeled as one lane with
//           its own backlog horizon: once a host-routed batch could no
//           longer meet its SLO the valve closes and the ladder escalates
//           instead of hiding overload in a host queue;
//       (4) full shed — past `shed_onset_us` closing batches are shed
//           outright; records out of retries are kShedBrownout. Every
//           record lands in exactly one terminal state (checked).
//
// The naive comparison arm (OverloadPolicy::kFifoShed) tail-drops the
// newest arrival whenever modeled delay exceeds `fifo_bound_us` — the
// strawman the ladder must beat on goodput at 2x load (bench_stream).
//
// Determinism: the session is a sequential event loop (heap ordered by
// (time, kind, seq)); it submits surviving batches and performs ONE
// cluster Drain — the cluster is bit-identical across exec_threads, and
// everything else here is sequential, so stream outcomes are too.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "blaze/cluster.h"
#include "resilience/budget.h"

namespace s2fa::blaze {

// How one streamed record ended. Exactly one of these per record.
enum class StreamOutcome {
  kCommitted,        // served through the cluster (any cluster path)
  kCommittedHost,    // brownout: session routed its batch to the host path
  kShedUnmeetable,   // CoDel: SLO deadline already unmeetable at close
  kShedBrownout,     // full-shed past shed_onset with retries exhausted
  kShedRetryBudget,  // full-shed and the tenant's retry bucket was empty
  kShedQueueFull,    // FIFO arm tail-drop (or a cluster admission shed)
};
const char* StreamOutcomeName(StreamOutcome outcome);
inline bool IsStreamShed(StreamOutcome o) {
  return o != StreamOutcome::kCommitted && o != StreamOutcome::kCommittedHost;
}

// Overload control: the ladder, or the naive tail-drop strawman.
enum class OverloadPolicy { kLadder, kFifoShed };

// One rate-programmed arrival phase: `count` records for `tenant`, evenly
// spaced over [start_us, start_us + duration_us). Phases may overlap
// (different tenants streaming concurrently).
struct ArrivalPhase {
  std::string tenant = "default";
  double start_us = 0;
  double duration_us = 0;
  std::size_t count = 0;
};

struct ArrivalSchedule {
  std::vector<ArrivalPhase> phases;
};

// Parses the arrival-schedule grammar — statements separated by ';' or
// newlines, chaos-plan style (the flood directive's shape):
//
//   arrive <tenant> @ <start> + <duration> x <count>
//
// with the chaos time suffixes (us/ms/s). Throws MalformedInput naming
// the offending statement. ValidateArrivalSchedule enforces count >= 1
// and duration > 0 on programmatically built schedules too.
ArrivalSchedule ParseArrivalSchedule(const std::string& text);
void ValidateArrivalSchedule(const ArrivalSchedule& schedule);

struct StreamOptions {
  // Micro-batch close triggers.
  std::size_t batch_max_records = 8;   // close on buffered record count
  double batch_age_us = 500;           // close when the batch is this old
  double slo_us = 20000;               // per-record deadline from arrival
  double deadline_headroom_us = 2000;  // close when oldest is this close
                                       // to its SLO deadline

  // Overload ladder thresholds on measured queue delay.
  double codel_target_us = 2000;    // CoDel: tolerable standing delay
  double codel_interval_us = 4000;  // ... sustained this long to engage
  double brownout_onset_us = 3000;  // host-fraction ramp starts
  double shed_onset_us = 8000;      // full shed past this
  // Brownout routes at most this fraction of closing batches to the host
  // path — degradation stays controlled, so overload beyond what a bounded
  // brownout can absorb escalates to full shed instead of hiding in the
  // host lane. Must be in (0, 1].
  double brownout_max_fraction = 0.5;

  // Retry policy for full-shed records.
  std::size_t max_retries = 1;      // re-enqueues per record
  double retry_backoff_us = 200;    // re-arrival delay
  resilience::RetryBudgetOptions retry_budget;  // per-tenant token bucket

  OverloadPolicy policy = OverloadPolicy::kLadder;
  // FIFO arm: tail-drop arrivals when modeled delay exceeds this. 0 means
  // "use shed_onset_us" so the two arms shed at comparable pressure.
  double fifo_bound_us = 0;

  // Cluster tenant all stream batches are submitted under (stream-level
  // tenancy is accounted per record by the session itself).
  std::string cluster_tenant = "stream";
};

struct StreamRecord {
  std::string kernel;
  Dataset input;
  // Must outlive the session run; batches only form across records
  // sharing the same broadcast pointer.
  const Dataset* broadcast = nullptr;
};

// Supplies record content by global arrival ordinal (the flood-generator
// idiom): deterministic, so the whole run replays bit-identically.
using StreamGenerator = std::function<StreamRecord(std::size_t ordinal)>;

struct StreamRecordOutcome {
  std::size_t seq = 0;  // global arrival order
  std::string tenant;
  StreamOutcome outcome = StreamOutcome::kShedQueueFull;
  std::size_t retries = 0;        // re-enqueues this record consumed
  double arrival_us = 0;          // first (original) arrival
  double terminal_us = 0;         // own completion or shed time
  double external_commit_us = 0;  // watermark-gated visible commit/shed
  double latency_us = 0;          // external - arrival (0 for shed)
  Dataset output;                 // empty for shed records
};

struct StreamTenantStats {
  std::size_t arrivals = 0;
  std::size_t committed = 0;
  std::size_t committed_host = 0;
  std::size_t shed_unmeetable = 0;
  std::size_t shed_brownout = 0;
  std::size_t shed_retry_budget = 0;
  std::size_t shed_queue_full = 0;
  std::size_t retries = 0;  // granted re-enqueues
};

struct StreamStats {
  std::size_t arrivals = 0;
  std::size_t committed = 0;        // via the cluster
  std::size_t committed_host = 0;   // brownout host path
  std::size_t shed_unmeetable = 0;
  std::size_t shed_brownout = 0;
  std::size_t shed_retry_budget = 0;
  std::size_t shed_queue_full = 0;
  std::size_t retries_granted = 0;
  std::size_t retries_denied = 0;

  std::size_t batches_closed = 0;      // by any trigger
  std::size_t batches_dispatched = 0;  // submitted to the cluster
  std::size_t batches_host = 0;        // brownout host-routed
  std::size_t batches_shed = 0;        // full-shed at close
  std::size_t close_count = 0;     // trigger breakdown: record count
  std::size_t close_age = 0;       // ... batch age
  std::size_t close_deadline = 0;  // ... SLO headroom
  std::size_t codel_engagements = 0;  // below->above transitions that fired

  double max_queue_delay_us = 0;  // modeled backlog delay high-water
  double watermark_us = 0;        // final external watermark

  // External (watermark-gated) latency of committed records, seq order.
  std::vector<double> latencies_us;
  // (seq, external_commit_us) for every record, seq order — the
  // monotonicity gate checks this never regresses.
  std::vector<std::pair<std::size_t, double>> watermark_trace;
  std::map<std::string, StreamTenantStats> tenants;

  double LatencyQuantile(double q) const;
  std::size_t shed_total() const {
    return shed_unmeetable + shed_brownout + shed_retry_budget +
           shed_queue_full;
  }
};

class StreamSession {
 public:
  // The cluster supplies topology, chaos, and the drain; it must outlive
  // the session. The session owns overload control and accounting.
  StreamSession(BlazeCluster& cluster, StreamOptions options = {});

  // Streams the schedule to completion and returns one terminal outcome
  // per record in seq (arrival) order. Single-shot: a session runs once.
  std::vector<StreamRecordOutcome> Run(const ArrivalSchedule& schedule,
                                       const StreamGenerator& generator);

  const StreamStats& stats() const { return stats_; }

 private:
  BlazeCluster& cluster_;
  StreamOptions options_;
  resilience::RetryBudget budget_;
  StreamStats stats_;
  bool ran_ = false;
};

}  // namespace s2fa::blaze
