#include "blaze/serialization.h"

#include <sstream>

#include "support/error.h"
#include "support/strings.h"

namespace s2fa::blaze {

namespace {

// "in._1" -> "_1", "ret.ret" -> "ret".
std::string FieldOfSource(const std::string& source) {
  std::size_t dot = source.find('.');
  if (dot == std::string::npos) return source;
  return source.substr(dot + 1);
}

bool IsBroadcastSource(const std::string& source) {
  return source.rfind("bcast.", 0) == 0;
}

}  // namespace

const PlanEntry* SerializationPlan::FindBuffer(
    const std::string& buffer) const {
  for (const auto& e : entries) {
    if (e.buffer == buffer) return &e;
  }
  return nullptr;
}

SerializationPlan MakeSerializationPlan(const kir::Kernel& kernel) {
  kernel.Validate();
  SerializationPlan plan;
  plan.kernel_name = kernel.name;
  const kir::Stmt* task_loop =
      kir::FindLoop(kernel.body, kernel.task_loop_id);
  S2FA_REQUIRE(task_loop != nullptr,
               "kernel has no task loop; not a template-generated kernel");
  plan.batch = task_loop->trip_count();
  for (const auto& buf : kernel.buffers) {
    if (buf.kind == kir::BufferKind::kLocal) continue;
    PlanEntry entry;
    entry.buffer = buf.name;
    entry.source_field = FieldOfSource(buf.source_field);
    entry.element = buf.element;
    entry.per_task = buf.per_task > 0 ? buf.per_task : 1;
    entry.is_input = buf.kind == kir::BufferKind::kInput;
    entry.broadcast = entry.is_input && IsBroadcastSource(buf.source_field);
    // A reduce kernel's output buffer holds one result per invocation.
    entry.per_invocation = !entry.is_input && buf.length == entry.per_task &&
                           plan.batch > 1;
    plan.entries.push_back(std::move(entry));
  }
  S2FA_REQUIRE(!plan.entries.empty(), "kernel has no interface buffers");
  return plan;
}

void SerializeBatch(const SerializationPlan& plan, const Dataset& dataset,
                    std::size_t first_record, std::size_t count,
                    kir::BufferMap& buffers, const Dataset* broadcast) {
  S2FA_REQUIRE(count <= static_cast<std::size_t>(plan.batch),
               "batch overflow: " << count << " > " << plan.batch);
  S2FA_REQUIRE(first_record + count <= dataset.num_records(),
               "record range out of bounds");
  for (const auto& entry : plan.entries) {
    if (!entry.is_input) continue;
    if (entry.broadcast) {
      S2FA_REQUIRE(broadcast != nullptr,
                   "plan needs broadcast data for " << entry.source_field);
      const Column& bc = broadcast->ColumnByField(entry.source_field);
      S2FA_REQUIRE(bc.per_record == entry.per_task &&
                       broadcast->num_records() == 1,
                   "broadcast column " << entry.source_field
                                       << " has wrong shape");
      buffers[entry.buffer] = bc.data;
      continue;
    }
    const Column& col = dataset.ColumnByField(entry.source_field);
    S2FA_REQUIRE(col.per_record == entry.per_task,
                 "column " << entry.source_field << " has per_record "
                           << col.per_record << ", accelerator expects "
                           << entry.per_task);
    auto& buf = buffers[entry.buffer];
    buf.assign(static_cast<std::size_t>(plan.batch * entry.per_task),
               jvm::DefaultValue(entry.element));
    const std::size_t stride = static_cast<std::size_t>(entry.per_task);
    for (std::size_t r = 0; r < count; ++r) {
      for (std::size_t e = 0; e < stride; ++e) {
        buf[r * stride + e] = col.data[(first_record + r) * stride + e];
      }
    }
  }
}

void DeserializeBatch(const SerializationPlan& plan,
                      const kir::BufferMap& buffers,
                      std::size_t first_record, std::size_t count,
                      Dataset& out) {
  for (const auto& entry : plan.entries) {
    if (entry.is_input) continue;
    auto it = buffers.find(entry.buffer);
    S2FA_REQUIRE(it != buffers.end(),
                 "missing output buffer " << entry.buffer);
    Column& col = out.MutableColumnByField(entry.source_field);
    const std::size_t stride = static_cast<std::size_t>(entry.per_task);
    if (entry.per_invocation) {
      // Reduce result: a single record per invocation; store at
      // first_record (the runtime later combines invocation results).
      for (std::size_t e = 0; e < stride; ++e) {
        col.data[first_record * stride + e] = it->second[e];
      }
      continue;
    }
    for (std::size_t r = 0; r < count; ++r) {
      for (std::size_t e = 0; e < stride; ++e) {
        col.data[(first_record + r) * stride + e] =
            it->second[r * stride + e];
      }
    }
  }
}

Dataset MakeOutputShell(const SerializationPlan& plan,
                        std::size_t num_records) {
  Dataset out;
  for (const auto& entry : plan.entries) {
    if (entry.is_input) continue;
    Column col;
    col.field = entry.source_field;
    col.element = entry.element;
    col.per_record = entry.per_task;
    col.data.assign(num_records * static_cast<std::size_t>(entry.per_task),
                    jvm::DefaultValue(entry.element));
    out.AddColumn(std::move(col));
  }
  return out;
}

std::string RenderScalaHelper(const SerializationPlan& plan) {
  std::ostringstream oss;
  oss << "// Generated by the S2FA data processing method generator.\n"
      << "object " << plan.kernel_name << "Serde {\n";
  oss << "  def serialize(items: Array[AnyRef]): Map[String, Array[_]] = {\n"
      << "    val n = items.length\n";
  for (const auto& entry : plan.entries) {
    if (!entry.is_input) continue;
    oss << "    val " << entry.buffer << " = new Array["
        << entry.element.ToString() << "](n * " << entry.per_task << ")\n";
  }
  oss << "    for (i <- 0 until n) {\n"
      << "      val obj = items(i)\n";
  for (const auto& entry : plan.entries) {
    if (!entry.is_input) continue;
    oss << "      // field via reflection: obj.getClass.getField(\""
        << entry.source_field << "\")\n";
    if (entry.per_task == 1) {
      oss << "      " << entry.buffer << "(i) = reflectGet(obj, \""
          << entry.source_field << "\")\n";
    } else {
      oss << "      System.arraycopy(reflectGet(obj, \""
          << entry.source_field << "\"), 0, " << entry.buffer << ", i * "
          << entry.per_task << ", " << entry.per_task << ")\n";
    }
  }
  oss << "    }\n    Map(";
  bool first = true;
  for (const auto& entry : plan.entries) {
    if (!entry.is_input) continue;
    if (!first) oss << ", ";
    first = false;
    oss << "\"" << entry.buffer << "\" -> " << entry.buffer;
  }
  oss << ")\n  }\n";
  oss << "  def deserialize(bufs: Map[String, Array[_]], n: Int)"
      << ": Array[AnyRef] = {\n"
      << "    (0 until n).map { i =>\n      makeResult(";
  first = true;
  for (const auto& entry : plan.entries) {
    if (entry.is_input) continue;
    if (!first) oss << ", ";
    first = false;
    if (entry.per_task == 1) {
      oss << "bufs(\"" << entry.buffer << "\")(i)";
    } else {
      oss << "slice(bufs(\"" << entry.buffer << "\"), i * " << entry.per_task
          << ", " << entry.per_task << ")";
    }
  }
  oss << ")\n    }.toArray\n  }\n}\n";
  return oss.str();
}

}  // namespace s2fa::blaze
