#include "blaze/serialization.h"

#include <algorithm>
#include <sstream>

#include "support/error.h"
#include "support/strings.h"

namespace s2fa::blaze {

namespace {

// "in._1" -> "_1", "ret.ret" -> "ret".
std::string FieldOfSource(const std::string& source) {
  std::size_t dot = source.find('.');
  if (dot == std::string::npos) return source;
  return source.substr(dot + 1);
}

bool IsBroadcastSource(const std::string& source) {
  return source.rfind("bcast.", 0) == 0;
}

// Column-to-buffer element conversion for the narrowed-type fallback: a
// double column feeding a float buffer narrows like the generated C's
// buffer store would.
jvm::Value CoerceToElement(const jvm::Type& element, const jvm::Value& v) {
  auto to_double = [&]() -> double {
    if (v.is_int()) return v.AsInt();
    if (v.is_long()) return static_cast<double>(v.AsLong());
    if (v.is_float()) return v.AsFloat();
    return v.AsDouble();
  };
  auto to_long = [&]() -> std::int64_t {
    if (v.is_int()) return v.AsInt();
    if (v.is_long()) return v.AsLong();
    if (v.is_float()) return static_cast<std::int64_t>(v.AsFloat());
    return static_cast<std::int64_t>(v.AsDouble());
  };
  switch (element.kind()) {
    case jvm::TypeKind::kFloat:
      return jvm::Value::OfFloat(static_cast<float>(to_double()));
    case jvm::TypeKind::kDouble:
      return jvm::Value::OfDouble(to_double());
    case jvm::TypeKind::kLong:
      return jvm::Value::OfLong(to_long());
    default:
      return jvm::Value::OfInt(static_cast<std::int32_t>(to_long()));
  }
}

// True when `col` values can be block-copied into a buffer of `element`
// without per-element conversion.
bool SameElementKind(const jvm::Type& col, const jvm::Type& element) {
  return col.kind() == element.kind();
}

}  // namespace

const PlanEntry* SerializationPlan::FindBuffer(
    const std::string& buffer) const {
  for (const auto& e : entries) {
    if (e.buffer == buffer) return &e;
  }
  return nullptr;
}

SerializationPlan MakeSerializationPlan(const kir::Kernel& kernel) {
  kernel.Validate();
  SerializationPlan plan;
  plan.kernel_name = kernel.name;
  const kir::Stmt* task_loop =
      kir::FindLoop(kernel.body, kernel.task_loop_id);
  S2FA_REQUIRE(task_loop != nullptr,
               "kernel has no task loop; not a template-generated kernel");
  plan.batch = task_loop->trip_count();
  for (const auto& buf : kernel.buffers) {
    if (buf.kind == kir::BufferKind::kLocal) continue;
    PlanEntry entry;
    entry.buffer = buf.name;
    entry.source_field = FieldOfSource(buf.source_field);
    entry.element = buf.element;
    entry.per_task = buf.per_task > 0 ? buf.per_task : 1;
    entry.is_input = buf.kind == kir::BufferKind::kInput;
    entry.broadcast = entry.is_input && IsBroadcastSource(buf.source_field);
    // A reduce kernel's output buffer holds one result per invocation.
    // Classified from the kernel's pattern, not the batch size: a reduce
    // kernel instantiated with task-loop trip count 1 is still a reduce
    // (the old `batch > 1` heuristic misfiled it as a map output).
    entry.per_invocation = !entry.is_input &&
                           kernel.pattern == kir::ParallelPattern::kReduce &&
                           buf.length == entry.per_task;
    plan.entries.push_back(std::move(entry));
  }
  S2FA_REQUIRE(!plan.entries.empty(), "kernel has no interface buffers");
  return plan;
}

void SerializeBatch(const SerializationPlan& plan, const Dataset& dataset,
                    std::size_t first_record, std::size_t count,
                    kir::BufferMap& buffers, const Dataset* broadcast) {
  S2FA_REQUIRE(count <= static_cast<std::size_t>(plan.batch),
               "batch overflow: " << count << " > " << plan.batch);
  S2FA_REQUIRE(first_record + count <= dataset.num_records(),
               "record range out of bounds");
  for (const auto& entry : plan.entries) {
    if (!entry.is_input) continue;
    if (entry.broadcast) {
      S2FA_REQUIRE(broadcast != nullptr,
                   "plan needs broadcast data for " << entry.source_field);
      const Column& bc = broadcast->ColumnByField(entry.source_field);
      S2FA_REQUIRE(bc.per_record == entry.per_task &&
                       broadcast->num_records() == 1,
                   "broadcast column " << entry.source_field
                                       << " has wrong shape");
      buffers[entry.buffer] = bc.data;
      continue;
    }
    const Column& col = dataset.ColumnByField(entry.source_field);
    S2FA_REQUIRE(col.per_record == entry.per_task,
                 "column " << entry.source_field << " has per_record "
                           << col.per_record << ", accelerator expects "
                           << entry.per_task);
    auto& buf = buffers[entry.buffer];
    const std::size_t stride = static_cast<std::size_t>(entry.per_task);
    const std::size_t total = static_cast<std::size_t>(plan.batch) * stride;
    const std::size_t used = count * stride;
    buf.resize(total);
    const jvm::Value* src = col.data.data() + first_record * stride;
    if (SameElementKind(col.element, entry.element)) {
      // Zero-copy fast path: the record range is one contiguous slice of
      // the column (records are `stride` consecutive elements), and Value
      // is trivially copyable, so the whole batch is a single block copy.
      std::copy_n(src, used, buf.data());
    } else {
      // Narrowed-type fallback: per-element conversion to the buffer's
      // element kind.
      for (std::size_t e = 0; e < used; ++e) {
        buf[e] = CoerceToElement(entry.element, src[e]);
      }
    }
    // Short final batches are zero-padded to the full batch size.
    std::fill(buf.begin() + static_cast<std::ptrdiff_t>(used), buf.end(),
              jvm::DefaultValue(entry.element));
  }
}

void DeserializeBatch(const SerializationPlan& plan,
                      const kir::BufferMap& buffers,
                      std::size_t first_record, std::size_t count,
                      Dataset& out) {
  for (const auto& entry : plan.entries) {
    if (entry.is_input) continue;
    auto it = buffers.find(entry.buffer);
    S2FA_REQUIRE(it != buffers.end(),
                 "missing output buffer " << entry.buffer);
    Column& col = out.MutableColumnByField(entry.source_field);
    const std::size_t stride = static_cast<std::size_t>(entry.per_task);
    const std::vector<jvm::Value>& buf = it->second;
    if (entry.per_invocation) {
      // Reduce result: a single record per invocation; store at
      // first_record (the runtime later combines invocation results).
      S2FA_REQUIRE(buf.size() >= stride,
                   "output buffer " << entry.buffer << " too small");
      std::copy_n(buf.data(), stride,
                  col.data.data() + first_record * stride);
      continue;
    }
    const std::size_t used = count * stride;
    S2FA_REQUIRE(buf.size() >= used,
                 "output buffer " << entry.buffer << " too small");
    if (SameElementKind(entry.element, col.element)) {
      // Zero-copy fast path (mirror of SerializeBatch).
      std::copy_n(buf.data(), used,
                  col.data.data() + first_record * stride);
    } else {
      jvm::Value* dst = col.data.data() + first_record * stride;
      for (std::size_t e = 0; e < used; ++e) {
        dst[e] = CoerceToElement(col.element, buf[e]);
      }
    }
  }
}

Dataset MakeOutputShell(const SerializationPlan& plan,
                        std::size_t num_records) {
  Dataset out;
  for (const auto& entry : plan.entries) {
    if (entry.is_input) continue;
    Column col;
    col.field = entry.source_field;
    col.element = entry.element;
    col.per_record = entry.per_task;
    col.data.assign(num_records * static_cast<std::size_t>(entry.per_task),
                    jvm::DefaultValue(entry.element));
    out.AddColumn(std::move(col));
  }
  return out;
}

std::string RenderScalaHelper(const SerializationPlan& plan) {
  std::ostringstream oss;
  oss << "// Generated by the S2FA data processing method generator.\n"
      << "object " << plan.kernel_name << "Serde {\n";
  oss << "  def serialize(items: Array[AnyRef]): Map[String, Array[_]] = {\n"
      << "    val n = items.length\n";
  for (const auto& entry : plan.entries) {
    if (!entry.is_input) continue;
    oss << "    val " << entry.buffer << " = new Array["
        << entry.element.ToString() << "](n * " << entry.per_task << ")\n";
  }
  oss << "    for (i <- 0 until n) {\n"
      << "      val obj = items(i)\n";
  for (const auto& entry : plan.entries) {
    if (!entry.is_input) continue;
    oss << "      // field via reflection: obj.getClass.getField(\""
        << entry.source_field << "\")\n";
    if (entry.per_task == 1) {
      oss << "      " << entry.buffer << "(i) = reflectGet(obj, \""
          << entry.source_field << "\")\n";
    } else {
      oss << "      System.arraycopy(reflectGet(obj, \""
          << entry.source_field << "\"), 0, " << entry.buffer << ", i * "
          << entry.per_task << ", " << entry.per_task << ")\n";
    }
  }
  oss << "    }\n    Map(";
  bool first = true;
  for (const auto& entry : plan.entries) {
    if (!entry.is_input) continue;
    if (!first) oss << ", ";
    first = false;
    oss << "\"" << entry.buffer << "\" -> " << entry.buffer;
  }
  oss << ")\n  }\n";
  oss << "  def deserialize(bufs: Map[String, Array[_]], n: Int)"
      << ": Array[AnyRef] = {\n"
      << "    (0 until n).map { i =>\n      makeResult(";
  first = true;
  for (const auto& entry : plan.entries) {
    if (entry.is_input) continue;
    if (!first) oss << ", ";
    first = false;
    if (entry.per_task == 1) {
      oss << "bufs(\"" << entry.buffer << "\")(i)";
    } else {
      oss << "slice(bufs(\"" << entry.buffer << "\"), i * " << entry.per_task
          << ", " << entry.per_task << ")";
    }
  }
  oss << ")\n    }.toArray\n  }\n}\n";
  return oss.str();
}

}  // namespace s2fa::blaze
