// Column-oriented record datasets: the RDD stand-in.
//
// A Dataset holds N records of a flattened composite type: one column per
// flattened field, each record contributing `per_record` consecutive
// elements (1 for scalar fields). This mirrors what Blaze ships across the
// JVM/FPGA boundary after (de)serialization, and lets the runtime slice
// batches without touching a JVM heap.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "jvm/value.h"

namespace s2fa::blaze {

struct Column {
  std::string field;             // source field name, e.g. "_1"
  jvm::Type element;             // primitive element type
  std::int64_t per_record = 1;   // elements per record
  std::vector<jvm::Value> data;  // num_records * per_record values
};

class Dataset {
 public:
  Dataset() = default;

  // Adds a column; all columns must agree on the record count.
  void AddColumn(Column column);

  std::size_t num_records() const { return num_records_; }
  std::size_t num_columns() const { return columns_.size(); }

  const Column& column(std::size_t index) const;
  // Finds by field name; throws InvalidArgument if absent.
  const Column& ColumnByField(const std::string& field) const;
  Column& MutableColumnByField(const std::string& field);
  bool HasField(const std::string& field) const;

  // Total payload bytes across all columns.
  double TotalBytes() const;

 private:
  std::vector<Column> columns_;
  std::size_t num_records_ = 0;
  bool has_columns_ = false;
};

// Concatenates datasets column-wise into one batch. All members must share
// a schema (the serving layers batch by kernel, so a mismatch is a caller
// bug worth failing loudly on).
Dataset ConcatDatasets(const std::vector<const Dataset*>& inputs);

// Slices `count` records starting at `begin` out of a batch result.
Dataset SliceRecords(const Dataset& data, std::size_t begin,
                     std::size_t count);

}  // namespace s2fa::blaze
