#include "blaze/chaos.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <map>

#include "resilience/fault.h"
#include "support/error.h"

namespace s2fa::blaze {

namespace {

// Cursor parser over one whitespace-stripped statement. Every helper
// throws MalformedInput with the offending statement attached, so a typo
// in a schedule fails the whole plan load instead of silently injecting a
// different fault mix.
class StmtParser {
 public:
  explicit StmtParser(std::string stmt) : stmt_(std::move(stmt)) {}

  bool ConsumePrefix(std::string_view prefix) {
    if (stmt_.compare(pos_, prefix.size(), prefix) != 0) return false;
    pos_ += prefix.size();
    return true;
  }

  void Expect(char c) {
    if (pos_ >= stmt_.size() || stmt_[pos_] != c) {
      Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool Consume(char c) {
    if (pos_ < stmt_.size() && stmt_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AtEnd() const { return pos_ >= stmt_.size(); }

  void ExpectEnd() {
    if (!AtEnd()) Fail("trailing junk");
  }

  std::size_t ParseIndex() {
    const std::size_t begin = pos_;
    while (pos_ < stmt_.size() && std::isdigit(Char(pos_))) ++pos_;
    std::size_t value = 0;
    const char* first = stmt_.data() + begin;
    const char* last = stmt_.data() + pos_;
    auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last || begin == pos_) {
      Fail("expected a non-negative integer");
    }
    return value;
  }

  double ParseNumber() {
    const std::size_t begin = pos_;
    while (pos_ < stmt_.size() &&
           (std::isdigit(Char(pos_)) || stmt_[pos_] == '.' ||
            stmt_[pos_] == 'e' || stmt_[pos_] == 'E' ||
            ((stmt_[pos_] == '+' || stmt_[pos_] == '-') && pos_ > begin &&
             (stmt_[pos_ - 1] == 'e' || stmt_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    if (begin == pos_) Fail("expected a number");
    const std::string digits = stmt_.substr(begin, pos_ - begin);
    try {
      std::size_t used = 0;
      const double value = std::stod(digits, &used);
      if (used != digits.size()) Fail("bad number '" + digits + "'");
      return value;
    } catch (const std::exception&) {
      Fail("bad number '" + digits + "'");
    }
    return 0;  // unreachable
  }

  // NUMBER ['us' | 'ms' | 's'] -> microseconds.
  double ParseTimeUs() {
    double value = ParseNumber();
    if (ConsumePrefix("us")) {
      // microseconds: the default
    } else if (ConsumePrefix("ms")) {
      value *= 1e3;
    } else if (Consume('s')) {
      value *= 1e6;
    }
    if (value < 0 || !std::isfinite(value)) Fail("time must be >= 0");
    return value;
  }

  // Tenant / identifier: [A-Za-z0-9_-]+ not starting a reserved char.
  std::string ParseName() {
    const std::size_t begin = pos_;
    while (pos_ < stmt_.size() &&
           (std::isalnum(Char(pos_)) || stmt_[pos_] == '_' ||
            stmt_[pos_] == '-')) {
      ++pos_;
    }
    if (begin == pos_) Fail("expected a name");
    return stmt_.substr(begin, pos_ - begin);
  }

  [[noreturn]] void Fail(const std::string& why) const {
    throw MalformedInput("chaos plan: " + why + " in '" + stmt_ + "'");
  }

 private:
  unsigned char Char(std::size_t i) const {
    return static_cast<unsigned char>(stmt_[i]);
  }

  std::string stmt_;
  std::size_t pos_ = 0;
};

// Kill/restart schedules per shard must alternate kill, restart, kill, ...
// in strictly increasing time order or "dead at t" is ambiguous.
void ValidateLifecycle(const ChaosPlan& plan) {
  std::map<std::size_t, std::vector<std::pair<double, bool>>> events;
  for (const ChaosKill& kill : plan.kills) {
    events[kill.shard].emplace_back(kill.at_us, true);
  }
  for (const ChaosRestart& restart : plan.restarts) {
    events[restart.shard].emplace_back(restart.at_us, false);
  }
  for (auto& [shard, timeline] : events) {
    std::sort(timeline.begin(), timeline.end());
    for (std::size_t i = 0; i < timeline.size(); ++i) {
      if (i > 0 && timeline[i].first == timeline[i - 1].first) {
        throw MalformedInput(
            "chaos plan: shard " + std::to_string(shard) +
            " has two lifecycle events at t=" +
            std::to_string(timeline[i].first) + "us");
      }
      const bool want_kill = i % 2 == 0;
      if (timeline[i].second != want_kill) {
        throw MalformedInput(
            "chaos plan: shard " + std::to_string(shard) +
            " lifecycle must alternate kill/restart in time order (event " +
            std::to_string(i) + " at t=" +
            std::to_string(timeline[i].first) + "us is a " +
            (timeline[i].second ? "kill" : "restart") + ")");
      }
    }
  }
}

void ValidateBursts(const ChaosPlan& plan) {
  // Per-target overlap: an unscoped burst applies to every shard, so it
  // conflicts with any scoped window it overlaps too.
  auto overlaps = [](const FaultBurst& a, const FaultBurst& b) {
    return a.start < b.start + b.length && b.start < a.start + a.length;
  };
  for (std::size_t i = 0; i < plan.bursts.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.bursts.size(); ++j) {
      const ChaosBurst& a = plan.bursts[i];
      const ChaosBurst& b = plan.bursts[j];
      const bool same_target =
          !a.shard || !b.shard || *a.shard == *b.shard;
      if (same_target && overlaps(a.window, b.window)) {
        throw MalformedInput(
            "chaos plan: fault bursts [" + std::to_string(a.window.start) +
            ":" + std::to_string(a.window.length) + ") and [" +
            std::to_string(b.window.start) + ":" +
            std::to_string(b.window.length) +
            ") overlap on the same target");
      }
    }
  }
}

void ValidateSpikes(const ChaosPlan& plan) {
  std::vector<std::pair<double, double>> windows;
  for (const ChaosSpike& spike : plan.spikes) {
    if (spike.factor <= 1.0 || !std::isfinite(spike.factor)) {
      throw MalformedInput("chaos plan: spike factor must be > 1 and finite");
    }
    if (spike.duration_us <= 0 || !std::isfinite(spike.duration_us)) {
      throw MalformedInput("chaos plan: spike duration must be > 0");
    }
    windows.emplace_back(spike.start_us, spike.start_us + spike.duration_us);
  }
  std::sort(windows.begin(), windows.end());
  for (std::size_t i = 1; i < windows.size(); ++i) {
    if (windows[i].first < windows[i - 1].second) {
      throw MalformedInput(
          "chaos plan: latency spikes overlap (their composition would be "
          "order-dependent)");
    }
  }
}

void ParseDirective(const std::string& stmt, ChaosPlan& plan) {
  StmtParser p(stmt);
  // Longest verb first: "poison-rate" shares the "poison" prefix.
  if (p.ConsumePrefix("poison-rate")) {
    const double rate = p.ParseNumber();
    if (rate < 0 || rate > 1.0) p.Fail("poison rate must be in [0, 1]");
    if (plan.poison_rate > 0) p.Fail("duplicate poison-rate directive");
    plan.poison_rate = rate;
    if (p.Consume('/')) {
      plan.poison_seed = static_cast<std::uint64_t>(p.ParseIndex());
    }
    p.ExpectEnd();
  } else if (p.ConsumePrefix("poison")) {
    do {
      plan.poison_ids.push_back(p.ParseIndex());
    } while (p.Consume(','));
    p.ExpectEnd();
  } else if (p.ConsumePrefix("kill")) {
    ChaosKill kill;
    kill.shard = p.ParseIndex();
    p.Expect('@');
    kill.at_us = p.ParseTimeUs();
    p.ExpectEnd();
    plan.kills.push_back(kill);
  } else if (p.ConsumePrefix("restart")) {
    ChaosRestart restart;
    restart.shard = p.ParseIndex();
    p.Expect('@');
    restart.at_us = p.ParseTimeUs();
    p.ExpectEnd();
    plan.restarts.push_back(restart);
  } else if (p.ConsumePrefix("burst")) {
    ChaosBurst burst;
    burst.window.start = p.ParseIndex();
    p.Expect(':');
    burst.window.length = p.ParseIndex();
    if (burst.window.length == 0) p.Fail("burst length must be >= 1");
    if (p.Consume('@')) burst.shard = p.ParseIndex();
    p.ExpectEnd();
    plan.bursts.push_back(burst);
  } else if (p.ConsumePrefix("spike")) {
    ChaosSpike spike;
    spike.factor = p.ParseNumber();
    if (spike.factor <= 1.0 || !std::isfinite(spike.factor)) {
      p.Fail("spike factor must be > 1");
    }
    p.Expect('@');
    spike.start_us = p.ParseTimeUs();
    p.Expect('+');
    spike.duration_us = p.ParseTimeUs();
    if (spike.duration_us <= 0) p.Fail("spike duration must be > 0");
    p.ExpectEnd();
    plan.spikes.push_back(spike);
  } else if (p.ConsumePrefix("flood")) {
    ChaosFlood flood;
    flood.tenant = p.ParseName();
    p.Expect('@');
    flood.start_us = p.ParseTimeUs();
    p.Expect('+');
    flood.duration_us = p.ParseTimeUs();
    p.Expect('x');
    flood.requests = p.ParseIndex();
    if (flood.requests == 0) p.Fail("flood request count must be >= 1");
    p.ExpectEnd();
    plan.floods.push_back(flood);
  } else {
    p.Fail("unknown directive");
  }
}

}  // namespace

ChaosPlan ParseChaosPlan(const std::string& text) {
  ChaosPlan plan;
  std::string stmt;
  auto flush = [&plan, &stmt] {
    if (!stmt.empty()) {
      ParseDirective(stmt, plan);
      stmt.clear();
    }
  };
  for (char c : text) {
    if (c == ';' || c == '\n') {
      flush();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      stmt.push_back(c);
    }
  }
  flush();

  std::sort(plan.poison_ids.begin(), plan.poison_ids.end());
  ValidateChaosPlan(plan);
  return plan;
}

void ValidateChaosPlan(const ChaosPlan& plan) {
  if (!std::is_sorted(plan.poison_ids.begin(), plan.poison_ids.end())) {
    throw MalformedInput("chaos plan: poison ids must be sorted");
  }
  if (std::adjacent_find(plan.poison_ids.begin(), plan.poison_ids.end()) !=
      plan.poison_ids.end()) {
    throw MalformedInput("chaos plan: duplicate poison request id");
  }
  if (plan.poison_rate < 0 || plan.poison_rate > 1.0 ||
      !std::isfinite(plan.poison_rate)) {
    throw MalformedInput("chaos plan: poison rate must be in [0, 1]");
  }
  for (const ChaosBurst& burst : plan.bursts) {
    if (burst.window.length == 0) {
      throw MalformedInput("chaos plan: burst length must be >= 1");
    }
  }
  for (const ChaosFlood& flood : plan.floods) {
    if (flood.requests == 0) {
      throw MalformedInput("chaos plan: flood request count must be >= 1");
    }
  }
  ValidateLifecycle(plan);
  ValidateBursts(plan);
  ValidateSpikes(plan);
}

bool IsPoisoned(const ChaosPlan& plan, std::size_t request_id) {
  if (std::binary_search(plan.poison_ids.begin(), plan.poison_ids.end(),
                         request_id)) {
    return true;
  }
  if (plan.poison_rate <= 0) return false;
  return resilience::detail::HashRoll(plan.poison_seed,
                                      "poison#" + std::to_string(request_id),
                                      0) < plan.poison_rate;
}

double SpikeFactorAt(const ChaosPlan& plan, double t_us) {
  for (const ChaosSpike& spike : plan.spikes) {
    if (t_us >= spike.start_us && t_us < spike.start_us + spike.duration_us) {
      return spike.factor;
    }
  }
  return 1.0;
}

AccelFaultInjector MakeShardBurstInjector(const ChaosPlan& plan,
                                          std::size_t shard) {
  std::vector<FaultBurst> windows;
  for (const ChaosBurst& burst : plan.bursts) {
    if (!burst.shard || *burst.shard == shard) {
      windows.push_back(burst.window);
    }
  }
  return MakeBurstFaultInjector(std::move(windows));
}

}  // namespace s2fa::blaze
