// The data-processing method generator (paper §3.2, Challenge 3).
//
// From a compiled kernel's interface (flat buffers with source-field
// provenance) it derives a SerializationPlan: which dataset column feeds
// which accelerator buffer and how records map to per-task regions. It
// also renders the equivalent Scala helper the real S2FA would generate
// (a template instantiated with reflection-driven field accessors) — kept
// as a documentation artifact and exercised by examples.
#pragma once

#include <string>
#include <vector>

#include "blaze/dataset.h"
#include "kir/eval.h"
#include "kir/kernel.h"

namespace s2fa::blaze {

struct PlanEntry {
  std::string buffer;        // kernel buffer name (in_1, out_2, ...)
  std::string source_field;  // dataset column field ("_1", "ret", ...)
  jvm::Type element;
  std::int64_t per_task = 1;
  bool is_input = true;
  // Reduce outputs carry one value per invocation instead of per task.
  bool per_invocation = false;
  // Broadcast inputs are shared by every task of an invocation and come
  // from a separate one-record broadcast dataset.
  bool broadcast = false;
};

struct SerializationPlan {
  std::string kernel_name;
  std::int64_t batch = 0;  // tasks per accelerator invocation
  std::vector<PlanEntry> entries;

  const PlanEntry* FindBuffer(const std::string& buffer) const;
};

// Builds the plan from the kernel's interface buffers. The buffer's
// source_field strings ("in._1" / "ret._1") are parsed into column names.
SerializationPlan MakeSerializationPlan(const kir::Kernel& kernel);

// Packs records [first_record, first_record + count) of `dataset` into the
// kernel input buffers. Short final batches are zero-padded to the batch
// size (the accelerator always processes a full batch). `broadcast` must be
// a one-record dataset providing every broadcast field the plan names (may
// be null when the plan has none).
void SerializeBatch(const SerializationPlan& plan, const Dataset& dataset,
                    std::size_t first_record, std::size_t count,
                    kir::BufferMap& buffers,
                    const Dataset* broadcast = nullptr);

// Unpacks output buffers into `out` columns at the same record range; the
// columns must exist and be pre-sized.
void DeserializeBatch(const SerializationPlan& plan,
                      const kir::BufferMap& buffers,
                      std::size_t first_record, std::size_t count,
                      Dataset& out);

// Creates an output dataset shell (right columns, default-filled) for
// `num_records` results of this plan.
Dataset MakeOutputShell(const SerializationPlan& plan,
                        std::size_t num_records);

// Renders the generated Scala (de)serialization methods (template +
// reflection form, as in the paper's method generator).
std::string RenderScalaHelper(const SerializationPlan& plan);

}  // namespace s2fa::blaze
