#include "merlin/transform.h"

#include <algorithm>

#include "kir/analysis.h"
#include "obs/obs.h"
#include "support/error.h"

namespace s2fa::merlin {

namespace {

using kir::Expr;
using kir::ExprPtr;
using kir::Stmt;
using kir::StmtPtr;

bool IsPowerOfTwo(int v) { return v > 0 && (v & (v - 1)) == 0; }

}  // namespace

std::vector<std::string> ValidateConfig(const kir::Kernel& kernel,
                                        const DesignConfig& config) {
  std::vector<std::string> errors;
  for (const auto& [id, cfg] : config.loops) {
    const Stmt* loop = kir::FindLoop(kernel.body, id);
    if (loop == nullptr) {
      errors.push_back("no loop with id " + std::to_string(id));
      continue;
    }
    const std::int64_t trip = loop->trip_count();
    if (cfg.tile < 1) {
      errors.push_back("L" + std::to_string(id) + ": tile factor " +
                       std::to_string(cfg.tile) + " < 1");
    } else if (cfg.tile > 1 &&
               (cfg.tile >= trip || trip % cfg.tile != 0)) {
      errors.push_back("L" + std::to_string(id) + ": tile factor " +
                       std::to_string(cfg.tile) +
                       " must divide the trip count " + std::to_string(trip) +
                       " and be smaller than it");
    }
    if (cfg.parallel < 1 || cfg.parallel > trip) {
      errors.push_back("L" + std::to_string(id) + ": parallel factor " +
                       std::to_string(cfg.parallel) + " outside [1, " +
                       std::to_string(trip) + "]");
    }
    if (cfg.tile > 1 && cfg.parallel > cfg.tile) {
      errors.push_back("L" + std::to_string(id) +
                       ": parallel factor exceeds the point-loop trip (tile "
                       "factor)");
    }
  }
  for (const auto& [name, bits] : config.buffer_bits) {
    const kir::Buffer* buf = kernel.FindBuffer(name);
    if (buf == nullptr) {
      errors.push_back("no buffer named " + name);
      continue;
    }
    if (buf->kind == kir::BufferKind::kLocal) {
      errors.push_back("buffer " + name +
                       " is on-chip; bit-width applies to interface buffers");
      continue;
    }
    if (!IsPowerOfTwo(bits) || bits < buf->element.bit_width() ||
        bits > 512) {
      errors.push_back("buffer " + name + ": bit-width " +
                       std::to_string(bits) +
                       " must be a power of two in [element width, 512]");
    }
  }
  return errors;
}

TransformResult ApplyDesign(const kir::Kernel& kernel,
                            const DesignConfig& config) {
  S2FA_SPAN("merlin.apply");
  S2FA_COUNT("merlin.applies", 1);
  S2FA_COUNT("merlin.factors_applied",
             static_cast<std::int64_t>(config.loops.size() +
                                       config.buffer_bits.size()));
  std::vector<std::string> violations = ValidateConfig(kernel, config);
  if (!violations.empty()) S2FA_COUNT("merlin.rejected_configs", 1);
  if (!violations.empty()) {
    throw InvalidArgument("illegal design config: " + violations.front() +
                          (violations.size() > 1
                               ? " (+" + std::to_string(violations.size() - 1) +
                                     " more)"
                               : ""));
  }

  TransformResult result;
  result.kernel = kernel.Clone();
  kir::Kernel& k = result.kernel;
  int next_loop_id = k.MaxLoopId() + 1;

  // Interface bit-widths.
  for (auto& buf : k.buffers) {
    auto it = config.buffer_bits.find(buf.name);
    if (it != config.buffer_bits.end()) {
      buf.interface_bits = it->second;
    } else if (buf.kind != kir::BufferKind::kLocal) {
      buf.interface_bits = buf.element.bit_width();  // area-conservative
    }
  }

  // Loop factors. Tiling first (it creates the point loops the parallel
  // factors land on), one original loop at a time.
  for (const auto& [id, cfg] : config.loops) {
    Stmt* loop = kir::FindLoop(k.body, id);
    S2FA_CHECK(loop != nullptr, "validated loop disappeared");
    Stmt* target = loop;  // loop receiving parallel pragma

    if (cfg.tile > 1) {
      const std::int64_t trip = loop->trip_count();
      const std::int64_t tiles = trip / cfg.tile;
      const std::string var = loop->loop_var();
      const std::string tile_var = var + "_t";
      const std::string point_var = var + "_p";
      // Re-derive the original index inside the body: v = v_t*tile + v_p.
      StmtPtr body = loop->body();
      auto derived = Expr::Binary(
          kir::BinaryOp::kAdd,
          Expr::Binary(kir::BinaryOp::kMul,
                       Expr::Var(tile_var, kir::Type::Int()),
                       Expr::IntLit(cfg.tile)),
          Expr::Var(point_var, kir::Type::Int()));
      kir::RewriteAllExprs(body, [&](const ExprPtr& e) {
        return kir::SubstituteVar(e, var, derived);
      });
      StmtPtr point_loop =
          Stmt::For(next_loop_id++, point_var, cfg.tile, body);
      point_loop->set_is_reduction(loop->is_reduction());
      point_loop->annotations()[kPragmaTile] =
          "point factor=" + std::to_string(cfg.tile);
      // The original Stmt object morphs into the tile loop (keeps id).
      Stmt tile_loop = *Stmt::For(loop->loop_id(), tile_var, tiles,
                                  Stmt::Block({point_loop}));
      tile_loop.set_inserted_by_template(loop->inserted_by_template());
      tile_loop.annotations()[kPragmaTile] =
          "factor=" + std::to_string(cfg.tile);
      *loop = tile_loop;
      target = point_loop.get();
    }

    if (cfg.parallel > 1) {
      target->annotations()[kPragmaParallel] =
          "factor=" + std::to_string(cfg.parallel);
    }
    if (cfg.pipeline != PipelineMode::kOff) {
      loop->annotations()[kPragmaPipeline] =
          cfg.pipeline == PipelineMode::kFlatten ? "flatten" : "";
    }
    if (target->is_reduction() &&
        (cfg.parallel > 1 || cfg.pipeline != PipelineMode::kOff)) {
      // Partial-sum tree (rotating accumulators when not unrolled) so the
      // reduction pipelines at II 1 instead of the add-chain latency.
      target->annotations()[kPragmaReduction] = "tree";
    }
  }

  // Flatten invalidation pass: every loop nested under a flattened loop is
  // fully unrolled; its own factors are overridden (Impediment 2).
  for (Stmt* loop : k.Loops()) {
    if (PipelineModeOf(*loop) != PipelineMode::kFlatten) continue;
    std::vector<Stmt*> descendants;
    kir::VisitStmt(loop->body(), std::function<void(Stmt&)>(
                                     [&](Stmt& s) {
                                       if (s.kind() == kir::StmtKind::kFor) {
                                         descendants.push_back(&s);
                                       }
                                     }));
    for (Stmt* sub : descendants) {
      const auto before = sub->annotations();
      sub->annotations()[kPragmaParallel] =
          "factor=" + std::to_string(sub->trip_count());
      sub->annotations().erase(kPragmaPipeline);
      if (sub->is_reduction()) {
        sub->annotations()[kPragmaReduction] = "tree";
      }
      if (before.count(kPragmaParallel) != 0 &&
          before.at(kPragmaParallel) !=
              sub->annotations().at(kPragmaParallel)) {
        result.notes.push_back(
            "L" + std::to_string(sub->loop_id()) +
            ": parallel factor overridden by flatten on ancestor L" +
            std::to_string(loop->loop_id()));
      }
    }
  }

  k.Validate();
  return result;
}

std::int64_t ParallelFactorOf(const kir::Stmt& loop) {
  auto it = loop.annotations().find(kPragmaParallel);
  if (it == loop.annotations().end()) return 1;
  const std::string& v = it->second;
  const std::string prefix = "factor=";
  std::size_t pos = v.find(prefix);
  S2FA_CHECK(pos != std::string::npos, "malformed parallel pragma: " << v);
  return std::stoll(v.substr(pos + prefix.size()));
}

PipelineMode PipelineModeOf(const kir::Stmt& loop) {
  auto it = loop.annotations().find(kPragmaPipeline);
  if (it == loop.annotations().end()) return PipelineMode::kOff;
  return it->second == "flatten" ? PipelineMode::kFlatten
                                 : PipelineMode::kOn;
}

bool HasTreeReduction(const kir::Stmt& loop) {
  auto it = loop.annotations().find(kPragmaReduction);
  return it != loop.annotations().end() && it->second == "tree";
}

}  // namespace s2fa::merlin
