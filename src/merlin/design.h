// Design point representation (paper Table 1).
//
// A DesignConfig assigns a value to every factor of the design space:
//   * per interface buffer: bit-width b = 2^n with 16 <= b <= 512;
//   * per loop: tiling factor, coarse/fine-grained parallel (unroll)
//     factor, and pipeline mode {off, on, flatten}.
// Loop factors are keyed by the loop ids of the *untransformed* kernel; the
// Merlin transform materializes them.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace s2fa::merlin {

enum class PipelineMode { kOff, kOn, kFlatten };

const char* PipelineModeName(PipelineMode mode);

struct LoopConfig {
  std::int64_t tile = 1;      // 1 = no tiling; otherwise divides trip count
  std::int64_t parallel = 1;  // unroll factor, 1..trip
  PipelineMode pipeline = PipelineMode::kOff;

  friend bool operator==(const LoopConfig&, const LoopConfig&) = default;
};

struct DesignConfig {
  std::map<int, LoopConfig> loops;            // by original loop id
  std::map<std::string, int> buffer_bits;     // interface buffer -> bits

  friend bool operator==(const DesignConfig&, const DesignConfig&) = default;

  std::string ToString() const;
};

// Annotation keys attached to transformed loops (printed as #pragma lines
// and consumed by the HLS estimator).
inline constexpr const char* kPragmaParallel = "ACCEL PARALLEL";
inline constexpr const char* kPragmaPipeline = "ACCEL PIPELINE";
inline constexpr const char* kPragmaTile = "ACCEL TILE";
inline constexpr const char* kPragmaReduction = "ACCEL REDUCTION";

}  // namespace s2fa::merlin
