// The Merlin code-transformation library (paper §3.2, [9][10]).
//
// Applies a DesignConfig to a kernel:
//   * loop tiling is a structural rewrite (L splits into a tile loop that
//     keeps L's id and a new point loop; body indices are re-derived), so
//     downstream consumers see real loops with real trip counts;
//   * parallel/pipeline/tree-reduction become pragma annotations consumed
//     by the HLS estimator — mirroring how the real Merlin compiler passes
//     directives to the vendor HLS;
//   * `flatten` pipelining marks every nested sub-loop fully unrolled,
//     which *invalidates* those loops' own factors (the paper's
//     Impediment 2);
//   * interface buffer bit-widths are recorded on the buffers.
//
// Transformed kernels remain functionally equivalent to their source —
// enforced by tests via the IR evaluator.
#pragma once

#include <string>
#include <vector>

#include "kir/kernel.h"
#include "merlin/design.h"

namespace s2fa::merlin {

struct TransformResult {
  kir::Kernel kernel;
  // Factors silently adjusted or ignored (e.g. sub-loop factors invalidated
  // by a flatten on an ancestor).
  std::vector<std::string> notes;
};

// Validates `config` against `kernel`'s loop/buffer inventory. Returns an
// empty vector when legal; otherwise one message per violation.
std::vector<std::string> ValidateConfig(const kir::Kernel& kernel,
                                        const DesignConfig& config);

// Applies the config. Throws InvalidArgument if ValidateConfig reports
// violations.
TransformResult ApplyDesign(const kir::Kernel& kernel,
                            const DesignConfig& config);

// --- annotation readers (used by the HLS estimator) ---

// Unroll factor of a transformed loop (1 when absent).
std::int64_t ParallelFactorOf(const kir::Stmt& loop);
// Pipeline mode of a transformed loop (kOff when absent).
PipelineMode PipelineModeOf(const kir::Stmt& loop);
// True if the loop's reduction is rewritten as a balanced tree.
bool HasTreeReduction(const kir::Stmt& loop);

}  // namespace s2fa::merlin
