#include "merlin/design.h"

#include <sstream>

#include "support/error.h"

namespace s2fa::merlin {

const char* PipelineModeName(PipelineMode mode) {
  switch (mode) {
    case PipelineMode::kOff: return "off";
    case PipelineMode::kOn: return "on";
    case PipelineMode::kFlatten: return "flatten";
  }
  S2FA_UNREACHABLE("bad pipeline mode");
}

std::string DesignConfig::ToString() const {
  std::ostringstream oss;
  oss << "{";
  bool first = true;
  for (const auto& [id, cfg] : loops) {
    if (!first) oss << ", ";
    first = false;
    oss << "L" << id << ": tile=" << cfg.tile << " par=" << cfg.parallel
        << " pipe=" << PipelineModeName(cfg.pipeline);
  }
  for (const auto& [name, bits] : buffer_bits) {
    if (!first) oss << ", ";
    first = false;
    oss << name << ": " << bits << "b";
  }
  oss << "}";
  return oss.str();
}

}  // namespace s2fa::merlin
