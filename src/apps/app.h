// The evaluation applications (paper §5, Table 2):
//   PR, KMeans, KNN, LR, SVM, LLS (machine learning / graph) and
//   AES, S-W (string processing).
//
// Each App bundles exactly what the paper's evaluation needs per kernel:
//   * the Scala lambda, authored as bytecode (the layer S2FA consumes),
//   * the flattening spec (tuple layout, per-task lengths, broadcasts),
//   * deterministic workload generators,
//   * a native C++ reference (golden results),
//   * the expert manual HLS design: a hand-picked configuration and — for
//     LR — a hand-restructured kernel (the paper's manual LR splits the
//     accumulation chain into stages, which is a source-level rewrite
//     outside the DSE's reach),
//   * JVM-baseline parameters (Spark per-record overhead; string apps get
//     a cost multiplier for the boxed-character overhead of Scala string
//     processing on JDK 1.7).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "b2c/spec.h"
#include "blaze/dataset.h"
#include "jvm/klass.h"
#include "kir/kernel.h"
#include "merlin/design.h"
#include "support/rng.h"

namespace s2fa::apps {

struct App {
  std::string name;        // Table-2 name, e.g. "KMeans"
  std::string type_label;  // "classification", "string proc.", ...

  std::shared_ptr<jvm::ClassPool> pool;
  b2c::KernelSpec spec;

  // Deterministic workload generation.
  std::function<blaze::Dataset(std::size_t records, Rng&)> make_input;
  // One-record broadcast dataset; null when the kernel has no broadcast.
  std::function<blaze::Dataset(Rng&)> make_broadcast;

  // Expert manual design.
  merlin::DesignConfig manual_config;
  // Optional hand-written kernel replacing the generated one for the
  // manual design (LR's staged accumulation). Receives the generated
  // kernel for interface reuse.
  std::function<kir::Kernel(const kir::Kernel& generated)> manual_kernel;

  // Native golden reference: outputs for (input, broadcast).
  std::function<blaze::Dataset(const blaze::Dataset& input,
                               const blaze::Dataset* broadcast)>
      reference;

  // Spark executor per-record overhead (iterator advance + lambda
  // dispatch + boxing), nanoseconds.
  double spark_record_overhead_ns = 90.0;
  // Multiplier on interpreted kernel cost (string apps: boxed chars).
  double jvm_cost_scale = 1.0;

  // Suggested record count for the benchmark harness.
  std::size_t bench_records = 4096;
};

// All eight evaluation apps in Table-2 order.
std::vector<App> AllApps();

App MakePageRank();
App MakeKMeans();
App MakeKnn();
App MakeLogisticRegression();
App MakeSvm();
App MakeLinearLeastSquares();
App MakeAes();
App MakeSmithWaterman();

// Looks up one app by Table-2 name; throws InvalidArgument if unknown.
App FindApp(const std::string& name);

// AES helper exposed for tests/examples: the broadcast dataset (round keys,
// S-box, ShiftRows map) for an explicit 16-byte key.
blaze::Dataset MakeAesBroadcast(const std::array<std::uint8_t, 16>& key);

}  // namespace s2fa::apps
