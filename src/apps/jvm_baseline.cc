#include "apps/jvm_baseline.h"

#include <functional>

#include "jvm/interpreter.h"
#include "support/error.h"

namespace s2fa::apps {

namespace {

using blaze::Column;
using blaze::Dataset;
using jvm::Heap;
using jvm::Ref;
using jvm::Type;
using jvm::Value;

// Allocates a heap array holding `count` elements of `col` starting at
// `offset`.
Ref MakeArray(Heap& heap, const Column& col, std::size_t offset,
              std::size_t count) {
  Ref ref = heap.NewArray(Type::Array(col.element), count);
  jvm::Object& obj = heap.Get(ref);
  for (std::size_t e = 0; e < count; ++e) {
    obj.slots[e] = col.data[offset + e];
  }
  return ref;
}

// Builds the JVM value for input field `f` (dotted path `path`) of
// record `r`. Composite fields recurse, building nested instances.
Value FieldValue(Heap& heap, const b2c::FieldSpec& f, const std::string& path,
                 const blaze::Dataset& input, const blaze::Dataset* broadcast,
                 std::size_t r, std::map<std::string, Value>& bcast_cache) {
  if (f.is_composite()) {
    Ref obj = heap.NewInstance(Type::Class(f.klass), f.members.size());
    for (std::size_t m = 0; m < f.members.size(); ++m) {
      heap.Get(obj).slots[m] =
          FieldValue(heap, f.members[m], path + "." + f.members[m].name,
                     input, broadcast, r, bcast_cache);
    }
    return Value::OfRef(obj);
  }
  if (f.broadcast) {
    auto it = bcast_cache.find(path);
    if (it != bcast_cache.end()) return it->second;
    S2FA_REQUIRE(broadcast != nullptr,
                 "app needs broadcast data for field " << path);
    const Column& col = broadcast->ColumnByField(path);
    Value v;
    if (f.is_array) {
      v = Value::OfRef(MakeArray(heap, col, 0, col.data.size()));
    } else {
      v = col.data.at(0);
    }
    bcast_cache.emplace(path, v);
    return v;
  }
  const Column& col = input.ColumnByField(path);
  const std::size_t stride = static_cast<std::size_t>(f.length);
  if (f.is_array) {
    return Value::OfRef(MakeArray(heap, col, r * stride, stride));
  }
  return col.data.at(r);
}

// Writes a map-kernel result into the output dataset at record r.
void StoreResult(Heap& heap, const b2c::IoSpec& out_spec, const Value& ret,
                 Dataset& output, std::size_t r) {
  std::function<void(const b2c::FieldSpec&, const std::string&, const Value&)>
      store_any;
  auto store_field = [&](const b2c::FieldSpec& f, const std::string& path,
                         const Value& v) {
    Column& col = output.MutableColumnByField(path);
    const std::size_t stride = static_cast<std::size_t>(f.length);
    if (f.is_array) {
      const jvm::Object& arr = heap.Get(v.AsRef());
      S2FA_REQUIRE(arr.slots.size() >= stride,
                   "returned array shorter than field " << f.name);
      for (std::size_t e = 0; e < stride; ++e) {
        col.data[r * stride + e] = arr.slots[e];
      }
    } else {
      col.data[r] = v;
    }
  };
  store_any = [&](const b2c::FieldSpec& f, const std::string& path,
                  const Value& v) {
    if (f.is_composite()) {
      const jvm::Object& obj = heap.Get(v.AsRef());
      S2FA_REQUIRE(obj.slots.size() == f.members.size(),
                   "nested object has wrong field count");
      for (std::size_t m = 0; m < f.members.size(); ++m) {
        store_any(f.members[m], path + "." + f.members[m].name,
                  obj.slots[m]);
      }
      return;
    }
    store_field(f, path, v);
  };
  if (out_spec.type.is_class()) {
    const jvm::Object& obj = heap.Get(ret.AsRef());
    S2FA_REQUIRE(obj.slots.size() == out_spec.fields.size(),
                 "returned object has wrong field count");
    for (std::size_t k = 0; k < out_spec.fields.size(); ++k) {
      store_any(out_spec.fields[k], out_spec.fields[k].name, obj.slots[k]);
    }
  } else {
    store_any(out_spec.fields[0], out_spec.fields[0].name, ret);
  }
}

Dataset MakeOutputShellFromSpec(const b2c::IoSpec& out_spec,
                                std::size_t records) {
  Dataset out;
  b2c::ForEachLeaf(out_spec.fields, "",
                   [&](const b2c::FieldSpec& f, const std::string& path) {
                     Column col;
                     col.field = path;
                     col.element = f.element;
                     col.per_record = f.length;
                     col.data.assign(
                         records * static_cast<std::size_t>(f.length),
                         jvm::DefaultValue(f.element));
                     out.AddColumn(std::move(col));
                   });
  return out;
}

}  // namespace

JvmRunResult RunOnJvm(const App& app, const blaze::Dataset& input,
                      const blaze::Dataset* broadcast) {
  const b2c::KernelSpec& spec = app.spec;
  const jvm::Method& method =
      app.pool->Get(spec.klass).GetMethod(spec.method);
  S2FA_REQUIRE(method.is_static,
               "JVM baseline expects static kernel methods");

  Heap heap;
  jvm::Interpreter interp(*app.pool, heap);
  std::map<std::string, Value> bcast_cache;

  JvmRunResult result;
  const bool is_reduce = spec.pattern == kir::ParallelPattern::kReduce;

  if (is_reduce) {
    // Zero-identity accumulator, updated record by record.
    std::vector<Value> acc_values;
    for (const auto& f : spec.output.fields) {
      acc_values.push_back(jvm::DefaultValue(f.element));
    }
    for (std::size_t r = 0; r < input.num_records(); ++r) {
      Value acc_arg;
      if (spec.output.type.is_class()) {
        Ref obj = heap.NewInstance(spec.output.type,
                                   spec.output.fields.size());
        for (std::size_t k = 0; k < acc_values.size(); ++k) {
          heap.Get(obj).slots[k] = acc_values[k];
        }
        acc_arg = Value::OfRef(obj);
      } else {
        acc_arg = acc_values[0];
      }
      Value elem;
      if (spec.input.type.is_class()) {
        Ref obj =
            heap.NewInstance(spec.input.type, spec.input.fields.size());
        for (std::size_t k = 0; k < spec.input.fields.size(); ++k) {
          heap.Get(obj).slots[k] =
              FieldValue(heap, spec.input.fields[k],
                         spec.input.fields[k].name, input, broadcast, r,
                         bcast_cache);
        }
        elem = Value::OfRef(obj);
      } else {
        elem = FieldValue(heap, spec.input.fields[0],
                          spec.input.fields[0].name, input, broadcast, r,
                          bcast_cache);
      }
      jvm::ExecResult exec =
          interp.Invoke(spec.klass, spec.method, {acc_arg, elem});
      result.total_ns += exec.cost_ns * app.jvm_cost_scale +
                         app.spark_record_overhead_ns;
      if (spec.output.type.is_class()) {
        const jvm::Object& obj = heap.Get(exec.ret.AsRef());
        for (std::size_t k = 0; k < acc_values.size(); ++k) {
          acc_values[k] = obj.slots[k];
        }
      } else {
        acc_values[0] = exec.ret;
      }
    }
    result.output = MakeOutputShellFromSpec(spec.output, 1);
    for (std::size_t k = 0; k < spec.output.fields.size(); ++k) {
      result.output.MutableColumnByField(spec.output.fields[k].name)
          .data[0] = acc_values[k];
    }
    return result;
  }

  result.output = MakeOutputShellFromSpec(spec.output, input.num_records());
  for (std::size_t r = 0; r < input.num_records(); ++r) {
    Value arg;
    if (spec.input.type.is_class()) {
      Ref obj = heap.NewInstance(spec.input.type, spec.input.fields.size());
      for (std::size_t k = 0; k < spec.input.fields.size(); ++k) {
        heap.Get(obj).slots[k] =
            FieldValue(heap, spec.input.fields[k],
                       spec.input.fields[k].name, input, broadcast, r,
                       bcast_cache);
      }
      arg = Value::OfRef(obj);
    } else {
      arg = FieldValue(heap, spec.input.fields[0],
                       spec.input.fields[0].name, input, broadcast, r,
                       bcast_cache);
    }
    jvm::ExecResult exec = interp.Invoke(spec.klass, spec.method, {arg});
    result.total_ns += exec.cost_ns * app.jvm_cost_scale +
                       app.spark_record_overhead_ns;
    StoreResult(heap, spec.output, exec.ret, result.output, r);
  }
  return result;
}

}  // namespace s2fa::apps
