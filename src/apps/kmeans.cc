// KMeans — classification.
//
// Per point: the index of the nearest of K centroids (Euclidean). The
// centroid table is broadcast once per invocation and cached on chip; with
// the point/centroid loops unrolled the design is BRAM-heavy (Table 2:
// KMeans has the largest BRAM footprint of the ML kernels).
#include "apps/detail.h"

namespace s2fa::apps {

namespace {

using namespace detail;

constexpr int kClusters = 16;
constexpr int kDims = 16;

void DefineKernel(jvm::ClassPool& pool) {
  jvm::Klass& in = pool.Define("KMPoint");
  in.AddField({"_1", Type::Array(Type::Float())});  // point
  in.AddField({"_2", Type::Array(Type::Float())});  // centroids (broadcast)

  Assembler a;
  // static int call(KMPoint in)
  // locals: 0=in, 1=p, 2=c, 3=best, 4=bestDist, 5=k, 6=dist, 7=d, 8=diff
  const Type fa = Type::Array(Type::Float());
  a.Load(Type::Class("KMPoint"), 0).GetField("KMPoint", "_1").Store(fa, 1);
  a.Load(Type::Class("KMPoint"), 0).GetField("KMPoint", "_2").Store(fa, 2);
  a.IConst(0).Store(Type::Int(), 3);
  a.FConst(3.0e38f).Store(Type::Float(), 4);
  EmitLoop(a, 5, kClusters, [&] {
    a.FConst(0.0f).Store(Type::Float(), 6);
    EmitLoop(a, 7, kDims, [&] {
      // diff = p[d] - c[k*kDims + d]
      a.Load(fa, 1).Load(Type::Int(), 7).ALoadElem(Type::Float());
      a.Load(fa, 2);
      a.Load(Type::Int(), 5).IConst(kDims).IMul().Load(Type::Int(), 7)
          .IAdd();
      a.ALoadElem(Type::Float());
      a.FSub().Store(Type::Float(), 8);
      a.Load(Type::Float(), 6);
      a.Load(Type::Float(), 8).Load(Type::Float(), 8).FMul();
      a.FAdd().Store(Type::Float(), 6);
    });
    // if (dist < bestDist) { bestDist = dist; best = k; }
    auto skip = a.NewLabel();
    a.Load(Type::Float(), 6).Load(Type::Float(), 4)
        .Cmp(Type::Float(), /*nan_is_less=*/false);
    a.If(Cond::kGe, skip);
    a.Load(Type::Float(), 6).Store(Type::Float(), 4);
    a.Load(Type::Int(), 5).Store(Type::Int(), 3);
    a.Bind(skip);
  });
  a.Load(Type::Int(), 3).Ret(Type::Int());

  MethodSignature sig;
  sig.params = {Type::Class("KMPoint")};
  sig.ret = Type::Int();
  pool.Define("KMeansKernel")
      .AddMethod(jvm::MakeMethod("call", sig, true, 9, a.Finish()));
}

}  // namespace

App MakeKMeans() {
  App app;
  app.name = "KMeans";
  app.type_label = "classification";
  app.pool = std::make_shared<jvm::ClassPool>();
  DefineKernel(*app.pool);

  app.spec.kernel_name = "kmeans_kernel";
  app.spec.klass = "KMeansKernel";
  app.spec.input.type = Type::Class("KMPoint");
  {
    b2c::FieldSpec point{"_1", Type::Float(), kDims, true};
    b2c::FieldSpec centroids{"_2", Type::Float(), kClusters * kDims, true};
    centroids.broadcast = true;
    app.spec.input.fields = {point, centroids};
  }
  app.spec.output.type = Type::Int();
  app.spec.output.fields = {{"cluster", Type::Int(), 1, false}};
  app.spec.batch = 1024;

  app.make_input = [](std::size_t records, Rng& rng) {
    std::vector<float> points;
    points.reserve(records * kDims);
    for (std::size_t n = 0; n < records * kDims; ++n) {
      points.push_back(static_cast<float>(rng.NextDouble(-1.0, 1.0)));
    }
    Dataset d;
    d.AddColumn(FloatColumn("_1", kDims, std::move(points)));
    return d;
  };
  app.make_broadcast = [](Rng& rng) {
    std::vector<float> centroids;
    centroids.reserve(kClusters * kDims);
    for (int n = 0; n < kClusters * kDims; ++n) {
      centroids.push_back(static_cast<float>(rng.NextDouble(-1.0, 1.0)));
    }
    Dataset d;
    d.AddColumn(
        FloatColumn("_2", kClusters * kDims, std::move(centroids)));
    return d;
  };

  app.reference = [](const Dataset& input, const Dataset* broadcast) {
    const Column& points = input.ColumnByField("_1");
    const Column& centroids = broadcast->ColumnByField("_2");
    std::vector<std::int32_t> assignment;
    assignment.reserve(input.num_records());
    for (std::size_t r = 0; r < input.num_records(); ++r) {
      int best = 0;
      float best_dist = 3.0e38f;
      for (int k = 0; k < kClusters; ++k) {
        float dist = 0.0f;
        for (int d = 0; d < kDims; ++d) {
          float diff =
              points.data[r * kDims + static_cast<std::size_t>(d)]
                  .AsFloat() -
              centroids.data[static_cast<std::size_t>(k * kDims + d)]
                  .AsFloat();
          dist += diff * diff;
        }
        if (dist < best_dist) {
          best_dist = dist;
          best = k;
        }
      }
      assignment.push_back(best);
    }
    Dataset out;
    out.AddColumn(IntColumn("cluster", 1, std::move(assignment)));
    return out;
  };

  // Generated loop ids: L0 = centroid cache burst, L1 = distance dims,
  // L2 = cluster loop, L3 = task loop.
  app.manual_config.loops[0] = {1, 64, merlin::PipelineMode::kOn};
  app.manual_config.loops[1] = {1, kDims, merlin::PipelineMode::kFlatten};
  app.manual_config.loops[2] = {1, 2, merlin::PipelineMode::kFlatten};
  app.manual_config.loops[3] = {1, 16, merlin::PipelineMode::kOn};
  app.manual_config.buffer_bits["in_1"] = 512;
  app.manual_config.buffer_bits["in_2"] = 128;
  app.manual_config.buffer_bits["out_1"] = 512;

  app.bench_records = 8192;
  return app;
}

}  // namespace s2fa::apps
