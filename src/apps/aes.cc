// AES (AES-128 ECB encryption) — string processing.
//
// Per record: one 16-byte block through the full ten-round AES-128
// transform. Round keys, the S-box, and the ShiftRows permutation are
// broadcast and cached on chip; the GF(2^8) doubling (xtime) is a helper
// method the bytecode-to-C compiler inlines. On the FPGA a block leaves
// every cycle once the rounds are flattened, so the accelerator is bound
// by the 16-byte/record interface traffic (paper Table 2: 36% BRAM, 0%
// DSP — "bounded by external memory bandwidth").
#include "apps/detail.h"

#include <array>

namespace s2fa::apps {

namespace {

using namespace detail;

constexpr int kBlock = 16;
constexpr int kRounds = 10;
constexpr int kKeyBytes = 16 * (kRounds + 1);

// ------------------------------------------------------- native AES-128

constexpr std::array<std::uint8_t, 256> kSbox = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

std::uint8_t XtimeNative(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ (((x >> 7) & 1) * 0x1b));
}

// Expands a 16-byte key into 176 round-key bytes (column-major layout).
std::array<std::uint8_t, kKeyBytes> ExpandKey(
    const std::array<std::uint8_t, 16>& key) {
  std::array<std::uint8_t, kKeyBytes> rk{};
  for (int i = 0; i < 16; ++i) rk[static_cast<std::size_t>(i)] = key[static_cast<std::size_t>(i)];
  std::uint8_t rcon = 0x01;
  for (int i = 16; i < kKeyBytes; i += 4) {
    std::uint8_t t0 = rk[static_cast<std::size_t>(i - 4)];
    std::uint8_t t1 = rk[static_cast<std::size_t>(i - 3)];
    std::uint8_t t2 = rk[static_cast<std::size_t>(i - 2)];
    std::uint8_t t3 = rk[static_cast<std::size_t>(i - 1)];
    if (i % 16 == 0) {
      // RotWord + SubWord + Rcon.
      std::uint8_t n0 = static_cast<std::uint8_t>(kSbox[t1] ^ rcon);
      std::uint8_t n1 = kSbox[t2];
      std::uint8_t n2 = kSbox[t3];
      std::uint8_t n3 = kSbox[t0];
      t0 = n0;
      t1 = n1;
      t2 = n2;
      t3 = n3;
      rcon = XtimeNative(rcon);
    }
    rk[static_cast<std::size_t>(i + 0)] =
        static_cast<std::uint8_t>(rk[static_cast<std::size_t>(i - 16)] ^ t0);
    rk[static_cast<std::size_t>(i + 1)] =
        static_cast<std::uint8_t>(rk[static_cast<std::size_t>(i - 15)] ^ t1);
    rk[static_cast<std::size_t>(i + 2)] =
        static_cast<std::uint8_t>(rk[static_cast<std::size_t>(i - 14)] ^ t2);
    rk[static_cast<std::size_t>(i + 3)] =
        static_cast<std::uint8_t>(rk[static_cast<std::size_t>(i - 13)] ^ t3);
  }
  return rk;
}

// ShiftRows source index for state layout s[row + 4*col].
int ShiftSource(int i) {
  int row = i % 4;
  int col = i / 4;
  return row + 4 * ((col + row) % 4);
}

void EncryptNative(const std::uint8_t* in,
                   const std::array<std::uint8_t, kKeyBytes>& rk,
                   std::uint8_t* out) {
  std::uint8_t st[kBlock];
  std::uint8_t tmp[kBlock];
  for (int i = 0; i < kBlock; ++i) st[i] = static_cast<std::uint8_t>(in[i] ^ rk[static_cast<std::size_t>(i)]);
  for (int r = 1; r <= kRounds - 1; ++r) {
    for (int i = 0; i < kBlock; ++i) {
      tmp[i] = kSbox[st[ShiftSource(i)]];
    }
    for (int c = 0; c < 4; ++c) {
      std::uint8_t a0 = tmp[4 * c + 0], a1 = tmp[4 * c + 1];
      std::uint8_t a2 = tmp[4 * c + 2], a3 = tmp[4 * c + 3];
      std::uint8_t b0 = static_cast<std::uint8_t>(
          XtimeNative(a0) ^ XtimeNative(a1) ^ a1 ^ a2 ^ a3);
      std::uint8_t b1 = static_cast<std::uint8_t>(
          a0 ^ XtimeNative(a1) ^ XtimeNative(a2) ^ a2 ^ a3);
      std::uint8_t b2 = static_cast<std::uint8_t>(
          a0 ^ a1 ^ XtimeNative(a2) ^ XtimeNative(a3) ^ a3);
      std::uint8_t b3 = static_cast<std::uint8_t>(
          XtimeNative(a0) ^ a0 ^ a1 ^ a2 ^ XtimeNative(a3));
      const std::size_t rko = static_cast<std::size_t>(16 * r + 4 * c);
      st[4 * c + 0] = static_cast<std::uint8_t>(b0 ^ rk[rko + 0]);
      st[4 * c + 1] = static_cast<std::uint8_t>(b1 ^ rk[rko + 1]);
      st[4 * c + 2] = static_cast<std::uint8_t>(b2 ^ rk[rko + 2]);
      st[4 * c + 3] = static_cast<std::uint8_t>(b3 ^ rk[rko + 3]);
    }
  }
  for (int i = 0; i < kBlock; ++i) tmp[i] = kSbox[st[ShiftSource(i)]];
  for (int i = 0; i < kBlock; ++i) {
    out[i] = static_cast<std::uint8_t>(
        tmp[i] ^ rk[static_cast<std::size_t>(16 * kRounds + i)]);
  }
}

// -------------------------------------------------------- bytecode kernel

void DefineKernel(jvm::ClassPool& pool) {
  jvm::Klass& in = pool.Define("AESBlock");
  in.AddField({"_1", Type::Array(Type::Byte())});  // plaintext block
  in.AddField({"_2", Type::Array(Type::Byte())});  // round keys (bcast)
  in.AddField({"_3", Type::Array(Type::Byte())});  // sbox (bcast)
  in.AddField({"_4", Type::Array(Type::Byte())});  // ShiftRows map (bcast)

  jvm::Klass& k = pool.Define("AesKernel");
  {
    // static int xtime(int x) { return ((x<<1) ^ (((x>>7)&1)*0x1b)) & 0xff; }
    Assembler a;
    a.Load(Type::Int(), 0).IConst(1).Bin(Type::Int(), jvm::BinOp::kShl);
    a.Load(Type::Int(), 0).IConst(7).Bin(Type::Int(), jvm::BinOp::kShr);
    a.IConst(1).Bin(Type::Int(), jvm::BinOp::kAnd);
    a.IConst(0x1b).IMul();
    a.Bin(Type::Int(), jvm::BinOp::kXor);
    a.IConst(0xff).Bin(Type::Int(), jvm::BinOp::kAnd);
    a.Ret(Type::Int());
    MethodSignature sig;
    sig.params = {Type::Int()};
    sig.ret = Type::Int();
    k.AddMethod(jvm::MakeMethod("xtime", sig, true, 1, a.Finish()));
  }

  Assembler a;
  // static byte[] call(AESBlock in)
  // locals: 0=in, 1=blk, 2=rk, 3=sbox, 4=shift, 5=st, 6=tmp,
  //         7=r, 8=i, 9=c, 10..13=a0..a3, 14=base, 15=rko
  const Type ba = Type::Array(Type::Byte());
  auto load_masked = [&](int array_slot, auto&& push_index) {
    a.Load(ba, array_slot);
    push_index();
    a.ALoadElem(Type::Byte());
    a.IConst(0xff).Bin(Type::Int(), jvm::BinOp::kAnd);
  };
  a.Load(Type::Class("AESBlock"), 0).GetField("AESBlock", "_1").Store(ba, 1);
  a.Load(Type::Class("AESBlock"), 0).GetField("AESBlock", "_2").Store(ba, 2);
  a.Load(Type::Class("AESBlock"), 0).GetField("AESBlock", "_3").Store(ba, 3);
  a.Load(Type::Class("AESBlock"), 0).GetField("AESBlock", "_4").Store(ba, 4);
  a.IConst(kBlock).NewArray(Type::Byte()).Store(ba, 5);
  a.IConst(kBlock).NewArray(Type::Byte()).Store(ba, 6);
  // Round 0: st[i] = blk[i] ^ rk[i].
  EmitLoop(a, 8, kBlock, [&] {
    a.Load(ba, 5).Load(Type::Int(), 8);
    a.Load(ba, 1).Load(Type::Int(), 8).ALoadElem(Type::Byte());
    a.Load(ba, 2).Load(Type::Int(), 8).ALoadElem(Type::Byte());
    a.Bin(Type::Int(), jvm::BinOp::kXor);
    a.AStoreElem(Type::Byte());
  });
  // Rounds 1..9.
  EmitLoop(a, 7, kRounds - 1, [&] {
    // rko = (r + 1) * 16
    a.Load(Type::Int(), 7).IConst(1).IAdd().IConst(16).IMul()
        .Store(Type::Int(), 15);
    // SubBytes + ShiftRows: tmp[i] = sbox[st[shift[i]] & 0xff].
    EmitLoop(a, 8, kBlock, [&] {
      a.Load(ba, 6).Load(Type::Int(), 8);
      load_masked(3, [&] {
        load_masked(5, [&] {
          a.Load(ba, 4).Load(Type::Int(), 8).ALoadElem(Type::Byte());
        });
      });
      a.AStoreElem(Type::Byte());
    });
    // MixColumns + AddRoundKey, column by column.
    EmitLoop(a, 9, 4, [&] {
      a.Load(Type::Int(), 9).IConst(4).IMul().Store(Type::Int(), 14);
      for (int e = 0; e < 4; ++e) {
        load_masked(6, [&] {
          a.Load(Type::Int(), 14);
          if (e != 0) a.IConst(e).IAdd();
        });
        a.Store(Type::Int(), 10 + e);
      }
      // Column outputs b0..b3 -> st[base + e] ^ rk[rko + base + e].
      auto emit_column_byte = [&](int e, auto&& push_value) {
        a.Load(ba, 5);
        a.Load(Type::Int(), 14);
        if (e != 0) a.IConst(e).IAdd();
        push_value();
        // ^ rk[rko + base + e]
        a.Load(ba, 2);
        a.Load(Type::Int(), 15).Load(Type::Int(), 14).IAdd();
        if (e != 0) a.IConst(e).IAdd();
        a.ALoadElem(Type::Byte());
        a.Bin(Type::Int(), jvm::BinOp::kXor);
        a.AStoreElem(Type::Byte());
      };
      auto xt = [&](int slot) {
        a.Load(Type::Int(), slot).InvokeStatic("AesKernel", "xtime");
      };
      auto raw = [&](int slot) { a.Load(Type::Int(), slot); };
      auto x = [&](auto&& f, auto&& g) {
        f();
        g();
        a.Bin(Type::Int(), jvm::BinOp::kXor);
      };
      emit_column_byte(0, [&] {
        // xt(a0) ^ xt(a1) ^ a1 ^ a2 ^ a3
        xt(10);
        xt(11);
        a.Bin(Type::Int(), jvm::BinOp::kXor);
        raw(11);
        a.Bin(Type::Int(), jvm::BinOp::kXor);
        raw(12);
        a.Bin(Type::Int(), jvm::BinOp::kXor);
        raw(13);
        a.Bin(Type::Int(), jvm::BinOp::kXor);
      });
      emit_column_byte(1, [&] {
        // a0 ^ xt(a1) ^ xt(a2) ^ a2 ^ a3
        raw(10);
        xt(11);
        a.Bin(Type::Int(), jvm::BinOp::kXor);
        xt(12);
        a.Bin(Type::Int(), jvm::BinOp::kXor);
        raw(12);
        a.Bin(Type::Int(), jvm::BinOp::kXor);
        raw(13);
        a.Bin(Type::Int(), jvm::BinOp::kXor);
      });
      emit_column_byte(2, [&] {
        // a0 ^ a1 ^ xt(a2) ^ xt(a3) ^ a3
        raw(10);
        raw(11);
        a.Bin(Type::Int(), jvm::BinOp::kXor);
        xt(12);
        a.Bin(Type::Int(), jvm::BinOp::kXor);
        xt(13);
        a.Bin(Type::Int(), jvm::BinOp::kXor);
        raw(13);
        a.Bin(Type::Int(), jvm::BinOp::kXor);
      });
      emit_column_byte(3, [&] {
        // xt(a0) ^ a0 ^ a1 ^ a2 ^ xt(a3)
        xt(10);
        raw(10);
        a.Bin(Type::Int(), jvm::BinOp::kXor);
        raw(11);
        a.Bin(Type::Int(), jvm::BinOp::kXor);
        raw(12);
        a.Bin(Type::Int(), jvm::BinOp::kXor);
        xt(13);
        a.Bin(Type::Int(), jvm::BinOp::kXor);
      });
      (void)x;
    });
  });
  // Final round: SubBytes + ShiftRows + AddRoundKey(10).
  EmitLoop(a, 8, kBlock, [&] {
    a.Load(ba, 6).Load(Type::Int(), 8);
    load_masked(3, [&] {
      load_masked(5, [&] {
        a.Load(ba, 4).Load(Type::Int(), 8).ALoadElem(Type::Byte());
      });
    });
    a.AStoreElem(Type::Byte());
  });
  EmitLoop(a, 8, kBlock, [&] {
    a.Load(ba, 5).Load(Type::Int(), 8);
    a.Load(ba, 6).Load(Type::Int(), 8).ALoadElem(Type::Byte());
    a.Load(ba, 2).IConst(16 * kRounds).Load(Type::Int(), 8).IAdd()
        .ALoadElem(Type::Byte());
    a.Bin(Type::Int(), jvm::BinOp::kXor);
    a.AStoreElem(Type::Byte());
  });
  a.Load(ba, 5).Ret(ba);

  MethodSignature sig;
  sig.params = {Type::Class("AESBlock")};
  sig.ret = ba;
  k.AddMethod(jvm::MakeMethod("call", sig, true, 16, a.Finish()));
}

}  // namespace

blaze::Dataset MakeAesBroadcast(const std::array<std::uint8_t, 16>& key) {
  auto rk = ExpandKey(key);
  std::vector<std::int32_t> rk_v(rk.begin(), rk.end());
  std::vector<std::int32_t> sbox_v(kSbox.begin(), kSbox.end());
  std::vector<std::int32_t> shift_v;
  for (int i = 0; i < kBlock; ++i) shift_v.push_back(ShiftSource(i));
  Dataset d;
  d.AddColumn(ByteColumn("_2", kKeyBytes, std::move(rk_v)));
  d.AddColumn(ByteColumn("_3", 256, std::move(sbox_v)));
  d.AddColumn(ByteColumn("_4", kBlock, std::move(shift_v)));
  return d;
}

App MakeAes() {
  App app;
  app.name = "AES";
  app.type_label = "string proc.";
  app.pool = std::make_shared<jvm::ClassPool>();
  DefineKernel(*app.pool);

  app.spec.kernel_name = "aes_kernel";
  app.spec.klass = "AesKernel";
  app.spec.input.type = Type::Class("AESBlock");
  {
    b2c::FieldSpec blk{"_1", Type::Byte(), kBlock, true};
    b2c::FieldSpec rk{"_2", Type::Byte(), kKeyBytes, true};
    rk.broadcast = true;
    b2c::FieldSpec sbox{"_3", Type::Byte(), 256, true};
    sbox.broadcast = true;
    b2c::FieldSpec shift{"_4", Type::Byte(), kBlock, true};
    shift.broadcast = true;
    app.spec.input.fields = {blk, rk, sbox, shift};
  }
  app.spec.output.type = Type::Array(Type::Byte());
  app.spec.output.fields = {{"cipher", Type::Byte(), kBlock, true}};
  app.spec.batch = 1024;

  app.make_input = [](std::size_t records, Rng& rng) {
    std::vector<std::int32_t> blocks;
    blocks.reserve(records * kBlock);
    for (std::size_t n = 0; n < records * kBlock; ++n) {
      blocks.push_back(static_cast<std::int32_t>(rng.NextBounded(256)));
    }
    Dataset d;
    d.AddColumn(ByteColumn("_1", kBlock, std::move(blocks)));
    return d;
  };
  app.make_broadcast = [](Rng& rng) {
    std::array<std::uint8_t, 16> key;
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.NextBounded(256));
    return MakeAesBroadcast(key);
  };

  app.reference = [](const Dataset& input, const Dataset* broadcast) {
    const Column& blocks = input.ColumnByField("_1");
    const Column& rk_col = broadcast->ColumnByField("_2");
    std::array<std::uint8_t, kKeyBytes> rk;
    for (int i = 0; i < kKeyBytes; ++i) {
      rk[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(
          rk_col.data[static_cast<std::size_t>(i)].AsInt());
    }
    std::vector<std::int32_t> cipher;
    cipher.reserve(input.num_records() * kBlock);
    for (std::size_t r = 0; r < input.num_records(); ++r) {
      std::uint8_t in_block[kBlock];
      std::uint8_t out_block[kBlock];
      for (int i = 0; i < kBlock; ++i) {
        in_block[i] = static_cast<std::uint8_t>(
            blocks.data[r * kBlock + static_cast<std::size_t>(i)].AsInt());
      }
      EncryptNative(in_block, rk, out_block);
      for (int i = 0; i < kBlock; ++i) cipher.push_back(out_block[i]);
    }
    Dataset out;
    out.AddColumn(ByteColumn("cipher", kBlock, std::move(cipher)));
    return out;
  };

  app.jvm_cost_scale = 10.0;  // boxed byte/char string processing on the JVM

  // Generated loop ids: L0/L1/L2 = rk/sbox/shift caches, L3/L4 = st/tmp
  // zero-init, L5 = round-0 ARK, L6 = SubBytes, L7 = MixColumns,
  // L8 = round loop, L9/L10 = final SubBytes/ARK, L11 = result copy-out,
  // L12 = task loop. The expert design flattens the whole block transform
  // under a pipelined task loop: one block in flight per initiation.
  app.manual_config.loops[12] = {1, 1, merlin::PipelineMode::kFlatten};
  app.manual_config.buffer_bits["in_1"] = 512;
  app.manual_config.buffer_bits["out_1"] = 512;

  app.bench_records = 4096;
  return app;
}

}  // namespace s2fa::apps
