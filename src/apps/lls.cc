// LLS (Least Linear Squares) — regression.
//
// The RDD `reduce` evaluation kernel: sum over rows of the squared
// residual (a·x − b)² for a broadcast solution candidate x. Exercises the
// reduce template (accumulators kept on chip, one result per invocation)
// and the host-side combination of per-invocation partials.
#include "apps/detail.h"

namespace s2fa::apps {

namespace {

using namespace detail;

constexpr int kDims = 32;

void DefineKernel(jvm::ClassPool& pool) {
  jvm::Klass& in = pool.Define("LLSRow");
  in.AddField({"_1", Type::Array(Type::Float())});  // matrix row a
  in.AddField({"_2", Type::Float()});               // rhs b
  in.AddField({"_3", Type::Array(Type::Float())});  // candidate x (bcast)

  Assembler a;
  // static float call(float acc, LLSRow row)  — single-precision partial
  // sums: the relaxed-FP tree reduction applies (unlike LR's doubles).
  // locals: 0=acc, 1=row, 2=arow, 3=x, 4=s, 5=j, 6=r
  const Type fa = Type::Array(Type::Float());
  a.Load(Type::Class("LLSRow"), 1).GetField("LLSRow", "_1").Store(fa, 2);
  a.Load(Type::Class("LLSRow"), 1).GetField("LLSRow", "_3").Store(fa, 3);
  a.FConst(0.0f).Store(Type::Float(), 4);
  EmitLoop(a, 5, kDims, [&] {
    a.Load(Type::Float(), 4);
    a.Load(fa, 2).Load(Type::Int(), 5).ALoadElem(Type::Float());
    a.Load(fa, 3).Load(Type::Int(), 5).ALoadElem(Type::Float());
    a.FMul().FAdd().Store(Type::Float(), 4);
  });
  // r = s - row._2
  a.Load(Type::Float(), 4);
  a.Load(Type::Class("LLSRow"), 1).GetField("LLSRow", "_2");
  a.FSub().Store(Type::Float(), 6);
  // return acc + r * r
  a.Load(Type::Float(), 0);
  a.Load(Type::Float(), 6).Load(Type::Float(), 6).FMul();
  a.FAdd().Ret(Type::Float());

  MethodSignature sig;
  sig.params = {Type::Float(), Type::Class("LLSRow")};
  sig.ret = Type::Float();
  pool.Define("LlsKernel")
      .AddMethod(jvm::MakeMethod("call", sig, true, 7, a.Finish()));
}

}  // namespace

App MakeLinearLeastSquares() {
  App app;
  app.name = "LLS";
  app.type_label = "regression";
  app.pool = std::make_shared<jvm::ClassPool>();
  DefineKernel(*app.pool);

  app.spec.kernel_name = "lls_kernel";
  app.spec.klass = "LlsKernel";
  app.spec.pattern = kir::ParallelPattern::kReduce;
  app.spec.input.type = Type::Class("LLSRow");
  {
    b2c::FieldSpec row{"_1", Type::Float(), kDims, true};
    b2c::FieldSpec rhs{"_2", Type::Float(), 1, false};
    b2c::FieldSpec x{"_3", Type::Float(), kDims, true};
    x.broadcast = true;
    app.spec.input.fields = {row, rhs, x};
  }
  app.spec.output.type = Type::Float();
  app.spec.output.fields = {{"sse", Type::Float(), 1, false}};
  app.spec.batch = 1024;

  app.make_input = [](std::size_t records, Rng& rng) {
    std::vector<float> rows;
    std::vector<float> rhs;
    rows.reserve(records * kDims);
    for (std::size_t r = 0; r < records; ++r) {
      for (int d = 0; d < kDims; ++d) {
        rows.push_back(static_cast<float>(rng.NextDouble(-1.0, 1.0)));
      }
      rhs.push_back(static_cast<float>(rng.NextDouble(-2.0, 2.0)));
    }
    Dataset d;
    d.AddColumn(FloatColumn("_1", kDims, std::move(rows)));
    d.AddColumn(FloatColumn("_2", 1, std::move(rhs)));
    return d;
  };
  app.make_broadcast = [](Rng& rng) {
    std::vector<float> x;
    for (int d = 0; d < kDims; ++d) {
      x.push_back(static_cast<float>(rng.NextDouble(-0.5, 0.5)));
    }
    Dataset d;
    d.AddColumn(FloatColumn("_3", kDims, std::move(x)));
    return d;
  };

  app.reference = [](const Dataset& input, const Dataset* broadcast) {
    const Column& rows = input.ColumnByField("_1");
    const Column& rhs = input.ColumnByField("_2");
    const Column& x = broadcast->ColumnByField("_3");
    float sse = 0.0f;
    for (std::size_t r = 0; r < input.num_records(); ++r) {
      float s = 0.0f;
      for (int d = 0; d < kDims; ++d) {
        s += rows.data[r * kDims + static_cast<std::size_t>(d)].AsFloat() *
             x.data[static_cast<std::size_t>(d)].AsFloat();
      }
      float res = s - rhs.data[r].AsFloat();
      sse += res * res;
    }
    Dataset out;
    out.AddColumn(FloatColumn("sse", 1, {sse}));
    return out;
  };

  // Generated loop ids: L0 = x cache, L1 = dot loop, L2 = task loop.
  app.manual_config.loops[0] = {1, 32, merlin::PipelineMode::kOn};
  app.manual_config.loops[1] = {1, 4, merlin::PipelineMode::kOn};
  app.manual_config.loops[2] = {1, 32, merlin::PipelineMode::kOff};
  app.manual_config.buffer_bits["in_1"] = 512;
  app.manual_config.buffer_bits["in_2"] = 512;
  app.manual_config.buffer_bits["in_3"] = 512;
  app.manual_config.buffer_bits["out_1"] = 64;

  app.bench_records = 8192;
  return app;
}

}  // namespace s2fa::apps
