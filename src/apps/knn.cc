// KNN (K-Nearest Neighbor, k = 1) — classification.
//
// Per query point: the label of the nearest training sample. The training
// set and its labels are broadcast and cached on chip; distance lanes
// unroll heavily, which drives the FF/LUT-dominant utilization of Table 2.
#include "apps/detail.h"

namespace s2fa::apps {

namespace {

using namespace detail;

constexpr int kTrain = 32;
constexpr int kDims = 16;

void DefineKernel(jvm::ClassPool& pool) {
  jvm::Klass& in = pool.Define("KNNQuery");
  in.AddField({"_1", Type::Array(Type::Float())});  // query point
  in.AddField({"_2", Type::Array(Type::Float())});  // training set (bcast)
  in.AddField({"_3", Type::Array(Type::Int())});    // labels (bcast)

  Assembler a;
  // static int call(KNNQuery in)
  // locals: 0=in, 1=q, 2=train, 3=labels, 4=bestLabel, 5=bestDist, 6=m,
  //         7=dist, 8=d, 9=diff
  const Type fa = Type::Array(Type::Float());
  const Type ia = Type::Array(Type::Int());
  a.Load(Type::Class("KNNQuery"), 0).GetField("KNNQuery", "_1").Store(fa, 1);
  a.Load(Type::Class("KNNQuery"), 0).GetField("KNNQuery", "_2").Store(fa, 2);
  a.Load(Type::Class("KNNQuery"), 0).GetField("KNNQuery", "_3").Store(ia, 3);
  a.IConst(-1).Store(Type::Int(), 4);
  a.FConst(3.0e38f).Store(Type::Float(), 5);
  EmitLoop(a, 6, kTrain, [&] {
    a.FConst(0.0f).Store(Type::Float(), 7);
    EmitLoop(a, 8, kDims, [&] {
      a.Load(fa, 1).Load(Type::Int(), 8).ALoadElem(Type::Float());
      a.Load(fa, 2);
      a.Load(Type::Int(), 6).IConst(kDims).IMul().Load(Type::Int(), 8)
          .IAdd();
      a.ALoadElem(Type::Float());
      a.FSub().Store(Type::Float(), 9);
      a.Load(Type::Float(), 7);
      a.Load(Type::Float(), 9).Load(Type::Float(), 9).FMul();
      a.FAdd().Store(Type::Float(), 7);
    });
    auto skip = a.NewLabel();
    a.Load(Type::Float(), 7).Load(Type::Float(), 5)
        .Cmp(Type::Float(), /*nan_is_less=*/false);
    a.If(Cond::kGe, skip);
    a.Load(Type::Float(), 7).Store(Type::Float(), 5);
    a.Load(ia, 3).Load(Type::Int(), 6).ALoadElem(Type::Int())
        .Store(Type::Int(), 4);
    a.Bind(skip);
  });
  a.Load(Type::Int(), 4).Ret(Type::Int());

  MethodSignature sig;
  sig.params = {Type::Class("KNNQuery")};
  sig.ret = Type::Int();
  pool.Define("KnnKernel")
      .AddMethod(jvm::MakeMethod("call", sig, true, 10, a.Finish()));
}

}  // namespace

App MakeKnn() {
  App app;
  app.name = "KNN";
  app.type_label = "classification";
  app.pool = std::make_shared<jvm::ClassPool>();
  DefineKernel(*app.pool);

  app.spec.kernel_name = "knn_kernel";
  app.spec.klass = "KnnKernel";
  app.spec.input.type = Type::Class("KNNQuery");
  {
    b2c::FieldSpec query{"_1", Type::Float(), kDims, true};
    b2c::FieldSpec train{"_2", Type::Float(), kTrain * kDims, true};
    train.broadcast = true;
    b2c::FieldSpec labels{"_3", Type::Int(), kTrain, true};
    labels.broadcast = true;
    app.spec.input.fields = {query, train, labels};
  }
  app.spec.output.type = Type::Int();
  app.spec.output.fields = {{"label", Type::Int(), 1, false}};
  app.spec.batch = 1024;

  app.make_input = [](std::size_t records, Rng& rng) {
    std::vector<float> queries;
    queries.reserve(records * kDims);
    for (std::size_t n = 0; n < records * kDims; ++n) {
      queries.push_back(static_cast<float>(rng.NextDouble(-1.0, 1.0)));
    }
    Dataset d;
    d.AddColumn(FloatColumn("_1", kDims, std::move(queries)));
    return d;
  };
  app.make_broadcast = [](Rng& rng) {
    std::vector<float> train;
    std::vector<std::int32_t> labels;
    for (int n = 0; n < kTrain * kDims; ++n) {
      train.push_back(static_cast<float>(rng.NextDouble(-1.0, 1.0)));
    }
    for (int n = 0; n < kTrain; ++n) {
      labels.push_back(static_cast<std::int32_t>(rng.NextInt(0, 9)));
    }
    Dataset d;
    d.AddColumn(FloatColumn("_2", kTrain * kDims, std::move(train)));
    d.AddColumn(IntColumn("_3", kTrain, std::move(labels)));
    return d;
  };

  app.reference = [](const Dataset& input, const Dataset* broadcast) {
    const Column& queries = input.ColumnByField("_1");
    const Column& train = broadcast->ColumnByField("_2");
    const Column& labels = broadcast->ColumnByField("_3");
    std::vector<std::int32_t> out_labels;
    for (std::size_t r = 0; r < input.num_records(); ++r) {
      int best = -1;
      float best_dist = 3.0e38f;
      for (int m = 0; m < kTrain; ++m) {
        float dist = 0.0f;
        for (int d = 0; d < kDims; ++d) {
          float diff =
              queries.data[r * kDims + static_cast<std::size_t>(d)]
                  .AsFloat() -
              train.data[static_cast<std::size_t>(m * kDims + d)].AsFloat();
          dist += diff * diff;
        }
        if (dist < best_dist) {
          best_dist = dist;
          best = labels.data[static_cast<std::size_t>(m)].AsInt();
        }
      }
      out_labels.push_back(best);
    }
    Dataset out;
    out.AddColumn(IntColumn("label", 1, std::move(out_labels)));
    return out;
  };

  // Generated loop ids: L0/L1 = broadcast caches, L2 = dims, L3 = train,
  // L4 = task loop.
  app.manual_config.loops[1] = {8, 8, merlin::PipelineMode::kOff};
  app.manual_config.loops[2] = {1, 16, merlin::PipelineMode::kFlatten};
  app.manual_config.loops[3] = {1, 2, merlin::PipelineMode::kFlatten};
  app.manual_config.loops[4] = {1, 16, merlin::PipelineMode::kOff};
  app.manual_config.buffer_bits["in_1"] = 512;
  app.manual_config.buffer_bits["in_2"] = 64;
  app.manual_config.buffer_bits["in_3"] = 32;
  app.manual_config.buffer_bits["out_1"] = 32;

  app.bench_records = 8192;
  return app;
}

}  // namespace s2fa::apps
