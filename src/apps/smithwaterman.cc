// S-W (Smith-Waterman) — string processing; the paper's motivating example
// (Code 1/2).
//
// Per record: the best local-alignment score of a pair of 128-byte
// sequences (match +3, mismatch −1, gap −2) computed over a two-row
// dynamic-programming band. The inner loop carries cur[j+1] ← cur[j]
// (the anti-diagonal wavefront): pipelining it hits the recurrence II, and
// unrolling it deepens the ripple path — the design that wins instead
// unrolls the independent *task* loop into parallel alignment units, at
// the cost of the 100 MHz clock Table 2 reports.
#include "apps/detail.h"

namespace s2fa::apps {

namespace {

using namespace detail;

constexpr int kLen = 128;
constexpr int kMatch = 3;
constexpr int kMismatch = -1;
constexpr int kGap = 2;

void DefineKernel(jvm::ClassPool& pool) {
  jvm::Klass& in = pool.Define("SWPair");
  in.AddField({"_1", Type::Array(Type::Byte())});
  in.AddField({"_2", Type::Array(Type::Byte())});

  Assembler a;
  // static int call(SWPair in)
  // locals: 0=in, 1=sa, 2=sb, 3=prev, 4=cur, 5=best, 6=i, 7=j,
  //         8=sc, 9=d, 10=u, 11=l, 12=h
  const Type ba = Type::Array(Type::Byte());
  const Type ia = Type::Array(Type::Int());
  a.Load(Type::Class("SWPair"), 0).GetField("SWPair", "_1").Store(ba, 1);
  a.Load(Type::Class("SWPair"), 0).GetField("SWPair", "_2").Store(ba, 2);
  a.IConst(kLen + 1).NewArray(Type::Int()).Store(ia, 3);
  a.IConst(kLen + 1).NewArray(Type::Int()).Store(ia, 4);
  a.IConst(0).Store(Type::Int(), 5);
  EmitLoop(a, 6, kLen, [&] {
    EmitLoop(a, 7, kLen, [&] {
      // sc = (sa[i] == sb[j]) ? kMatch : kMismatch
      a.Load(ba, 1).Load(Type::Int(), 6).ALoadElem(Type::Byte());
      a.Load(ba, 2).Load(Type::Int(), 7).ALoadElem(Type::Byte());
      auto miss = a.NewLabel();
      auto done = a.NewLabel();
      a.IfICmp(Cond::kNe, miss);
      a.IConst(kMatch).Goto(done);
      a.Bind(miss);
      a.IConst(kMismatch);
      a.Bind(done);
      a.Store(Type::Int(), 8);
      // d = prev[j] + sc
      a.Load(ia, 3).Load(Type::Int(), 7).ALoadElem(Type::Int());
      a.Load(Type::Int(), 8).IAdd().Store(Type::Int(), 9);
      // u = prev[j+1] - kGap
      a.Load(ia, 3).Load(Type::Int(), 7).IConst(1).IAdd()
          .ALoadElem(Type::Int());
      a.IConst(kGap).ISub().Store(Type::Int(), 10);
      // l = cur[j] - kGap
      a.Load(ia, 4).Load(Type::Int(), 7).ALoadElem(Type::Int());
      a.IConst(kGap).ISub().Store(Type::Int(), 11);
      // h = max(0, max(d, max(u, l)))
      a.Load(Type::Int(), 9).Load(Type::Int(), 10)
          .Bin(Type::Int(), jvm::BinOp::kMax);
      a.Load(Type::Int(), 11).Bin(Type::Int(), jvm::BinOp::kMax);
      a.IConst(0).Bin(Type::Int(), jvm::BinOp::kMax);
      a.Store(Type::Int(), 12);
      // cur[j + 1] = h
      a.Load(ia, 4).Load(Type::Int(), 7).IConst(1).IAdd();
      a.Load(Type::Int(), 12).AStoreElem(Type::Int());
      // best = max(best, h)
      a.Load(Type::Int(), 5).Load(Type::Int(), 12)
          .Bin(Type::Int(), jvm::BinOp::kMax);
      a.Store(Type::Int(), 5);
    });
    // Row roll: prev <- cur.
    EmitLoop(a, 7, kLen + 1, [&] {
      a.Load(ia, 3).Load(Type::Int(), 7);
      a.Load(ia, 4).Load(Type::Int(), 7).ALoadElem(Type::Int());
      a.AStoreElem(Type::Int());
    });
  });
  a.Load(Type::Int(), 5).Ret(Type::Int());

  MethodSignature sig;
  sig.params = {Type::Class("SWPair")};
  sig.ret = Type::Int();
  pool.Define("SmithWatermanKernel")
      .AddMethod(jvm::MakeMethod("call", sig, true, 13, a.Finish()));
}

}  // namespace

App MakeSmithWaterman() {
  App app;
  app.name = "S-W";
  app.type_label = "string proc.";
  app.pool = std::make_shared<jvm::ClassPool>();
  DefineKernel(*app.pool);

  app.spec.kernel_name = "sw_kernel";
  app.spec.klass = "SmithWatermanKernel";
  app.spec.input.type = Type::Class("SWPair");
  app.spec.input.fields = {{"_1", Type::Byte(), kLen, true},
                           {"_2", Type::Byte(), kLen, true}};
  app.spec.output.type = Type::Int();
  app.spec.output.fields = {{"score", Type::Int(), 1, false}};
  app.spec.batch = 256;

  app.make_input = [](std::size_t records, Rng& rng) {
    // DNA-like 4-letter alphabet.
    std::vector<std::int32_t> sa, sb;
    sa.reserve(records * kLen);
    sb.reserve(records * kLen);
    const char alphabet[4] = {'A', 'C', 'G', 'T'};
    for (std::size_t n = 0; n < records * kLen; ++n) {
      sa.push_back(alphabet[rng.NextIndex(4)]);
      sb.push_back(alphabet[rng.NextIndex(4)]);
    }
    Dataset d;
    d.AddColumn(ByteColumn("_1", kLen, std::move(sa)));
    d.AddColumn(ByteColumn("_2", kLen, std::move(sb)));
    return d;
  };

  app.reference = [](const Dataset& input, const Dataset*) {
    const Column& sa = input.ColumnByField("_1");
    const Column& sb = input.ColumnByField("_2");
    std::vector<std::int32_t> scores;
    for (std::size_t r = 0; r < input.num_records(); ++r) {
      std::vector<int> prev(kLen + 1, 0), cur(kLen + 1, 0);
      int best = 0;
      for (int i = 0; i < kLen; ++i) {
        for (int j = 0; j < kLen; ++j) {
          int sc = sa.data[r * kLen + static_cast<std::size_t>(i)].AsInt() ==
                           sb.data[r * kLen +
                                   static_cast<std::size_t>(j)].AsInt()
                       ? kMatch
                       : kMismatch;
          int d = prev[static_cast<std::size_t>(j)] + sc;
          int u = prev[static_cast<std::size_t>(j + 1)] - kGap;
          int l = cur[static_cast<std::size_t>(j)] - kGap;
          int h = std::max(0, std::max(d, std::max(u, l)));
          cur[static_cast<std::size_t>(j + 1)] = h;
          best = std::max(best, h);
        }
        prev = cur;
      }
      scores.push_back(best);
    }
    Dataset out;
    out.AddColumn(IntColumn("score", 1, std::move(scores)));
    return out;
  };

  // Scala string processing on JDK 1.7 pays boxed-char costs the
  // interpreter model does not include.
  app.jvm_cost_scale = 12.0;

  // Generated loop ids: L0/L1 = prev/cur zero-init, L2 = inner wavefront,
  // L3 = row roll, L4 = the i loop, L5 = task loop. The expert design
  // deploys parallel alignment units over the task loop.
  app.manual_config.loops[2] = {1, 1, merlin::PipelineMode::kOn};
  app.manual_config.loops[3] = {1, 16, merlin::PipelineMode::kOn};
  app.manual_config.loops[5] = {1, 128, merlin::PipelineMode::kOff};
  app.manual_config.buffer_bits["in_1"] = 512;
  app.manual_config.buffer_bits["in_2"] = 512;
  app.manual_config.buffer_bits["out_1"] = 64;

  app.bench_records = 512;
  return app;
}

}  // namespace s2fa::apps
