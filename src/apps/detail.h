// Internal helpers shared by the app definitions.
#pragma once

#include <vector>

#include "apps/app.h"
#include "jvm/assembler.h"

namespace s2fa::apps::detail {

using blaze::Column;
using blaze::Dataset;
using jvm::Assembler;
using jvm::Cond;
using jvm::MethodSignature;
using jvm::Type;
using jvm::Value;

inline Column FloatColumn(std::string field, std::int64_t per_record,
                          std::vector<float> data) {
  Column col;
  col.field = std::move(field);
  col.element = Type::Float();
  col.per_record = per_record;
  col.data.reserve(data.size());
  for (float v : data) col.data.push_back(Value::OfFloat(v));
  return col;
}

inline Column IntColumn(std::string field, std::int64_t per_record,
                        std::vector<std::int32_t> data) {
  Column col;
  col.field = std::move(field);
  col.element = Type::Int();
  col.per_record = per_record;
  col.data.reserve(data.size());
  for (std::int32_t v : data) col.data.push_back(Value::OfInt(v));
  return col;
}

inline Column ByteColumn(std::string field, std::int64_t per_record,
                         std::vector<std::int32_t> data) {
  Column col;
  col.field = std::move(field);
  col.element = Type::Byte();
  col.per_record = per_record;
  col.data.reserve(data.size());
  for (std::int32_t v : data) {
    col.data.push_back(Value::OfInt(static_cast<std::int8_t>(v)));
  }
  return col;
}

inline Column DoubleColumn(std::string field, std::int64_t per_record,
                           std::vector<double> data) {
  Column col;
  col.field = std::move(field);
  col.element = Type::Double();
  col.per_record = per_record;
  col.data.reserve(data.size());
  for (double v : data) col.data.push_back(Value::OfDouble(v));
  return col;
}

// Emits the canonical counted loop skeleton:
//   iconst 0; istore slot; HEAD: iload slot; iconst trip; if_icmpge EXIT;
//   <body via callback>; iinc slot 1; goto HEAD; EXIT:
template <typename BodyFn>
void EmitLoop(Assembler& a, int slot, std::int32_t trip, BodyFn&& body) {
  a.IConst(0).Store(Type::Int(), slot);
  auto head = a.NewLabel();
  auto exit = a.NewLabel();
  a.Bind(head);
  a.Load(Type::Int(), slot).IConst(trip).IfICmp(Cond::kGe, exit);
  body();
  a.IInc(slot, 1);
  a.Goto(head);
  a.Bind(exit);
}

}  // namespace s2fa::apps::detail
