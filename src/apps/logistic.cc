// LR (Logistic Regression) — regression.
//
// The RDD reduce kernel sums the squared prediction error of a broadcast
// weight vector; the prediction uses a per-feature *normalized* streaming
// dot product, z = (z + x[d]·w[d]) · n[d] — a first-order recurrence, not
// an associative reduction. Its carried chain (fmul + fadd ≈ 12–13 cycles)
// bounds the initiation interval of every design the DSE can reach,
// reproducing the paper's "the minimal initiation interval is still 13".
// The manual design (paper: "splits the computation statement to multiple
// stages") re-associates the update at the source level — a rewrite outside
// Merlin's pragma space — which restores II = 1.
#include "apps/detail.h"

#include <cmath>

#include "kir/analysis.h"

namespace s2fa::apps {

namespace {

using namespace detail;

constexpr int kDims = 64;

void DefineKernel(jvm::ClassPool& pool) {
  jvm::Klass& in = pool.Define("LRSample");
  in.AddField({"_1", Type::Array(Type::Float())});  // features
  in.AddField({"_2", Type::Float()});               // label in {0,1}
  in.AddField({"_3", Type::Array(Type::Float())});  // weights (bcast)
  in.AddField({"_4", Type::Array(Type::Float())});  // per-feature norms (bcast)

  Assembler a;
  // static double call(double acc, LRSample s)
  // locals: 0..1=acc, 2=s, 3=x, 4=w, 5=nrm, 6=z, 7=j, 8=y,
  //         9..10=p (double), 11..12=r (double)
  const Type fa = Type::Array(Type::Float());
  a.Load(Type::Class("LRSample"), 2).GetField("LRSample", "_1").Store(fa, 3);
  a.Load(Type::Class("LRSample"), 2).GetField("LRSample", "_3").Store(fa, 4);
  a.Load(Type::Class("LRSample"), 2).GetField("LRSample", "_4").Store(fa, 5);
  a.Load(Type::Class("LRSample"), 2).GetField("LRSample", "_2")
      .Store(Type::Float(), 8);
  a.FConst(0.0f).Store(Type::Float(), 6);
  EmitLoop(a, 7, kDims, [&] {
    // z = (z + x[j] * w[j]) * nrm[j]
    a.Load(Type::Float(), 6);
    a.Load(fa, 3).Load(Type::Int(), 7).ALoadElem(Type::Float());
    a.Load(fa, 4).Load(Type::Int(), 7).ALoadElem(Type::Float());
    a.FMul().FAdd();
    a.Load(fa, 5).Load(Type::Int(), 7).ALoadElem(Type::Float());
    a.FMul().Store(Type::Float(), 6);
  });
  // p = 1 / (1 + exp(-z))
  a.DConst(1.0);
  a.DConst(1.0);
  a.Load(Type::Float(), 6).Convert(Type::Float(), Type::Double());
  a.Neg(Type::Double());
  a.InvokeStatic("java/lang/Math", "exp");
  a.DAdd();
  a.DDiv().Store(Type::Double(), 9);
  // r = p - (double) y
  a.Load(Type::Double(), 9);
  a.Load(Type::Float(), 8).Convert(Type::Float(), Type::Double());
  a.DSub().Store(Type::Double(), 11);
  // return acc + r * r
  a.Load(Type::Double(), 0);
  a.Load(Type::Double(), 11).Load(Type::Double(), 11).DMul();
  a.DAdd().Ret(Type::Double());

  MethodSignature sig;
  sig.params = {Type::Double(), Type::Class("LRSample")};
  sig.ret = Type::Double();
  pool.Define("LrKernel")
      .AddMethod(jvm::MakeMethod("call", sig, true, 13, a.Finish()));
}

// The manual source-level rewrite: re-associates every non-reducible
// first-order chain `c = (c + X) * Y` into `c = c + X * Y` (a different —
// expert-chosen — computation whose pipeline reaches II 1). Timing-only
// artifact: the manual design's numerics differ from the Scala lambda's.
kir::Kernel ManualLrKernel(const kir::Kernel& generated) {
  kir::Kernel manual = generated.Clone();
  for (kir::Stmt* loop : manual.Loops()) {
    kir::LoopRecurrence rec = kir::AnalyzeRecurrence(*loop);
    if (!rec.carried) continue;
    for (const auto& carrier : rec.carriers) {
      if (manual.FindBuffer(carrier) != nullptr) continue;
      if (kir::IsAssociativeReduction(*loop, carrier)) continue;
      kir::VisitStmt(
          loop->body(),
          std::function<void(kir::Stmt&)>([&](kir::Stmt& s) {
            if (s.kind() != kir::StmtKind::kAssign) return;
            if (s.lhs()->kind() != kir::ExprKind::kVar ||
                s.lhs()->name() != carrier) {
              return;
            }
            const kir::ExprPtr& rhs = s.rhs();
            // Match (carrier + X) * Y.
            if (rhs->kind() != kir::ExprKind::kBinary ||
                rhs->binary_op() != kir::BinaryOp::kMul) {
              return;
            }
            const kir::ExprPtr& sum = rhs->operands()[0];
            const kir::ExprPtr& scale = rhs->operands()[1];
            if (sum->kind() != kir::ExprKind::kBinary ||
                sum->binary_op() != kir::BinaryOp::kAdd) {
              return;
            }
            const kir::ExprPtr& c = sum->operands()[0];
            const kir::ExprPtr& x = sum->operands()[1];
            if (c->kind() != kir::ExprKind::kVar || c->name() != carrier) {
              return;
            }
            s.set_rhs(kir::Expr::Binary(
                kir::BinaryOp::kAdd, c,
                kir::Expr::Binary(kir::BinaryOp::kMul, x, scale)));
          }));
      if (kir::IsAssociativeReduction(*loop, carrier)) {
        loop->set_is_reduction(true);
      }
    }
  }
  // The expert also splits the double-precision loss accumulation into
  // interleaved partial sums ("multiple stages", paper 5.2) — asserting
  // the reorder is acceptable — which the pragma flow expresses as a
  // reduction on the task loop.
  kir::Stmt* task = kir::FindLoop(manual.body, manual.task_loop_id);
  if (task != nullptr) task->set_is_reduction(true);
  return manual;
}

}  // namespace

App MakeLogisticRegression() {
  App app;
  app.name = "LR";
  app.type_label = "regression";
  app.pool = std::make_shared<jvm::ClassPool>();
  DefineKernel(*app.pool);

  app.spec.kernel_name = "lr_kernel";
  app.spec.klass = "LrKernel";
  app.spec.pattern = kir::ParallelPattern::kReduce;
  app.spec.input.type = Type::Class("LRSample");
  {
    b2c::FieldSpec x{"_1", Type::Float(), kDims, true};
    b2c::FieldSpec y{"_2", Type::Float(), 1, false};
    b2c::FieldSpec w{"_3", Type::Float(), kDims, true};
    w.broadcast = true;
    b2c::FieldSpec nrm{"_4", Type::Float(), kDims, true};
    nrm.broadcast = true;
    app.spec.input.fields = {x, y, w, nrm};
  }
  app.spec.output.type = Type::Double();
  app.spec.output.fields = {{"loss", Type::Double(), 1, false}};
  app.spec.batch = 1024;

  app.make_input = [](std::size_t records, Rng& rng) {
    std::vector<float> xs;
    std::vector<float> ys;
    xs.reserve(records * kDims);
    for (std::size_t r = 0; r < records; ++r) {
      for (int d = 0; d < kDims; ++d) {
        xs.push_back(static_cast<float>(rng.NextDouble(-1.0, 1.0)));
      }
      ys.push_back(rng.NextBool() ? 1.0f : 0.0f);
    }
    Dataset d;
    d.AddColumn(FloatColumn("_1", kDims, std::move(xs)));
    d.AddColumn(FloatColumn("_2", 1, std::move(ys)));
    return d;
  };
  app.make_broadcast = [](Rng& rng) {
    std::vector<float> w;
    std::vector<float> nrm;
    for (int d = 0; d < kDims; ++d) {
      w.push_back(static_cast<float>(rng.NextDouble(-0.5, 0.5)));
      nrm.push_back(static_cast<float>(rng.NextDouble(0.9, 1.1)));
    }
    Dataset d;
    d.AddColumn(FloatColumn("_3", kDims, std::move(w)));
    d.AddColumn(FloatColumn("_4", kDims, std::move(nrm)));
    return d;
  };

  app.reference = [](const Dataset& input, const Dataset* broadcast) {
    const Column& xs = input.ColumnByField("_1");
    const Column& ys = input.ColumnByField("_2");
    const Column& w = broadcast->ColumnByField("_3");
    const Column& nrm = broadcast->ColumnByField("_4");
    double loss = 0.0;
    for (std::size_t r = 0; r < input.num_records(); ++r) {
      float z = 0.0f;
      for (int d = 0; d < kDims; ++d) {
        z = (z + xs.data[r * kDims + static_cast<std::size_t>(d)].AsFloat() *
                     w.data[static_cast<std::size_t>(d)].AsFloat()) *
            nrm.data[static_cast<std::size_t>(d)].AsFloat();
      }
      double p = 1.0 / (1.0 + std::exp(-static_cast<double>(z)));
      double res = p - static_cast<double>(ys.data[r].AsFloat());
      loss += res * res;
    }
    Dataset out;
    out.AddColumn(DoubleColumn("loss", 1, {loss}));
    return out;
  };

  app.manual_kernel = ManualLrKernel;
  // Generated loop ids: L0/L1 = w/nrm caches, L2 = feature loop,
  // L3 = task loop.
  app.manual_config.loops[3] = {1, 1, merlin::PipelineMode::kFlatten};
  app.manual_config.buffer_bits["in_1"] = 512;
  app.manual_config.buffer_bits["in_2"] = 64;
  app.manual_config.buffer_bits["in_3"] = 512;
  app.manual_config.buffer_bits["in_4"] = 512;
  app.manual_config.buffer_bits["out_1"] = 64;

  app.bench_records = 8192;
  return app;
}

}  // namespace s2fa::apps
