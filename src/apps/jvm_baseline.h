// The single-threaded JVM baseline of Fig. 4.
//
// Replays the Spark executor path: for every record, construct the lambda's
// argument objects on the JVM heap, invoke the kernel method through the
// bytecode interpreter, and collect the result — accumulating the modeled
// JVM time (interpreter cost model x app-specific scale + per-record Spark
// framework overhead). The produced outputs double as a second golden
// reference for the accelerator path.
#pragma once

#include "apps/app.h"
#include "blaze/dataset.h"

namespace s2fa::apps {

struct JvmRunResult {
  blaze::Dataset output;   // one record per input record (map) or one (reduce)
  double total_ns = 0;     // modeled single-thread JVM time
};

// Runs `app`'s kernel on the JVM model over the whole input.
// `broadcast` must be supplied when the app declares broadcast fields.
JvmRunResult RunOnJvm(const App& app, const blaze::Dataset& input,
                      const blaze::Dataset* broadcast);

}  // namespace s2fa::apps
