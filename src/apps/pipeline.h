// Multi-stage accelerator pipelines: chain several registered accelerators
// (Map or Reduce, chosen from each design's parallel pattern) over one
// dataset, the way a Spark job strings transformations together (paper §2,
// Code 1). The per-stage degradation ledgers aggregate via
// ExecutionStats::Merge, so a host fallback in any stage is visible in the
// pipeline total instead of being overwritten by the next stage's stats.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "blaze/runtime.h"

namespace s2fa::apps {

struct PipelineStage {
  std::string accel_id;  // must be registered with the runtime
  // One-record shared data for this stage; null when the kernel takes none.
  const blaze::Dataset* broadcast = nullptr;
  // Reshapes the previous stage's output into this stage's input (column
  // renames, record regrouping). Identity when null. Host-side, unbilled.
  std::function<blaze::Dataset(const blaze::Dataset&)> adapt;
};

struct PipelineResult {
  blaze::Dataset output;            // the final stage's output
  blaze::ExecutionStats stats;      // all stages, merged
  std::vector<blaze::ExecutionStats> per_stage;
};

// Runs `input` through every stage in order. Throws on an empty stage list
// or an unknown accelerator id.
PipelineResult RunPipeline(blaze::BlazeRuntime& runtime,
                           const std::vector<PipelineStage>& stages,
                           const blaze::Dataset& input);

}  // namespace s2fa::apps
