#include "apps/pipeline.h"

#include "obs/obs.h"
#include "support/error.h"

namespace s2fa::apps {

PipelineResult RunPipeline(blaze::BlazeRuntime& runtime,
                           const std::vector<PipelineStage>& stages,
                           const blaze::Dataset& input) {
  S2FA_REQUIRE(!stages.empty(), "pipeline needs at least one stage");
  S2FA_SPAN("apps.pipeline");

  PipelineResult result;
  blaze::Dataset current = input;
  for (const PipelineStage& stage : stages) {
    const blaze::RegisteredAccelerator& accel =
        runtime.manager().Get(stage.accel_id);
    if (stage.adapt) current = stage.adapt(current);
    blaze::ExecutionStats stage_stats;
    current = accel.design.pattern == kir::ParallelPattern::kReduce
                  ? runtime.Reduce(stage.accel_id, current, stage.broadcast,
                                   &stage_stats)
                  : runtime.Map(stage.accel_id, current, stage.broadcast,
                                &stage_stats);
    result.stats.Merge(stage_stats);
    result.per_stage.push_back(std::move(stage_stats));
  }
  result.output = std::move(current);
  return result;
}

}  // namespace s2fa::apps
