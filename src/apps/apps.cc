#include "apps/app.h"

#include "support/error.h"

namespace s2fa::apps {

std::vector<App> AllApps() {
  std::vector<App> apps;
  apps.push_back(MakePageRank());
  apps.push_back(MakeKMeans());
  apps.push_back(MakeKnn());
  apps.push_back(MakeLogisticRegression());
  apps.push_back(MakeSvm());
  apps.push_back(MakeLinearLeastSquares());
  apps.push_back(MakeAes());
  apps.push_back(MakeSmithWaterman());
  return apps;
}

App FindApp(const std::string& name) {
  for (App& app : AllApps()) {
    if (app.name == name) return std::move(app);
  }
  throw InvalidArgument("unknown app " + name +
                        " (expected PR, KMeans, KNN, LR, SVM, LLS, AES or "
                        "S-W)");
}

}  // namespace s2fa::apps
