// PR (PageRank) — graph processing.
//
// Per node: new_rank = 0.15 + 0.85 * sum(neighbor contributions). The
// computational pattern is "too simple to hide the communication latency"
// (paper §5.2): 64 floats in per one float out makes the accelerator
// bandwidth-bound, so even the manual design shows a modest speedup and
// the best configurations leave most of the fabric idle (Table 2: 25%
// BRAM, 2% DSP).
#include "apps/detail.h"

namespace s2fa::apps {

namespace {

using namespace detail;

constexpr int kContribs = 64;

void DefineKernel(jvm::ClassPool& pool) {
  Assembler a;
  // static float call(float[] contribs)
  // locals: 0=contribs, 1=acc, 2=j
  a.FConst(0.0f).Store(Type::Float(), 1);
  EmitLoop(a, 2, kContribs, [&] {
    a.Load(Type::Float(), 1);
    a.Load(Type::Array(Type::Float()), 0).Load(Type::Int(), 2)
        .ALoadElem(Type::Float());
    a.FAdd().Store(Type::Float(), 1);
  });
  a.FConst(0.15f);
  a.Load(Type::Float(), 1).FConst(0.85f).FMul();
  a.FAdd().Ret(Type::Float());

  MethodSignature sig;
  sig.params = {Type::Array(Type::Float())};
  sig.ret = Type::Float();
  pool.Define("PageRankKernel")
      .AddMethod(jvm::MakeMethod("call", sig, /*is_static=*/true, 3,
                                 a.Finish()));
}

}  // namespace

App MakePageRank() {
  App app;
  app.name = "PR";
  app.type_label = "graph proc.";
  app.pool = std::make_shared<jvm::ClassPool>();
  DefineKernel(*app.pool);

  app.spec.kernel_name = "pr_kernel";
  app.spec.klass = "PageRankKernel";
  app.spec.input.type = Type::Array(Type::Float());
  app.spec.input.fields = {{"contribs", Type::Float(), kContribs, true}};
  app.spec.output.type = Type::Float();
  app.spec.output.fields = {{"rank", Type::Float(), 1, false}};
  app.spec.batch = 2048;  // bandwidth-bound kernels amortize with big batches

  app.make_input = [](std::size_t records, Rng& rng) {
    std::vector<float> contribs;
    contribs.reserve(records * kContribs);
    for (std::size_t n = 0; n < records * kContribs; ++n) {
      contribs.push_back(static_cast<float>(rng.NextDouble(0.0, 0.01)));
    }
    Dataset d;
    d.AddColumn(FloatColumn("contribs", kContribs, std::move(contribs)));
    return d;
  };

  app.reference = [](const Dataset& input, const Dataset*) {
    const Column& col = input.ColumnByField("contribs");
    std::vector<float> ranks;
    ranks.reserve(input.num_records());
    for (std::size_t r = 0; r < input.num_records(); ++r) {
      float acc = 0.0f;
      for (int j = 0; j < kContribs; ++j) {
        acc += col.data[r * kContribs + static_cast<std::size_t>(j)]
                   .AsFloat();
      }
      ranks.push_back(0.15f + 0.85f * acc);
    }
    Dataset out;
    out.AddColumn(FloatColumn("rank", 1, std::move(ranks)));
    return out;
  };

  // Generated loop ids: L0 = contribution sum, L1 = task loop.
  app.manual_config.loops[0] = {1, 32, merlin::PipelineMode::kOn};
  app.manual_config.loops[1] = {1, 64, merlin::PipelineMode::kOn};
  app.manual_config.buffer_bits["in_1"] = 512;
  app.manual_config.buffer_bits["out_1"] = 512;

  app.bench_records = 16384;
  return app;
}

}  // namespace s2fa::apps
