// SVM (Support Vector Machine) — regression/classification.
//
// Per sample: the hinge loss max(0, 1 − y·(w·x)) against a broadcast weight
// vector. The dot product is a clean associative reduction, so the DSE can
// unroll it with a tree rewrite; FF/LUT dominate the utilization (Table 2).
#include "apps/detail.h"

namespace s2fa::apps {

namespace {

using namespace detail;

constexpr int kDims = 32;

void DefineKernel(jvm::ClassPool& pool) {
  jvm::Klass& in = pool.Define("SVMSample");
  in.AddField({"_1", Type::Array(Type::Float())});  // features
  in.AddField({"_2", Type::Float()});               // label (+1/-1)
  in.AddField({"_3", Type::Array(Type::Float())});  // weights (broadcast)

  Assembler a;
  // static float call(SVMSample in)
  // locals: 0=in, 1=x, 2=w, 3=y, 4=s, 5=j
  const Type fa = Type::Array(Type::Float());
  a.Load(Type::Class("SVMSample"), 0).GetField("SVMSample", "_1")
      .Store(fa, 1);
  a.Load(Type::Class("SVMSample"), 0).GetField("SVMSample", "_3")
      .Store(fa, 2);
  a.Load(Type::Class("SVMSample"), 0).GetField("SVMSample", "_2")
      .Store(Type::Float(), 3);
  a.FConst(0.0f).Store(Type::Float(), 4);
  EmitLoop(a, 5, kDims, [&] {
    a.Load(Type::Float(), 4);
    a.Load(fa, 1).Load(Type::Int(), 5).ALoadElem(Type::Float());
    a.Load(fa, 2).Load(Type::Int(), 5).ALoadElem(Type::Float());
    a.FMul().FAdd().Store(Type::Float(), 4);
  });
  // return max(1 - y*s, 0)
  a.FConst(1.0f);
  a.Load(Type::Float(), 3).Load(Type::Float(), 4).FMul();
  a.FSub();
  a.FConst(0.0f);
  a.Bin(Type::Float(), jvm::BinOp::kMax);
  a.Ret(Type::Float());

  MethodSignature sig;
  sig.params = {Type::Class("SVMSample")};
  sig.ret = Type::Float();
  pool.Define("SvmKernel")
      .AddMethod(jvm::MakeMethod("call", sig, true, 6, a.Finish()));
}

}  // namespace

App MakeSvm() {
  App app;
  app.name = "SVM";
  app.type_label = "regression";
  app.pool = std::make_shared<jvm::ClassPool>();
  DefineKernel(*app.pool);

  app.spec.kernel_name = "svm_kernel";
  app.spec.klass = "SvmKernel";
  app.spec.input.type = Type::Class("SVMSample");
  {
    b2c::FieldSpec x{"_1", Type::Float(), kDims, true};
    b2c::FieldSpec y{"_2", Type::Float(), 1, false};
    b2c::FieldSpec w{"_3", Type::Float(), kDims, true};
    w.broadcast = true;
    app.spec.input.fields = {x, y, w};
  }
  app.spec.output.type = Type::Float();
  app.spec.output.fields = {{"hinge", Type::Float(), 1, false}};
  app.spec.batch = 1024;

  app.make_input = [](std::size_t records, Rng& rng) {
    std::vector<float> xs;
    std::vector<float> ys;
    xs.reserve(records * kDims);
    for (std::size_t r = 0; r < records; ++r) {
      for (int d = 0; d < kDims; ++d) {
        xs.push_back(static_cast<float>(rng.NextDouble(-1.0, 1.0)));
      }
      ys.push_back(rng.NextBool() ? 1.0f : -1.0f);
    }
    Dataset d;
    d.AddColumn(FloatColumn("_1", kDims, std::move(xs)));
    d.AddColumn(FloatColumn("_2", 1, std::move(ys)));
    return d;
  };
  app.make_broadcast = [](Rng& rng) {
    std::vector<float> w;
    for (int d = 0; d < kDims; ++d) {
      w.push_back(static_cast<float>(rng.NextDouble(-0.5, 0.5)));
    }
    Dataset d;
    d.AddColumn(FloatColumn("_3", kDims, std::move(w)));
    return d;
  };

  app.reference = [](const Dataset& input, const Dataset* broadcast) {
    const Column& xs = input.ColumnByField("_1");
    const Column& ys = input.ColumnByField("_2");
    const Column& w = broadcast->ColumnByField("_3");
    std::vector<float> hinge;
    for (std::size_t r = 0; r < input.num_records(); ++r) {
      float s = 0.0f;
      for (int d = 0; d < kDims; ++d) {
        s += xs.data[r * kDims + static_cast<std::size_t>(d)].AsFloat() *
             w.data[static_cast<std::size_t>(d)].AsFloat();
      }
      float margin = 1.0f - ys.data[r].AsFloat() * s;
      hinge.push_back(std::max(margin, 0.0f));
    }
    Dataset out;
    out.AddColumn(FloatColumn("hinge", 1, std::move(hinge)));
    return out;
  };

  // Generated loop ids: L0 = weight cache, L1 = dot loop, L2 = task loop.
  app.manual_config.loops[1] = {1, kDims, merlin::PipelineMode::kOff};
  app.manual_config.loops[2] = {1, 4, merlin::PipelineMode::kFlatten};
  app.manual_config.buffer_bits["in_1"] = 512;
  app.manual_config.buffer_bits["in_2"] = 64;
  app.manual_config.buffer_bits["in_3"] = 512;
  app.manual_config.buffer_bits["out_1"] = 64;

  app.bench_records = 8192;
  return app;
}

}  // namespace s2fa::apps
