// DSE evaluation journal: checkpoint/resume for expensive explorations.
//
// Every completed evaluation is appended as one JSONL line of
// (key, outcome), where the key is "<scope>|<config.ToString()>" — the
// scope isolates the training phase and each partition so that a resumed
// run replays exactly the stream the killed run produced, regardless of
// thread interleaving. On Open() an existing journal is loaded and
// subsequent lookups for known keys are answered from memory without
// calling the black box: a killed exploration restarts without re-paying
// a single journaled synthesis job. A torn trailing line (the writer died
// mid-append) is skipped with a warning rather than failing the resume.
//
// Format (one object per line; cost null encodes an infinite/infeasible
// objective, since JSON has no Infinity):
//   {"key":"p0|{L0: tile=1 par=8 ...}","feasible":true,
//    "cost":123.45,"eval_minutes":5.5}
#pragma once

#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "tuner/driver.h"

namespace s2fa::resilience {

struct JournalEntry {
  std::string key;
  tuner::EvalOutcome outcome;
};

std::string RenderJournalEntry(const JournalEntry& entry);
// Throws MalformedInput on unparsable lines.
JournalEntry ParseJournalEntry(const std::string& line);

class EvalJournal {
 public:
  EvalJournal() = default;  // closed: Wrap() still memoizes, no file I/O

  // Loads `path` if it exists (skipping corrupt lines with a warning) and
  // opens it for appending. Throws Error when the path is not writable.
  void Open(const std::string& path);
  bool open() const { return out_.is_open(); }

  std::optional<tuner::EvalOutcome> Find(const std::string& key) const;
  void Record(const std::string& key, const tuner::EvalOutcome& outcome);

  std::size_t entries() const;   // keys known (loaded + recorded)
  std::size_t hits() const;      // evaluations answered from the journal
  std::size_t resumed() const;   // entries loaded from disk at Open()

  // Wraps `inner` under `scope`: journaled keys short-circuit, misses
  // evaluate and record. The journal must outlive the returned function.
  tuner::EvalFn Wrap(const std::string& scope, tuner::EvalFn inner);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, tuner::EvalOutcome> entries_;
  std::ofstream out_;
  std::size_t hits_ = 0;
  std::size_t resumed_ = 0;
};

}  // namespace s2fa::resilience
