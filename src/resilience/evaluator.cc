#include "resilience/evaluator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>

#include "obs/obs.h"
#include "resilience/fault.h"
#include "support/logging.h"

namespace s2fa::resilience {

void ResilienceStats::Merge(const ResilienceStats& other) {
  calls += other.calls;
  attempts += other.attempts;
  successes += other.successes;
  crashes += other.crashes;
  timeouts += other.timeouts;
  garbage += other.garbage;
  retries += other.retries;
  exhausted += other.exhausted;
  breaker_trips += other.breaker_trips;
  short_circuits += other.short_circuits;
  backoff_minutes += other.backoff_minutes;
}

EnvKnobs ReadEnvKnobs() {
  EnvKnobs knobs;
  auto number = [](const char* name) -> std::optional<double> {
    const char* raw = std::getenv(name);
    if (raw == nullptr || raw[0] == '\0') return std::nullopt;
    char* end = nullptr;
    double value = std::strtod(raw, &end);
    if (end == raw || *end != '\0' || !std::isfinite(value)) {
      S2FA_LOG_WARN("ignoring malformed " << name << "='" << raw << "'");
      return std::nullopt;
    }
    return value;
  };
  if (auto v = number("S2FA_EVAL_TIMEOUT")) {
    if (*v > 0) knobs.eval_timeout_minutes = *v;
    else S2FA_LOG_WARN("ignoring non-positive S2FA_EVAL_TIMEOUT");
  }
  if (auto v = number("S2FA_EVAL_RETRIES")) {
    if (*v >= 0) knobs.eval_retries = static_cast<int>(*v);
    else S2FA_LOG_WARN("ignoring negative S2FA_EVAL_RETRIES");
  }
  if (auto v = number("S2FA_FAULT_RATE")) {
    if (*v >= 0 && *v <= 1.0) knobs.fault_rate = *v;
    else S2FA_LOG_WARN("ignoring out-of-range S2FA_FAULT_RATE");
  }
  if (const char* raw = std::getenv("S2FA_RESUME_JOURNAL")) {
    if (raw[0] != '\0') knobs.resume_journal = std::string(raw);
  }
  return knobs;
}

ResilientEvaluator::ResilientEvaluator(AttemptEvalFn inner,
                                       ResilienceOptions options,
                                       std::string scope)
    : inner_(std::move(inner)),
      options_(options),
      scope_(std::move(scope)) {
  S2FA_REQUIRE(inner_ != nullptr, "no evaluation function");
  S2FA_REQUIRE(options_.max_retries >= 0, "max_retries must be >= 0");
  S2FA_REQUIRE(options_.deadline_minutes > 0, "deadline must be positive");
  if (options_.wall_timeout_ms > 0) {
    watchdog_ = std::make_unique<ThreadPool>(static_cast<std::size_t>(
        std::max(1, options_.watchdog_threads)));
  }
}

ResilientEvaluator::ResilientEvaluator(tuner::EvalFn inner,
                                       ResilienceOptions options,
                                       std::string scope)
    : ResilientEvaluator(IgnoreAttempt(std::move(inner)), options,
                         std::move(scope)) {}

double ResilientEvaluator::BackoffMinutes(const std::string& key,
                                          int retry) const {
  double delay = options_.backoff_base_minutes *
                 std::pow(options_.backoff_multiplier, retry - 1);
  delay = std::min(delay, options_.backoff_max_minutes);
  // Deterministic jitter in [1-j, 1+j]: hashed, not drawn from shared RNG
  // state, so concurrent partitions can't perturb each other's schedules.
  const double u = detail::HashRoll(options_.seed ^ 0xBACC0FFULL, key, retry);
  return delay * (1.0 + options_.backoff_jitter * (2.0 * u - 1.0));
}

tuner::EvalOutcome ResilientEvaluator::Attempt(
    const merlin::DesignConfig& config, int attempt, FailureKind* failure,
    double* charge) {
  *failure = FailureKind::kNone;
  *charge = 0;
  tuner::EvalOutcome outcome;
  try {
    if (watchdog_ != nullptr) {
      // The watchdog owns the attempt; a copy of the config rides along so
      // an abandoned task never dangles. The abandoned task keeps a worker
      // busy until it finishes on its own — bounded hangs only.
      merlin::DesignConfig copy = config;
      auto future = watchdog_->Submit(
          [this, copy = std::move(copy), attempt] {
            return inner_(copy, attempt);
          });
      if (future.wait_for(std::chrono::duration<double, std::milli>(
              options_.wall_timeout_ms)) != std::future_status::ready) {
        *failure = FailureKind::kTimeout;
        *charge = options_.deadline_minutes;
        return outcome;
      }
      outcome = future.get();
    } else {
      outcome = inner_(config, attempt);
    }
  } catch (const std::exception& e) {
    *failure = FailureKind::kCrash;
    *charge = options_.crash_charge_minutes;
    S2FA_LOG_DEBUG("[" << scope_ << "] evaluator crash on attempt "
                       << attempt << ": " << e.what());
    return outcome;
  }
  if (outcome.eval_minutes > options_.deadline_minutes) {
    // The job would still be running at the deadline; the watchdog kills
    // it there, so the clock is charged exactly the deadline.
    *failure = FailureKind::kTimeout;
    *charge = options_.deadline_minutes;
    return outcome;
  }
  if (GarbageOutcome(outcome)) {
    *failure = FailureKind::kGarbageResult;
    // The tool ran to completion before emitting junk; charge its claimed
    // runtime when sane, the crash charge otherwise.
    *charge = (std::isfinite(outcome.eval_minutes) &&
               outcome.eval_minutes > 0)
                  ? outcome.eval_minutes
                  : options_.crash_charge_minutes;
    return outcome;
  }
  return outcome;
}

tuner::EvalOutcome ResilientEvaluator::Evaluate(
    const merlin::DesignConfig& config) {
  if (!options_.enabled) {
    tuner::EvalOutcome outcome = inner_(config, 0);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.calls;
    ++stats_.attempts;
    ++stats_.successes;
    return outcome;
  }

  bool probe = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.calls;
    if (breaker_remaining_ > 0) {
      --breaker_remaining_;
      ++stats_.short_circuits;
      if (breaker_remaining_ == 0) half_open_ = true;
      S2FA_COUNT("resilience.short_circuits", 1);
      tuner::EvalOutcome rejected;
      rejected.feasible = false;
      rejected.cost = tuner::kInfeasibleCost;
      rejected.eval_minutes = options_.short_circuit_minutes;
      return rejected;
    }
    probe = half_open_;
  }

  const std::string key = config.ToString();
  double charged = 0;
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      const double delay = BackoffMinutes(key, attempt);
      charged += delay;
      S2FA_COUNT("resilience.retries", 1);
      S2FA_OBSERVE("resilience.backoff_minutes", delay);
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.retries;
      stats_.backoff_minutes += delay;
    }
    FailureKind failure = FailureKind::kNone;
    double charge = 0;
    tuner::EvalOutcome outcome = Attempt(config, attempt, &failure, &charge);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.attempts;
    }
    if (failure == FailureKind::kNone) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.successes;
        consecutive_exhausted_ = 0;
        half_open_ = false;
      }
      outcome.eval_minutes += charged;
      return outcome;
    }
    charged += charge;
    S2FA_COUNT(std::string("resilience.failure.") + FailureKindName(failure),
               1);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      switch (failure) {
        case FailureKind::kCrash: ++stats_.crashes; break;
        case FailureKind::kTimeout: ++stats_.timeouts; break;
        case FailureKind::kGarbageResult: ++stats_.garbage; break;
        case FailureKind::kNone: break;
      }
    }
  }

  // Retries exhausted: degrade gracefully and feed the circuit breaker.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.exhausted;
    ++consecutive_exhausted_;
    const bool trip =
        probe || consecutive_exhausted_ >= options_.breaker_threshold;
    if (trip && options_.breaker_cooldown > 0) {
      breaker_remaining_ = options_.breaker_cooldown;
      consecutive_exhausted_ = 0;
      half_open_ = false;
      ++stats_.breaker_trips;
      S2FA_COUNT("resilience.breaker_trips", 1);
      S2FA_LOG_WARN("[" << scope_ << "] circuit breaker tripped; "
                        << "short-circuiting the next "
                        << options_.breaker_cooldown << " evaluations");
    }
  }
  S2FA_COUNT("resilience.exhausted", 1);
  S2FA_LOG_DEBUG("[" << scope_ << "] retries exhausted for " << key
                     << "; degrading to infeasible after " << charged
                     << " simulated minutes");
  tuner::EvalOutcome degraded;
  degraded.feasible = false;
  degraded.cost = tuner::kInfeasibleCost;
  degraded.eval_minutes = charged;
  return degraded;
}

tuner::EvalFn ResilientEvaluator::AsEvalFn() {
  return [this](const merlin::DesignConfig& config) {
    return Evaluate(config);
  };
}

ResilienceStats ResilientEvaluator::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

bool ResilientEvaluator::breaker_open() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return breaker_remaining_ > 0;
}

}  // namespace s2fa::resilience
