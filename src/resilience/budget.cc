#include "resilience/budget.h"

#include <algorithm>

namespace s2fa::resilience {

RetryBudget::RetryBudget(RetryBudgetOptions options)
    : options_(options) {
  S2FA_REQUIRE(options_.refill_per_sec >= 0,
               "retry budget refill rate must be >= 0, got "
                   << options_.refill_per_sec);
  S2FA_REQUIRE(options_.burst >= 1,
               "retry budget burst must be >= 1, got " << options_.burst);
}

RetryBudget::Bucket& RetryBudget::Refill(const std::string& key,
                                         double now_us) {
  Bucket& bucket = buckets_[key];
  if (!bucket.initialized) {
    bucket.tokens = options_.burst;
    bucket.updated_us = now_us;
    bucket.initialized = true;
    return bucket;
  }
  S2FA_CHECK(now_us >= bucket.updated_us,
             "retry budget time went backwards for "
                 << key << ": " << now_us << " < " << bucket.updated_us);
  const double elapsed_s = (now_us - bucket.updated_us) / 1e6;
  bucket.tokens = std::min(options_.burst,
                           bucket.tokens + elapsed_s * options_.refill_per_sec);
  bucket.updated_us = now_us;
  return bucket;
}

bool RetryBudget::TryAcquire(const std::string& key, double now_us) {
  Bucket& bucket = Refill(key, now_us);
  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    ++granted_;
    return true;
  }
  ++denied_;
  return false;
}

double RetryBudget::TokensAt(const std::string& key, double now_us) {
  return Refill(key, now_us).tokens;
}

}  // namespace s2fa::resilience
