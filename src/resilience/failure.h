// Failure taxonomy for black-box design-point evaluations (AutoDSE's
// "unreliable oracle" view of the HLS tool, applied to our Merlin+SDx
// stand-in).
//
// An evaluation can fail three ways, and the resilience layer treats them
// differently from a *legitimately infeasible* design (illegal factor
// combination, resource overflow), which is a valid answer and never
// retried:
//   * kCrash         — the evaluator threw (the HLS job died);
//   * kTimeout       — the evaluation blew its per-point deadline, either
//                      on the simulated clock or the wall-clock watchdog;
//   * kGarbageResult — the evaluator returned, but the outcome is
//                      self-contradictory (NaN/negative cost, a "feasible"
//                      design with infinite cost, a nonsensical synthesis
//                      time) and cannot be trusted.
#pragma once

#include <functional>

#include "tuner/driver.h"

namespace s2fa::resilience {

enum class FailureKind { kNone, kCrash, kTimeout, kGarbageResult };

const char* FailureKindName(FailureKind kind);

// True when `outcome` is internally inconsistent and must be discarded.
// A clean infeasible outcome (feasible=false, infinite cost, sane
// eval_minutes) is NOT garbage.
bool GarbageOutcome(const tuner::EvalOutcome& outcome);

// An EvalFn that also sees which attempt (0 = first try) is asking — the
// hook fault injection and retry-aware evaluators share.
using AttemptEvalFn =
    std::function<tuner::EvalOutcome(const merlin::DesignConfig&, int)>;

// Lifts a plain EvalFn (attempt-oblivious) into an AttemptEvalFn.
AttemptEvalFn IgnoreAttempt(tuner::EvalFn fn);

}  // namespace s2fa::resilience
