#include "resilience/journal.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/obs.h"
#include "support/error.h"
#include "support/logging.h"

namespace s2fa::resilience {

namespace {

std::string JsonString(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

// A pocket parser for exactly the lines RenderJournalEntry emits: one flat
// object of string / number / null / bool fields.
class LineParser {
 public:
  explicit LineParser(const std::string& line) : text_(line) {}

  JournalEntry Parse() {
    JournalEntry entry;
    bool have_key = false, have_feasible = false, have_minutes = false;
    bool have_cost = false;
    Expect('{');
    while (true) {
      std::string field = ParseString();
      Expect(':');
      if (field == "key") {
        entry.key = ParseString();
        have_key = true;
      } else if (field == "feasible") {
        entry.outcome.feasible = ParseBool();
        have_feasible = true;
      } else if (field == "cost") {
        entry.outcome.cost = ParseNumberOrNull(tuner::kInfeasibleCost);
        have_cost = true;
      } else if (field == "eval_minutes") {
        entry.outcome.eval_minutes = ParseNumberOrNull(0.0);
        have_minutes = true;
      } else if (field == "bottleneck") {
        // Optional (absent on pre-attribution journals and kNone results).
        const std::string name = ParseString();
        auto kind = hls::BottleneckKindFromName(name);
        if (!kind) {
          throw MalformedInput("journal: unknown bottleneck '" + name + "'");
        }
        entry.outcome.bottleneck.kind = *kind;
      } else if (field == "bneck_quantity") {
        entry.outcome.bottleneck.quantity = ParseNumberOrNull(0.0);
      } else if (field == "bneck_margin") {
        entry.outcome.bottleneck.margin = ParseNumberOrNull(0.0);
      } else {
        throw MalformedInput("journal: unknown field '" + field + "'");
      }
      char c = Next();
      if (c == '}') break;
      if (c != ',') throw MalformedInput("journal: expected ',' or '}'");
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      throw MalformedInput("journal: trailing content");
    }
    if (!have_key || !have_feasible || !have_cost || !have_minutes) {
      throw MalformedInput("journal: incomplete entry");
    }
    return entry;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Next() {
    SkipSpace();
    if (pos_ >= text_.size()) throw MalformedInput("journal: truncated line");
    return text_[pos_++];
  }

  void Expect(char c) {
    if (Next() != c) {
      throw MalformedInput(std::string("journal: expected '") + c + "'");
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              throw MalformedInput("journal: truncated \\u escape");
            }
            int code =
                std::stoi(text_.substr(pos_, 4), nullptr, 16);
            pos_ += 4;
            out += static_cast<char>(code);
            break;
          }
          default: out += esc;
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= text_.size()) {
      throw MalformedInput("journal: unterminated string");
    }
    ++pos_;  // closing quote
    return out;
  }

  bool ParseBool() {
    SkipSpace();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    throw MalformedInput("journal: expected boolean");
  }

  double ParseNumberOrNull(double null_value) {
    SkipSpace();
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return null_value;
    }
    std::size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) throw MalformedInput("journal: expected number");
    double value = std::stod(text_.substr(pos_, end - pos_));
    pos_ = end;
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::string JsonNumberOrNull(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

std::string RenderJournalEntry(const JournalEntry& entry) {
  std::ostringstream oss;
  oss << "{\"key\":" << JsonString(entry.key)
      << ",\"feasible\":" << (entry.outcome.feasible ? "true" : "false")
      << ",\"cost\":" << JsonNumberOrNull(entry.outcome.cost)
      << ",\"eval_minutes\":" << JsonNumberOrNull(entry.outcome.eval_minutes);
  if (entry.outcome.bottleneck.kind != hls::BottleneckKind::kNone) {
    // kNone renders as the bare legacy line, so old and new journals
    // interleave and a no-attribution entry round-trips byte-identically.
    oss << ",\"bottleneck\":"
        << JsonString(hls::BottleneckKindName(entry.outcome.bottleneck.kind))
        << ",\"bneck_quantity\":"
        << JsonNumberOrNull(entry.outcome.bottleneck.quantity)
        << ",\"bneck_margin\":"
        << JsonNumberOrNull(entry.outcome.bottleneck.margin);
  }
  oss << "}";
  return oss.str();
}

JournalEntry ParseJournalEntry(const std::string& line) {
  return LineParser(line).Parse();
}

void EvalJournal::Open(const std::string& path) {
  S2FA_REQUIRE(!path.empty(), "journal path must be non-empty");
  std::lock_guard<std::mutex> lock(mutex_);
  S2FA_REQUIRE(!out_.is_open(), "journal already open");
  {
    std::ifstream in(path);
    std::string line;
    std::size_t skipped = 0;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      try {
        JournalEntry entry = ParseJournalEntry(line);
        entries_[entry.key] = entry.outcome;
        ++resumed_;
      } catch (const MalformedInput&) {
        // A torn trailing line means the previous run died mid-append; the
        // evaluation it described simply gets re-done.
        ++skipped;
      }
    }
    if (skipped > 0) {
      S2FA_LOG_WARN("journal " << path << ": skipped " << skipped
                               << " corrupt line(s) on resume");
    }
  }
  // A kill mid-append can leave a torn final line with no newline. Sealing
  // it here keeps the next Record() on its own line; without this, the new
  // record glues onto the torn tail and both are lost on the next resume.
  bool seal_torn_tail = false;
  {
    std::ifstream tail(path, std::ios::binary);
    if (tail) {
      tail.seekg(0, std::ios::end);
      if (tail.tellg() > 0) {
        tail.seekg(-1, std::ios::end);
        char last = '\n';
        tail.get(last);
        seal_torn_tail = last != '\n';
      }
    }
  }
  out_.open(path, std::ios::app);
  if (!out_) {
    throw Error("cannot open journal " + path + " for appending");
  }
  if (seal_torn_tail) {
    out_ << '\n';
    out_.flush();
  }
  S2FA_LOG_INFO("journal " << path << ": resumed " << resumed_
                           << " evaluation(s)");
}

std::optional<tuner::EvalOutcome> EvalJournal::Find(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void EvalJournal::Record(const std::string& key,
                         const tuner::EvalOutcome& outcome) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[key] = outcome;
  if (out_.is_open()) {
    // One write() of the full line (newline included) per record: the
    // stream never holds a half-rendered entry in its buffer, so a crash
    // mid-record can tear at most the final line — which Open() already
    // skips as corrupt on resume — never interleave two records.
    const std::string line = RenderJournalEntry({key, outcome}) + '\n';
    out_.write(line.data(), static_cast<std::streamsize>(line.size()));
    out_.flush();  // each record survives a kill right after it
  }
}

std::size_t EvalJournal::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::size_t EvalJournal::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t EvalJournal::resumed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return resumed_;
}

tuner::EvalFn EvalJournal::Wrap(const std::string& scope,
                                tuner::EvalFn inner) {
  return [this, scope, inner = std::move(inner)](
             const merlin::DesignConfig& config) {
    const std::string key = scope + "|" + config.ToString();
    if (auto cached = Find(key)) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++hits_;
      }
      S2FA_COUNT("resilience.journal_hits", 1);
      return *cached;
    }
    tuner::EvalOutcome outcome = inner(config);
    Record(key, outcome);
    return outcome;
  };
}

}  // namespace s2fa::resilience
