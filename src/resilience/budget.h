// Deterministic retry budgets: refill-rate token buckets on simulated time.
//
// Overload amplifies itself when every shed request immediately retries —
// the classic retry storm. A RetryBudget caps each tenant's retry rate with
// a token bucket that refills at `refill_per_sec` tokens per simulated
// second up to `burst` tokens. Because time is the caller's simulated
// clock (never wall time) and state is just (tokens, last refill time),
// grant decisions replay bit-identically across runs and thread counts.
//
// The bucket starts full, so a tenant can always absorb one transient
// burst of `burst` retries; sustained retrying beyond the refill rate is
// denied and the caller accounts the request as shed instead.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "support/error.h"

namespace s2fa::resilience {

struct RetryBudgetOptions {
  double refill_per_sec = 10.0;  // tokens per simulated second
  double burst = 4.0;            // bucket capacity (initial fill)
};

class RetryBudget {
 public:
  RetryBudget() = default;
  explicit RetryBudget(RetryBudgetOptions options);

  const RetryBudgetOptions& options() const { return options_; }

  // True when `key`'s bucket has a full token at simulated `now_us`;
  // consumes it. `now_us` must be monotone per key (checked).
  bool TryAcquire(const std::string& key, double now_us);

  // Current (post-refill) token level for `key` without consuming.
  double TokensAt(const std::string& key, double now_us);

  // Grants and denials so far, for ledgers.
  std::uint64_t granted() const { return granted_; }
  std::uint64_t denied() const { return denied_; }

 private:
  struct Bucket {
    double tokens = 0;
    double updated_us = 0;
    bool initialized = false;
  };

  Bucket& Refill(const std::string& key, double now_us);

  RetryBudgetOptions options_;
  std::map<std::string, Bucket> buckets_;
  std::uint64_t granted_ = 0;
  std::uint64_t denied_ = 0;
};

}  // namespace s2fa::resilience
