// Deterministic fault injection for evaluation black boxes.
//
// A FaultPlan decides, purely from (seed, design config, attempt index),
// whether an evaluation attempt crashes, times out, or returns garbage.
// Because the decision is a stateless hash, the same run replays the same
// faults regardless of thread scheduling or call order — which is what
// makes every failure mode unit-testable and keeps a fault-injected DSE
// bit-for-bit reproducible. A point that fails on attempt 0 can still
// succeed on attempt 1: each (config, attempt) pair rolls independently.
#pragma once

#include <cstdint>
#include <string>

#include "resilience/failure.h"
#include "support/error.h"

namespace s2fa::resilience {

// Thrown by an injected kCrash (distinct from real evaluator errors so
// tests can tell them apart; the resilience layer treats both as kCrash).
class InjectedCrash : public Error {
 public:
  explicit InjectedCrash(const std::string& what) : Error(what) {}
};

struct FaultPlanOptions {
  double crash_rate = 0;    // P(attempt throws)
  double timeout_rate = 0;  // P(attempt returns eval_minutes = infinity)
  double garbage_rate = 0;  // P(attempt returns a NaN-cost outcome)
  std::uint64_t seed = 0x5EEDFA17ULL;
  // When > 0, an injected timeout also sleeps this many wall milliseconds
  // (to exercise the wall-clock watchdog); 0 keeps timeouts purely
  // simulated.
  double wall_hang_ms = 0;
};

class FaultPlan {
 public:
  FaultPlan() = default;  // inactive: every attempt passes through
  explicit FaultPlan(FaultPlanOptions options);

  bool active() const;
  const FaultPlanOptions& options() const { return options_; }

  // The fault (or kNone) this plan injects for `key` on `attempt`.
  FailureKind Decide(const std::string& key, int attempt) const;

  // Wraps `inner`: each attempt first consults Decide (keyed off the
  // config's ToString), then falls through to the real evaluator.
  AttemptEvalFn Instrument(tuner::EvalFn inner) const;

 private:
  FaultPlanOptions options_;
};

namespace detail {

// Uniform in [0, 1) hashed from (seed, key, attempt) — stateless, shared
// by fault decisions and backoff jitter so both replay deterministically.
double HashRoll(std::uint64_t seed, const std::string& key, int attempt);

}  // namespace detail

}  // namespace s2fa::resilience
