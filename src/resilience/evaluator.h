// ResilientEvaluator: wraps a black-box tuner::EvalFn so that one bad
// design point can never take down a partition thread.
//
// Per evaluation it enforces:
//   * a per-point deadline on the simulated clock (an attempt whose
//     eval_minutes exceeds it is killed and charged exactly the deadline),
//     plus an optional wall-clock watchdog that runs the attempt on a small
//     ThreadPool and abandons it when real time runs out;
//   * bounded retries with exponential backoff and deterministic jitter
//     (hashed from seed + config + attempt, so reruns replay identically);
//   * failure classification (kCrash / kTimeout / kGarbageResult) — a
//     legitimately infeasible design is a valid answer and is never
//     retried;
//   * a circuit breaker: after `breaker_threshold` consecutive points whose
//     retries all failed, the next `breaker_cooldown` calls short-circuit
//     to an infeasible outcome at a token cost, then one half-open probe
//     decides between closing and re-tripping;
//   * graceful degradation: when retries are exhausted the caller gets a
//     clean infeasible outcome (cost = kInfeasibleCost) charged with all
//     the time the failures burned — the search continues, it just paid.
//
// All failure handling is charged to the simulated clock, so a
// fault-injected DSE remains deterministic and comparable to a fault-free
// one.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "resilience/failure.h"
#include "support/thread_pool.h"

namespace s2fa::resilience {

struct ResilienceOptions {
  bool enabled = true;
  int max_retries = 2;             // attempts per point = 1 + max_retries
  double deadline_minutes = 60.0;  // per-point simulated deadline ("minutes
                                   // to an hour", paper §4.3.3)
  double wall_timeout_ms = 0;      // real watchdog per attempt; 0 = off
  int watchdog_threads = 2;        // pool size when the watchdog is on

  // Backoff before retry k (k >= 1): min(base * multiplier^(k-1), max),
  // scaled by a deterministic jitter in [1-jitter, 1+jitter].
  double backoff_base_minutes = 0.5;
  double backoff_multiplier = 2.0;
  double backoff_max_minutes = 8.0;
  double backoff_jitter = 0.25;

  double crash_charge_minutes = 1.0;  // simulated cost of a crashed attempt
  std::uint64_t seed = 1;             // jitter stream

  int breaker_threshold = 4;          // consecutive exhausted points to trip
  int breaker_cooldown = 8;           // calls short-circuited while open
  double short_circuit_minutes = 0.05;
};

struct ResilienceStats {
  std::size_t calls = 0;       // Evaluate() invocations
  std::size_t attempts = 0;    // inner evaluations actually started
  std::size_t successes = 0;   // calls that returned a trusted outcome
  std::size_t crashes = 0;
  std::size_t timeouts = 0;
  std::size_t garbage = 0;
  std::size_t retries = 0;     // backoff-then-retry transitions
  std::size_t exhausted = 0;   // calls degraded to kInfeasibleCost
  std::size_t breaker_trips = 0;
  std::size_t short_circuits = 0;  // calls answered by an open breaker
  double backoff_minutes = 0;      // total simulated backoff charged

  void Merge(const ResilienceStats& other);
};

// Knobs readable from the environment (CLI flags win over these):
//   S2FA_EVAL_TIMEOUT      — per-point deadline in simulated minutes
//   S2FA_EVAL_RETRIES      — max retries per point
//   S2FA_RESUME_JOURNAL    — evaluation journal path (checkpoint/resume)
//   S2FA_FAULT_RATE        — total injected failure rate, split evenly
//                            across crash/timeout/garbage
// Malformed values log a warning and are ignored.
struct EnvKnobs {
  std::optional<double> eval_timeout_minutes;
  std::optional<int> eval_retries;
  std::optional<std::string> resume_journal;
  std::optional<double> fault_rate;
};
EnvKnobs ReadEnvKnobs();

class ResilientEvaluator {
 public:
  // `scope` labels log lines and obs metrics (e.g. the partition name).
  ResilientEvaluator(AttemptEvalFn inner, ResilienceOptions options,
                     std::string scope = "eval");
  ResilientEvaluator(tuner::EvalFn inner, ResilienceOptions options,
                     std::string scope = "eval");

  // Never throws for evaluator failures: degraded outcomes are infeasible.
  tuner::EvalOutcome Evaluate(const merlin::DesignConfig& config);

  // Adapter for APIs that take a plain EvalFn. The evaluator must outlive
  // the returned function.
  tuner::EvalFn AsEvalFn();

  ResilienceStats stats() const;
  bool breaker_open() const;
  const ResilienceOptions& options() const { return options_; }

 private:
  // One attempt; classifies failures, never throws. Fills `charge` with
  // the simulated minutes the attempt burned when it failed.
  tuner::EvalOutcome Attempt(const merlin::DesignConfig& config, int attempt,
                             FailureKind* failure, double* charge);
  double BackoffMinutes(const std::string& key, int retry) const;

  AttemptEvalFn inner_;
  ResilienceOptions options_;
  std::string scope_;
  std::unique_ptr<ThreadPool> watchdog_;  // only when wall_timeout_ms > 0

  mutable std::mutex mutex_;
  ResilienceStats stats_;
  int consecutive_exhausted_ = 0;
  int breaker_remaining_ = 0;  // > 0: open, this many short-circuits left
  bool half_open_ = false;     // next call is the probe
};

}  // namespace s2fa::resilience
