#include "resilience/fault.h"

#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

namespace s2fa::resilience {

namespace {

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t HashKey(const std::string& key) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

namespace detail {

double HashRoll(std::uint64_t seed, const std::string& key, int attempt) {
  std::uint64_t mixed = SplitMix64(
      seed ^ SplitMix64(HashKey(key) +
                        0x9E3779B97F4A7C15ULL *
                            static_cast<std::uint64_t>(attempt + 1)));
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

}  // namespace detail

FaultPlan::FaultPlan(FaultPlanOptions options) : options_(options) {
  S2FA_REQUIRE(options_.crash_rate >= 0 && options_.timeout_rate >= 0 &&
                   options_.garbage_rate >= 0,
               "fault rates must be non-negative");
  S2FA_REQUIRE(options_.crash_rate + options_.timeout_rate +
                       options_.garbage_rate <=
                   1.0 + 1e-12,
               "fault rates sum to more than 1");
}

bool FaultPlan::active() const {
  return options_.crash_rate > 0 || options_.timeout_rate > 0 ||
         options_.garbage_rate > 0;
}

FailureKind FaultPlan::Decide(const std::string& key, int attempt) const {
  if (!active()) return FailureKind::kNone;
  const double u = detail::HashRoll(options_.seed, key, attempt);
  if (u < options_.crash_rate) return FailureKind::kCrash;
  if (u < options_.crash_rate + options_.timeout_rate) {
    return FailureKind::kTimeout;
  }
  if (u < options_.crash_rate + options_.timeout_rate +
              options_.garbage_rate) {
    return FailureKind::kGarbageResult;
  }
  return FailureKind::kNone;
}

AttemptEvalFn FaultPlan::Instrument(tuner::EvalFn inner) const {
  FaultPlan plan = *this;  // captured by value: the plan is tiny
  return [plan, inner = std::move(inner)](const merlin::DesignConfig& config,
                                          int attempt) {
    switch (plan.Decide(config.ToString(), attempt)) {
      case FailureKind::kCrash:
        throw InjectedCrash("injected evaluator crash (attempt " +
                            std::to_string(attempt) + ")");
      case FailureKind::kTimeout: {
        if (plan.options().wall_hang_ms > 0) {
          std::this_thread::sleep_for(std::chrono::duration<double,
                                                            std::milli>(
              plan.options().wall_hang_ms));
        }
        tuner::EvalOutcome hung;
        hung.feasible = false;
        hung.cost = tuner::kInfeasibleCost;
        hung.eval_minutes = std::numeric_limits<double>::infinity();
        return hung;
      }
      case FailureKind::kGarbageResult: {
        tuner::EvalOutcome junk;
        junk.feasible = true;  // claims success with a nonsense objective
        junk.cost = std::numeric_limits<double>::quiet_NaN();
        junk.eval_minutes = 1.0;
        return junk;
      }
      case FailureKind::kNone:
        break;
    }
    return inner(config);
  };
}

}  // namespace s2fa::resilience
