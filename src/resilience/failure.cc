#include "resilience/failure.h"

#include <cmath>

#include "support/error.h"

namespace s2fa::resilience {

const char* FailureKindName(FailureKind kind) {
  switch (kind) {
    case FailureKind::kNone: return "none";
    case FailureKind::kCrash: return "crash";
    case FailureKind::kTimeout: return "timeout";
    case FailureKind::kGarbageResult: return "garbage";
  }
  S2FA_UNREACHABLE("bad failure kind");
}

bool GarbageOutcome(const tuner::EvalOutcome& outcome) {
  if (std::isnan(outcome.cost)) return true;
  if (outcome.cost < 0) return true;
  // A feasible design must have a finite objective.
  if (outcome.feasible && !std::isfinite(outcome.cost)) return true;
  // Synthesis took *some* positive, finite time; anything else means the
  // tool's own accounting is broken. (The evaluator checks its deadline
  // first, so a runaway eval_minutes under a finite deadline classifies as
  // kTimeout before it ever reaches this test.)
  if (!std::isfinite(outcome.eval_minutes) || outcome.eval_minutes <= 0) {
    return true;
  }
  return false;
}

AttemptEvalFn IgnoreAttempt(tuner::EvalFn fn) {
  return [fn = std::move(fn)](const merlin::DesignConfig& config,
                              int /*attempt*/) { return fn(config); };
}

}  // namespace s2fa::resilience
