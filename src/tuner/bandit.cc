#include "tuner/bandit.h"

#include <cmath>

#include "support/error.h"

namespace s2fa::tuner {

AucBandit::AucBandit(
    std::vector<std::unique_ptr<SearchTechnique>> techniques,
    double exploration, std::size_t window)
    : exploration_(exploration), window_(window) {
  S2FA_REQUIRE(!techniques.empty(), "bandit needs at least one technique");
  S2FA_REQUIRE(window >= 2, "window too small");
  for (auto& t : techniques) {
    S2FA_REQUIRE(t != nullptr, "null technique");
    Arm arm;
    arm.technique = std::move(t);
    arms_.push_back(std::move(arm));
  }
}

SearchTechnique& AucBandit::technique(std::size_t index) {
  S2FA_REQUIRE(index < arms_.size(), "technique index out of range");
  return *arms_[index].technique;
}

double AucBandit::AucOf(std::size_t index) const {
  S2FA_REQUIRE(index < arms_.size(), "technique index out of range");
  const auto& history = arms_[index].history;
  if (history.empty()) return 0.0;
  // Area under the hit curve, weighting recent hits more (OpenTuner's
  // formulation): sum of i*v_i normalized by n(n+1)/2.
  double num = 0;
  std::size_t i = 1;
  for (bool hit : history) {
    if (hit) num += static_cast<double>(i);
    ++i;
  }
  const double n = static_cast<double>(history.size());
  return num / (n * (n + 1) / 2.0);
}

std::size_t AucBandit::UsesOf(std::size_t index) const {
  S2FA_REQUIRE(index < arms_.size(), "technique index out of range");
  return arms_[index].uses;
}

std::size_t AucBandit::Select(Rng& rng) {
  // Any unused arm goes first (uniformly among them).
  std::vector<std::size_t> unused;
  for (std::size_t i = 0; i < arms_.size(); ++i) {
    if (arms_[i].uses == 0) unused.push_back(i);
  }
  if (!unused.empty()) return unused[rng.NextIndex(unused.size())];

  double best_score = -1;
  std::vector<std::size_t> best_arms;
  for (std::size_t i = 0; i < arms_.size(); ++i) {
    double ucb = exploration_ *
                 std::sqrt(2.0 * std::log(static_cast<double>(total_uses_)) /
                           static_cast<double>(arms_[i].uses));
    double score = AucOf(i) + ucb;
    if (score > best_score + 1e-12) {
      best_score = score;
      best_arms = {i};
    } else if (score > best_score - 1e-12) {
      best_arms.push_back(i);
    }
  }
  return best_arms[rng.NextIndex(best_arms.size())];
}

void AucBandit::ReportOutcome(std::size_t index, bool new_global_best) {
  S2FA_REQUIRE(index < arms_.size(), "technique index out of range");
  Arm& arm = arms_[index];
  arm.history.push_back(new_global_best);
  if (arm.history.size() > window_) arm.history.pop_front();
  ++arm.uses;
  ++total_uses_;
}

}  // namespace s2fa::tuner
