// Search techniques (paper §4.2): the reinforcement-learning algorithms
// OpenTuner multiplexes — uniform greedy mutation, differential-evolution
// GA, particle swarm optimization, and simulated annealing.
//
// Each technique proposes one point at a time and receives feedback for
// every evaluated point (its own and, via the shared database, everyone
// else's global best). Infeasible evaluations arrive with +inf cost.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "hls/bottleneck.h"
#include "support/rng.h"
#include "tuner/space.h"

namespace s2fa::tuner {

class SearchTechnique {
 public:
  explicit SearchTechnique(const DesignSpace* space);
  virtual ~SearchTechnique() = default;

  virtual std::string name() const = 0;
  virtual Point Propose(Rng& rng) = 0;
  virtual void Report(const Point& point, double cost, bool feasible) = 0;

  // Injects an externally chosen starting point (seed generation, §4.3.2).
  virtual void SeedWith(const Point& point, double cost, bool feasible);

  // Broadcast by the driver for every committed evaluation — own proposals
  // and other techniques' alike, seeds included, in commit order — carrying
  // the estimator's bottleneck attribution. Landscape-aware techniques
  // override this to learn *why* the current best is slow; the default
  // ignores it, so the classic arms are byte-for-byte unchanged.
  virtual void ObserveEvaluation(const Point& point, double cost,
                                 bool feasible,
                                 const hls::Bottleneck& bottleneck);

  // The point the most recent Propose() mutated from, or nullptr when it
  // drew a fresh random point (no meaningful parent). Valid until the next
  // Propose(); the driver copies it into the pending batch entry so the
  // result database can attribute mutated factors to the real parent
  // instead of whatever record happened to land before it.
  const Point* last_proposal_base() const {
    return has_proposal_base_ ? &proposal_base_ : nullptr;
  }

 protected:
  bool UpdateBest(const Point& point, double cost, bool feasible);

  // Called from Propose() implementations to publish the proposal's parent.
  void SetProposalBase(const Point& base) {
    proposal_base_ = base;
    has_proposal_base_ = true;
  }
  void ClearProposalBase() { has_proposal_base_ = false; }

  const DesignSpace* space_;
  bool has_best_ = false;
  Point best_;
  double best_cost_ = 0;

 private:
  bool has_proposal_base_ = false;
  Point proposal_base_;
};

class UniformGreedyMutation final : public SearchTechnique {
 public:
  UniformGreedyMutation(const DesignSpace* space, int max_mutations = 3);
  std::string name() const override { return "UniformGreedyMutation"; }
  Point Propose(Rng& rng) override;
  void Report(const Point& point, double cost, bool feasible) override;

 private:
  int max_mutations_;
};

class DifferentialEvolution final : public SearchTechnique {
 public:
  DifferentialEvolution(const DesignSpace* space, std::size_t population = 20,
                        double f = 0.6, double cr = 0.8);
  std::string name() const override { return "DifferentialEvolution"; }
  Point Propose(Rng& rng) override;
  void Report(const Point& point, double cost, bool feasible) override;

 private:
  struct Member {
    Point point;
    double cost;
  };
  std::size_t population_size_;
  double f_, cr_;
  std::vector<Member> population_;
};

class ParticleSwarm final : public SearchTechnique {
 public:
  ParticleSwarm(const DesignSpace* space, std::size_t swarm = 12,
                double inertia = 0.55, double c_personal = 1.3,
                double c_global = 1.3);
  std::string name() const override { return "ParticleSwarm"; }
  Point Propose(Rng& rng) override;
  void Report(const Point& point, double cost, bool feasible) override;

 private:
  struct Particle {
    std::vector<double> position;
    std::vector<double> velocity;
    Point personal_best;
    double personal_cost;
    bool has_personal = false;
  };
  Point Snap(const std::vector<double>& position) const;

  std::size_t swarm_size_;
  double inertia_, c_personal_, c_global_;
  std::vector<Particle> particles_;
  std::vector<std::size_t> pending_;  // FIFO of proposing particle indices
  std::size_t next_particle_ = 0;
};

class SimulatedAnnealing final : public SearchTechnique {
 public:
  SimulatedAnnealing(const DesignSpace* space, std::uint64_t seed,
                     double initial_temp = 1.0, double cooling = 0.985);
  std::string name() const override { return "SimulatedAnnealing"; }
  Point Propose(Rng& rng) override;
  void Report(const Point& point, double cost, bool feasible) override;
  void SeedWith(const Point& point, double cost, bool feasible) override;

 private:
  Rng accept_rng_;
  double temperature_, cooling_;
  bool has_current_ = false;
  Point current_;
  double current_cost_ = 0;
};

// Bottleneck-guided mutation (AutoDSE's insight as a bandit arm): mutate
// the best-known point, touching only the factor classes that attack the
// estimator's reported bottleneck — unroll/pipeline (and Merlin's implied
// tree reduction) for a recurrence II, partition-driving unroll for port
// conflicts, interface bit-width for AXI bandwidth, parallel-factor
// backoff for routing/resource walls. The bandit arbitrates it against
// the classic arms; when it stops producing wins it stops being picked.
class BottleneckTechnique final : public SearchTechnique {
 public:
  explicit BottleneckTechnique(const DesignSpace* space);
  std::string name() const override { return "BottleneckGuided"; }
  Point Propose(Rng& rng) override;
  void Report(const Point& point, double cost, bool feasible) override;
  void ObserveEvaluation(const Point& point, double cost, bool feasible,
                         const hls::Bottleneck& bottleneck) override;

  // The attribution the next Propose() will attack (kNone before any
  // feasible observation). Exposed for tests and diagnostics.
  const hls::Bottleneck& current_bottleneck() const { return best_bneck_; }

 private:
  // Global best over *all* observed evaluations (the base best_ only sees
  // this arm's own reports), with the attribution that came with it.
  bool has_observed_ = false;
  Point observed_best_;
  double observed_cost_ = 0;
  hls::Bottleneck best_bneck_;
  // Neighbors already proposed since the best last moved. Proposals are
  // 1-2 notches off the base point, so without this the arm re-submits the
  // same handful of neighbors and burns evaluation slots on duplicates.
  std::set<Point> proposed_;
};

// One permitted move for a bottleneck kind: the factor class the arm may
// touch and the direction it pushes the (ordered) value index — +1 grows,
// -1 backs off, 0 re-rolls within the factor's range.
struct BottleneckMove {
  const char* factor_class;  // "tile" | "parallel" | "pipeline" | "bits"
  int direction;
};

// The declared kind -> factor-subset map BottleneckTechnique mutates from.
// Exposed so regression tests can pin that every kind proposes only
// factors from its declared subset.
const std::vector<BottleneckMove>& BottleneckMoves(hls::BottleneckKind kind);

// Resolves a factor-class name from the map to the FactorKind it denotes;
// throws InvalidArgument listing the valid classes (the same fail-fast
// contract as DesignSpace::FactorIndex), so a typo in the map dies at the
// first proposal instead of silently mutating nothing.
FactorKind ParseFactorClass(const std::string& name);

// The full default roster the paper lists.
std::vector<std::unique_ptr<SearchTechnique>> DefaultTechniques(
    const DesignSpace* space, std::uint64_t seed);

// Splits a comma-separated technique roster ("bandit,bottleneck"); entries
// are trimmed, empties dropped.
std::vector<std::string> ParseTechniqueList(const std::string& csv);

// Builds the arms a roster names: "bandit" (or "default") expands to the
// paper's four, plus "greedy" / "de" / "pso" / "sa" / "bottleneck"
// individually. An empty list is the default roster; unknown names throw
// InvalidArgument. With the default roster this is bit-identical to
// DefaultTechniques.
std::vector<std::unique_ptr<SearchTechnique>> MakeTechniques(
    const DesignSpace* space, std::uint64_t seed,
    const std::vector<std::string>& names);

}  // namespace s2fa::tuner
