// Search techniques (paper §4.2): the reinforcement-learning algorithms
// OpenTuner multiplexes — uniform greedy mutation, differential-evolution
// GA, particle swarm optimization, and simulated annealing.
//
// Each technique proposes one point at a time and receives feedback for
// every evaluated point (its own and, via the shared database, everyone
// else's global best). Infeasible evaluations arrive with +inf cost.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "support/rng.h"
#include "tuner/space.h"

namespace s2fa::tuner {

class SearchTechnique {
 public:
  explicit SearchTechnique(const DesignSpace* space);
  virtual ~SearchTechnique() = default;

  virtual std::string name() const = 0;
  virtual Point Propose(Rng& rng) = 0;
  virtual void Report(const Point& point, double cost, bool feasible) = 0;

  // Injects an externally chosen starting point (seed generation, §4.3.2).
  virtual void SeedWith(const Point& point, double cost, bool feasible);

  // The point the most recent Propose() mutated from, or nullptr when it
  // drew a fresh random point (no meaningful parent). Valid until the next
  // Propose(); the driver copies it into the pending batch entry so the
  // result database can attribute mutated factors to the real parent
  // instead of whatever record happened to land before it.
  const Point* last_proposal_base() const {
    return has_proposal_base_ ? &proposal_base_ : nullptr;
  }

 protected:
  bool UpdateBest(const Point& point, double cost, bool feasible);

  // Called from Propose() implementations to publish the proposal's parent.
  void SetProposalBase(const Point& base) {
    proposal_base_ = base;
    has_proposal_base_ = true;
  }
  void ClearProposalBase() { has_proposal_base_ = false; }

  const DesignSpace* space_;
  bool has_best_ = false;
  Point best_;
  double best_cost_ = 0;

 private:
  bool has_proposal_base_ = false;
  Point proposal_base_;
};

class UniformGreedyMutation final : public SearchTechnique {
 public:
  UniformGreedyMutation(const DesignSpace* space, int max_mutations = 3);
  std::string name() const override { return "UniformGreedyMutation"; }
  Point Propose(Rng& rng) override;
  void Report(const Point& point, double cost, bool feasible) override;

 private:
  int max_mutations_;
};

class DifferentialEvolution final : public SearchTechnique {
 public:
  DifferentialEvolution(const DesignSpace* space, std::size_t population = 20,
                        double f = 0.6, double cr = 0.8);
  std::string name() const override { return "DifferentialEvolution"; }
  Point Propose(Rng& rng) override;
  void Report(const Point& point, double cost, bool feasible) override;

 private:
  struct Member {
    Point point;
    double cost;
  };
  std::size_t population_size_;
  double f_, cr_;
  std::vector<Member> population_;
};

class ParticleSwarm final : public SearchTechnique {
 public:
  ParticleSwarm(const DesignSpace* space, std::size_t swarm = 12,
                double inertia = 0.55, double c_personal = 1.3,
                double c_global = 1.3);
  std::string name() const override { return "ParticleSwarm"; }
  Point Propose(Rng& rng) override;
  void Report(const Point& point, double cost, bool feasible) override;

 private:
  struct Particle {
    std::vector<double> position;
    std::vector<double> velocity;
    Point personal_best;
    double personal_cost;
    bool has_personal = false;
  };
  Point Snap(const std::vector<double>& position) const;

  std::size_t swarm_size_;
  double inertia_, c_personal_, c_global_;
  std::vector<Particle> particles_;
  std::vector<std::size_t> pending_;  // FIFO of proposing particle indices
  std::size_t next_particle_ = 0;
};

class SimulatedAnnealing final : public SearchTechnique {
 public:
  SimulatedAnnealing(const DesignSpace* space, std::uint64_t seed,
                     double initial_temp = 1.0, double cooling = 0.985);
  std::string name() const override { return "SimulatedAnnealing"; }
  Point Propose(Rng& rng) override;
  void Report(const Point& point, double cost, bool feasible) override;
  void SeedWith(const Point& point, double cost, bool feasible) override;

 private:
  Rng accept_rng_;
  double temperature_, cooling_;
  bool has_current_ = false;
  Point current_;
  double current_cost_ = 0;
};

// The full default roster the paper lists.
std::vector<std::unique_ptr<SearchTechnique>> DefaultTechniques(
    const DesignSpace* space, std::uint64_t seed);

}  // namespace s2fa::tuner
