#include "tuner/driver.h"

#include <algorithm>
#include <future>

#include "obs/obs.h"
#include "support/error.h"
#include "support/logging.h"
#include "support/thread_pool.h"

namespace s2fa::tuner {

namespace {

// Evaluates one batch of configs — concurrently on `pool` when provided,
// serially otherwise — and returns the outcomes in input order. The
// evaluator must be pure w.r.t. the config (the Tune contract), so the
// commit order downstream, not the completion order here, decides every
// piece of search state.
std::vector<EvalOutcome> EvaluateBatch(
    const EvalFn& evaluate, const std::vector<merlin::DesignConfig>& configs,
    ThreadPool* pool) {
  std::vector<EvalOutcome> outcomes(configs.size());
  if (pool != nullptr && configs.size() > 1) {
    std::vector<std::future<EvalOutcome>> futures;
    futures.reserve(configs.size());
    for (const merlin::DesignConfig& config : configs) {
      futures.push_back(
          pool->Submit([&evaluate, &config] { return evaluate(config); }));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      outcomes[i] = futures[i].get();
    }
  } else {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      outcomes[i] = evaluate(configs[i]);
    }
  }
  return outcomes;
}

}  // namespace

TuneResult Tune(const DesignSpace& space, const EvalFn& evaluate,
                const TuneOptions& options) {
  S2FA_REQUIRE(evaluate != nullptr, "no evaluation function");
  S2FA_REQUIRE(options.parallel >= 1, "need at least one evaluator");
  S2FA_REQUIRE(options.time_limit_minutes > 0, "time limit must be positive");

  S2FA_SPAN("tuner.tune");

  Rng rng(options.seed);
  AucBandit bandit(DefaultTechniques(&space, options.seed));
  ResultDatabase db;
  double clock_minutes = 0;
  std::string stop_reason;

  // Seed evaluations first (one batch; they occupy the parallel evaluators).
  if (!options.seeds.empty()) {
    std::vector<merlin::DesignConfig> configs;
    configs.reserve(options.seeds.size());
    for (const auto& seed : options.seeds) {
      space.ValidatePoint(seed.point);
      configs.push_back(space.ToConfig(seed.point));
    }
    std::vector<EvalOutcome> outcomes =
        EvaluateBatch(evaluate, configs, options.eval_pool);
    double batch_minutes = 0;
    for (std::size_t s = 0; s < options.seeds.size(); ++s) {
      const auto& seed = options.seeds[s];
      const EvalOutcome& outcome = outcomes[s];
      batch_minutes = std::max(batch_minutes, outcome.eval_minutes);
      S2FA_COUNT("tuner.evaluations", 1);
      S2FA_COUNT("tuner.seed_evaluations", 1);
      S2FA_OBSERVE("tuner.eval_minutes", outcome.eval_minutes);
      // Seeds are externally chosen: no parent, no mutation to attribute.
      db.Add(seed.point, outcome.cost, outcome.feasible,
             clock_minutes + outcome.eval_minutes, /*technique=*/0,
             /*parent=*/nullptr);
      // Every technique starts from the seed knowledge.
      for (std::size_t t = 0; t < bandit.num_techniques(); ++t) {
        bandit.technique(t).SeedWith(seed.point, outcome.cost,
                                     outcome.feasible);
      }
      S2FA_LOG_DEBUG("seed '" << seed.label << "' cost="
                              << outcome.cost << " feasible="
                              << outcome.feasible);
    }
    clock_minutes += batch_minutes;
  }

  while (clock_minutes < options.time_limit_minutes) {
    S2FA_SPAN("tuner.iteration");
    // Propose one batch, remembering each proposal's parent point so the
    // database attributes mutated factors to the technique's own base,
    // not to whichever batch member happened to land before it.
    struct Pending {
      std::size_t technique;
      Point point;
      bool has_parent = false;
      Point parent;
    };
    std::vector<Pending> batch;
    batch.reserve(static_cast<std::size_t>(options.parallel));
    std::size_t batch_technique = bandit.Select(rng);
    for (int i = 0; i < options.parallel; ++i) {
      std::size_t t = options.homogeneous_batches ? batch_technique
                                                  : bandit.Select(rng);
      Pending pending;
      pending.technique = t;
      pending.point = bandit.technique(t).Propose(rng);
      if (const Point* base = bandit.technique(t).last_proposal_base()) {
        pending.has_parent = true;
        pending.parent = *base;
      }
      batch.push_back(std::move(pending));
    }
    // Evaluate the whole batch (on the eval pool when one is wired in);
    // the simulated clock advances by the slowest member either way.
    std::vector<merlin::DesignConfig> configs;
    configs.reserve(batch.size());
    for (const auto& pending : batch) {
      configs.push_back(space.ToConfig(pending.point));
    }
    std::vector<EvalOutcome> outcomes =
        EvaluateBatch(evaluate, configs, options.eval_pool);
    // Commit in proposal order: db/bandit/entropy state is bit-identical
    // to the serial evaluation.
    double batch_minutes = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const Pending& pending = batch[i];
      const EvalOutcome& outcome = outcomes[i];
      batch_minutes = std::max(batch_minutes, outcome.eval_minutes);
      bool new_best = db.Add(pending.point, outcome.cost, outcome.feasible,
                             clock_minutes + outcome.eval_minutes,
                             pending.technique,
                             pending.has_parent ? &pending.parent : nullptr);
      bandit.technique(pending.technique)
          .Report(pending.point, outcome.cost, outcome.feasible);
      bandit.ReportOutcome(pending.technique, new_best);
      if (obs::Enabled()) {
        const std::string arm = bandit.technique(pending.technique).name();
        S2FA_COUNT("tuner.evaluations", 1);
        S2FA_COUNT("tuner.arm." + arm + ".selected", 1);
        S2FA_OBSERVE("tuner.eval_minutes", outcome.eval_minutes);
        if (new_best) {
          S2FA_COUNT("tuner.best_updates", 1);
          S2FA_COUNT("tuner.arm." + arm + ".best", 1);
          S2FA_GAUGE("tuner.best_cost", db.best_cost());
        }
      }
    }
    clock_minutes += batch_minutes;

    if (options.should_stop && options.should_stop(db)) {
      stop_reason = options.stop_reason_label;
      break;
    }
  }
  if (stop_reason.empty()) stop_reason = "time limit";
  S2FA_COUNT("tuner.stop." + stop_reason, 1);

  // The final batch may overshoot the budget; its evaluations stay in the
  // database (they were genuinely performed and the stop criterion saw
  // them), but the reported trace and best are clamped to the limit so a
  // run can never claim an improvement found after the budget expired.
  const double limit = options.time_limit_minutes;
  TuneResult result;
  for (const Record& rec : db.records()) {
    if (rec.improved && rec.time_minutes <= limit) {
      result.found_feasible = true;
      result.best = rec.point;
      result.best_cost = rec.cost;
    }
  }
  if (result.found_feasible) {
    result.best_config = space.ToConfig(result.best);
  }
  result.elapsed_minutes = std::min(clock_minutes, limit);
  result.evaluations = db.size();
  result.stop_reason = stop_reason;
  std::vector<TracePoint> clipped;
  clipped.reserve(db.trace().size());
  for (const TracePoint& tp : db.trace()) {
    if (tp.time_minutes <= limit) clipped.push_back(tp);
  }
  result.trace = DedupTrace(std::move(clipped));
  return result;
}

}  // namespace s2fa::tuner
