#include "tuner/driver.h"

#include <algorithm>
#include <future>

#include "obs/obs.h"
#include "support/error.h"
#include "support/logging.h"
#include "support/thread_pool.h"

namespace s2fa::tuner {

namespace {

// Evaluates one batch of configs — concurrently on `pool` when provided,
// serially otherwise — and returns the outcomes in input order. The
// evaluator must be pure w.r.t. the config (the Tune contract), so the
// commit order downstream, not the completion order here, decides every
// piece of search state.
std::vector<EvalOutcome> EvaluateBatch(
    const EvalFn& evaluate, const std::vector<merlin::DesignConfig>& configs,
    ThreadPool* pool) {
  std::vector<EvalOutcome> outcomes(configs.size());
  if (pool != nullptr && configs.size() > 1) {
    std::vector<std::future<EvalOutcome>> futures;
    futures.reserve(configs.size());
    for (const merlin::DesignConfig& config : configs) {
      futures.push_back(
          pool->Submit([&evaluate, &config] { return evaluate(config); }));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      outcomes[i] = futures[i].get();
    }
  } else {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      outcomes[i] = evaluate(configs[i]);
    }
  }
  return outcomes;
}

}  // namespace

TuneSession::TuneSession(const DesignSpace& space, EvalFn evaluate,
                         TuneOptions options)
    : space_(&space),
      evaluate_(std::move(evaluate)),
      options_(std::move(options)),
      rng_(options_.seed),
      bandit_(MakeTechniques(space_, options_.seed, options_.techniques)) {
  S2FA_REQUIRE(evaluate_ != nullptr, "no evaluation function");
  S2FA_REQUIRE(options_.parallel >= 1, "need at least one evaluator");
  S2FA_REQUIRE(options_.time_limit_minutes > 0,
               "time limit must be positive");
}

void TuneSession::EvaluateSeeds() {
  if (options_.seeds.empty()) return;
  std::vector<merlin::DesignConfig> configs;
  configs.reserve(options_.seeds.size());
  for (const auto& seed : options_.seeds) {
    space_->ValidatePoint(seed.point);
    configs.push_back(space_->ToConfig(seed.point));
  }
  std::vector<EvalOutcome> outcomes =
      EvaluateBatch(evaluate_, configs, options_.eval_pool);
  double batch_minutes = 0;
  for (std::size_t s = 0; s < options_.seeds.size(); ++s) {
    const auto& seed = options_.seeds[s];
    const EvalOutcome& outcome = outcomes[s];
    batch_minutes = std::max(batch_minutes, outcome.eval_minutes);
    S2FA_COUNT("tuner.evaluations", 1);
    S2FA_COUNT("tuner.seed_evaluations", 1);
    S2FA_OBSERVE("tuner.eval_minutes", outcome.eval_minutes);
    // Seeds are externally chosen: no parent, no mutation to attribute.
    db_.Add(seed.point, outcome.cost, outcome.feasible,
            clock_ + outcome.eval_minutes, /*technique=*/0,
            /*parent=*/nullptr);
    // Every technique starts from the seed knowledge (attribution
    // included, for the landscape-aware arms).
    for (std::size_t t = 0; t < bandit_.num_techniques(); ++t) {
      bandit_.technique(t).SeedWith(seed.point, outcome.cost,
                                    outcome.feasible);
      bandit_.technique(t).ObserveEvaluation(seed.point, outcome.cost,
                                             outcome.feasible,
                                             outcome.bottleneck);
    }
    S2FA_LOG_DEBUG("seed '" << seed.label << "' cost=" << outcome.cost
                            << " feasible=" << outcome.feasible);
  }
  clock_ += batch_minutes;
}

bool TuneSession::Iterate() {
  S2FA_SPAN("tuner.iteration");
  // Propose one batch, remembering each proposal's parent point so the
  // database attributes mutated factors to the technique's own base,
  // not to whichever batch member happened to land before it.
  struct Pending {
    std::size_t technique;
    Point point;
    bool has_parent = false;
    Point parent;
  };
  std::vector<Pending> batch;
  batch.reserve(static_cast<std::size_t>(options_.parallel));
  std::size_t batch_technique = bandit_.Select(rng_);
  for (int i = 0; i < options_.parallel; ++i) {
    std::size_t t = options_.homogeneous_batches ? batch_technique
                                                 : bandit_.Select(rng_);
    Pending pending;
    pending.technique = t;
    pending.point = bandit_.technique(t).Propose(rng_);
    if (const Point* base = bandit_.technique(t).last_proposal_base()) {
      pending.has_parent = true;
      pending.parent = *base;
    }
    batch.push_back(std::move(pending));
  }
  // Evaluate the whole batch (on the eval pool when one is wired in);
  // the simulated clock advances by the slowest member either way.
  std::vector<merlin::DesignConfig> configs;
  configs.reserve(batch.size());
  for (const auto& pending : batch) {
    configs.push_back(space_->ToConfig(pending.point));
  }
  std::vector<EvalOutcome> outcomes =
      EvaluateBatch(evaluate_, configs, options_.eval_pool);
  // Commit in proposal order: db/bandit/entropy state is bit-identical
  // to the serial evaluation.
  double batch_minutes = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Pending& pending = batch[i];
    const EvalOutcome& outcome = outcomes[i];
    batch_minutes = std::max(batch_minutes, outcome.eval_minutes);
    bool new_best = db_.Add(pending.point, outcome.cost, outcome.feasible,
                            clock_ + outcome.eval_minutes, pending.technique,
                            pending.has_parent ? &pending.parent : nullptr);
    bandit_.technique(pending.technique)
        .Report(pending.point, outcome.cost, outcome.feasible);
    bandit_.ReportOutcome(pending.technique, new_best);
    // Commit-order broadcast: every arm sees every evaluation with its
    // bottleneck attribution, so the landscape-aware arms track the global
    // best regardless of which technique proposed it.
    for (std::size_t t = 0; t < bandit_.num_techniques(); ++t) {
      bandit_.technique(t).ObserveEvaluation(pending.point, outcome.cost,
                                             outcome.feasible,
                                             outcome.bottleneck);
    }
    if (obs::Enabled()) {
      const std::string arm = bandit_.technique(pending.technique).name();
      S2FA_COUNT("tuner.evaluations", 1);
      S2FA_COUNT("tuner.arm." + arm + ".selected", 1);
      S2FA_OBSERVE("tuner.eval_minutes", outcome.eval_minutes);
      if (new_best) {
        S2FA_COUNT("tuner.best_updates", 1);
        S2FA_COUNT("tuner.arm." + arm + ".best", 1);
        S2FA_GAUGE("tuner.best_cost", db_.best_cost());
      }
    }
  }
  clock_ += batch_minutes;

  return options_.should_stop && options_.should_stop(db_);
}

void TuneSession::FinishWith(const std::string& reason) {
  finished_ = true;
  stop_reason_ = reason;
  S2FA_COUNT("tuner.stop." + reason, 1);
}

double TuneSession::RunFor(double minutes) {
  S2FA_REQUIRE(minutes > 0, "slice must be positive");
  if (finished_) return 0;
  granted_ = std::min(granted_ + minutes, options_.time_limit_minutes);
  const double start_clock = clock_;
  // Seed evaluations first (one batch; they occupy the parallel
  // evaluators). They are charged even if they alone exceed the budget,
  // matching the uninterrupted loop.
  if (!seeded_) {
    seeded_ = true;
    EvaluateSeeds();
  }
  while (!finished_ && clock_ < granted_) {
    if (Iterate()) {
      FinishWith(options_.stop_reason_label);
    }
  }
  if (!finished_ && clock_ >= options_.time_limit_minutes) {
    FinishWith("time limit");
  }
  return clock_ - start_clock;
}

TuneResult TuneSession::Result() const {
  // The final batch may overshoot the budget; its evaluations stay in the
  // database (they were genuinely performed and the stop criterion saw
  // them), but the reported trace and best are clamped to the granted
  // budget so a run can never claim an improvement found after the budget
  // expired.
  const double limit = std::min(granted_, options_.time_limit_minutes);
  TuneResult result;
  for (const Record& rec : db_.records()) {
    result.eval_times_minutes.push_back(rec.time_minutes);
    if (rec.improved) {
      result.improvements.push_back(
          {rec.time_minutes, rec.cost, space_->ToConfig(rec.point)});
      if (rec.time_minutes <= limit) {
        result.found_feasible = true;
        result.best = rec.point;
        result.best_cost = rec.cost;
      }
    }
  }
  if (result.found_feasible) {
    result.best_config = space_->ToConfig(result.best);
  }
  result.elapsed_minutes = std::min(clock_, limit);
  result.evaluations = db_.size();
  result.stop_reason = finished_ ? stop_reason_ : "budget exhausted";
  std::vector<TracePoint> clipped;
  clipped.reserve(db_.trace().size());
  for (const TracePoint& tp : db_.trace()) {
    if (tp.time_minutes <= limit) clipped.push_back(tp);
  }
  result.trace = DedupTrace(std::move(clipped));
  return result;
}

TuneResult Tune(const DesignSpace& space, const EvalFn& evaluate,
                const TuneOptions& options) {
  S2FA_SPAN("tuner.tune");
  TuneSession session(space, evaluate, options);
  session.RunFor(options.time_limit_minutes);
  return session.Result();
}

}  // namespace s2fa::tuner
