#include "tuner/driver.h"

#include <algorithm>

#include "obs/obs.h"
#include "support/error.h"
#include "support/logging.h"

namespace s2fa::tuner {

TuneResult Tune(const DesignSpace& space, const EvalFn& evaluate,
                const TuneOptions& options) {
  S2FA_REQUIRE(evaluate != nullptr, "no evaluation function");
  S2FA_REQUIRE(options.parallel >= 1, "need at least one evaluator");
  S2FA_REQUIRE(options.time_limit_minutes > 0, "time limit must be positive");

  S2FA_SPAN("tuner.tune");

  Rng rng(options.seed);
  AucBandit bandit(DefaultTechniques(&space, options.seed));
  ResultDatabase db;
  double clock_minutes = 0;
  std::string stop_reason;

  // Seed evaluations first (one batch; they occupy the parallel evaluators).
  if (!options.seeds.empty()) {
    double batch_minutes = 0;
    for (const auto& seed : options.seeds) {
      space.ValidatePoint(seed.point);
      EvalOutcome outcome = evaluate(space.ToConfig(seed.point));
      batch_minutes = std::max(batch_minutes, outcome.eval_minutes);
      S2FA_COUNT("tuner.evaluations", 1);
      S2FA_COUNT("tuner.seed_evaluations", 1);
      S2FA_OBSERVE("tuner.eval_minutes", outcome.eval_minutes);
      db.Add(seed.point, outcome.cost, outcome.feasible,
             clock_minutes + outcome.eval_minutes, /*technique=*/0);
      // Every technique starts from the seed knowledge.
      for (std::size_t t = 0; t < bandit.num_techniques(); ++t) {
        bandit.technique(t).SeedWith(seed.point, outcome.cost,
                                     outcome.feasible);
      }
      S2FA_LOG_DEBUG("seed '" << seed.label << "' cost="
                              << outcome.cost << " feasible="
                              << outcome.feasible);
    }
    clock_minutes += batch_minutes;
  }

  while (clock_minutes < options.time_limit_minutes) {
    S2FA_SPAN("tuner.iteration");
    // Propose one batch.
    struct Pending {
      std::size_t technique;
      Point point;
    };
    std::vector<Pending> batch;
    batch.reserve(static_cast<std::size_t>(options.parallel));
    std::size_t batch_technique = bandit.Select(rng);
    for (int i = 0; i < options.parallel; ++i) {
      std::size_t t = options.homogeneous_batches ? batch_technique
                                                  : bandit.Select(rng);
      batch.push_back({t, bandit.technique(t).Propose(rng)});
    }
    // Evaluate; the batch runs on `parallel` cores, so the clock advances
    // by the slowest member.
    double batch_minutes = 0;
    for (const auto& pending : batch) {
      EvalOutcome outcome = evaluate(space.ToConfig(pending.point));
      batch_minutes = std::max(batch_minutes, outcome.eval_minutes);
      bool new_best = db.Add(pending.point, outcome.cost, outcome.feasible,
                             clock_minutes + outcome.eval_minutes,
                             pending.technique);
      bandit.technique(pending.technique)
          .Report(pending.point, outcome.cost, outcome.feasible);
      bandit.ReportOutcome(pending.technique, new_best);
      if (obs::Enabled()) {
        const std::string arm = bandit.technique(pending.technique).name();
        S2FA_COUNT("tuner.evaluations", 1);
        S2FA_COUNT("tuner.arm." + arm + ".selected", 1);
        S2FA_OBSERVE("tuner.eval_minutes", outcome.eval_minutes);
        if (new_best) {
          S2FA_COUNT("tuner.best_updates", 1);
          S2FA_COUNT("tuner.arm." + arm + ".best", 1);
          S2FA_GAUGE("tuner.best_cost", db.best_cost());
        }
      }
    }
    clock_minutes += batch_minutes;

    if (options.should_stop && options.should_stop(db)) {
      stop_reason = options.stop_reason_label;
      break;
    }
  }
  if (stop_reason.empty()) stop_reason = "time limit";
  S2FA_COUNT("tuner.stop." + stop_reason, 1);

  TuneResult result;
  result.found_feasible = db.has_best();
  if (db.has_best()) {
    result.best = db.best();
    result.best_config = space.ToConfig(db.best());
    result.best_cost = db.best_cost();
  }
  result.elapsed_minutes = std::min(clock_minutes, options.time_limit_minutes);
  result.evaluations = db.size();
  result.stop_reason = stop_reason;
  result.trace = DedupTrace(db.trace());
  return result;
}

}  // namespace s2fa::tuner
