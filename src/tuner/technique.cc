#include "tuner/technique.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/obs.h"
#include "support/error.h"
#include "support/strings.h"
#include "tuner/result.h"

namespace s2fa::tuner {

SearchTechnique::SearchTechnique(const DesignSpace* space) : space_(space) {
  S2FA_REQUIRE(space != nullptr, "technique needs a design space");
  S2FA_REQUIRE(space->num_factors() > 0, "design space is empty");
}

bool SearchTechnique::UpdateBest(const Point& point, double cost,
                                 bool feasible) {
  if (!feasible) return false;
  if (!has_best_ || cost < best_cost_) {
    has_best_ = true;
    best_ = point;
    best_cost_ = cost;
    return true;
  }
  return false;
}

void SearchTechnique::SeedWith(const Point& point, double cost,
                               bool feasible) {
  UpdateBest(point, cost, feasible);
}

void SearchTechnique::ObserveEvaluation(const Point&, double, bool,
                                        const hls::Bottleneck&) {}

// ---------------------------------------------------------------- greedy

UniformGreedyMutation::UniformGreedyMutation(const DesignSpace* space,
                                             int max_mutations)
    : SearchTechnique(space), max_mutations_(max_mutations) {
  S2FA_REQUIRE(max_mutations >= 1, "need at least one mutation");
}

Point UniformGreedyMutation::Propose(Rng& rng) {
  if (!has_best_) {
    ClearProposalBase();
    return space_->RandomPoint(rng);
  }
  SetProposalBase(best_);
  int n = static_cast<int>(rng.NextInt(1, max_mutations_));
  return space_->Mutate(best_, rng, n);
}

void UniformGreedyMutation::Report(const Point& point, double cost,
                                   bool feasible) {
  UpdateBest(point, cost, feasible);
}

// -------------------------------------------------------------------- DE

DifferentialEvolution::DifferentialEvolution(const DesignSpace* space,
                                             std::size_t population,
                                             double f, double cr)
    : SearchTechnique(space),
      population_size_(population),
      f_(f),
      cr_(cr) {
  S2FA_REQUIRE(population >= 4, "DE needs a population of at least 4");
}

Point DifferentialEvolution::Propose(Rng& rng) {
  if (population_.size() < population_size_) {
    ClearProposalBase();
    return space_->RandomPoint(rng);
  }
  // rand/1/bin in index space over three distinct members.
  std::size_t r1 = rng.NextIndex(population_.size());
  std::size_t r2 = rng.NextIndex(population_.size());
  std::size_t r3 = rng.NextIndex(population_.size());
  while (r2 == r1) r2 = rng.NextIndex(population_.size());
  while (r3 == r1 || r3 == r2) r3 = rng.NextIndex(population_.size());
  const Point& a = population_[r1].point;
  const Point& b = population_[r2].point;
  const Point& c = population_[r3].point;
  const Point& target =
      population_[rng.NextIndex(population_.size())].point;
  // The trial inherits the target's un-crossed slots: the target is the
  // parent of this proposal.
  SetProposalBase(target);

  Point trial(space_->num_factors());
  std::size_t forced = rng.NextIndex(space_->num_factors());
  for (std::size_t i = 0; i < trial.size(); ++i) {
    if (i == forced || rng.NextBool(cr_)) {
      double v = static_cast<double>(a[i]) +
                 f_ * (static_cast<double>(b[i]) - static_cast<double>(c[i]));
      double hi = static_cast<double>(space_->factors[i].values.size() - 1);
      trial[i] = static_cast<std::size_t>(
          std::llround(std::clamp(v, 0.0, hi)));
    } else {
      trial[i] = target[i];
    }
  }
  return trial;
}

void DifferentialEvolution::Report(const Point& point, double cost,
                                   bool feasible) {
  UpdateBest(point, cost, feasible);
  const double effective = feasible ? cost : kInfeasibleCost;
  if (population_.size() < population_size_) {
    population_.push_back({point, effective});
    return;
  }
  // Steady-state: replace the worst member if the trial beats it.
  std::size_t worst = 0;
  for (std::size_t i = 1; i < population_.size(); ++i) {
    if (population_[i].cost > population_[worst].cost) worst = i;
  }
  if (effective < population_[worst].cost) {
    population_[worst] = {point, effective};
  }
}

// ------------------------------------------------------------------- PSO

ParticleSwarm::ParticleSwarm(const DesignSpace* space, std::size_t swarm,
                             double inertia, double c_personal,
                             double c_global)
    : SearchTechnique(space),
      swarm_size_(swarm),
      inertia_(inertia),
      c_personal_(c_personal),
      c_global_(c_global) {
  S2FA_REQUIRE(swarm >= 2, "PSO needs at least two particles");
}

Point ParticleSwarm::Snap(const std::vector<double>& position) const {
  Point p(position.size());
  for (std::size_t i = 0; i < position.size(); ++i) {
    double hi = static_cast<double>(space_->factors[i].values.size() - 1);
    p[i] = static_cast<std::size_t>(
        std::llround(std::clamp(position[i], 0.0, hi)));
  }
  return p;
}

Point ParticleSwarm::Propose(Rng& rng) {
  if (particles_.size() < swarm_size_) {
    ClearProposalBase();
    Particle particle;
    Point p = space_->RandomPoint(rng);
    particle.position.resize(p.size());
    particle.velocity.assign(p.size(), 0.0);
    for (std::size_t i = 0; i < p.size(); ++i) {
      particle.position[i] = static_cast<double>(p[i]);
      particle.velocity[i] = rng.NextDouble(-1.0, 1.0);
    }
    particle.personal_cost = kInfeasibleCost;
    particles_.push_back(std::move(particle));
    pending_.push_back(particles_.size() - 1);
    return p;
  }
  std::size_t index = next_particle_;
  next_particle_ = (next_particle_ + 1) % particles_.size();
  Particle& particle = particles_[index];
  // The particle moves from its previous (snapped) position: that is the
  // parent of the new proposal.
  SetProposalBase(Snap(particle.position));
  for (std::size_t i = 0; i < particle.position.size(); ++i) {
    double toward_personal =
        particle.has_personal
            ? static_cast<double>(particle.personal_best[i]) -
                  particle.position[i]
            : 0.0;
    double toward_global =
        has_best_
            ? static_cast<double>(best_[i]) - particle.position[i]
            : 0.0;
    particle.velocity[i] = inertia_ * particle.velocity[i] +
                           c_personal_ * rng.NextDouble() * toward_personal +
                           c_global_ * rng.NextDouble() * toward_global;
    // Velocity clamp keeps particles inside a couple of steps per move.
    double vmax =
        std::max(1.0, static_cast<double>(space_->factors[i].values.size()) /
                          3.0);
    particle.velocity[i] = std::clamp(particle.velocity[i], -vmax, vmax);
    particle.position[i] += particle.velocity[i];
    double hi = static_cast<double>(space_->factors[i].values.size() - 1);
    particle.position[i] = std::clamp(particle.position[i], 0.0, hi);
  }
  pending_.push_back(index);
  return Snap(particle.position);
}

void ParticleSwarm::Report(const Point& point, double cost, bool feasible) {
  UpdateBest(point, cost, feasible);
  if (pending_.empty()) return;  // seed injection or external report
  std::size_t index = pending_.front();
  pending_.erase(pending_.begin());
  Particle& particle = particles_[index];
  if (feasible &&
      (!particle.has_personal || cost < particle.personal_cost)) {
    particle.has_personal = true;
    particle.personal_best = point;
    particle.personal_cost = cost;
  }
}

// -------------------------------------------------------------------- SA

SimulatedAnnealing::SimulatedAnnealing(const DesignSpace* space,
                                       std::uint64_t seed,
                                       double initial_temp, double cooling)
    : SearchTechnique(space),
      accept_rng_(seed),
      temperature_(initial_temp),
      cooling_(cooling) {
  S2FA_REQUIRE(cooling > 0 && cooling < 1, "cooling must be in (0, 1)");
}

Point SimulatedAnnealing::Propose(Rng& rng) {
  if (!has_current_) {
    ClearProposalBase();
    return space_->RandomPoint(rng);
  }
  SetProposalBase(current_);
  return space_->Mutate(current_, rng, 1);
}

void SimulatedAnnealing::Report(const Point& point, double cost,
                                bool feasible) {
  UpdateBest(point, cost, feasible);
  temperature_ *= cooling_;
  if (!feasible) return;
  if (!has_current_ || cost < current_cost_) {
    has_current_ = true;
    current_ = point;
    current_cost_ = cost;
    return;
  }
  // Metropolis on log-cost (scale-free objective).
  double delta = std::log(cost) - std::log(current_cost_);
  double accept = std::exp(-delta / std::max(1e-6, temperature_));
  if (accept_rng_.NextDouble() < accept) {
    current_ = point;
    current_cost_ = cost;
  }
}

void SimulatedAnnealing::SeedWith(const Point& point, double cost,
                                  bool feasible) {
  SearchTechnique::SeedWith(point, cost, feasible);
  if (feasible && (!has_current_ || cost < current_cost_)) {
    has_current_ = true;
    current_ = point;
    current_cost_ = cost;
  }
}

// ------------------------------------------------------ bottleneck-guided

FactorKind ParseFactorClass(const std::string& name) {
  if (name == "tile") return FactorKind::kLoopTile;
  if (name == "parallel") return FactorKind::kLoopParallel;
  if (name == "pipeline") return FactorKind::kLoopPipeline;
  if (name == "bits") return FactorKind::kBufferBits;
  throw InvalidArgument("no factor class named '" + name +
                        "'; valid classes: tile, parallel, pipeline, bits");
}

const std::vector<BottleneckMove>& BottleneckMoves(hls::BottleneckKind kind) {
  using hls::BottleneckKind;
  // Directions follow the estimator's landscape: value lists are ordered
  // ascending (pipeline: off < on < flatten), so +1 buys more of a factor
  // and -1 backs it off.
  static const std::vector<BottleneckMove> none = {
      {"tile", 0}, {"parallel", 0}, {"pipeline", 0}, {"bits", 0}};
  // A carried chain pipelines at II 1 once Merlin's tree reduction kicks
  // in, which rides on unroll/pipeline; re-tiling reshapes the chain.
  static const std::vector<BottleneckMove> recurrence = {
      {"pipeline", 1}, {"parallel", 1}, {"tile", 0}};
  // Partition factors follow the accessing unroll, so more parallel means
  // more banks (ports); tiling changes which buffers the conflict hits.
  static const std::vector<BottleneckMove> ports = {
      {"parallel", 1}, {"tile", 0}};
  // Off-chip throughput scales directly with the interface width.
  static const std::vector<BottleneckMove> bandwidth = {
      {"bits", 1}, {"tile", 0}};
  // BRAM burns on partitions and staging buffers: back both drivers off.
  static const std::vector<BottleneckMove> bram = {
      {"parallel", -1}, {"tile", -1}, {"bits", -1}};
  // Logic caps come from replicated operators: shrink the unroll, and
  // re-roll pipelining (flatten fully unrolls subloops).
  static const std::vector<BottleneckMove> logic = {
      {"parallel", -1}, {"pipeline", 0}};
  // The routing wall and congestion knees are functions of the widest
  // unroll: parallel backoff is the only move that attacks them.
  static const std::vector<BottleneckMove> congestion = {
      {"parallel", -1}, {"pipeline", 0}};
  static const std::vector<BottleneckMove> routing = {{"parallel", -1}};
  switch (kind) {
    case BottleneckKind::kNone: return none;
    case BottleneckKind::kRecurrenceII: return recurrence;
    case BottleneckKind::kMemoryPortII: return ports;
    case BottleneckKind::kAxiBandwidth: return bandwidth;
    case BottleneckKind::kBramCap: return bram;
    case BottleneckKind::kDspCap: return logic;
    case BottleneckKind::kFfCap: return logic;
    case BottleneckKind::kLutCap: return logic;
    case BottleneckKind::kFreqCongestion: return congestion;
    case BottleneckKind::kRoutingWall: return routing;
  }
  return none;
}

BottleneckTechnique::BottleneckTechnique(const DesignSpace* space)
    : SearchTechnique(space) {}

Point BottleneckTechnique::Propose(Rng& rng) {
  if (!has_observed_) {
    ClearProposalBase();
    return space_->RandomPoint(rng);
  }
  SetProposalBase(observed_best_);
  if (obs::Enabled()) {
    S2FA_COUNT(std::string("tuner.bottleneck.") +
                   hls::BottleneckKindName(best_bneck_.kind),
               1);
  }
  // Candidate factors: every factor whose class the kind's declared subset
  // permits, paired with the declared direction.
  std::vector<std::pair<std::size_t, int>> candidates;
  for (const BottleneckMove& move : BottleneckMoves(best_bneck_.kind)) {
    const FactorKind kind = ParseFactorClass(move.factor_class);
    for (std::size_t i = 0; i < space_->num_factors(); ++i) {
      if (space_->factors[i].kind == kind) {
        candidates.emplace_back(i, move.direction);
      }
    }
  }
  if (candidates.empty()) {
    // A space without any factor the subset can touch (e.g. no interface
    // buffers for a bandwidth verdict): fall back to a general mutation.
    return space_->Mutate(observed_best_, rng, 1);
  }
  // One candidate neighbor: `width` bounds how many moves get applied, so
  // retries below can widen the search radius while staying in the subset.
  auto generate = [&](std::size_t width) {
    Point point = observed_best_;
    auto reroll = [&](std::size_t i) {
      const std::size_t size = space_->factors[i].values.size();
      if (size > 1) point[i] = (point[i] + 1 + rng.NextIndex(size - 1)) % size;
    };
    const std::size_t moves =
        candidates.size() > 1 ? 1 + rng.NextIndex(width) : 1;
    for (std::size_t m = 0; m < moves; ++m) {
      const auto [factor, direction] = candidates[rng.NextIndex(
          candidates.size())];
      const std::size_t size = space_->factors[factor].values.size();
      if (direction > 0) {
        if (point[factor] + 1 < size) ++point[factor];
        else reroll(factor);  // already maxed: explore within the subset
      } else if (direction < 0) {
        if (point[factor] > 0) --point[factor];
        else reroll(factor);
      } else {
        reroll(factor);
      }
    }
    if (point == observed_best_) {
      // Opposing moves cancelled out (decrement then reroll back), or every
      // touched factor was single-valued. Force a change inside the declared
      // subset when any of its factors can move at all — the arm must never
      // leak mutations onto undeclared factors.
      std::vector<std::size_t> movable;
      for (const auto& candidate : candidates) {
        if (space_->factors[candidate.first].values.size() > 1) {
          movable.push_back(candidate.first);
        }
      }
      if (movable.empty()) return space_->Mutate(observed_best_, rng, 1);
      reroll(movable[rng.NextIndex(movable.size())]);
    }
    return point;
  };
  // A duplicate neighbor costs a full evaluation downstream (the driver
  // has no dedup), so spend a few extra draws hunting a point this arm
  // hasn't proposed since the best last moved, widening the radius each
  // retry. If the whole reachable neighborhood has been submitted already,
  // re-submit anyway — the bandit stops picking an arm that stalls.
  Point point = generate(2);
  for (std::size_t attempt = 2; attempt <= 4 && proposed_.count(point) != 0;
       ++attempt) {
    point = generate(attempt);
  }
  proposed_.insert(point);
  return point;
}

void BottleneckTechnique::Report(const Point& point, double cost,
                                 bool feasible) {
  UpdateBest(point, cost, feasible);
}

void BottleneckTechnique::ObserveEvaluation(const Point& point, double cost,
                                            bool feasible,
                                            const hls::Bottleneck& bneck) {
  if (!feasible) return;
  if (!has_observed_ || cost < observed_cost_) {
    has_observed_ = true;
    observed_best_ = point;
    observed_cost_ = cost;
    best_bneck_ = bneck;
    // New base point, new neighborhood: forget which neighbors were tried.
    proposed_.clear();
  }
}

// ---------------------------------------------------------------- rosters

std::vector<std::unique_ptr<SearchTechnique>> DefaultTechniques(
    const DesignSpace* space, std::uint64_t seed) {
  std::vector<std::unique_ptr<SearchTechnique>> techniques;
  techniques.push_back(std::make_unique<UniformGreedyMutation>(space));
  techniques.push_back(std::make_unique<DifferentialEvolution>(space));
  techniques.push_back(std::make_unique<ParticleSwarm>(space));
  techniques.push_back(
      std::make_unique<SimulatedAnnealing>(space, seed ^ 0xD1CEB00CULL));
  return techniques;
}

std::vector<std::string> ParseTechniqueList(const std::string& csv) {
  std::vector<std::string> names;
  for (std::string_view field : Split(csv, ',')) {
    std::string_view name = Trim(field);
    if (!name.empty()) names.emplace_back(name);
  }
  return names;
}

std::vector<std::unique_ptr<SearchTechnique>> MakeTechniques(
    const DesignSpace* space, std::uint64_t seed,
    const std::vector<std::string>& names) {
  if (names.empty()) return DefaultTechniques(space, seed);
  std::vector<std::unique_ptr<SearchTechnique>> techniques;
  for (const std::string& name : names) {
    if (name == "bandit" || name == "default") {
      for (auto& technique : DefaultTechniques(space, seed)) {
        techniques.push_back(std::move(technique));
      }
    } else if (name == "greedy") {
      techniques.push_back(std::make_unique<UniformGreedyMutation>(space));
    } else if (name == "de") {
      techniques.push_back(std::make_unique<DifferentialEvolution>(space));
    } else if (name == "pso") {
      techniques.push_back(std::make_unique<ParticleSwarm>(space));
    } else if (name == "sa") {
      techniques.push_back(
          std::make_unique<SimulatedAnnealing>(space, seed ^ 0xD1CEB00CULL));
    } else if (name == "bottleneck") {
      techniques.push_back(std::make_unique<BottleneckTechnique>(space));
    } else {
      throw InvalidArgument(
          "no technique named '" + name +
          "'; available: bandit (the default four), greedy, de, pso, sa, "
          "bottleneck");
    }
  }
  return techniques;
}

}  // namespace s2fa::tuner
