// The vanilla "OpenTuner" driver (paper §4.2 + §5.2 footnote 3).
//
// One shared result database, a bandit over the four techniques, and a
// simulated wall clock: each iteration proposes `parallel` candidates
// (vanilla OpenTuner evaluates the top-8 on 8 cores), evaluates them, and
// advances the clock by the slowest evaluation in the batch. The only
// stopping criteria are the time limit and an optional plug-in predicate —
// which is exactly where S2FA's entropy criterion hooks in.
//
// `Tune` runs the loop to completion. `TuneSession` is the resumable form
// the DSE scheduler uses: budget is granted in slices via RunFor(minutes)
// and the session pauses between grants with its db/bandit/entropy state
// intact, so an interrupted search is bit-identical to an uninterrupted
// one given the same total budget.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "hls/bottleneck.h"
#include "merlin/design.h"
#include "tuner/bandit.h"
#include "tuner/result.h"
#include "tuner/space.h"

namespace s2fa {
class ThreadPool;
}

namespace s2fa::tuner {

// One black-box evaluation of a design config (Merlin + HLS downstream).
struct EvalOutcome {
  bool feasible = false;
  double cost = kInfeasibleCost;   // objective: accelerator time (us)
  double eval_minutes = 5.0;       // simulated HLS synthesis time
  // The estimator's attribution of what binds this design (kNone when the
  // evaluator has nothing to say — degraded results, illegal configs).
  // Broadcast to every technique after each commit so landscape-aware arms
  // can steer their mutations.
  hls::Bottleneck bottleneck;
};

using EvalFn = std::function<EvalOutcome(const merlin::DesignConfig&)>;

struct SeedPoint {
  Point point;
  std::string label;  // e.g. "performance-driven", "area-driven"
};

struct TuneOptions {
  double time_limit_minutes = 240;  // the paper's fixed 4-hour budget
  int parallel = 8;                 // evaluations per iteration
  // When true, one bandit selection per iteration proposes the whole batch
  // (the paper's footnote 3: vanilla OpenTuner evaluates one technique's
  // top-`parallel` candidates per iteration — "not scalable in terms of
  // the efficiency"). When false, each candidate gets its own selection.
  bool homogeneous_batches = false;
  std::uint64_t seed = 1;
  // Technique roster by name (see tuner::MakeTechniques); empty keeps the
  // paper's default four-arm set, bit-identical to before the knob existed.
  std::vector<std::string> techniques;
  std::vector<SeedPoint> seeds;     // evaluated before any proposals
  // Called after every iteration; return true to stop (reason reported).
  std::function<bool(const ResultDatabase&)> should_stop;
  std::string stop_reason_label = "custom criterion";
  // When set (and parallel > 1), each batch is evaluated concurrently on
  // this pool and the results are committed back in proposal order, so
  // the database/bandit/entropy state is bit-identical to a serial run
  // while wall-clock scales with cores. The pool must NOT be the one the
  // caller's own task is running on (a worker blocking on its own pool's
  // futures deadlocks); the DSE keeps a dedicated evaluation pool. Null
  // keeps the historical serial evaluation.
  ThreadPool* eval_pool = nullptr;
};

// One new-global-best commit, with the config that achieved it. Unlike the
// trace (which only carries (time, cost)), this keeps the cost/config pair
// together so a schedule clip can report the best pair found *within* a
// granted span instead of pairing a clipped cost with the final config.
struct BestUpdate {
  double time_minutes = 0;
  double cost = kInfeasibleCost;
  merlin::DesignConfig config;
};

struct TuneResult {
  bool found_feasible = false;
  Point best;
  merlin::DesignConfig best_config;
  double best_cost = kInfeasibleCost;
  double elapsed_minutes = 0;
  std::size_t evaluations = 0;
  std::string stop_reason;
  std::vector<TracePoint> trace;    // best-so-far cost over simulated time
  // Full (unclipped) history, for schedulers and span clips: every
  // new-best commit with its config, and the commit time of every
  // evaluation (one entry per database record, in commit order).
  std::vector<BestUpdate> improvements;
  std::vector<double> eval_times_minutes;
};

// Runs the tuning loop. `evaluate` must be pure w.r.t. the config.
TuneResult Tune(const DesignSpace& space, const EvalFn& evaluate,
                const TuneOptions& options);

// A pausable/resumable tuning run. RunFor(minutes) grants a slice of
// simulated budget and iterates until the slice (or the configured
// time_limit_minutes, whichever is tighter) is exhausted or the stop
// criterion fires. Between calls the session holds its full state — rng,
// bandit, database, stop-criterion closure — so
//   TuneSession s(...); s.RunFor(a); s.RunFor(b);
// commits exactly the same evaluation sequence as one RunFor(a + b), and
// Tune() itself is implemented as a single full-budget grant.
class TuneSession {
 public:
  TuneSession(const DesignSpace& space, EvalFn evaluate, TuneOptions options);

  TuneSession(const TuneSession&) = delete;
  TuneSession& operator=(const TuneSession&) = delete;

  // Grants `minutes` of additional simulated budget (clamped so the total
  // never exceeds options.time_limit_minutes) and runs until it is spent
  // or the session finishes. Returns the simulated minutes actually
  // consumed — the final batch may overshoot the grant, exactly as Tune's
  // final batch may overshoot the time limit.
  double RunFor(double minutes);

  // True once the stop criterion fired or the configured time limit was
  // reached; further RunFor calls are no-ops.
  bool finished() const { return finished_; }
  double clock_minutes() const { return clock_; }
  double granted_minutes() const { return granted_; }
  std::size_t evaluations() const { return db_.size(); }
  bool has_best() const { return db_.has_best(); }
  double best_cost() const { return db_.best_cost(); }

  // Snapshot of the run so far, clamped to the granted budget (for a
  // completed full-budget session this is exactly Tune's result).
  TuneResult Result() const;

 private:
  void EvaluateSeeds();
  bool Iterate();  // one proposal batch; true if the stop criterion fired
  void FinishWith(const std::string& reason);

  const DesignSpace* space_;
  EvalFn evaluate_;
  TuneOptions options_;
  Rng rng_;
  AucBandit bandit_;
  ResultDatabase db_;
  double clock_ = 0;
  double granted_ = 0;
  bool seeded_ = false;
  bool finished_ = false;
  std::string stop_reason_;
};

}  // namespace s2fa::tuner
