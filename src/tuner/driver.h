// The vanilla "OpenTuner" driver (paper §4.2 + §5.2 footnote 3).
//
// One shared result database, a bandit over the four techniques, and a
// simulated wall clock: each iteration proposes `parallel` candidates
// (vanilla OpenTuner evaluates the top-8 on 8 cores), evaluates them, and
// advances the clock by the slowest evaluation in the batch. The only
// stopping criteria are the time limit and an optional plug-in predicate —
// which is exactly where S2FA's entropy criterion hooks in.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "merlin/design.h"
#include "tuner/bandit.h"
#include "tuner/result.h"
#include "tuner/space.h"

namespace s2fa {
class ThreadPool;
}

namespace s2fa::tuner {

// One black-box evaluation of a design config (Merlin + HLS downstream).
struct EvalOutcome {
  bool feasible = false;
  double cost = kInfeasibleCost;   // objective: accelerator time (us)
  double eval_minutes = 5.0;       // simulated HLS synthesis time
};

using EvalFn = std::function<EvalOutcome(const merlin::DesignConfig&)>;

struct SeedPoint {
  Point point;
  std::string label;  // e.g. "performance-driven", "area-driven"
};

struct TuneOptions {
  double time_limit_minutes = 240;  // the paper's fixed 4-hour budget
  int parallel = 8;                 // evaluations per iteration
  // When true, one bandit selection per iteration proposes the whole batch
  // (the paper's footnote 3: vanilla OpenTuner evaluates one technique's
  // top-`parallel` candidates per iteration — "not scalable in terms of
  // the efficiency"). When false, each candidate gets its own selection.
  bool homogeneous_batches = false;
  std::uint64_t seed = 1;
  std::vector<SeedPoint> seeds;     // evaluated before any proposals
  // Called after every iteration; return true to stop (reason reported).
  std::function<bool(const ResultDatabase&)> should_stop;
  std::string stop_reason_label = "custom criterion";
  // When set (and parallel > 1), each batch is evaluated concurrently on
  // this pool and the results are committed back in proposal order, so
  // the database/bandit/entropy state is bit-identical to a serial run
  // while wall-clock scales with cores. The pool must NOT be the one the
  // caller's own task is running on (a worker blocking on its own pool's
  // futures deadlocks); the DSE keeps a dedicated evaluation pool. Null
  // keeps the historical serial evaluation.
  ThreadPool* eval_pool = nullptr;
};

struct TuneResult {
  bool found_feasible = false;
  Point best;
  merlin::DesignConfig best_config;
  double best_cost = kInfeasibleCost;
  double elapsed_minutes = 0;
  std::size_t evaluations = 0;
  std::string stop_reason;
  std::vector<TracePoint> trace;    // best-so-far cost over simulated time
};

// Runs the tuning loop. `evaluate` must be pure w.r.t. the config.
TuneResult Tune(const DesignSpace& space, const EvalFn& evaluate,
                const TuneOptions& options);

}  // namespace s2fa::tuner
