#include "tuner/space.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/error.h"

namespace s2fa::tuner {

double DesignSpace::Log10Cardinality() const {
  double log10 = 0;
  for (const auto& f : factors) {
    log10 += std::log10(static_cast<double>(f.values.size()));
  }
  return log10;
}

merlin::DesignConfig DesignSpace::ToConfig(const Point& point) const {
  ValidatePoint(point);
  merlin::DesignConfig config;
  for (std::size_t i = 0; i < factors.size(); ++i) {
    const Factor& f = factors[i];
    const std::int64_t value = f.values[point[i]];
    switch (f.kind) {
      case FactorKind::kLoopTile:
        config.loops[f.loop_id].tile = value;
        break;
      case FactorKind::kLoopParallel:
        config.loops[f.loop_id].parallel = value;
        break;
      case FactorKind::kLoopPipeline:
        config.loops[f.loop_id].pipeline =
            static_cast<merlin::PipelineMode>(value);
        break;
      case FactorKind::kBufferBits:
        config.buffer_bits[f.buffer] = static_cast<int>(value);
        break;
    }
  }
  return config;
}

Point DesignSpace::RandomPoint(Rng& rng) const {
  Point p(factors.size());
  for (std::size_t i = 0; i < factors.size(); ++i) {
    p[i] = rng.NextIndex(factors[i].values.size());
  }
  return p;
}

Point DesignSpace::Mutate(const Point& point, Rng& rng,
                          int num_mutations) const {
  ValidatePoint(point);
  S2FA_REQUIRE(num_mutations >= 1, "need at least one mutation");
  Point p = point;
  for (int m = 0; m < num_mutations; ++m) {
    std::size_t f = rng.NextIndex(factors.size());
    p[f] = rng.NextIndex(factors[f].values.size());
  }
  return p;
}

void DesignSpace::Clamp(Point& point) const {
  point.resize(factors.size());
  for (std::size_t i = 0; i < factors.size(); ++i) {
    if (point[i] >= factors[i].values.size()) {
      point[i] = factors[i].values.size() - 1;
    }
  }
}

std::size_t DesignSpace::FactorIndex(const std::string& name) const {
  for (std::size_t i = 0; i < factors.size(); ++i) {
    if (factors[i].name == name) return i;
  }
  std::ostringstream oss;
  oss << "no factor named " << name << "; available factors:";
  if (factors.empty()) {
    oss << " (none)";
  } else {
    for (std::size_t i = 0; i < factors.size(); ++i) {
      oss << (i == 0 ? " " : ", ") << factors[i].name;
    }
  }
  throw InvalidArgument(oss.str());
}

void DesignSpace::ValidatePoint(const Point& point) const {
  S2FA_REQUIRE(point.size() == factors.size(),
               "point has " << point.size() << " coordinates, space has "
                            << factors.size());
  for (std::size_t i = 0; i < factors.size(); ++i) {
    S2FA_REQUIRE(point[i] < factors[i].values.size(),
                 "coordinate " << i << " out of range");
  }
}

namespace {

std::vector<std::int64_t> TileValues(std::int64_t trip, int max_values) {
  std::vector<std::int64_t> divisors{1};
  for (std::int64_t d = 2; d < trip; ++d) {
    if (trip % d == 0) divisors.push_back(d);
  }
  if (static_cast<int>(divisors.size()) <= max_values) return divisors;
  std::vector<std::int64_t> pow2{1};
  for (std::int64_t d = 2; d < trip; d *= 2) {
    if (trip % d == 0) pow2.push_back(d);
  }
  return pow2;
}

std::vector<std::int64_t> ParallelValues(std::int64_t trip) {
  std::vector<std::int64_t> values;
  for (std::int64_t u = 1; u < trip; u *= 2) values.push_back(u);
  values.push_back(trip);  // full unroll
  return values;
}

std::vector<std::int64_t> BitValues(int element_bits, int max_bits) {
  std::vector<std::int64_t> values;
  for (int b = element_bits; b <= max_bits; b *= 2) values.push_back(b);
  return values;
}

}  // namespace

DesignSpace BuildDesignSpace(const kir::Kernel& kernel,
                             const SpaceOptions& options) {
  kernel.Validate();
  DesignSpace space;
  for (const kir::Stmt* loop : kernel.Loops()) {
    const std::string prefix = "L" + std::to_string(loop->loop_id());
    Factor tile;
    tile.name = prefix + ".tile";
    tile.kind = FactorKind::kLoopTile;
    tile.loop_id = loop->loop_id();
    tile.values = TileValues(loop->trip_count(), options.max_tile_values);
    space.factors.push_back(std::move(tile));

    Factor par;
    par.name = prefix + ".parallel";
    par.kind = FactorKind::kLoopParallel;
    par.loop_id = loop->loop_id();
    par.values = ParallelValues(loop->trip_count());
    space.factors.push_back(std::move(par));

    Factor pipe;
    pipe.name = prefix + ".pipeline";
    pipe.kind = FactorKind::kLoopPipeline;
    pipe.loop_id = loop->loop_id();
    pipe.values = {static_cast<std::int64_t>(merlin::PipelineMode::kOff),
                   static_cast<std::int64_t>(merlin::PipelineMode::kOn),
                   static_cast<std::int64_t>(merlin::PipelineMode::kFlatten)};
    space.factors.push_back(std::move(pipe));
  }
  for (const auto& buf : kernel.buffers) {
    if (buf.kind == kir::BufferKind::kLocal) continue;
    Factor bits;
    bits.name = buf.name + ".bits";
    bits.kind = FactorKind::kBufferBits;
    bits.buffer = buf.name;
    bits.values = BitValues(buf.element.bit_width(), options.max_bits);
    space.factors.push_back(std::move(bits));
  }
  return space;
}

}  // namespace s2fa::tuner
