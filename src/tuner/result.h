// Shared result database for one tuning run.
//
// Every evaluated design point is recorded with its cost, feasibility,
// simulated timestamp, the proposing technique, and which factors changed
// relative to the previous evaluation — the inputs both the bandit's credit
// assignment and S2FA's Shannon-entropy stopping criterion (§4.3.3) need.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "tuner/space.h"

namespace s2fa::tuner {

inline constexpr double kInfeasibleCost =
    std::numeric_limits<double>::infinity();

struct Record {
  Point point;
  double cost = kInfeasibleCost;   // objective (accelerator exec time, us)
  bool feasible = false;
  double time_minutes = 0;         // simulated wall clock when finished
  std::size_t technique = 0;       // index of the proposing technique
  // Factors that differ from the point the proposing technique mutated
  // (its parent). Legacy fallback when no parent is supplied: vs the
  // previous record — which, in a parallel batch, is another technique's
  // proposal and skews the mutation distribution the entropy stop reads.
  std::vector<std::size_t> changed_factors;
  bool improved = false;           // strictly better than best-so-far
};

struct TracePoint {
  double time_minutes = 0;
  double best_cost = kInfeasibleCost;
};

// Drops consecutive trace points whose best cost did not change, keeping
// the earliest. Traces built by ResultDatabase are strictly improving
// already; merged/clipped traces (DSE schedules, seed batches landing at
// the same clock) can repeat a cost, and exporters want one point per
// distinct best.
std::vector<TracePoint> DedupTrace(std::vector<TracePoint> trace);

class ResultDatabase {
 public:
  // Appends a result; computes changed_factors/improved. Returns whether
  // this record set a new global best. The 5-argument overload diffs
  // against the previous record (legacy behavior, for hand-built test
  // databases); the driver passes the proposing technique's parent
  // explicitly — nullptr meaning "no parent" (random draws, seeds), which
  // records an empty mutation set instead of a meaningless full diff.
  bool Add(Point point, double cost, bool feasible, double time_minutes,
           std::size_t technique);
  bool Add(Point point, double cost, bool feasible, double time_minutes,
           std::size_t technique, const Point* parent);

  bool has_best() const { return has_best_; }
  const Point& best() const;
  double best_cost() const { return best_cost_; }

  const std::vector<Record>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  // Best-so-far cost over time (one entry per improvement).
  const std::vector<TracePoint>& trace() const { return trace_; }

 private:
  std::vector<Record> records_;
  std::vector<TracePoint> trace_;
  bool has_best_ = false;
  Point best_;
  double best_cost_ = kInfeasibleCost;
};

}  // namespace s2fa::tuner
