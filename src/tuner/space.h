// Design-space model (paper Table 1 + §4.1).
//
// The space is a cross product of discrete factors:
//   * per loop: tiling factor (divisors of the trip count), parallel
//     (unroll) factor (powers of two up to the trip count), pipeline mode
//     {off, on, flatten};
//   * per interface buffer: bit-width (powers of two, element width..512).
//
// A Point assigns one value index per factor. Factor *dependencies* are
// deliberately preserved rather than pruned (paper §4.2 Impediment 2):
// e.g. a parallel factor larger than the tile factor is illegal and
// evaluates as infeasible, and flatten on an outer loop invalidates inner
// factors — learning algorithms must cope, which is exactly what the S2FA
// partitioning is designed to help with.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kir/kernel.h"
#include "merlin/design.h"
#include "support/rng.h"

namespace s2fa::tuner {

enum class FactorKind { kLoopTile, kLoopParallel, kLoopPipeline, kBufferBits };

struct Factor {
  std::string name;   // e.g. "L0.tile", "in_1.bits"
  FactorKind kind = FactorKind::kLoopTile;
  int loop_id = -1;               // for loop factors
  std::string buffer;             // for buffer factors
  std::vector<std::int64_t> values;  // ordered candidate values

  std::size_t size() const { return values.size(); }
};

// One design point: a value index per factor (parallel arrays with
// DesignSpace::factors).
using Point = std::vector<std::size_t>;

class DesignSpace {
 public:
  std::vector<Factor> factors;

  std::size_t num_factors() const { return factors.size(); }

  // log10 of the number of points in the full cross product.
  double Log10Cardinality() const;

  // Translates a point into a Merlin design config (may be illegal — the
  // evaluator reports such points infeasible).
  merlin::DesignConfig ToConfig(const Point& point) const;

  // Uniformly random point.
  Point RandomPoint(Rng& rng) const;

  // Returns a copy of `point` with `num_mutations` factors re-rolled.
  Point Mutate(const Point& point, Rng& rng, int num_mutations = 1) const;

  // Clamps every index into range (for arithmetic techniques).
  void Clamp(Point& point) const;

  // Index of the factor named `name`; throws if absent.
  std::size_t FactorIndex(const std::string& name) const;

  void ValidatePoint(const Point& point) const;
};

struct SpaceOptions {
  int max_bits = 512;
  // Cap on enumerated tile divisors per loop; falls back to powers of two
  // when a trip count has more divisors than this.
  int max_tile_values = 24;
};

// Builds the Table-1 space for a compiled kernel by analyzing its loop
// tree and interface buffers (the ROSE/polyhedral step of §4.1).
DesignSpace BuildDesignSpace(const kir::Kernel& kernel,
                             const SpaceOptions& options = {});

}  // namespace s2fa::tuner
