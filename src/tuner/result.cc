#include "tuner/result.h"

#include "support/error.h"

namespace s2fa::tuner {

std::vector<TracePoint> DedupTrace(std::vector<TracePoint> trace) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (kept > 0 && trace[i].best_cost == trace[kept - 1].best_cost) continue;
    trace[kept++] = trace[i];
  }
  trace.resize(kept);
  return trace;
}

const Point& ResultDatabase::best() const {
  S2FA_REQUIRE(has_best_, "no feasible result recorded yet");
  return best_;
}

bool ResultDatabase::Add(Point point, double cost, bool feasible,
                         double time_minutes, std::size_t technique) {
  const Point* parent =
      records_.empty() ? nullptr : &records_.back().point;
  return Add(std::move(point), cost, feasible, time_minutes, technique,
             parent);
}

bool ResultDatabase::Add(Point point, double cost, bool feasible,
                         double time_minutes, std::size_t technique,
                         const Point* parent) {
  Record rec;
  rec.cost = feasible ? cost : kInfeasibleCost;
  rec.feasible = feasible;
  rec.time_minutes = time_minutes;
  rec.technique = technique;
  if (parent != nullptr) {
    const Point& base = *parent;
    for (std::size_t i = 0; i < point.size() && i < base.size(); ++i) {
      if (point[i] != base[i]) rec.changed_factors.push_back(i);
    }
  }
  bool new_best = feasible && (!has_best_ || cost < best_cost_);
  rec.improved = new_best;
  rec.point = point;
  records_.push_back(rec);
  if (new_best) {
    has_best_ = true;
    best_ = std::move(point);
    best_cost_ = cost;
    trace_.push_back({time_minutes, cost});
  }
  return new_best;
}

}  // namespace s2fa::tuner
