// Multi-armed bandit technique arbitration (paper §4.2, [13]).
//
// OpenTuner's AUC bandit: each technique's recent history (a sliding
// window of "did this use produce a new global best?") is scored by the
// area under its cumulative-hit curve, plus a UCB-style exploration term.
// Techniques that keep finding better designs get more proposals.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "support/rng.h"
#include "tuner/technique.h"

namespace s2fa::tuner {

class AucBandit {
 public:
  // Takes ownership of the techniques. `exploration` is the UCB constant,
  // `window` the per-technique history length.
  AucBandit(std::vector<std::unique_ptr<SearchTechnique>> techniques,
            double exploration = 0.1, std::size_t window = 200);

  std::size_t num_techniques() const { return arms_.size(); }
  SearchTechnique& technique(std::size_t index);

  // Picks the technique to propose the next point (ties broken randomly).
  std::size_t Select(Rng& rng);

  // Records whether use #n of `index` produced a new global best.
  void ReportOutcome(std::size_t index, bool new_global_best);

  // Current AUC score of a technique (exploration term excluded).
  double AucOf(std::size_t index) const;
  std::size_t UsesOf(std::size_t index) const;

 private:
  struct Arm {
    std::unique_ptr<SearchTechnique> technique;
    std::deque<bool> history;  // sliding window, oldest first
    std::size_t uses = 0;
  };

  std::vector<Arm> arms_;
  double exploration_;
  std::size_t window_;
  std::size_t total_uses_ = 0;
};

}  // namespace s2fa::tuner
