// Minimal leveled logging. Off by default so tests and benches stay quiet;
// enable with Logger::SetLevel or the S2FA_LOG_LEVEL environment variable
// (0=off, 1=error, 2=warn, 3=info, 4=debug — or the level names). Each line
// carries a monotonic timestamp (ms since process start) and a small dense
// thread id so interleaved partition-thread logs stay attributable.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace s2fa {

enum class LogLevel : int { kOff = 0, kError = 1, kWarn = 2, kInfo = 3, kDebug = 4 };

// Round-trip helpers shared by S2FA_LOG_LEVEL and the obs flag parsing:
// LogLevelName(ParseLogLevel(s)) == canonical name. ParseLogLevel accepts
// "0".."4" or the (case-insensitive) names off/error/warn/info/debug and
// returns nullopt for anything else — garbage is rejected, not mapped to 0.
const char* LogLevelName(LogLevel level);
std::optional<LogLevel> ParseLogLevel(std::string_view text);

// Monotonic clock anchored at process start, and a small dense id for the
// calling thread (1 = first thread observed). Shared by the logger and the
// obs tracer.
std::uint64_t MonotonicMicros();
double MonotonicMillis();
int CurrentThreadId();

class Logger {
 public:
  static void SetLevel(LogLevel level);
  static LogLevel GetLevel();

  // Writes one line to stderr under a global mutex (thread-safe).
  static void Write(LogLevel level, const std::string& message);

 private:
  static LogLevel level_;
  static std::mutex mutex_;
};

}  // namespace s2fa

#define S2FA_LOG(level, msg)                                              \
  do {                                                                    \
    if (static_cast<int>(::s2fa::Logger::GetLevel()) >=                   \
        static_cast<int>(level)) {                                        \
      ::std::ostringstream s2fa_log_oss_;                                 \
      s2fa_log_oss_ << msg;                                               \
      ::s2fa::Logger::Write(level, s2fa_log_oss_.str());                  \
    }                                                                     \
  } while (0)

#define S2FA_LOG_ERROR(msg) S2FA_LOG(::s2fa::LogLevel::kError, msg)
#define S2FA_LOG_WARN(msg) S2FA_LOG(::s2fa::LogLevel::kWarn, msg)
#define S2FA_LOG_INFO(msg) S2FA_LOG(::s2fa::LogLevel::kInfo, msg)
#define S2FA_LOG_DEBUG(msg) S2FA_LOG(::s2fa::LogLevel::kDebug, msg)
