// Minimal leveled logging. Off by default so tests and benches stay quiet;
// enable with Logger::SetLevel or the S2FA_LOG_LEVEL environment variable
// (0=off, 1=error, 2=warn, 3=info, 4=debug).
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace s2fa {

enum class LogLevel : int { kOff = 0, kError = 1, kWarn = 2, kInfo = 3, kDebug = 4 };

class Logger {
 public:
  static void SetLevel(LogLevel level);
  static LogLevel GetLevel();

  // Writes one line to stderr under a global mutex (thread-safe).
  static void Write(LogLevel level, const std::string& message);

 private:
  static LogLevel level_;
  static std::mutex mutex_;
};

}  // namespace s2fa

#define S2FA_LOG(level, msg)                                              \
  do {                                                                    \
    if (static_cast<int>(::s2fa::Logger::GetLevel()) >=                   \
        static_cast<int>(level)) {                                        \
      ::std::ostringstream s2fa_log_oss_;                                 \
      s2fa_log_oss_ << msg;                                               \
      ::s2fa::Logger::Write(level, s2fa_log_oss_.str());                  \
    }                                                                     \
  } while (0)

#define S2FA_LOG_ERROR(msg) S2FA_LOG(::s2fa::LogLevel::kError, msg)
#define S2FA_LOG_WARN(msg) S2FA_LOG(::s2fa::LogLevel::kWarn, msg)
#define S2FA_LOG_INFO(msg) S2FA_LOG(::s2fa::LogLevel::kInfo, msg)
#define S2FA_LOG_DEBUG(msg) S2FA_LOG(::s2fa::LogLevel::kDebug, msg)
