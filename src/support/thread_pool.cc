#include "support/thread_pool.h"

#include "support/error.h"

namespace s2fa {

ThreadPool::ThreadPool(std::size_t num_threads) {
  S2FA_REQUIRE(num_threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace s2fa
