// Small string utilities used across modules (formatting HLS reports,
// emitting C code, rendering benchmark tables).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace s2fa {

// Joins elements with `sep`; elements are stringified via operator<<.
template <typename Container>
std::string Join(const Container& items, std::string_view sep) {
  std::string out;
  bool first = true;
  for (const auto& item : items) {
    if (!first) out += sep;
    first = false;
    if constexpr (std::is_convertible_v<decltype(item), std::string_view>) {
      out += std::string_view(item);
    } else {
      out += std::to_string(item);
    }
  }
  return out;
}

// Splits on a single character, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Left/right pads with spaces to `width` (no-op if already wider).
std::string PadLeft(std::string_view text, std::size_t width);
std::string PadRight(std::string_view text, std::size_t width);

// Formats a double with `digits` places after the point.
std::string FormatDouble(double value, int digits);

// Renders "12.3%", "4.0x" style strings used in benchmark tables.
std::string FormatPercent(double fraction, int digits = 1);
std::string FormatSpeedup(double ratio, int digits = 1);

// Indents every line of a multi-line block by `spaces` spaces.
std::string Indent(std::string_view block, int spaces);

}  // namespace s2fa
