// Fixed-size worker pool used by the parallel DSE scheduler.
//
// Tasks are arbitrary std::function<void()> values executed first-come-
// first-serve, matching the FCFS partition scheduling described in paper
// §4.3.1. The pool joins all workers on destruction; pending tasks are
// drained before shutdown completes.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace s2fa {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; returns a future for its completion. FCFS order.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  // Blocks until the queue is empty and all in-flight tasks finished.
  void Wait();

  std::size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace s2fa
