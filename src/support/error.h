// Error handling primitives shared by every s2fa module.
//
// The library reports unrecoverable misuse (precondition violations,
// malformed inputs) via exceptions derived from s2fa::Error so that callers
// can distinguish library failures from std:: failures. Hot paths use the
// S2FA_CHECK family which formats a diagnostic with source location.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace s2fa {

// Root of the s2fa exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Input that violates a documented precondition of a public API.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

// Structurally malformed bytecode, IR, or configuration.
class MalformedInput : public Error {
 public:
  explicit MalformedInput(const std::string& what) : Error(what) {}
};

// A feature the framework deliberately does not support (paper §3.3).
class Unsupported : public Error {
 public:
  explicit Unsupported(const std::string& what) : Error(what) {}
};

// Internal invariant broken: always a bug in s2fa itself.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] void ThrowCheckFailure(const char* kind, const char* expr,
                                    const char* file, int line,
                                    const std::string& message);

}  // namespace detail

}  // namespace s2fa

// Precondition check on public API boundaries; throws InvalidArgument.
#define S2FA_REQUIRE(cond, msg)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::std::ostringstream s2fa_oss_;                                       \
      s2fa_oss_ << msg;                                                     \
      ::s2fa::detail::ThrowCheckFailure("precondition", #cond, __FILE__,    \
                                        __LINE__, s2fa_oss_.str());         \
    }                                                                       \
  } while (0)

// Internal invariant check; throws InternalError.
#define S2FA_CHECK(cond, msg)                                               \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::std::ostringstream s2fa_oss_;                                       \
      s2fa_oss_ << msg;                                                     \
      ::s2fa::detail::ThrowCheckFailure("invariant", #cond, __FILE__,       \
                                        __LINE__, s2fa_oss_.str());         \
    }                                                                       \
  } while (0)

#define S2FA_UNREACHABLE(msg)                                               \
  ::s2fa::detail::ThrowCheckFailure("unreachable", "false", __FILE__,       \
                                    __LINE__, (msg))
