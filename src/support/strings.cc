#include "support/strings.h"

#include <cctype>
#include <cstdio>

namespace s2fa {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string_view Trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string PadLeft(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.insert(0, width - out.size(), ' ');
  return out;
}

std::string PadRight(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatPercent(double fraction, int digits) {
  return FormatDouble(fraction * 100.0, digits) + "%";
}

std::string FormatSpeedup(double ratio, int digits) {
  return FormatDouble(ratio, digits) + "x";
}

std::string Indent(std::string_view block, int spaces) {
  std::string pad(static_cast<std::size_t>(spaces), ' ');
  std::string out;
  std::size_t start = 0;
  while (start <= block.size()) {
    std::size_t nl = block.find('\n', start);
    std::string_view line = (nl == std::string_view::npos)
                                ? block.substr(start)
                                : block.substr(start, nl - start);
    if (!line.empty()) out += pad;
    out += line;
    if (nl == std::string_view::npos) break;
    out += '\n';
    start = nl + 1;
  }
  return out;
}

}  // namespace s2fa
