#include "support/rng.h"

#include <cmath>
#include <numbers>

namespace s2fa {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::Seed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
  // All-zero state is a fixed point of xoshiro; splitmix cannot produce four
  // zero words from any seed, but keep the guard for state set by Fork.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  S2FA_REQUIRE(bound > 0, "NextBounded bound must be positive");
  // Rejection sampling over the largest multiple of bound.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  S2FA_REQUIRE(lo <= hi, "NextInt range is empty: [" << lo << ", " << hi << "]");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(Next());  // full range
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits → uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  S2FA_REQUIRE(lo <= hi, "NextDouble range is empty");
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  // Box-Muller; draw u1 away from zero to keep log finite.
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

std::size_t Rng::NextIndex(std::size_t size) {
  S2FA_REQUIRE(size > 0, "NextIndex on empty container");
  return static_cast<std::size_t>(NextBounded(size));
}

Rng Rng::Fork() { return Rng(Next() ^ 0xA5A5A5A55A5A5A5AULL); }

}  // namespace s2fa
