// Deterministic pseudo-random number generation.
//
// Every stochastic component in s2fa (search techniques, workload
// generators, noise models) draws from an explicitly seeded Rng so that a
// whole DSE run is reproducible from a single seed. The generator is
// xoshiro256**, which is fast, has 256 bits of state, and passes BigCrush.
#pragma once

#include <cstdint>
#include <vector>

#include "support/error.h"

namespace s2fa {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) { Seed(seed); }

  // Re-seeds via splitmix64 expansion so nearby seeds give unrelated streams.
  void Seed(std::uint64_t seed);

  // Uniform 64-bit value.
  std::uint64_t Next();

  // Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  // avoid modulo bias.
  std::uint64_t NextBounded(std::uint64_t bound);

  // Uniform integer in the inclusive range [lo, hi].
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double NextGaussian();

  // Bernoulli(p).
  bool NextBool(double p = 0.5);

  // Picks a uniformly random element index of a non-empty container size.
  std::size_t NextIndex(std::size_t size);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = NextIndex(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  // Derives an independent child stream (for per-thread RNGs).
  Rng Fork();

 private:
  std::uint64_t state_[4];
};

}  // namespace s2fa
