#include "support/logging.h"

#include <cstdlib>
#include <iostream>

namespace s2fa {

namespace {

LogLevel InitialLevel() {
  if (const char* env = std::getenv("S2FA_LOG_LEVEL")) {
    int v = std::atoi(env);
    if (v >= 0 && v <= 4) return static_cast<LogLevel>(v);
  }
  return LogLevel::kOff;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
    default: return "?";
  }
}

}  // namespace

LogLevel Logger::level_ = InitialLevel();
std::mutex Logger::mutex_;

void Logger::SetLevel(LogLevel level) {
  std::lock_guard<std::mutex> lock(mutex_);
  level_ = level;
}

LogLevel Logger::GetLevel() { return level_; }

void Logger::Write(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::cerr << "[s2fa " << LevelName(level) << "] " << message << "\n";
}

}  // namespace s2fa
