#include "support/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>

namespace s2fa {

namespace {

std::chrono::steady_clock::time_point ProcessStart() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

// Anchor the clock as early as static initialization runs.
const auto g_clock_anchor = ProcessStart();

std::atomic<int> g_thread_counter{0};

// Parsed exactly once; invalid values are rejected with a warning rather
// than silently mapping to kOff via atoi.
LogLevel InitialLevel() {
  const char* env = std::getenv("S2FA_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kOff;
  if (std::optional<LogLevel> level = ParseLogLevel(env)) return *level;
  std::fprintf(stderr,
               "[s2fa WARN] invalid S2FA_LOG_LEVEL '%s' "
               "(expected 0-4 or off/error/warn/info/debug); logging off\n",
               env);
  return LogLevel::kOff;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kOff: return "off";
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
  }
  return "off";
}

std::optional<LogLevel> ParseLogLevel(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "0" || lower == "off") return LogLevel::kOff;
  if (lower == "1" || lower == "error") return LogLevel::kError;
  if (lower == "2" || lower == "warn") return LogLevel::kWarn;
  if (lower == "3" || lower == "info") return LogLevel::kInfo;
  if (lower == "4" || lower == "debug") return LogLevel::kDebug;
  return std::nullopt;
}

std::uint64_t MonotonicMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - ProcessStart())
          .count());
}

double MonotonicMillis() {
  return static_cast<double>(MonotonicMicros()) / 1000.0;
}

int CurrentThreadId() {
  thread_local const int id = ++g_thread_counter;
  return id;
}

LogLevel Logger::level_ = InitialLevel();
std::mutex Logger::mutex_;

void Logger::SetLevel(LogLevel level) {
  std::lock_guard<std::mutex> lock(mutex_);
  level_ = level;
}

LogLevel Logger::GetLevel() { return level_; }

void Logger::Write(LogLevel level, const std::string& message) {
  const double ms = MonotonicMillis();
  const int tid = CurrentThreadId();
  std::lock_guard<std::mutex> lock(mutex_);
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "[s2fa %s +%.1fms T%d] ",
                LogLevelName(level), ms, tid);
  std::cerr << prefix << message << "\n";
}

}  // namespace s2fa
