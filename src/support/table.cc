#include "support/table.h"

#include <algorithm>

#include "support/error.h"
#include "support/strings.h"

namespace s2fa {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  S2FA_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::AddRow(std::vector<std::string> row) {
  S2FA_REQUIRE(row.size() == header_.size(),
               "row has " << row.size() << " cells, expected "
                          << header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::Render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += " " + PadRight(row[c], widths[c]) + " |";
    }
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::string sep = "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    sep += std::string(widths[c] + 2, '-') + "|";
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace s2fa
