// ASCII table rendering for benchmark harness output. Produces aligned,
// pipe-separated rows like the tables in the paper.
#pragma once

#include <string>
#include <vector>

namespace s2fa {

class TextTable {
 public:
  // Sets the header row; defines the column count.
  explicit TextTable(std::vector<std::string> header);

  // Adds one row; must match the header's column count.
  void AddRow(std::vector<std::string> row);

  // Renders with column alignment and a separator under the header.
  std::string Render() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace s2fa
