#include "support/error.h"

namespace s2fa::detail {

[[noreturn]] void ThrowCheckFailure(const char* kind, const char* expr,
                                    const char* file, int line,
                                    const std::string& message) {
  std::ostringstream oss;
  oss << file << ":" << line << ": " << kind << " failed (" << expr << "): "
      << message;
  if (std::string(kind) == "precondition") throw InvalidArgument(oss.str());
  if (std::string(kind) == "unreachable") throw InternalError(oss.str());
  throw InternalError(oss.str());
}

}  // namespace s2fa::detail
