// Shared memoizing evaluation cache (the "never pay for the same design
// point twice" layer).
//
// OpenTuner answers re-proposed configurations from its results database
// and AutoDSE treats the HLS oracle as far too expensive to consult twice
// for the same point; this cache gives the whole evaluation stack that
// property. It is content-addressed on the canonical config string
// (`merlin::DesignConfig::ToString()`), deliberately *unscoped* — the
// training phase, every partition, and a vanilla run all share one cache,
// so a point the trainer already synthesized is free for whichever
// partition re-proposes it.
//
// Three properties beyond a plain map:
//   * thread safety — lookups/inserts take one short lock; the black box
//     itself is never called under it;
//   * single-flight in-flight deduplication — when two evaluators request
//     the same key concurrently, one computes and the others block and
//     join its result instead of racing duplicate synthesis jobs;
//   * an optional LRU capacity bound (`capacity` entries; 0 = unbounded)
//     for explorations too large to memoize wholesale.
//
// Determinism: a hit replays the stored EvalOutcome bit-for-bit —
// including its charged `eval_minutes` — so the simulated clock advances
// exactly as if the evaluation had been re-paid, and a cache-on run's
// trace is identical to the cache-off run's (the wall clock is what
// shrinks). Layering is journal -> cache -> resilience -> raw evaluator:
// a cache hit skips fault injection and retries exactly like a journal
// hit, and a journal hit never touches the cache at all.
#pragma once

#include <condition_variable>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "tuner/driver.h"

namespace s2fa::cache {

struct EvalCacheOptions {
  bool enabled = true;
  // Maximum completed entries kept (least-recently-used wins); 0 keeps
  // everything. In-flight evaluations are not counted against it.
  std::size_t capacity = 0;
};

struct EvalCacheStats {
  std::size_t lookups = 0;         // GetOrCompute calls while enabled
  std::size_t hits = 0;            // answered from a completed entry
  std::size_t misses = 0;          // had to run the black box
  std::size_t inflight_joins = 0;  // joined a concurrent evaluation
  std::size_t evictions = 0;       // LRU entries dropped
  double minutes_saved = 0;        // simulated eval_minutes not re-paid

  // hits + joins over lookups — the duplicate-point rate of the proposal
  // stream the cache observed.
  double DuplicateRate() const;

  void Merge(const EvalCacheStats& other);
};

// Parses an --eval-cache / S2FA_EVAL_CACHE spec: "on" (unbounded),
// "off" (disabled), or a positive integer N (LRU capacity N). Returns
// nullopt on anything else.
std::optional<EvalCacheOptions> ParseCacheSpec(const std::string& spec);

// Reads S2FA_EVAL_CACHE; malformed values warn and return nullopt.
std::optional<EvalCacheOptions> ReadEnvCacheOptions();

class EvalCache {
 public:
  explicit EvalCache(EvalCacheOptions options = {});

  bool enabled() const { return options_.enabled; }
  const EvalCacheOptions& options() const { return options_; }

  // Peeks without touching single-flight state. Counts nothing; intended
  // for tests and diagnostics.
  std::optional<tuner::EvalOutcome> Find(const std::string& key) const;

  // Stores a completed outcome (evicting LRU entries past capacity).
  void Insert(const std::string& key, const tuner::EvalOutcome& outcome);

  // The heart of the layer: returns the cached outcome for `key`, joins a
  // concurrent in-flight evaluation of it, or runs `compute` (outside the
  // lock) and publishes the result. If the leader's compute throws, the
  // exception propagates to the leader and every waiter retries (one of
  // them becoming the new leader).
  tuner::EvalOutcome GetOrCompute(
      const std::string& key,
      const std::function<tuner::EvalOutcome()>& compute);

  // Wraps `inner`, keying on the canonical config string. The cache must
  // outlive the returned function. Pass-through when disabled.
  tuner::EvalFn Wrap(tuner::EvalFn inner);

  EvalCacheStats stats() const;
  std::size_t size() const;  // completed entries currently held

 private:
  // One in-flight evaluation; waiters block on `cv` until `done`.
  struct Flight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    bool failed = false;
    tuner::EvalOutcome outcome;
  };

  struct Entry {
    tuner::EvalOutcome outcome;
    std::list<std::string>::iterator lru_it;
  };

  void InsertLocked(const std::string& key,
                    const tuner::EvalOutcome& outcome);
  void TouchLocked(Entry& entry, const std::string& key);

  EvalCacheOptions options_;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recently used
  std::unordered_map<std::string, std::shared_ptr<Flight>> inflight_;
  EvalCacheStats stats_;
};

}  // namespace s2fa::cache
