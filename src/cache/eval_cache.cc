#include "cache/eval_cache.h"

#include <cstdlib>

#include "obs/obs.h"
#include "support/error.h"
#include "support/logging.h"

namespace s2fa::cache {

double EvalCacheStats::DuplicateRate() const {
  if (lookups == 0) return 0;
  return static_cast<double>(hits + inflight_joins) /
         static_cast<double>(lookups);
}

void EvalCacheStats::Merge(const EvalCacheStats& other) {
  lookups += other.lookups;
  hits += other.hits;
  misses += other.misses;
  inflight_joins += other.inflight_joins;
  evictions += other.evictions;
  minutes_saved += other.minutes_saved;
}

std::optional<EvalCacheOptions> ParseCacheSpec(const std::string& spec) {
  EvalCacheOptions options;
  if (spec == "on" || spec == "1") return options;
  if (spec == "off" || spec == "0") {
    options.enabled = false;
    return options;
  }
  // A positive integer is an LRU capacity. strtoull would happily wrap a
  // negative sign, so insist on digits only.
  if (spec.empty() ||
      spec.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  char* end = nullptr;
  const unsigned long long value = std::strtoull(spec.c_str(), &end, 10);
  if (end == spec.c_str() || *end != '\0' || value == 0) return std::nullopt;
  options.capacity = static_cast<std::size_t>(value);
  return options;
}

std::optional<EvalCacheOptions> ReadEnvCacheOptions() {
  const char* raw = std::getenv("S2FA_EVAL_CACHE");
  if (raw == nullptr || raw[0] == '\0') return std::nullopt;
  auto options = ParseCacheSpec(raw);
  if (!options) {
    S2FA_LOG_WARN("ignoring malformed S2FA_EVAL_CACHE='" << raw
                  << "' (expected on|off|N)");
  }
  return options;
}

EvalCache::EvalCache(EvalCacheOptions options) : options_(options) {}

std::optional<tuner::EvalOutcome> EvalCache::Find(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second.outcome;
}

void EvalCache::TouchLocked(Entry& entry, const std::string& key) {
  if (entry.lru_it != lru_.begin()) {
    lru_.erase(entry.lru_it);
    lru_.push_front(key);
    entry.lru_it = lru_.begin();
  }
}

void EvalCache::InsertLocked(const std::string& key,
                             const tuner::EvalOutcome& outcome) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.outcome = outcome;
    TouchLocked(it->second, key);
    return;
  }
  lru_.push_front(key);
  entries_[key] = Entry{outcome, lru_.begin()};
  while (options_.capacity > 0 && entries_.size() > options_.capacity) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
    S2FA_COUNT("cache.evictions", 1);
  }
}

void EvalCache::Insert(const std::string& key,
                       const tuner::EvalOutcome& outcome) {
  std::lock_guard<std::mutex> lock(mutex_);
  InsertLocked(key, outcome);
}

tuner::EvalOutcome EvalCache::GetOrCompute(
    const std::string& key,
    const std::function<tuner::EvalOutcome()>& compute) {
  S2FA_REQUIRE(compute != nullptr, "cache needs a compute function");
  if (!options_.enabled) return compute();

  for (;;) {
    std::shared_ptr<Flight> flight;
    bool leader = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.lookups;
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        ++stats_.hits;
        stats_.minutes_saved += it->second.outcome.eval_minutes;
        TouchLocked(it->second, key);
        S2FA_COUNT("cache.hits", 1);
        return it->second.outcome;
      }
      auto in = inflight_.find(key);
      if (in != inflight_.end()) {
        flight = in->second;
        ++stats_.inflight_joins;
        S2FA_COUNT("cache.inflight_joins", 1);
      } else {
        flight = std::make_shared<Flight>();
        inflight_[key] = flight;
        leader = true;
        ++stats_.misses;
        S2FA_COUNT("cache.misses", 1);
      }
    }

    if (!leader) {
      std::unique_lock<std::mutex> wait_lock(flight->mutex);
      flight->cv.wait(wait_lock, [&] { return flight->done; });
      if (!flight->failed) {
        // The joined evaluation ran once for everyone in the flight; the
        // join avoided re-paying its simulated minutes.
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.minutes_saved += flight->outcome.eval_minutes;
        return flight->outcome;
      }
      continue;  // leader threw: retry (possibly becoming the leader)
    }

    tuner::EvalOutcome outcome;
    try {
      outcome = compute();
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        inflight_.erase(key);
      }
      {
        std::lock_guard<std::mutex> flight_lock(flight->mutex);
        flight->done = true;
        flight->failed = true;
      }
      flight->cv.notify_all();
      throw;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      InsertLocked(key, outcome);
      inflight_.erase(key);
    }
    {
      std::lock_guard<std::mutex> flight_lock(flight->mutex);
      flight->outcome = outcome;
      flight->done = true;
    }
    flight->cv.notify_all();
    return outcome;
  }
}

tuner::EvalFn EvalCache::Wrap(tuner::EvalFn inner) {
  S2FA_REQUIRE(inner != nullptr, "cache needs an inner evaluator");
  if (!options_.enabled) return inner;
  return [this, inner = std::move(inner)](const merlin::DesignConfig& config) {
    return GetOrCompute(config.ToString(), [&] { return inner(config); });
  };
}

EvalCacheStats EvalCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t EvalCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace s2fa::cache
