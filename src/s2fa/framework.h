// S2FA public API: the end-to-end automation flow of paper Fig. 1.
//
//   bytecode-to-C compile  →  design-space identification  →  parallel
//   learning-based DSE (Merlin + HLS in the loop)  →  best design +
//   serialization glue  →  Blaze registration.
//
// BuildAccelerator runs the whole pipeline; BuildWithConfig skips the DSE
// and applies a user-chosen configuration (how the paper's "manual" HLS
// designs are expressed in this codebase).
#pragma once

#include <string>

#include "b2c/compiler.h"
#include "blaze/runtime.h"
#include "dse/explorer.h"
#include "hls/estimator.h"
#include "merlin/transform.h"
#include "tuner/driver.h"

namespace s2fa {

struct FrameworkOptions {
  dse::ExplorerOptions dse;
  hls::EstimatorOptions hls;
};

// Everything the framework produces for one kernel.
struct Artifact {
  // Front end.
  kir::Kernel generated_kernel;   // functional, untransformed (Code 3)
  std::string c_source;           // its HLS C rendering
  tuner::DesignSpace space;       // Table-1 space

  // Exploration.
  dse::DseResult exploration;
  merlin::DesignConfig best_config;

  // Back end.
  kir::Kernel best_design;        // transformed with best_config
  hls::HlsResult best_hls;
  std::string best_c_source;

  // Integration.
  blaze::SerializationPlan plan;
  std::string scala_helper;       // generated (de)serialization methods
};

// How the DSE objective accounts for the clock (paper future work: "we
// plan to model the impact of design factors on frequency during the DSE
// process").
enum class FrequencyModel {
  // The published flow: HLS reports cycles, and the DSE assumes the
  // synthesis target clock; frequency misses (paper Table 2: S-W at
  // 100 MHz) only surface after place and route.
  kAssumeTarget,
  // The future-work extension (default here): the estimator's predicted
  // frequency feeds the objective, so clock-hostile designs lose.
  kEstimated,
};

// Wraps Merlin + the HLS estimator as the DSE's black-box evaluator.
// Illegal factor combinations evaluate as fast failures (the HLS run the
// real flow would abort).
tuner::EvalFn MakeHlsEvaluator(
    const kir::Kernel& kernel, const hls::EstimatorOptions& options = {},
    FrequencyModel frequency = FrequencyModel::kEstimated);

// Full flow. Throws if the DSE finds no feasible design.
Artifact BuildAccelerator(const jvm::ClassPool& pool,
                          const b2c::KernelSpec& spec,
                          const FrameworkOptions& options = {});

// Compiles and applies `config` without exploring. Throws if the design is
// infeasible.
Artifact BuildWithConfig(const jvm::ClassPool& pool,
                         const b2c::KernelSpec& spec,
                         const merlin::DesignConfig& config,
                         const hls::EstimatorOptions& options = {});

// Registers an artifact's best design with a Blaze runtime under `id`.
void RegisterWithBlaze(blaze::BlazeRuntime& runtime, const std::string& id,
                       const Artifact& artifact);

}  // namespace s2fa
