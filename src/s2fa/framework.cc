#include "s2fa/framework.h"

#include <algorithm>
#include <limits>

#include "kir/printer.h"
#include "support/error.h"
#include "support/logging.h"

namespace s2fa {

tuner::EvalFn MakeHlsEvaluator(const kir::Kernel& kernel,
                               const hls::EstimatorOptions& options,
                               FrequencyModel frequency) {
  // The kernel is captured by value: evaluations run on worker threads.
  kir::Kernel copy = kernel.Clone();
  return [copy, options, frequency](
             const merlin::DesignConfig& config) -> tuner::EvalOutcome {
    tuner::EvalOutcome outcome;
    try {
      merlin::TransformResult transformed = merlin::ApplyDesign(copy, config);
      hls::HlsResult hls_result = hls::EstimateHls(transformed.kernel,
                                                   options);
      if (!hls_result.Plausible()) {
        // The tool returned, but its numbers can't be trusted. Surface the
        // outcome as garbage (NaN objective) so the resilience layer
        // classifies it as kGarbageResult and retries instead of letting a
        // corrupt result steer the search.
        outcome.feasible = true;
        outcome.cost = std::numeric_limits<double>::quiet_NaN();
        outcome.eval_minutes = std::max(1.0, hls_result.eval_minutes);
        return outcome;
      }
      outcome.feasible = hls_result.feasible;
      // Objective: execution time, with a small area term that breaks ties
      // between equal-performance designs toward the cheaper one (the
      // Merlin flow's preference; also keeps synthesis times down).
      const double exec_us =
          frequency == FrequencyModel::kEstimated
              ? hls_result.exec_us
              : hls_result.cycles / options.device.target_mhz;
      outcome.cost = exec_us * (1.0 + 0.05 * hls_result.util.MaxFraction());
      outcome.eval_minutes = hls_result.eval_minutes;
      // Attribution rides along for the landscape-aware arms; the garbage
      // and illegal-config paths above keep the default kNone.
      outcome.bottleneck = hls_result.bottleneck;
    } catch (const InvalidArgument&) {
      // Illegal factor combination: the HLS job fails fast.
      outcome.feasible = false;
      outcome.cost = tuner::kInfeasibleCost;
      outcome.eval_minutes = 3.0;
    }
    return outcome;
  };
}

namespace {

Artifact CompileFrontEnd(const jvm::ClassPool& pool,
                         const b2c::KernelSpec& spec) {
  Artifact artifact;
  artifact.generated_kernel = b2c::CompileKernel(pool, spec);
  artifact.c_source = kir::EmitC(artifact.generated_kernel);
  artifact.space = tuner::BuildDesignSpace(artifact.generated_kernel);
  artifact.plan = blaze::MakeSerializationPlan(artifact.generated_kernel);
  artifact.scala_helper = blaze::RenderScalaHelper(artifact.plan);
  return artifact;
}

void ApplyBestConfig(Artifact& artifact, const merlin::DesignConfig& config,
                     const hls::EstimatorOptions& options) {
  artifact.best_config = config;
  merlin::TransformResult transformed =
      merlin::ApplyDesign(artifact.generated_kernel, config);
  artifact.best_design = std::move(transformed.kernel);
  artifact.best_hls = hls::EstimateHls(artifact.best_design, options);
  artifact.best_c_source = kir::EmitC(artifact.best_design);
}

}  // namespace

Artifact BuildAccelerator(const jvm::ClassPool& pool,
                          const b2c::KernelSpec& spec,
                          const FrameworkOptions& options) {
  Artifact artifact = CompileFrontEnd(pool, spec);
  tuner::EvalFn evaluate =
      MakeHlsEvaluator(artifact.generated_kernel, options.hls);
  artifact.exploration = dse::RunS2faDse(
      artifact.space, artifact.generated_kernel, evaluate, options.dse);
  if (!artifact.exploration.found_feasible) {
    throw Error("DSE found no feasible design for kernel " +
                artifact.generated_kernel.name);
  }
  ApplyBestConfig(artifact, artifact.exploration.best_config, options.hls);
  S2FA_LOG_INFO("kernel " << artifact.generated_kernel.name << ": best "
                          << artifact.best_hls.exec_us << "us @ "
                          << artifact.best_hls.freq_mhz << "MHz after "
                          << artifact.exploration.evaluations
                          << " evaluations");
  return artifact;
}

Artifact BuildWithConfig(const jvm::ClassPool& pool,
                         const b2c::KernelSpec& spec,
                         const merlin::DesignConfig& config,
                         const hls::EstimatorOptions& options) {
  Artifact artifact = CompileFrontEnd(pool, spec);
  ApplyBestConfig(artifact, config, options);
  if (!artifact.best_hls.feasible) {
    throw Error("design for " + artifact.generated_kernel.name +
                " is infeasible: " + artifact.best_hls.infeasible_reason);
  }
  return artifact;
}

void RegisterWithBlaze(blaze::BlazeRuntime& runtime, const std::string& id,
                       const Artifact& artifact) {
  blaze::RegisteredAccelerator accelerator;
  accelerator.design = artifact.best_design.Clone();
  accelerator.hls = artifact.best_hls;
  accelerator.plan = artifact.plan;
  runtime.manager().Register(id, std::move(accelerator));
}

}  // namespace s2fa
