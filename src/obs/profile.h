// Hot-path profiler: turns the raw span events the Tracer collects into an
// aggregated call profile — a merged call tree with per-node call counts,
// total (inclusive) and self (exclusive) times, plus a flat per-span-name
// rollup sorted by self time (the hot-path table).
//
// Reconstruction uses only what SpanEvent records (thread id, nesting
// depth, start, duration): events are replayed per thread in start order
// against a depth stack, so a span nests under the most recent span one
// level shallower on its own thread. Trees from different threads are
// merged path-wise, which keeps the attribution of `dse.partition` work
// running on pool workers under one tree.
//
// Invariants (tested):
//   * node.total_us >= sum of its children's total_us;
//   * node.self_us == node.total_us - sum(children.total_us), >= 0;
//   * the sum of all self times <= busy_us (the per-thread extents summed),
//     and <= wall_us for a single-threaded trace — self intervals are
//     disjoint within a thread.
//
// Caveat: the flat rollup aggregates by span *name*, so a recursive span
// counts its nested activations' total time more than once (self times stay
// exact); the tree view keeps recursive activations on separate paths.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace s2fa::obs {

struct ProfileNode {
  std::string name;
  std::size_t count = 0;   // activations merged into this path
  double total_us = 0;     // inclusive time
  double self_us = 0;      // exclusive time (total minus children)
  std::vector<ProfileNode> children;  // sorted by total_us, descending
};

// Flat per-span-name aggregate across every path and thread.
struct HotPathRow {
  std::string name;
  std::size_t count = 0;
  double total_us = 0;
  double self_us = 0;
  double ns_per_call = 0;  // total_us * 1000 / count
};

struct Profile {
  std::vector<ProfileNode> roots;  // merged across threads, by total desc
  std::vector<HotPathRow> flat;    // sorted by self_us, descending
  double wall_us = 0;   // max end - min start over every event
  double busy_us = 0;   // sum over threads of their [min start, max end]
  std::size_t events = 0;
  std::size_t threads = 0;
};

// Builds the profile from finished span events (Tracer::Events()/Drain()
// output, any order). Orphan events whose parent span was never recorded
// (e.g. obs enabled mid-span) become roots.
Profile BuildProfile(const std::vector<SpanEvent>& events);

// Top-N hot-path table (all rows when top_n == 0): count, total, self,
// self-share, and ns/op per span name. When records > 0 a ns/record column
// relates each span to the workload size that was profiled.
std::string RenderHotPathTable(const Profile& profile, std::size_t top_n = 0,
                               double records = 0);

// Indented call-tree rendering (depth-limited when max_depth >= 0).
std::string RenderProfileTree(const Profile& profile, int max_depth = -1);

}  // namespace s2fa::obs
