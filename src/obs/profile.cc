#include "obs/profile.h"

#include <algorithm>
#include <limits>
#include <map>

#include "support/strings.h"
#include "support/table.h"

namespace s2fa::obs {

namespace {

// Build-time node with keyed children; flattened into ProfileNode at the
// end so the public type stays a plain value.
struct TreeNode {
  std::size_t count = 0;
  double total_us = 0;
  std::map<std::string, TreeNode> children;
};

void Accumulate(TreeNode& root, const std::vector<const SpanEvent*>& thread_events) {
  // Events arrive sorted by (start, depth). The stack holds the chain of
  // open spans; an event pops everything at its own depth or deeper, then
  // nests under the new top when depths line up.
  struct Open {
    const SpanEvent* event;
    TreeNode* node;
  };
  std::vector<Open> stack;
  for (const SpanEvent* event : thread_events) {
    while (!stack.empty() && stack.back().event->depth >= event->depth) {
      stack.pop_back();
    }
    TreeNode* parent = &root;
    if (!stack.empty() && stack.back().event->depth == event->depth - 1) {
      parent = stack.back().node;
    }
    TreeNode& node = parent->children[event->name];
    ++node.count;
    node.total_us += static_cast<double>(event->duration_us);
    stack.push_back({event, &node});
  }
}

// Merges `from` into `to`, path-wise.
void Merge(TreeNode& to, const TreeNode& from) {
  to.count += from.count;
  to.total_us += from.total_us;
  for (const auto& [name, child] : from.children) {
    Merge(to.children[name], child);
  }
}

ProfileNode Finalize(const std::string& name, const TreeNode& node,
                     std::map<std::string, HotPathRow>& flat) {
  ProfileNode out;
  out.name = name;
  out.count = node.count;
  out.total_us = node.total_us;
  double children_total = 0;
  for (const auto& [child_name, child] : node.children) {
    out.children.push_back(Finalize(child_name, child, flat));
    children_total += child.total_us;
  }
  // Clamp: a child finishing a tick after its parent (clock granularity)
  // must not produce negative self time.
  out.self_us = std::max(0.0, node.total_us - children_total);
  std::stable_sort(out.children.begin(), out.children.end(),
                   [](const ProfileNode& a, const ProfileNode& b) {
                     return a.total_us > b.total_us;
                   });
  HotPathRow& row = flat[name];
  row.name = name;
  row.count += out.count;
  row.total_us += out.total_us;
  row.self_us += out.self_us;
  return out;
}

void RenderNode(const ProfileNode& node, int depth, int max_depth,
                double profile_total, std::string& out) {
  if (max_depth >= 0 && depth > max_depth) return;
  const double share =
      profile_total > 0 ? node.total_us / profile_total : 0;
  out += std::string(static_cast<std::size_t>(depth) * 2, ' ') + node.name +
         "  " + FormatDouble(node.total_us / 1e3, 3) + " ms total, " +
         FormatDouble(node.self_us / 1e3, 3) + " ms self, " +
         std::to_string(node.count) + " calls (" +
         FormatPercent(share) + ")\n";
  for (const ProfileNode& child : node.children) {
    RenderNode(child, depth + 1, max_depth, profile_total, out);
  }
}

}  // namespace

Profile BuildProfile(const std::vector<SpanEvent>& events) {
  Profile profile;
  profile.events = events.size();
  if (events.empty()) return profile;

  std::map<int, std::vector<const SpanEvent*>> by_thread;
  std::uint64_t min_start = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_end = 0;
  for (const SpanEvent& event : events) {
    by_thread[event.thread_id].push_back(&event);
    min_start = std::min(min_start, event.start_us);
    max_end = std::max(max_end, event.start_us + event.duration_us);
  }
  profile.wall_us = static_cast<double>(max_end - min_start);
  profile.threads = by_thread.size();

  TreeNode merged;
  for (auto& [thread_id, thread_events] : by_thread) {
    (void)thread_id;
    std::stable_sort(thread_events.begin(), thread_events.end(),
                     [](const SpanEvent* a, const SpanEvent* b) {
                       return a->start_us != b->start_us
                                  ? a->start_us < b->start_us
                                  : a->depth < b->depth;
                     });
    std::uint64_t t_min = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t t_max = 0;
    for (const SpanEvent* event : thread_events) {
      t_min = std::min(t_min, event->start_us);
      t_max = std::max(t_max, event->start_us + event->duration_us);
    }
    profile.busy_us += static_cast<double>(t_max - t_min);
    TreeNode root;
    Accumulate(root, thread_events);
    Merge(merged, root);
  }

  std::map<std::string, HotPathRow> flat;
  for (const auto& [name, node] : merged.children) {
    profile.roots.push_back(Finalize(name, node, flat));
  }
  std::stable_sort(profile.roots.begin(), profile.roots.end(),
                   [](const ProfileNode& a, const ProfileNode& b) {
                     return a.total_us > b.total_us;
                   });
  for (auto& [name, row] : flat) {
    (void)name;
    row.ns_per_call =
        row.count > 0
            ? row.total_us * 1000.0 / static_cast<double>(row.count)
            : 0;
    profile.flat.push_back(row);
  }
  std::stable_sort(profile.flat.begin(), profile.flat.end(),
                   [](const HotPathRow& a, const HotPathRow& b) {
                     return a.self_us > b.self_us;
                   });
  return profile;
}

std::string RenderHotPathTable(const Profile& profile, std::size_t top_n,
                               double records) {
  double self_sum = 0;
  for (const HotPathRow& row : profile.flat) self_sum += row.self_us;

  std::vector<std::string> header = {"Span",  "Count", "Total",
                                     "Self",  "Self%", "ns/op"};
  if (records > 0) header.push_back("ns/rec");
  TextTable table(header);
  std::size_t shown = 0;
  for (const HotPathRow& row : profile.flat) {
    if (top_n > 0 && shown >= top_n) break;
    ++shown;
    std::vector<std::string> cells = {
        row.name,
        std::to_string(row.count),
        FormatDouble(row.total_us / 1e3, 3) + " ms",
        FormatDouble(row.self_us / 1e3, 3) + " ms",
        FormatPercent(self_sum > 0 ? row.self_us / self_sum : 0),
        FormatDouble(row.ns_per_call, 1)};
    if (records > 0) {
      cells.push_back(FormatDouble(row.total_us * 1000.0 / records, 1));
    }
    table.AddRow(cells);
  }
  std::string out = "=== hot paths (by self time) ===\n" + table.Render();
  out += "profiled: " + std::to_string(profile.events) + " spans on " +
         std::to_string(profile.threads) + " thread" +
         (profile.threads == 1 ? "" : "s") + ", wall " +
         FormatDouble(profile.wall_us / 1e3, 3) + " ms, busy " +
         FormatDouble(profile.busy_us / 1e3, 3) + " ms, self sum " +
         FormatDouble(self_sum / 1e3, 3) + " ms";
  if (profile.busy_us > 0) {
    out += " (" + FormatPercent(self_sum / profile.busy_us) + " attributed)";
  }
  out += "\n";
  if (top_n > 0 && profile.flat.size() > shown) {
    out += "(" + std::to_string(profile.flat.size() - shown) +
           " cooler spans not shown)\n";
  }
  return out;
}

std::string RenderProfileTree(const Profile& profile, int max_depth) {
  double total = 0;
  for (const ProfileNode& root : profile.roots) total += root.total_us;
  std::string out = "=== call tree ===\n";
  for (const ProfileNode& root : profile.roots) {
    RenderNode(root, 0, max_depth, total, out);
  }
  return out;
}

}  // namespace s2fa::obs
