// Persistent perf ledger: the repo's perf trajectory lives in versioned
// `BENCH_micro.json` snapshots (schema "s2fa-perf-ledger", version 1) that
// the bench harnesses emit every run — benchmark name -> ns/op plus
// wall-clock context, obs counter snapshots, and obs histogram percentile
// snapshots (the serving p50/p95/p99 phases land here). Git revision and
// timestamp are passed in by the harness (S2FA_GIT_REV /
// S2FA_BENCH_TIMESTAMP environment, "unknown" otherwise) — the ledger
// itself never reaches for the clock so golden snapshots stay comparable.
//
// The comparator diffs a current run against a previous snapshot and
// classifies each benchmark entry as improved / flat / regressed against a
// configurable relative threshold (plus added / removed for entries only
// one side has). `s2fa perf-diff` exits nonzero when anything regressed at
// or beyond the threshold — the regression gate every later perf PR is
// measured against.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace s2fa::obs {

inline constexpr const char* kPerfLedgerSchema = "s2fa-perf-ledger";
inline constexpr int kPerfLedgerVersion = 1;
// Relative ns/op change below which an entry counts as flat.
inline constexpr double kDefaultPerfThreshold = 0.10;

struct LedgerEntry {
  double ns_per_op = 0;
  double ops = 0;      // iterations/records measured (0 = unknown)
  double wall_ms = 0;  // wall clock of the measurement (0 = unknown)
};

struct PerfLedger {
  int version = kPerfLedgerVersion;
  std::string git_rev = "unknown";
  std::string timestamp = "unknown";
  std::map<std::string, LedgerEntry> benchmarks;
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, HistogramStats> histograms;
};

// Rendering / parsing. ParseLedgerJson validates the schema marker and
// version and throws MalformedInput on anything it can't read.
std::string RenderLedgerJson(const PerfLedger& ledger);
PerfLedger ParseLedgerJson(const std::string& text);

// File I/O. LoadLedgerFile throws Error when the file can't be read;
// TryLoadLedgerFile returns nullopt for a missing file (first run) but
// still throws on a present-but-malformed one — a corrupt trajectory
// should fail loudly, not silently restart.
PerfLedger LoadLedgerFile(const std::string& path);
std::optional<PerfLedger> TryLoadLedgerFile(const std::string& path);
void WriteLedgerFile(const std::string& path, const PerfLedger& ledger);

// Merge for incremental updates: `update`'s benchmarks/counters/histograms
// overwrite same-named entries in `base`, everything else carries over, and
// the metadata (rev, timestamp) comes from `update`. This is how several
// bench binaries share one BENCH_micro.json.
PerfLedger MergeLedgers(PerfLedger base, const PerfLedger& update);

// Stamps git_rev/timestamp from S2FA_GIT_REV / S2FA_BENCH_TIMESTAMP when
// set (harness-provided); leaves the existing values otherwise.
void StampLedgerFromEnv(PerfLedger& ledger);

// ------------------------------------------------------------- comparator

enum class LedgerDiffKind { kImproved, kFlat, kRegressed, kAdded, kRemoved };
const char* LedgerDiffKindName(LedgerDiffKind kind);

struct LedgerDiffEntry {
  std::string name;
  LedgerDiffKind kind = LedgerDiffKind::kFlat;
  double old_ns_per_op = 0;
  double new_ns_per_op = 0;
  double delta = 0;  // (new - old) / old; 0 when old is unknown/zero
};

struct LedgerDiff {
  double threshold = kDefaultPerfThreshold;
  std::vector<LedgerDiffEntry> entries;  // ordered by name
  std::size_t improved = 0;
  std::size_t flat = 0;
  std::size_t regressed = 0;
  std::size_t added = 0;
  std::size_t removed = 0;

  bool HasRegression() const { return regressed > 0; }
};

// Classifies every benchmark entry of `next` against `prev`: |delta| <=
// threshold is flat, a faster entry improved, a slower one regressed;
// entries only one side has are added/removed (never a regression).
LedgerDiff ComparePerfLedgers(const PerfLedger& prev, const PerfLedger& next,
                              double threshold = kDefaultPerfThreshold);

std::string RenderLedgerDiffTable(const LedgerDiff& diff);

}  // namespace s2fa::obs
