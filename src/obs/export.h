// Exporters for the obs layer:
//   * JSONL span trace — one event per line, loadable by any trace viewer
//     or by ParseTraceJsonl for round-trip tests;
//   * Chrome trace-event JSON — the `chrome://tracing` / Perfetto format,
//     so any profiled run can be flamegraph-inspected (--profile-out);
//   * aggregated JSON summary — counters, gauges, histogram percentiles,
//     and per-span-name timing rollups (the `s2fa report` input);
//   * human-readable ASCII tables via support/table.h.
#pragma once

#include <string>
#include <vector>

#include "obs/obs.h"

namespace s2fa::obs {

// Per-span-name rollup of trace events.
struct SpanStats {
  std::size_t count = 0;
  double total_us = 0;
  double mean_us = 0;
  double max_us = 0;
};

struct Summary {
  MetricsSnapshot metrics;
  std::vector<std::pair<std::string, SpanStats>> spans;  // sorted by name
};

// Aggregates the current global registry + tracer state (non-destructive).
Summary CaptureSummary();
Summary BuildSummary(const MetricsSnapshot& metrics,
                     const std::vector<SpanEvent>& events);

// --- JSONL trace ---
std::string RenderTraceJsonl(const std::vector<SpanEvent>& events);
// Throws MalformedInput on unparsable lines.
std::vector<SpanEvent> ParseTraceJsonl(const std::string& text);

// --- Chrome trace-event JSON (chrome://tracing, Perfetto, speedscope) ---
// Complete ("ph":"X") events, one per span, microsecond timestamps; the
// nesting depth rides along in args for viewers that surface it.
std::string RenderChromeTrace(const std::vector<SpanEvent>& events);

// --- JSON summary ---
std::string RenderSummaryJson(const Summary& summary);
// Throws MalformedInput on unparsable input.
Summary ParseSummaryJson(const std::string& text);

// --- ASCII report (support/table.h) ---
// Pipeline-breakdown tables: spans (sorted by total time), counters,
// gauges, histograms.
std::string RenderSummaryTable(const Summary& summary);

// Convenience file writers; throw Error on I/O failure.
void WriteTraceFile(const std::string& path,
                    const std::vector<SpanEvent>& events);
void WriteChromeTraceFile(const std::string& path,
                          const std::vector<SpanEvent>& events);
void WriteSummaryFile(const std::string& path, const Summary& summary);

}  // namespace s2fa::obs
