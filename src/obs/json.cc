#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>

#include "support/error.h"

namespace s2fa::obs::json {

double JsonValue::number() const {
  if (!is_number()) throw MalformedInput("obs: JSON value is not a number");
  return std::get<double>(data);
}

const std::string& JsonValue::string() const {
  if (!is_string()) throw MalformedInput("obs: JSON value is not a string");
  return std::get<std::string>(data);
}

const JsonObject& JsonValue::object() const {
  if (!is_object()) throw MalformedInput("obs: JSON value is not an object");
  return std::get<JsonObject>(data);
}

const JsonArray& JsonValue::array() const {
  if (!is_array()) throw MalformedInput("obs: JSON value is not an array");
  return std::get<JsonArray>(data);
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue Parse() {
    JsonValue value = ParseValue();
    SkipWhitespace();
    if (pos_ != text_.size()) {
      throw MalformedInput("obs: trailing JSON content at offset " +
                           std::to_string(pos_));
    }
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() {
    SkipWhitespace();
    if (pos_ >= text_.size()) throw MalformedInput("obs: truncated JSON");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) {
      throw MalformedInput(std::string("obs: expected '") + c +
                           "' at offset " + std::to_string(pos_));
    }
    ++pos_;
  }

  JsonValue ParseValue() {
    char c = Peek();
    if (c == '{') return JsonValue{ParseObject()};
    if (c == '[') return JsonValue{ParseArray()};
    if (c == '"') return JsonValue{ParseString()};
    if (c == 'n') {
      if (text_.substr(pos_, 4) != "null") {
        throw MalformedInput("obs: bad JSON literal");
      }
      pos_ += 4;
      return JsonValue{std::numeric_limits<double>::quiet_NaN()};
    }
    if (c == 't' || c == 'f') {
      // Booleans map onto 0/1 numbers; nothing here emits them but a
      // hand-edited ledger should still read back.
      const std::string_view word = c == 't' ? "true" : "false";
      if (text_.substr(pos_, word.size()) != word) {
        throw MalformedInput("obs: bad JSON literal");
      }
      pos_ += word.size();
      return JsonValue{c == 't' ? 1.0 : 0.0};
    }
    return JsonValue{ParseNumber()};
  }

  JsonObject ParseObject() {
    Expect('{');
    JsonObject object;
    if (Peek() == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      std::string key = ParseString();
      Expect(':');
      object.emplace(std::move(key), ParseValue());
      char c = Peek();
      ++pos_;
      if (c == '}') return object;
      if (c != ',') {
        throw MalformedInput("obs: expected ',' or '}' at offset " +
                             std::to_string(pos_ - 1));
      }
    }
  }

  JsonArray ParseArray() {
    Expect('[');
    JsonArray array;
    if (Peek() == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      array.push_back(ParseValue());
      char c = Peek();
      ++pos_;
      if (c == ']') return array;
      if (c != ',') {
        throw MalformedInput("obs: expected ',' or ']' at offset " +
                             std::to_string(pos_ - 1));
      }
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              throw MalformedInput("obs: truncated \\u escape");
            }
            int code = std::stoi(std::string(text_.substr(pos_, 4)), nullptr,
                                 16);
            pos_ += 4;
            out += static_cast<char>(code);
            break;
          }
          default: out += esc;
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= text_.size()) throw MalformedInput("obs: unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  double ParseNumber() {
    SkipWhitespace();
    std::size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) {
      throw MalformedInput("obs: expected JSON number at offset " +
                           std::to_string(pos_));
    }
    double value = std::stod(std::string(text_.substr(pos_, end - pos_)));
    pos_ = end;
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue Parse(std::string_view text) { return JsonParser(text).Parse(); }

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string JsonString(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

}  // namespace s2fa::obs::json
