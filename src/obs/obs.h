// Observability layer: a thread-safe metrics registry (counters, gauges,
// histograms with percentiles) and an RAII scoped-span tracer with nesting
// and per-thread buffers, wired through every pipeline stage (b2c, merlin,
// hls, tuner, dse, blaze).
//
// Zero-overhead when off, mirroring the S2FA_LOG pattern:
//   * compile time — defining S2FA_OBS_DISABLED (CMake -DS2FA_ENABLE_OBS=OFF)
//     turns every macro into `((void)0)` and folds Enabled() to a constexpr
//     false, so instrumented call sites vanish entirely;
//   * run time — when compiled in, every macro is guarded by one relaxed
//     atomic load + branch. Off by default; enable with SetEnabled(true) or
//     the S2FA_OBS environment variable (same values as S2FA_LOG_LEVEL:
//     "off"/"0" disables, any other valid level enables).
//
// Export (JSONL trace, aggregated JSON summary, ASCII table) lives in
// obs/export.h.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#if defined(S2FA_OBS_DISABLED)
#define S2FA_OBS_ENABLED 0
#else
#define S2FA_OBS_ENABLED 1
#endif

namespace s2fa::obs {

#if S2FA_OBS_ENABLED
// Whether instrumentation records anything right now (relaxed load).
bool Enabled();
void SetEnabled(bool on);
#else
constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}
#endif

// ------------------------------------------------------------- metrics

// Histograms keep at most this many raw samples per metric (deterministic
// reservoir, Algorithm R with the slot drawn from a hash of the sample
// index): million-request serving runs stay bounded while count, min, max,
// and mean remain exact and percentile snapshots stay reproducible for a
// given observation sequence.
inline constexpr std::size_t kHistogramSampleCap = 4096;

struct HistogramStats {
  std::size_t count = 0;
  double min = 0, max = 0, mean = 0;
  double p50 = 0, p95 = 0, p99 = 0;
};

struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;
};

// Process-global registry. Registration locks a mutex briefly; the hot
// update itself is an atomic add (counters/gauges) or a short per-histogram
// critical section. Node-based storage keeps metric cells stable, so
// concurrent updaters never race with the map structure.
class Registry {
 public:
  static Registry& Global();

  void AddCounter(const std::string& name, std::int64_t delta = 1);
  void SetGauge(const std::string& name, double value);
  // Sets the gauge to max(current, value) — for high-water marks.
  void MaxGauge(const std::string& name, double value);
  void Observe(const std::string& name, double sample);

  // Percentiles are computed here (nearest-rank over the raw samples).
  MetricsSnapshot Snapshot() const;
  void Reset();

 private:
  struct Counter {
    std::atomic<std::int64_t> value{0};
  };
  struct Gauge {
    std::atomic<double> value{0};
  };
  struct Histogram {
    mutable std::mutex mutex;
    std::vector<double> samples;  // reservoir, <= kHistogramSampleCap
    std::uint64_t observed = 0;   // exact totals survive the sampling
    double sum = 0;
    double min = 0;
    double max = 0;
  };

  Counter& CounterCell(const std::string& name);
  Gauge& GaugeCell(const std::string& name);
  Histogram& HistogramCell(const std::string& name);

  mutable std::mutex mutex_;  // guards map structure only
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

// -------------------------------------------------------------- tracing

struct SpanEvent {
  std::string name;
  int thread_id = 0;       // support::CurrentThreadId
  int depth = 0;           // nesting depth on its thread (0 = outermost)
  std::uint64_t start_us = 0;  // MonotonicMicros at entry
  std::uint64_t duration_us = 0;
};

// Collects finished spans into per-thread buffers (one short lock per span,
// never contended across threads); Drain() merges and clears them.
class Tracer {
 public:
  static Tracer& Global();

  void Record(SpanEvent event);

  // Merged events ordered by start time. Drain clears the buffers.
  std::vector<SpanEvent> Drain();
  std::vector<SpanEvent> Events() const;
  void Reset();

 private:
  struct ThreadBuffer {
    std::mutex mutex;
    std::vector<SpanEvent> events;
  };

  ThreadBuffer& LocalBuffer();
  std::vector<SpanEvent> Collect(bool clear) const;

  mutable std::mutex mutex_;  // guards the buffer list
  std::vector<ThreadBuffer*> buffers_;  // leaked with the global tracer
};

// RAII span. Construction/destruction are no-ops when obs is disabled; the
// enabled/disabled decision is latched at entry so a span that started
// while enabled always records.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  bool active_ = false;
  int depth_ = 0;
  std::uint64_t start_us_ = 0;
};

}  // namespace s2fa::obs

#if S2FA_OBS_ENABLED

#define S2FA_OBS_CONCAT_IMPL(a, b) a##b
#define S2FA_OBS_CONCAT(a, b) S2FA_OBS_CONCAT_IMPL(a, b)

// Scoped span covering the rest of the enclosing block.
#define S2FA_SPAN(name) \
  ::s2fa::obs::ScopedSpan S2FA_OBS_CONCAT(s2fa_span_, __LINE__){name}

#define S2FA_COUNT(name, delta)                                \
  do {                                                         \
    if (::s2fa::obs::Enabled())                                \
      ::s2fa::obs::Registry::Global().AddCounter(name, delta); \
  } while (0)

#define S2FA_GAUGE(name, value)                              \
  do {                                                       \
    if (::s2fa::obs::Enabled())                              \
      ::s2fa::obs::Registry::Global().SetGauge(name, value); \
  } while (0)

#define S2FA_GAUGE_MAX(name, value)                          \
  do {                                                       \
    if (::s2fa::obs::Enabled())                              \
      ::s2fa::obs::Registry::Global().MaxGauge(name, value); \
  } while (0)

#define S2FA_OBSERVE(name, sample)                           \
  do {                                                       \
    if (::s2fa::obs::Enabled())                              \
      ::s2fa::obs::Registry::Global().Observe(name, sample); \
  } while (0)

#else  // S2FA_OBS_ENABLED

#define S2FA_SPAN(name) ((void)0)
#define S2FA_COUNT(name, delta) ((void)0)
#define S2FA_GAUGE(name, value) ((void)0)
#define S2FA_GAUGE_MAX(name, value) ((void)0)
#define S2FA_OBSERVE(name, sample) ((void)0)

#endif  // S2FA_OBS_ENABLED
