#include "obs/obs.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/logging.h"

namespace s2fa::obs {

#if S2FA_OBS_ENABLED

namespace {

// S2FA_OBS shares the validated S2FA_LOG_LEVEL vocabulary: "off"/"0"
// disables, any other valid level enables; garbage is rejected loudly.
bool InitialEnabled() {
  const char* env = std::getenv("S2FA_OBS");
  if (env == nullptr) return false;
  if (std::optional<LogLevel> level = ParseLogLevel(env)) {
    return *level != LogLevel::kOff;
  }
  std::fprintf(stderr,
               "[s2fa WARN] invalid S2FA_OBS '%s' "
               "(expected 0-4 or off/error/warn/info/debug); obs off\n",
               env);
  return false;
}

std::atomic<bool> g_enabled{InitialEnabled()};

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

#endif  // S2FA_OBS_ENABLED

// ------------------------------------------------------------- registry

Registry& Registry::Global() {
  // Leaked: threads may record until the very end of the process.
  static Registry* instance = new Registry;
  return *instance;
}

Registry::Counter& Registry::CounterCell(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_[name];
}

Registry::Gauge& Registry::GaugeCell(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_[name];
}

Registry::Histogram& Registry::HistogramCell(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return histograms_[name];
}

void Registry::AddCounter(const std::string& name, std::int64_t delta) {
  CounterCell(name).value.fetch_add(delta, std::memory_order_relaxed);
}

void Registry::SetGauge(const std::string& name, double value) {
  GaugeCell(name).value.store(value, std::memory_order_relaxed);
}

void Registry::MaxGauge(const std::string& name, double value) {
  auto& cell = GaugeCell(name).value;
  double current = cell.load(std::memory_order_relaxed);
  while (value > current &&
         !cell.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

namespace {

// splitmix64: the reservoir's per-index hash. Seeding by the sample index
// alone keeps snapshots reproducible — the same observation sequence always
// keeps the same subset, independent of metric name or process state.
std::uint64_t HashIndex(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void Registry::Observe(const std::string& name, double sample) {
  Histogram& hist = HistogramCell(name);
  std::lock_guard<std::mutex> lock(hist.mutex);
  if (hist.observed == 0) {
    hist.min = sample;
    hist.max = sample;
  } else {
    hist.min = std::min(hist.min, sample);
    hist.max = std::max(hist.max, sample);
  }
  hist.sum += sample;
  const std::uint64_t index = hist.observed++;
  if (hist.samples.size() < kHistogramSampleCap) {
    hist.samples.push_back(sample);
    return;
  }
  // Algorithm R: the index-th sample replaces a reservoir slot with
  // probability cap / (index + 1), slot drawn from the index hash.
  const std::uint64_t slot = HashIndex(index) % (index + 1);
  if (slot < kHistogramSampleCap) {
    hist.samples[slot] = sample;
  }
}

namespace {

double NearestRank(const std::vector<double>& sorted, double quantile) {
  if (sorted.empty()) return 0;
  const double rank =
      std::ceil(quantile * static_cast<double>(sorted.size()));
  const std::size_t index = static_cast<std::size_t>(
      std::clamp(rank - 1, 0.0, static_cast<double>(sorted.size() - 1)));
  return sorted[index];
}

}  // namespace

MetricsSnapshot Registry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter.value.load(std::memory_order_relaxed);
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge.value.load(std::memory_order_relaxed);
  }
  for (const auto& [name, hist] : histograms_) {
    std::vector<double> samples;
    HistogramStats stats;
    {
      std::lock_guard<std::mutex> hist_lock(hist.mutex);
      samples = hist.samples;
      stats.count = static_cast<std::size_t>(hist.observed);
      if (hist.observed > 0) {
        stats.min = hist.min;
        stats.max = hist.max;
        stats.mean = hist.sum / static_cast<double>(hist.observed);
      }
    }
    // Percentiles come from the (possibly sampled) reservoir; count, min,
    // max, and mean above are exact regardless of the cap.
    std::sort(samples.begin(), samples.end());
    if (!samples.empty()) {
      stats.p50 = NearestRank(samples, 0.50);
      stats.p95 = NearestRank(samples, 0.95);
      stats.p99 = NearestRank(samples, 0.99);
    }
    snapshot.histograms[name] = stats;
  }
  return snapshot;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

// -------------------------------------------------------------- tracer

Tracer& Tracer::Global() {
  static Tracer* instance = new Tracer;
  return *instance;
}

Tracer::ThreadBuffer& Tracer::LocalBuffer() {
  // One buffer per thread, registered once; buffers outlive their threads
  // (the pool may retire workers before the harness drains the trace).
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    buffer = new ThreadBuffer;
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(buffer);
  }
  return *buffer;
}

void Tracer::Record(SpanEvent event) {
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(std::move(event));
}

std::vector<SpanEvent> Tracer::Collect(bool clear) const {
  std::vector<ThreadBuffer*> buffers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  std::vector<SpanEvent> merged;
  for (ThreadBuffer* buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    merged.insert(merged.end(), buffer->events.begin(),
                  buffer->events.end());
    if (clear) buffer->events.clear();
  }
  // Buffers hold spans in finish order (innermost first); sort by start
  // time with a depth tie-break so nested spans that began within the
  // same microsecond still list outermost-first.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     return a.start_us != b.start_us ? a.start_us < b.start_us
                                                     : a.depth < b.depth;
                   });
  return merged;
}

std::vector<SpanEvent> Tracer::Drain() { return Collect(/*clear=*/true); }

std::vector<SpanEvent> Tracer::Events() const {
  return Collect(/*clear=*/false);
}

void Tracer::Reset() { (void)Collect(/*clear=*/true); }

// ---------------------------------------------------------- ScopedSpan

namespace {

int& SpanDepth() {
  thread_local int depth = 0;
  return depth;
}

}  // namespace

ScopedSpan::ScopedSpan(const char* name) : name_(name) {
  if (!Enabled()) return;
  active_ = true;
  depth_ = SpanDepth()++;
  start_us_ = MonotonicMicros();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  --SpanDepth();
  SpanEvent event;
  event.name = name_;
  event.thread_id = CurrentThreadId();
  event.depth = depth_;
  event.start_us = start_us_;
  event.duration_us = MonotonicMicros() - start_us_;
  Tracer::Global().Record(std::move(event));
}

}  // namespace s2fa::obs
