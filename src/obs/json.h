// Minimal JSON reader/writer shared by the obs exporters and the perf
// ledger: objects, arrays, strings, numbers, and null — exactly the subset
// the exporters emit. Writing helpers render numbers in the shortest form
// that round-trips a double and escape strings; parsing throws
// MalformedInput with an offset so a truncated or hand-edited file fails
// loudly instead of silently dropping fields.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace s2fa::obs::json {

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  // null is represented as a quiet NaN number, matching what the writers
  // emit for non-finite values.
  std::variant<double, std::string, JsonObject, JsonArray> data;

  bool is_number() const { return std::holds_alternative<double>(data); }
  bool is_string() const {
    return std::holds_alternative<std::string>(data);
  }
  bool is_object() const { return std::holds_alternative<JsonObject>(data); }
  bool is_array() const { return std::holds_alternative<JsonArray>(data); }

  // Accessors throw MalformedInput on kind mismatch.
  double number() const;
  const std::string& string() const;
  const JsonObject& object() const;
  const JsonArray& array() const;
};

// Parses one complete JSON document; trailing content throws.
JsonValue Parse(std::string_view text);

// Shortest representation that round-trips a double exactly; non-finite
// values render as null.
std::string JsonNumber(double value);
std::string JsonString(const std::string& text);

}  // namespace s2fa::obs::json
