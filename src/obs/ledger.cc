#include "obs/ledger.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/json.h"
#include "support/error.h"
#include "support/strings.h"
#include "support/table.h"

namespace s2fa::obs {

using json::JsonNumber;
using json::JsonObject;
using json::JsonString;
using json::JsonValue;

std::string RenderLedgerJson(const PerfLedger& ledger) {
  std::string out = "{\n";
  out += "  \"schema\": " + JsonString(kPerfLedgerSchema) + ",\n";
  out += "  \"version\": " + std::to_string(ledger.version) + ",\n";
  out += "  \"git_rev\": " + JsonString(ledger.git_rev) + ",\n";
  out += "  \"timestamp\": " + JsonString(ledger.timestamp) + ",\n";

  out += "  \"benchmarks\": {";
  bool first = true;
  for (const auto& [name, entry] : ledger.benchmarks) {
    out += first ? "\n" : ",\n";
    out += "    " + JsonString(name) +
           ": {\"ns_per_op\": " + JsonNumber(entry.ns_per_op) +
           ", \"ops\": " + JsonNumber(entry.ops) +
           ", \"wall_ms\": " + JsonNumber(entry.wall_ms) + "}";
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"counters\": {";
  first = true;
  for (const auto& [name, value] : ledger.counters) {
    out += first ? "\n" : ",\n";
    out += "    " + JsonString(name) + ": " + std::to_string(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : ledger.histograms) {
    out += first ? "\n" : ",\n";
    out += "    " + JsonString(name) + ": {\"count\": " +
           std::to_string(h.count) + ", \"min\": " + JsonNumber(h.min) +
           ", \"max\": " + JsonNumber(h.max) +
           ", \"mean\": " + JsonNumber(h.mean) +
           ", \"p50\": " + JsonNumber(h.p50) +
           ", \"p95\": " + JsonNumber(h.p95) +
           ", \"p99\": " + JsonNumber(h.p99) + "}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

PerfLedger ParseLedgerJson(const std::string& text) {
  JsonValue root = json::Parse(text);
  const JsonObject& object = root.object();

  const auto field = [&](const char* name) -> const JsonValue& {
    auto it = object.find(name);
    if (it == object.end()) {
      throw MalformedInput(std::string("perf ledger: missing field '") +
                           name + "'");
    }
    return it->second;
  };

  if (field("schema").string() != kPerfLedgerSchema) {
    throw MalformedInput("perf ledger: unknown schema '" +
                         field("schema").string() + "' (expected " +
                         kPerfLedgerSchema + ")");
  }
  PerfLedger ledger;
  ledger.version = static_cast<int>(field("version").number());
  if (ledger.version != kPerfLedgerVersion) {
    throw MalformedInput("perf ledger: unsupported version " +
                         std::to_string(ledger.version) + " (expected " +
                         std::to_string(kPerfLedgerVersion) + ")");
  }
  ledger.git_rev = field("git_rev").string();
  ledger.timestamp = field("timestamp").string();

  for (const auto& [name, value] : field("benchmarks").object()) {
    const JsonObject& e = value.object();
    LedgerEntry entry;
    entry.ns_per_op = e.at("ns_per_op").number();
    if (!std::isfinite(entry.ns_per_op) || entry.ns_per_op < 0) {
      throw MalformedInput("perf ledger: benchmark '" + name +
                           "' has a non-finite or negative ns_per_op");
    }
    if (auto it = e.find("ops"); it != e.end()) {
      entry.ops = it->second.number();
    }
    if (auto it = e.find("wall_ms"); it != e.end()) {
      entry.wall_ms = it->second.number();
    }
    ledger.benchmarks[name] = entry;
  }
  if (auto it = object.find("counters"); it != object.end()) {
    for (const auto& [name, value] : it->second.object()) {
      ledger.counters[name] = static_cast<std::int64_t>(value.number());
    }
  }
  if (auto it = object.find("histograms"); it != object.end()) {
    for (const auto& [name, value] : it->second.object()) {
      const JsonObject& h = value.object();
      HistogramStats stats;
      stats.count = static_cast<std::size_t>(h.at("count").number());
      stats.min = h.at("min").number();
      stats.max = h.at("max").number();
      stats.mean = h.at("mean").number();
      stats.p50 = h.at("p50").number();
      stats.p95 = h.at("p95").number();
      stats.p99 = h.at("p99").number();
      ledger.histograms[name] = stats;
    }
  }
  return ledger;
}

PerfLedger LoadLedgerFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("perf ledger: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return ParseLedgerJson(text.str());
  } catch (const MalformedInput& e) {
    throw MalformedInput(path + ": " + e.what());
  }
}

std::optional<PerfLedger> TryLoadLedgerFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return ParseLedgerJson(text.str());
  } catch (const MalformedInput& e) {
    throw MalformedInput(path + ": " + e.what());
  }
}

void WriteLedgerFile(const std::string& path, const PerfLedger& ledger) {
  std::ofstream file(path);
  if (!file) throw Error("perf ledger: cannot open " + path);
  file << RenderLedgerJson(ledger);
  if (!file.good()) throw Error("perf ledger: failed writing " + path);
}

PerfLedger MergeLedgers(PerfLedger base, const PerfLedger& update) {
  base.version = update.version;
  base.git_rev = update.git_rev;
  base.timestamp = update.timestamp;
  for (const auto& [name, entry] : update.benchmarks) {
    base.benchmarks[name] = entry;
  }
  for (const auto& [name, value] : update.counters) {
    base.counters[name] = value;
  }
  for (const auto& [name, stats] : update.histograms) {
    base.histograms[name] = stats;
  }
  return base;
}

void StampLedgerFromEnv(PerfLedger& ledger) {
  if (const char* rev = std::getenv("S2FA_GIT_REV")) ledger.git_rev = rev;
  if (const char* ts = std::getenv("S2FA_BENCH_TIMESTAMP")) {
    ledger.timestamp = ts;
  }
}

const char* LedgerDiffKindName(LedgerDiffKind kind) {
  switch (kind) {
    case LedgerDiffKind::kImproved: return "improved";
    case LedgerDiffKind::kFlat: return "flat";
    case LedgerDiffKind::kRegressed: return "regressed";
    case LedgerDiffKind::kAdded: return "added";
    case LedgerDiffKind::kRemoved: return "removed";
  }
  return "?";
}

LedgerDiff ComparePerfLedgers(const PerfLedger& prev, const PerfLedger& next,
                              double threshold) {
  LedgerDiff diff;
  diff.threshold = threshold;
  for (const auto& [name, old_entry] : prev.benchmarks) {
    LedgerDiffEntry entry;
    entry.name = name;
    entry.old_ns_per_op = old_entry.ns_per_op;
    auto it = next.benchmarks.find(name);
    if (it == next.benchmarks.end()) {
      entry.kind = LedgerDiffKind::kRemoved;
      ++diff.removed;
      diff.entries.push_back(std::move(entry));
      continue;
    }
    entry.new_ns_per_op = it->second.ns_per_op;
    if (old_entry.ns_per_op > 0) {
      entry.delta =
          (entry.new_ns_per_op - entry.old_ns_per_op) / entry.old_ns_per_op;
    } else if (entry.new_ns_per_op > 0) {
      entry.delta = std::numeric_limits<double>::infinity();
    }
    if (std::fabs(entry.delta) <= threshold) {
      entry.kind = LedgerDiffKind::kFlat;
      ++diff.flat;
    } else if (entry.delta < 0) {
      entry.kind = LedgerDiffKind::kImproved;
      ++diff.improved;
    } else {
      entry.kind = LedgerDiffKind::kRegressed;
      ++diff.regressed;
    }
    diff.entries.push_back(std::move(entry));
  }
  for (const auto& [name, new_entry] : next.benchmarks) {
    if (prev.benchmarks.count(name) != 0) continue;
    LedgerDiffEntry entry;
    entry.name = name;
    entry.kind = LedgerDiffKind::kAdded;
    entry.new_ns_per_op = new_entry.ns_per_op;
    ++diff.added;
    diff.entries.push_back(std::move(entry));
  }
  // Both loops walk std::maps, so the merged list only needs one sort to
  // be name-ordered.
  std::stable_sort(diff.entries.begin(), diff.entries.end(),
                   [](const LedgerDiffEntry& a, const LedgerDiffEntry& b) {
                     return a.name < b.name;
                   });
  return diff;
}

std::string RenderLedgerDiffTable(const LedgerDiff& diff) {
  TextTable table({"Benchmark", "Old ns/op", "New ns/op", "Delta", "Class"});
  for (const LedgerDiffEntry& entry : diff.entries) {
    const bool both = entry.kind != LedgerDiffKind::kAdded &&
                      entry.kind != LedgerDiffKind::kRemoved;
    table.AddRow(
        {entry.name,
         entry.kind == LedgerDiffKind::kAdded
             ? "--"
             : FormatDouble(entry.old_ns_per_op, 1),
         entry.kind == LedgerDiffKind::kRemoved
             ? "--"
             : FormatDouble(entry.new_ns_per_op, 1),
         both && std::isfinite(entry.delta)
             ? (entry.delta >= 0 ? "+" : "") + FormatPercent(entry.delta)
             : "--",
         LedgerDiffKindName(entry.kind)});
  }
  std::string out = table.Render();
  out += "threshold " + FormatPercent(diff.threshold) + ": " +
         std::to_string(diff.improved) + " improved, " +
         std::to_string(diff.flat) + " flat, " +
         std::to_string(diff.regressed) + " regressed, " +
         std::to_string(diff.added) + " added, " +
         std::to_string(diff.removed) + " removed\n";
  return out;
}

}  // namespace s2fa::obs
