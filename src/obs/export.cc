#include "obs/export.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <string_view>

#include "obs/json.h"
#include "support/error.h"
#include "support/strings.h"
#include "support/table.h"

namespace s2fa::obs {

using json::JsonNumber;
using json::JsonObject;
using json::JsonString;
using json::JsonValue;

namespace {

std::string FormatMicros(double us) {
  if (us >= 1e6) return FormatDouble(us / 1e6, 2) + " s";
  if (us >= 1e3) return FormatDouble(us / 1e3, 2) + " ms";
  return FormatDouble(us, 1) + " us";
}

}  // namespace

Summary BuildSummary(const MetricsSnapshot& metrics,
                     const std::vector<SpanEvent>& events) {
  Summary summary;
  summary.metrics = metrics;
  std::map<std::string, SpanStats> spans;
  for (const SpanEvent& event : events) {
    SpanStats& stats = spans[event.name];
    ++stats.count;
    stats.total_us += static_cast<double>(event.duration_us);
    stats.max_us =
        std::max(stats.max_us, static_cast<double>(event.duration_us));
  }
  for (auto& [name, stats] : spans) {
    stats.mean_us =
        stats.count > 0 ? stats.total_us / static_cast<double>(stats.count)
                        : 0;
    summary.spans.emplace_back(name, stats);
  }
  return summary;
}

Summary CaptureSummary() {
  return BuildSummary(Registry::Global().Snapshot(),
                      Tracer::Global().Events());
}

std::string RenderTraceJsonl(const std::vector<SpanEvent>& events) {
  std::string out;
  for (const SpanEvent& event : events) {
    out += "{\"name\":" + JsonString(event.name) +
           ",\"tid\":" + std::to_string(event.thread_id) +
           ",\"depth\":" + std::to_string(event.depth) +
           ",\"start_us\":" + std::to_string(event.start_us) +
           ",\"dur_us\":" + std::to_string(event.duration_us) + "}\n";
  }
  return out;
}

std::vector<SpanEvent> ParseTraceJsonl(const std::string& text) {
  std::vector<SpanEvent> events;
  for (std::string_view line : Split(text, '\n')) {
    line = Trim(line);
    if (line.empty()) continue;
    JsonValue value = json::Parse(line);
    const JsonObject& object = value.object();
    SpanEvent event;
    event.name = object.at("name").string();
    event.thread_id = static_cast<int>(object.at("tid").number());
    event.depth = static_cast<int>(object.at("depth").number());
    event.start_us =
        static_cast<std::uint64_t>(object.at("start_us").number());
    event.duration_us =
        static_cast<std::uint64_t>(object.at("dur_us").number());
    events.push_back(std::move(event));
  }
  return events;
}

std::string RenderChromeTrace(const std::vector<SpanEvent>& events) {
  // One complete event per span. All events share pid 1 (one process);
  // tid is the dense support/logging thread id, so viewer lanes line up
  // with the [s2fa ... T2] log prefixes.
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& event : events) {
    out += first ? "\n" : ",\n";
    out += "{\"name\":" + JsonString(event.name) +
           ",\"cat\":\"s2fa\",\"ph\":\"X\",\"ts\":" +
           std::to_string(event.start_us) +
           ",\"dur\":" + std::to_string(event.duration_us) +
           ",\"pid\":1,\"tid\":" + std::to_string(event.thread_id) +
           ",\"args\":{\"depth\":" + std::to_string(event.depth) + "}}";
    first = false;
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

std::string RenderSummaryJson(const Summary& summary) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : summary.metrics.counters) {
    out += first ? "\n" : ",\n";
    out += "    " + JsonString(name) + ": " + std::to_string(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : summary.metrics.gauges) {
    out += first ? "\n" : ",\n";
    out += "    " + JsonString(name) + ": " + JsonNumber(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : summary.metrics.histograms) {
    out += first ? "\n" : ",\n";
    out += "    " + JsonString(name) + ": {\"count\": " +
           std::to_string(h.count) + ", \"min\": " + JsonNumber(h.min) +
           ", \"max\": " + JsonNumber(h.max) +
           ", \"mean\": " + JsonNumber(h.mean) +
           ", \"p50\": " + JsonNumber(h.p50) +
           ", \"p95\": " + JsonNumber(h.p95) +
           ", \"p99\": " + JsonNumber(h.p99) + "}";
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"spans\": {";
  first = true;
  for (const auto& [name, s] : summary.spans) {
    out += first ? "\n" : ",\n";
    out += "    " + JsonString(name) + ": {\"count\": " +
           std::to_string(s.count) +
           ", \"total_us\": " + JsonNumber(s.total_us) +
           ", \"mean_us\": " + JsonNumber(s.mean_us) +
           ", \"max_us\": " + JsonNumber(s.max_us) + "}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

Summary ParseSummaryJson(const std::string& text) {
  JsonValue root = json::Parse(text);
  const JsonObject& object = root.object();
  Summary summary;
  if (auto it = object.find("counters"); it != object.end()) {
    for (const auto& [name, value] : it->second.object()) {
      summary.metrics.counters[name] =
          static_cast<std::int64_t>(value.number());
    }
  }
  if (auto it = object.find("gauges"); it != object.end()) {
    for (const auto& [name, value] : it->second.object()) {
      summary.metrics.gauges[name] = value.number();
    }
  }
  if (auto it = object.find("histograms"); it != object.end()) {
    for (const auto& [name, value] : it->second.object()) {
      const JsonObject& h = value.object();
      HistogramStats stats;
      stats.count = static_cast<std::size_t>(h.at("count").number());
      stats.min = h.at("min").number();
      stats.max = h.at("max").number();
      stats.mean = h.at("mean").number();
      stats.p50 = h.at("p50").number();
      stats.p95 = h.at("p95").number();
      stats.p99 = h.at("p99").number();
      summary.metrics.histograms[name] = stats;
    }
  }
  if (auto it = object.find("spans"); it != object.end()) {
    for (const auto& [name, value] : it->second.object()) {
      const JsonObject& s = value.object();
      SpanStats stats;
      stats.count = static_cast<std::size_t>(s.at("count").number());
      stats.total_us = s.at("total_us").number();
      stats.mean_us = s.at("mean_us").number();
      stats.max_us = s.at("max_us").number();
      summary.spans.emplace_back(name, stats);
    }
  }
  return summary;
}

std::string RenderSummaryTable(const Summary& summary) {
  std::string out;

  if (!summary.spans.empty()) {
    // Sorted by total time so the pipeline's hot stages lead the report.
    std::vector<std::pair<std::string, SpanStats>> spans = summary.spans;
    std::stable_sort(spans.begin(), spans.end(),
                     [](const auto& a, const auto& b) {
                       return a.second.total_us > b.second.total_us;
                     });
    TextTable table({"Span", "Count", "Total", "Mean", "Max"});
    for (const auto& [name, s] : spans) {
      table.AddRow({name, std::to_string(s.count), FormatMicros(s.total_us),
                    FormatMicros(s.mean_us), FormatMicros(s.max_us)});
    }
    out += "=== pipeline spans (wall clock) ===\n" + table.Render();
  }

  if (!summary.metrics.counters.empty()) {
    TextTable table({"Counter", "Value"});
    for (const auto& [name, value] : summary.metrics.counters) {
      table.AddRow({name, std::to_string(value)});
    }
    out += "\n=== counters ===\n" + table.Render();
  }

  if (!summary.metrics.gauges.empty()) {
    TextTable table({"Gauge", "Value"});
    for (const auto& [name, value] : summary.metrics.gauges) {
      table.AddRow({name, FormatDouble(value, 3)});
    }
    out += "\n=== gauges ===\n" + table.Render();
  }

  if (!summary.metrics.histograms.empty()) {
    TextTable table(
        {"Histogram", "Count", "Min", "Mean", "p50", "p95", "p99", "Max"});
    for (const auto& [name, h] : summary.metrics.histograms) {
      table.AddRow({name, std::to_string(h.count), FormatDouble(h.min, 3),
                    FormatDouble(h.mean, 3), FormatDouble(h.p50, 3),
                    FormatDouble(h.p95, 3), FormatDouble(h.p99, 3),
                    FormatDouble(h.max, 3)});
    }
    out += "\n=== histograms ===\n" + table.Render();
  }

  if (out.empty()) out = "(no observability data recorded)\n";
  return out;
}

void WriteTraceFile(const std::string& path,
                    const std::vector<SpanEvent>& events) {
  std::ofstream file(path);
  if (!file) throw Error("obs: cannot open trace file " + path);
  file << RenderTraceJsonl(events);
  if (!file.good()) throw Error("obs: failed writing trace file " + path);
}

void WriteChromeTraceFile(const std::string& path,
                          const std::vector<SpanEvent>& events) {
  std::ofstream file(path);
  if (!file) throw Error("obs: cannot open trace file " + path);
  file << RenderChromeTrace(events);
  if (!file.good()) throw Error("obs: failed writing trace file " + path);
}

void WriteSummaryFile(const std::string& path, const Summary& summary) {
  std::ofstream file(path);
  if (!file) throw Error("obs: cannot open metrics file " + path);
  file << RenderSummaryJson(summary);
  if (!file.good()) throw Error("obs: failed writing metrics file " + path);
}

}  // namespace s2fa::obs
