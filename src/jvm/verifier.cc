#include "jvm/verifier.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <sstream>

#include "support/error.h"

namespace s2fa::jvm {

namespace {

// Abstract stack cell: a Type, with small integral types widened to int
// (JVM operand-stack semantics).
Type WidenToStack(const Type& t) {
  if (t.is_integral() && !(t.kind() == TypeKind::kLong)) return Type::Int();
  return t;
}

bool SameCell(const Type& a, const Type& b) {
  if (a == b) return true;
  // References unify by kind only: the flattener cares about exact classes,
  // but at merge points a null-like ref may meet a concrete one.
  if (a.is_reference() && b.is_reference()) return true;
  return false;
}

struct Frame {
  std::vector<Type> stack;
};

class VerifierImpl {
 public:
  VerifierImpl(const ClassPool& pool, const Method& method)
      : pool_(pool), method_(method) {}

  VerifyResult Run();

 private:
  void Fail(std::size_t pc, const std::string& message) {
    std::ostringstream oss;
    oss << method_.name << "@" << pc << " (" << method_.code[pc].ToString()
        << "): " << message;
    result_.errors.push_back(oss.str());
    result_.ok = false;
  }

  // Pops a cell; reports and returns nullopt on underflow.
  std::optional<Type> PopCell(Frame& frame, std::size_t pc) {
    if (frame.stack.empty()) {
      Fail(pc, "operand stack underflow");
      return std::nullopt;
    }
    Type t = frame.stack.back();
    frame.stack.pop_back();
    return t;
  }

  bool PopExpect(Frame& frame, std::size_t pc, const Type& want,
                 const char* role) {
    auto got = PopCell(frame, pc);
    if (!got) return false;
    if (!SameCell(WidenToStack(want), WidenToStack(*got))) {
      Fail(pc, std::string(role) + " has type " + got->ToString() +
                   ", expected " + want.ToString());
      return false;
    }
    return true;
  }

  // Transfers `frame` through instruction `pc`; appends successor pcs.
  void Step(std::size_t pc, Frame frame);

  // Merges `frame` into the recorded in-state of `pc`; enqueues on change.
  void MergeInto(std::size_t pc, const Frame& frame, std::size_t from_pc);

  const ClassPool& pool_;
  const Method& method_;
  VerifyResult result_;
  std::vector<std::optional<Frame>> in_state_;
  std::deque<std::size_t> worklist_;
};

void VerifierImpl::MergeInto(std::size_t pc, const Frame& frame,
                             std::size_t from_pc) {
  if (pc >= method_.code.size()) {
    Fail(from_pc, "control falls past end of code");
    return;
  }
  auto& slot = in_state_[pc];
  if (!slot) {
    slot = frame;
    worklist_.push_back(pc);
    return;
  }
  if (slot->stack.size() != frame.stack.size()) {
    Fail(pc, "inconsistent stack depth at merge: " +
                 std::to_string(slot->stack.size()) + " vs " +
                 std::to_string(frame.stack.size()));
    return;
  }
  bool changed = false;
  for (std::size_t i = 0; i < frame.stack.size(); ++i) {
    if (!SameCell(slot->stack[i], frame.stack[i])) {
      Fail(pc, "inconsistent stack cell " + std::to_string(i) + " at merge: " +
                   slot->stack[i].ToString() + " vs " +
                   frame.stack[i].ToString());
      return;
    }
    // Prefer the more specific class type if one side is generic.
    if (slot->stack[i] != frame.stack[i] && frame.stack[i].is_class()) {
      slot->stack[i] = frame.stack[i];
      changed = true;
    }
  }
  if (changed) worklist_.push_back(pc);
}

void VerifierImpl::Step(std::size_t pc, Frame frame) {
  const Insn& insn = method_.code[pc];
  const std::size_t error_count = result_.errors.size();

  auto push = [&](const Type& t) { frame.stack.push_back(WidenToStack(t)); };
  auto check_slot = [&](int slot) {
    if (slot < 0 || slot >= method_.max_locals) {
      Fail(pc, "local slot " + std::to_string(slot) + " out of range [0, " +
                   std::to_string(method_.max_locals) + ")");
      return false;
    }
    return true;
  };

  switch (insn.op) {
    case Opcode::kConst:
      push(insn.type);
      break;
    case Opcode::kLoad:
      if (!check_slot(insn.slot)) return;
      push(insn.type);
      break;
    case Opcode::kStore:
      if (!check_slot(insn.slot)) return;
      PopExpect(frame, pc, insn.type, "stored value");
      break;
    case Opcode::kIInc:
      check_slot(insn.slot);
      break;
    case Opcode::kArrayLoad: {
      PopExpect(frame, pc, Type::Int(), "array index");
      auto arr = PopCell(frame, pc);
      if (arr && !arr->is_reference()) {
        Fail(pc, "array load on non-reference " + arr->ToString());
      }
      push(insn.type);
      break;
    }
    case Opcode::kArrayStore: {
      PopExpect(frame, pc, insn.type, "stored element");
      PopExpect(frame, pc, Type::Int(), "array index");
      auto arr = PopCell(frame, pc);
      if (arr && !arr->is_reference()) {
        Fail(pc, "array store on non-reference " + arr->ToString());
      }
      break;
    }
    case Opcode::kNewArray:
      PopExpect(frame, pc, Type::Int(), "array length");
      push(Type::Array(insn.type));
      break;
    case Opcode::kArrayLength: {
      auto arr = PopCell(frame, pc);
      if (arr && !arr->is_reference()) {
        Fail(pc, "arraylength on non-reference " + arr->ToString());
      }
      push(Type::Int());
      break;
    }
    case Opcode::kBinOp: {
      const bool shift = insn.bin_op == BinOp::kShl ||
                         insn.bin_op == BinOp::kShr ||
                         insn.bin_op == BinOp::kUShr;
      PopExpect(frame, pc, shift ? Type::Int() : insn.type, "rhs");
      PopExpect(frame, pc, insn.type, "lhs");
      if (insn.type.is_floating() &&
          (insn.bin_op == BinOp::kShl || insn.bin_op == BinOp::kShr ||
           insn.bin_op == BinOp::kUShr || insn.bin_op == BinOp::kAnd ||
           insn.bin_op == BinOp::kOr || insn.bin_op == BinOp::kXor)) {
        Fail(pc, "bitwise op on floating type");
      }
      push(insn.type);
      break;
    }
    case Opcode::kNeg:
      PopExpect(frame, pc, insn.type, "operand");
      push(insn.type);
      break;
    case Opcode::kConvert:
      PopExpect(frame, pc, insn.type, "operand");
      push(insn.type2);
      break;
    case Opcode::kCmp:
      PopExpect(frame, pc, insn.type, "rhs");
      PopExpect(frame, pc, insn.type, "lhs");
      push(Type::Int());
      break;
    case Opcode::kIf:
      PopExpect(frame, pc, Type::Int(), "condition");
      break;
    case Opcode::kIfICmp:
      PopExpect(frame, pc, Type::Int(), "rhs");
      PopExpect(frame, pc, Type::Int(), "lhs");
      break;
    case Opcode::kGoto:
      break;
    case Opcode::kGetField: {
      auto obj = PopCell(frame, pc);
      if (obj && !obj->is_reference()) {
        Fail(pc, "getfield on non-reference " + obj->ToString());
      }
      if (!pool_.Has(insn.owner)) {
        Fail(pc, "unresolved class " + insn.owner);
        push(Type::Int());
        break;
      }
      const Klass& k = pool_.Get(insn.owner);
      try {
        push(k.FieldAt(k.FieldIndex(insn.member)).type);
      } catch (const Error& e) {
        Fail(pc, e.what());
        push(Type::Int());
      }
      break;
    }
    case Opcode::kPutField: {
      if (!pool_.Has(insn.owner)) {
        Fail(pc, "unresolved class " + insn.owner);
        return;
      }
      const Klass& k = pool_.Get(insn.owner);
      try {
        const Type& ft = k.FieldAt(k.FieldIndex(insn.member)).type;
        PopExpect(frame, pc, ft, "field value");
      } catch (const Error& e) {
        Fail(pc, e.what());
        PopCell(frame, pc);
      }
      auto obj = PopCell(frame, pc);
      if (obj && !obj->is_reference()) {
        Fail(pc, "putfield on non-reference " + obj->ToString());
      }
      break;
    }
    case Opcode::kNew:
      if (!pool_.Has(insn.owner)) Fail(pc, "unresolved class " + insn.owner);
      push(Type::Class(insn.owner));
      break;
    case Opcode::kInvoke: {
      if (ClassPool::IsMathIntrinsic(insn.owner, insn.member)) {
        // Math intrinsics: pow/max/min take two doubles, others one; all
        // return double (kernels convert as needed).
        const int arity =
            (insn.member == "pow" || insn.member == "max" ||
             insn.member == "min")
                ? 2
                : 1;
        for (int i = 0; i < arity; ++i) {
          PopExpect(frame, pc, Type::Double(), "math intrinsic arg");
        }
        push(Type::Double());
        break;
      }
      if (!pool_.Has(insn.owner)) {
        Fail(pc, "unresolved class " + insn.owner);
        return;
      }
      const Klass& k = pool_.Get(insn.owner);
      if (!k.HasMethod(insn.member)) {
        Fail(pc, "unresolved method " + insn.owner + "." + insn.member);
        return;
      }
      const Method& callee = k.GetMethod(insn.member);
      const bool callee_static = insn.invoke_kind == InvokeKind::kStatic;
      if (callee.is_static != callee_static) {
        Fail(pc, "invoke kind does not match method staticness");
      }
      for (auto it = callee.signature.params.rbegin();
           it != callee.signature.params.rend(); ++it) {
        PopExpect(frame, pc, *it, "argument");
      }
      if (!callee_static) {
        auto recv = PopCell(frame, pc);
        if (recv && !recv->is_reference()) {
          Fail(pc, "receiver is not a reference: " + recv->ToString());
        }
      }
      if (!callee.signature.ret.is_void()) push(callee.signature.ret);
      break;
    }
    case Opcode::kReturn: {
      if (insn.type.is_void()) {
        if (!method_.signature.ret.is_void()) {
          Fail(pc, "void return in non-void method");
        }
      } else {
        PopExpect(frame, pc, insn.type, "return value");
        if (!SameCell(WidenToStack(insn.type),
                      WidenToStack(method_.signature.ret))) {
          Fail(pc, "return type " + insn.type.ToString() +
                       " does not match declared " +
                       method_.signature.ret.ToString());
        }
      }
      if (!frame.stack.empty()) {
        // Not a hard JVM error, but our compiler assumes clean returns.
        Fail(pc, "stack not empty at return (" +
                     std::to_string(frame.stack.size()) + " residual values)");
      }
      return;  // no successor
    }
    case Opcode::kDup: {
      if (frame.stack.empty()) {
        Fail(pc, "dup on empty stack");
        return;
      }
      frame.stack.push_back(frame.stack.back());
      break;
    }
    case Opcode::kPop:
      PopCell(frame, pc);
      break;
    case Opcode::kSwap: {
      if (frame.stack.size() < 2) {
        Fail(pc, "swap needs two operands");
        return;
      }
      std::swap(frame.stack[frame.stack.size() - 1],
                frame.stack[frame.stack.size() - 2]);
      break;
    }
  }

  // Don't propagate frames that already failed locally — avoids cascades.
  if (result_.errors.size() != error_count) return;

  result_.max_stack =
      std::max(result_.max_stack, static_cast<int>(frame.stack.size()));

  if (insn.op == Opcode::kGoto) {
    MergeInto(insn.target, frame, pc);
    return;
  }
  if (insn.op == Opcode::kIf || insn.op == Opcode::kIfICmp) {
    MergeInto(insn.target, frame, pc);
    MergeInto(pc + 1, frame, pc);
    return;
  }
  MergeInto(pc + 1, frame, pc);
}

VerifyResult VerifierImpl::Run() {
  if (method_.code.empty()) {
    result_.ok = false;
    result_.errors.push_back(method_.name + ": empty code");
    return result_;
  }
  // Check all branch targets up front.
  for (std::size_t pc = 0; pc < method_.code.size(); ++pc) {
    const Insn& insn = method_.code[pc];
    if (IsBranch(insn.op) && insn.target >= method_.code.size()) {
      Fail(pc, "branch target " + std::to_string(insn.target) +
                   " out of range");
    }
  }
  if (!result_.ok) return result_;

  in_state_.assign(method_.code.size(), std::nullopt);
  in_state_[0] = Frame{};
  worklist_.push_back(0);
  // Bound iterations defensively: dataflow converges in O(n^2) merges here.
  std::size_t budget = method_.code.size() * method_.code.size() + 1024;
  while (!worklist_.empty() && budget-- > 0) {
    std::size_t pc = worklist_.front();
    worklist_.pop_front();
    Step(pc, *in_state_[pc]);
    if (result_.errors.size() > 64) break;  // enough diagnostics
  }
  if (budget == 0) {
    result_.ok = false;
    result_.errors.push_back(method_.name + ": verifier did not converge");
  }

  // Every reachable non-terminator must have a reachable successor ending in
  // return; approximate by requiring the last reachable instruction path to
  // be a terminator: check that no reachable instruction falls off the end.
  const Insn& last = method_.code.back();
  if (in_state_[method_.code.size() - 1].has_value() &&
      !IsTerminator(last.op)) {
    Fail(method_.code.size() - 1, "control can fall off end of method");
  }
  return result_;
}

}  // namespace

VerifyResult Verify(const ClassPool& pool, const Method& method) {
  return VerifierImpl(pool, method).Run();
}

void VerifyOrThrow(const ClassPool& pool, const Method& method) {
  VerifyResult r = Verify(pool, method);
  if (r.ok) return;
  std::string all = "bytecode verification failed:\n";
  for (const auto& e : r.errors) all += "  " + e + "\n";
  throw MalformedInput(all);
}

}  // namespace s2fa::jvm
