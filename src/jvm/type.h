// JVM-style type descriptors.
//
// s2fa consumes kernels at the bytecode level (the layer scalac lowers to),
// so the type system mirrors JVM descriptors: primitive kinds, reference
// arrays, and named classes (Tuple2, user kernel classes). Types are small
// value objects compared structurally.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "support/error.h"

namespace s2fa::jvm {

enum class TypeKind {
  kVoid,
  kBoolean,
  kByte,
  kChar,
  kShort,
  kInt,
  kLong,
  kFloat,
  kDouble,
  kArray,   // element type attached
  kClass,   // class name attached
};

class Type {
 public:
  Type() : kind_(TypeKind::kVoid) {}

  static Type Void() { return Type(TypeKind::kVoid); }
  static Type Boolean() { return Type(TypeKind::kBoolean); }
  static Type Byte() { return Type(TypeKind::kByte); }
  static Type Char() { return Type(TypeKind::kChar); }
  static Type Short() { return Type(TypeKind::kShort); }
  static Type Int() { return Type(TypeKind::kInt); }
  static Type Long() { return Type(TypeKind::kLong); }
  static Type Float() { return Type(TypeKind::kFloat); }
  static Type Double() { return Type(TypeKind::kDouble); }
  static Type Array(const Type& element);
  static Type Class(std::string name);

  TypeKind kind() const { return kind_; }
  bool is_void() const { return kind_ == TypeKind::kVoid; }
  bool is_primitive() const {
    return kind_ != TypeKind::kVoid && kind_ != TypeKind::kArray &&
           kind_ != TypeKind::kClass;
  }
  bool is_array() const { return kind_ == TypeKind::kArray; }
  bool is_class() const { return kind_ == TypeKind::kClass; }
  bool is_reference() const { return is_array() || is_class(); }
  // Long and double occupy two JVM stack/local slots.
  bool is_wide() const {
    return kind_ == TypeKind::kLong || kind_ == TypeKind::kDouble;
  }
  bool is_integral() const {
    switch (kind_) {
      case TypeKind::kBoolean:
      case TypeKind::kByte:
      case TypeKind::kChar:
      case TypeKind::kShort:
      case TypeKind::kInt:
      case TypeKind::kLong:
        return true;
      default:
        return false;
    }
  }
  bool is_floating() const {
    return kind_ == TypeKind::kFloat || kind_ == TypeKind::kDouble;
  }

  // Element type; requires is_array().
  const Type& element() const;

  // Class name; requires is_class().
  const std::string& class_name() const;

  // Storage width in bits of one element of this primitive type.
  int bit_width() const;

  // JVM descriptor string, e.g. "I", "[F", "LTuple2;".
  std::string Descriptor() const;

  // Human-readable form, e.g. "int", "float[]", "Tuple2".
  std::string ToString() const;

  friend bool operator==(const Type& a, const Type& b);
  friend bool operator!=(const Type& a, const Type& b) { return !(a == b); }

 private:
  explicit Type(TypeKind kind) : kind_(kind) {}

  TypeKind kind_;
  std::shared_ptr<const Type> element_;  // for arrays
  std::string class_name_;               // for classes
};

// Parses a JVM descriptor ("I", "[[D", "LTuple2;"); throws MalformedInput.
Type ParseDescriptor(const std::string& descriptor);

// Method signature: parameter and return types.
struct MethodSignature {
  std::vector<Type> params;
  Type ret;

  // JVM method descriptor, e.g. "(I[F)F".
  std::string Descriptor() const;
};

}  // namespace s2fa::jvm
