#include "jvm/interpreter.h"

#include <cmath>

#include "support/error.h"

namespace s2fa::jvm {

namespace {

constexpr int kMaxCallDepth = 256;

std::int32_t CmpResult(double a, double b, bool nan_is_less) {
  if (std::isnan(a) || std::isnan(b)) return nan_is_less ? -1 : 1;
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

bool EvalCond(Cond cond, std::int32_t value) {
  switch (cond) {
    case Cond::kEq: return value == 0;
    case Cond::kNe: return value != 0;
    case Cond::kLt: return value < 0;
    case Cond::kGe: return value >= 0;
    case Cond::kGt: return value > 0;
    case Cond::kLe: return value <= 0;
  }
  S2FA_UNREACHABLE("bad cond");
}

// Truncates an int stack value to the in-memory width of small integrals.
Value NarrowForStore(const Type& type, const Value& v) {
  switch (type.kind()) {
    case TypeKind::kBoolean:
      return Value::OfInt(v.AsInt() != 0 ? 1 : 0);
    case TypeKind::kByte:
      return Value::OfInt(static_cast<std::int8_t>(v.AsInt()));
    case TypeKind::kChar:
      return Value::OfInt(static_cast<std::uint16_t>(v.AsInt()));
    case TypeKind::kShort:
      return Value::OfInt(static_cast<std::int16_t>(v.AsInt()));
    default:
      return v;
  }
}

}  // namespace

Interpreter::Interpreter(const ClassPool& pool, Heap& heap)
    : pool_(pool), heap_(&heap) {}

ExecResult Interpreter::Invoke(const std::string& owner,
                               const std::string& method,
                               std::vector<Value> args) {
  const Method& m = pool_.Get(owner).GetMethod(method);
  steps_ = 0;
  cost_ns_ = 0.0;
  Frame& frame = FrameAt(0);
  frame.locals.assign(static_cast<std::size_t>(m.max_locals), Value());
  S2FA_REQUIRE(args.size() <= frame.locals.size(),
               "too many arguments for " << owner << "." << method);
  // Wide values occupy two slots in the JVM; our Value holds them in one,
  // so we still reserve the second slot to keep slot numbering faithful.
  std::size_t slot = 0;
  std::size_t param_index = 0;
  const std::size_t receiver = m.is_static ? 0 : 1;
  for (const Value& arg : args) {
    frame.locals.at(slot) = arg;
    bool wide = false;
    if (param_index >= receiver) {
      const Type& t = m.signature.params.at(param_index - receiver);
      wide = t.is_wide();
    }
    slot += wide ? 2 : 1;
    ++param_index;
  }
  CallOutcome outcome = Execute(m, 0);
  ExecResult result;
  result.ret = outcome.ret;
  result.steps = steps_;
  result.cost_ns = cost_ns_;
  return result;
}

Interpreter::Frame& Interpreter::FrameAt(int depth) {
  while (frames_.size() <= static_cast<std::size_t>(depth)) {
    frames_.emplace_back();
    frames_.back().stack.reserve(16);
  }
  return frames_[static_cast<std::size_t>(depth)];
}

const std::vector<Interpreter::ResolvedSite>& Interpreter::Resolve(
    const Method& method) {
  auto it = resolved_.find(&method);
  if (it != resolved_.end()) return it->second;
  std::vector<ResolvedSite> sites(method.code.size());
  for (std::size_t i = 0; i < method.code.size(); ++i) {
    const Insn& insn = method.code[i];
    ResolvedSite& site = sites[i];
    site.cost = cost_model_.InsnCost(insn);
    switch (insn.op) {
      case Opcode::kInvoke:
        if (ClassPool::IsMathIntrinsic(insn.owner, insn.member)) {
          site.is_math = true;
          if (insn.member == "exp") site.math = MathFn::kExp;
          else if (insn.member == "log") site.math = MathFn::kLog;
          else if (insn.member == "sqrt") site.math = MathFn::kSqrt;
          else if (insn.member == "abs") site.math = MathFn::kAbs;
          else if (insn.member == "pow") site.math = MathFn::kPow;
          else if (insn.member == "max") site.math = MathFn::kMax;
          else if (insn.member == "min") site.math = MathFn::kMin;
          else throw Unsupported("math intrinsic " + insn.member);
          site.math_binary = site.math == MathFn::kPow ||
                             site.math == MathFn::kMax ||
                             site.math == MathFn::kMin;
          break;
        }
        site.callee = &pool_.Get(insn.owner).GetMethod(insn.member);
        site.pop_receiver = insn.invoke_kind != InvokeKind::kStatic;
        {
          int slot = site.callee->ParamSlotCount();
          S2FA_REQUIRE(slot <= site.callee->max_locals,
                       "parameters exceed max_locals in " << insn.member);
          const auto& params = site.callee->signature.params;
          site.arg_slots.reserve(params.size());
          for (auto pit = params.rbegin(); pit != params.rend(); ++pit) {
            slot -= pit->is_wide() ? 2 : 1;
            S2FA_REQUIRE(slot >= 0,
                         "parameter slots underflow in " << insn.member);
            site.arg_slots.push_back(slot);
          }
        }
        break;
      case Opcode::kGetField:
      case Opcode::kPutField:
        site.field_index = static_cast<std::uint32_t>(
            pool_.Get(insn.owner).FieldIndex(insn.member));
        break;
      case Opcode::kNew:
        site.klass = &pool_.Get(insn.owner);
        break;
      default:
        break;
    }
  }
  return resolved_.emplace(&method, std::move(sites)).first->second;
}

Interpreter::CallOutcome Interpreter::Execute(const Method& method,
                                              int depth) {
  S2FA_REQUIRE(depth < kMaxCallDepth, "call depth exceeded (recursion?)");
  const std::vector<ResolvedSite>& sites = Resolve(method);
  Frame& frame = FrameAt(depth);
  std::vector<Value>& locals = frame.locals;
  std::vector<Value>& stack = frame.stack;
  stack.clear();
  std::size_t pc = 0;

  auto pop = [&]() -> Value {
    S2FA_CHECK(!stack.empty(), "operand stack underflow in " << method.name);
    Value v = stack.back();
    stack.pop_back();
    return v;
  };

  for (;;) {
    S2FA_CHECK(pc < method.code.size(),
               "pc out of range in " << method.name);
    const Insn& insn = method.code[pc];
    const ResolvedSite& site = sites[pc];
    if (++steps_ > max_steps_) {
      throw InternalError("interpreter step budget exceeded in " +
                          method.name);
    }
    cost_ns_ += site.cost;

    switch (insn.op) {
      case Opcode::kConst:
        switch (insn.type.kind()) {
          case TypeKind::kInt:
            stack.push_back(
                Value::OfInt(static_cast<std::int32_t>(insn.const_i)));
            break;
          case TypeKind::kLong:
            stack.push_back(Value::OfLong(insn.const_i));
            break;
          case TypeKind::kFloat:
            stack.push_back(Value::OfFloat(static_cast<float>(insn.const_f)));
            break;
          case TypeKind::kDouble:
            stack.push_back(Value::OfDouble(insn.const_f));
            break;
          default:
            throw MalformedInput("const of type " + insn.type.ToString());
        }
        break;
      case Opcode::kLoad:
        stack.push_back(locals.at(static_cast<std::size_t>(insn.slot)));
        break;
      case Opcode::kStore:
        locals.at(static_cast<std::size_t>(insn.slot)) = pop();
        break;
      case Opcode::kIInc: {
        Value& v = locals.at(static_cast<std::size_t>(insn.slot));
        v = Value::OfInt(v.AsInt() + static_cast<std::int32_t>(insn.const_i));
        break;
      }
      case Opcode::kArrayLoad: {
        std::int32_t index = pop().AsInt();
        Ref ref = pop().AsRef();
        const Object& obj = heap_->Get(ref);
        S2FA_CHECK(obj.kind == Object::Kind::kArray,
                   "array load on instance");
        S2FA_REQUIRE(index >= 0 &&
                         static_cast<std::size_t>(index) < obj.slots.size(),
                     "ArrayIndexOutOfBounds: " << index << " of "
                                               << obj.slots.size());
        stack.push_back(obj.slots[static_cast<std::size_t>(index)]);
        break;
      }
      case Opcode::kArrayStore: {
        Value value = pop();
        std::int32_t index = pop().AsInt();
        Ref ref = pop().AsRef();
        Object& obj = heap_->Get(ref);
        S2FA_CHECK(obj.kind == Object::Kind::kArray,
                   "array store on instance");
        S2FA_REQUIRE(index >= 0 &&
                         static_cast<std::size_t>(index) < obj.slots.size(),
                     "ArrayIndexOutOfBounds: " << index << " of "
                                               << obj.slots.size());
        obj.slots[static_cast<std::size_t>(index)] =
            NarrowForStore(insn.type, value);
        break;
      }
      case Opcode::kNewArray: {
        std::int32_t length = pop().AsInt();
        S2FA_REQUIRE(length >= 0, "NegativeArraySize: " << length);
        Ref ref = heap_->NewArray(Type::Array(insn.type),
                                  static_cast<std::size_t>(length));
        cost_ns_ += cost_model_.AllocCost(
            static_cast<double>(length) * insn.type.bit_width() / 8.0);
        stack.push_back(Value::OfRef(ref));
        break;
      }
      case Opcode::kArrayLength: {
        Ref ref = pop().AsRef();
        stack.push_back(Value::OfInt(
            static_cast<std::int32_t>(heap_->Get(ref).slots.size())));
        break;
      }
      case Opcode::kBinOp: {
        Value b = pop();
        Value a = pop();
        switch (insn.type.kind()) {
          case TypeKind::kInt: {
            std::int32_t x = a.AsInt();
            std::int32_t y = b.AsInt();
            std::int32_t r = 0;
            switch (insn.bin_op) {
              case BinOp::kAdd: r = x + y; break;
              case BinOp::kSub: r = x - y; break;
              case BinOp::kMul: r = x * y; break;
              case BinOp::kDiv:
                S2FA_REQUIRE(y != 0, "ArithmeticException: / by zero");
                r = (x == INT32_MIN && y == -1) ? INT32_MIN : x / y;
                break;
              case BinOp::kRem:
                S2FA_REQUIRE(y != 0, "ArithmeticException: % by zero");
                r = (x == INT32_MIN && y == -1) ? 0 : x % y;
                break;
              case BinOp::kShl: r = x << (y & 31); break;
              case BinOp::kShr: r = x >> (y & 31); break;
              case BinOp::kUShr:
                r = static_cast<std::int32_t>(
                    static_cast<std::uint32_t>(x) >> (y & 31));
                break;
              case BinOp::kAnd: r = x & y; break;
              case BinOp::kOr: r = x | y; break;
              case BinOp::kXor: r = x ^ y; break;
              case BinOp::kMin: r = x < y ? x : y; break;
              case BinOp::kMax: r = x > y ? x : y; break;
            }
            stack.push_back(Value::OfInt(r));
            break;
          }
          case TypeKind::kLong: {
            std::int64_t x = a.AsLong();
            std::int64_t y = b.AsLong();
            std::int64_t r = 0;
            switch (insn.bin_op) {
              case BinOp::kAdd: r = x + y; break;
              case BinOp::kSub: r = x - y; break;
              case BinOp::kMul: r = x * y; break;
              case BinOp::kDiv:
                S2FA_REQUIRE(y != 0, "ArithmeticException: / by zero");
                r = x / y;
                break;
              case BinOp::kRem:
                S2FA_REQUIRE(y != 0, "ArithmeticException: % by zero");
                r = x % y;
                break;
              case BinOp::kShl: r = x << (b.AsInt() & 63); break;
              case BinOp::kShr: r = x >> (b.AsInt() & 63); break;
              case BinOp::kUShr:
                r = static_cast<std::int64_t>(
                    static_cast<std::uint64_t>(x) >> (b.AsInt() & 63));
                break;
              case BinOp::kAnd: r = x & y; break;
              case BinOp::kOr: r = x | y; break;
              case BinOp::kXor: r = x ^ y; break;
              case BinOp::kMin: r = x < y ? x : y; break;
              case BinOp::kMax: r = x > y ? x : y; break;
            }
            stack.push_back(Value::OfLong(r));
            break;
          }
          case TypeKind::kFloat: {
            float x = a.AsFloat();
            float y = b.AsFloat();
            float r = 0.0f;
            switch (insn.bin_op) {
              case BinOp::kAdd: r = x + y; break;
              case BinOp::kSub: r = x - y; break;
              case BinOp::kMul: r = x * y; break;
              case BinOp::kDiv: r = x / y; break;
              case BinOp::kRem: r = std::fmod(x, y); break;
              case BinOp::kMin: r = JavaFMin(x, y); break;
              case BinOp::kMax: r = JavaFMax(x, y); break;
              default:
                throw MalformedInput("bitwise op on float");
            }
            stack.push_back(Value::OfFloat(r));
            break;
          }
          case TypeKind::kDouble: {
            double x = a.AsDouble();
            double y = b.AsDouble();
            double r = 0.0;
            switch (insn.bin_op) {
              case BinOp::kAdd: r = x + y; break;
              case BinOp::kSub: r = x - y; break;
              case BinOp::kMul: r = x * y; break;
              case BinOp::kDiv: r = x / y; break;
              case BinOp::kRem: r = std::fmod(x, y); break;
              case BinOp::kMin: r = JavaFMin(x, y); break;
              case BinOp::kMax: r = JavaFMax(x, y); break;
              default:
                throw MalformedInput("bitwise op on double");
            }
            stack.push_back(Value::OfDouble(r));
            break;
          }
          default:
            throw MalformedInput("binop on type " + insn.type.ToString());
        }
        break;
      }
      case Opcode::kNeg: {
        Value a = pop();
        switch (insn.type.kind()) {
          case TypeKind::kInt: stack.push_back(Value::OfInt(-a.AsInt())); break;
          case TypeKind::kLong:
            stack.push_back(Value::OfLong(-a.AsLong()));
            break;
          case TypeKind::kFloat:
            stack.push_back(Value::OfFloat(-a.AsFloat()));
            break;
          case TypeKind::kDouble:
            stack.push_back(Value::OfDouble(-a.AsDouble()));
            break;
          default:
            throw MalformedInput("neg on type " + insn.type.ToString());
        }
        break;
      }
      case Opcode::kConvert: {
        Value a = pop();
        auto as_double = [&]() -> double {
          switch (insn.type.kind()) {
            case TypeKind::kInt: return a.AsInt();
            case TypeKind::kLong: return static_cast<double>(a.AsLong());
            case TypeKind::kFloat: return a.AsFloat();
            case TypeKind::kDouble: return a.AsDouble();
            default:
              throw MalformedInput("convert from " + insn.type.ToString());
          }
        };
        double d = as_double();
        switch (insn.type2.kind()) {
          case TypeKind::kInt:
            stack.push_back(Value::OfInt(static_cast<std::int32_t>(d)));
            break;
          case TypeKind::kLong:
            stack.push_back(Value::OfLong(static_cast<std::int64_t>(d)));
            break;
          case TypeKind::kFloat:
            stack.push_back(Value::OfFloat(static_cast<float>(d)));
            break;
          case TypeKind::kDouble:
            stack.push_back(Value::OfDouble(d));
            break;
          case TypeKind::kByte:
            stack.push_back(Value::OfInt(static_cast<std::int8_t>(
                static_cast<std::int32_t>(d))));
            break;
          case TypeKind::kChar:
            stack.push_back(Value::OfInt(static_cast<std::uint16_t>(
                static_cast<std::int32_t>(d))));
            break;
          case TypeKind::kShort:
            stack.push_back(Value::OfInt(static_cast<std::int16_t>(
                static_cast<std::int32_t>(d))));
            break;
          default:
            throw MalformedInput("convert to " + insn.type2.ToString());
        }
        break;
      }
      case Opcode::kCmp: {
        Value b = pop();
        Value a = pop();
        double x, y;
        if (insn.type.kind() == TypeKind::kLong) {
          std::int64_t la = a.AsLong();
          std::int64_t lb = b.AsLong();
          stack.push_back(Value::OfInt(la < lb ? -1 : la > lb ? 1 : 0));
          break;
        }
        if (insn.type.kind() == TypeKind::kFloat) {
          x = a.AsFloat();
          y = b.AsFloat();
        } else {
          x = a.AsDouble();
          y = b.AsDouble();
        }
        stack.push_back(Value::OfInt(CmpResult(x, y, insn.nan_is_less)));
        break;
      }
      case Opcode::kIf: {
        std::int32_t v = pop().AsInt();
        if (EvalCond(insn.cond, v)) {
          pc = insn.target;
          continue;
        }
        break;
      }
      case Opcode::kIfICmp: {
        std::int32_t b = pop().AsInt();
        std::int32_t a = pop().AsInt();
        std::int32_t d = a < b ? -1 : a > b ? 1 : 0;
        if (EvalCond(insn.cond, d)) {
          pc = insn.target;
          continue;
        }
        break;
      }
      case Opcode::kGoto:
        pc = insn.target;
        continue;
      case Opcode::kGetField: {
        Ref ref = pop().AsRef();
        const Object& obj = heap_->Get(ref);
        S2FA_CHECK(obj.kind == Object::Kind::kInstance,
                   "getfield on array");
        stack.push_back(obj.slots.at(site.field_index));
        break;
      }
      case Opcode::kPutField: {
        Value value = pop();
        Ref ref = pop().AsRef();
        Object& obj = heap_->Get(ref);
        S2FA_CHECK(obj.kind == Object::Kind::kInstance,
                   "putfield on array");
        obj.slots.at(site.field_index) = value;
        break;
      }
      case Opcode::kNew: {
        const Klass& k = *site.klass;
        Ref ref = heap_->NewInstance(Type::Class(insn.owner),
                                     k.fields().size());
        cost_ns_ +=
            cost_model_.AllocCost(16.0 + 8.0 * k.fields().size());
        stack.push_back(Value::OfRef(ref));
        break;
      }
      case Opcode::kInvoke: {
        if (site.is_math) {
          double y = 0.0;
          if (site.math_binary) y = pop().AsDouble();
          double x = pop().AsDouble();
          double r = 0.0;
          switch (site.math) {
            case MathFn::kExp: r = std::exp(x); break;
            case MathFn::kLog: r = std::log(x); break;
            case MathFn::kSqrt: r = std::sqrt(x); break;
            case MathFn::kAbs: r = std::fabs(x); break;
            case MathFn::kPow: r = std::pow(x, y); break;
            // Java semantics: NaN propagates, -0.0 < +0.0 (fmax/fmin would
            // drop NaN).
            case MathFn::kMax: r = JavaFMax(x, y); break;
            case MathFn::kMin: r = JavaFMin(x, y); break;
          }
          stack.push_back(Value::OfDouble(r));
          break;
        }
        const Method& callee = *site.callee;
        Frame& callee_frame = FrameAt(depth + 1);
        callee_frame.locals.assign(
            static_cast<std::size_t>(callee.max_locals), Value());
        // Pop arguments right-to-left into their resolved local slots.
        for (std::int32_t arg_slot : site.arg_slots) {
          callee_frame.locals[static_cast<std::size_t>(arg_slot)] = pop();
        }
        if (site.pop_receiver) callee_frame.locals[0] = pop();
        CallOutcome sub = Execute(callee, depth + 1);
        if (sub.has_ret) stack.push_back(sub.ret);
        break;
      }
      case Opcode::kReturn: {
        CallOutcome out;
        if (!insn.type.is_void()) {
          out.ret = pop();
          out.has_ret = true;
        }
        return out;
      }
      case Opcode::kDup:
        S2FA_CHECK(!stack.empty(), "dup on empty stack");
        stack.push_back(stack.back());
        break;
      case Opcode::kPop:
        pop();
        break;
      case Opcode::kSwap: {
        Value b = pop();
        Value a = pop();
        stack.push_back(b);
        stack.push_back(a);
        break;
      }
    }
    ++pc;
  }
}

}  // namespace s2fa::jvm
