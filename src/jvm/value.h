// Runtime values and heap objects for the bytecode interpreter.
//
// Values follow JVM stack semantics: booleans/bytes/chars/shorts are widened
// to int on the operand stack; references are handles into a Heap owned by
// the interpreter. The Heap is an arena of objects (arrays or class
// instances) addressed by index; handle 0 is null.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <variant>
#include <vector>

#include "jvm/type.h"
#include "support/error.h"

namespace s2fa::jvm {

// Opaque reference handle; 0 is null.
using Ref = std::uint32_t;
inline constexpr Ref kNullRef = 0;

// One operand-stack / local-variable slot value.
class Value {
 public:
  Value() : repr_(std::int32_t{0}) {}
  static Value OfInt(std::int32_t v) { return Value(v); }
  static Value OfLong(std::int64_t v) { return Value(v); }
  static Value OfFloat(float v) { return Value(v); }
  static Value OfDouble(double v) { return Value(v); }
  static Value OfRef(Ref r) { return Value(r); }

  bool is_int() const { return std::holds_alternative<std::int32_t>(repr_); }
  bool is_long() const { return std::holds_alternative<std::int64_t>(repr_); }
  bool is_float() const { return std::holds_alternative<float>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_ref() const { return std::holds_alternative<Ref>(repr_); }

  std::int32_t AsInt() const { return Get<std::int32_t>("int"); }
  std::int64_t AsLong() const { return Get<std::int64_t>("long"); }
  float AsFloat() const { return Get<float>("float"); }
  double AsDouble() const { return Get<double>("double"); }
  Ref AsRef() const { return Get<Ref>("reference"); }

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.repr_ == b.repr_;
  }

 private:
  template <typename T>
  explicit Value(T v) : repr_(v) {}

  template <typename T>
  T Get(const char* want) const {
    const T* p = std::get_if<T>(&repr_);
    if (p == nullptr) {
      throw InternalError(std::string("value is not a ") + want + ": " +
                          ToString());
    }
    return *p;
  }

  std::variant<std::int32_t, std::int64_t, float, double, Ref> repr_;
};

// A heap object: either a primitive/reference array or a class instance
// with named fields.
struct Object {
  enum class Kind { kArray, kInstance };
  Kind kind = Kind::kArray;
  Type type;                   // array type or class type
  std::vector<Value> slots;    // array elements or field values (field order)
};

// Arena of objects. Objects are never collected: kernels in the s2fa
// programming model allocate constant-size buffers only (paper §3.3), so a
// bump arena reproduces JVM allocation without a collector.
class Heap {
 public:
  Heap() { objects_.emplace_back(); }  // slot 0 = null sentinel

  // Allocates a primitive/reference array of `length` default elements.
  Ref NewArray(const Type& array_type, std::size_t length);

  // Allocates a class instance with `num_fields` default-initialized fields.
  Ref NewInstance(const Type& class_type, std::size_t num_fields);

  Object& Get(Ref ref);
  const Object& Get(Ref ref) const;

  std::size_t size() const { return objects_.size() - 1; }

 private:
  std::vector<Object> objects_;
};

// Default (zero) value of a given element type.
Value DefaultValue(const Type& type);

// Java semantics for Math.min/Math.max on floating types (JLS 15.25.1 /
// java.lang.Math): NaN propagates — std::fmin/fmax would drop it — and
// -0.0 orders strictly below +0.0, so min(0.0, -0.0) == -0.0 and
// max(0.0, -0.0) == +0.0. Shared by the bytecode interpreter and the KIR
// evaluator so both executable semantics stay bit-identical.
template <typename T>
T JavaFMin(T x, T y) {
  if (std::isnan(x) || std::isnan(y)) {
    return std::numeric_limits<T>::quiet_NaN();
  }
  if (x == y) return std::signbit(x) ? x : y;  // prefer -0.0
  return x < y ? x : y;
}

template <typename T>
T JavaFMax(T x, T y) {
  if (std::isnan(x) || std::isnan(y)) {
    return std::numeric_limits<T>::quiet_NaN();
  }
  if (x == y) return std::signbit(x) ? y : x;  // prefer +0.0
  return x > y ? x : y;
}

}  // namespace s2fa::jvm
