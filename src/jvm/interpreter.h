// Bytecode interpreter.
//
// Executes verified methods against a Heap and ClassPool. Serves two roles:
//   1. Golden semantics — every app kernel's interpreted result is compared
//      against its native C++ reference and against the generated C design.
//   2. The JVM performance baseline of Fig. 4, via the CostModel.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "jvm/cost_model.h"
#include "jvm/klass.h"
#include "jvm/value.h"

namespace s2fa::jvm {

struct ExecResult {
  Value ret;                 // undefined for void methods
  std::uint64_t steps = 0;   // instructions executed
  double cost_ns = 0.0;      // modeled JVM time
};

class Interpreter {
 public:
  // `heap` outlives the interpreter; arguments and results may reference it.
  Interpreter(const ClassPool& pool, Heap& heap);

  // Replaces the default cost model (e.g. to model a slower interpreter).
  void set_cost_model(const CostModel& model) { cost_model_ = model; }

  // Hard cap on executed instructions per top-level call (runaway guard).
  void set_max_steps(std::uint64_t max_steps) { max_steps_ = max_steps; }

  // Invokes `owner.method` with `args` (receiver first for instance
  // methods). Throws MalformedInput/InternalError on bad bytecode — run the
  // verifier first for friendlier diagnostics.
  ExecResult Invoke(const std::string& owner, const std::string& method,
                    std::vector<Value> args);

  Heap& heap() { return *heap_; }

 private:
  struct CallOutcome {
    Value ret;
    bool has_ret = false;
  };

  CallOutcome Execute(const Method& method, std::vector<Value> locals,
                      int depth);
  Value CallMathIntrinsic(const std::string& member, std::vector<Value>& args);

  const ClassPool& pool_;
  Heap* heap_;
  CostModel cost_model_;
  std::uint64_t max_steps_ = 5'000'000'000ULL;
  std::uint64_t steps_ = 0;
  double cost_ns_ = 0.0;
};

}  // namespace s2fa::jvm
