// Bytecode interpreter.
//
// Executes verified methods against a Heap and ClassPool. Serves two roles:
//   1. Golden semantics — every app kernel's interpreted result is compared
//      against its native C++ reference and against the generated C design.
//   2. The JVM performance baseline of Fig. 4, via the CostModel.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "jvm/cost_model.h"
#include "jvm/klass.h"
#include "jvm/value.h"

namespace s2fa::jvm {

struct ExecResult {
  Value ret;                 // undefined for void methods
  std::uint64_t steps = 0;   // instructions executed
  double cost_ns = 0.0;      // modeled JVM time
};

class Interpreter {
 public:
  // `heap` outlives the interpreter; arguments and results may reference
  // it. The interpreter caches per-method resolution tables (intrinsic
  // dispatch, call targets, field indices, per-instruction costs), so the
  // pool must not gain or drop members between invocations — define all
  // classes first, then execute.
  Interpreter(const ClassPool& pool, Heap& heap);

  // Replaces the default cost model (e.g. to model a slower interpreter).
  // Drops cached per-site costs so they are recomputed under the new model.
  void set_cost_model(const CostModel& model) {
    cost_model_ = model;
    resolved_.clear();
  }

  // Hard cap on executed instructions per top-level call (runaway guard).
  void set_max_steps(std::uint64_t max_steps) { max_steps_ = max_steps; }

  // Invokes `owner.method` with `args` (receiver first for instance
  // methods). Throws MalformedInput/InternalError on bad bytecode — run the
  // verifier first for friendlier diagnostics.
  ExecResult Invoke(const std::string& owner, const std::string& method,
                    std::vector<Value> args);

  Heap& heap() { return *heap_; }

 private:
  struct CallOutcome {
    Value ret;
    bool has_ret = false;
  };

  enum class MathFn : std::uint8_t {
    kExp, kLog, kSqrt, kAbs, kPow, kMax, kMin,
  };

  // Per-instruction resolution, computed once per method on first
  // execution: string-keyed lookups (math-intrinsic names, call targets,
  // field names) and the cost-model switch are paid at resolve time, so
  // the execute loop only indexes this table.
  struct ResolvedSite {
    double cost = 0.0;               // CostModel::InsnCost, precomputed
    bool is_math = false;            // kInvoke on java/lang/Math
    bool math_binary = false;        // pow/max/min take two operands
    MathFn math = MathFn::kExp;
    const Method* callee = nullptr;  // kInvoke target
    const Klass* klass = nullptr;    // kNew owner
    std::uint32_t field_index = 0;   // kGetField / kPutField
    bool pop_receiver = false;       // non-static kInvoke
    // Argument local slots in pop (right-to-left) order.
    std::vector<std::int32_t> arg_slots;
  };

  // One pooled frame per call depth: locals and operand stack are reused
  // across invocations instead of reallocated per call. A deque keeps
  // references to outer frames stable while inner calls grow it.
  struct Frame {
    std::vector<Value> locals;
    std::vector<Value> stack;
  };

  const std::vector<ResolvedSite>& Resolve(const Method& method);
  Frame& FrameAt(int depth);
  CallOutcome Execute(const Method& method, int depth);

  const ClassPool& pool_;
  Heap* heap_;
  CostModel cost_model_;
  std::unordered_map<const Method*, std::vector<ResolvedSite>> resolved_;
  std::deque<Frame> frames_;
  std::uint64_t max_steps_ = 5'000'000'000ULL;
  std::uint64_t steps_ = 0;
  double cost_ns_ = 0.0;
};

}  // namespace s2fa::jvm
