// Textual bytecode: the inverse of Disassemble().
//
// One instruction per line in exactly the disassembler's format, e.g.
//
//     0: load FPair slot=0
//     1: getfield FPair._1
//     2: store float[] slot=3
//     3: if_icmp ge ->9
//
// Leading indices are optional and ignored; `#`-prefixed lines and blank
// lines are comments. Parse(Disassemble(code)) == code for every method
// the assembler can produce, so kernels can be stored and loaded as text.
#pragma once

#include <string>
#include <vector>

#include "jvm/instruction.h"

namespace s2fa::jvm {

// Parses a whole code listing; throws MalformedInput with a line number on
// any syntax error.
std::vector<Insn> ParseCode(const std::string& text);

// Parses a single instruction line (no index prefix handling).
Insn ParseInsn(const std::string& line);

}  // namespace s2fa::jvm
