#include "jvm/instruction.h"

#include <sstream>

#include "support/error.h"

namespace s2fa::jvm {

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kConst: return "const";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kArrayLoad: return "aload_elem";
    case Opcode::kArrayStore: return "astore_elem";
    case Opcode::kNewArray: return "newarray";
    case Opcode::kArrayLength: return "arraylength";
    case Opcode::kBinOp: return "binop";
    case Opcode::kNeg: return "neg";
    case Opcode::kConvert: return "convert";
    case Opcode::kCmp: return "cmp";
    case Opcode::kIf: return "if";
    case Opcode::kIfICmp: return "if_icmp";
    case Opcode::kGoto: return "goto";
    case Opcode::kIInc: return "iinc";
    case Opcode::kGetField: return "getfield";
    case Opcode::kPutField: return "putfield";
    case Opcode::kNew: return "new";
    case Opcode::kInvoke: return "invoke";
    case Opcode::kReturn: return "return";
    case Opcode::kDup: return "dup";
    case Opcode::kPop: return "pop";
    case Opcode::kSwap: return "swap";
  }
  S2FA_UNREACHABLE("bad opcode");
}

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "add";
    case BinOp::kSub: return "sub";
    case BinOp::kMul: return "mul";
    case BinOp::kDiv: return "div";
    case BinOp::kRem: return "rem";
    case BinOp::kShl: return "shl";
    case BinOp::kShr: return "shr";
    case BinOp::kUShr: return "ushr";
    case BinOp::kAnd: return "and";
    case BinOp::kOr: return "or";
    case BinOp::kXor: return "xor";
    case BinOp::kMin: return "min";
    case BinOp::kMax: return "max";
  }
  S2FA_UNREACHABLE("bad binop");
}

const char* CondName(Cond cond) {
  switch (cond) {
    case Cond::kEq: return "eq";
    case Cond::kNe: return "ne";
    case Cond::kLt: return "lt";
    case Cond::kGe: return "ge";
    case Cond::kGt: return "gt";
    case Cond::kLe: return "le";
  }
  S2FA_UNREACHABLE("bad cond");
}

bool IsBranch(Opcode op) {
  return op == Opcode::kIf || op == Opcode::kIfICmp || op == Opcode::kGoto;
}

bool IsTerminator(Opcode op) {
  return op == Opcode::kGoto || op == Opcode::kReturn;
}

std::string Insn::ToString() const {
  std::ostringstream oss;
  oss << OpcodeName(op);
  switch (op) {
    case Opcode::kConst:
      if (type.is_floating()) {
        oss << " " << type.ToString() << " " << const_f;
      } else {
        oss << " " << type.ToString() << " " << const_i;
      }
      break;
    case Opcode::kLoad:
    case Opcode::kStore:
      oss << " " << type.ToString() << " slot=" << slot;
      break;
    case Opcode::kArrayLoad:
    case Opcode::kArrayStore:
    case Opcode::kNewArray:
    case Opcode::kNeg:
    case Opcode::kReturn:
      oss << " " << type.ToString();
      break;
    case Opcode::kBinOp:
      oss << " " << type.ToString() << " " << BinOpName(bin_op);
      break;
    case Opcode::kConvert:
      oss << " " << type.ToString() << "->" << type2.ToString();
      break;
    case Opcode::kCmp:
      oss << " " << type.ToString() << (nan_is_less ? " l" : " g");
      break;
    case Opcode::kIf:
    case Opcode::kIfICmp:
      oss << " " << CondName(cond) << " ->" << target;
      break;
    case Opcode::kGoto:
      oss << " ->" << target;
      break;
    case Opcode::kIInc:
      oss << " slot=" << slot << " +" << const_i;
      break;
    case Opcode::kGetField:
    case Opcode::kPutField:
      oss << " " << owner << "." << member;
      break;
    case Opcode::kNew:
      oss << " " << owner;
      break;
    case Opcode::kInvoke:
      oss << (invoke_kind == InvokeKind::kStatic
                  ? " static "
                  : invoke_kind == InvokeKind::kSpecial ? " special "
                                                        : " virtual ")
          << owner << "." << member;
      break;
    default:
      break;
  }
  return oss.str();
}

std::string Disassemble(const std::vector<Insn>& code) {
  std::ostringstream oss;
  for (std::size_t i = 0; i < code.size(); ++i) {
    oss << (i < 10 ? "   " : i < 100 ? "  " : " ") << i << ": "
        << code[i].ToString() << "\n";
  }
  return oss.str();
}

}  // namespace s2fa::jvm
