// Structural bytecode verifier.
//
// Performs abstract interpretation of the operand stack over the control-
// flow graph (worklist dataflow): checks branch targets, local-slot bounds,
// stack discipline (no underflow, consistent shapes at merge points), type
// agreement of operands, and that every path ends in a return of the
// declared type. The bytecode-to-C compiler assumes verified input; running
// the verifier first turns its internal errors into actionable diagnostics.
#pragma once

#include <string>
#include <vector>

#include "jvm/klass.h"

namespace s2fa::jvm {

struct VerifyResult {
  bool ok = true;
  std::vector<std::string> errors;

  // Maximum operand stack depth observed (for diagnostics / cost model).
  int max_stack = 0;
};

// Verifies `method` against `pool`. Never throws for verification failures
// (they are reported in the result); throws only on API misuse.
VerifyResult Verify(const ClassPool& pool, const Method& method);

// Convenience: throws MalformedInput with all messages if verification fails.
void VerifyOrThrow(const ClassPool& pool, const Method& method);

}  // namespace s2fa::jvm
