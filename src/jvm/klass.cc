#include "jvm/klass.h"

#include "support/error.h"

namespace s2fa::jvm {

int Method::ParamSlotCount() const {
  int slots = is_static ? 0 : 1;
  for (const auto& p : signature.params) slots += p.is_wide() ? 2 : 1;
  return slots;
}

std::size_t Klass::AddField(Field field) {
  for (const auto& f : fields_) {
    S2FA_REQUIRE(f.name != field.name,
                 "duplicate field " << name_ << "." << field.name);
  }
  fields_.push_back(std::move(field));
  return fields_.size() - 1;
}

std::size_t Klass::FieldIndex(const std::string& name) const {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  throw MalformedInput("no field " + name_ + "." + name);
}

const Field& Klass::FieldAt(std::size_t index) const {
  S2FA_REQUIRE(index < fields_.size(),
               "field index " << index << " out of range in " << name_);
  return fields_[index];
}

void Klass::AddMethod(Method method) {
  for (const auto& m : methods_) {
    S2FA_REQUIRE(m.name != method.name,
                 "duplicate method " << name_ << "." << method.name
                                     << " (overloading unsupported)");
  }
  methods_.push_back(std::move(method));
}

const Method& Klass::GetMethod(const std::string& name) const {
  for (const auto& m : methods_) {
    if (m.name == name) return m;
  }
  throw MalformedInput("no method " + name_ + "." + name);
}

bool Klass::HasMethod(const std::string& name) const {
  for (const auto& m : methods_) {
    if (m.name == name) return true;
  }
  return false;
}

ClassPool::ClassPool() {
  // java/lang/Math: intrinsics only; bodies resolved by the runtime.
  Define("java/lang/Math");
}

Klass& ClassPool::Define(std::string name) {
  S2FA_REQUIRE(!Has(name), "class " << name << " already defined");
  auto klass = std::make_unique<Klass>(name);
  Klass& ref = *klass;
  classes_.emplace(std::move(name), std::move(klass));
  return ref;
}

bool ClassPool::Has(const std::string& name) const {
  return classes_.count(name) != 0;
}

Klass& ClassPool::Get(const std::string& name) {
  auto it = classes_.find(name);
  if (it == classes_.end()) throw MalformedInput("unresolved class " + name);
  return *it->second;
}

const Klass& ClassPool::Get(const std::string& name) const {
  return const_cast<ClassPool*>(this)->Get(name);
}

bool ClassPool::IsMathIntrinsic(const std::string& owner,
                                const std::string& member) {
  if (owner != "java/lang/Math") return false;
  return member == "exp" || member == "log" || member == "sqrt" ||
         member == "abs" || member == "max" || member == "min" ||
         member == "pow";
}

}  // namespace s2fa::jvm
