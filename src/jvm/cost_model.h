// JVM execution-time cost model.
//
// Fig. 4 of the paper baselines every accelerator against a single-threaded
// Spark executor on a JVM (JDK 1.7). We reproduce that baseline by charging
// each interpreted instruction a calibrated nanosecond cost. The numbers
// model a JIT-compiled JVM circa 2017 running Spark's per-record iterator
// path: simple ALU ops are cheap (~1 ns), but array accesses carry bounds
// checks, object field access carries header indirection, allocation and
// virtual dispatch are expensive, and transcendental math goes through
// java/lang/Math. A per-record framework overhead (Spark iterator advance +
// (un)boxing of the lambda argument) is charged by the Blaze runtime layer,
// not here.
#pragma once

#include "jvm/instruction.h"

namespace s2fa::jvm {

struct CostModel {
  // Nanoseconds per operation class.
  double int_alu = 0.45;       // add/sub/logic on ints
  double int_mul = 1.1;
  double int_div = 7.0;
  double fp_add = 0.9;         // float/double add/sub/mul (fused pipelines)
  double fp_mul = 1.3;
  double fp_div = 6.5;
  double convert = 0.8;
  double compare = 0.7;
  double branch = 0.9;         // predicted branch + safepoint poll amortized
  double local_access = 0.25;  // register-allocated most of the time
  double array_access = 1.8;   // load/store incl. bounds + store check
  double field_access = 1.4;   // header indirection
  double alloc_base = 18.0;    // TLAB bump + zeroing base
  double alloc_per_byte = 0.06;
  double invoke = 4.5;         // guarded inline-miss virtual call
  double math_exp = 28.0;      // Math.exp/log/pow (no vector intrinsics)
  double math_sqrt = 9.0;
  double math_simple = 1.2;    // abs/min/max
  double dispatch = 0.0;       // extra per-insn overhead (0 = JIT-compiled)

  // Cost of a single instruction (allocation size charged separately).
  double InsnCost(const Insn& insn) const;

  // Extra cost for allocating `bytes` bytes (kNewArray / kNew).
  double AllocCost(double bytes) const {
    return alloc_base + alloc_per_byte * bytes;
  }
};

}  // namespace s2fa::jvm
