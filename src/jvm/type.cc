#include "jvm/type.h"

namespace s2fa::jvm {

Type Type::Array(const Type& element) {
  S2FA_REQUIRE(!element.is_void(), "array of void is not a type");
  Type t(TypeKind::kArray);
  t.element_ = std::make_shared<Type>(element);
  return t;
}

Type Type::Class(std::string name) {
  S2FA_REQUIRE(!name.empty(), "class type needs a name");
  Type t(TypeKind::kClass);
  t.class_name_ = std::move(name);
  return t;
}

const Type& Type::element() const {
  S2FA_REQUIRE(is_array(), "element() on non-array type " << ToString());
  return *element_;
}

const std::string& Type::class_name() const {
  S2FA_REQUIRE(is_class(), "class_name() on non-class type " << ToString());
  return class_name_;
}

int Type::bit_width() const {
  switch (kind_) {
    case TypeKind::kBoolean:
    case TypeKind::kByte:
      return 8;
    case TypeKind::kChar:
    case TypeKind::kShort:
      return 16;
    case TypeKind::kInt:
    case TypeKind::kFloat:
      return 32;
    case TypeKind::kLong:
    case TypeKind::kDouble:
      return 64;
    default:
      throw InvalidArgument("bit_width() on non-primitive type " + ToString());
  }
}

std::string Type::Descriptor() const {
  switch (kind_) {
    case TypeKind::kVoid: return "V";
    case TypeKind::kBoolean: return "Z";
    case TypeKind::kByte: return "B";
    case TypeKind::kChar: return "C";
    case TypeKind::kShort: return "S";
    case TypeKind::kInt: return "I";
    case TypeKind::kLong: return "J";
    case TypeKind::kFloat: return "F";
    case TypeKind::kDouble: return "D";
    case TypeKind::kArray: return "[" + element_->Descriptor();
    case TypeKind::kClass: return "L" + class_name_ + ";";
  }
  S2FA_UNREACHABLE("bad type kind");
}

std::string Type::ToString() const {
  switch (kind_) {
    case TypeKind::kVoid: return "void";
    case TypeKind::kBoolean: return "boolean";
    case TypeKind::kByte: return "byte";
    case TypeKind::kChar: return "char";
    case TypeKind::kShort: return "short";
    case TypeKind::kInt: return "int";
    case TypeKind::kLong: return "long";
    case TypeKind::kFloat: return "float";
    case TypeKind::kDouble: return "double";
    case TypeKind::kArray: return element_->ToString() + "[]";
    case TypeKind::kClass: return class_name_;
  }
  S2FA_UNREACHABLE("bad type kind");
}

bool operator==(const Type& a, const Type& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case TypeKind::kArray: return *a.element_ == *b.element_;
    case TypeKind::kClass: return a.class_name_ == b.class_name_;
    default: return true;
  }
}

namespace {

Type ParseDescriptorAt(const std::string& d, std::size_t& pos) {
  if (pos >= d.size()) throw MalformedInput("truncated descriptor: " + d);
  switch (d[pos]) {
    case 'V': ++pos; return Type::Void();
    case 'Z': ++pos; return Type::Boolean();
    case 'B': ++pos; return Type::Byte();
    case 'C': ++pos; return Type::Char();
    case 'S': ++pos; return Type::Short();
    case 'I': ++pos; return Type::Int();
    case 'J': ++pos; return Type::Long();
    case 'F': ++pos; return Type::Float();
    case 'D': ++pos; return Type::Double();
    case '[': {
      ++pos;
      return Type::Array(ParseDescriptorAt(d, pos));
    }
    case 'L': {
      std::size_t end = d.find(';', pos);
      if (end == std::string::npos) {
        throw MalformedInput("unterminated class descriptor: " + d);
      }
      std::string name = d.substr(pos + 1, end - pos - 1);
      pos = end + 1;
      return Type::Class(std::move(name));
    }
    default:
      throw MalformedInput("bad descriptor char '" + std::string(1, d[pos]) +
                           "' in " + d);
  }
}

}  // namespace

Type ParseDescriptor(const std::string& descriptor) {
  std::size_t pos = 0;
  Type t = ParseDescriptorAt(descriptor, pos);
  if (pos != descriptor.size()) {
    throw MalformedInput("trailing characters in descriptor: " + descriptor);
  }
  return t;
}

std::string MethodSignature::Descriptor() const {
  std::string out = "(";
  for (const auto& p : params) out += p.Descriptor();
  out += ")" + ret.Descriptor();
  return out;
}

}  // namespace s2fa::jvm
