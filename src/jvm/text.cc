#include "jvm/text.h"

#include <cstdlib>

#include "support/error.h"
#include "support/strings.h"

namespace s2fa::jvm {

namespace {

// Parses the human-readable type spelling Disassemble uses ("int",
// "float[]", "FPair", ...).
Type ParseTypeName(std::string_view name) {
  if (EndsWith(name, "[]")) {
    return Type::Array(ParseTypeName(name.substr(0, name.size() - 2)));
  }
  if (name == "void") return Type::Void();
  if (name == "boolean") return Type::Boolean();
  if (name == "byte") return Type::Byte();
  if (name == "char") return Type::Char();
  if (name == "short") return Type::Short();
  if (name == "int") return Type::Int();
  if (name == "long") return Type::Long();
  if (name == "float") return Type::Float();
  if (name == "double") return Type::Double();
  S2FA_REQUIRE(!name.empty(), "empty type name");
  return Type::Class(std::string(name));
}

BinOp ParseBinOpName(std::string_view name) {
  for (int i = 0; i <= static_cast<int>(BinOp::kMax); ++i) {
    BinOp op = static_cast<BinOp>(i);
    if (name == BinOpName(op)) return op;
  }
  throw MalformedInput("unknown binop '" + std::string(name) + "'");
}

Cond ParseCondName(std::string_view name) {
  for (int i = 0; i <= static_cast<int>(Cond::kLe); ++i) {
    Cond cond = static_cast<Cond>(i);
    if (name == CondName(cond)) return cond;
  }
  throw MalformedInput("unknown condition '" + std::string(name) + "'");
}

std::int64_t ParseInt(std::string_view token) {
  return std::strtoll(std::string(token).c_str(), nullptr, 10);
}

// Tokenizes on whitespace.
std::vector<std::string> Tokens(const std::string& line) {
  std::vector<std::string> out;
  for (const std::string& part : Split(line, ' ')) {
    std::string t(Trim(part));
    if (!t.empty()) out.push_back(t);
  }
  return out;
}

// "slot=3" -> 3.
int ParseSlot(const std::string& token) {
  if (!StartsWith(token, "slot=")) {
    throw MalformedInput("expected slot=<n>, got '" + token + "'");
  }
  return static_cast<int>(ParseInt(std::string_view(token).substr(5)));
}

// "->9" -> 9.
std::size_t ParseTarget(const std::string& token) {
  if (!StartsWith(token, "->")) {
    throw MalformedInput("expected -><index>, got '" + token + "'");
  }
  return static_cast<std::size_t>(
      ParseInt(std::string_view(token).substr(2)));
}

// "Owner.member" split at the last dot.
std::pair<std::string, std::string> ParseMemberRef(const std::string& token) {
  std::size_t dot = token.rfind('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 == token.size()) {
    throw MalformedInput("expected Owner.member, got '" + token + "'");
  }
  return {token.substr(0, dot), token.substr(dot + 1)};
}

void Expect(const std::vector<std::string>& tokens, std::size_t count) {
  if (tokens.size() != count) {
    throw MalformedInput("expected " + std::to_string(count) +
                         " tokens, got " + std::to_string(tokens.size()));
  }
}

}  // namespace

Insn ParseInsn(const std::string& line) {
  std::vector<std::string> tokens = Tokens(line);
  if (tokens.empty()) throw MalformedInput("empty instruction");
  const std::string& op = tokens[0];
  Insn insn{};

  if (op == "const") {
    Expect(tokens, 3);
    insn.op = Opcode::kConst;
    insn.type = ParseTypeName(tokens[1]);
    if (insn.type.is_floating()) {
      insn.const_f = std::strtod(tokens[2].c_str(), nullptr);
    } else {
      insn.const_i = ParseInt(tokens[2]);
    }
    return insn;
  }
  if (op == "load" || op == "store") {
    Expect(tokens, 3);
    insn.op = op == "load" ? Opcode::kLoad : Opcode::kStore;
    insn.type = ParseTypeName(tokens[1]);
    insn.slot = ParseSlot(tokens[2]);
    return insn;
  }
  if (op == "aload_elem" || op == "astore_elem" || op == "newarray" ||
      op == "neg" || op == "return") {
    Expect(tokens, 2);
    insn.op = op == "aload_elem"    ? Opcode::kArrayLoad
              : op == "astore_elem" ? Opcode::kArrayStore
              : op == "newarray"    ? Opcode::kNewArray
              : op == "neg"         ? Opcode::kNeg
                                    : Opcode::kReturn;
    insn.type = ParseTypeName(tokens[1]);
    return insn;
  }
  if (op == "arraylength" || op == "dup" || op == "pop" || op == "swap") {
    Expect(tokens, 1);
    insn.op = op == "arraylength" ? Opcode::kArrayLength
              : op == "dup"       ? Opcode::kDup
              : op == "pop"       ? Opcode::kPop
                                  : Opcode::kSwap;
    return insn;
  }
  if (op == "binop") {
    Expect(tokens, 3);
    insn.op = Opcode::kBinOp;
    insn.type = ParseTypeName(tokens[1]);
    insn.bin_op = ParseBinOpName(tokens[2]);
    return insn;
  }
  if (op == "convert") {
    Expect(tokens, 2);
    std::size_t arrow = tokens[1].find("->");
    if (arrow == std::string::npos) {
      throw MalformedInput("convert needs <from>-><to>");
    }
    insn.op = Opcode::kConvert;
    insn.type = ParseTypeName(std::string_view(tokens[1]).substr(0, arrow));
    insn.type2 =
        ParseTypeName(std::string_view(tokens[1]).substr(arrow + 2));
    return insn;
  }
  if (op == "cmp") {
    Expect(tokens, 3);
    insn.op = Opcode::kCmp;
    insn.type = ParseTypeName(tokens[1]);
    if (tokens[2] != "l" && tokens[2] != "g") {
      throw MalformedInput("cmp needs 'l' or 'g'");
    }
    insn.nan_is_less = tokens[2] == "l";
    return insn;
  }
  if (op == "if" || op == "if_icmp") {
    Expect(tokens, 3);
    insn.op = op == "if" ? Opcode::kIf : Opcode::kIfICmp;
    insn.cond = ParseCondName(tokens[1]);
    insn.target = ParseTarget(tokens[2]);
    return insn;
  }
  if (op == "goto") {
    Expect(tokens, 2);
    insn.op = Opcode::kGoto;
    insn.target = ParseTarget(tokens[1]);
    return insn;
  }
  if (op == "iinc") {
    Expect(tokens, 3);
    insn.op = Opcode::kIInc;
    insn.type = Type::Int();
    insn.slot = ParseSlot(tokens[1]);
    if (!StartsWith(tokens[2], "+")) {
      throw MalformedInput("iinc needs +<delta>");
    }
    insn.const_i = ParseInt(std::string_view(tokens[2]).substr(1));
    return insn;
  }
  if (op == "getfield" || op == "putfield" || op == "new") {
    Expect(tokens, 2);
    if (op == "new") {
      insn.op = Opcode::kNew;
      insn.owner = tokens[1];
      return insn;
    }
    insn.op = op == "getfield" ? Opcode::kGetField : Opcode::kPutField;
    auto [owner, member] = ParseMemberRef(tokens[1]);
    insn.owner = owner;
    insn.member = member;
    return insn;
  }
  if (op == "invoke") {
    Expect(tokens, 3);
    insn.op = Opcode::kInvoke;
    if (tokens[1] == "static") {
      insn.invoke_kind = InvokeKind::kStatic;
    } else if (tokens[1] == "virtual") {
      insn.invoke_kind = InvokeKind::kVirtual;
    } else if (tokens[1] == "special") {
      insn.invoke_kind = InvokeKind::kSpecial;
    } else {
      throw MalformedInput("invoke kind must be static/virtual/special");
    }
    auto [owner, member] = ParseMemberRef(tokens[2]);
    insn.owner = owner;
    insn.member = member;
    return insn;
  }
  throw MalformedInput("unknown opcode '" + op + "'");
}

std::vector<Insn> ParseCode(const std::string& text) {
  std::vector<Insn> code;
  int line_no = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    std::string line(Trim(raw));
    if (line.empty() || line[0] == '#') continue;
    // Strip an optional "<index>:" prefix.
    std::size_t colon = line.find(':');
    if (colon != std::string::npos &&
        line.find_first_not_of("0123456789 ") == colon) {
      line = std::string(Trim(std::string_view(line).substr(colon + 1)));
    }
    try {
      code.push_back(ParseInsn(line));
    } catch (const Error& e) {
      throw MalformedInput("line " + std::to_string(line_no) + ": " +
                           e.what());
    }
  }
  return code;
}

}  // namespace s2fa::jvm
