// Class, method, and field model plus the class pool.
//
// A Klass mirrors what s2fa reads out of a .class file: field layout (the
// flattening source for composite types like Tuple2) and method bodies. The
// ClassPool is the resolution context shared by the verifier, interpreter,
// and the bytecode-to-C compiler; it is pre-populated with the builtin
// composite classes the paper mentions (Tuple2, Tuple3) and java/lang/Math.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "jvm/instruction.h"
#include "jvm/type.h"

namespace s2fa::jvm {

struct Field {
  std::string name;
  Type type;
};

struct Method {
  std::string name;
  MethodSignature signature;
  bool is_static = false;
  int max_locals = 0;        // local-variable slot count (includes params/this)
  std::vector<Insn> code;    // empty for intrinsics resolved by the runtime

  // Total slots consumed by the receiver (if any) plus parameters.
  int ParamSlotCount() const;
};

class Klass {
 public:
  explicit Klass(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // Appends a field; returns its index (field storage order).
  std::size_t AddField(Field field);
  const std::vector<Field>& fields() const { return fields_; }
  // Index of field `name`; throws MalformedInput if absent.
  std::size_t FieldIndex(const std::string& name) const;
  const Field& FieldAt(std::size_t index) const;

  void AddMethod(Method method);
  // Finds a method by name; throws MalformedInput if absent.
  const Method& GetMethod(const std::string& name) const;
  bool HasMethod(const std::string& name) const;
  const std::vector<Method>& methods() const { return methods_; }

 private:
  std::string name_;
  std::vector<Field> fields_;
  std::vector<Method> methods_;
};

// Registry of all classes visible to a kernel.
class ClassPool {
 public:
  // Creates a pool with builtin classes: scala/Tuple2 {_1,_2},
  // scala/Tuple3 {_1,_2,_3} (field types erased to double; actual kernels
  // define their own concrete tuples), java/lang/Math (intrinsics).
  ClassPool();

  // Registers a class; name must be unique.
  Klass& Define(std::string name);

  bool Has(const std::string& name) const;
  Klass& Get(const std::string& name);
  const Klass& Get(const std::string& name) const;

  // True if owner.member resolves to a math intrinsic handled natively
  // (java/lang/Math.{exp,log,sqrt,abs,max,min,pow}).
  static bool IsMathIntrinsic(const std::string& owner,
                              const std::string& member);

 private:
  std::map<std::string, std::unique_ptr<Klass>> classes_;
};

}  // namespace s2fa::jvm
