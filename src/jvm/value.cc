#include "jvm/value.h"

#include <sstream>

namespace s2fa::jvm {

std::string Value::ToString() const {
  std::ostringstream oss;
  if (is_int()) {
    oss << AsInt() << "i";
  } else if (is_long()) {
    oss << AsLong() << "l";
  } else if (is_float()) {
    oss << AsFloat() << "f";
  } else if (is_double()) {
    oss << AsDouble() << "d";
  } else {
    oss << "ref#" << AsRef();
  }
  return oss.str();
}

Value DefaultValue(const Type& type) {
  switch (type.kind()) {
    case TypeKind::kBoolean:
    case TypeKind::kByte:
    case TypeKind::kChar:
    case TypeKind::kShort:
    case TypeKind::kInt:
      return Value::OfInt(0);
    case TypeKind::kLong:
      return Value::OfLong(0);
    case TypeKind::kFloat:
      return Value::OfFloat(0.0f);
    case TypeKind::kDouble:
      return Value::OfDouble(0.0);
    case TypeKind::kArray:
    case TypeKind::kClass:
      return Value::OfRef(kNullRef);
    case TypeKind::kVoid:
      break;
  }
  throw InvalidArgument("no default value for type " + type.ToString());
}

Ref Heap::NewArray(const Type& array_type, std::size_t length) {
  S2FA_REQUIRE(array_type.is_array(),
               "NewArray needs an array type, got " << array_type.ToString());
  Object obj;
  obj.kind = Object::Kind::kArray;
  obj.type = array_type;
  obj.slots.assign(length, DefaultValue(array_type.element()));
  objects_.push_back(std::move(obj));
  return static_cast<Ref>(objects_.size() - 1);
}

Ref Heap::NewInstance(const Type& class_type, std::size_t num_fields) {
  S2FA_REQUIRE(class_type.is_class(), "NewInstance needs a class type, got "
                                          << class_type.ToString());
  Object obj;
  obj.kind = Object::Kind::kInstance;
  obj.type = class_type;
  obj.slots.assign(num_fields, Value());
  objects_.push_back(std::move(obj));
  return static_cast<Ref>(objects_.size() - 1);
}

Object& Heap::Get(Ref ref) {
  S2FA_REQUIRE(ref != kNullRef, "null reference dereference");
  S2FA_REQUIRE(ref < objects_.size(), "dangling reference " << ref);
  return objects_[ref];
}

const Object& Heap::Get(Ref ref) const {
  return const_cast<Heap*>(this)->Get(ref);
}

}  // namespace s2fa::jvm
