#include "jvm/assembler.h"

#include "support/error.h"

namespace s2fa::jvm {

namespace {
constexpr std::size_t kUnbound = static_cast<std::size_t>(-1);
}

Assembler& Assembler::Emit(Insn insn) {
  code_.push_back(std::move(insn));
  return *this;
}

Assembler& Assembler::IConst(std::int32_t v) {
  Insn i{};
  i.op = Opcode::kConst;
  i.type = Type::Int();
  i.const_i = v;
  return Emit(i);
}

Assembler& Assembler::LConst(std::int64_t v) {
  Insn i{};
  i.op = Opcode::kConst;
  i.type = Type::Long();
  i.const_i = v;
  return Emit(i);
}

Assembler& Assembler::FConst(float v) {
  Insn i{};
  i.op = Opcode::kConst;
  i.type = Type::Float();
  i.const_f = v;
  return Emit(i);
}

Assembler& Assembler::DConst(double v) {
  Insn i{};
  i.op = Opcode::kConst;
  i.type = Type::Double();
  i.const_f = v;
  return Emit(i);
}

Assembler& Assembler::Load(const Type& type, int slot) {
  S2FA_REQUIRE(slot >= 0, "negative local slot");
  Insn i{};
  i.op = Opcode::kLoad;
  i.type = type;
  i.slot = slot;
  return Emit(i);
}

Assembler& Assembler::Store(const Type& type, int slot) {
  S2FA_REQUIRE(slot >= 0, "negative local slot");
  Insn i{};
  i.op = Opcode::kStore;
  i.type = type;
  i.slot = slot;
  return Emit(i);
}

Assembler& Assembler::IInc(int slot, std::int32_t delta) {
  Insn i{};
  i.op = Opcode::kIInc;
  i.type = Type::Int();
  i.slot = slot;
  i.const_i = delta;
  return Emit(i);
}

Assembler& Assembler::ALoadElem(const Type& element) {
  Insn i{};
  i.op = Opcode::kArrayLoad;
  i.type = element;
  return Emit(i);
}

Assembler& Assembler::AStoreElem(const Type& element) {
  Insn i{};
  i.op = Opcode::kArrayStore;
  i.type = element;
  return Emit(i);
}

Assembler& Assembler::NewArray(const Type& element) {
  Insn i{};
  i.op = Opcode::kNewArray;
  i.type = element;
  return Emit(i);
}

Assembler& Assembler::ArrayLength() {
  Insn i{};
  i.op = Opcode::kArrayLength;
  return Emit(i);
}

Assembler& Assembler::Bin(const Type& type, BinOp op) {
  Insn i{};
  i.op = Opcode::kBinOp;
  i.type = type;
  i.bin_op = op;
  return Emit(i);
}

Assembler& Assembler::Neg(const Type& type) {
  Insn i{};
  i.op = Opcode::kNeg;
  i.type = type;
  return Emit(i);
}

Assembler& Assembler::Convert(const Type& from, const Type& to) {
  Insn i{};
  i.op = Opcode::kConvert;
  i.type = from;
  i.type2 = to;
  return Emit(i);
}

Assembler& Assembler::Cmp(const Type& type, bool nan_is_less) {
  Insn i{};
  i.op = Opcode::kCmp;
  i.type = type;
  i.nan_is_less = nan_is_less;
  return Emit(i);
}

Assembler::Label Assembler::NewLabel() {
  label_pos_.push_back(kUnbound);
  return Label{label_pos_.size() - 1};
}

Assembler& Assembler::If(Cond cond, Label label) {
  S2FA_REQUIRE(label.valid() && label.id < label_pos_.size(), "bad label");
  Insn i{};
  i.op = Opcode::kIf;
  i.cond = cond;
  fixups_.emplace_back(code_.size(), label.id);
  return Emit(i);
}

Assembler& Assembler::IfICmp(Cond cond, Label label) {
  S2FA_REQUIRE(label.valid() && label.id < label_pos_.size(), "bad label");
  Insn i{};
  i.op = Opcode::kIfICmp;
  i.cond = cond;
  fixups_.emplace_back(code_.size(), label.id);
  return Emit(i);
}

Assembler& Assembler::Goto(Label label) {
  S2FA_REQUIRE(label.valid() && label.id < label_pos_.size(), "bad label");
  Insn i{};
  i.op = Opcode::kGoto;
  fixups_.emplace_back(code_.size(), label.id);
  return Emit(i);
}

Assembler& Assembler::Bind(Label label) {
  S2FA_REQUIRE(label.valid() && label.id < label_pos_.size(), "bad label");
  S2FA_REQUIRE(label_pos_[label.id] == kUnbound,
               "label " << label.id << " bound twice");
  label_pos_[label.id] = code_.size();
  return *this;
}

Assembler& Assembler::GetField(const std::string& owner,
                               const std::string& member) {
  Insn i{};
  i.op = Opcode::kGetField;
  i.owner = owner;
  i.member = member;
  return Emit(i);
}

Assembler& Assembler::PutField(const std::string& owner,
                               const std::string& member) {
  Insn i{};
  i.op = Opcode::kPutField;
  i.owner = owner;
  i.member = member;
  return Emit(i);
}

Assembler& Assembler::New(const std::string& owner) {
  Insn i{};
  i.op = Opcode::kNew;
  i.owner = owner;
  return Emit(i);
}

Assembler& Assembler::InvokeVirtual(const std::string& owner,
                                    const std::string& member) {
  Insn i{};
  i.op = Opcode::kInvoke;
  i.invoke_kind = InvokeKind::kVirtual;
  i.owner = owner;
  i.member = member;
  return Emit(i);
}

Assembler& Assembler::InvokeStatic(const std::string& owner,
                                   const std::string& member) {
  Insn i{};
  i.op = Opcode::kInvoke;
  i.invoke_kind = InvokeKind::kStatic;
  i.owner = owner;
  i.member = member;
  return Emit(i);
}

Assembler& Assembler::InvokeSpecial(const std::string& owner,
                                    const std::string& member) {
  Insn i{};
  i.op = Opcode::kInvoke;
  i.invoke_kind = InvokeKind::kSpecial;
  i.owner = owner;
  i.member = member;
  return Emit(i);
}

Assembler& Assembler::Dup() {
  Insn i{};
  i.op = Opcode::kDup;
  return Emit(i);
}

Assembler& Assembler::Pop() {
  Insn i{};
  i.op = Opcode::kPop;
  return Emit(i);
}

Assembler& Assembler::Swap() {
  Insn i{};
  i.op = Opcode::kSwap;
  return Emit(i);
}

Assembler& Assembler::Ret(const Type& type) {
  Insn i{};
  i.op = Opcode::kReturn;
  i.type = type;
  return Emit(i);
}

std::vector<Insn> Assembler::Finish() {
  for (const auto& [index, label_id] : fixups_) {
    if (label_pos_[label_id] == kUnbound) {
      throw MalformedInput("branch at instruction " + std::to_string(index) +
                           " targets unbound label " +
                           std::to_string(label_id));
    }
    code_[index].target = label_pos_[label_id];
  }
  fixups_.clear();
  label_pos_.clear();
  std::vector<Insn> out;
  out.swap(code_);
  return out;
}

Method MakeMethod(std::string name, MethodSignature signature, bool is_static,
                  int max_locals, std::vector<Insn> code) {
  Method m;
  m.name = std::move(name);
  m.signature = std::move(signature);
  m.is_static = is_static;
  m.max_locals = max_locals;
  m.code = std::move(code);
  S2FA_REQUIRE(m.max_locals >= m.ParamSlotCount(),
               "max_locals " << m.max_locals << " smaller than parameter slots "
                             << m.ParamSlotCount() << " in " << m.name);
  return m;
}

}  // namespace s2fa::jvm
