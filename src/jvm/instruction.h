// The bytecode instruction set.
//
// This is a structured, typed subset of the JVM instruction set: exactly the
// opcodes scalac emits for the kernel style s2fa supports (paper §3.3 —
// primitive arithmetic, arrays, Tuple2-style composites, constant-size new,
// no library calls except java/lang/Math intrinsics). Where the real JVM has
// per-type opcode families (iadd/fadd/dadd), we store one opcode
// parameterized by a Type — semantically identical and much easier to
// analyze. Branch targets are instruction indices resolved by the Assembler
// instead of byte offsets; the mapping is bijective.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "jvm/type.h"

namespace s2fa::jvm {

enum class Opcode {
  kConst,        // push immediate constant          (type, const_i / const_f)
  kLoad,         // push local slot                  (type, slot)
  kStore,        // pop into local slot              (type, slot)
  kArrayLoad,    // ..., ref, idx -> value           (type = element type)
  kArrayStore,   // ..., ref, idx, value ->          (type = element type)
  kNewArray,     // ..., length -> ref               (type = element type)
  kArrayLength,  // ..., ref -> int
  kBinOp,        // ..., a, b -> a op b              (type, bin_op)
  kNeg,          // ..., a -> -a                     (type)
  kConvert,      // ..., a -> (to)a                  (type = from, type2 = to)
  kCmp,          // ..., a, b -> int {-1,0,1}        (type, nan_is_less)
  kIf,           // pop int, branch if cond vs 0     (cond, target)
  kIfICmp,       // pop 2 ints, branch if cond       (cond, target)
  kGoto,         // unconditional                    (target)
  kIInc,         // locals[slot] += const_i          (slot, const_i)
  kGetField,     // ..., ref -> value                (owner, member)
  kPutField,     // ..., ref, value ->               (owner, member)
  kNew,          // -> ref                           (owner)
  kInvoke,       // call; args popped, ret pushed    (invoke_kind, owner, member)
  kReturn,       // return ToS (or void)             (type; kVoid for void)
  kDup,          // ..., a -> a, a
  kPop,          // ..., a ->
  kSwap,         // ..., a, b -> b, a
};

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kRem,
  kShl, kShr, kUShr, kAnd, kOr, kXor,
  kMin, kMax,  // from Math.min/max intrinsics, materialized by the assembler
};

enum class Cond { kEq, kNe, kLt, kGe, kGt, kLe };

enum class InvokeKind { kVirtual, kStatic, kSpecial };

struct Insn {
  Opcode op;
  Type type;             // primary type parameter
  Type type2;            // conversion target type
  BinOp bin_op = BinOp::kAdd;
  Cond cond = Cond::kEq;
  InvokeKind invoke_kind = InvokeKind::kVirtual;
  int slot = 0;          // local-variable index
  std::int64_t const_i = 0;
  double const_f = 0.0;
  std::size_t target = 0;     // branch target: instruction index
  bool nan_is_less = true;    // fcmpl/dcmpl vs fcmpg/dcmpg
  std::string owner;          // class name for field/method/new
  std::string member;         // field or method name

  std::string ToString() const;
};

const char* OpcodeName(Opcode op);
const char* BinOpName(BinOp op);
const char* CondName(Cond cond);

// True if `op` transfers control (affects fall-through analysis).
bool IsBranch(Opcode op);
// True if `op` ends a basic block unconditionally (goto/return).
bool IsTerminator(Opcode op);

// Pretty-prints a code array with indices and branch targets.
std::string Disassemble(const std::vector<Insn>& code);

}  // namespace s2fa::jvm
