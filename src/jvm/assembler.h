// Fluent bytecode assembler.
//
// Kernel authors (our stand-in for scalac) build method bodies through this
// builder. Labels abstract branch targets; Finish() resolves every label to
// an instruction index and verifies all labels are bound and all branches
// resolved, so downstream passes can assume structurally valid control flow.
#pragma once

#include <cstdint>
#include <vector>

#include "jvm/instruction.h"
#include "jvm/klass.h"

namespace s2fa::jvm {

class Assembler {
 public:
  struct Label {
    std::size_t id = static_cast<std::size_t>(-1);
    bool valid() const { return id != static_cast<std::size_t>(-1); }
  };

  Assembler() = default;

  // --- constants ---
  Assembler& IConst(std::int32_t v);
  Assembler& LConst(std::int64_t v);
  Assembler& FConst(float v);
  Assembler& DConst(double v);

  // --- locals ---
  Assembler& Load(const Type& type, int slot);
  Assembler& Store(const Type& type, int slot);
  Assembler& IInc(int slot, std::int32_t delta);

  // --- arrays ---
  Assembler& ALoadElem(const Type& element);
  Assembler& AStoreElem(const Type& element);
  Assembler& NewArray(const Type& element);
  Assembler& ArrayLength();

  // --- arithmetic ---
  Assembler& Bin(const Type& type, BinOp op);
  Assembler& IAdd() { return Bin(Type::Int(), BinOp::kAdd); }
  Assembler& ISub() { return Bin(Type::Int(), BinOp::kSub); }
  Assembler& IMul() { return Bin(Type::Int(), BinOp::kMul); }
  Assembler& FAdd() { return Bin(Type::Float(), BinOp::kAdd); }
  Assembler& FSub() { return Bin(Type::Float(), BinOp::kSub); }
  Assembler& FMul() { return Bin(Type::Float(), BinOp::kMul); }
  Assembler& FDiv() { return Bin(Type::Float(), BinOp::kDiv); }
  Assembler& DAdd() { return Bin(Type::Double(), BinOp::kAdd); }
  Assembler& DSub() { return Bin(Type::Double(), BinOp::kSub); }
  Assembler& DMul() { return Bin(Type::Double(), BinOp::kMul); }
  Assembler& DDiv() { return Bin(Type::Double(), BinOp::kDiv); }
  Assembler& Neg(const Type& type);
  Assembler& Convert(const Type& from, const Type& to);
  Assembler& Cmp(const Type& type, bool nan_is_less = true);

  // --- control flow ---
  Label NewLabel();
  Assembler& If(Cond cond, Label label);
  Assembler& IfICmp(Cond cond, Label label);
  Assembler& Goto(Label label);
  // Binds `label` to the next emitted instruction.
  Assembler& Bind(Label label);

  // --- objects ---
  Assembler& GetField(const std::string& owner, const std::string& member);
  Assembler& PutField(const std::string& owner, const std::string& member);
  Assembler& New(const std::string& owner);
  Assembler& InvokeVirtual(const std::string& owner, const std::string& member);
  Assembler& InvokeStatic(const std::string& owner, const std::string& member);
  Assembler& InvokeSpecial(const std::string& owner, const std::string& member);

  // --- stack / return ---
  Assembler& Dup();
  Assembler& Pop();
  Assembler& Swap();
  Assembler& Ret(const Type& type);
  Assembler& RetVoid() { return Ret(Type::Void()); }

  // Resolves labels and returns the code. The assembler is left empty.
  // Throws MalformedInput if any used label is unbound.
  std::vector<Insn> Finish();

  std::size_t size() const { return code_.size(); }

 private:
  Assembler& Emit(Insn insn);

  std::vector<Insn> code_;
  // label id -> bound instruction index (or npos when unbound).
  std::vector<std::size_t> label_pos_;
  // instruction index -> label id, for every emitted branch.
  std::vector<std::pair<std::size_t, std::size_t>> fixups_;
};

// Convenience: builds a Method in one call.
Method MakeMethod(std::string name, MethodSignature signature, bool is_static,
                  int max_locals, std::vector<Insn> code);

}  // namespace s2fa::jvm
