#include "jvm/cost_model.h"

#include "jvm/klass.h"

namespace s2fa::jvm {

double CostModel::InsnCost(const Insn& insn) const {
  double base = dispatch;
  switch (insn.op) {
    case Opcode::kConst:
      return base + local_access;
    case Opcode::kLoad:
    case Opcode::kStore:
      return base + local_access;
    case Opcode::kIInc:
      return base + local_access + int_alu;
    case Opcode::kArrayLoad:
    case Opcode::kArrayStore:
      return base + array_access;
    case Opcode::kNewArray:
    case Opcode::kNew:
      return base;  // AllocCost added by the interpreter with the real size
    case Opcode::kArrayLength:
      return base + field_access;
    case Opcode::kBinOp: {
      const bool fp = insn.type.is_floating();
      switch (insn.bin_op) {
        case BinOp::kMul:
          return base + (fp ? fp_mul : int_mul);
        case BinOp::kDiv:
        case BinOp::kRem:
          return base + (fp ? fp_div : int_div);
        case BinOp::kMin:
        case BinOp::kMax:
          return base + math_simple;
        default:
          return base + (fp ? fp_add : int_alu);
      }
    }
    case Opcode::kNeg:
      return base + (insn.type.is_floating() ? fp_add : int_alu);
    case Opcode::kConvert:
      return base + convert;
    case Opcode::kCmp:
      return base + compare;
    case Opcode::kIf:
    case Opcode::kIfICmp:
    case Opcode::kGoto:
      return base + branch;
    case Opcode::kGetField:
    case Opcode::kPutField:
      return base + field_access;
    case Opcode::kInvoke: {
      if (ClassPool::IsMathIntrinsic(insn.owner, insn.member)) {
        if (insn.member == "exp" || insn.member == "log" ||
            insn.member == "pow") {
          return base + math_exp;
        }
        if (insn.member == "sqrt") return base + math_sqrt;
        return base + math_simple;
      }
      return base + invoke;
    }
    case Opcode::kReturn:
      return base + branch;
    case Opcode::kDup:
    case Opcode::kPop:
    case Opcode::kSwap:
      return base + local_access;
  }
  return base;
}

}  // namespace s2fa::jvm
