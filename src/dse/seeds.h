// Seed generation (paper §4.3.2).
//
// Two seeds per partition:
//   * performance-driven: pipeline every loop, parallel factor 32, buffer
//     bit-width 512 — may fail synthesis, but slashes iterations when it
//     doesn't;
//   * area-driven (conservative): everything off/minimal — guaranteed-ish
//     feasible, so the learner starts inside the feasible region.
// Each desired value is projected onto the nearest value the partition
// still allows.
#pragma once

#include "tuner/driver.h"
#include "tuner/space.h"

namespace s2fa::dse {

struct SeedOptions {
  std::int64_t performance_parallel = 32;
  int performance_bits = 512;
};

// Builds the seed within `space` (which may be a partition sub-space).
tuner::SeedPoint MakePerformanceSeed(const tuner::DesignSpace& space,
                                     const SeedOptions& options = {});
tuner::SeedPoint MakeAreaSeed(const tuner::DesignSpace& space);

}  // namespace s2fa::dse
