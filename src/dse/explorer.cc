#include "dse/explorer.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <memory>

#include "obs/obs.h"
#include "resilience/journal.h"
#include "support/error.h"
#include "support/logging.h"
#include "support/thread_pool.h"

namespace s2fa::dse {

namespace {

using tuner::DesignSpace;
using tuner::EvalFn;
using tuner::Point;
using tuner::TracePoint;
using tuner::TuneOptions;
using tuner::TuneResult;

std::function<bool(const tuner::ResultDatabase&)> MakeStop(
    const ExplorerOptions& options, std::size_t num_factors) {
  switch (options.stop) {
    case StopKind::kEntropy:
      return MakeEntropyStop(num_factors, options.entropy);
    case StopKind::kNoImprovement:
      return MakeNoImprovementStop(options.no_improvement_stale);
    case StopKind::kTimeOnly:
      return nullptr;
  }
  S2FA_UNREACHABLE("bad stop kind");
}

const char* StopLabel(StopKind stop) {
  switch (stop) {
    case StopKind::kEntropy: return "entropy criterion";
    case StopKind::kNoImprovement: return "no-improvement criterion";
    case StopKind::kTimeOnly: return "time limit";
  }
  S2FA_UNREACHABLE("bad stop kind");
}

}  // namespace

SpanReport ClipTuneResultToSpan(const tuner::TuneResult& result,
                                double span_minutes) {
  SpanReport report;
  for (const tuner::BestUpdate& up : result.improvements) {
    if (up.time_minutes > span_minutes) break;
    report.found = true;
    report.best_cost = up.cost;
    report.best_config = up.config;
    report.trace.push_back({up.time_minutes, up.cost});
  }
  // Commit times within a batch are not monotone (each member carries its
  // own eval_minutes), so count with a full scan rather than a break.
  for (double t : result.eval_times_minutes) {
    if (t <= span_minutes) ++report.evaluations;
  }
  return report;
}

DseResult RunS2faDse(const DesignSpace& space, const kir::Kernel& kernel,
                     const EvalFn& evaluate, const ExplorerOptions& options) {
  S2FA_REQUIRE(options.num_cores >= 1, "need at least one core");
  S2FA_REQUIRE(options.exec_threads >= 0,
               "exec_threads must be non-negative");
  S2FA_SPAN("dse.run");
  Rng rng(options.seed);

  DseResult result;
  result.log10_space_size = space.Log10Cardinality();

  // Fault-tolerance plumbing. Each scope ("train", "p0", "p1", ...) gets
  // its own ResilientEvaluator so breaker state stays per-partition, and
  // the journal keys evaluations per scope so a resumed run replays each
  // thread's stream exactly, independent of scheduling. One memoizing
  // cache is shared by the training phase and every partition — layered
  // journal -> cache -> resilience, so a journal hit never touches the
  // cache and a cache hit skips fault injection and retries. A hit
  // replays the stored outcome, simulated minutes included, keeping the
  // simulated clock bit-identical to a cache-off run.
  const resilience::FaultPlan plan(options.faults);
  resilience::EvalJournal journal;
  if (!options.journal_path.empty()) journal.Open(options.journal_path);
  cache::EvalCache eval_cache(options.cache);
  auto make_guard = [&](const std::string& scope) {
    resilience::ResilienceOptions ropt = options.resilience;
    ropt.seed ^= options.seed;
    return std::make_unique<resilience::ResilientEvaluator>(
        plan.active() ? plan.Instrument(evaluate)
                      : resilience::IgnoreAttempt(evaluate),
        ropt, scope);
  };
  auto make_eval = [&](const std::string& scope,
                       resilience::ResilientEvaluator& guard) -> EvalFn {
    EvalFn fn = guard.AsEvalFn();
    if (eval_cache.enabled()) fn = eval_cache.Wrap(std::move(fn));
    return journal.open() ? journal.Wrap(scope, std::move(fn))
                          : std::move(fn);
  };

  // --- 1. Partitioning (offline rule training; not charged to the clock).
  std::vector<Partition> partitions;
  std::unique_ptr<resilience::ResilientEvaluator> train_guard;
  if (options.enable_partitioning) {
    S2FA_SPAN("dse.train");
    auto candidates = RuleCandidateFactors(space, kernel);
    train_guard = make_guard("train");
    EvalFn train_fn = make_eval("train", *train_guard);
    auto train_eval = [&](const Point& p) {
      tuner::EvalOutcome out = train_fn(space.ToConfig(p));
      return out.feasible ? std::log(std::max(1e-9, out.cost))
                          : options.partition.infeasible_log_cost;
    };
    Rng train_rng = rng.Fork();
    auto samples = DrawTrainingSamples(space, options.training_samples,
                                       train_eval, train_rng);
    S2FA_COUNT("dse.training_samples",
               static_cast<std::int64_t>(samples.size()));
    partitions = BuildPartitions(space, candidates, samples,
                                 options.partition);
  } else {
    partitions.push_back({space, "full space"});
  }
  S2FA_COUNT("dse.partitions", static_cast<std::int64_t>(partitions.size()));

  // --- 2. Per-partition tuning (full budget; clipped by the schedule).
  const bool single = partitions.size() == 1;
  std::vector<TuneResult> tune_results(partitions.size());
  std::vector<std::unique_ptr<resilience::ResilientEvaluator>> guards(
      partitions.size());
  // A lone partition proposes `num_cores`-wide batches; give it a
  // dedicated evaluation pool so those batches really run concurrently.
  // It must be distinct from the partition pool below — a partition task
  // blocking on futures scheduled onto its own pool would deadlock.
  std::unique_ptr<ThreadPool> eval_pool;
  if (single && options.num_cores > 1) {
    eval_pool = std::make_unique<ThreadPool>(
        static_cast<std::size_t>(options.num_cores));
  }
  {
    const std::size_t pool_threads = static_cast<std::size_t>(
        options.exec_threads > 0
            ? options.exec_threads
            : std::max(1, std::min<int>(options.num_cores,
                                        static_cast<int>(
                                            partitions.size()))));
    std::vector<std::function<TuneResult()>> tasks;
    tasks.reserve(partitions.size());
    for (std::size_t i = 0; i < partitions.size(); ++i) {
      const Partition& partition = partitions[i];
      TuneOptions topt;
      topt.time_limit_minutes = options.time_limit_minutes;
      // One core per partition; a lone partition gets the whole machine
      // (that is the no-partitioning ablation and the vanilla setup).
      topt.parallel = single ? options.num_cores : 1;
      topt.eval_pool = eval_pool.get();
      topt.seed = options.seed * 1000003ULL + i * 7919ULL + 1;
      topt.techniques = options.techniques;
      if (options.enable_seeds) {
        topt.seeds.push_back(
            MakePerformanceSeed(partition.space, options.seed_values));
        topt.seeds.push_back(MakeAreaSeed(partition.space));
      }
      topt.should_stop = MakeStop(options, partition.space.num_factors());
      topt.stop_reason_label = StopLabel(options.stop);
      const std::string scope = "p" + std::to_string(i);
      guards[i] = make_guard(scope);
      EvalFn guarded = make_eval(scope, *guards[i]);
      tasks.push_back([&partition, topt, guarded = std::move(guarded)] {
        S2FA_SPAN("dse.partition");
        return tuner::Tune(partition.space, guarded, topt);
      });
    }
    if (pool_threads == 1) {
      // A lone worker drains the queue FCFS, which is exactly submission
      // order — run the tasks inline instead. Same results, and the spans
      // stay on the calling thread, so single-core profiles keep the
      // self-time-bounded-by-wall-clock invariant.
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        tune_results[i] = tasks[i]();
      }
    } else {
      ThreadPool pool(pool_threads);
      std::vector<std::future<TuneResult>> futures;
      futures.reserve(tasks.size());
      for (auto& task : tasks) {
        // Runs on a worker thread; the span lands in that thread's buffer.
        futures.push_back(pool.Submit(std::move(task)));
      }
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        tune_results[i] = futures[i].get();
      }
    }
  }

  // --- 3. Deterministic FCFS schedule of partitions onto cores.
  std::vector<double> core_clock(
      static_cast<std::size_t>(options.num_cores), 0.0);
  std::vector<TracePoint> merged;
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    PartitionOutcome outcome;
    outcome.description = partitions[i].description;
    outcome.result = tune_results[i];
    outcome.resilience = guards[i]->stats();
    result.resilience.Merge(outcome.resilience);

    auto core = std::min_element(core_clock.begin(), core_clock.end());
    outcome.start_minutes = *core;
    S2FA_OBSERVE("dse.queue_wait_minutes", outcome.start_minutes);
    S2FA_GAUGE_MAX("dse.queue_wait_max_minutes", outcome.start_minutes);
    const double allowed = options.time_limit_minutes - outcome.start_minutes;
    if (allowed <= 0) {
      outcome.scheduled = false;
      S2FA_COUNT("dse.partitions_skipped", 1);
      result.partitions.push_back(std::move(outcome));
      continue;
    }
    double used = tune_results[i].elapsed_minutes;
    if (used > allowed) {
      used = allowed;
      outcome.truncated = true;
      S2FA_COUNT("dse.partitions_truncated", 1);
    }
    outcome.end_minutes = outcome.start_minutes + used;
    *core = outcome.end_minutes;

    // Clip the partition's contribution to its scheduled span: the best
    // (cost, config) *pair* found within it — never the final config
    // paired with an earlier cost — and the evaluations actually
    // committed inside it, not a time-proportional estimate.
    SpanReport report = ClipTuneResultToSpan(tune_results[i], used);
    for (const TracePoint& tp : report.trace) {
      merged.push_back({outcome.start_minutes + tp.time_minutes,
                        tp.best_cost});
    }
    outcome.clipped_best_cost = report.best_cost;
    outcome.clipped_best_config = report.best_config;
    outcome.clipped_evaluations = report.evaluations;
    if (report.found && report.best_cost < result.best_cost) {
      result.best_cost = report.best_cost;
      result.found_feasible = true;
      result.best_config = report.best_config;
    }
    result.evaluations += report.evaluations;
    result.partitions.push_back(std::move(outcome));
  }

  // --- 4. Budget reclaim (adaptive scheduler): every core-tail an
  // early-stopped partition freed goes to a central ledger and is
  // re-granted, in preemptible slices, to the partition with the best
  // recent improvement rate. Each recipient continues exploring its
  // sub-space in a resumable TuneSession under a fresh stream seed,
  // warm-started from its main-run best, journaled/cached/guarded under
  // its own "r<i>" scope. The FCFS-phase trajectories above are never
  // touched, so the adaptive result can only match or beat FCFS; with
  // early stopping disabled no core frees early, the ledger stays empty,
  // and the two schedules are identical.
  result.scheduler = options.scheduler;
  if (options.scheduler == SchedulerKind::kAdaptive) {
    std::vector<std::unique_ptr<resilience::ResilientEvaluator>> rguards(
        partitions.size());
    std::vector<std::unique_ptr<tuner::TuneSession>> sessions(
        partitions.size());
    std::vector<ReclaimJob> jobs;
    jobs.reserve(partitions.size());
    for (std::size_t i = 0; i < partitions.size(); ++i) {
      const PartitionOutcome& outcome = result.partitions[i];
      // A truncated partition's main run already owns a core up to the
      // limit; its sequential continuation could never start.
      if (outcome.truncated) continue;
      TuneOptions topt;
      topt.time_limit_minutes = options.time_limit_minutes;
      topt.parallel = 1;
      // A distinct stream from the main run's.
      topt.seed = options.seed * 1000003ULL + i * 7919ULL + 500009ULL;
      topt.techniques = options.techniques;
      if (outcome.scheduled && outcome.result.found_feasible) {
        topt.seeds.push_back({outcome.result.best, "reclaim warm start"});
      } else if (options.enable_seeds) {
        // Never-admitted partitions start like a late FCFS admission.
        topt.seeds.push_back(
            MakePerformanceSeed(partitions[i].space, options.seed_values));
        topt.seeds.push_back(MakeAreaSeed(partitions[i].space));
      }
      topt.should_stop = MakeStop(options, partitions[i].space.num_factors());
      topt.stop_reason_label = StopLabel(options.stop);
      const std::string scope = "r" + std::to_string(i);
      rguards[i] = make_guard(scope);
      sessions[i] = std::make_unique<tuner::TuneSession>(
          partitions[i].space, make_eval(scope, *rguards[i]), topt);
      ReclaimJob job;
      job.partition = i;
      job.session = sessions[i].get();
      job.initial_rate =
          outcome.scheduled ? MainImprovementRate(outcome.result) : 0;
      job.baseline_best = outcome.clipped_best_cost;
      job.earliest_start_minutes = outcome.scheduled ? outcome.end_minutes : 0;
      jobs.push_back(std::move(job));
    }

    ThreadPool reclaim_pool(static_cast<std::size_t>(
        options.exec_threads > 0
            ? options.exec_threads
            : std::max(1, std::min<int>(options.num_cores,
                                        std::max<int>(
                                            1, static_cast<int>(
                                                   jobs.size()))))));
    ScheduleResult sched =
        RunBudgetReclaim(std::move(jobs), core_clock,
                         options.time_limit_minutes, options.sched,
                         reclaim_pool);
    result.schedule = sched.stats;
    result.reclaim_grants = sched.grants;

    // Fold each recipient's grant-window evaluations into the merged
    // global-time picture.
    for (std::size_t i = 0; i < partitions.size(); ++i) {
      if (sessions[i] == nullptr) continue;
      if (rguards[i] != nullptr) {
        result.resilience.Merge(rguards[i]->stats());
      }
      if (sessions[i]->evaluations() == 0) continue;
      std::vector<ReclaimGrant> mine;
      for (const ReclaimGrant& grant : sched.grants) {
        if (grant.partition == i) mine.push_back(grant);
      }
      if (mine.empty()) continue;
      PartitionOutcome& outcome = result.partitions[i];
      outcome.reclaim_grants = mine.size();
      for (const ReclaimGrant& grant : mine) {
        outcome.reclaim_minutes += grant.used_minutes;
      }
      tuner::TuneResult rtr = sessions[i]->Result();
      for (const tuner::BestUpdate& up : rtr.improvements) {
        auto global = MapSessionTimeToGlobal(mine, up.time_minutes);
        if (!global || *global > options.time_limit_minutes) continue;
        merged.push_back({*global, up.cost});
        if (up.cost < outcome.reclaim_best_cost) {
          outcome.reclaim_best_cost = up.cost;
        }
        if (up.cost < result.best_cost) {
          result.best_cost = up.cost;
          result.found_feasible = true;
          result.best_config = up.config;
        }
      }
      for (double t : rtr.eval_times_minutes) {
        auto global = MapSessionTimeToGlobal(mine, t);
        if (global && *global <= options.time_limit_minutes) {
          ++outcome.reclaim_evaluations;
        }
      }
      result.evaluations += outcome.reclaim_evaluations;
      result.schedule.reclaim_evaluations += outcome.reclaim_evaluations;
    }
  }

  std::sort(merged.begin(), merged.end(),
            [](const TracePoint& a, const TracePoint& b) {
              return a.time_minutes < b.time_minutes;
            });
  double best = tuner::kInfeasibleCost;
  for (const TracePoint& tp : merged) {
    if (tp.best_cost < best) {
      best = tp.best_cost;
      result.trace.push_back({tp.time_minutes, best});
    }
  }
  result.trace = tuner::DedupTrace(std::move(result.trace));
  for (const auto& outcome : result.partitions) {
    result.elapsed_minutes =
        std::max(result.elapsed_minutes, outcome.end_minutes);
    if (obs::Enabled() && outcome.scheduled) {
      S2FA_COUNT("dse.stop." + outcome.result.stop_reason, 1);
    }
  }
  // elapsed_minutes keeps the paper's meaning — when the entropy criterion
  // terminated the last scheduled partition; reclaim grants reinvest the
  // freed tail afterwards and are accounted separately.
  if (options.scheduler == SchedulerKind::kAdaptive) {
    result.schedule.exploration_end_minutes =
        std::max(result.schedule.exploration_end_minutes,
                 result.elapsed_minutes);
  }
  if (train_guard != nullptr) {
    result.resilience.Merge(train_guard->stats());
  }
  if (journal.open()) {
    result.journal_resumed = journal.resumed();
    result.journal_hits = journal.hits();
    result.journal_entries = journal.entries();
    S2FA_COUNT("dse.journal_hits",
               static_cast<std::int64_t>(result.journal_hits));
  }
  if (result.resilience.exhausted > 0 || result.resilience.retries > 0) {
    S2FA_LOG_INFO("dse resilience: " << result.resilience.retries
                                     << " retries, "
                                     << result.resilience.exhausted
                                     << " points degraded, "
                                     << result.resilience.breaker_trips
                                     << " breaker trips");
  }
  result.cache_stats = eval_cache.stats();
  if (result.cache_stats.hits + result.cache_stats.inflight_joins > 0) {
    S2FA_LOG_INFO("dse cache: "
                  << result.cache_stats.hits << " hits + "
                  << result.cache_stats.inflight_joins << " joins / "
                  << result.cache_stats.lookups << " lookups, "
                  << result.cache_stats.minutes_saved
                  << " simulated minutes not re-paid");
  }
  return result;
}

DseResult RunVanillaOpenTuner(const DesignSpace& space,
                              const EvalFn& evaluate,
                              const ExplorerOptions& options) {
  S2FA_REQUIRE(options.num_cores >= 1, "need at least one core");
  S2FA_SPAN("dse.vanilla");

  // The same evaluation stack as the S2FA path — journal -> cache ->
  // resilience -> raw black box — under a single "vanilla" scope, so
  // fault injection, checkpoint/resume, and memoization all apply to the
  // baseline instead of being silently dropped.
  const resilience::FaultPlan plan(options.faults);
  resilience::EvalJournal journal;
  if (!options.journal_path.empty()) journal.Open(options.journal_path);
  cache::EvalCache eval_cache(options.cache);
  resilience::ResilienceOptions ropt = options.resilience;
  ropt.seed ^= options.seed;
  resilience::ResilientEvaluator guard(
      plan.active() ? plan.Instrument(evaluate)
                    : resilience::IgnoreAttempt(evaluate),
      ropt, "vanilla");
  EvalFn fn = guard.AsEvalFn();
  if (eval_cache.enabled()) fn = eval_cache.Wrap(std::move(fn));
  if (journal.open()) fn = journal.Wrap("vanilla", std::move(fn));

  std::unique_ptr<ThreadPool> eval_pool;
  if (options.num_cores > 1) {
    eval_pool = std::make_unique<ThreadPool>(
        static_cast<std::size_t>(options.num_cores));
  }
  TuneOptions topt;
  topt.time_limit_minutes = options.time_limit_minutes;
  topt.parallel = options.num_cores;
  topt.homogeneous_batches = true;  // footnote 3: one technique's top-8
  topt.seed = options.seed;
  topt.techniques = options.techniques;
  topt.eval_pool = eval_pool.get();
  TuneResult tuned = tuner::Tune(space, fn, topt);

  DseResult result;
  result.log10_space_size = space.Log10Cardinality();
  result.found_feasible = tuned.found_feasible;
  result.best_config = tuned.best_config;
  result.best_cost = tuned.best_cost;
  result.elapsed_minutes = tuned.elapsed_minutes;
  result.evaluations = tuned.evaluations;
  result.trace = tuner::DedupTrace(tuned.trace);
  result.resilience = guard.stats();
  if (journal.open()) {
    result.journal_resumed = journal.resumed();
    result.journal_hits = journal.hits();
    result.journal_entries = journal.entries();
    S2FA_COUNT("dse.journal_hits",
               static_cast<std::int64_t>(result.journal_hits));
  }
  result.cache_stats = eval_cache.stats();
  PartitionOutcome outcome;
  outcome.description = "full space (vanilla OpenTuner)";
  outcome.start_minutes = 0;
  outcome.end_minutes = tuned.elapsed_minutes;
  outcome.result = std::move(tuned);
  outcome.clipped_best_cost = result.best_cost;
  outcome.clipped_best_config = result.best_config;
  outcome.clipped_evaluations = result.evaluations;
  outcome.resilience = result.resilience;
  result.partitions.push_back(std::move(outcome));
  return result;
}

DseResult RunVanillaOpenTuner(const DesignSpace& space,
                              const EvalFn& evaluate,
                              double time_limit_minutes, int num_cores,
                              std::uint64_t seed) {
  ExplorerOptions options;
  options.time_limit_minutes = time_limit_minutes;
  options.num_cores = num_cores;
  options.seed = seed;
  return RunVanillaOpenTuner(space, evaluate, options);
}

}  // namespace s2fa::dse
