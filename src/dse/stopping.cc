#include "dse/stopping.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "obs/obs.h"
#include "support/error.h"

namespace s2fa::dse {

double UphillEntropy(const tuner::ResultDatabase& db,
                     std::size_t num_factors) {
  const auto& records = db.records();
  std::vector<double> mutated(num_factors, 0.0);
  std::vector<double> uphill(num_factors, 0.0);
  for (std::size_t k = 1; k < records.size(); ++k) {
    const auto& rec = records[k];
    const auto& prev = records[k - 1];
    // Uphill: strictly better than the previous consecutive result.
    const bool is_uphill =
        rec.feasible && (!prev.feasible || rec.cost < prev.cost);
    for (std::size_t f : rec.changed_factors) {
      if (f >= num_factors) continue;
      mutated[f] += 1;
      if (is_uphill) uphill[f] += 1;
    }
  }
  double entropy = 0;
  for (std::size_t f = 0; f < num_factors; ++f) {
    if (mutated[f] <= 0) continue;
    double p = uphill[f] / mutated[f];
    if (p > 0) entropy -= p * std::log(p);
  }
  return entropy;
}

bool EntropyDeltaConverged(double delta, double theta) {
  return delta <= theta + kEntropyThetaSlack * std::max(1.0, theta);
}

std::function<bool(const tuner::ResultDatabase&)> MakeEntropyStop(
    std::size_t num_factors, const EntropyStopOptions& options) {
  S2FA_REQUIRE(options.theta >= 0, "theta must be non-negative");
  S2FA_REQUIRE(options.patience >= 1, "patience must be >= 1");
  struct State {
    double last_entropy = -1;
    int stable = 0;
  };
  auto state = std::make_shared<State>();
  return [num_factors, options, state](const tuner::ResultDatabase& db) {
    double h = UphillEntropy(db, num_factors);
    S2FA_OBSERVE("dse.entropy", h);
    S2FA_GAUGE("dse.entropy_last", h);
    if (state->last_entropy >= 0 &&
        EntropyDeltaConverged(std::fabs(h - state->last_entropy),
                              options.theta)) {
      ++state->stable;
    } else {
      state->stable = 0;  // a pulse resets the window (paper: avoid pulses)
    }
    state->last_entropy = h;
    const std::size_t min_records = std::max(
        options.min_records,
        static_cast<std::size_t>(options.min_records_per_factor *
                                 static_cast<double>(num_factors)));
    return db.size() >= min_records && state->stable >= options.patience;
  };
}

std::function<bool(const tuner::ResultDatabase&)> MakeNoImprovementStop(
    std::size_t max_stale) {
  S2FA_REQUIRE(max_stale >= 1, "max_stale must be >= 1");
  struct State {
    std::size_t last_improvement_count = 0;
    std::size_t stale = 0;
    std::size_t last_size = 0;
  };
  auto state = std::make_shared<State>();
  return [max_stale, state](const tuner::ResultDatabase& db) {
    std::size_t improvements = db.trace().size();
    if (improvements > state->last_improvement_count) {
      state->last_improvement_count = improvements;
      state->stale = 0;
    } else if (db.size() > state->last_size) {
      ++state->stale;
    }
    state->last_size = db.size();
    return state->stale >= max_stale;
  };
}

}  // namespace s2fa::dse
