// Design-space partitioning via a binary decision tree (paper §4.3.1).
//
// "Some-for-all" static partitioning: rule candidates come from the two
// methodologies the paper gives —
//   1. loop hierarchy: pipeline/parallel factors of loops, outer levels
//      first (similar loop levels behave similarly across applications);
//   2. RDD transformation semantics: factors of the template-inserted
//      outermost loop (its scheduling is what map/reduce fixes).
// A regression decision tree over offline training samples (variance
// impurity, information-gain splits, Eq. 1) ranks and combines the rules;
// each root-to-leaf path is one partition. Partitions are disjoint and
// cover the space, so optimality is preserved.
//
// A partition is materialized as a sub-DesignSpace: same factors, value
// lists restricted by the path constraints — so the generic tuner runs on
// a partition unchanged.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "kir/kernel.h"
#include "tuner/space.h"

namespace s2fa::dse {

using tuner::DesignSpace;
using tuner::Point;

struct TrainingSample {
  Point point;
  double log_cost = 0;  // log latency; infeasible samples use a penalty
};

struct Partition {
  DesignSpace space;           // restricted value lists
  std::string description;     // conjunction of path rules
};

struct PartitionOptions {
  int target_partitions = 12;
  int min_samples_per_leaf = 6;
  // Penalty log-cost assigned to infeasible training samples (clusters the
  // infeasible region into its own partitions).
  double infeasible_log_cost = 30.0;
};

// Candidate split factors per the two rule methodologies, most-preferred
// first. `kernel` supplies loop depths and the task loop id.
std::vector<std::size_t> RuleCandidateFactors(const DesignSpace& space,
                                              const kir::Kernel& kernel);

// Trains the tree on `samples` and returns the leaf partitions (disjoint,
// covering). If no split gains information the whole space is returned as
// a single partition.
std::vector<Partition> BuildPartitions(
    const DesignSpace& space, const std::vector<std::size_t>& candidates,
    const std::vector<TrainingSample>& samples,
    const PartitionOptions& options = {});

// Draws `count` uniform training samples, scoring each with `eval_log_cost`
// (offline: not charged to the DSE clock — the paper trains its rules on
// pre-collected data from applications with similar loop hierarchies).
std::vector<TrainingSample> DrawTrainingSamples(
    const DesignSpace& space, int count,
    const std::function<double(const Point&)>& eval_log_cost, Rng& rng);

// Checks the partition invariant: every point of `space` lies in exactly
// one partition (probabilistically, via `trials` random points).
bool PartitionsDisjointAndCovering(const DesignSpace& space,
                                   const std::vector<Partition>& partitions,
                                   int trials, Rng& rng);

}  // namespace s2fa::dse
