#include "dse/partition.h"

#include "kir/analysis.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "support/error.h"

namespace s2fa::dse {

namespace {

using tuner::Factor;
using tuner::FactorKind;

double Variance(const std::vector<const TrainingSample*>& samples) {
  if (samples.size() < 2) return 0.0;
  double mean = 0;
  for (const auto* s : samples) mean += s->log_cost;
  mean /= static_cast<double>(samples.size());
  double var = 0;
  for (const auto* s : samples) {
    var += (s->log_cost - mean) * (s->log_cost - mean);
  }
  return var / static_cast<double>(samples.size());
}

// A growing tree leaf: the sub-space (value-index masks per factor), its
// samples, and its description.
struct Leaf {
  // Allowed value indices (into the *original* factor value lists).
  std::vector<std::vector<std::size_t>> allowed;
  std::vector<const TrainingSample*> samples;
  std::string description = "full space";
};

struct SplitChoice {
  bool valid = false;
  std::size_t factor = 0;
  std::size_t cut = 0;      // position within the leaf's allowed list
  double gain = 0;
};

// Best variance-impurity split of `leaf` over the candidate factors
// (Eq. 1 of the paper).
SplitChoice BestSplit(const DesignSpace& space, const Leaf& leaf,
                      const std::vector<std::size_t>& candidates,
                      int min_samples) {
  SplitChoice best;
  const double total_var = Variance(leaf.samples);
  const double n = static_cast<double>(leaf.samples.size());
  if (leaf.samples.size() < 2 * static_cast<std::size_t>(min_samples)) {
    return best;
  }
  for (std::size_t f : candidates) {
    const auto& allowed = leaf.allowed[f];
    if (allowed.size() < 2) continue;
    // Cut between allowed[cut-1] and allowed[cut].
    for (std::size_t cut = 1; cut < allowed.size(); ++cut) {
      std::vector<const TrainingSample*> left, right;
      for (const auto* s : leaf.samples) {
        // Position of the sample's value index within the allowed list.
        std::size_t value_index = s->point[f];
        auto it = std::find(allowed.begin(), allowed.end(), value_index);
        S2FA_CHECK(it != allowed.end(), "sample escaped its leaf");
        if (static_cast<std::size_t>(it - allowed.begin()) < cut) {
          left.push_back(s);
        } else {
          right.push_back(s);
        }
      }
      if (left.size() < static_cast<std::size_t>(min_samples) ||
          right.size() < static_cast<std::size_t>(min_samples)) {
        continue;
      }
      double gain = total_var -
                    (static_cast<double>(left.size()) / n) * Variance(left) -
                    (static_cast<double>(right.size()) / n) * Variance(right);
      if (gain > best.gain + 1e-12) {
        best.valid = true;
        best.factor = f;
        best.cut = cut;
        best.gain = gain;
      }
    }
  }
  return best;
}

std::string RuleText(const DesignSpace& space, std::size_t factor,
                     const std::vector<std::size_t>& allowed,
                     std::size_t cut, bool left) {
  const Factor& f = space.factors[factor];
  if (left) {
    return f.name + " < " +
           std::to_string(f.values[allowed[cut]]);
  }
  return f.name + " >= " + std::to_string(f.values[allowed[cut]]);
}

}  // namespace

std::vector<std::size_t> RuleCandidateFactors(const DesignSpace& space,
                                              const kir::Kernel& kernel) {
  // Loop depth map from the kernel.
  std::map<int, int> depth;
  for (const kir::Stmt* loop : kernel.Loops()) depth[loop->loop_id()] = 0;
  {
    // Recompute depths from the loop tree.
    std::function<void(const kir::Stmt&, int)> walk = [&](const kir::Stmt& s,
                                                          int d) {
      if (s.kind() == kir::StmtKind::kFor) {
        depth[s.loop_id()] = d;
        walk(*s.body(), d + 1);
        return;
      }
      if (s.kind() == kir::StmtKind::kIf) {
        walk(*s.then_stmt(), d);
        if (s.else_stmt()) walk(*s.else_stmt(), d);
      } else if (s.kind() == kir::StmtKind::kBlock) {
        for (const auto& st : s.stmts()) walk(*st, d);
      }
    };
    walk(*kernel.body, 0);
  }

  struct Scored {
    std::size_t index;
    int priority;  // lower = earlier
  };
  std::vector<Scored> scored;
  for (std::size_t i = 0; i < space.factors.size(); ++i) {
    const Factor& f = space.factors[i];
    if (f.kind != FactorKind::kLoopPipeline &&
        f.kind != FactorKind::kLoopParallel) {
      continue;  // the rule methodologies only involve loop scheduling
    }
    int d = depth.count(f.loop_id) != 0 ? depth[f.loop_id] : 99;
    // Methodology 2: the template-inserted outermost loop comes first.
    int priority = (f.loop_id == kernel.task_loop_id ? 0 : 10) + d * 2 +
                   (f.kind == FactorKind::kLoopPipeline ? 0 : 1);
    scored.push_back({i, priority});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.priority < b.priority;
                   });
  std::vector<std::size_t> out;
  out.reserve(scored.size());
  for (const auto& s : scored) out.push_back(s.index);
  return out;
}

std::vector<TrainingSample> DrawTrainingSamples(
    const DesignSpace& space, int count,
    const std::function<double(const Point&)>& eval_log_cost, Rng& rng) {
  S2FA_REQUIRE(count > 0, "need at least one training sample");
  S2FA_REQUIRE(eval_log_cost != nullptr, "no training evaluator");
  std::vector<TrainingSample> samples;
  samples.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    TrainingSample s;
    s.point = space.RandomPoint(rng);
    s.log_cost = eval_log_cost(s.point);
    samples.push_back(std::move(s));
  }
  return samples;
}

std::vector<Partition> BuildPartitions(
    const DesignSpace& space, const std::vector<std::size_t>& candidates,
    const std::vector<TrainingSample>& samples,
    const PartitionOptions& options) {
  S2FA_REQUIRE(options.target_partitions >= 1, "need at least one partition");

  Leaf root;
  root.allowed.resize(space.num_factors());
  for (std::size_t i = 0; i < space.num_factors(); ++i) {
    for (std::size_t v = 0; v < space.factors[i].values.size(); ++v) {
      root.allowed[i].push_back(v);
    }
  }
  for (const auto& s : samples) {
    space.ValidatePoint(s.point);
    root.samples.push_back(&s);
  }

  std::vector<Leaf> leaves{std::move(root)};
  // Best-first growth until the target leaf count (or no useful split).
  while (static_cast<int>(leaves.size()) < options.target_partitions) {
    double best_gain = 0;
    std::size_t best_leaf = 0;
    SplitChoice best_choice;
    for (std::size_t l = 0; l < leaves.size(); ++l) {
      SplitChoice choice = BestSplit(space, leaves[l], candidates,
                                     options.min_samples_per_leaf);
      if (choice.valid && choice.gain > best_gain) {
        best_gain = choice.gain;
        best_leaf = l;
        best_choice = choice;
      }
    }
    if (!best_choice.valid) {
      // No information-gain split left. The paper still needs at least as
      // many partitions as CPU cores ("some-for-all"), so fall back to
      // splitting the most-populated leaf at the median of the highest-
      // priority rule factor that still has multiple values.
      bool forced = false;
      std::size_t fallback_leaf = 0;
      std::size_t best_count = 0;
      for (std::size_t l = 0; l < leaves.size(); ++l) {
        if (leaves[l].samples.size() > best_count) {
          best_count = leaves[l].samples.size();
          fallback_leaf = l;
        }
      }
      for (std::size_t f : candidates) {
        if (leaves[fallback_leaf].allowed[f].size() >= 2) {
          best_choice.valid = true;
          best_choice.factor = f;
          best_choice.cut = leaves[fallback_leaf].allowed[f].size() / 2;
          best_choice.gain = 0;
          best_leaf = fallback_leaf;
          forced = true;
          break;
        }
      }
      if (!forced) break;
      // Re-partition samples permissively (a forced split may be lopsided).
    }

    Leaf& leaf = leaves[best_leaf];
    Leaf left = leaf;
    Leaf right = leaf;
    const auto& allowed = leaf.allowed[best_choice.factor];
    left.allowed[best_choice.factor] =
        std::vector<std::size_t>(allowed.begin(),
                                 allowed.begin() +
                                     static_cast<std::ptrdiff_t>(
                                         best_choice.cut));
    right.allowed[best_choice.factor] =
        std::vector<std::size_t>(allowed.begin() +
                                     static_cast<std::ptrdiff_t>(
                                         best_choice.cut),
                                 allowed.end());
    left.samples.clear();
    right.samples.clear();
    for (const auto* s : leaf.samples) {
      std::size_t value_index = s->point[best_choice.factor];
      auto it = std::find(allowed.begin(), allowed.end(), value_index);
      if (static_cast<std::size_t>(it - allowed.begin()) < best_choice.cut) {
        left.samples.push_back(s);
      } else {
        right.samples.push_back(s);
      }
    }
    std::string base = leaf.description == "full space"
                           ? ""
                           : leaf.description + " && ";
    left.description =
        base + RuleText(space, best_choice.factor, allowed, best_choice.cut,
                        /*left=*/true);
    right.description =
        base + RuleText(space, best_choice.factor, allowed, best_choice.cut,
                        /*left=*/false);
    leaves[best_leaf] = std::move(left);
    leaves.push_back(std::move(right));
  }

  // Materialize leaves as sub-spaces.
  std::vector<Partition> partitions;
  partitions.reserve(leaves.size());
  for (const auto& leaf : leaves) {
    Partition p;
    p.description = leaf.description;
    p.space.factors.reserve(space.num_factors());
    for (std::size_t i = 0; i < space.num_factors(); ++i) {
      Factor f = space.factors[i];
      std::vector<std::int64_t> values;
      values.reserve(leaf.allowed[i].size());
      for (std::size_t v : leaf.allowed[i]) {
        values.push_back(space.factors[i].values[v]);
      }
      f.values = std::move(values);
      p.space.factors.push_back(std::move(f));
    }
    partitions.push_back(std::move(p));
  }
  return partitions;
}

bool PartitionsDisjointAndCovering(const DesignSpace& space,
                                   const std::vector<Partition>& partitions,
                                   int trials, Rng& rng) {
  for (int t = 0; t < trials; ++t) {
    Point p = space.RandomPoint(rng);
    int members = 0;
    for (const auto& partition : partitions) {
      bool inside = true;
      for (std::size_t i = 0; i < space.num_factors(); ++i) {
        std::int64_t value = space.factors[i].values[p[i]];
        const auto& vals = partition.space.factors[i].values;
        if (std::find(vals.begin(), vals.end(), value) == vals.end()) {
          inside = false;
          break;
        }
      }
      if (inside) ++members;
    }
    if (members != 1) return false;
  }
  return true;
}

}  // namespace s2fa::dse
