// Early stopping criteria (paper §4.3.3).
//
// The S2FA criterion watches the Shannon entropy of the per-factor uphill
// probabilities: P(D_i^u | t_j) is the experimental probability that
// mutating factor t_j yields an uphill (better-than-previous) result. The
// partition's DSE stops once |H(D_i) − H(D_{i−1})| ≤ θ for N consecutive
// iterations — i.e. once the uncertainty about where improvement comes
// from has stopped changing.
//
// The trivial criterion (evaluated in §5.2 as the strawman) stops after a
// fixed number of iterations without improvement.
#pragma once

#include <cstddef>
#include <functional>

#include "tuner/result.h"

namespace s2fa::dse {

struct EntropyStopOptions {
  double theta = 0.1;        // entropy-delta threshold
  int patience = 3;          // consecutive below-threshold iterations (N)
  std::size_t min_records = 8;   // don't stop before this much evidence
  // Evidence scales with the number of factors: the conditional
  // probabilities P(D^u | t_j) need at least ~one observation per factor
  // before H(D) is meaningful. Effective minimum =
  // max(min_records, min_records_per_factor * num_factors).
  double min_records_per_factor = 0.4;
};

// Computes H(D_i) from the database records (Eq. 2's summand).
double UphillEntropy(const tuner::ResultDatabase& db,
                     std::size_t num_factors);

// Tolerance of the |ΔH| ≤ θ comparison. Entropy deltas are sums of
// p·log(p) terms, so a delta that is mathematically equal to θ can land
// on either side of it depending on FP contraction / -ffast-math /
// platform libm rounding — and the stop decision (hence the whole
// schedule) would flip with it. Anything within this slack of θ counts
// as converged. Scaled by θ for large thresholds, absolute for small.
inline constexpr double kEntropyThetaSlack = 1e-9;

// True when an entropy delta counts as "within θ" under the slack above.
bool EntropyDeltaConverged(double delta, double theta);

// Stateful criterion usable as TuneOptions::should_stop. Copyable state is
// held in a shared pointer so the std::function can be copied.
std::function<bool(const tuner::ResultDatabase&)> MakeEntropyStop(
    std::size_t num_factors, const EntropyStopOptions& options = {});

// Trivial criterion: stop after `max_stale` iterations without a new best.
std::function<bool(const tuner::ResultDatabase&)> MakeNoImprovementStop(
    std::size_t max_stale = 10);

}  // namespace s2fa::dse
