#include "dse/seeds.h"

#include <algorithm>
#include <cstdlib>

#include "merlin/design.h"
#include "support/error.h"

namespace s2fa::dse {

namespace {

using tuner::DesignSpace;
using tuner::Factor;
using tuner::FactorKind;
using tuner::Point;

// Index of the allowed value closest to `desired`. Equidistant values are
// resolved toward the LOWER value — cheaper in area and never worse for
// feasibility — instead of whichever the factor's value ordering happened
// to put first.
std::size_t NearestIndex(const Factor& factor, std::int64_t desired) {
  S2FA_CHECK(!factor.values.empty(), "factor with no values");
  std::size_t best = 0;
  std::int64_t best_dist = std::llabs(factor.values[0] - desired);
  for (std::size_t i = 1; i < factor.values.size(); ++i) {
    std::int64_t dist = std::llabs(factor.values[i] - desired);
    if (dist < best_dist ||
        (dist == best_dist && factor.values[i] < factor.values[best])) {
      best_dist = dist;
      best = i;
    }
  }
  return best;
}

}  // namespace

tuner::SeedPoint MakePerformanceSeed(const DesignSpace& space,
                                     const SeedOptions& options) {
  Point p(space.num_factors(), 0);
  for (std::size_t i = 0; i < space.num_factors(); ++i) {
    const Factor& f = space.factors[i];
    switch (f.kind) {
      case FactorKind::kLoopTile:
        p[i] = NearestIndex(f, 1);  // no tiling; parallelism does the work
        break;
      case FactorKind::kLoopParallel:
        p[i] = NearestIndex(f, options.performance_parallel);
        break;
      case FactorKind::kLoopPipeline:
        p[i] = NearestIndex(
            f, static_cast<std::int64_t>(merlin::PipelineMode::kOn));
        break;
      case FactorKind::kBufferBits:
        p[i] = NearestIndex(f, options.performance_bits);
        break;
    }
  }
  return {p, "performance-driven"};
}

tuner::SeedPoint MakeAreaSeed(const DesignSpace& space) {
  Point p(space.num_factors(), 0);
  for (std::size_t i = 0; i < space.num_factors(); ++i) {
    const Factor& f = space.factors[i];
    switch (f.kind) {
      case FactorKind::kLoopTile:
      case FactorKind::kLoopParallel:
        p[i] = NearestIndex(f, 1);
        break;
      case FactorKind::kLoopPipeline:
        p[i] = NearestIndex(
            f, static_cast<std::int64_t>(merlin::PipelineMode::kOff));
        break;
      case FactorKind::kBufferBits:
        // The minimum width the partition allows (element width if free).
        p[i] = NearestIndex(f, 0);
        break;
    }
  }
  return {p, "area-driven"};
}

}  // namespace s2fa::dse
