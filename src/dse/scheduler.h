// Adaptive partition scheduler: budget ledger + reclaimed-slice grants.
//
// The FCFS schedule admits partitions to simulated cores first-come-first-
// served and lets each run until its entropy stop; whatever budget an
// early-stopped partition leaves on its core is simply lost. The adaptive
// scheduler keeps that admission discipline — so with early stopping
// disabled the two schedules are *identical* — but returns every freed
// core-tail to a central ledger and re-grants it, in preemptible
// `slice_minutes` quanta, to the live partition with the best recent
// improvement rate (ties broken by partition id for determinism). Each
// recipient advances a resumable tuner::TuneSession of its own sub-space,
// warm-started from the partition's main-run best, so reclaimed minutes
// buy extra refinement where improvement is still being found instead of
// evaporating. The merged result can therefore only match or beat FCFS:
// the main-phase trajectories are unchanged and reclaim grants add points.
//
// Determinism: every decision depends only on simulated outcomes — core
// free times, session clocks, improvement rates — never on real thread
// timing. Slices are planned sequentially in waves, executed concurrently
// on a ThreadPool, and committed in plan order, so the grant sequence is
// bit-identical across pool sizes.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "tuner/driver.h"

namespace s2fa {
class ThreadPool;
}

namespace s2fa::dse {

enum class SchedulerKind { kFcfs, kAdaptive };

// Parses "fcfs" / "adaptive"; nullopt on anything else.
std::optional<SchedulerKind> ParseSchedulerKind(const std::string& text);
const char* SchedulerKindName(SchedulerKind kind);

struct SchedulerOptions {
  // Quantum of one reclaimed-budget grant (simulated minutes). Smaller
  // slices react faster to improvement-rate changes; every slice boundary
  // is a potential preemption.
  double slice_minutes = 20;
};

// One reclaimed-budget grant, as decided by the scheduler.
struct ReclaimGrant {
  std::size_t partition = 0;
  int core = 0;
  double start_minutes = 0;          // global simulated time
  double slice_minutes = 0;          // budget granted
  double used_minutes = 0;           // budget actually consumed (may overshoot)
  double session_start_minutes = 0;  // recipient's session clock at grant start
  bool finished = false;   // the session's stop criterion fired in this slice
  bool preempted = false;  // slice expired while the session was still live
};

struct ScheduleStats {
  std::size_t grants = 0;
  std::size_t preemptions = 0;
  double reclaimed_minutes = 0;  // core-tails returned to the ledger
  double regranted_minutes = 0;  // reclaimed minutes actually re-spent
  double idle_minutes = 0;       // reclaimed but unusable (gaps + leftovers)
  double exploration_end_minutes = 0;  // last grant end, clamped to the limit
  std::size_t reclaim_evaluations = 0;  // committed inside the limit
};

struct ScheduleResult {
  std::vector<ReclaimGrant> grants;
  ScheduleStats stats;
};

// One candidate for reclaimed budget: a resumable tuning stream over a
// partition's sub-space. `session` is owned by the caller and advanced by
// the scheduler; `initial_rate` seeds the priority before the stream has
// run (derived from the partition's main run via MainImprovementRate);
// `baseline_best` is the partition's main-run best cost, so the warm-start
// seed replaying that best is not mistaken for an improvement.
struct ReclaimJob {
  std::size_t partition = 0;
  tuner::TuneSession* session = nullptr;
  double initial_rate = 0;
  double baseline_best = tuner::kInfeasibleCost;
  // No grant may start before this global time. The explorer sets it to
  // the partition's main-run end so the reclaim stream is a sequential
  // continuation — its warm-start seed (the main run's best) then always
  // exists before the stream's first grant.
  double earliest_start_minutes = 0;
};

// Recent improvement rate of a finished main run: relative cost decrease
// per simulated minute over the back half of the run (log-cost delta /
// minutes). 0 when the back half found nothing; large when it found the
// first feasible point. This is the priority a partition starts with in
// the reclaim phase.
double MainImprovementRate(const tuner::TuneResult& result);

// Rate of one completed grant: log-cost improvement per used minute, with
// the infeasible→feasible transition scored as a large finite rate so it
// outranks any incremental refinement.
double GrantImprovementRate(double best_before, double best_after,
                            double used_minutes);

// Maps a session-clock time to global minutes through the recipient's
// grant windows (grants must belong to one partition, in grant order).
// nullopt when the time falls outside every granted window.
std::optional<double> MapSessionTimeToGlobal(
    const std::vector<ReclaimGrant>& grants, double session_minutes);

// Re-grants the budget the FCFS schedule left unused. `core_free_minutes`
// is the per-core clock after the FCFS pass; only cores that actually
// hosted work and freed up before the limit contribute to the ledger
// (untouched cores are idle capacity, not reclaimed budget — this keeps a
// run with early stopping disabled grant-free and hence FCFS-identical).
// Jobs' sessions are advanced in place; the grant log and ledger
// accounting come back in the result. Pool size never changes outcomes.
ScheduleResult RunBudgetReclaim(std::vector<ReclaimJob> jobs,
                                std::vector<double> core_free_minutes,
                                double time_limit_minutes,
                                const SchedulerOptions& options,
                                ThreadPool& pool);

}  // namespace s2fa::dse
