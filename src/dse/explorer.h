// The S2FA parallel DSE orchestrator (paper Fig. 2).
//
// Pipeline: offline rule training → decision-tree partitioning → per-
// partition seed generation → FCFS scheduling of partitions onto CPU
// cores, each partition tuned by the bandit/technique stack with the
// Shannon-entropy early-stop → merged best-so-far trace on a simulated
// global clock.
//
// Every partition runs with the full remaining budget and is then clipped
// to the span the FCFS schedule actually grants it; this keeps the whole
// exploration deterministic while the partition tunings execute on real
// threads. The default `adaptive` scheduler additionally returns every
// core-tail an early-stopped partition frees to a budget ledger and
// re-grants it in preemptible slices to the partition with the best
// recent improvement rate (see dse/scheduler.h); `fcfs` keeps the
// historical lose-the-tail behaviour.
//
// Ablation switches (partitioning / seeds / stopping criterion) feed the
// §5.2 analyses.
#pragma once

#include "cache/eval_cache.h"
#include "dse/partition.h"
#include "dse/scheduler.h"
#include "dse/seeds.h"
#include "dse/stopping.h"
#include "resilience/evaluator.h"
#include "resilience/fault.h"
#include "tuner/driver.h"

namespace s2fa::dse {

enum class StopKind { kEntropy, kNoImprovement, kTimeOnly };

struct ExplorerOptions {
  double time_limit_minutes = 240;  // the paper's 4-hour ceiling
  int num_cores = 8;                // f1.2xlarge host CPU
  std::uint64_t seed = 1;
  int training_samples = 320;
  PartitionOptions partition;
  SeedOptions seed_values;
  EntropyStopOptions entropy;
  StopKind stop = StopKind::kEntropy;
  std::size_t no_improvement_stale = 10;
  // Ablation switches.
  bool enable_partitioning = true;
  bool enable_seeds = true;
  // Fault tolerance. Every evaluation (training and tuning) runs through a
  // ResilientEvaluator — one per partition, so a pathological region trips
  // only its own circuit breaker. With the default options and a healthy
  // evaluator this is a pass-through and results are unchanged.
  resilience::ResilienceOptions resilience;
  // Deterministic fault injection (all-zero rates = off). The plan wraps
  // the black box *inside* the resilient layer, so injected failures are
  // retried, classified, and charged like real ones.
  resilience::FaultPlanOptions faults;
  // When non-empty, every completed evaluation is journaled here and a
  // pre-existing journal is replayed: a killed run resumed with the same
  // options re-pays zero already-journaled synthesis jobs.
  std::string journal_path;
  // Memoizing evaluation cache, shared by the training phase and every
  // partition (and the whole run in the vanilla baseline). Sits between
  // the journal and the resilience layer: a hit replays the stored
  // outcome (simulated minutes included) and skips fault injection and
  // retries, so duplicate design points are paid for exactly once per
  // run. On by default; see cache::EvalCacheOptions for the LRU bound.
  cache::EvalCacheOptions cache;
  // Partition scheduler. kAdaptive reinvests budget freed by entropy
  // stops (never changes the FCFS-phase trajectories, so its best is
  // always <= the FCFS best); kFcfs is the historical schedule alone.
  SchedulerKind scheduler = SchedulerKind::kAdaptive;
  SchedulerOptions sched;
  // Worker threads for the partition and reclaim pools; 0 = one per
  // simulated core. Results never depend on this — it only changes
  // wall-clock.
  int exec_threads = 0;
  // Technique roster, forwarded to every TuneSession (partition, reclaim,
  // and vanilla baseline alike); empty keeps the paper's default four-arm
  // bandit, bit-identical to before the knob existed. See
  // tuner::MakeTechniques for the accepted names.
  std::vector<std::string> techniques;
};

struct PartitionOutcome {
  std::string description;
  double start_minutes = 0;
  double end_minutes = 0;
  bool scheduled = true;    // false if the budget ran out before its turn
  bool truncated = false;   // clipped by the global time limit
  tuner::TuneResult result; // full (unclipped) tuning result
  // Best (cost, config) pair and evaluation count found *within* the
  // granted span — the pair stays consistent even when the clip cut the
  // run before the partition's final best.
  double clipped_best_cost = tuner::kInfeasibleCost;
  merlin::DesignConfig clipped_best_config;
  std::size_t clipped_evaluations = 0;
  // Reclaimed-budget grants this partition received (adaptive scheduler).
  std::size_t reclaim_grants = 0;
  double reclaim_minutes = 0;
  std::size_t reclaim_evaluations = 0;
  double reclaim_best_cost = tuner::kInfeasibleCost;
  resilience::ResilienceStats resilience;  // this partition's failure ledger
};

struct DseResult {
  bool found_feasible = false;
  merlin::DesignConfig best_config;
  double best_cost = tuner::kInfeasibleCost;
  double elapsed_minutes = 0;   // when the last scheduled partition ended
  std::size_t evaluations = 0;  // total across partitions (clipped estimate)
  std::vector<tuner::TracePoint> trace;  // merged best-so-far, global time
  std::vector<PartitionOutcome> partitions;
  double log10_space_size = 0;
  resilience::ResilienceStats resilience;  // aggregated across partitions
  std::size_t journal_resumed = 0;  // evaluations replayed from the journal
  std::size_t journal_hits = 0;     // lookups it answered this run
  std::size_t journal_entries = 0;  // total entries after the run
  cache::EvalCacheStats cache_stats;  // run-wide memoization ledger
  SchedulerKind scheduler = SchedulerKind::kFcfs;  // the schedule that ran
  ScheduleStats schedule;              // budget-ledger accounting
  std::vector<ReclaimGrant> reclaim_grants;  // grant log, in commit order
};

// The best (cost, config) pair and the committed evaluation count found
// within the first `span_minutes` of a tuning run — what a schedule clip
// may truthfully report. Exposed for the FCFS path and its regression
// tests: the cost/config come from the same improvement record, and the
// evaluation count is the number of actually-committed records in the
// span, not a time-proportional estimate.
struct SpanReport {
  bool found = false;
  double best_cost = tuner::kInfeasibleCost;
  merlin::DesignConfig best_config;
  std::size_t evaluations = 0;
  std::vector<tuner::TracePoint> trace;  // improvements inside the span
};

SpanReport ClipTuneResultToSpan(const tuner::TuneResult& result,
                                double span_minutes);

// Runs the full S2FA DSE for `kernel`'s design space. `evaluate` is the
// Merlin+HLS black box; it is also used (uncharged) for offline rule
// training.
DseResult RunS2faDse(const tuner::DesignSpace& space,
                     const kir::Kernel& kernel,
                     const tuner::EvalFn& evaluate,
                     const ExplorerOptions& options = {});

// The vanilla-OpenTuner baseline on the same clock (footnote 3: eight
// cores evaluate the top-8 candidates per iteration; no partitioning, no
// seeds, stop on the time limit only). Runs the same evaluation stack as
// the S2FA path — journal -> cache -> resilience -> raw evaluator — so
// --fault-rate / --resume-journal / --eval-timeout / --eval-cache apply
// to --vanilla runs too; partitioning/seed/stop options are ignored.
DseResult RunVanillaOpenTuner(const tuner::DesignSpace& space,
                              const tuner::EvalFn& evaluate,
                              const ExplorerOptions& options);

// Convenience overload: default resilience/cache, no faults, no journal.
DseResult RunVanillaOpenTuner(const tuner::DesignSpace& space,
                              const tuner::EvalFn& evaluate,
                              double time_limit_minutes, int num_cores,
                              std::uint64_t seed);

}  // namespace s2fa::dse
