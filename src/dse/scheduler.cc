#include "dse/scheduler.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <limits>

#include "obs/obs.h"
#include "support/error.h"
#include "support/logging.h"
#include "support/thread_pool.h"

namespace s2fa::dse {

namespace {

// Boundary tolerance for "is there any budget left on this core". Grants
// themselves use exact arithmetic (session clocks chain additively).
constexpr double kSpanEps = 1e-9;

// Rate awarded to an infeasible→feasible transition: large enough to
// outrank any log-cost refinement, finite so tie-breaks stay ordered.
constexpr double kFirstFeasibleRate = 1e9;

double SafeLog(double cost) { return std::log(std::max(cost, 1e-300)); }

}  // namespace

std::optional<SchedulerKind> ParseSchedulerKind(const std::string& text) {
  if (text == "fcfs") return SchedulerKind::kFcfs;
  if (text == "adaptive") return SchedulerKind::kAdaptive;
  return std::nullopt;
}

const char* SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFcfs: return "fcfs";
    case SchedulerKind::kAdaptive: return "adaptive";
  }
  S2FA_UNREACHABLE("bad scheduler kind");
}

double GrantImprovementRate(double best_before, double best_after,
                            double used_minutes) {
  if (!(best_after < best_before)) return 0;
  const double minutes = std::max(used_minutes, 1e-9);
  if (!std::isfinite(best_before)) return kFirstFeasibleRate;
  return (SafeLog(best_before) - SafeLog(best_after)) / minutes;
}

double MainImprovementRate(const tuner::TuneResult& result) {
  const double span = result.elapsed_minutes;
  if (span <= 0) return 0;
  const double mid = span / 2;
  double best_mid = std::numeric_limits<double>::infinity();
  double best_end = std::numeric_limits<double>::infinity();
  for (const tuner::BestUpdate& up : result.improvements) {
    if (up.time_minutes > span) break;
    if (up.time_minutes <= mid) best_mid = up.cost;
    best_end = up.cost;
  }
  return GrantImprovementRate(best_mid, best_end, span - mid);
}

std::optional<double> MapSessionTimeToGlobal(
    const std::vector<ReclaimGrant>& grants, double session_minutes) {
  for (const ReclaimGrant& grant : grants) {
    if (session_minutes > grant.session_start_minutes &&
        session_minutes <= grant.session_start_minutes + grant.used_minutes) {
      return grant.start_minutes +
             (session_minutes - grant.session_start_minutes);
    }
  }
  return std::nullopt;
}

ScheduleResult RunBudgetReclaim(std::vector<ReclaimJob> jobs,
                                std::vector<double> core_free_minutes,
                                double time_limit_minutes,
                                const SchedulerOptions& options,
                                ThreadPool& pool) {
  S2FA_REQUIRE(options.slice_minutes > 0, "slice must be positive");
  S2FA_SPAN("dse.schedule");
  ScheduleResult result;

  // The ledger: tails of cores that hosted work and freed up early. Cores
  // the FCFS pass never touched stay out — they are idle capacity, not
  // budget released by an early stop, and charging them would make a run
  // with early stopping disabled diverge from FCFS.
  std::vector<bool> usable(core_free_minutes.size(), false);
  for (std::size_t c = 0; c < core_free_minutes.size(); ++c) {
    if (core_free_minutes[c] > kSpanEps &&
        core_free_minutes[c] < time_limit_minutes - kSpanEps) {
      usable[c] = true;
      result.stats.reclaimed_minutes +=
          time_limit_minutes - core_free_minutes[c];
    }
  }

  struct JobState {
    double rate = 0;
    double best_prev = tuner::kInfeasibleCost;
    double last_end_minutes = 0;  // global end of the job's last grant
    bool live = true;
  };
  std::vector<JobState> state(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    S2FA_CHECK(jobs[j].session != nullptr, "reclaim job without a session");
    state[j].rate = jobs[j].initial_rate;
    state[j].best_prev = jobs[j].baseline_best;
    state[j].last_end_minutes = jobs[j].earliest_start_minutes;
    state[j].live = !jobs[j].session->finished();
  }

  struct Planned {
    std::size_t job;
    std::size_t core;
    double start;
    double slice;
    double session_start;
  };

  while (true) {
    // Plan one wave: each live job gets at most one slice, best recent
    // improvement rate first (ties: lowest partition id). Decisions read
    // only simulated state, so the plan is independent of pool size.
    std::vector<std::size_t> order;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (state[j].live) order.push_back(j);
    }
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                if (state[a].rate != state[b].rate) {
                  return state[a].rate > state[b].rate;
                }
                return jobs[a].partition < jobs[b].partition;
              });
    std::vector<Planned> wave;
    std::vector<bool> taken(core_free_minutes.size(), false);
    for (std::size_t j : order) {
      std::size_t best_core = core_free_minutes.size();
      double best_start = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < core_free_minutes.size(); ++c) {
        if (!usable[c] || taken[c]) continue;
        // A job's stream is serial in global time: a grant can't start
        // before its previous grant ended, even on another core.
        const double start =
            std::max(core_free_minutes[c], state[j].last_end_minutes);
        if (start >= time_limit_minutes - kSpanEps) continue;
        if (start < best_start) {
          best_start = start;
          best_core = c;
        }
      }
      if (best_core == core_free_minutes.size()) continue;
      taken[best_core] = true;
      wave.push_back({j, best_core, best_start,
                      std::min(options.slice_minutes,
                               time_limit_minutes - best_start),
                      jobs[j].session->clock_minutes()});
    }
    if (wave.empty()) break;

    // Execute the wave concurrently; every entry is a distinct session.
    // A one-thread pool would run it FCFS in plan order anyway, so run
    // inline there — identical results, and the grant work's spans stay
    // on the calling thread for single-core profiles.
    std::vector<double> used_minutes(wave.size(), 0.0);
    if (pool.num_threads() == 1) {
      for (std::size_t i = 0; i < wave.size(); ++i) {
        used_minutes[i] = jobs[wave[i].job].session->RunFor(wave[i].slice);
      }
    } else {
      std::vector<std::future<double>> futures;
      futures.reserve(wave.size());
      for (const Planned& p : wave) {
        tuner::TuneSession* session = jobs[p.job].session;
        const double slice = p.slice;
        futures.push_back(
            pool.Submit([session, slice] { return session->RunFor(slice); }));
      }
      for (std::size_t i = 0; i < wave.size(); ++i) {
        used_minutes[i] = futures[i].get();
      }
    }

    // Commit in plan order so the grant log and all rate updates are
    // deterministic regardless of completion order.
    for (std::size_t i = 0; i < wave.size(); ++i) {
      const Planned& p = wave[i];
      ReclaimJob& job = jobs[p.job];
      JobState& js = state[p.job];
      const double used = used_minutes[i];

      ReclaimGrant grant;
      grant.partition = job.partition;
      grant.core = static_cast<int>(p.core);
      grant.start_minutes = p.start;
      grant.slice_minutes = p.slice;
      grant.used_minutes = used;
      grant.session_start_minutes = p.session_start;
      grant.finished = job.session->finished();
      grant.preempted = !grant.finished;

      // The gap between the core freeing and the recipient's stream
      // becoming schedulable is budget nobody could use.
      result.stats.idle_minutes += p.start - core_free_minutes[p.core];
      core_free_minutes[p.core] = p.start + used;
      js.last_end_minutes = p.start + used;
      result.stats.regranted_minutes += used;
      result.stats.grants += 1;
      if (grant.preempted) result.stats.preemptions += 1;
      if (grant.finished || used <= kSpanEps) js.live = false;

      const double best_now =
          job.session->has_best()
              ? std::min(job.session->best_cost(), job.baseline_best)
              : job.baseline_best;
      js.rate = GrantImprovementRate(js.best_prev, best_now, used);
      js.best_prev = best_now;

      S2FA_COUNT("dse.sched.grants", 1);
      if (grant.preempted) S2FA_COUNT("dse.sched.preemptions", 1);
      result.stats.exploration_end_minutes =
          std::max(result.stats.exploration_end_minutes,
                   std::min(js.last_end_minutes, time_limit_minutes));
      result.grants.push_back(grant);
    }
  }

  // Whatever the ledger could not place (no live recipient, or streams
  // serialised past the limit) stays idle.
  for (std::size_t c = 0; c < core_free_minutes.size(); ++c) {
    if (usable[c]) {
      result.stats.idle_minutes +=
          std::max(0.0, time_limit_minutes - core_free_minutes[c]);
    }
  }
  S2FA_GAUGE("dse.sched.reclaimed_minutes", result.stats.reclaimed_minutes);
  if (result.stats.grants > 0) {
    S2FA_LOG_DEBUG("budget reclaim: " << result.stats.grants << " grants, "
                                      << result.stats.regranted_minutes
                                      << " of "
                                      << result.stats.reclaimed_minutes
                                      << " reclaimed minutes re-spent");
  }
  return result;
}

}  // namespace s2fa::dse
