#include "b2c/compiler.h"

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "jvm/verifier.h"
#include "kir/analysis.h"
#include "obs/obs.h"
#include "support/error.h"
#include "support/logging.h"

namespace s2fa::b2c {

namespace {

using jvm::Cond;
using jvm::Insn;
using jvm::Opcode;
using kir::BinaryOp;
using kir::Buffer;
using kir::BufferKind;
using kir::Expr;
using kir::ExprPtr;
using kir::ParallelPattern;
using kir::Stmt;
using kir::StmtPtr;
using kir::Type;
using kir::TypeKind;

constexpr int kMaxInlineDepth = 16;
constexpr const char* kTaskVar = "i";

// ------------------------------------------------------ symbolic values

struct SymObject;

// One abstractly-interpreted stack/local slot.
struct SymValue {
  enum class Kind {
    kNone,    // uninitialized / unsupported (e.g. `this`)
    kExpr,    // a pure expression
    kBuffer,  // reference to a kernel buffer (+ element base offset)
    kObject,  // flattened object instance
    kCmp,     // result of fcmp/dcmp/lcmp awaiting its consuming branch
  };
  Kind kind = Kind::kNone;
  ExprPtr expr;       // kExpr; kCmp lhs
  ExprPtr expr2;      // kCmp rhs
  std::string buffer;
  Type elem;
  ExprPtr base;       // may be null (offset 0)
  std::int64_t length = 0;
  std::shared_ptr<SymObject> object;

  static SymValue OfExpr(ExprPtr e) {
    SymValue v;
    v.kind = Kind::kExpr;
    v.expr = std::move(e);
    return v;
  }
  static SymValue OfBuffer(std::string name, Type element, ExprPtr base_off,
                           std::int64_t len) {
    SymValue v;
    v.kind = Kind::kBuffer;
    v.buffer = std::move(name);
    v.elem = element;
    v.base = std::move(base_off);
    v.length = len;
    return v;
  }
};

struct SymObject {
  std::string klass;
  std::vector<SymValue> fields;
};

BinaryOp CondToOp(Cond cond) {
  switch (cond) {
    case Cond::kEq: return BinaryOp::kEq;
    case Cond::kNe: return BinaryOp::kNe;
    case Cond::kLt: return BinaryOp::kLt;
    case Cond::kGe: return BinaryOp::kGe;
    case Cond::kGt: return BinaryOp::kGt;
    case Cond::kLe: return BinaryOp::kLe;
  }
  S2FA_UNREACHABLE("bad cond");
}

Cond NegateCond(Cond cond) {
  switch (cond) {
    case Cond::kEq: return Cond::kNe;
    case Cond::kNe: return Cond::kEq;
    case Cond::kLt: return Cond::kGe;
    case Cond::kGe: return Cond::kLt;
    case Cond::kGt: return Cond::kLe;
    case Cond::kLe: return Cond::kGt;
  }
  S2FA_UNREACHABLE("bad cond");
}

BinaryOp MapBinOp(jvm::BinOp op) {
  switch (op) {
    case jvm::BinOp::kAdd: return BinaryOp::kAdd;
    case jvm::BinOp::kSub: return BinaryOp::kSub;
    case jvm::BinOp::kMul: return BinaryOp::kMul;
    case jvm::BinOp::kDiv: return BinaryOp::kDiv;
    case jvm::BinOp::kRem: return BinaryOp::kRem;
    case jvm::BinOp::kShl: return BinaryOp::kShl;
    case jvm::BinOp::kShr: return BinaryOp::kShr;
    case jvm::BinOp::kUShr: return BinaryOp::kUShr;
    case jvm::BinOp::kAnd: return BinaryOp::kAnd;
    case jvm::BinOp::kOr: return BinaryOp::kOr;
    case jvm::BinOp::kXor: return BinaryOp::kXor;
    case jvm::BinOp::kMin: return BinaryOp::kMin;
    case jvm::BinOp::kMax: return BinaryOp::kMax;
  }
  S2FA_UNREACHABLE("bad binop");
}

ExprPtr ZeroOf(const Type& type) {
  if (type.is_floating()) return Expr::FloatLit(0.0, type);
  return Expr::IntLit(0, type.kind() == TypeKind::kLong ? Type::Long()
                                                        : Type::Int());
}

// base + index, folding a null/zero base away.
ExprPtr AddBase(const ExprPtr& base, const ExprPtr& index) {
  if (base == nullptr) return index;
  if (index->IsIntLit(0)) return base;
  return Expr::Binary(BinaryOp::kAdd, base, index);
}

// --------------------------------------------------------- the compiler

class Compiler {
 public:
  Compiler(const jvm::ClassPool& pool, const KernelSpec& spec)
      : pool_(pool), spec_(spec) {}

  kir::Kernel Run();

 private:
  struct MethodCtx {
    const jvm::Method* method = nullptr;
    std::vector<SymValue> locals;
    // Slot -> emitted C variable name (primitive locals only).
    std::map<int, std::string> var_names;
    std::map<int, Type> var_types;
    std::set<int> declared;
    std::string prefix;
    bool saw_return = false;
    SymValue ret;
  };

  // Compiles code[begin, end) appending statements to `out`. `top_level`
  // is true only for the outermost range of a method: a return instruction
  // is legal only there (single-tail-return restriction).
  void CompileRange(MethodCtx& ctx, std::size_t begin, std::size_t end,
                    std::vector<SymValue>& stack, std::vector<StmtPtr>& out,
                    bool top_level = false);

  void CompileCountedLoop(MethodCtx& ctx, std::size_t if_pc, std::size_t T,
                          std::vector<SymValue>& stack,
                          std::vector<StmtPtr>& out);

  void CompileIf(MethodCtx& ctx, std::size_t pc, std::size_t end,
                 std::vector<SymValue>& stack, std::vector<StmtPtr>& out,
                 std::size_t& next_pc);

  void InlineCall(MethodCtx& ctx, const Insn& insn,
                  std::vector<SymValue>& stack, std::vector<StmtPtr>& out);

  // Pops a value, materializing comparison markers into an expression.
  ExprPtr PopExpr(std::vector<SymValue>& stack);
  SymValue Pop(std::vector<SymValue>& stack);

  // Builds the IR condition for a branch, optionally negated (the
  // fallthrough path of `if<cond> goto L` executes when cond is false).
  ExprPtr BuildCond(const Insn& insn, std::vector<SymValue>& stack,
                    bool negate);

  // Binds the kernel parameter described by `io`. Broadcast fields are
  // burst into on-chip caches by statements appended to `prologue` (they
  // run before the task loop).
  SymValue BindParameter(const IoSpec& io, bool is_input,
                         const std::string& buffer_prefix,
                         std::vector<StmtPtr>& prologue);

  void AppendMapOutputBinding(const SymValue& ret, std::vector<StmtPtr>& out);
  void AppendReduceTemplate(MethodCtx& ctx, std::vector<StmtPtr>& kernel_stmts,
                            std::vector<StmtPtr>& body_stmts);

  std::string LocalName(MethodCtx& ctx, int slot) {
    auto it = ctx.var_names.find(slot);
    if (it != ctx.var_names.end()) return it->second;
    std::string name = ctx.prefix + "lv" + std::to_string(slot);
    ctx.var_names[slot] = name;
    return name;
  }

  int NextLoopId() { return loop_id_counter_++; }
  std::string NewTemp() { return "t" + std::to_string(temp_counter_++); }

  // Allocates a kernel-local buffer, emitting its zero-init loop.
  SymValue NewLocalBuffer(const Type& element, std::int64_t length,
                          std::vector<StmtPtr>& out);

  const jvm::ClassPool& pool_;
  const KernelSpec& spec_;
  kir::Kernel kernel_;
  int loop_id_counter_ = 0;
  int temp_counter_ = 0;
  int loc_counter_ = 0;
  int inline_counter_ = 0;
  int inline_depth_ = 0;
  // Scalar accumulator variable names for the reduce template.
  std::vector<std::string> acc_vars_;
};

SymValue Compiler::Pop(std::vector<SymValue>& stack) {
  if (stack.empty()) {
    throw InternalError("b2c: operand stack underflow (verifier gap?)");
  }
  SymValue v = std::move(stack.back());
  stack.pop_back();
  return v;
}

ExprPtr Compiler::PopExpr(std::vector<SymValue>& stack) {
  SymValue v = Pop(stack);
  switch (v.kind) {
    case SymValue::Kind::kExpr:
      return v.expr;
    case SymValue::Kind::kCmp: {
      // Materialize the three-way compare: (a<b) ? -1 : ((a>b) ? 1 : 0).
      auto lt = Expr::Binary(BinaryOp::kLt, v.expr, v.expr2);
      auto gt = Expr::Binary(BinaryOp::kGt, v.expr, v.expr2);
      return Expr::Select(
          lt, Expr::IntLit(-1),
          Expr::Select(gt, Expr::IntLit(1), Expr::IntLit(0)));
    }
    default:
      throw Unsupported(
          "b2c: a reference value was used where a primitive expression is "
          "required (unsupported object flow)");
  }
}

ExprPtr Compiler::BuildCond(const Insn& insn, std::vector<SymValue>& stack,
                            bool negate) {
  Cond cond = negate ? NegateCond(insn.cond) : insn.cond;
  if (insn.op == Opcode::kIfICmp) {
    ExprPtr b = PopExpr(stack);
    ExprPtr a = PopExpr(stack);
    return Expr::Binary(CondToOp(cond), a, b);
  }
  // kIf compares the top value with zero; fold cmp markers directly.
  SymValue v = Pop(stack);
  if (v.kind == SymValue::Kind::kCmp) {
    return Expr::Binary(CondToOp(cond), v.expr, v.expr2);
  }
  if (v.kind != SymValue::Kind::kExpr) {
    throw Unsupported("b2c: branch on non-primitive value");
  }
  return Expr::Binary(CondToOp(cond), v.expr, Expr::IntLit(0));
}

SymValue Compiler::NewLocalBuffer(const Type& element, std::int64_t length,
                                  std::vector<StmtPtr>& out) {
  std::string name = "loc" + std::to_string(++loc_counter_);
  Buffer buf;
  buf.name = name;
  buf.element = element;
  buf.length = length;
  buf.kind = BufferKind::kLocal;
  kernel_.buffers.push_back(buf);
  // Fresh JVM arrays are zero-initialized; static C arrays persist across
  // task iterations, so emit the zeroing loop the real compiler emits.
  int id = NextLoopId();
  std::string var = "z" + std::to_string(id);
  auto zero = Stmt::Assign(
      Expr::ArrayRef(name, element, Expr::Var(var, Type::Int())),
      ZeroOf(element));
  out.push_back(Stmt::For(id, var, length, Stmt::Block({zero})));
  return SymValue::OfBuffer(name, element, nullptr, length);
}

void Compiler::CompileCountedLoop(MethodCtx& ctx, std::size_t if_pc,
                                  std::size_t T,
                                  std::vector<SymValue>& stack,
                                  std::vector<StmtPtr>& out) {
  const auto& code = ctx.method->code;
  const Insn& branch = code[if_pc];
  // Canonical form: load i; const K; if_icmpge EXIT; body...; iinc i 1;
  // goto HEAD; EXIT:
  if (branch.op != Opcode::kIfICmp || branch.cond != Cond::kGe) {
    throw Unsupported(
        "b2c: only canonical `i < K` counted loops are supported (got " +
        branch.ToString() + ")");
  }
  ExprPtr bound = PopExpr(stack);
  ExprPtr ivar = PopExpr(stack);
  if (bound->kind() != kir::ExprKind::kIntLit) {
    throw Unsupported(
        "b2c: loop bound must be a compile-time constant (paper 3.3)");
  }
  if (ivar->kind() != kir::ExprKind::kVar) {
    throw Unsupported("b2c: loop induction must be a local variable");
  }
  const std::int64_t trip = bound->int_value();
  if (trip < 1) {
    throw Unsupported("b2c: loop trip count must be >= 1, got " +
                      std::to_string(trip));
  }
  const std::string iname = ivar->name();

  // The init `i = 0` was just emitted as the previous statement.
  if (out.empty()) {
    throw Unsupported("b2c: counted loop without `i = 0` initialization");
  }
  const StmtPtr& init = out.back();
  bool init_ok = false;
  if (init->kind() == kir::StmtKind::kDecl && init->decl_name() == iname &&
      init->init() && init->init()->IsIntLit(0)) {
    init_ok = true;
  }
  if (init->kind() == kir::StmtKind::kAssign &&
      init->lhs()->kind() == kir::ExprKind::kVar &&
      init->lhs()->name() == iname && init->rhs()->IsIntLit(0)) {
    init_ok = true;
  }
  if (!init_ok) {
    throw Unsupported("b2c: counted loop must start from 0 (canonical form)");
  }
  out.pop_back();  // the For header subsumes the init

  // The body must end with `iinc i, 1` right before the backedge goto.
  if (T < 3 || code[T - 2].op != Opcode::kIInc || code[T - 2].const_i != 1) {
    throw Unsupported("b2c: counted loop must step by iinc +1");
  }
  int islot = code[T - 2].slot;
  if (LocalName(ctx, islot) != iname) {
    throw Unsupported("b2c: loop increments a different variable than it "
                      "tests");
  }

  std::vector<SymValue> body_stack;
  std::vector<StmtPtr> body;
  CompileRange(ctx, if_pc + 1, T - 2, body_stack, body);
  if (!body_stack.empty()) {
    throw Unsupported("b2c: loop body leaves values on the operand stack");
  }
  // The induction variable must not be written inside the body.
  for (const auto& st : body) {
    kir::VisitStmt(st, std::function<void(const kir::Stmt&)>(
                           [&](const kir::Stmt& s) {
                             if (s.kind() == kir::StmtKind::kAssign &&
                                 s.lhs()->kind() == kir::ExprKind::kVar &&
                                 s.lhs()->name() == iname) {
                               throw Unsupported(
                                   "b2c: loop body writes the induction "
                                   "variable");
                             }
                           }));
  }
  out.push_back(Stmt::For(NextLoopId(), iname, trip, Stmt::Block(body)));
}

void Compiler::CompileIf(MethodCtx& ctx, std::size_t pc, std::size_t end,
                         std::vector<SymValue>& stack,
                         std::vector<StmtPtr>& out, std::size_t& next_pc) {
  const auto& code = ctx.method->code;
  const Insn& branch = code[pc];
  const std::size_t T = branch.target;
  ExprPtr cond = BuildCond(branch, stack, /*negate=*/true);

  std::size_t then_begin = pc + 1;
  std::size_t then_end = T;
  std::size_t else_begin = 0;
  std::size_t else_end = 0;
  bool has_else = false;
  if (T >= 1 && T - 1 > pc && T - 1 < end &&
      code[T - 1].op == Opcode::kGoto && code[T - 1].target > T &&
      code[T - 1].target <= end) {
    has_else = true;
    then_end = T - 1;
    else_begin = T;
    else_end = code[T - 1].target;
    next_pc = else_end;
  } else {
    next_pc = T;
  }

  std::vector<SymValue> stack_then = stack;
  std::vector<SymValue> stack_else = stack;
  std::vector<StmtPtr> stmts_then;
  std::vector<StmtPtr> stmts_else;
  CompileRange(ctx, then_begin, then_end, stack_then, stmts_then);
  if (has_else) {
    CompileRange(ctx, else_begin, else_end, stack_else, stmts_else);
  }

  const std::size_t base = stack.size();
  if (stack_then.size() == base && stack_else.size() == base) {
    out.push_back(Stmt::If(cond, Stmt::Block(std::move(stmts_then)),
                           has_else ? Stmt::Block(std::move(stmts_else))
                                    : nullptr));
    return;
  }
  if (has_else && stack_then.size() == base + 1 &&
      stack_else.size() == base + 1) {
    // Value-producing conditional (scalac if-expression).
    ExprPtr then_val = PopExpr(stack_then);
    ExprPtr else_val = PopExpr(stack_else);
    if (stmts_then.empty() && stmts_else.empty()) {
      stack.push_back(SymValue::OfExpr(Expr::Select(cond, then_val, else_val)));
      return;
    }
    const Type& type = then_val->type();
    std::string tmp = NewTemp();
    out.push_back(Stmt::Decl(tmp, type, nullptr));
    stmts_then.push_back(Stmt::Assign(Expr::Var(tmp, type), then_val));
    stmts_else.push_back(Stmt::Assign(Expr::Var(tmp, type), else_val));
    out.push_back(Stmt::If(cond, Stmt::Block(std::move(stmts_then)),
                           Stmt::Block(std::move(stmts_else))));
    stack.push_back(SymValue::OfExpr(Expr::Var(tmp, type)));
    return;
  }
  throw Unsupported(
      "b2c: branches leave inconsistent values on the operand stack");
}

void Compiler::InlineCall(MethodCtx& ctx, const Insn& insn,
                          std::vector<SymValue>& stack,
                          std::vector<StmtPtr>& out) {
  if (jvm::ClassPool::IsMathIntrinsic(insn.owner, insn.member)) {
    const bool binary = insn.member == "pow" || insn.member == "max" ||
                        insn.member == "min";
    ExprPtr b = binary ? PopExpr(stack) : nullptr;
    ExprPtr a = PopExpr(stack);
    if (insn.member == "max" || insn.member == "min") {
      stack.push_back(SymValue::OfExpr(Expr::Binary(
          insn.member == "max" ? BinaryOp::kMax : BinaryOp::kMin, a, b)));
      return;
    }
    kir::Intrinsic fn = kir::Intrinsic::kExp;
    if (insn.member == "log") fn = kir::Intrinsic::kLog;
    if (insn.member == "sqrt") fn = kir::Intrinsic::kSqrt;
    if (insn.member == "abs") fn = kir::Intrinsic::kAbs;
    if (insn.member == "pow") fn = kir::Intrinsic::kPow;
    std::vector<ExprPtr> args{a};
    if (fn == kir::Intrinsic::kPow) args.push_back(b);
    stack.push_back(
        SymValue::OfExpr(Expr::Call(fn, std::move(args), Type::Double())));
    return;
  }
  if (insn.member == "<init>") {
    throw Unsupported(
        "b2c: constructors are not modeled; build objects with new + "
        "putfield");
  }
  if (!pool_.Has(insn.owner)) {
    // Paper §3.3: library calls are unsupported because their bytecode may
    // lack type information.
    throw Unsupported("b2c: call to library class " + insn.owner +
                      " (library calls unsupported)");
  }
  const jvm::Method& callee = pool_.Get(insn.owner).GetMethod(insn.member);
  if (++inline_depth_ > kMaxInlineDepth) {
    throw Unsupported("b2c: inline depth exceeded (recursive kernel?)");
  }

  MethodCtx sub;
  sub.method = &callee;
  sub.prefix = "f" + std::to_string(inline_counter_++) + "_";
  sub.locals.resize(static_cast<std::size_t>(callee.max_locals));

  // Bind arguments right-to-left into parameter slots.
  int slot = callee.ParamSlotCount();
  for (auto it = callee.signature.params.rbegin();
       it != callee.signature.params.rend(); ++it) {
    slot -= it->is_wide() ? 2 : 1;
    SymValue arg = Pop(stack);
    if (arg.kind == SymValue::Kind::kCmp) {
      stack.push_back(arg);
      arg = SymValue::OfExpr(PopExpr(stack));
    }
    if (arg.kind == SymValue::Kind::kExpr &&
        arg.expr->kind() != kir::ExprKind::kVar &&
        arg.expr->kind() != kir::ExprKind::kIntLit &&
        arg.expr->kind() != kir::ExprKind::kFloatLit) {
      // Evaluate non-trivial arguments once, into a temporary.
      std::string tmp = NewTemp();
      out.push_back(Stmt::Decl(tmp, *it, arg.expr));
      arg = SymValue::OfExpr(Expr::Var(tmp, *it));
    }
    // Parameter slots are bound symbolically (Java call-by-value): a later
    // store to the slot creates a fresh callee-local variable rather than
    // mutating the caller's value.
    sub.locals[static_cast<std::size_t>(slot)] = std::move(arg);
  }
  if (insn.invoke_kind != jvm::InvokeKind::kStatic) {
    sub.locals[0] = Pop(stack);
  }

  std::vector<SymValue> sub_stack;
  CompileRange(sub, 0, callee.code.size(), sub_stack, out,
               /*top_level=*/true);
  --inline_depth_;
  if (!callee.signature.ret.is_void()) {
    if (!sub.saw_return) {
      throw Unsupported("b2c: inlined method " + insn.member +
                        " has no tail return");
    }
    stack.push_back(sub.ret);
  }
}

void Compiler::CompileRange(MethodCtx& ctx, std::size_t begin,
                            std::size_t end, std::vector<SymValue>& stack,
                            std::vector<StmtPtr>& out, bool top_level) {
  const auto& code = ctx.method->code;
  std::size_t pc = begin;
  std::size_t stmt_start = begin;
  while (pc < end) {
    const Insn& insn = code[pc];
    switch (insn.op) {
      case Opcode::kConst: {
        ExprPtr lit;
        if (insn.type.is_floating()) {
          lit = Expr::FloatLit(insn.const_f, insn.type);
        } else {
          lit = Expr::IntLit(insn.const_i, insn.type);
        }
        stack.push_back(SymValue::OfExpr(lit));
        break;
      }
      case Opcode::kLoad: {
        const SymValue& local = ctx.locals.at(static_cast<std::size_t>(insn.slot));
        if (insn.type.is_reference()) {
          if (local.kind != SymValue::Kind::kBuffer &&
              local.kind != SymValue::Kind::kObject) {
            throw Unsupported("b2c: load of uninitialized reference local " +
                              std::to_string(insn.slot));
          }
          stack.push_back(local);
        } else {
          if (local.kind == SymValue::Kind::kExpr) {
            stack.push_back(local);
          } else {
            throw Unsupported("b2c: load of uninitialized local " +
                              std::to_string(insn.slot));
          }
        }
        break;
      }
      case Opcode::kStore: {
        SymValue v = Pop(stack);
        const std::size_t slot = static_cast<std::size_t>(insn.slot);
        if (insn.type.is_reference()) {
          if (v.kind != SymValue::Kind::kBuffer &&
              v.kind != SymValue::Kind::kObject) {
            throw Unsupported("b2c: reference store of non-reference value");
          }
          ctx.locals[slot] = std::move(v);  // purely symbolic
          break;
        }
        if (v.kind != SymValue::Kind::kExpr &&
            v.kind != SymValue::Kind::kCmp) {
          throw Unsupported("b2c: primitive store of reference value");
        }
        ExprPtr value;
        if (v.kind == SymValue::Kind::kCmp) {
          stack.push_back(v);
          value = PopExpr(stack);
        } else {
          value = v.expr;
        }
        std::string name = LocalName(ctx, insn.slot);
        if (ctx.declared.count(insn.slot) == 0) {
          ctx.declared.insert(insn.slot);
          ctx.var_types[insn.slot] = insn.type;
          out.push_back(Stmt::Decl(name, insn.type, value));
        } else {
          out.push_back(Stmt::Assign(Expr::Var(name, insn.type), value));
        }
        ctx.locals[slot] =
            SymValue::OfExpr(Expr::Var(name, ctx.var_types[insn.slot]));
        break;
      }
      case Opcode::kIInc: {
        std::string name = LocalName(ctx, insn.slot);
        if (ctx.declared.count(insn.slot) == 0) {
          throw Unsupported("b2c: iinc of undeclared local");
        }
        auto var = Expr::Var(name, Type::Int());
        out.push_back(Stmt::Assign(
            var, Expr::Binary(BinaryOp::kAdd, var,
                              Expr::IntLit(insn.const_i))));
        break;
      }
      case Opcode::kArrayLoad: {
        ExprPtr index = PopExpr(stack);
        SymValue arr = Pop(stack);
        if (arr.kind != SymValue::Kind::kBuffer) {
          throw Unsupported("b2c: array load on non-buffer reference");
        }
        stack.push_back(SymValue::OfExpr(
            Expr::ArrayRef(arr.buffer, arr.elem, AddBase(arr.base, index))));
        break;
      }
      case Opcode::kArrayStore: {
        ExprPtr value = PopExpr(stack);
        ExprPtr index = PopExpr(stack);
        SymValue arr = Pop(stack);
        if (arr.kind != SymValue::Kind::kBuffer) {
          throw Unsupported("b2c: array store on non-buffer reference");
        }
        out.push_back(Stmt::Assign(
            Expr::ArrayRef(arr.buffer, arr.elem, AddBase(arr.base, index)),
            value));
        break;
      }
      case Opcode::kNewArray: {
        ExprPtr length = PopExpr(stack);
        if (length->kind() != kir::ExprKind::kIntLit) {
          throw Unsupported(
              "b2c: `new` with non-constant size (paper 3.3 restriction)");
        }
        stack.push_back(NewLocalBuffer(insn.type, length->int_value(), out));
        break;
      }
      case Opcode::kArrayLength: {
        SymValue arr = Pop(stack);
        if (arr.kind != SymValue::Kind::kBuffer) {
          throw Unsupported("b2c: arraylength on non-buffer reference");
        }
        stack.push_back(SymValue::OfExpr(Expr::IntLit(arr.length)));
        break;
      }
      case Opcode::kBinOp: {
        ExprPtr b = PopExpr(stack);
        ExprPtr a = PopExpr(stack);
        stack.push_back(
            SymValue::OfExpr(Expr::Binary(MapBinOp(insn.bin_op), a, b)));
        break;
      }
      case Opcode::kNeg: {
        ExprPtr a = PopExpr(stack);
        stack.push_back(
            SymValue::OfExpr(Expr::Unary(kir::UnaryOp::kNeg, a)));
        break;
      }
      case Opcode::kConvert: {
        ExprPtr a = PopExpr(stack);
        if (insn.type2 == a->type()) {
          stack.push_back(SymValue::OfExpr(a));
        } else {
          stack.push_back(SymValue::OfExpr(Expr::Cast(insn.type2, a)));
        }
        break;
      }
      case Opcode::kCmp: {
        ExprPtr b = PopExpr(stack);
        ExprPtr a = PopExpr(stack);
        SymValue v;
        v.kind = SymValue::Kind::kCmp;
        v.expr = a;
        v.expr2 = b;
        stack.push_back(std::move(v));
        break;
      }
      case Opcode::kIf:
      case Opcode::kIfICmp: {
        const std::size_t T = insn.target;
        if (T <= pc || T > end) {
          throw Unsupported("b2c: backward or escaping branch (unstructured "
                            "control flow)");
        }
        // Loop backedge? `goto stmt_start` just before the branch target.
        if (T >= 2 && T - 1 < end && code[T - 1].op == Opcode::kGoto &&
            code[T - 1].target == stmt_start) {
          CompileCountedLoop(ctx, pc, T, stack, out);
          pc = T;
          stmt_start = pc;
          continue;
        }
        std::size_t next_pc = 0;
        CompileIf(ctx, pc, end, stack, out, next_pc);
        pc = next_pc;
        if (stack.empty()) stmt_start = pc;
        continue;
      }
      case Opcode::kGoto:
        throw Unsupported("b2c: unstructured goto at " + std::to_string(pc));
      case Opcode::kGetField: {
        SymValue obj = Pop(stack);
        if (obj.kind != SymValue::Kind::kObject) {
          throw Unsupported("b2c: getfield on unsupported reference (only "
                            "flattened objects)");
        }
        const jvm::Klass& k = pool_.Get(insn.owner);
        std::size_t index = k.FieldIndex(insn.member);
        const SymValue& field = obj.object->fields.at(index);
        if (field.kind == SymValue::Kind::kNone) {
          throw Unsupported("b2c: read of unset field " + insn.owner + "." +
                            insn.member);
        }
        stack.push_back(field);
        break;
      }
      case Opcode::kPutField: {
        SymValue value = Pop(stack);
        SymValue obj = Pop(stack);
        if (obj.kind != SymValue::Kind::kObject) {
          throw Unsupported("b2c: putfield on unsupported reference");
        }
        const jvm::Klass& k = pool_.Get(insn.owner);
        std::size_t index = k.FieldIndex(insn.member);
        if (value.kind == SymValue::Kind::kCmp) {
          stack.push_back(value);
          value = SymValue::OfExpr(PopExpr(stack));
        }
        obj.object->fields.at(index) = std::move(value);
        break;
      }
      case Opcode::kNew: {
        const jvm::Klass& k = pool_.Get(insn.owner);
        SymValue v;
        v.kind = SymValue::Kind::kObject;
        v.object = std::make_shared<SymObject>();
        v.object->klass = insn.owner;
        v.object->fields.resize(k.fields().size());
        stack.push_back(std::move(v));
        break;
      }
      case Opcode::kInvoke:
        InlineCall(ctx, insn, stack, out);
        break;
      case Opcode::kReturn: {
        if (!top_level || pc != end - 1) {
          throw Unsupported("b2c: early return (only a single tail return is "
                            "supported)");
        }
        if (!insn.type.is_void()) {
          ctx.ret = Pop(stack);
        }
        ctx.saw_return = true;
        pc = end;
        continue;
      }
      case Opcode::kDup: {
        if (stack.empty()) throw InternalError("b2c: dup on empty stack");
        stack.push_back(stack.back());
        break;
      }
      case Opcode::kPop:
        Pop(stack);
        break;
      case Opcode::kSwap: {
        SymValue b = Pop(stack);
        SymValue a = Pop(stack);
        stack.push_back(std::move(b));
        stack.push_back(std::move(a));
        break;
      }
    }
    ++pc;
    if (stack.empty()) stmt_start = pc;
  }
}

SymValue Compiler::BindParameter(const IoSpec& io, bool is_input,
                                 const std::string& buffer_prefix,
                                 std::vector<StmtPtr>& prologue) {
  std::size_t leaf_counter = 0;
  auto buffer_name = [&](std::size_t k) {
    return buffer_prefix + std::to_string(k + 1);
  };
  auto task_index = Expr::Var(kTaskVar, Type::Int());
  std::function<SymValue(const FieldSpec&)> bind_any;
  auto bind_field = [&](const FieldSpec& f, std::size_t k) -> SymValue {
    const std::string name = buffer_name(k);
    if (f.broadcast) {
      // Shared per-invocation data: burst into an on-chip cache once,
      // before the task loop, and serve every task from BRAM.
      if (!f.is_array) {
        std::string var = "bc" + std::to_string(k + 1);
        prologue.push_back(Stmt::Decl(
            var, f.element,
            Expr::ArrayRef(name, f.element, Expr::IntLit(0))));
        return SymValue::OfExpr(Expr::Var(var, f.element));
      }
      std::string cache = "bc" + std::to_string(k + 1);
      Buffer local;
      local.name = cache;
      local.element = f.element;
      local.length = f.length;
      local.kind = BufferKind::kLocal;
      kernel_.buffers.push_back(local);
      int id = NextLoopId();
      std::string var = "b" + std::to_string(id);
      auto idx = Expr::Var(var, Type::Int());
      prologue.push_back(Stmt::For(
          id, var, f.length,
          Stmt::Block({Stmt::Assign(
              Expr::ArrayRef(cache, f.element, idx),
              Expr::ArrayRef(name, f.element, idx))})));
      return SymValue::OfBuffer(cache, f.element, nullptr, f.length);
    }
    if (f.is_array) {
      ExprPtr base =
          f.length == 1
              ? ExprPtr(task_index)
              : Expr::Binary(BinaryOp::kMul, task_index,
                             Expr::IntLit(f.length));
      return SymValue::OfBuffer(name, f.element, base, f.length);
    }
    // Scalar field: one element per task.
    return SymValue::OfExpr(Expr::ArrayRef(name, f.element, task_index));
  };

  (void)is_input;
  // Recursive binding: composites become symbolic objects whose members
  // bind depth-first, consuming buffer indices in flattening order.
  bind_any = [&](const FieldSpec& f) -> SymValue {
    if (f.is_composite()) {
      S2FA_REQUIRE(pool_.Has(f.klass),
                   "nested composite field " << f.name
                                             << " names unknown class "
                                             << f.klass);
      S2FA_REQUIRE(pool_.Get(f.klass).fields().size() == f.members.size(),
                   "nested composite " << f.klass
                                       << " member count mismatch");
      SymValue v;
      v.kind = SymValue::Kind::kObject;
      v.object = std::make_shared<SymObject>();
      v.object->klass = f.klass;
      v.object->fields.reserve(f.members.size());
      for (const FieldSpec& m : f.members) {
        v.object->fields.push_back(bind_any(m));
      }
      return v;
    }
    return bind_field(f, leaf_counter++);
  };

  if (io.type.is_class()) {
    SymValue v;
    v.kind = SymValue::Kind::kObject;
    v.object = std::make_shared<SymObject>();
    v.object->klass = io.type.class_name();
    v.object->fields.reserve(io.fields.size());
    for (const FieldSpec& f : io.fields) {
      v.object->fields.push_back(bind_any(f));
    }
    return v;
  }
  S2FA_REQUIRE(io.fields.size() == 1,
               "non-class parameter must have exactly one field spec");
  return bind_any(io.fields[0]);
}

void Compiler::AppendMapOutputBinding(const SymValue& ret,
                                      std::vector<StmtPtr>& out) {
  auto task_index = Expr::Var(kTaskVar, Type::Int());
  auto bind_field = [&](const FieldSpec& f, std::size_t k,
                        const SymValue& value) {
    const std::string out_name = OutputBufferName(k);
    if (value.kind == SymValue::Kind::kExpr) {
      S2FA_REQUIRE(!f.is_array || f.length == 1,
                   "scalar value bound to array output field " << f.name);
      out.push_back(Stmt::Assign(
          Expr::ArrayRef(out_name, f.element, task_index), value.expr));
      return;
    }
    if (value.kind == SymValue::Kind::kBuffer) {
      S2FA_REQUIRE(value.length >= f.length,
                   "returned array shorter than output field " << f.name);
      // Copy (burst) the local result into the output buffer region.
      int id = NextLoopId();
      std::string var = "c" + std::to_string(id);
      ExprPtr dst_index = AddBase(
          f.length == 1 ? ExprPtr(task_index)
                        : Expr::Binary(BinaryOp::kMul, task_index,
                                       Expr::IntLit(f.length)),
          Expr::Var(var, Type::Int()));
      ExprPtr src_index =
          AddBase(value.base, Expr::Var(var, Type::Int()));
      out.push_back(Stmt::For(
          id, var, f.length,
          Stmt::Block({Stmt::Assign(
              Expr::ArrayRef(out_name, f.element, dst_index),
              Expr::ArrayRef(value.buffer, value.elem, src_index))})));
      return;
    }
    throw Unsupported("b2c: unsupported value returned in field " + f.name);
  };

  // Recursive decomposition mirrors BindParameter's flattening order.
  std::size_t leaf_counter = 0;
  std::function<void(const FieldSpec&, const SymValue&)> bind_any =
      [&](const FieldSpec& f, const SymValue& value) {
        if (f.is_composite()) {
          if (value.kind != SymValue::Kind::kObject) {
            throw Unsupported("b2c: field " + f.name +
                              " must hold a " + f.klass + " instance");
          }
          S2FA_REQUIRE(value.object->fields.size() == f.members.size(),
                       "nested object field count mismatch in " << f.name);
          for (std::size_t m = 0; m < f.members.size(); ++m) {
            bind_any(f.members[m], value.object->fields[m]);
          }
          return;
        }
        bind_field(f, leaf_counter++, value);
      };

  if (spec_.output.type.is_class()) {
    if (ret.kind != SymValue::Kind::kObject) {
      throw Unsupported("b2c: kernel must return a " +
                        spec_.output.type.class_name() + " instance");
    }
    S2FA_REQUIRE(ret.object->fields.size() == spec_.output.fields.size(),
                 "returned object field count mismatch");
    for (std::size_t k = 0; k < spec_.output.fields.size(); ++k) {
      bind_any(spec_.output.fields[k], ret.object->fields[k]);
    }
    return;
  }
  bind_any(spec_.output.fields[0], ret);
}

void Compiler::AppendReduceTemplate(MethodCtx& ctx,
                                    std::vector<StmtPtr>& kernel_stmts,
                                    std::vector<StmtPtr>& body_stmts) {
  // Fold the per-task return back into the scalar accumulators, through
  // temporaries so later accumulators see the pre-update values.
  const SymValue& ret = ctx.ret;
  std::vector<ExprPtr> new_values;
  if (spec_.output.type.is_class()) {
    if (ret.kind != SymValue::Kind::kObject) {
      throw Unsupported("b2c: reduce kernel must return its tuple type");
    }
    for (std::size_t k = 0; k < spec_.output.fields.size(); ++k) {
      if (spec_.output.fields[k].is_composite()) {
        throw Unsupported("b2c: reduce outputs must be flat scalar fields");
      }
      const SymValue& field = ret.object->fields[k];
      if (field.kind != SymValue::Kind::kExpr) {
        throw Unsupported(
            "b2c: reduce outputs must be scalar fields (array-typed "
            "accumulators unsupported)");
      }
      new_values.push_back(field.expr);
    }
  } else {
    if (ret.kind != SymValue::Kind::kExpr) {
      throw Unsupported("b2c: reduce kernel must return a scalar");
    }
    new_values.push_back(ret.expr);
  }

  if (new_values.size() == 1) {
    const Type& t = spec_.output.fields[0].element;
    body_stmts.push_back(
        Stmt::Assign(Expr::Var(acc_vars_[0], t), new_values[0]));
  } else {
    std::vector<std::string> temps;
    for (std::size_t k = 0; k < new_values.size(); ++k) {
      std::string tmp = NewTemp();
      temps.push_back(tmp);
      body_stmts.push_back(Stmt::Decl(
          tmp, spec_.output.fields[k].element, new_values[k]));
    }
    for (std::size_t k = 0; k < new_values.size(); ++k) {
      const Type& t = spec_.output.fields[k].element;
      body_stmts.push_back(Stmt::Assign(Expr::Var(acc_vars_[k], t),
                                        Expr::Var(temps[k], t)));
    }
  }

  // Wrap in the task loop and flush accumulators to the output buffers.
  // A short final batch is zero-padded by the runtime; padded tasks must
  // not touch the accumulators, so the body is guarded by `i < N`.
  auto guard = Expr::Binary(BinaryOp::kLt, Expr::Var(kTaskVar, Type::Int()),
                            Expr::Var("N", Type::Int()));
  StmtPtr guarded =
      Stmt::If(guard, Stmt::Block(std::move(body_stmts)), nullptr);
  body_stmts = {guarded};
  int task_id = NextLoopId();
  auto task_loop =
      Stmt::For(task_id, kTaskVar, spec_.batch, Stmt::Block(body_stmts));
  task_loop->set_inserted_by_template(true);
  // The template loop is a reduction only when every accumulator update is
  // associative (checked by the post-pass below like any other loop).
  kernel_.task_loop_id = task_id;
  kernel_stmts.push_back(task_loop);
  for (std::size_t k = 0; k < acc_vars_.size(); ++k) {
    const Type& t = spec_.output.fields[k].element;
    kernel_stmts.push_back(
        Stmt::Assign(Expr::ArrayRef(OutputBufferName(k), t, Expr::IntLit(0)),
                     Expr::Var(acc_vars_[k], t)));
  }
}

kir::Kernel Compiler::Run() {
  const jvm::Klass& klass = pool_.Get(spec_.klass);
  const jvm::Method& method = klass.GetMethod(spec_.method);
  jvm::VerifyOrThrow(pool_, method);

  S2FA_REQUIRE(!spec_.input.fields.empty() && !spec_.output.fields.empty(),
               "kernel spec needs input and output field layouts");
  S2FA_REQUIRE(spec_.batch >= 1, "batch must be >= 1");

  kernel_.name = spec_.kernel_name.empty() ? spec_.klass : spec_.kernel_name;
  kernel_.pattern = spec_.pattern;
  kernel_.scalars.push_back({"N", Type::Int()});

  // Off-chip interface buffers.
  const bool is_reduce = spec_.pattern == ParallelPattern::kReduce;
  {
    std::size_t k = 0;
    ForEachLeaf(spec_.input.fields, "",
                [&](const FieldSpec& f, const std::string& path) {
                  Buffer b;
                  b.name = InputBufferName(k++);
                  b.element = f.element;
                  b.length = f.broadcast ? f.length : spec_.batch * f.length;
                  b.per_task = f.length;
                  b.kind = BufferKind::kInput;
                  b.source_field = (f.broadcast ? "bcast." : "in.") + path;
                  kernel_.buffers.push_back(b);
                });
  }
  {
    std::size_t k = 0;
    ForEachLeaf(spec_.output.fields, "",
                [&](const FieldSpec& f, const std::string& path) {
                  S2FA_REQUIRE(!f.broadcast,
                               "output fields cannot be broadcast");
                  Buffer b;
                  b.name = OutputBufferName(k++);
                  b.element = f.element;
                  b.length = is_reduce ? f.length : spec_.batch * f.length;
                  b.per_task = f.length;
                  b.kind = BufferKind::kOutput;
                  b.source_field = "ret." + path;
                  kernel_.buffers.push_back(b);
                });
  }

  MethodCtx ctx;
  ctx.method = &method;
  ctx.locals.resize(static_cast<std::size_t>(method.max_locals));
  int slot = 0;
  if (!method.is_static) {
    ctx.locals[0].kind = SymValue::Kind::kNone;  // `this`: unsupported uses
    slot = 1;
  }

  std::vector<StmtPtr> kernel_stmts;  // before the task loop
  std::vector<StmtPtr> body_stmts;    // inside the task loop

  if (is_reduce) {
    S2FA_REQUIRE(method.signature.params.size() == 2,
                 "reduce kernel method must take (acc, element)");
    // Accumulators: one scalar variable per output field, zero-initialized
    // (the reduce template assumes a zero identity).
    SymValue acc;
    if (spec_.output.type.is_class()) {
      acc.kind = SymValue::Kind::kObject;
      acc.object = std::make_shared<SymObject>();
      acc.object->klass = spec_.output.type.class_name();
    }
    for (std::size_t k = 0; k < spec_.output.fields.size(); ++k) {
      const FieldSpec& f = spec_.output.fields[k];
      if (f.is_array) {
        throw Unsupported("b2c: reduce with array-typed fields unsupported");
      }
      std::string name = "acc" + std::to_string(k + 1);
      acc_vars_.push_back(name);
      kernel_stmts.push_back(Stmt::Decl(name, f.element, ZeroOf(f.element)));
      SymValue field = SymValue::OfExpr(Expr::Var(name, f.element));
      if (acc.kind == SymValue::Kind::kObject) {
        acc.object->fields.push_back(field);
      } else {
        acc = field;
      }
    }
    ctx.locals[static_cast<std::size_t>(slot)] = acc;
    slot += method.signature.params[0].is_wide() ? 2 : 1;
    ctx.locals[static_cast<std::size_t>(slot)] =
        BindParameter(spec_.input, /*is_input=*/true, "in_", kernel_stmts);
  } else {
    S2FA_REQUIRE(method.signature.params.size() == 1,
                 "map kernel method must take exactly the input element");
    ctx.locals[static_cast<std::size_t>(slot)] =
        BindParameter(spec_.input, /*is_input=*/true, "in_", kernel_stmts);
  }

  std::vector<SymValue> stack;
  CompileRange(ctx, 0, method.code.size(), stack, body_stmts,
               /*top_level=*/true);
  if (!ctx.saw_return) {
    throw Unsupported("b2c: kernel method has no reachable tail return");
  }

  if (is_reduce) {
    AppendReduceTemplate(ctx, kernel_stmts, body_stmts);
  } else {
    AppendMapOutputBinding(ctx.ret, body_stmts);
    int task_id = NextLoopId();
    auto task_loop =
        Stmt::For(task_id, kTaskVar, spec_.batch, Stmt::Block(body_stmts));
    task_loop->set_inserted_by_template(true);
    kernel_.task_loop_id = task_id;
    kernel_stmts.push_back(task_loop);
  }

  kernel_.body = Stmt::Block(std::move(kernel_stmts));

  // Mark reduction loops for the Merlin tree-reduction transform: every
  // carrier must be a scalar updated in associative-reduction form
  // (`acc = acc + x`); first-order recurrences like `acc = (acc + x) * n`
  // keep their serial initiation interval.
  for (Stmt* loop : kernel_.Loops()) {
    kir::LoopRecurrence rec = kir::AnalyzeRecurrence(*loop);
    if (rec.carried && !rec.carriers.empty()) {
      bool reducible = true;
      for (const auto& carrier : rec.carriers) {
        if (kernel_.FindBuffer(carrier) != nullptr ||
            !kir::IsAssociativeReduction(*loop, carrier)) {
          reducible = false;
          continue;
        }
        // Merlin's tree rewrite reorders floating-point addition; the flow
        // allows that for single precision (relaxed-FP) but keeps strict
        // IEEE ordering for double-precision accumulators, whose serial
        // add chain then floors the initiation interval (the paper's LR:
        // "the minimal initiation interval is still 13").
        bool is_double = false;
        kir::VisitStmt(
            loop->body(),
            std::function<void(const kir::Stmt&)>([&](const kir::Stmt& s) {
              if (s.kind() == kir::StmtKind::kAssign &&
                  s.lhs()->kind() == kir::ExprKind::kVar &&
                  s.lhs()->name() == carrier &&
                  s.lhs()->type().kind() == kir::TypeKind::kDouble) {
                is_double = true;
              }
            }));
        if (is_double) reducible = false;
      }
      if (reducible) loop->set_is_reduction(true);
    }
  }

  kernel_.Validate();
  return kernel_;
}

}  // namespace

std::string InputBufferName(std::size_t field_index) {
  return "in_" + std::to_string(field_index + 1);
}

std::string OutputBufferName(std::size_t field_index) {
  return "out_" + std::to_string(field_index + 1);
}

kir::Kernel CompileKernel(const jvm::ClassPool& pool, const KernelSpec& spec) {
  S2FA_SPAN("b2c.compile");
  kir::Kernel kernel = Compiler(pool, spec).Run();
  S2FA_COUNT("b2c.kernels_compiled", 1);
  S2FA_COUNT("b2c.bytecode_insns",
             static_cast<std::int64_t>(
                 pool.Get(spec.klass).GetMethod(spec.method).code.size()));
  S2FA_COUNT("b2c.loops_emitted",
             static_cast<std::int64_t>(kernel.Loops().size()));
  S2FA_COUNT("b2c.buffers_emitted",
             static_cast<std::int64_t>(kernel.buffers.size()));
  return kernel;
}

}  // namespace s2fa::b2c
