// The bytecode-to-C compiler (paper §3.2).
//
// Lowers a verified kernel method from bytecode to a kir::Kernel:
//
//   * abstract interpretation of the JVM operand stack builds expression
//     trees; locals holding primitives become C variables, locals holding
//     references stay symbolic;
//   * composite types are flattened: getfield on the kernel parameter
//     resolves to a flat input buffer, output objects are decomposed into
//     flat output buffers (Challenge 1);
//   * user method calls are inlined (HLS C has no call stack to speak of);
//   * structured control flow is reconstructed from the canonical branch
//     patterns scalac emits: counted loops and if/else diamonds, including
//     value-producing conditionals (merged through a temporary);
//   * the RDD transformation template (map/reduce) wraps the body in the
//     outermost task loop (Code 3).
//
// Everything outside those canonical patterns throws Unsupported with a
// diagnostic — the same contract the paper states in §3.3.
#pragma once

#include "b2c/spec.h"
#include "jvm/klass.h"
#include "kir/kernel.h"

namespace s2fa::b2c {

// Compiles `spec.klass.method` from `pool` into a kernel. Verifies the
// bytecode first. Throws MalformedInput / Unsupported on violations.
kir::Kernel CompileKernel(const jvm::ClassPool& pool, const KernelSpec& spec);

// Buffer naming used by the flattener (shared with the Blaze glue):
// input field k -> "in_<k+1>", output field k -> "out_<k+1>",
// local arrays -> "loc<n>".
std::string InputBufferName(std::size_t field_index);
std::string OutputBufferName(std::size_t field_index);

}  // namespace s2fa::b2c
