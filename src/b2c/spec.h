// Kernel compilation specification.
//
// Blaze kernels are classes implementing `call(in: T): U` (paper Code 1).
// The KernelSpec tells the bytecode-to-C compiler how T and U flatten into
// accelerator buffers: one FieldSpec per flattened field, in field order.
// Per-task lengths are compile-time constants, mirroring the paper's §3.3
// restriction that all allocation sizes are constant (Code 2 uses 128-char
// strings and 256-char outputs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "jvm/type.h"
#include "kir/kernel.h"

namespace s2fa::b2c {

// One field of the kernel's input or output type. A field is either a
// *leaf* (primitive scalar or primitive array) or a nested *composite*
// (a tuple class whose members flatten recursively — the "more
// object-oriented constructs" extension of the paper's future work).
struct FieldSpec {
  // Source name for diagnostics and serialization glue, e.g. "_1".
  std::string name;
  // Element type. For a scalar field this is the scalar's type.
  jvm::Type element;
  // Elements per task; 1 for scalar fields.
  std::int64_t length = 1;

  bool is_scalar() const { return length == 1 && !is_array; }
  // True when the JVM-level field is an array (even of length 1).
  bool is_array = false;
  // Broadcast fields carry per-invocation data shared by every task (e.g.
  // KMeans centroids, AES round keys) instead of per-task data. The
  // generated kernel bursts them into on-chip buffers before the task loop.
  bool broadcast = false;

  // Non-empty for a nested composite: the member layout, in the same order
  // as the fields of `klass` in the ClassPool. element/length/is_array are
  // ignored for composite fields.
  std::vector<FieldSpec> members;
  // Class name of the nested composite (must be defined in the pool).
  std::string klass;

  bool is_composite() const { return !members.empty(); }
};

// Invokes `fn(leaf, dotted_path)` for every leaf field reachable from
// `fields`, in declaration order — the flattening walk shared by the
// compiler, the serialization plan, and the JVM baseline.
template <typename Fn>
void ForEachLeaf(const std::vector<FieldSpec>& fields,
                 const std::string& prefix, Fn&& fn) {
  for (const FieldSpec& f : fields) {
    const std::string path = prefix.empty() ? f.name : prefix + "." + f.name;
    if (f.is_composite()) {
      ForEachLeaf(f.members, path, fn);
    } else {
      fn(f, path);
    }
  }
}

// Flattened layout of a composite (or primitive) type.
struct IoSpec {
  // The JVM-level type of the parameter/return value. For a tuple class,
  // `fields` lists its fields in declaration order; for an array or
  // primitive, exactly one field describes it.
  jvm::Type type;
  std::vector<FieldSpec> fields;

  std::int64_t ElementsPerTask() const {
    std::int64_t total = 0;
    for (const auto& f : fields) total += f.length;
    return total;
  }
};

struct KernelSpec {
  std::string kernel_name;       // generated C function name
  std::string klass;             // kernel class in the ClassPool
  std::string method = "call";   // the RDD lambda body
  kir::ParallelPattern pattern = kir::ParallelPattern::kMap;
  IoSpec input;
  IoSpec output;
  // Tasks per accelerator invocation: the trip count of the template-
  // inserted outermost loop (constant so the design space has exact trip
  // counts, matching Table 1's TC(L)).
  std::int64_t batch = 256;
};

}  // namespace s2fa::b2c
