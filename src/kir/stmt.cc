#include "kir/stmt.h"

#include <memory>
#include <sstream>

#include "kir/arena.h"
#include "support/error.h"
#include "support/strings.h"

namespace s2fa::kir {

StmtPtr Stmt::New() {
  return std::allocate_shared<Stmt>(arena::PoolAllocator<Stmt>(), Token{});
}

StmtPtr Stmt::Assign(ExprPtr lhs, ExprPtr rhs) {
  S2FA_REQUIRE(lhs != nullptr && rhs != nullptr, "assign operand is null");
  S2FA_REQUIRE(lhs->kind() == ExprKind::kVar ||
                   lhs->kind() == ExprKind::kArrayRef,
               "assign lhs must be a variable or array element, got "
                   << lhs->ToString());
  auto s = New();
  s->kind_ = StmtKind::kAssign;
  s->lhs_ = std::move(lhs);
  s->rhs_ = std::move(rhs);
  return s;
}

StmtPtr Stmt::Decl(std::string name, Type type, ExprPtr init) {
  S2FA_REQUIRE(!name.empty(), "declaration needs a name");
  auto s = New();
  s->kind_ = StmtKind::kDecl;
  s->name_ = std::move(name);
  s->type_ = type;
  s->rhs_ = std::move(init);
  return s;
}

StmtPtr Stmt::If(ExprPtr cond, StmtPtr then_stmt, StmtPtr else_stmt) {
  S2FA_REQUIRE(cond != nullptr && then_stmt != nullptr,
               "if needs a condition and a then-branch");
  auto s = New();
  s->kind_ = StmtKind::kIf;
  s->lhs_ = std::move(cond);
  s->body_ = std::move(then_stmt);
  s->else_ = std::move(else_stmt);
  return s;
}

StmtPtr Stmt::For(int loop_id, std::string var, std::int64_t trip_count,
                  StmtPtr body) {
  S2FA_REQUIRE(loop_id >= 0, "loop id must be non-negative");
  S2FA_REQUIRE(trip_count >= 1, "loop " << loop_id << " trip count "
                                        << trip_count << " < 1");
  S2FA_REQUIRE(body != nullptr, "loop body is null");
  auto s = New();
  s->kind_ = StmtKind::kFor;
  s->loop_id_ = loop_id;
  s->name_ = std::move(var);
  s->trip_count_ = trip_count;
  s->body_ = std::move(body);
  return s;
}

StmtPtr Stmt::Block(std::vector<StmtPtr> stmts) {
  for (const auto& st : stmts) {
    S2FA_REQUIRE(st != nullptr, "null statement in block");
  }
  auto s = New();
  s->kind_ = StmtKind::kBlock;
  s->stmts_ = std::move(stmts);
  return s;
}

StmtPtr Stmt::Clone() const {
  auto s = New();
  s->kind_ = kind_;
  s->lhs_ = lhs_;
  s->rhs_ = rhs_;
  s->name_ = name_;
  s->type_ = type_;
  s->loop_id_ = loop_id_;
  s->trip_count_ = trip_count_;
  s->inserted_by_template_ = inserted_by_template_;
  s->is_reduction_ = is_reduction_;
  s->annotations_ = annotations_;
  if (body_) s->body_ = body_->Clone();
  if (else_) s->else_ = else_->Clone();
  s->stmts_.reserve(stmts_.size());
  for (const auto& st : stmts_) s->stmts_.push_back(st->Clone());
  return s;
}

std::string Stmt::ToString() const {
  std::ostringstream oss;
  switch (kind_) {
    case StmtKind::kAssign:
      oss << lhs_->ToString() << " = " << rhs_->ToString() << ";";
      break;
    case StmtKind::kDecl:
      oss << type_.ToString() << " " << name_;
      if (rhs_) oss << " = " << rhs_->ToString();
      oss << ";";
      break;
    case StmtKind::kIf:
      oss << "if (" << lhs_->ToString() << ") {\n"
          << Indent(body_->ToString(), 2) << "\n}";
      if (else_) {
        oss << " else {\n" << Indent(else_->ToString(), 2) << "\n}";
      }
      break;
    case StmtKind::kFor: {
      for (const auto& [key, value] : annotations_) {
        oss << "#pragma " << key << (value.empty() ? "" : " " + value) << "\n";
      }
      oss << "for (int " << name_ << " = 0; " << name_ << " < " << trip_count_
          << "; " << name_ << "++) {  // L" << loop_id_ << "\n"
          << Indent(body_->ToString(), 2) << "\n}";
      break;
    }
    case StmtKind::kBlock: {
      bool first = true;
      for (const auto& st : stmts_) {
        if (!first) oss << "\n";
        first = false;
        oss << st->ToString();
      }
      break;
    }
  }
  return oss.str();
}

void ReplaceStmtExprs(Stmt& stmt,
                      const std::function<ExprPtr(const ExprPtr&)>& fn) {
  switch (stmt.kind()) {
    case StmtKind::kAssign: {
      ExprPtr lhs = fn(stmt.lhs());
      ExprPtr rhs = fn(stmt.rhs());
      // Rebuild through the factory so lhs lvalue-ness stays checked.
      Stmt rebuilt = *Stmt::Assign(lhs, rhs);
      stmt = rebuilt;
      break;
    }
    case StmtKind::kDecl:
      if (stmt.init()) {
        Stmt rebuilt = *Stmt::Decl(stmt.decl_name(), stmt.decl_type(),
                                   fn(stmt.init()));
        stmt = rebuilt;
      }
      break;
    case StmtKind::kIf: {
      Stmt rebuilt = *Stmt::If(fn(stmt.cond()), stmt.then_stmt(),
                               stmt.else_stmt());
      stmt = rebuilt;
      break;
    }
    default:
      break;
  }
}

void RewriteAllExprs(const StmtPtr& root,
                     const std::function<ExprPtr(const ExprPtr&)>& fn) {
  VisitStmt(root, std::function<void(Stmt&)>(
                      [&fn](Stmt& s) { ReplaceStmtExprs(s, fn); }));
}

void VisitStmt(const StmtPtr& stmt, const std::function<void(Stmt&)>& fn) {
  S2FA_REQUIRE(stmt != nullptr, "visiting null statement");
  fn(*stmt);
  if (stmt->kind() == StmtKind::kIf) {
    VisitStmt(stmt->then_stmt(), fn);
    if (stmt->else_stmt()) VisitStmt(stmt->else_stmt(), fn);
  } else if (stmt->kind() == StmtKind::kFor) {
    VisitStmt(stmt->body(), fn);
  } else if (stmt->kind() == StmtKind::kBlock) {
    for (const auto& st : stmt->stmts()) VisitStmt(st, fn);
  }
}

void VisitStmt(const StmtPtr& stmt,
               const std::function<void(const Stmt&)>& fn) {
  VisitStmt(stmt, std::function<void(Stmt&)>(
                      [&fn](Stmt& s) { fn(const_cast<const Stmt&>(s)); }));
}

std::vector<Stmt*> CollectLoops(const StmtPtr& root) {
  std::vector<Stmt*> loops;
  VisitStmt(root, std::function<void(Stmt&)>([&loops](Stmt& s) {
              if (s.kind() == StmtKind::kFor) loops.push_back(&s);
            }));
  return loops;
}

std::vector<const Stmt*> CollectLoops(const Stmt* root) {
  std::vector<const Stmt*> loops;
  // Const walk without shared ownership: local recursion.
  std::function<void(const Stmt&)> walk = [&](const Stmt& s) {
    if (s.kind() == StmtKind::kFor) loops.push_back(&s);
    if (s.kind() == StmtKind::kIf) {
      walk(*s.then_stmt());
      if (s.else_stmt()) walk(*s.else_stmt());
    } else if (s.kind() == StmtKind::kFor) {
      walk(*s.body());
    } else if (s.kind() == StmtKind::kBlock) {
      for (const auto& st : s.stmts()) walk(*st);
    }
  };
  S2FA_REQUIRE(root != nullptr, "null root");
  walk(*root);
  return loops;
}

Stmt* FindLoop(const StmtPtr& root, int loop_id) {
  for (Stmt* loop : CollectLoops(root)) {
    if (loop->loop_id() == loop_id) return loop;
  }
  return nullptr;
}

}  // namespace s2fa::kir
