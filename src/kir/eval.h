// Kernel IR functional evaluator.
//
// Executes a kernel on concrete data with the same numeric semantics as the
// bytecode it was compiled from (Java semantics: exact integral compares,
// NaN-propagating signed-zero-aware min/max). Used to prove functional
// equivalence: interpreted bytecode == compiled IR == Merlin-transformed
// IR, the end-to-end correctness obligation of the bytecode-to-C compiler.
//
// Two implementations share that contract:
//
//  - Evaluator (the hot path): a resolution pass at construction compiles
//    the kernel into flat vectors of resolved nodes — every scalar, local,
//    and loop variable gets a dense integer slot, every buffer a dense
//    buffer index, literals are pre-materialized, and binary ops are
//    pre-classified by numeric domain — so evaluation never touches a
//    string-keyed map. This is what the DSE loop and the Blaze runtime run
//    thousands of times per exploration.
//
//  - ReferenceEvaluator: the original map-keyed tree walker, retained as
//    executable reference semantics. The differential fuzz harness runs
//    every random kernel through both and requires bit-identical buffers,
//    so the fast path can never silently diverge.
//
// Both count one step per IR node visited (same runaway budget), and both
// keep the map-keyed Run signature, so they are drop-in interchangeable.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "jvm/value.h"
#include "kir/kernel.h"

namespace s2fa::kir {

using jvm::Value;

// Buffer contents keyed by buffer name. Inputs must be pre-sized to the
// buffer's declared length times the task count where applicable; outputs
// and locals are zero-initialized by Run if absent.
using BufferMap = std::map<std::string, std::vector<Value>>;

// Slot-resolved evaluator: name lookups are compiled away at construction.
// Not thread-safe; each thread should own its own instance (construction
// cost amortizes over the batches of a run).
class Evaluator {
 public:
  explicit Evaluator(const Kernel& kernel);

  // Runs the kernel. `scalars` provides values for every declared scalar
  // parameter. `buffers` provides inputs and receives outputs. Missing
  // output/local entries are created zero-filled with the declared length;
  // off-chip buffers may be larger than declared (task-batched).
  void Run(const std::map<std::string, Value>& scalars, BufferMap& buffers);

  // Instruction-ish step count of the last Run (sanity/runaway guard).
  std::uint64_t last_steps() const { return steps_; }

 private:
  // Numeric domain of a binary op, pre-classified at resolution time so
  // evaluation switches on a dense enum instead of re-deriving it from
  // Type objects per node.
  enum class BinForm : std::uint8_t {
    kCmpInt,    // comparison, integral operands (exact int64 compare)
    kCmpFloat,  // comparison, floating operands (double compare)
    kLogical,   // kLAnd / kLOr
    kFloat32,   // float arithmetic (computed in float)
    kFloat64,   // double arithmetic
    kInt32,     // int-family arithmetic (computed in int64, narrowed)
    kInt64,     // long arithmetic
  };

  // One resolved expression node; operands are indices into rexprs_.
  struct RExpr {
    ExprKind kind = ExprKind::kIntLit;
    BinForm form = BinForm::kInt32;
    BinaryOp bop = BinaryOp::kAdd;
    UnaryOp uop = UnaryOp::kNeg;
    Intrinsic fn = Intrinsic::kExp;
    TypeKind type = TypeKind::kInt;  // node result type
    TypeKind opnd = TypeKind::kInt;  // first operand's type (unary/binary)
    std::int32_t slot = -1;          // var slot (kVar) / buffer id (kArrayRef)
    std::int32_t a = -1;
    std::int32_t b = -1;
    std::int32_t c = -1;
    Value lit;  // pre-materialized literal (kIntLit / kFloatLit)
  };

  // One resolved statement node; children are indices into rstmts_.
  struct RStmt {
    StmtKind kind = StmtKind::kBlock;
    std::int32_t a = -1;          // rhs / init / cond expression
    std::int32_t index = -1;      // assign-to-array index expression
    std::int32_t slot = -1;       // var slot or buffer id of the target
    bool lhs_is_var = true;       // kAssign: variable vs array element
    TypeKind store = TypeKind::kInt;  // narrow-to type for assign/decl
    Value dflt;                   // decl default (no initializer)
    std::int64_t trip = 0;        // kFor trip count
    std::int32_t body = -1;       // for body / if then
    std::int32_t els = -1;        // if else
    std::vector<std::int32_t> stmts;  // kBlock children
  };

  std::int32_t VarSlot(const std::string& name);
  std::int32_t CompileExpr(const ExprPtr& expr);
  std::int32_t CompileStmt(const Stmt& stmt);
  Value EvalExpr(std::int32_t idx);
  void ExecStmt(std::int32_t idx);

  const Kernel& kernel_;

  // Resolved program (built once at construction).
  std::vector<RExpr> rexprs_;
  std::vector<RStmt> rstmts_;
  std::int32_t root_ = -1;
  std::vector<std::string> var_names_;     // slot -> name (diagnostics)
  std::map<std::string, std::int32_t> var_slots_;
  std::vector<std::int32_t> scalar_slots_;  // kernel_.scalars[i] -> slot
  std::vector<std::int32_t> buffer_ids_;    // kernel_.buffers[i] -> id
  std::map<std::string, std::int32_t> buffer_id_by_name_;

  // Flat runtime environment (reset per Run).
  std::vector<Value> slots_;
  std::vector<std::uint8_t> bound_;
  std::vector<std::vector<Value>*> bufs_;

  std::uint64_t steps_ = 0;
  std::uint64_t max_steps_ = 2'000'000'000ULL;
};

// The legacy map-keyed tree walker (reference semantics; see file comment).
class ReferenceEvaluator {
 public:
  explicit ReferenceEvaluator(const Kernel& kernel);

  void Run(const std::map<std::string, Value>& scalars, BufferMap& buffers);

  std::uint64_t last_steps() const { return steps_; }

 private:
  struct Env {
    std::map<std::string, Value> vars;
    BufferMap* buffers = nullptr;
  };

  Value Eval(const ExprPtr& expr, Env& env);
  void Exec(const Stmt& stmt, Env& env);

  const Kernel& kernel_;
  std::uint64_t steps_ = 0;
  std::uint64_t max_steps_ = 2'000'000'000ULL;
};

}  // namespace s2fa::kir
