// Kernel IR functional evaluator.
//
// Executes a kernel on concrete data with the same numeric semantics as the
// generated C. Used to prove functional equivalence: interpreted bytecode ==
// compiled IR == Merlin-transformed IR, the end-to-end correctness
// obligation of the bytecode-to-C compiler.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "jvm/value.h"
#include "kir/kernel.h"

namespace s2fa::kir {

using jvm::Value;

// Buffer contents keyed by buffer name. Inputs must be pre-sized to the
// buffer's declared length times the task count where applicable; outputs
// and locals are zero-initialized by Run if absent.
using BufferMap = std::map<std::string, std::vector<Value>>;

class Evaluator {
 public:
  explicit Evaluator(const Kernel& kernel);

  // Runs the kernel. `scalars` provides values for every declared scalar
  // parameter. `buffers` provides inputs and receives outputs. Missing
  // output/local entries are created zero-filled with the declared length;
  // off-chip buffers may be larger than declared (task-batched).
  void Run(const std::map<std::string, Value>& scalars, BufferMap& buffers);

  // Instruction-ish step count of the last Run (sanity/runaway guard).
  std::uint64_t last_steps() const { return steps_; }

 private:
  struct Env {
    std::map<std::string, Value> vars;
    BufferMap* buffers = nullptr;
  };

  Value Eval(const ExprPtr& expr, Env& env);
  void Exec(const Stmt& stmt, Env& env);

  const Kernel& kernel_;
  std::uint64_t steps_ = 0;
  std::uint64_t max_steps_ = 2'000'000'000ULL;
};

}  // namespace s2fa::kir
