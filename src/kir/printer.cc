#include "kir/printer.h"

#include <sstream>

#include "support/error.h"
#include "support/strings.h"

namespace s2fa::kir {

std::string CTypeName(const Type& type) {
  switch (type.kind()) {
    case TypeKind::kVoid: return "void";
    case TypeKind::kBoolean: return "char";
    case TypeKind::kByte: return "char";
    case TypeKind::kChar: return "unsigned short";
    case TypeKind::kShort: return "short";
    case TypeKind::kInt: return "int";
    case TypeKind::kLong: return "long long";
    case TypeKind::kFloat: return "float";
    case TypeKind::kDouble: return "double";
    default:
      throw InvalidArgument("no C spelling for type " + type.ToString());
  }
}

namespace {

std::string EmitExpr(const Expr& e);

std::string EmitOperand(const ExprPtr& e) { return EmitExpr(*e); }

std::string EmitExpr(const Expr& e) {
  std::ostringstream oss;
  switch (e.kind()) {
    case ExprKind::kIntLit:
      oss << e.int_value();
      break;
    case ExprKind::kFloatLit: {
      std::ostringstream num;
      num << e.float_value();
      std::string text = num.str();
      // Ensure a C floating literal even for integral values.
      if (text.find('.') == std::string::npos &&
          text.find('e') == std::string::npos &&
          text.find("inf") == std::string::npos &&
          text.find("nan") == std::string::npos) {
        text += ".0";
      }
      oss << text;
      if (e.type().kind() == TypeKind::kFloat) oss << "f";
      break;
    }
    case ExprKind::kVar:
      oss << e.name();
      break;
    case ExprKind::kArrayRef:
      oss << e.name() << "[" << EmitOperand(e.operands()[0]) << "]";
      break;
    case ExprKind::kBinary: {
      BinaryOp op = e.binary_op();
      const auto& a = e.operands()[0];
      const auto& b = e.operands()[1];
      if (op == BinaryOp::kMin || op == BinaryOp::kMax) {
        oss << (op == BinaryOp::kMin ? "S2FA_MIN(" : "S2FA_MAX(")
            << EmitOperand(a) << ", " << EmitOperand(b) << ")";
      } else if (op == BinaryOp::kUShr) {
        oss << "((" << CTypeName(a->type()) << ")((unsigned "
            << (a->type().kind() == TypeKind::kLong ? "long long" : "int")
            << ")" << EmitOperand(a) << " >> " << EmitOperand(b) << "))";
      } else {
        oss << "(" << EmitOperand(a) << " " << BinaryOpName(op) << " "
            << EmitOperand(b) << ")";
      }
      break;
    }
    case ExprKind::kUnary: {
      const char* sym = e.unary_op() == UnaryOp::kNeg
                            ? "-"
                            : e.unary_op() == UnaryOp::kBitNot ? "~" : "!";
      oss << sym << "(" << EmitOperand(e.operands()[0]) << ")";
      break;
    }
    case ExprKind::kCall: {
      // Single-precision kernels call the f-suffixed libm entry points,
      // which HLS maps onto narrower cores.
      const bool single = e.type().kind() == TypeKind::kFloat;
      std::string fn = IntrinsicName(e.intrinsic());
      if (single) {
        fn = (fn == "fabs") ? "fabsf" : fn + "f";
      }
      oss << fn << "(";
      for (std::size_t i = 0; i < e.operands().size(); ++i) {
        if (i > 0) oss << ", ";
        oss << EmitOperand(e.operands()[i]);
      }
      oss << ")";
      break;
    }
    case ExprKind::kCast:
      oss << "(" << CTypeName(e.type()) << ")("
          << EmitOperand(e.operands()[0]) << ")";
      break;
    case ExprKind::kSelect:
      oss << "(" << EmitOperand(e.operands()[0]) << " ? "
          << EmitOperand(e.operands()[1]) << " : "
          << EmitOperand(e.operands()[2]) << ")";
      break;
  }
  return oss.str();
}

void EmitStmt(const Stmt& s, int indent, bool comments, std::ostream& os) {
  std::string pad(static_cast<std::size_t>(indent), ' ');
  switch (s.kind()) {
    case StmtKind::kAssign:
      os << pad << EmitExpr(*s.lhs()) << " = " << EmitExpr(*s.rhs()) << ";\n";
      break;
    case StmtKind::kDecl:
      os << pad << CTypeName(s.decl_type()) << " " << s.decl_name();
      if (s.init()) os << " = " << EmitExpr(*s.init());
      os << ";\n";
      break;
    case StmtKind::kIf:
      os << pad << "if (" << EmitExpr(*s.cond()) << ") {\n";
      EmitStmt(*s.then_stmt(), indent + 2, comments, os);
      os << pad << "}";
      if (s.else_stmt()) {
        os << " else {\n";
        EmitStmt(*s.else_stmt(), indent + 2, comments, os);
        os << pad << "}";
      }
      os << "\n";
      break;
    case StmtKind::kFor: {
      for (const auto& [key, value] : s.annotations()) {
        os << pad << "#pragma " << key << (value.empty() ? "" : " " + value)
           << "\n";
      }
      os << pad << "for (int " << s.loop_var() << " = 0; " << s.loop_var()
         << " < " << s.trip_count() << "; " << s.loop_var() << "++) {";
      if (comments) os << "  /* L" << s.loop_id() << " */";
      os << "\n";
      EmitStmt(*s.body(), indent + 2, comments, os);
      os << pad << "}\n";
      break;
    }
    case StmtKind::kBlock:
      for (const auto& st : s.stmts()) EmitStmt(*st, indent, comments, os);
      break;
  }
}

}  // namespace

std::string EmitExprC(const ExprPtr& expr) {
  S2FA_REQUIRE(expr != nullptr, "null expression");
  return EmitExpr(*expr);
}

std::string EmitStmtC(const StmtPtr& stmt, int indent) {
  S2FA_REQUIRE(stmt != nullptr, "null statement");
  std::ostringstream oss;
  EmitStmt(*stmt, indent, /*comments=*/false, oss);
  return oss.str();
}

std::string EmitC(const Kernel& kernel, const CEmitOptions& options) {
  std::ostringstream os;
  if (options.emit_comments) {
    os << "/* Generated by the S2FA bytecode-to-C compiler.\n"
       << " * Kernel: " << kernel.name << " (pattern: "
       << PatternName(kernel.pattern) << ")\n"
       << " */\n";
  }
  if (options.emit_prelude) {
    os << "#include <math.h>\n"
       << "#define S2FA_MIN(a, b) ((a) < (b) ? (a) : (b))\n"
       << "#define S2FA_MAX(a, b) ((a) > (b) ? (a) : (b))\n\n";
  }

  // Top-level function signature: scalars, then off-chip buffers.
  os << "void " << kernel.name << "(";
  bool first = true;
  for (const auto& s : kernel.scalars) {
    if (!first) os << ", ";
    first = false;
    os << CTypeName(s.type) << " " << s.name;
  }
  for (const auto& b : kernel.buffers) {
    if (b.kind == BufferKind::kLocal) continue;
    if (!first) os << ", ";
    first = false;
    os << CTypeName(b.element) << " *" << b.name;
  }
  os << ") {\n";

  for (const auto& b : kernel.buffers) {
    if (b.kind != BufferKind::kLocal) continue;
    os << "  static " << CTypeName(b.element) << " " << b.name << "["
       << b.length << "];";
    if (options.emit_comments && !b.source_field.empty()) {
      os << "  /* from " << b.source_field << " */";
    }
    os << "\n";
  }

  EmitStmt(*kernel.body, 2, options.emit_comments, os);
  os << "}\n";
  return os.str();
}

}  // namespace s2fa::kir
