#include "kir/analysis.h"

#include <algorithm>
#include <functional>
#include <set>

#include "support/error.h"

namespace s2fa::kir {

// ------------------------------------------------------------ loop tree

namespace {

void BuildTreeFrom(const Stmt& stmt, int depth,
                   std::vector<LoopTreeNode>& siblings) {
  switch (stmt.kind()) {
    case StmtKind::kFor: {
      LoopTreeNode node;
      node.loop = &stmt;
      node.depth = depth;
      BuildTreeFrom(*stmt.body(), depth + 1, node.children);
      siblings.push_back(std::move(node));
      break;
    }
    case StmtKind::kIf:
      BuildTreeFrom(*stmt.then_stmt(), depth, siblings);
      if (stmt.else_stmt()) BuildTreeFrom(*stmt.else_stmt(), depth, siblings);
      break;
    case StmtKind::kBlock:
      for (const auto& st : stmt.stmts()) BuildTreeFrom(*st, depth, siblings);
      break;
    default:
      break;
  }
}

void CollectPreOrder(const std::vector<LoopTreeNode>& nodes,
                     std::vector<const LoopTreeNode*>& out) {
  for (const auto& node : nodes) {
    out.push_back(&node);
    CollectPreOrder(node.children, out);
  }
}

}  // namespace

LoopTree BuildLoopTree(const Kernel& kernel) {
  S2FA_REQUIRE(kernel.body != nullptr, "kernel has no body");
  LoopTree tree;
  BuildTreeFrom(*kernel.body, 0, tree.roots);
  return tree;
}

std::size_t LoopTree::size() const { return PreOrder().size(); }

int LoopTree::max_depth() const {
  int depth = -1;
  for (const LoopTreeNode* node : PreOrder()) {
    depth = std::max(depth, node->depth);
  }
  return depth;
}

std::vector<const LoopTreeNode*> LoopTree::PreOrder() const {
  std::vector<const LoopTreeNode*> out;
  CollectPreOrder(roots, out);
  return out;
}

const LoopTreeNode* LoopTree::Find(int loop_id) const {
  for (const LoopTreeNode* node : PreOrder()) {
    if (node->loop->loop_id() == loop_id) return node;
  }
  return nullptr;
}

// ------------------------------------------------------------ op census

OpCounts& OpCounts::operator+=(const OpCounts& other) {
  int_alu += other.int_alu;
  int_mul += other.int_mul;
  int_div += other.int_div;
  fp_add += other.fp_add;
  fp_mul += other.fp_mul;
  fp_div += other.fp_div;
  exp_like += other.exp_like;
  sqrt_like += other.sqrt_like;
  mem_read += other.mem_read;
  mem_write += other.mem_write;
  for (const auto& [name, n] : other.buffer_reads) buffer_reads[name] += n;
  for (const auto& [name, n] : other.buffer_writes) buffer_writes[name] += n;
  return *this;
}

OpCounts CountExprOps(const ExprPtr& expr) {
  OpCounts counts;
  VisitExpr(expr, [&counts](const Expr& node) {
    switch (node.kind()) {
      case ExprKind::kArrayRef:
        ++counts.mem_read;
        ++counts.buffer_reads[node.name()];
        break;
      case ExprKind::kBinary: {
        const bool fp = node.operands()[0]->type().is_floating();
        switch (node.binary_op()) {
          case BinaryOp::kMul:
            ++(fp ? counts.fp_mul : counts.int_mul);
            break;
          case BinaryOp::kDiv:
          case BinaryOp::kRem:
            ++(fp ? counts.fp_div : counts.int_div);
            break;
          default:
            ++(fp ? counts.fp_add : counts.int_alu);
            break;
        }
        break;
      }
      case ExprKind::kUnary:
        ++(node.operands()[0]->type().is_floating() ? counts.fp_add
                                                    : counts.int_alu);
        break;
      case ExprKind::kCall:
        if (node.intrinsic() == Intrinsic::kSqrt) {
          ++counts.sqrt_like;
        } else if (node.intrinsic() == Intrinsic::kAbs) {
          ++counts.fp_add;
        } else {
          ++counts.exp_like;
        }
        break;
      case ExprKind::kSelect:
        ++counts.int_alu;  // the mux
        break;
      default:
        break;
    }
  });
  return counts;
}

namespace {

OpCounts CountAssign(const Stmt& s) {
  OpCounts counts = CountExprOps(s.rhs());
  if (s.lhs()->kind() == ExprKind::kArrayRef) {
    // The LHS index is computed; the element access is a write, not a read.
    counts += CountExprOps(s.lhs()->operands()[0]);
    ++counts.mem_write;
    ++counts.buffer_writes[s.lhs()->name()];
  }
  return counts;
}

OpCounts CountStmt(const Stmt& stmt, bool include_loops, bool weighted) {
  OpCounts counts;
  switch (stmt.kind()) {
    case StmtKind::kAssign:
      counts += CountAssign(stmt);
      break;
    case StmtKind::kDecl:
      if (stmt.init()) counts += CountExprOps(stmt.init());
      break;
    case StmtKind::kIf:
      counts += CountExprOps(stmt.cond());
      counts += CountStmt(*stmt.then_stmt(), include_loops, weighted);
      if (stmt.else_stmt()) {
        counts += CountStmt(*stmt.else_stmt(), include_loops, weighted);
      }
      break;
    case StmtKind::kFor: {
      if (!include_loops) break;
      OpCounts body = CountStmt(*stmt.body(), include_loops, weighted);
      if (weighted) {
        const std::int64_t trip = stmt.trip_count();
        OpCounts scaled;
        auto mul = [trip](int v) {
          return static_cast<int>(std::min<std::int64_t>(
              static_cast<std::int64_t>(v) * trip, INT32_MAX));
        };
        scaled.int_alu = mul(body.int_alu);
        scaled.int_mul = mul(body.int_mul);
        scaled.int_div = mul(body.int_div);
        scaled.fp_add = mul(body.fp_add);
        scaled.fp_mul = mul(body.fp_mul);
        scaled.fp_div = mul(body.fp_div);
        scaled.exp_like = mul(body.exp_like);
        scaled.sqrt_like = mul(body.sqrt_like);
        scaled.mem_read = mul(body.mem_read);
        scaled.mem_write = mul(body.mem_write);
        for (const auto& [name, n] : body.buffer_reads) {
          scaled.buffer_reads[name] = mul(n);
        }
        for (const auto& [name, n] : body.buffer_writes) {
          scaled.buffer_writes[name] = mul(n);
        }
        counts += scaled;
      } else {
        counts += body;
      }
      break;
    }
    case StmtKind::kBlock:
      for (const auto& st : stmt.stmts()) {
        counts += CountStmt(*st, include_loops, weighted);
      }
      break;
  }
  return counts;
}

}  // namespace

OpCounts CountStraightLineOps(const Stmt& stmt) {
  // Statements directly under `stmt`, not entering nested loops. If `stmt`
  // itself is a loop, analyze its body.
  const Stmt& root = stmt.kind() == StmtKind::kFor ? *stmt.body() : stmt;
  return CountStmt(root, /*include_loops=*/false, /*weighted=*/false);
}

OpCounts CountTotalOps(const Stmt& stmt) {
  return CountStmt(stmt, /*include_loops=*/true, /*weighted=*/true);
}

// ----------------------------------------------------------- recurrence

namespace {

// Collects names declared by kDecl inside `stmt` (loop-private scalars) and
// loop variables of nested loops.
void CollectPrivateNames(const Stmt& stmt, std::set<std::string>& names) {
  if (stmt.kind() == StmtKind::kDecl) {
    names.insert(stmt.decl_name());
  } else if (stmt.kind() == StmtKind::kFor) {
    names.insert(stmt.loop_var());
    CollectPrivateNames(*stmt.body(), names);
  } else if (stmt.kind() == StmtKind::kIf) {
    CollectPrivateNames(*stmt.then_stmt(), names);
    if (stmt.else_stmt()) CollectPrivateNames(*stmt.else_stmt(), names);
  } else if (stmt.kind() == StmtKind::kBlock) {
    for (const auto& st : stmt.stmts()) CollectPrivateNames(*st, names);
  }
}

void CollectVarReads(const ExprPtr& expr, std::set<std::string>& vars) {
  VisitExpr(expr, [&vars](const Expr& node) {
    if (node.kind() == ExprKind::kVar) vars.insert(node.name());
  });
}

struct AccessRecord {
  const Stmt* assign = nullptr;
  std::set<std::string> reads_vars;        // scalar variables read
  std::map<std::string, std::vector<std::string>> buffer_read_indices;
  std::string written_var;                 // non-empty for scalar writes
  std::string written_buffer;              // non-empty for buffer writes
  std::string written_index;               // textual form of the index
};

void CollectAssigns(const Stmt& stmt, std::vector<AccessRecord>& out) {
  switch (stmt.kind()) {
    case StmtKind::kAssign: {
      AccessRecord rec;
      rec.assign = &stmt;
      CollectVarReads(stmt.rhs(), rec.reads_vars);
      VisitExpr(stmt.rhs(), [&rec](const Expr& node) {
        if (node.kind() == ExprKind::kArrayRef) {
          rec.buffer_read_indices[node.name()].push_back(
              node.operands()[0]->ToString());
        }
      });
      if (stmt.lhs()->kind() == ExprKind::kVar) {
        rec.written_var = stmt.lhs()->name();
      } else {
        rec.written_buffer = stmt.lhs()->name();
        rec.written_index = stmt.lhs()->operands()[0]->ToString();
        CollectVarReads(stmt.lhs()->operands()[0], rec.reads_vars);
        // Reads that feed the LHS index do not form a value recurrence, but
        // buffer reads inside the index expression do count as reads.
        VisitExpr(stmt.lhs()->operands()[0], [&rec](const Expr& node) {
          if (node.kind() == ExprKind::kArrayRef) {
            rec.buffer_read_indices[node.name()].push_back(
                node.operands()[0]->ToString());
          }
        });
      }
      out.push_back(std::move(rec));
      break;
    }
    case StmtKind::kIf:
      CollectAssigns(*stmt.then_stmt(), out);
      if (stmt.else_stmt()) CollectAssigns(*stmt.else_stmt(), out);
      break;
    case StmtKind::kFor:
      CollectAssigns(*stmt.body(), out);
      break;
    case StmtKind::kBlock:
      for (const auto& st : stmt.stmts()) CollectAssigns(*st, out);
      break;
    default:
      break;
  }
}

}  // namespace

namespace {

bool ContainsVar(const ExprPtr& expr, const std::string& name) {
  bool found = false;
  VisitExpr(expr, [&](const Expr& node) {
    if (node.kind() == ExprKind::kVar && node.name() == name) found = true;
  });
  return found;
}

bool IsAssociativeOp(BinaryOp op) {
  return op == BinaryOp::kAdd || op == BinaryOp::kMul ||
         op == BinaryOp::kMin || op == BinaryOp::kMax;
}

}  // namespace

bool IsAssociativeReduction(const Stmt& loop, const std::string& carrier) {
  S2FA_REQUIRE(loop.kind() == StmtKind::kFor, "needs a loop");
  bool all_associative = true;
  bool any_assignment = false;
  std::function<void(const Stmt&)> walk = [&](const Stmt& s) {
    if (s.kind() == StmtKind::kAssign &&
        s.lhs()->kind() == ExprKind::kVar && s.lhs()->name() == carrier) {
      any_assignment = true;
      const ExprPtr& rhs = s.rhs();
      if (rhs->kind() != ExprKind::kBinary ||
          !IsAssociativeOp(rhs->binary_op())) {
        all_associative = false;
        return;
      }
      const ExprPtr& a = rhs->operands()[0];
      const ExprPtr& b = rhs->operands()[1];
      const bool a_is_carrier =
          a->kind() == ExprKind::kVar && a->name() == carrier;
      const bool b_is_carrier =
          b->kind() == ExprKind::kVar && b->name() == carrier;
      if (a_is_carrier == b_is_carrier) {  // zero or both sides
        all_associative = false;
        return;
      }
      const ExprPtr& other = a_is_carrier ? b : a;
      if (ContainsVar(other, carrier)) all_associative = false;
      return;
    }
    if (s.kind() == StmtKind::kIf) {
      walk(*s.then_stmt());
      if (s.else_stmt()) walk(*s.else_stmt());
    } else if (s.kind() == StmtKind::kFor) {
      walk(*s.body());
    } else if (s.kind() == StmtKind::kBlock) {
      for (const auto& st : s.stmts()) walk(*st);
    }
  };
  walk(*loop.body());
  return any_assignment && all_associative;
}

LoopRecurrence AnalyzeRecurrence(const Stmt& loop) {
  S2FA_REQUIRE(loop.kind() == StmtKind::kFor, "recurrence needs a loop");
  LoopRecurrence result;

  std::set<std::string> private_names;
  private_names.insert(loop.loop_var());
  CollectPrivateNames(*loop.body(), private_names);

  std::vector<AccessRecord> assigns;
  CollectAssigns(*loop.body(), assigns);

  // Scalar accumulators: a non-private scalar that is both written and read
  // across the body.
  std::set<std::string> written_scalars;
  for (const auto& rec : assigns) {
    if (!rec.written_var.empty() && private_names.count(rec.written_var) == 0) {
      written_scalars.insert(rec.written_var);
    }
  }
  for (const auto& rec : assigns) {
    for (const auto& v : rec.reads_vars) {
      if (written_scalars.count(v) != 0) {
        result.carried = true;
        if (std::find(result.carriers.begin(), result.carriers.end(), v) ==
            result.carriers.end()) {
          result.carriers.push_back(v);
        }
      }
    }
  }
  if (result.carried) {
    for (const auto& rec : assigns) {
      if (!rec.written_var.empty() &&
          std::find(result.carriers.begin(), result.carriers.end(),
                    rec.written_var) != result.carriers.end()) {
        result.cycle_exprs.push_back(rec.assign->rhs());
      }
    }
  }

  // Buffer wavefronts: buffer written at one index and read at a different
  // index expression within the same body.
  for (const auto& rec : assigns) {
    if (rec.written_buffer.empty()) continue;
    for (const auto& other : assigns) {
      auto it = other.buffer_read_indices.find(rec.written_buffer);
      if (it == other.buffer_read_indices.end()) continue;
      for (const auto& read_index : it->second) {
        if (read_index != rec.written_index) {
          result.carried = true;
          if (std::find(result.carriers.begin(), result.carriers.end(),
                        rec.written_buffer) == result.carriers.end()) {
            result.carriers.push_back(rec.written_buffer);
            result.cycle_exprs.push_back(rec.assign->rhs());
          }
        }
      }
    }
  }

  return result;
}

// ----------------------------------------------------- expression depth

int ExprDepth(const ExprPtr& expr) {
  S2FA_REQUIRE(expr != nullptr, "null expression");
  int max_child = 0;
  for (const auto& operand : expr->operands()) {
    max_child = std::max(max_child, ExprDepth(operand));
  }
  switch (expr->kind()) {
    case ExprKind::kBinary:
    case ExprKind::kUnary:
    case ExprKind::kCall:
    case ExprKind::kSelect:
      return max_child + 1;
    default:
      return max_child;
  }
}

}  // namespace s2fa::kir
