// Kernel IR analyses.
//
// These stand in for the ROSE/polyhedral analyses the paper uses for design
// space identification (§4.1): loop hierarchy, trip counts, operation
// censuses, and loop-carried-dependence (recurrence) detection. Because the
// s2fa programming model restricts kernels to constant trip counts and
// affine single-variable indices, exact answers are computable without a
// full polyhedral model.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "kir/kernel.h"

namespace s2fa::kir {

// ------------------------------------------------------------ loop tree

struct LoopTreeNode {
  const Stmt* loop = nullptr;
  int depth = 0;                       // 0 = outermost
  std::vector<LoopTreeNode> children;  // directly nested loops
};

struct LoopTree {
  std::vector<LoopTreeNode> roots;

  // Total number of loops.
  std::size_t size() const;
  // Maximum nesting depth (0 for a single non-nested loop; -1 if empty).
  int max_depth() const;
  // Flattened pre-order nodes.
  std::vector<const LoopTreeNode*> PreOrder() const;
  // Node for `loop_id`, or nullptr.
  const LoopTreeNode* Find(int loop_id) const;
};

LoopTree BuildLoopTree(const Kernel& kernel);

// ------------------------------------------------------------ op census

struct OpCounts {
  int int_alu = 0;       // add/sub/logic/shift/compare on ints
  int int_mul = 0;
  int int_div = 0;
  int fp_add = 0;        // float/double add/sub/min/max/compare
  int fp_mul = 0;
  int fp_div = 0;
  int exp_like = 0;      // exp/log/pow
  int sqrt_like = 0;     // sqrt
  int mem_read = 0;      // ArrayRef loads
  int mem_write = 0;     // ArrayRef stores
  std::map<std::string, int> buffer_reads;   // per-buffer loads
  std::map<std::string, int> buffer_writes;  // per-buffer stores

  OpCounts& operator+=(const OpCounts& other);
  int TotalCompute() const {
    return int_alu + int_mul + int_div + fp_add + fp_mul + fp_div +
           exp_like + sqrt_like;
  }
};

// Counts operations in one expression tree (reads counted; the root of an
// assignment LHS is a write and must be counted by the caller).
OpCounts CountExprOps(const ExprPtr& expr);

// Counts one iteration of straight-line statements in `stmt`, excluding
// nested loops (the HLS scheduler composes loop levels itself).
OpCounts CountStraightLineOps(const Stmt& stmt);

// Counts everything under `stmt` including nested loop bodies, with each
// nested body multiplied by its trip count. This is the total dynamic work
// of one execution of `stmt`.
OpCounts CountTotalOps(const Stmt& stmt);

// ----------------------------------------------------------- recurrence

// Loop-carried dependence summary for one loop.
struct LoopRecurrence {
  bool carried = false;
  // RHS expressions on the carried cycle: the initiation interval of a
  // pipelined loop cannot be smaller than the latency of the longest one.
  std::vector<ExprPtr> cycle_exprs;
  // Names of the carried scalars/buffers (diagnostics).
  std::vector<std::string> carriers;
};

// True if every assignment to scalar `carrier` inside `loop`'s body has the
// associative-reduction shape `carrier = carrier op X` with op in
// {+, *, min, max} and `carrier` not occurring inside X — the precondition
// for Merlin's tree-reduction rewrite. Chains like `s = (s + a) * b` are
// first-order recurrences, not reductions, and must keep their serial II.
bool IsAssociativeReduction(const Stmt& loop, const std::string& carrier);

// Detects loop-carried dependences of `loop`:
//   - a scalar assigned in the body and also read, unless declared inside
//     the body (loop-private temporaries) — the accumulator pattern;
//   - a buffer written at one index expression and read at a syntactically
//     different index that also depends on an enclosing loop variable —
//     the stencil/wavefront pattern (e.g. Smith-Waterman).
LoopRecurrence AnalyzeRecurrence(const Stmt& loop);

// ----------------------------------------------------- expression depth

// Height of the expression tree counting only compute nodes (used for
// critical-path latency estimates).
int ExprDepth(const ExprPtr& expr);

}  // namespace s2fa::kir
