// Kernel IR statements: assignments, conditionals, counted loops, blocks,
// and scalar declarations.
//
// Loops carry the metadata the design-space builder needs (trip count,
// template provenance, reduction flag) plus free-form annotations used by
// the Merlin pragma layer. Statements are mutable and deep-clonable so
// transformations can rewrite copies without disturbing the original.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kir/expr.h"

namespace s2fa::kir {

enum class StmtKind { kAssign, kDecl, kIf, kFor, kBlock };

class Stmt;
using StmtPtr = std::shared_ptr<Stmt>;

class Stmt {
 public:
  // --- factories ---
  // lhs must be a kVar or kArrayRef expression.
  static StmtPtr Assign(ExprPtr lhs, ExprPtr rhs);
  // Declares scalar `name` with an optional initializer (may be null).
  static StmtPtr Decl(std::string name, Type type, ExprPtr init);
  static StmtPtr If(ExprPtr cond, StmtPtr then_stmt, StmtPtr else_stmt);
  // Counted loop: for (var = 0; var < trip_count; var++) body.
  // Trip counts are compile-time constants (paper §3.3: constant-size new).
  static StmtPtr For(int loop_id, std::string var, std::int64_t trip_count,
                     StmtPtr body);
  static StmtPtr Block(std::vector<StmtPtr> stmts);

  StmtKind kind() const { return kind_; }

  // kAssign
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }
  void set_rhs(ExprPtr rhs) { rhs_ = std::move(rhs); }

  // kDecl
  const std::string& decl_name() const { return name_; }
  const Type& decl_type() const { return type_; }
  const ExprPtr& init() const { return rhs_; }

  // kIf
  const ExprPtr& cond() const { return lhs_; }
  const StmtPtr& then_stmt() const { return body_; }
  const StmtPtr& else_stmt() const { return else_; }

  // kFor
  int loop_id() const { return loop_id_; }
  const std::string& loop_var() const { return name_; }
  std::int64_t trip_count() const { return trip_count_; }
  void set_trip_count(std::int64_t tc) { trip_count_ = tc; }
  const StmtPtr& body() const { return body_; }
  void set_body(StmtPtr body) { body_ = std::move(body); }
  // True for loops inserted by the map/reduce template rather than written
  // by the user (the paper partitions the space on this distinction).
  bool inserted_by_template() const { return inserted_by_template_; }
  void set_inserted_by_template(bool v) { inserted_by_template_ = v; }
  // True if the loop reduces into a scalar/accumulator (tree-reduction
  // candidate for Merlin).
  bool is_reduction() const { return is_reduction_; }
  void set_is_reduction(bool v) { is_reduction_ = v; }
  // Free-form annotations (Merlin pragmas attach here).
  std::map<std::string, std::string>& annotations() { return annotations_; }
  const std::map<std::string, std::string>& annotations() const {
    return annotations_;
  }

  // kBlock
  std::vector<StmtPtr>& stmts() { return stmts_; }
  const std::vector<StmtPtr>& stmts() const { return stmts_; }

  // Deep copy (expressions are shared; they are immutable).
  StmtPtr Clone() const;

  std::string ToString() const;  // debugging form, C-like

 private:
  struct Token {
    explicit Token() = default;
  };

 public:
  // Public only so allocate_shared can construct nodes; Token is private,
  // so the factories remain the sole way to make a Stmt.
  explicit Stmt(Token) {}

 private:
  // Pool-backed node allocation (kir/arena.h), shared with Expr.
  static StmtPtr New();

  StmtKind kind_ = StmtKind::kBlock;
  ExprPtr lhs_;   // assign lhs / if cond
  ExprPtr rhs_;   // assign rhs / decl init
  std::string name_;  // decl name / loop var
  Type type_;         // decl type
  StmtPtr body_;  // if-then / loop body
  StmtPtr else_;
  int loop_id_ = -1;
  std::int64_t trip_count_ = 0;
  bool inserted_by_template_ = false;
  bool is_reduction_ = false;
  std::map<std::string, std::string> annotations_;
  std::vector<StmtPtr> stmts_;
};

// Applies `fn` to every expression held directly by `stmt` (assign lhs/rhs,
// decl init, if condition), replacing each with fn's result.
void ReplaceStmtExprs(Stmt& stmt,
                      const std::function<ExprPtr(const ExprPtr&)>& fn);

// Applies ReplaceStmtExprs to `root` and every nested statement.
void RewriteAllExprs(const StmtPtr& root,
                     const std::function<ExprPtr(const ExprPtr&)>& fn);

// Pre-order walk over all statements (including nested).
void VisitStmt(const StmtPtr& stmt, const std::function<void(Stmt&)>& fn);
void VisitStmt(const StmtPtr& stmt,
               const std::function<void(const Stmt&)>& fn);

// Collects every kFor statement in pre-order.
std::vector<Stmt*> CollectLoops(const StmtPtr& root);
std::vector<const Stmt*> CollectLoops(const Stmt* root);

// Finds the loop with `loop_id`; returns nullptr if absent.
Stmt* FindLoop(const StmtPtr& root, int loop_id);

}  // namespace s2fa::kir
