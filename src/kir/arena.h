// Pooled allocation for Kernel IR nodes.
//
// DSE churns kernels: every candidate design point clones and rewrites the
// IR, so b2c and the Merlin transforms allocate millions of short-lived
// Expr/Stmt nodes per exploration. Routing those nodes through a size-class
// pool turns each allocation into a freelist pop and lets freed node memory
// be reused immediately instead of round-tripping through malloc.
//
// Design: one process-wide registry of 64 KiB slabs carved into size-class
// chunks, fronted by per-class freelists under a single mutex (nodes are
// allocated on one thread and may be freed on another — DSE partitions run
// on a thread pool). Slabs are owned by an immortal singleton: they are
// never returned to the OS, so a node that outlives every other static can
// still be destroyed safely, and the memory stays reachable (LSan-clean).
// Peak pool size is bounded by peak live-node bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

namespace s2fa::kir::arena {

// Pops a chunk of at least `bytes` from the pool (falls back to operator
// new above the pooled size ceiling). Never returns nullptr.
void* Allocate(std::size_t bytes);

// Returns a chunk to its size-class freelist.
void Deallocate(void* p, std::size_t bytes) noexcept;

// Pool observability (tests assert chunk reuse; the profiler could export
// these as gauges).
struct Stats {
  std::uint64_t allocations = 0;  // pooled allocations served
  std::uint64_t frees = 0;        // pooled chunks returned
  std::uint64_t slab_bytes = 0;   // total slab memory carved so far
};
Stats GetStats();

// Minimal std allocator over the pool, for allocate_shared: one pooled
// allocation holds the shared_ptr control block and the node.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(Allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    Deallocate(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const PoolAllocator<U>&) const noexcept {
    return false;
  }
};

}  // namespace s2fa::kir::arena
