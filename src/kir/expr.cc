#include "kir/expr.h"

#include <functional>
#include <memory>
#include <sstream>

#include "kir/arena.h"
#include "support/error.h"

namespace s2fa::kir {

std::shared_ptr<Expr> Expr::New() {
  return std::allocate_shared<Expr>(arena::PoolAllocator<Expr>(), Token{});
}

ExprPtr Expr::IntLit(std::int64_t v, Type type) {
  S2FA_REQUIRE(type.is_integral(), "IntLit needs integral type, got "
                                       << type.ToString());
  auto e = New();
  e->kind_ = ExprKind::kIntLit;
  e->type_ = type;
  e->int_value_ = v;
  return e;
}

ExprPtr Expr::FloatLit(double v, Type type) {
  S2FA_REQUIRE(type.is_floating(), "FloatLit needs floating type, got "
                                       << type.ToString());
  auto e = New();
  e->kind_ = ExprKind::kFloatLit;
  e->type_ = type;
  e->float_value_ = v;
  return e;
}

ExprPtr Expr::Var(std::string name, Type type) {
  S2FA_REQUIRE(!name.empty(), "variable needs a name");
  auto e = New();
  e->kind_ = ExprKind::kVar;
  e->type_ = type;
  e->name_ = std::move(name);
  return e;
}

ExprPtr Expr::ArrayRef(std::string buffer, Type element, ExprPtr index) {
  S2FA_REQUIRE(index != nullptr, "array index is null");
  auto e = New();
  e->kind_ = ExprKind::kArrayRef;
  e->type_ = element;
  e->name_ = std::move(buffer);
  e->operands_ = {std::move(index)};
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  S2FA_REQUIRE(lhs != nullptr && rhs != nullptr, "binary operand is null");
  auto e = New();
  e->kind_ = ExprKind::kBinary;
  e->type_ = BinaryResultType(op, lhs->type());
  e->binary_op_ = op;
  e->operands_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand) {
  S2FA_REQUIRE(operand != nullptr, "unary operand is null");
  auto e = New();
  e->kind_ = ExprKind::kUnary;
  e->type_ = op == UnaryOp::kLogicalNot ? Type::Int() : operand->type();
  e->unary_op_ = op;
  e->operands_ = {std::move(operand)};
  return e;
}

ExprPtr Expr::Call(Intrinsic fn, std::vector<ExprPtr> args, Type type) {
  const std::size_t arity = fn == Intrinsic::kPow ? 2 : 1;
  S2FA_REQUIRE(args.size() == arity,
               IntrinsicName(fn) << " takes " << arity << " args, got "
                                 << args.size());
  auto e = New();
  e->kind_ = ExprKind::kCall;
  e->type_ = type;
  e->intrinsic_ = fn;
  e->operands_ = std::move(args);
  return e;
}

ExprPtr Expr::Cast(Type to, ExprPtr operand) {
  S2FA_REQUIRE(operand != nullptr, "cast operand is null");
  auto e = New();
  e->kind_ = ExprKind::kCast;
  e->type_ = to;
  e->operands_ = {std::move(operand)};
  return e;
}

ExprPtr Expr::Select(ExprPtr cond, ExprPtr then_value, ExprPtr else_value) {
  S2FA_REQUIRE(cond && then_value && else_value, "select operand is null");
  auto e = New();
  e->kind_ = ExprKind::kSelect;
  e->type_ = then_value->type();
  e->operands_ = {std::move(cond), std::move(then_value),
                  std::move(else_value)};
  return e;
}

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kRem: return "%";
    case BinaryOp::kShl: return "<<";
    case BinaryOp::kShr: return ">>";
    case BinaryOp::kUShr: return ">>>";  // printer expands to unsigned shift
    case BinaryOp::kAnd: return "&";
    case BinaryOp::kOr: return "|";
    case BinaryOp::kXor: return "^";
    case BinaryOp::kMin: return "min";
    case BinaryOp::kMax: return "max";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLAnd: return "&&";
    case BinaryOp::kLOr: return "||";
  }
  S2FA_UNREACHABLE("bad binary op");
}

const char* IntrinsicName(Intrinsic fn) {
  switch (fn) {
    case Intrinsic::kExp: return "exp";
    case Intrinsic::kLog: return "log";
    case Intrinsic::kSqrt: return "sqrt";
    case Intrinsic::kAbs: return "fabs";
    case Intrinsic::kPow: return "pow";
  }
  S2FA_UNREACHABLE("bad intrinsic");
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kEq:
    case BinaryOp::kNe:
      return true;
    default:
      return false;
  }
}

bool IsCommutative(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kMul:
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
    case BinaryOp::kXor:
    case BinaryOp::kMin:
    case BinaryOp::kMax:
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLAnd:
    case BinaryOp::kLOr:
      return true;
    default:
      return false;
  }
}

Type BinaryResultType(BinaryOp op, const Type& t) {
  if (IsComparison(op) || op == BinaryOp::kLAnd || op == BinaryOp::kLOr) {
    return Type::Int();
  }
  return t;
}

std::string Expr::ToString() const {
  std::ostringstream oss;
  switch (kind_) {
    case ExprKind::kIntLit:
      oss << int_value_;
      break;
    case ExprKind::kFloatLit:
      oss << float_value_;
      if (type_.kind() == TypeKind::kFloat) oss << "f";
      break;
    case ExprKind::kVar:
      oss << name_;
      break;
    case ExprKind::kArrayRef:
      oss << name_ << "[" << operands_[0]->ToString() << "]";
      break;
    case ExprKind::kBinary:
      if (binary_op_ == BinaryOp::kMin || binary_op_ == BinaryOp::kMax) {
        oss << BinaryOpName(binary_op_) << "(" << operands_[0]->ToString()
            << ", " << operands_[1]->ToString() << ")";
      } else {
        oss << "(" << operands_[0]->ToString() << " "
            << BinaryOpName(binary_op_) << " " << operands_[1]->ToString()
            << ")";
      }
      break;
    case ExprKind::kUnary:
      oss << (unary_op_ == UnaryOp::kNeg
                  ? "-"
                  : unary_op_ == UnaryOp::kBitNot ? "~" : "!")
          << "(" << operands_[0]->ToString() << ")";
      break;
    case ExprKind::kCall: {
      oss << IntrinsicName(intrinsic_) << "(";
      for (std::size_t i = 0; i < operands_.size(); ++i) {
        if (i > 0) oss << ", ";
        oss << operands_[i]->ToString();
      }
      oss << ")";
      break;
    }
    case ExprKind::kCast:
      oss << "(" << type_.ToString() << ")(" << operands_[0]->ToString()
          << ")";
      break;
    case ExprKind::kSelect:
      oss << "(" << operands_[0]->ToString() << " ? "
          << operands_[1]->ToString() << " : " << operands_[2]->ToString()
          << ")";
      break;
  }
  return oss.str();
}

void VisitExpr(const ExprPtr& expr,
               const std::function<void(const Expr&)>& fn) {
  S2FA_REQUIRE(expr != nullptr, "visiting null expression");
  fn(*expr);
  for (const auto& operand : expr->operands()) VisitExpr(operand, fn);
}

ExprPtr TransformExpr(
    const ExprPtr& expr,
    const std::function<ExprPtr(const Expr&, const std::vector<ExprPtr>&)>&
        map) {
  S2FA_REQUIRE(expr != nullptr, "transforming null expression");
  std::vector<ExprPtr> new_operands;
  new_operands.reserve(expr->operands().size());
  bool changed = false;
  for (const auto& operand : expr->operands()) {
    ExprPtr rebuilt = TransformExpr(operand, map);
    changed = changed || rebuilt != operand;
    new_operands.push_back(std::move(rebuilt));
  }
  ExprPtr replacement = map(*expr, new_operands);
  if (replacement != nullptr) return replacement;
  if (!changed) return expr;
  // Rebuild the node with new operands.
  switch (expr->kind()) {
    case ExprKind::kArrayRef:
      return Expr::ArrayRef(expr->name(), expr->type(), new_operands[0]);
    case ExprKind::kBinary:
      return Expr::Binary(expr->binary_op(), new_operands[0], new_operands[1]);
    case ExprKind::kUnary:
      return Expr::Unary(expr->unary_op(), new_operands[0]);
    case ExprKind::kCall:
      return Expr::Call(expr->intrinsic(), std::move(new_operands),
                        expr->type());
    case ExprKind::kCast:
      return Expr::Cast(expr->type(), new_operands[0]);
    case ExprKind::kSelect:
      return Expr::Select(new_operands[0], new_operands[1], new_operands[2]);
    default:
      return expr;  // leaves have no operands, changed can't be true
  }
}

ExprPtr SubstituteVar(const ExprPtr& expr, const std::string& name,
                      const ExprPtr& replacement) {
  return TransformExpr(
      expr, [&](const Expr& node, const std::vector<ExprPtr>&) -> ExprPtr {
        if (node.kind() == ExprKind::kVar && node.name() == name) {
          return replacement;
        }
        return nullptr;
      });
}

}  // namespace s2fa::kir
