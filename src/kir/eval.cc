#include "kir/eval.h"

#include <cmath>

#include "support/error.h"

namespace s2fa::kir {

namespace {

// Coerces a Value to the numeric domain of `type` (the IR is typed, so this
// only bridges int-width families, matching C implicit conversion).
double ToDouble(const Value& v) {
  if (v.is_int()) return v.AsInt();
  if (v.is_long()) return static_cast<double>(v.AsLong());
  if (v.is_float()) return v.AsFloat();
  return v.AsDouble();
}

std::int64_t ToInt64(const Value& v) {
  if (v.is_int()) return v.AsInt();
  if (v.is_long()) return v.AsLong();
  if (v.is_float()) return static_cast<std::int64_t>(v.AsFloat());
  return static_cast<std::int64_t>(v.AsDouble());
}

Value FromDouble(const Type& type, double d) {
  switch (type.kind()) {
    case TypeKind::kFloat:
      return Value::OfFloat(static_cast<float>(d));
    case TypeKind::kDouble:
      return Value::OfDouble(d);
    case TypeKind::kLong:
      return Value::OfLong(static_cast<std::int64_t>(d));
    default:
      return Value::OfInt(static_cast<std::int32_t>(d));
  }
}

Value NarrowToElement(const Type& type, const Value& v) {
  switch (type.kind()) {
    case TypeKind::kBoolean:
      return Value::OfInt(ToInt64(v) != 0 ? 1 : 0);
    case TypeKind::kByte:
      return Value::OfInt(static_cast<std::int8_t>(ToInt64(v)));
    case TypeKind::kChar:
      return Value::OfInt(static_cast<std::uint16_t>(ToInt64(v)));
    case TypeKind::kShort:
      return Value::OfInt(static_cast<std::int16_t>(ToInt64(v)));
    case TypeKind::kInt:
      return Value::OfInt(static_cast<std::int32_t>(ToInt64(v)));
    case TypeKind::kLong:
      return Value::OfLong(ToInt64(v));
    case TypeKind::kFloat:
      return Value::OfFloat(static_cast<float>(ToDouble(v)));
    case TypeKind::kDouble:
      return Value::OfDouble(ToDouble(v));
    default:
      throw InternalError("bad element type " + type.ToString());
  }
}

}  // namespace

Evaluator::Evaluator(const Kernel& kernel) : kernel_(kernel) {
  kernel.Validate();
}

Value Evaluator::Eval(const ExprPtr& expr, Env& env) {
  if (++steps_ > max_steps_) {
    throw InternalError("IR evaluator step budget exceeded");
  }
  const Expr& e = *expr;
  switch (e.kind()) {
    case ExprKind::kIntLit:
      if (e.type().kind() == TypeKind::kLong) {
        return Value::OfLong(e.int_value());
      }
      return Value::OfInt(static_cast<std::int32_t>(e.int_value()));
    case ExprKind::kFloatLit:
      return FromDouble(e.type(), e.float_value());
    case ExprKind::kVar: {
      auto it = env.vars.find(e.name());
      S2FA_CHECK(it != env.vars.end(), "unbound variable " << e.name());
      return it->second;
    }
    case ExprKind::kArrayRef: {
      std::int64_t index = ToInt64(Eval(e.operands()[0], env));
      auto it = env.buffers->find(e.name());
      S2FA_CHECK(it != env.buffers->end(), "unbound buffer " << e.name());
      S2FA_REQUIRE(index >= 0 && static_cast<std::size_t>(index) <
                                     it->second.size(),
                   "index " << index << " out of bounds for buffer "
                            << e.name() << " (size " << it->second.size()
                            << ")");
      return it->second[static_cast<std::size_t>(index)];
    }
    case ExprKind::kBinary: {
      Value a = Eval(e.operands()[0], env);
      Value b = Eval(e.operands()[1], env);
      const Type& t = e.operands()[0]->type();
      BinaryOp op = e.binary_op();
      if (IsComparison(op)) {
        double x = ToDouble(a);
        double y = ToDouble(b);
        bool r = false;
        switch (op) {
          case BinaryOp::kLt: r = x < y; break;
          case BinaryOp::kLe: r = x <= y; break;
          case BinaryOp::kGt: r = x > y; break;
          case BinaryOp::kGe: r = x >= y; break;
          case BinaryOp::kEq: r = x == y; break;
          case BinaryOp::kNe: r = x != y; break;
          default: break;
        }
        return Value::OfInt(r ? 1 : 0);
      }
      if (op == BinaryOp::kLAnd) {
        return Value::OfInt((ToInt64(a) != 0 && ToInt64(b) != 0) ? 1 : 0);
      }
      if (op == BinaryOp::kLOr) {
        return Value::OfInt((ToInt64(a) != 0 || ToInt64(b) != 0) ? 1 : 0);
      }
      if (t.is_floating()) {
        const bool single = t.kind() == TypeKind::kFloat;
        auto apply = [&](auto x, auto y) -> double {
          switch (op) {
            case BinaryOp::kAdd: return x + y;
            case BinaryOp::kSub: return x - y;
            case BinaryOp::kMul: return x * y;
            case BinaryOp::kDiv: return x / y;
            case BinaryOp::kRem: return std::fmod(x, y);
            case BinaryOp::kMin: return std::fmin(x, y);
            case BinaryOp::kMax: return std::fmax(x, y);
            default:
              throw InternalError("bitwise op on float in evaluator");
          }
        };
        if (single) {
          float r = static_cast<float>(apply(static_cast<float>(ToDouble(a)),
                                             static_cast<float>(ToDouble(b))));
          return Value::OfFloat(r);
        }
        return Value::OfDouble(apply(ToDouble(a), ToDouble(b)));
      }
      // Integral.
      const bool wide = t.kind() == TypeKind::kLong;
      std::int64_t x = ToInt64(a);
      std::int64_t y = ToInt64(b);
      std::int64_t r = 0;
      switch (op) {
        case BinaryOp::kAdd: r = x + y; break;
        case BinaryOp::kSub: r = x - y; break;
        case BinaryOp::kMul: r = x * y; break;
        case BinaryOp::kDiv:
          S2FA_REQUIRE(y != 0, "division by zero in kernel");
          r = x / y;
          break;
        case BinaryOp::kRem:
          S2FA_REQUIRE(y != 0, "remainder by zero in kernel");
          r = x % y;
          break;
        case BinaryOp::kShl: r = x << (y & (wide ? 63 : 31)); break;
        case BinaryOp::kShr: r = x >> (y & (wide ? 63 : 31)); break;
        case BinaryOp::kUShr:
          if (wide) {
            r = static_cast<std::int64_t>(static_cast<std::uint64_t>(x) >>
                                          (y & 63));
          } else {
            r = static_cast<std::int32_t>(
                static_cast<std::uint32_t>(static_cast<std::int32_t>(x)) >>
                (y & 31));
          }
          break;
        case BinaryOp::kAnd: r = x & y; break;
        case BinaryOp::kOr: r = x | y; break;
        case BinaryOp::kXor: r = x ^ y; break;
        case BinaryOp::kMin: r = std::min(x, y); break;
        case BinaryOp::kMax: r = std::max(x, y); break;
        default:
          throw InternalError("unhandled int binop");
      }
      if (wide) return Value::OfLong(r);
      return Value::OfInt(static_cast<std::int32_t>(r));
    }
    case ExprKind::kUnary: {
      Value a = Eval(e.operands()[0], env);
      const Type& t = e.operands()[0]->type();
      switch (e.unary_op()) {
        case UnaryOp::kNeg:
          if (t.kind() == TypeKind::kFloat) {
            return Value::OfFloat(-static_cast<float>(ToDouble(a)));
          }
          if (t.kind() == TypeKind::kDouble) {
            return Value::OfDouble(-ToDouble(a));
          }
          if (t.kind() == TypeKind::kLong) return Value::OfLong(-ToInt64(a));
          return Value::OfInt(static_cast<std::int32_t>(-ToInt64(a)));
        case UnaryOp::kBitNot:
          if (t.kind() == TypeKind::kLong) return Value::OfLong(~ToInt64(a));
          return Value::OfInt(static_cast<std::int32_t>(~ToInt64(a)));
        case UnaryOp::kLogicalNot:
          return Value::OfInt(ToInt64(a) == 0 ? 1 : 0);
      }
      S2FA_UNREACHABLE("bad unary op");
    }
    case ExprKind::kCall: {
      const bool single = e.type().kind() == TypeKind::kFloat;
      auto compute = [&](double x, double y) -> double {
        switch (e.intrinsic()) {
          case Intrinsic::kExp: return std::exp(x);
          case Intrinsic::kLog: return std::log(x);
          case Intrinsic::kSqrt: return std::sqrt(x);
          case Intrinsic::kAbs: return std::fabs(x);
          case Intrinsic::kPow: return std::pow(x, y);
        }
        S2FA_UNREACHABLE("bad intrinsic");
      };
      double x = ToDouble(Eval(e.operands()[0], env));
      double y = e.operands().size() > 1
                     ? ToDouble(Eval(e.operands()[1], env))
                     : 0.0;
      if (single) {
        // Match C's f-suffixed functions: compute in float.
        float fx = static_cast<float>(x);
        float fy = static_cast<float>(y);
        switch (e.intrinsic()) {
          case Intrinsic::kExp: return Value::OfFloat(std::exp(fx));
          case Intrinsic::kLog: return Value::OfFloat(std::log(fx));
          case Intrinsic::kSqrt: return Value::OfFloat(std::sqrt(fx));
          case Intrinsic::kAbs: return Value::OfFloat(std::fabs(fx));
          case Intrinsic::kPow: return Value::OfFloat(std::pow(fx, fy));
        }
      }
      return FromDouble(e.type(), compute(x, y));
    }
    case ExprKind::kCast: {
      Value a = Eval(e.operands()[0], env);
      return NarrowToElement(e.type(), a);
    }
    case ExprKind::kSelect: {
      Value c = Eval(e.operands()[0], env);
      return ToInt64(c) != 0 ? Eval(e.operands()[1], env)
                             : Eval(e.operands()[2], env);
    }
  }
  S2FA_UNREACHABLE("bad expr kind");
}

void Evaluator::Exec(const Stmt& stmt, Env& env) {
  if (++steps_ > max_steps_) {
    throw InternalError("IR evaluator step budget exceeded");
  }
  switch (stmt.kind()) {
    case StmtKind::kAssign: {
      Value v = Eval(stmt.rhs(), env);
      const Expr& lhs = *stmt.lhs();
      if (lhs.kind() == ExprKind::kVar) {
        env.vars[lhs.name()] = NarrowToElement(lhs.type(), v);
      } else {
        std::int64_t index = ToInt64(Eval(lhs.operands()[0], env));
        auto it = env.buffers->find(lhs.name());
        S2FA_CHECK(it != env.buffers->end(), "unbound buffer " << lhs.name());
        S2FA_REQUIRE(index >= 0 && static_cast<std::size_t>(index) <
                                       it->second.size(),
                     "write index " << index << " out of bounds for buffer "
                                    << lhs.name());
        it->second[static_cast<std::size_t>(index)] =
            NarrowToElement(lhs.type(), v);
      }
      break;
    }
    case StmtKind::kDecl: {
      Value v = stmt.init() ? Eval(stmt.init(), env)
                            : jvm::DefaultValue(stmt.decl_type());
      env.vars[stmt.decl_name()] = NarrowToElement(stmt.decl_type(), v);
      break;
    }
    case StmtKind::kIf: {
      Value c = Eval(stmt.cond(), env);
      if (ToInt64(c) != 0) {
        Exec(*stmt.then_stmt(), env);
      } else if (stmt.else_stmt()) {
        Exec(*stmt.else_stmt(), env);
      }
      break;
    }
    case StmtKind::kFor: {
      for (std::int64_t i = 0; i < stmt.trip_count(); ++i) {
        env.vars[stmt.loop_var()] =
            Value::OfInt(static_cast<std::int32_t>(i));
        Exec(*stmt.body(), env);
      }
      break;
    }
    case StmtKind::kBlock:
      for (const auto& st : stmt.stmts()) Exec(*st, env);
      break;
  }
}

void Evaluator::Run(const std::map<std::string, Value>& scalars,
                    BufferMap& buffers) {
  steps_ = 0;
  Env env;
  env.buffers = &buffers;
  for (const auto& s : kernel_.scalars) {
    auto it = scalars.find(s.name);
    S2FA_REQUIRE(it != scalars.end(), "missing scalar argument " << s.name);
    env.vars[s.name] = it->second;
  }
  for (const auto& b : kernel_.buffers) {
    auto it = buffers.find(b.name);
    if (it == buffers.end()) {
      S2FA_REQUIRE(b.kind != BufferKind::kInput,
                   "missing input buffer " << b.name);
      buffers[b.name].assign(static_cast<std::size_t>(b.length),
                             jvm::DefaultValue(b.element));
    }
  }
  Exec(*kernel_.body, env);
}

}  // namespace s2fa::kir
